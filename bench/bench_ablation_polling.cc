// Polling ablation (paper §III-C1: "our analysis (not shown) confirms that
// long polling outperforms short polling, and returns significantly more
// messages per poll request, reducing costs").
//
// Runs FSD-Inf-Queue with long polling (W = 5 s) vs short polling (W = 0)
// and reports messages per poll, empty-poll fraction, queue API calls,
// communication cost and per-sample runtime.
#include <cstdio>

#include "bench/bench_common.h"
#include "common/strings.h"

using namespace fsd;
using bench::ScaleConfig;

int main() {
  const ScaleConfig scale = ScaleConfig::FromEnv();
  const int32_t neurons = scale.NeuronsOr(4096);
  const int32_t workers = scale.WorkersOr(20);
  const bench::Workload& workload = bench::GetWorkload(neurons, scale);
  const part::ModelPartition& partition = bench::GetPartition(
      neurons, workers, part::PartitionScheme::kHypergraph, scale);

  bench::PrintHeader(
      StrFormat("ABLATION — long vs short polling (FSD-Inf-Queue, N=%d, "
                "P=%d)",
                neurons, workers),
      "long polling waits up to W=5s visiting all queue servers; short "
      "polling samples a subset and may return empty");

  std::printf("%-12s | %-10s %-12s %-12s %-12s %-12s\n", "Polling",
              "msgs/poll", "empty polls", "API calls", "comm $", "ms/sample");
  bench::PrintRule();
  for (double wait_s : {5.0, 0.0}) {
    core::FsdOptions options;
    options.variant = core::Variant::kQueue;
    options.num_workers = workers;
    options.poll_wait_s = wait_s;
    core::InferenceReport report = bench::RunFsd(workload, partition, options);
    const auto& t = report.metrics.totals;
    const double msgs_per_poll =
        t.polls > 0 ? static_cast<double>(t.msgs_received) / t.polls : 0.0;
    const double api_calls = static_cast<double>(t.polls + t.deletes);
    std::printf("%-12s | %-10.2f %-12lld %-12.0f %-12s %-12.3f\n",
                wait_s > 0 ? "long (W=5)" : "short (W=0)", msgs_per_poll,
                static_cast<long long>(t.empty_polls), api_calls,
                HumanDollars(report.predicted.communication).c_str(),
                report.per_sample_ms);
  }
  std::printf(
      "\nExpected shape: long polling returns more messages per poll and\n"
      "issues far fewer (billed) empty polls.\n");
  return 0;
}
