// Flash-crowd scaling benchmark (λScale-style fast scaling): an idle
// service hit by a 0 -> N qps step of same-family queries.
//
// The storage-only baseline cold-loads the entire fleet through the object
// store: every cold instance of the burst pays a full multipart share read,
// so P-instance trees arriving B at a time cost ~B*P GETs of the SAME
// bytes, all at storage latency. With the ShareDistributor + predictive
// pre-warming enabled on the identical trace:
//  - after the first read of each share, cold instances pull it from warm
//    peers over the NAT-punched fabric (KV relay on punch failure),
//    multicast down a binomial tree -> object-storage reads collapse to
//    ~1 per share;
//  - the serving pipeline's EWMA arrival-rate estimate pre-warms instances
//    at the burst onset (invoke + share-load ahead of the queue), bounded
//    by a dollar budget fed from the cost model.
//
// Asserted shapes:
//  - byte-identical per-query outputs across both modes (the distributor
//    moves bytes, never values)
//  - object-storage model reads with the feature on drop to <= 1/4 of the
//    baseline's (the "~1 read per share" claim at quick scale)
//  - cold-start ratio and accepted-query p95 strictly improve
//  - workload-level cost reconciliation in BOTH modes: summed per-query
//    comm predictions (plus the pre-warm loop's mirrored GET/transfer
//    charges, which belong to no query) match the ledger to < 0.1%
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "core/cost_model.h"
#include "core/serving.h"

using namespace fsd;
using bench::ScaleConfig;

namespace {

struct ModeResult {
  double p50_s = 0.0;
  double p95_s = 0.0;
  double cold_ratio = 0.0;
  int64_t cold_starts = 0;
  int64_t invocations = 0;
  int64_t storage_loads = 0;
  int64_t peer_loads = 0;
  int64_t prewarmed_hits = 0;
  int32_t prewarm_invocations = 0;
  double prewarm_spent = 0.0;
  double cost_per_query = 0.0;
  double predicted_comm = 0.0;  ///< per-query predictions + pre-warm mirrors
  double ledger_comm = 0.0;
  bool outputs_ok = true;
  std::vector<std::vector<linalg::ActivationMap>> outputs;
};

ModeResult RunMode(const bench::Workload& workload,
                   const part::ModelPartition& partition,
                   const std::vector<double>& arrivals, bool fast_scaling,
                   double budget_dollars) {
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  core::ServingOptions serving_options;
  if (fast_scaling) {
    serving_options.peer_share_transfer = true;
    serving_options.predictive_prewarm = true;
    serving_options.prewarm_budget_dollars = budget_dollars;
  }
  core::ServingRuntime serving(&cloud, serving_options);

  core::InferenceRequest request;
  request.dnn = &workload.dnn;
  request.partition = &partition;
  request.batches = {&workload.input};
  // Queue variant + small sample batches: the cold path (model-share reads
  // above all) dominates, which is exactly what the distributor attacks.
  request.options.variant = core::Variant::kQueue;
  request.options.num_workers = partition.num_parts;
  for (double arrival : arrivals) {
    FSD_CHECK_OK(serving.Submit(request, arrival).status());
  }
  auto report = serving.Drain();
  FSD_CHECK_OK(report.status());

  ModeResult result;
  for (const core::QueryOutcome& outcome : report->queries) {
    FSD_CHECK_OK(outcome.report.status);
    result.outputs_ok &= outcome.report.outputs.size() == 1 &&
                         outcome.report.outputs[0] == workload.expected;
    result.outputs.push_back(outcome.report.outputs);
    result.predicted_comm += outcome.report.predicted.communication;
  }
  // The pre-warm loop's charges belong to no query; its mirrors carry the
  // exact ledger quantities it moved (GET parts + peer/relay transfers).
  const cloud::PricingConfig pricing;
  result.predicted_comm +=
      static_cast<double>(report->fleet.prewarm_storage_parts) *
          pricing.object_per_get +
      core::ShareTransferCost(pricing, report->fleet.prewarm_peer_connects,
                              report->fleet.prewarm_peer_bytes,
                              report->fleet.prewarm_relay_requests,
                              report->fleet.prewarm_relay_bytes);
  result.ledger_comm = report->billing.comm_cost;
  result.p50_s = report->fleet.latency_p50_s;
  result.p95_s = report->fleet.latency_p95_s;
  result.cold_ratio = report->fleet.cold_start_ratio;
  result.cold_starts = report->fleet.cold_starts;
  result.invocations = report->fleet.worker_invocations;
  result.storage_loads = report->fleet.share_loads_storage;
  result.peer_loads = report->fleet.share_loads_peer;
  result.prewarmed_hits = report->fleet.prewarmed_hits;
  result.prewarm_invocations = report->fleet.prewarm_invocations;
  result.prewarm_spent = report->fleet.prewarm_budget_spent;
  result.cost_per_query = report->fleet.cost_per_query;
  return result;
}

}  // namespace

int main() {
  const ScaleConfig scale = ScaleConfig::FromEnv();
  // Wide model, small per-query batches: each worker tree's cost and
  // latency are dominated by its P cold share loads — the flash-crowd
  // regime. P=4 trees, a short trickle that seeds the EWMA estimators,
  // then the 0 -> N qps step.
  const int32_t neurons = scale.NeuronsOr(65536);
  const int32_t workers = 4;
  const int32_t burst_queries = scale.tiny ? 4 : 16;
  const double burst_qps = 12.0;
  const double burst_at_s = 10.0;
  const double budget_dollars = 0.05;
  bench::OverrideBatch(neurons, 8);
  const bench::Workload& workload = bench::GetWorkload(neurons, scale);
  const part::ModelPartition& partition = bench::GetPartition(
      neurons, workers, part::PartitionScheme::kHypergraph, scale);

  bench::PrintHeader(
      StrFormat("FLASH CROWD — N=%d, P=%d, idle -> %d queries at %.0f qps",
                neurons, workers, burst_queries, burst_qps),
      "peer share distribution + predictive pre-warm vs storage-only cold "
      "path, identical trace");

  std::vector<double> arrivals = {0.0, 2.0, 4.0};  // EWMA-seeding trickle
  for (int32_t q = 0; q < burst_queries; ++q) {
    arrivals.push_back(burst_at_s + static_cast<double>(q) / burst_qps);
  }
  const ModeResult base =
      RunMode(workload, partition, arrivals, /*fast_scaling=*/false, 0.0);
  const ModeResult fast = RunMode(workload, partition, arrivals,
                                  /*fast_scaling=*/true, budget_dollars);

  std::printf("%-12s | %-8s %-8s | %-6s %-6s | %-8s %-8s %-8s | %-10s\n",
              "mode", "p50", "p95", "cold", "ratio", "storage", "peer",
              "prewarm", "$/query");
  bench::PrintRule();
  for (const auto& [name, r] :
       {std::pair<const char*, const ModeResult&>{"storage-only", base},
        std::pair<const char*, const ModeResult&>{"fast-scaling", fast}}) {
    std::printf(
        "%-12s | %7.3fs %7.3fs | %6lld %6.2f | %8lld %8lld %8lld | %-10s\n",
        name, r.p50_s, r.p95_s, static_cast<long long>(r.cold_starts),
        r.cold_ratio, static_cast<long long>(r.storage_loads),
        static_cast<long long>(r.peer_loads),
        static_cast<long long>(r.prewarmed_hits),
        HumanDollars(r.cost_per_query).c_str());
  }

  const double rel_err_base =
      std::abs(base.predicted_comm - base.ledger_comm) /
      std::max(1e-12, base.ledger_comm);
  const double rel_err_fast =
      std::abs(fast.predicted_comm - fast.ledger_comm) /
      std::max(1e-12, fast.ledger_comm);
  const bool identical = base.outputs == fast.outputs;

  std::printf(
      "\nstorage reads %lld -> %lld, cold-start ratio %.2f -> %.2f, "
      "p95 %.3fs -> %.3fs\n",
      static_cast<long long>(base.storage_loads),
      static_cast<long long>(fast.storage_loads), base.cold_ratio,
      fast.cold_ratio, base.p95_s, fast.p95_s);
  std::printf(
      "pre-warm: %d invocations, $%.6f committed of $%.2f budget, "
      "%lld pre-warmed hits\n",
      fast.prewarm_invocations, fast.prewarm_spent, budget_dollars,
      static_cast<long long>(fast.prewarmed_hits));
  std::printf(
      "cost-model reconciliation (per-query comm predictions + pre-warm "
      "mirrors vs ledger): fast rel.err %.4f%%, baseline %.4f%%\n",
      100.0 * rel_err_fast, 100.0 * rel_err_base);
  std::printf("outputs %s\n", identical ? "IDENTICAL" : "MISMATCH");

  bench::WriteBenchJson(
      "flash_crowd",
      {{"baseline_p50_latency_s", base.p50_s},
       {"baseline_p95_latency_s", base.p95_s},
       {"baseline_cold_start_ratio", base.cold_ratio},
       {"baseline_storage_loads", static_cast<double>(base.storage_loads)},
       {"baseline_cost_per_query", base.cost_per_query},
       {"fast_p50_latency_s", fast.p50_s},
       {"fast_p95_latency_s", fast.p95_s},
       {"fast_cold_start_ratio", fast.cold_ratio},
       {"fast_storage_loads", static_cast<double>(fast.storage_loads)},
       {"fast_peer_loads", static_cast<double>(fast.peer_loads)},
       {"fast_prewarmed_hits", static_cast<double>(fast.prewarmed_hits)},
       {"fast_prewarm_invocations",
        static_cast<double>(fast.prewarm_invocations)},
       {"fast_prewarm_budget_spent", fast.prewarm_spent},
       {"fast_cost_per_query", fast.cost_per_query},
       {"comm_prediction_rel_err_fast", rel_err_fast},
       {"comm_prediction_rel_err_base", rel_err_base}});

  // The acceptance claims, asserted. Tiny smoke runs the full code path
  // (peer transfers, pre-warm loop, reconciliation) but its 1024-wide
  // model is too light for magnitude claims, so — as everywhere in bench/
  // — shapes are only asserted at quick scale and up.
  FSD_CHECK(base.outputs_ok);
  FSD_CHECK(fast.outputs_ok);
  FSD_CHECK(identical);  // feature off/on must never change values
  FSD_CHECK_LT(rel_err_base, 0.001);
  FSD_CHECK_LT(rel_err_fast, 0.001);
  FSD_CHECK_GT(fast.peer_loads, 0);
  FSD_CHECK_LE(fast.prewarm_spent, budget_dollars);
  if (!scale.tiny) {
    // The P-instance burst's storage reads collapse to ~1 per share.
    FSD_CHECK_LE(fast.storage_loads * 4, base.storage_loads);
    FSD_CHECK_GT(fast.prewarm_invocations, 0);
    FSD_CHECK_LT(fast.cold_ratio, base.cold_ratio);
    FSD_CHECK_LT(fast.p95_s, base.p95_s);
  }

  std::printf(
      "\n%s\n",
      bench::PaperNote(
          "the paper reads every cold share from object storage; "
          "peer-to-peer share multicast and predicted pre-warming are the "
          "lambda-scale / FaaSTube-style serving extension")
          .c_str());
  return 0;
}
