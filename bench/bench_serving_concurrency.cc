// Serving-concurrency benchmark: overlapping multi-query execution vs the
// sequential one-query-at-a-time loop, swept over arrival rate x model
// family.
//
// Three serving modes per (family, rate) cell, all fed the identical
// Poisson arrival trace:
//  - sequential:  RunInference per query; query i cannot start before
//                 query i-1 finished (today's loop; per-run functions, so
//                 every query also pays cold starts)
//  - overlap-cold: ServingRuntime with per-query functions (overlap only)
//  - overlap-warm: ServingRuntime with shared function groups (overlap +
//                 warm-pool reuse across queries)
//
// Expected shapes: at high arrival rates overlapping execution sustains the
// offered load while the sequential loop saturates at 1/service_time, so
// throughput gains grow with the rate (>= 2x at the top rates); warm reuse
// removes the cold-start delay from every query after the first wave. All
// modes must produce identical per-query activations and non-negative
// billing deltas.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "core/serving.h"

using namespace fsd;
using bench::ScaleConfig;

namespace {

struct ModeResult {
  double throughput_qps = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double cold_ratio = 0.0;
  double cost = 0.0;
  bool outputs_ok = true;
};

core::InferenceRequest MakeRequest(const bench::Workload& workload,
                                   const part::ModelPartition& partition) {
  core::InferenceRequest request;
  request.dnn = &workload.dnn;
  request.partition = &partition;
  request.batches = {&workload.input};
  request.options.variant = core::Variant::kQueue;
  request.options.num_workers = partition.num_parts;
  return request;
}

bool OutputsMatch(const std::vector<linalg::ActivationMap>& outputs,
                  const linalg::ActivationMap& expected) {
  return outputs.size() == 1 && outputs[0] == expected;
}

/// The status quo: a loop that serves one query at a time. Query i starts
/// at max(arrival_i, finish_{i-1}); its latency includes the head-of-line
/// queueing delay.
ModeResult RunSequential(const bench::Workload& workload,
                         const part::ModelPartition& partition,
                         const std::vector<double>& arrivals) {
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  const std::vector<cloud::BillingLine> before =
      core::SnapshotLedger(cloud.billing());
  ModeResult result;
  std::vector<double> latencies;
  double free_at = 0.0;
  for (double arrival : arrivals) {
    auto report = core::RunInference(&cloud, MakeRequest(workload, partition));
    FSD_CHECK_OK(report.status());
    FSD_CHECK_OK(report->status);
    result.outputs_ok &= OutputsMatch(report->outputs, workload.expected);
    const double start = arrival > free_at ? arrival : free_at;
    free_at = start + report->latency_s;
    latencies.push_back(free_at - arrival);
  }
  const double makespan = free_at - arrivals.front();
  result.throughput_qps =
      makespan > 0.0 ? static_cast<double>(arrivals.size()) / makespan : 0.0;
  result.p50_s = core::Percentile(latencies, 50.0);
  result.p95_s = core::Percentile(latencies, 95.0);
  result.cold_ratio = 1.0;  // per-run functions never find a warm instance
  result.cost = core::DiffLedger(before, cloud.billing()).total_cost;
  return result;
}

ModeResult RunOverlapping(const bench::Workload& workload,
                          const part::ModelPartition& partition,
                          const std::vector<double>& arrivals,
                          bool share_functions) {
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  core::ServingOptions options;
  options.share_functions = share_functions;
  core::ServingRuntime serving(&cloud, options);
  const core::InferenceRequest request = MakeRequest(workload, partition);
  for (double arrival : arrivals) {
    FSD_CHECK_OK(serving.Submit(request, arrival).status());
  }
  auto report = serving.Drain();
  FSD_CHECK_OK(report.status());
  ModeResult result;
  result.outputs_ok = true;
  for (const core::QueryOutcome& outcome : report->queries) {
    FSD_CHECK_OK(outcome.report.status);
    result.outputs_ok &=
        OutputsMatch(outcome.report.outputs, workload.expected);
  }
  result.throughput_qps = report->fleet.throughput_qps;
  result.p50_s = report->fleet.latency_p50_s;
  result.p95_s = report->fleet.latency_p95_s;
  result.cold_ratio = report->fleet.cold_start_ratio;
  result.cost = report->billing.total_cost;
  return result;
}

}  // namespace

int main() {
  const ScaleConfig scale = ScaleConfig::FromEnv();
  const int32_t kWorkers = 8;
  const int32_t kQueries = scale.paper_scale ? 24 : (scale.tiny ? 4 : 10);
  const std::vector<double> rates_qps =
      scale.tiny ? std::vector<double>{1.0}
                 : std::vector<double>{0.25, 1.0, 4.0};

  bench::PrintHeader(
      "SERVING CONCURRENCY — overlapping multi-query execution vs the "
      "sequential loop",
      StrFormat("FSD-Inf-Queue, P=%d, %d queries per cell, Poisson "
                "arrivals; paper_scale=%d",
                kWorkers, kQueries, scale.paper_scale ? 1 : 0));

  const std::vector<int32_t> widths =
      scale.tiny ? std::vector<int32_t>{1024} : std::vector<int32_t>{1024,
                                                                     4096};
  ModeResult last_seq, last_warm;  // top (width, rate) cell, for the JSON
  double last_rate = 0.0;
  for (int32_t neurons : widths) {
    const bench::Workload& workload = bench::GetWorkload(neurons, scale);
    const part::ModelPartition& partition = bench::GetPartition(
        neurons, kWorkers, part::PartitionScheme::kHypergraph, scale);
    std::printf("\nN = %d (L=%d, batch=%d)\n", neurons,
                workload.dnn.layers(), workload.batch);
    std::printf("%9s | %-26s | %-32s | %-32s | %s\n", "rate qps",
                "sequential qps/p95/$", "overlap-cold qps/p95/$/speedup",
                "overlap-warm qps/p95/$/speedup", "cold% warm / outputs");
    bench::PrintRule();

    for (double rate : rates_qps) {
      const std::vector<double> arrivals =
          core::PoissonArrivals(rate, kQueries, /*seed=*/1234 + neurons);
      const ModeResult seq = RunSequential(workload, partition, arrivals);
      const ModeResult cold =
          RunOverlapping(workload, partition, arrivals, false);
      const ModeResult warm =
          RunOverlapping(workload, partition, arrivals, true);
      const bool outputs_ok =
          seq.outputs_ok && cold.outputs_ok && warm.outputs_ok;
      const bool billing_ok =
          seq.cost >= 0.0 && cold.cost >= 0.0 && warm.cost >= 0.0;
      std::printf(
          "%9.2f | %7.3f %7.3fs %-9s | %7.3f %7.3fs %-9s %5.2fx | "
          "%7.3f %7.3fs %-9s %5.2fx | %5.1f%% %s%s\n",
          rate, seq.throughput_qps, seq.p95_s,
          HumanDollars(seq.cost).c_str(), cold.throughput_qps, cold.p95_s,
          HumanDollars(cold.cost).c_str(),
          cold.throughput_qps / seq.throughput_qps, warm.throughput_qps,
          warm.p95_s, HumanDollars(warm.cost).c_str(),
          warm.throughput_qps / seq.throughput_qps, 100.0 * warm.cold_ratio,
          outputs_ok ? "outputs=IDENTICAL" : "outputs=MISMATCH",
          billing_ok ? "" : " billing=NEGATIVE");
      FSD_CHECK(outputs_ok);
      FSD_CHECK(billing_ok);
      last_seq = seq;
      last_warm = warm;
      last_rate = rate;
    }
  }
  bench::WriteBenchJson(
      "serving_concurrency",
      {{"rate_qps", last_rate},
       {"sequential_throughput_qps", last_seq.throughput_qps},
       {"sequential_p50_latency_s", last_seq.p50_s},
       {"sequential_p95_latency_s", last_seq.p95_s},
       {"overlap_warm_throughput_qps", last_warm.throughput_qps},
       {"overlap_warm_p50_latency_s", last_warm.p50_s},
       {"overlap_warm_p95_latency_s", last_warm.p95_s},
       {"overlap_warm_cold_start_ratio", last_warm.cold_ratio},
       {"overlap_warm_speedup",
        last_warm.throughput_qps / last_seq.throughput_qps}});
  std::printf(
      "\n%s\n",
      bench::PaperNote("the paper serves one query per deployed stack; "
                      "overlap + warm reuse is the serving-layer extension "
                      "(cf. lambda-scale burst serving)")
          .c_str());
  return 0;
}
