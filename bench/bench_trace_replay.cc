// Million-query trace replay: DES kernel throughput on a production-style
// workload trace (diurnal sinusoid + flash crowd + three-tenant mix).
//
// The replay is a synthetic serving loop — arrival processes contending
// for a fixed pool of service slots via signals, with timeout waits,
// callback churn and streaming FleetStats aggregation — so the measured
// cost is the KERNEL's (process handshakes, event heap, signal wakeups),
// not the sparse math behind real worker trees. The same trace replays
// under both kernel tunings:
//
//   legacy: one dedicated OS thread per process, mutex/cv handoff
//           (the pre-optimization kernel, SimTuning::Legacy()), and
//   fast:   the default tier — ucontext fibers on the scheduler's own
//           thread where available, else pooled reusable threads with
//           binary-semaphore handoff,
//
// and the bench reports wall-clock sim_events_per_sec for each plus the
// speedup. Virtual-time results must be BYTE-IDENTICAL across tunings and
// across repeated runs — the tuning changes how fast the kernel decides,
// never what it decides — so the deterministic FleetStats summary doubles
// as a correctness gate, and its virtual p50/p95 feed the (deterministic)
// perf-regression baseline while events_per_sec gates direction-aware.
#include <chrono>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/metrics.h"
#include "core/trace.h"
#include "linalg/spmm.h"
#include "model/input_gen.h"
#include "model/sparse_dnn.h"
#include "sim/simulation.h"

using namespace fsd;
using bench::ScaleConfig;

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

namespace {

struct ReplayResult {
  std::string fleet_summary;  // deterministic virtual-time results
  double p50_s = 0.0;
  double p95_s = 0.0;
  uint64_t events = 0;
  double wall_s = 0.0;
};

/// Replays the trace as a synthetic serving loop against one kernel
/// tuning. Every virtual-time decision (slot grants, waits, service
/// durations) is a deterministic function of the trace and seed.
ReplayResult Replay(const core::WorkloadTrace& trace, sim::SimTuning tuning,
                    int32_t slots) {
  ReplayResult result;
  sim::Simulation sim(tuning);

  // Service slots: FIFO grant order. Everything runs inside the
  // single-threaded scheduler, so plain shared state is race-free and,
  // more importantly, deterministic.
  int32_t free_slots = slots;
  std::deque<std::shared_ptr<sim::SimSignal>> slot_waiters;
  auto acquire_slot = [&]() {
    if (free_slots > 0) {
      --free_slots;
      return;
    }
    auto signal = sim.MakeSignal();
    slot_waiters.push_back(signal);
    sim.WaitSignal(signal.get(), /*timeout=*/600.0);
  };
  auto release_slot = [&]() {
    if (!slot_waiters.empty()) {
      slot_waiters.front()->Fire();  // slot hands over directly
      slot_waiters.pop_front();
    } else {
      ++free_slots;
    }
  };

  core::FleetStats fleet;
  fleet.set_streaming_threshold(512);  // bounded memory at 10^5+ queries
  uint64_t heartbeat_fires = 0;

  // One generator walks the trace in arrival order and spawns a process
  // per query; service times are drawn HERE so the draw order is the
  // trace order regardless of how queries interleave.
  Rng rng(trace.config.seed ^ 0x7E97A5C0DEull);
  sim.AddProcess("trace-replay", [&]() {
    for (const core::TraceQuery& query : trace.queries) {
      const double now = sim.Now();
      if (query.arrival_s > now) sim.Hold(query.arrival_s - now);
      const double service_s = rng.NextLogNormal(-3.6, 0.35);  // ~30ms
      const int32_t tenant = query.tenant;
      sim.Spawn("q", [&, service_s, tenant]() {
        const double arrival = sim.Now();
        // Watchdog-style callback churn: every query arms one, mirroring
        // per-query timeout bookkeeping in the real serving runtime.
        sim.ScheduleCallback(0.25, [&heartbeat_fires]() {
          ++heartbeat_fires;
        });
        acquire_slot();
        const double wait_s = sim.Now() - arrival;
        sim.Hold(service_s);
        release_slot();
        core::FleetStats::QuerySample sample;
        sample.arrival_s = arrival;
        sample.finish_s = sim.Now();
        sample.latency_s = sample.finish_s - arrival;
        sample.queue_wait_s = wait_s;
        sample.disposition = core::QueryDisposition::kCompleted;
        sample.tenant = tenant;
        fleet.AddQuery(sample, {});
      });
    }
  });

  const auto start = std::chrono::steady_clock::now();
  sim.Run();
  const auto stop = std::chrono::steady_clock::now();
  result.wall_s = std::chrono::duration<double>(stop - start).count();
  result.events = sim.events_dispatched();

  fleet.Finalize();
  result.fleet_summary = fleet.Summary() +
                         StrFormat(" heartbeats=%llu",
                                   static_cast<unsigned long long>(
                                       heartbeat_fires));
  result.p50_s = fleet.latency_p50_s;
  result.p95_s = fleet.latency_p95_s;
  return result;
}

struct ComputeReplayResult {
  uint64_t checksum = 0;   // folds every output row of every closure
  uint64_t events = 0;     // kernel events dispatched (virtual behaviour)
  double virtual_end = 0;  // final virtual clock
  uint64_t closures = 0;   // offloaded kernels executed
  double wall_s = 0.0;
};

uint64_t FoldHash(uint64_t h, uint64_t x) {
  h ^= x + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

/// Replays a compute-bound worker fleet: 16 processes each submit `rounds`
/// real sparse-kernel closures through Simulation::Offload. Virtual time
/// per closure is a fixed analytic charge, so events, checksums and the
/// final clock must be byte-identical for every pool size — only the wall
/// clock may move.
ComputeReplayResult ComputeReplay(const model::SparseDnn& dnn,
                                  const std::vector<linalg::ActivationMap>& inputs,
                                  int compute_threads, int rounds) {
  ComputeReplayResult result;
  sim::SimTuning tuning;
  tuning.compute_threads = compute_threads;
  sim::Simulation sim(tuning);

  const int32_t batch = 32;
  std::vector<uint64_t> worker_hash(inputs.size(), 0);
  for (size_t w = 0; w < inputs.size(); ++w) {
    sim.AddProcess(StrFormat("compute-%zu", w), [&, w]() {
      const linalg::ActivationMap& input = inputs[w];
      const linalg::RowProvider provider =
          [&input](int32_t row) -> const linalg::SparseVector* {
        auto it = input.find(row);
        return it == input.end() ? nullptr : &it->second;
      };
      for (int r = 0; r < rounds; ++r) {
        // Worker-owned output + stats: legal closure state per the offload
        // contract (the submitter owns it; nothing else reads it before
        // the join).
        linalg::ActivationMap out;
        linalg::LayerForwardStats stats;
        sim.Offload(1e-3, [&]() {
          out = linalg::LayerForwardAll(dnn.weights[0], provider,
                                        dnn.config.bias, dnn.config.relu_cap,
                                        batch, &stats);
        });
        uint64_t h = worker_hash[w];
        h = FoldHash(h, static_cast<uint64_t>(stats.macs));
        h = FoldHash(h, static_cast<uint64_t>(stats.output_nnz));
        for (const auto& [row, vec] : out) {
          h = FoldHash(h, static_cast<uint64_t>(static_cast<uint32_t>(row)));
          for (size_t i = 0; i < vec.idx.size(); ++i) {
            uint32_t bits;
            static_assert(sizeof(bits) == sizeof(float));
            __builtin_memcpy(&bits, &vec.val[i], sizeof(bits));
            h = FoldHash(h, (static_cast<uint64_t>(
                                static_cast<uint32_t>(vec.idx[i]))
                             << 32) |
                                bits);
          }
        }
        worker_hash[w] = h;
      }
    });
  }

  const auto start = std::chrono::steady_clock::now();
  sim.Run();
  const auto stop = std::chrono::steady_clock::now();
  result.wall_s = std::chrono::duration<double>(stop - start).count();
  result.events = sim.events_dispatched();
  result.virtual_end = sim.Now();
  result.closures = sim.offload_stats().calls;
  uint64_t checksum = 0;
  for (uint64_t h : worker_hash) checksum = FoldHash(checksum, h);
  result.checksum = checksum;
  return result;
}

}  // namespace

int main() {
  const ScaleConfig scale = ScaleConfig::FromEnv();
  const uint64_t num_queries = scale.tiny ? 3000 : 120000;
  const int32_t slots = 16;

  core::TraceConfig config;
  config.base_rate_qps = 200.0;
  config.duration_s = static_cast<double>(num_queries);  // cap hits first
  config.max_queries = num_queries;
  config.diurnal_amplitude = 0.3;
  config.diurnal_period_s = 240.0;
  config.seed = 20240;
  // Peak offered load (200 x 1.3 x 1.15 = ~300 qps) stays under the slot
  // pool's ~530 qps service capacity, so the waiter queue — and with it
  // the legacy kernel's live-thread count — stays bounded.
  config.flash_crowds = {core::FlashCrowd{60.0, 15.0, 1.15}};
  core::TenantSpec gold;
  gold.tenant = 1;
  gold.qps_share = 3.0;
  core::TenantSpec silver;
  silver.tenant = 2;
  silver.qps_share = 2.0;
  core::TenantSpec bronze;
  bronze.tenant = 3;
  bronze.qps_share = 1.0;
  config.tenants = {gold, silver, bronze};

  auto trace = core::GenerateTrace(config);
  if (!trace.ok()) {
    std::fprintf(stderr, "trace generation failed: %s\n",
                 trace.status().ToString().c_str());
    return 1;
  }

  bench::PrintHeader(
      "TRACE REPLAY — DES kernel throughput on a production-style trace",
      StrFormat("%zu queries, 3 tenants, diurnal + flash crowd; pooled "
                "fast path vs legacy thread-per-process kernel",
                trace->queries.size()));

  const ReplayResult fast = Replay(*trace, sim::SimTuning{}, slots);
  const ReplayResult fast2 = Replay(*trace, sim::SimTuning{}, slots);
  const ReplayResult legacy =
      Replay(*trace, sim::SimTuning::Legacy(), slots);

  const double fast_eps = static_cast<double>(fast.events) / fast.wall_s;
  const double legacy_eps =
      static_cast<double>(legacy.events) / legacy.wall_s;
  const double speedup = fast_eps / legacy_eps;

  std::printf("%-8s | %12s %14s %10s\n", "kernel", "events", "wall (s)",
              "events/s");
  bench::PrintRule();
  std::printf("%-8s | %12llu %14.3f %10.0f\n", "fast",
              static_cast<unsigned long long>(fast.events), fast.wall_s,
              fast_eps);
  std::printf("%-8s | %12llu %14.3f %10.0f\n", "legacy",
              static_cast<unsigned long long>(legacy.events), legacy.wall_s,
              legacy_eps);
  std::printf("\nspeedup: %.2fx   virtual p50=%.3fs p95=%.3fs\n", speedup,
              fast.p50_s, fast.p95_s);

  // Correctness gates: identical event counts and byte-identical fleet
  // results across runs AND across tunings.
  if (fast.fleet_summary != fast2.fleet_summary ||
      fast.events != fast2.events) {
    std::fprintf(stderr, "FAIL: fast replay is not deterministic\n");
    return 1;
  }
  if (fast.fleet_summary != legacy.fleet_summary ||
      fast.events != legacy.events) {
    std::fprintf(stderr,
                 "FAIL: fast and legacy kernels disagree on virtual-time "
                 "results\nfast:   %s\nlegacy: %s\n",
                 fast.fleet_summary.c_str(), legacy.fleet_summary.c_str());
    return 1;
  }
  std::printf("determinism: fast==fast (replayed) and fast==legacy — OK\n");

  // Perf gate: the pooled kernel must beat thread-per-process by >= 3x at
  // quick scale and above. Tiny (CTest smoke) runs are too short to time
  // reliably, and sanitizers distort thread costs — report only there.
  if (!scale.tiny && !kSanitized && speedup < 3.0) {
    std::fprintf(stderr, "FAIL: fast kernel speedup %.2fx < 3x\n", speedup);
    return 1;
  }

  // ---- compute offload: multi-core worker kernels, one virtual time ----
  // 16 processes each push `rounds` real sparse-kernel closures through
  // Simulation::Offload; the run repeats with an 8-thread compute pool.
  // Checksums, event counts and the final virtual clock must be
  // byte-identical — the pool may only move the wall clock.
  const int32_t neurons = scale.tiny ? 512 : 4096;
  const int rounds = scale.tiny ? 2 : 24;
  const size_t fleet = 16;
  model::SparseDnnConfig dnn_config;
  dnn_config.neurons = neurons;
  dnn_config.layers = 1;
  auto dnn = model::GenerateSparseDnn(dnn_config);
  if (!dnn.ok()) {
    std::fprintf(stderr, "dnn generation failed: %s\n",
                 dnn.status().ToString().c_str());
    return 1;
  }
  std::vector<linalg::ActivationMap> inputs(fleet);
  for (size_t w = 0; w < fleet; ++w) {
    model::InputConfig ic;
    ic.neurons = neurons;
    ic.batch = 32;
    ic.seed = 77 + static_cast<uint64_t>(w);
    auto input = model::GenerateInputBatch(ic);
    if (!input.ok()) {
      std::fprintf(stderr, "input generation failed: %s\n",
                   input.status().ToString().c_str());
      return 1;
    }
    inputs[w] = std::move(*input);
  }

  const ComputeReplayResult inline_run =
      ComputeReplay(*dnn, inputs, /*compute_threads=*/0, rounds);
  const ComputeReplayResult pooled_run =
      ComputeReplay(*dnn, inputs, /*compute_threads=*/8, rounds);

  const double inline_cps =
      static_cast<double>(inline_run.closures) / inline_run.wall_s;
  const double pooled_cps =
      static_cast<double>(pooled_run.closures) / pooled_run.wall_s;
  const double offload_speedup = pooled_cps / inline_cps;

  std::printf("\n%-8s | %10s %12s %14s %12s\n", "pool", "closures", "events",
              "wall (s)", "kernels/s");
  bench::PrintRule();
  std::printf("%-8s | %10llu %12llu %14.3f %12.0f\n", "inline",
              static_cast<unsigned long long>(inline_run.closures),
              static_cast<unsigned long long>(inline_run.events),
              inline_run.wall_s, inline_cps);
  std::printf("%-8s | %10llu %12llu %14.3f %12.0f\n", "8-thread",
              static_cast<unsigned long long>(pooled_run.closures),
              static_cast<unsigned long long>(pooled_run.events),
              pooled_run.wall_s, pooled_cps);
  std::printf("\noffload speedup: %.2fx\n", offload_speedup);

  if (inline_run.checksum != pooled_run.checksum ||
      inline_run.events != pooled_run.events ||
      inline_run.virtual_end != pooled_run.virtual_end ||
      inline_run.closures != pooled_run.closures) {
    std::fprintf(stderr,
                 "FAIL: compute pool changed virtual behaviour\n"
                 "inline: checksum=%016llx events=%llu end=%.9f\n"
                 "pooled: checksum=%016llx events=%llu end=%.9f\n",
                 static_cast<unsigned long long>(inline_run.checksum),
                 static_cast<unsigned long long>(inline_run.events),
                 inline_run.virtual_end,
                 static_cast<unsigned long long>(pooled_run.checksum),
                 static_cast<unsigned long long>(pooled_run.events),
                 pooled_run.virtual_end);
    return 1;
  }
  std::printf("determinism: inline==8-thread (checksums, events, clock) — "
              "OK\n");

  // Perf gate: with 16 compute-bound processes, an 8-thread pool must
  // deliver >= 1.5x wall-clock (typically ~2x and above; the gate leaves
  // headroom for loaded CI hosts). Tiny runs are too short to time,
  // sanitizers distort thread costs, and hosts without enough cores cannot
  // overlap anything — report only there.
  const unsigned cores = std::thread::hardware_concurrency();
  if (!scale.tiny && !kSanitized && cores >= 4 && offload_speedup < 1.5) {
    std::fprintf(stderr, "FAIL: offload speedup %.2fx < 1.5x\n",
                 offload_speedup);
    return 1;
  }
  if (cores < 4) {
    std::printf("(offload speedup gate skipped: %u host core%s)\n", cores,
                cores == 1 ? "" : "s");
  }

  bench::WriteBenchJson(
      "trace_replay",
      {
          {"sim_events_per_sec", fast_eps},
          {"sim_events_per_sec_legacy", legacy_eps},
          {"kernel_speedup", speedup},
          {"replay_latency_p50_s", fast.p50_s},
          {"replay_latency_p95_s", fast.p95_s},
          {"replay_events", static_cast<double>(fast.events)},
          {"compute_replay_per_sec", pooled_cps},
          {"compute_replay_per_sec_inline", inline_cps},
          {"compute_offload_speedup", offload_speedup},
      });
  return 0;
}
