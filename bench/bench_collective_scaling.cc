// Collective-scaling bench: comm time PER ROUND of the Barrier + Reduce +
// Broadcast cycle, swept over fleet size for every backend x topology.
//
// A P-worker fleet runs repeated collective iterations over the raw
// channel API (no model compute): barrier, reduce of one small row per
// worker, broadcast of the gathered map. One iteration executes
// 4 * CollectiveRounds(topology, P) rounds (two barrier ops + reduce +
// broadcast), so per-round time = iteration critical path / round count —
// the straggler-exposure metric RecommendTopology minimizes: through-root
// packs the whole fan-in (and the root's fan-out) into ONE wide round,
// while the tree/ring spread it over many rounds that each move one
// message per worker.
//
// Expected shapes, asserted at the sweep's largest P (>= 16):
//  - tree (or ring) beats through-root per-round time on all four backends
//  - the direct channel beats KV end-to-end on this chatty small-payload
//    workload: punched links shave the per-op service hop, and the cycle
//    is nothing but small ops
#include <cstdio>
#include <functional>
#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "core/channel.h"
#include "core/collectives.h"
#include "core/metrics.h"

using namespace fsd;
using bench::ScaleConfig;

namespace {

struct CollectiveResult {
  double round_p50_ms = 0.0;  ///< p50 over iterations of iter / rounds
  double iter_p50_ms = 0.0;   ///< p50 full-cycle critical path
  int64_t relay_fallbacks = 0;
  bool payloads_ok = true;
};

linalg::ActivationMap OwnedRows(int32_t worker_id) {
  linalg::ActivationMap out;
  linalg::SparseVector vec;
  vec.dim = 8;
  for (int32_t j = 0; j < 8; ++j) {
    vec.idx.push_back(j);
    vec.val.push_back(static_cast<float>(worker_id) + 0.125f * j);
  }
  out.emplace(worker_id, std::move(vec));
  return out;
}

CollectiveResult RunCollectiveCycle(core::Variant variant,
                                    core::CollectiveTopology topology,
                                    int32_t workers, int32_t iters) {
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  core::FsdOptions options;
  options.variant = variant;
  options.collective_topology = topology;
  options.num_workers = workers;
  options.poll_wait_s = 2.0;
  options.kv_poll_wait_s = 0.5;
  options.direct_poll_wait_s = 0.5;
  options.object_scan_interval_s = 0.005;
  FSD_CHECK_OK(core::ProvisionChannelResources(&cloud, options));

  linalg::ActivationMap everyone;
  for (int32_t w = 0; w < workers; ++w) {
    everyone.merge(OwnedRows(w));
  }
  const int32_t rounds_per_op = core::CollectiveRounds(topology, workers);
  const int32_t phases_per_iter =
      core::PhaseAllocator(0, 0, rounds_per_op).phases_per_batch();
  const int32_t rounds_per_iter =
      static_cast<int32_t>(core::kCollectiveOpCount) * rounds_per_op;

  CollectiveResult result;
  std::vector<double> iter_samples;
  core::RunMetrics metrics;
  metrics.workers.resize(workers);

  for (int32_t worker_id = 0; worker_id < workers; ++worker_id) {
    cloud::FaasFunctionConfig fn;
    fn.name = StrFormat("coll-%d", worker_id);
    fn.memory_mb = 2048;
    fn.timeout_s = 600.0;
    fn.handler = [&, worker_id](cloud::FaasContext* ctx) {
      std::unique_ptr<core::CommChannel> channel =
          core::MakeCommChannel(variant);
      core::WorkerEnv env;
      env.faas = ctx;
      env.cloud = &cloud;
      env.options = &options;
      env.metrics = &metrics.workers[worker_id];
      env.worker_id = worker_id;
      const linalg::ActivationMap mine = OwnedRows(worker_id);
      for (int32_t it = 0; it < iters; ++it) {
        const core::PhaseAllocator phases(it * phases_per_iter, 0,
                                          rounds_per_op);
        const double t0 = sim.Now();
        FSD_CHECK_OK(core::Barrier(
            channel.get(), &env, topology,
            phases.Block(core::CollectiveOp::kBarrierArrive),
            phases.Block(core::CollectiveOp::kBarrierRelease), workers));
        auto gathered = core::Reduce(
            channel.get(), &env, topology,
            phases.Block(core::CollectiveOp::kReduce), workers, mine);
        FSD_CHECK_OK(gathered.status());
        auto echoed = core::Broadcast(
            channel.get(), &env, topology,
            phases.Block(core::CollectiveOp::kBroadcast), workers,
            worker_id == 0 ? *gathered : linalg::ActivationMap{});
        FSD_CHECK_OK(echoed.status());
        result.payloads_ok &= (*echoed == everyone);
        if (worker_id == 0) {
          result.payloads_ok &= (*gathered == everyone);
          iter_samples.push_back(sim.Now() - t0);
        }
      }
      ctx->set_result(Status::OK());
    };
    FSD_CHECK_OK(cloud.faas().RegisterFunction(fn));
  }
  sim.AddProcess("kickoff", [&]() {
    for (int32_t w = 0; w < workers; ++w) {
      cloud.faas().InvokeAsync(StrFormat("coll-%d", w), {});
    }
  });
  sim.Run();
  FSD_CHECK_OK(core::TeardownChannelResources(&cloud, options));

  metrics.Finalize();
  result.relay_fallbacks = metrics.totals.relay_fallback_msgs;
  result.iter_p50_ms = core::Percentile(iter_samples, 50.0) * 1e3;
  result.round_p50_ms =
      result.iter_p50_ms / static_cast<double>(rounds_per_iter);
  return result;
}

}  // namespace

int main() {
  const ScaleConfig scale = ScaleConfig::FromEnv();
  const int32_t iters = scale.tiny ? 5 : 12;
  const std::vector<int32_t> worker_counts = scale.WorkerCounts();
  const int32_t max_p = worker_counts.back();

  const core::Variant backends[] = {core::Variant::kQueue,
                                    core::Variant::kObject, core::Variant::kKv,
                                    core::Variant::kDirect};
  struct TopoSpec {
    core::CollectiveTopology topology;
    const char* label;
  };
  const TopoSpec topologies[] = {
      {core::CollectiveTopology::kThroughRoot, "root"},
      {core::CollectiveTopology::kBinomialTree, "tree"},
      {core::CollectiveTopology::kRing, "ring"},
  };

  bench::PrintHeader(
      "COLLECTIVE SCALING — comm time per round by backend x topology",
      StrFormat("barrier+reduce+broadcast cycle, %d iterations per cell; "
                "per-round = cycle critical path / (4 ops x rounds/op)",
                iters));

  // results[{backend index, topology index}] at each P.
  std::map<int32_t, std::map<std::pair<int, int>, CollectiveResult>> results;
  for (int32_t workers : worker_counts) {
    std::printf("\nP = %d   (rounds/op: root=1 tree=%d ring=%d)\n", workers,
                core::CollectiveRounds(core::CollectiveTopology::kBinomialTree,
                                       workers),
                core::CollectiveRounds(core::CollectiveTopology::kRing,
                                       workers));
    std::printf("%-10s | %-22s %-22s %-22s\n", "Backend",
                "root rnd/iter ms", "tree rnd/iter ms", "ring rnd/iter ms");
    bench::PrintRule();
    for (size_t b = 0; b < 4; ++b) {
      std::string row = StrFormat(
          "%-10s |", std::string(core::VariantName(backends[b])).c_str());
      for (size_t t = 0; t < 3; ++t) {
        const CollectiveResult r = RunCollectiveCycle(
            backends[b], topologies[t].topology, workers, iters);
        FSD_CHECK(r.payloads_ok);
        results[workers][{static_cast<int>(b), static_cast<int>(t)}] = r;
        row += StrFormat(" %8.3f /%9.2f  ", r.round_p50_ms, r.iter_p50_ms);
      }
      std::printf("%s\n", row.c_str());
    }
  }

  const auto& at_max = results[max_p];
  std::printf("\nat P=%d:\n", max_p);
  for (size_t b = 0; b < 4; ++b) {
    const double root = at_max.at({static_cast<int>(b), 0}).round_p50_ms;
    const double tree = at_max.at({static_cast<int>(b), 1}).round_p50_ms;
    const double ring = at_max.at({static_cast<int>(b), 2}).round_p50_ms;
    std::printf("  %-8s per-round p50: root %.3f ms, tree %.3f ms, "
                "ring %.3f ms\n",
                std::string(core::VariantName(backends[b])).c_str(), root,
                tree, ring);
    if (max_p >= 16) {
      // The acceptance shape: spreading the fan-in over bounded rounds
      // must narrow the widest round on every backend once P is large.
      FSD_CHECK_LT(std::min(tree, ring), root);
    }
  }
  const double kv_iter = at_max.at({2, 0}).iter_p50_ms;
  const double direct_iter = at_max.at({3, 0}).iter_p50_ms;
  std::printf("  chatty cycle p50: direct %.2f ms vs kv %.2f ms "
              "(relay fallbacks: %lld)\n",
              direct_iter, kv_iter,
              static_cast<long long>(at_max.at({3, 0}).relay_fallbacks));
  if (max_p >= 16) {
    // FSD-Inf-Direct's pitch on a chatty phase mix: no per-op service hop.
    FSD_CHECK_LT(direct_iter, kv_iter);
  }

  std::vector<std::pair<std::string, double>> json;
  for (size_t b = 0; b < 4; ++b) {
    for (size_t t = 0; t < 3; ++t) {
      const auto& r = at_max.at({static_cast<int>(b), static_cast<int>(t)});
      const std::string prefix =
          StrFormat("%s_%s", std::string(core::VariantName(backends[b])).c_str(),
                    topologies[t].label);
      json.emplace_back(prefix + "_round_p50_ms", r.round_p50_ms);
      json.emplace_back(prefix + "_iter_p50_ms", r.iter_p50_ms);
    }
  }
  bench::WriteBenchJson("collective_scaling", json);
  std::printf(
      "\n%s\n",
      bench::PaperNote(
          "the paper's collectives are through-root over managed services; "
          "the tree/ring topologies and the NAT-punched direct links are "
          "the FMI-style extension this bench sizes")
          .c_str());
  return 0;
}
