// Reproduces paper Table III: FSD-Inf-Object communication volumes under
// hypergraph partitioning (HGP-DNN) vs PaToH random partitioning (RP),
// evaluated at N = 16384, P = 42.
//
// Columns: total data volume sent between FaaS instances (bytes), average
// NNZ sent per target, and per-sample runtime (ms). Paper values:
//   HGP-DNN: 3,895,079,200 B   17,888 NNZ/target   11.78 ms
//   RP:     36,374,240,000 B   86,020 NNZ/target   27.90 ms  (~9.3x volume)
#include <cstdio>

#include "bench/bench_common.h"
#include "common/strings.h"

using namespace fsd;
using bench::ScaleConfig;

int main() {
  const ScaleConfig scale = ScaleConfig::FromEnv();
  const int32_t neurons = scale.NeuronsOr(16384);
  const int32_t workers = scale.WorkersOr(42);
  // Random partitioning moves ~an OOM more data; a reduced batch keeps the
  // RP run tractable while both volume and runtime ratios are preserved.
  if (!scale.paper_scale && !scale.tiny) bench::OverrideBatch(neurons, 256);
  const bench::Workload& workload = bench::GetWorkload(neurons, scale);

  bench::PrintHeader(
      StrFormat("TABLE III — HGP-DNN vs RP communication volumes "
                "(FSD-Inf-Object, N=%d, P=%d, L=%d, batch=%d)",
                neurons, workers, workload.dnn.layers(), workload.batch),
      "paper: HGP 3.90e9 B / 17,888 nnz/target / 11.78 ms; "
      "RP 3.64e10 B / 86,020 nnz/target / 27.90 ms (~9.3x)");

  std::printf("%-10s | %-18s %-16s %-16s %-14s\n", "Scheme",
              "Data Volume Sent", "NNZ/Target", "Rows Sent", "ms/sample");
  bench::PrintRule();

  double volumes[2] = {0, 0};
  const part::PartitionScheme schemes[2] = {part::PartitionScheme::kHypergraph,
                                            part::PartitionScheme::kRandom};
  for (int s = 0; s < 2; ++s) {
    const part::ModelPartition& partition =
        bench::GetPartition(neurons, workers, schemes[s], scale);
    core::FsdOptions options;
    options.variant = core::Variant::kObject;
    options.num_workers = workers;
    core::InferenceReport report = bench::RunFsd(workload, partition, options);
    const auto& t = report.metrics.totals;
    // "Data volume sent": raw (pre-compression) bytes moved between
    // instances. "NNZ sent per target": average nonzeros shipped to one
    // worker per layer (wire payloads carry ~6 B/nnz, the packing
    // heuristic's estimate).
    const double nnz_values = static_cast<double>(t.send_raw_bytes) / 6.0;
    const double per_target =
        nnz_values / (static_cast<double>(workers) * workload.dnn.layers());
    volumes[s] = static_cast<double>(t.send_raw_bytes);
    std::printf("%-10s | %-18.0f %-16.0f %-16lld %-14.2f%s\n",
                std::string(part::PartitionSchemeName(schemes[s])).c_str(),
                volumes[s], per_target,
                static_cast<long long>(t.recv_rows), report.per_sample_ms,
                report.status.ok() ? "" : "  (FAILED)");
  }
  bench::PrintRule();
  if (volumes[0] > 0) {
    std::printf("RP / HGP-DNN data-volume ratio: %.1fx   %s\n",
                volumes[1] / volumes[0],
                bench::PaperNote("9.3x — 'almost 1 OOM'").c_str());
  }
  return 0;
}
