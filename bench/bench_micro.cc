// Micro-benchmarks (google-benchmark): throughput of the substrates the
// end-to-end numbers are built on — the FsdLz codec, the sparse layer
// kernel, row serialization and the DES kernel itself.
#include <benchmark/benchmark.h>

#include "codec/crc32.h"
#include "codec/lz.h"
#include "codec/quant.h"
#include "codec/varint.h"
#include "common/rng.h"
#include "core/serialization.h"
#include "linalg/spmm.h"
#include "model/input_gen.h"
#include "model/sparse_dnn.h"
#include "sim/simulation.h"

namespace {

using namespace fsd;

Bytes RowPayloadLike(size_t size, uint64_t seed) {
  // Mimics serialized activation rows: small varints + float32 values with
  // many repeated clamped values.
  Rng rng(seed);
  Bytes data;
  data.reserve(size);
  while (data.size() < size) {
    codec::PutVarint64(&data, rng.NextBounded(512));
    const float v =
        rng.NextBool(0.4) ? 32.0f : static_cast<float>(rng.NextDouble() * 4);
    AppendRaw(&data, v);
  }
  data.resize(size);
  return data;
}

void BM_LzCompress(benchmark::State& state) {
  const Bytes data = RowPayloadLike(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec::LzCompress(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LzCompress)->Arg(4 << 10)->Arg(64 << 10)->Arg(1 << 20);

void BM_LzDecompress(benchmark::State& state) {
  const Bytes data = RowPayloadLike(static_cast<size_t>(state.range(0)), 1);
  const Bytes packed = codec::LzCompress(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec::LzDecompress(packed));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LzDecompress)->Arg(4 << 10)->Arg(64 << 10)->Arg(1 << 20);

void BM_Crc32(benchmark::State& state) {
  const Bytes data = RowPayloadLike(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec::Crc32(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64 << 10);

void BM_VarintRoundtrip(benchmark::State& state) {
  Rng rng(3);
  std::vector<uint64_t> values(4096);
  for (auto& v : values) v = rng.NextBounded(1ull << 40);
  for (auto _ : state) {
    Bytes buf;
    for (uint64_t v : values) codec::PutVarint64(&buf, v);
    ByteReader reader(buf);
    uint64_t sum = 0;
    for (size_t i = 0; i < values.size(); ++i) {
      sum += *codec::GetVarint64(&reader);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_VarintRoundtrip);

void LayerForwardBody(benchmark::State& state, linalg::ForwardKernel kernel) {
  const int32_t neurons = static_cast<int32_t>(state.range(0));
  model::SparseDnnConfig config;
  config.neurons = neurons;
  config.layers = 1;
  auto dnn = model::GenerateSparseDnn(config);
  model::InputConfig ic;
  ic.neurons = neurons;
  ic.batch = 32;
  auto input = model::GenerateInputBatch(ic);
  linalg::SetLayerForwardKernel(kernel);
  state.SetLabel(linalg::LayerForwardKernelName());
  for (auto _ : state) {
    linalg::LayerForwardStats stats;
    auto out = linalg::LayerForwardAll(
        dnn->weights[0],
        [&](int32_t row) -> const linalg::SparseVector* {
          auto it = input->find(row);
          return it == input->end() ? nullptr : &it->second;
        },
        dnn->config.bias, dnn->config.relu_cap, 32, &stats);
    benchmark::DoNotOptimize(out);
    state.counters["MACs"] = stats.macs;
  }
  linalg::SetLayerForwardKernel(linalg::ForwardKernel::kAuto);
}

void BM_LayerForward(benchmark::State& state) {
  LayerForwardBody(state, linalg::ForwardKernel::kAuto);
}
BENCHMARK(BM_LayerForward)->Arg(1024)->Arg(4096)->Arg(16384);

// N-sweep of the scalar baseline vs the runtime-dispatched vectorized
// kernel; on hardware without AVX2 both rows report the portable kernel
// (see the label) and should match.
void BM_LayerForwardPortable(benchmark::State& state) {
  LayerForwardBody(state, linalg::ForwardKernel::kPortable);
}
BENCHMARK(BM_LayerForwardPortable)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_LayerForwardVectorized(benchmark::State& state) {
  LayerForwardBody(state, linalg::ForwardKernel::kVectorized);
}
BENCHMARK(BM_LayerForwardVectorized)->Arg(1024)->Arg(4096)->Arg(16384);

std::vector<float> ActivationValuesLike(size_t count, uint64_t seed) {
  // Value distribution the quantizer sees on the wire: ReLU-clamped
  // activations with a heavy spike at the cap.
  Rng rng(seed);
  std::vector<float> values(count);
  for (auto& v : values) {
    v = rng.NextBool(0.4) ? 32.0f : static_cast<float>(rng.NextDouble() * 4);
  }
  return values;
}

void BM_QuantizeRows(benchmark::State& state) {
  const auto values = ActivationValuesLike(1 << 16, 7);
  const int32_t bits = static_cast<int32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        codec::QuantCompress(values.data(), values.size(), bits));
  }
  state.SetBytesProcessed(state.iterations() * values.size() * 4);
}
BENCHMARK(BM_QuantizeRows)->Arg(16)->Arg(8)->Arg(4);

void BM_DequantizeRows(benchmark::State& state) {
  const auto values = ActivationValuesLike(1 << 16, 7);
  const int32_t bits = static_cast<int32_t>(state.range(0));
  const Bytes packed =
      codec::QuantCompress(values.data(), values.size(), bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec::QuantDecompress(packed));
  }
  state.SetBytesProcessed(state.iterations() * values.size() * 4);
}
BENCHMARK(BM_DequantizeRows)->Arg(16)->Arg(8)->Arg(4);

void BM_EncodeDecodeRows(benchmark::State& state) {
  model::InputConfig ic;
  ic.neurons = 4096;
  ic.batch = 64;
  auto rows = model::GenerateInputBatch(ic);
  std::vector<int32_t> ids;
  for (const auto& [id, vec] : *rows) ids.push_back(id);
  for (auto _ : state) {
    core::EncodeResult encoded =
        core::EncodeRows(*rows, ids, 224 * 1024, core::LosslessCodec(true));
    linalg::ActivationMap decoded;
    for (const auto& chunk : encoded.chunks) {
      core::DecodeRows(chunk.wire, &decoded).ok();
    }
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_EncodeDecodeRows);

void BM_SimulationEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < 8; ++i) {
      sim.AddProcess("p", [&sim]() {
        for (int k = 0; k < 250; ++k) sim.Hold(0.001);
      });
    }
    sim.Run();
    benchmark::DoNotOptimize(sim.events_dispatched());
  }
  state.SetItemsProcessed(state.iterations() * 8 * 250);
}
BENCHMARK(BM_SimulationEventThroughput);

void BM_SignalPingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    auto a = sim.MakeSignal();
    sim.AddProcess("waiter", [&]() { sim.WaitSignal(a.get()); });
    sim.AddProcess("firer", [&]() {
      sim.Hold(1.0);
      a->Fire();
    });
    sim.Run();
  }
}
BENCHMARK(BM_SignalPingPong);

}  // namespace

BENCHMARK_MAIN();
