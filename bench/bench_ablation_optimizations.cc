// Optimization ablations (paper §IV-B): each of the design choices the
// paper credits for FSD-Inference's cost profile is toggled off in turn:
//
//   - payload compression (ZLIB stage; here FsdLz)
//   - greedy publish packing (one message per publish when off)
//   - ".nul" empty-file markers (object channel reads empty files when off)
//   - communication-resource sharding (1 topic / 1 bucket when off)
#include <cstdio>

#include "bench/bench_common.h"
#include "common/strings.h"

using namespace fsd;
using bench::ScaleConfig;

namespace {

void Report(const char* label, const core::InferenceReport& report,
            core::Variant variant) {
  const auto& t = report.metrics.totals;
  if (variant == core::Variant::kQueue) {
    std::printf("%-26s | %-10.3f %-10s %-12lld %-12s %-14s\n", label,
                report.per_sample_ms,
                HumanBytes(static_cast<double>(t.send_wire_bytes)).c_str(),
                static_cast<long long>(t.publishes),
                StrFormat("%lld", static_cast<long long>(t.publish_chunks))
                    .c_str(),
                HumanDollars(report.predicted.communication).c_str());
  } else {
    std::printf("%-26s | %-10.3f %-10s %-12lld %-12lld %-14s\n", label,
                report.per_sample_ms,
                HumanBytes(static_cast<double>(t.send_wire_bytes)).c_str(),
                static_cast<long long>(t.gets),
                static_cast<long long>(t.lists),
                HumanDollars(report.predicted.communication).c_str());
  }
}

}  // namespace

int main() {
  const ScaleConfig scale = ScaleConfig::FromEnv();
  const int32_t neurons = scale.NeuronsOr(4096);
  const int32_t workers = scale.WorkersOr(20);
  const bench::Workload& workload = bench::GetWorkload(neurons, scale);
  const part::ModelPartition& partition = bench::GetPartition(
      neurons, workers, part::PartitionScheme::kHypergraph, scale);

  bench::PrintHeader(
      StrFormat("ABLATION — §IV-B optimizations (N=%d, P=%d)", neurons,
                workers),
      "each row disables one optimization of the full design");

  // ---- queue channel ----
  std::printf("\nFSD-Inf-Queue\n");
  std::printf("%-26s | %-10s %-10s %-12s %-12s %-14s\n", "Config",
              "ms/sample", "wire", "publishes", "chunks(S)", "comm $");
  bench::PrintRule();
  {
    core::FsdOptions base;
    base.variant = core::Variant::kQueue;
    base.num_workers = workers;
    Report("full design", bench::RunFsd(workload, partition, base),
           base.variant);

    core::FsdOptions no_compress = base;
    no_compress.compress = false;
    Report("- compression", bench::RunFsd(workload, partition, no_compress),
           base.variant);

    core::FsdOptions no_packing = base;
    no_packing.greedy_packing = false;
    Report("- greedy packing", bench::RunFsd(workload, partition, no_packing),
           base.variant);

    core::FsdOptions one_topic = base;
    one_topic.num_topics = 1;
    Report("- topic sharding (1)", bench::RunFsd(workload, partition,
                                                 one_topic),
           base.variant);
  }

  // ---- object channel ----
  std::printf("\nFSD-Inf-Object\n");
  std::printf("%-26s | %-10s %-10s %-12s %-12s %-14s\n", "Config",
              "ms/sample", "wire", "GETs(R)", "LISTs(L)", "comm $");
  bench::PrintRule();
  {
    core::FsdOptions base;
    base.variant = core::Variant::kObject;
    base.num_workers = workers;
    Report("full design", bench::RunFsd(workload, partition, base),
           base.variant);

    core::FsdOptions no_nul = base;
    no_nul.nul_markers = false;
    Report("- .nul markers", bench::RunFsd(workload, partition, no_nul),
           base.variant);

    core::FsdOptions no_compress = base;
    no_compress.compress = false;
    Report("- compression", bench::RunFsd(workload, partition, no_compress),
           base.variant);

    core::FsdOptions one_bucket = base;
    one_bucket.num_buckets = 1;
    Report("- bucket sharding (1)",
           bench::RunFsd(workload, partition, one_bucket), base.variant);
  }
  std::printf(
      "\nExpected shapes: compression cuts wire bytes (and queue chunk\n"
      "billing); greedy packing cuts publish count ~10x; .nul markers avoid\n"
      "redundant GETs; sharding matters under API-rate pressure.\n");
  return 0;
}
