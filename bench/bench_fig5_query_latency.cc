// Reproduces paper Figure 5: batch query latency of FSD-Inference vs the
// server-based baselines and H-SpFF, per model width.
//
// Platforms:
//   FSD-Inf : best parallel FSD configuration (cheapest-latency P/channel)
//   AO-Cold : Server-Always-On, model fetched from object storage
//   AO-Hot  : Server-Always-On, 50% in-memory + 50% EBS (paper §VI-C2)
//   JS      : Server-Job-Scoped (boot + load + compute, then terminate)
//   H-SpFF  : hypergraph-partitioned MPI engine on an HPC cluster
//
// Paper shapes: JS is far slowest everywhere (boot dominates); AO-Hot wins
// for small N; FSD overtakes AO-Hot by N=16384 and at N=65536 approaches
// H-SpFF (~40% slower) while beating every server baseline.
#include <cstdio>

#include "bench/bench_common.h"
#include "common/strings.h"

using namespace fsd;
using bench::ScaleConfig;

namespace {

double ServerLatency(const bench::Workload& workload,
                     baselines::ModelResidence residence, bool job_scoped) {
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  baselines::ServerRunOptions options;
  options.residence = residence;
  options.job_scoped = job_scoped;
  options.precomputed_stats = &workload.stats;
  auto report =
      baselines::RunServerInference(&cloud, workload.dnn, workload.input,
                                    options);
  FSD_CHECK_OK(report.status());
  return report->latency_s;
}

}  // namespace

int main() {
  const ScaleConfig scale = ScaleConfig::FromEnv();
  bench::PrintHeader(
      "FIGURE 5 — Query latency (s): FSD-Inf vs AO-Cold / AO-Hot / JS / "
      "H-SpFF",
      "AO-Hot = 0.5 x in-memory + 0.5 x EBS load, per the paper's model");

  std::printf("%7s | %-10s %-10s %-10s %-10s %-10s\n", "N", "FSD-Inf",
              "AO-Cold", "AO-Hot", "JS", "H-SpFF");
  bench::PrintRule();
  for (int32_t neurons : scale.NeuronCounts()) {
    const bench::Workload& workload = bench::GetWorkload(neurons, scale);

    // FSD-Inf: best parallel configuration over the P sweep. The queue
    // channel's runtime profile tracks the object channel's closely
    // (Fig. 6), so the latency sweep uses one channel.
    double fsd = -1.0;
    {
      // Two representative P points bracket the optimum (the full sweep is
      // bench_fig6_scaling's job).
      auto sweep = bench::SweepWorkers(neurons, core::Variant::kQueue, scale,
                                       scale.RepresentativeWorkers());
      for (auto& [workers, report] : sweep) {
        if (!report.status.ok()) continue;
        if (fsd < 0.0 || report.latency_s < fsd) fsd = report.latency_s;
      }
    }

    const double ao_cold =
        ServerLatency(workload, baselines::ModelResidence::kObject, false);
    const double ao_hot =
        0.5 * ServerLatency(workload, baselines::ModelResidence::kMemory,
                            false) +
        0.5 * ServerLatency(workload, baselines::ModelResidence::kEbs, false);
    const double js =
        ServerLatency(workload, baselines::ModelResidence::kObject, true);
    const baselines::HspffReport hpc = baselines::EstimateHspff(
        workload.dnn, workload.stats, workload.batch,
        cloud::ComputeModelConfig{});

    std::printf("%7d | %-10.2f %-10.2f %-10.2f %-10.2f %-10.2f\n", neurons,
                fsd, ao_cold, ao_hot, js, hpc.latency_s);
  }
  std::printf(
      "\nPaper shapes: JS slowest everywhere; AO-Hot fastest for small N;\n"
      "FSD-Inf overtakes AO-Hot by N=16384 and closes on H-SpFF at "
      "N=65536.\n");
  return 0;
}
