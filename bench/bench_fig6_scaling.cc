// Reproduces paper Figure 6: per-sample runtime and per-sample cost of
// FSD-Inf-Queue and FSD-Inf-Object as worker parallelism P grows, for each
// model width N.
//
// Paper shapes to reproduce:
//  - small N (1024, 4096): parallelism does not pay; fewer workers are
//    better on both axes
//  - N = 16384: runtime improves up to a mid-range P, then degrades
//  - N = 65536: runtime keeps improving toward P = 62
//  - object-channel cost grows ~linearly with P and is roughly independent
//    of N; queue-channel cost grows much more slowly with P
#include <cstdio>

#include "bench/bench_common.h"
#include "common/strings.h"

using namespace fsd;
using bench::ScaleConfig;

int main() {
  const ScaleConfig scale = ScaleConfig::FromEnv();
  bench::PrintHeader(
      "FIGURE 6 — Per-sample runtime and cost of FSD-Inf-Queue / "
      "FSD-Inf-Object vs workers",
      StrFormat("layers/batch per N are scale-reduced (see EXPERIMENTS.md); "
                "paper_scale=%d",
                scale.paper_scale ? 1 : 0));

  for (int32_t neurons : scale.NeuronCounts()) {
    const bench::Workload& workload = bench::GetWorkload(neurons, scale);
    std::printf("\nN = %d (L=%d, batch=%d)\n", neurons,
                workload.dnn.layers(), workload.batch);
    std::printf("%4s | %-12s %-14s | %-12s %-14s\n", "P", "queue ms/smp",
                "queue $/smp", "object ms/smp", "object $/smp");
    bench::PrintRule();
    for (int32_t workers : scale.WorkerCounts()) {
      const part::ModelPartition& partition = bench::GetPartition(
          neurons, workers, part::PartitionScheme::kHypergraph, scale);
      double ms[2] = {0, 0};
      double cost[2] = {0, 0};
      bool failed[2] = {false, false};
      const core::Variant variants[2] = {core::Variant::kQueue,
                                         core::Variant::kObject};
      for (int v = 0; v < 2; ++v) {
        core::FsdOptions options;
        options.variant = variants[v];
        options.num_workers = workers;
        core::InferenceReport report =
            bench::RunFsd(workload, partition, options);
        if (!report.status.ok()) {
          failed[v] = true;
          continue;
        }
        ms[v] = report.per_sample_ms;
        cost[v] = report.billing.total_cost / report.total_samples;
      }
      std::printf("%4d | %-12s %-14s | %-12s %-14s\n", workers,
                  failed[0] ? "FAILED" : StrFormat("%.3f", ms[0]).c_str(),
                  failed[0] ? "-" : StrFormat("%.3e", cost[0]).c_str(),
                  failed[1] ? "FAILED" : StrFormat("%.3f", ms[1]).c_str(),
                  failed[1] ? "-" : StrFormat("%.3e", cost[1]).c_str());
    }
  }
  std::printf(
      "\nPaper shapes: object cost grows ~linearly in P (request-count "
      "pricing);\nqueue cost grows much more slowly; N=16384 has a "
      "mid-range optimal P;\nN=65536 keeps improving toward P=62.\n");
  return 0;
}
