// Data-plane sweep: bytes-on-wire and $/query vs rel-error across the wire
// codecs — lossless raw, lossless FsdLz, and the quantized transport at
// b ∈ {16, 8, 4} — on one FSD-Inf-Queue workload (pub-sub meters delivery
// bytes, so wire bytes map straight to dollars).
//
// Structural gates (virtual-time deterministic, asserted at every scale):
//   - the b=8 setting (chunk rel-error bound 3.9e-3 ≤ 1e-2) cuts wire
//     bytes ≥30% vs the lossless-LZ baseline
//   - the cost model's prediction-from-metrics reconciles against the
//     billing ledger to <0.1% for every codec, quantized included
//   - per-chunk quantization error stays within codec::QuantRelErrorBound
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "codec/quant.h"
#include "common/check.h"
#include "common/strings.h"
#include "core/serialization.h"

using namespace fsd;
using bench::ScaleConfig;

namespace {

struct CodecPoint {
  const char* name;
  bool compress = false;
  int32_t quant_bits = 0;
};

/// Max |got - want| over the union of output rows, relative to the largest
/// reference magnitude (the same normalization the per-chunk bound uses).
double EndToEndRelError(const linalg::ActivationMap& expected,
                        const linalg::ActivationMap& got) {
  double max_mag = 0.0;
  for (const auto& [row, vec] : expected) {
    for (float v : vec.val) {
      max_mag = std::max(max_mag, static_cast<double>(std::fabs(v)));
    }
  }
  if (max_mag == 0.0) return 0.0;
  auto value_at = [](const linalg::ActivationMap& m, int32_t row,
                     int32_t pos) -> double {
    auto it = m.find(row);
    if (it == m.end()) return 0.0;
    const auto& idx = it->second.idx;
    auto p = std::lower_bound(idx.begin(), idx.end(), pos);
    if (p == idx.end() || *p != pos) return 0.0;
    return it->second.val[p - idx.begin()];
  };
  double max_err = 0.0;
  auto scan = [&](const linalg::ActivationMap& a,
                  const linalg::ActivationMap& b) {
    for (const auto& [row, vec] : a) {
      for (size_t p = 0; p < vec.idx.size(); ++p) {
        const double err =
            std::fabs(vec.val[p] - value_at(b, row, vec.idx[p]));
        max_err = std::max(max_err, err);
      }
    }
  };
  scan(expected, got);
  scan(got, expected);
  return max_err / max_mag;
}

}  // namespace

int main() {
  const ScaleConfig scale = ScaleConfig::FromEnv();
  const int32_t neurons = scale.NeuronsOr(4096);
  const int32_t workers = scale.WorkersOr(8);
  const bench::Workload& workload = bench::GetWorkload(neurons, scale);
  const part::ModelPartition& partition = bench::GetPartition(
      neurons, workers, part::PartitionScheme::kHypergraph, scale);

  bench::PrintHeader(
      StrFormat("DATA PLANE — wire codec sweep, N=%d, P=%d, L=%d, batch=%d",
                neurons, workers, workload.dnn.layers(), workload.batch),
      "bytes-on-wire and $/query vs rel-error (FSD-Inf-Queue)");

  std::printf("%-13s | %12s %9s | %-11s | %10s %10s | %s\n", "codec",
              "wire bytes", "vs LZ", "$/query", "bound", "e2e err",
              "pred rel.err");
  bench::PrintRule();

  const CodecPoint points[] = {
      {"lossless-raw", false, 0},
      {"lossless-lz", true, 0},
      {"quant-16", true, 16},
      {"quant-8", true, 8},
      {"quant-4", true, 4},
  };

  double lz_wire = 0.0;
  double lz_dollars = 0.0;
  double quant8_wire = 0.0;
  double quant8_dollars = 0.0;
  int64_t lossless_raw_payload = 0;
  std::vector<std::pair<std::string, double>> json;
  for (const CodecPoint& point : points) {
    core::FsdOptions options;
    options.variant = core::Variant::kQueue;
    options.num_workers = workers;
    options.compress = point.compress;
    options.quant_bits = point.quant_bits;
    // Quantized outputs differ from the reference within the bound, so the
    // bit-exact verification only applies to the lossless rows.
    core::InferenceReport report = bench::RunFsd(
        workload, partition, options, /*verify_output=*/point.quant_bits == 0);

    const core::LayerMetrics& t = report.metrics.totals;
    const double wire = static_cast<double>(t.send_wire_bytes);
    const double dollars =
        report.billing.faas_cost + report.billing.comm_cost;
    const double pred_rel_err =
        std::fabs(report.predicted.total - dollars) / std::max(1e-12, dollars);
    const double pred_comm_rel_err =
        std::fabs(report.predicted.communication - report.billing.comm_cost) /
        std::max(1e-12, report.billing.comm_cost);
    const double bound = point.quant_bits == 0
                             ? 0.0
                             : codec::QuantRelErrorBound(point.quant_bits);
    const double e2e_err =
        EndToEndRelError(workload.expected, report.outputs[0]);

    // The cost model's prediction is rebuilt from the run's counters — it
    // must land on the ledger regardless of codec. The byte-metered
    // communication term (where quantization moves dollars) reconciles to
    // <0.1%; the total also carries the compute term's launch-tree
    // residue, so it gets a looser sanity gate.
    FSD_CHECK(pred_comm_rel_err < 0.001);
    FSD_CHECK(pred_rel_err < 0.01);
    if (point.quant_bits != 0) {
      FSD_CHECK(t.quant_chunks > 0);
      FSD_CHECK(t.quant_err_max <= bound);
    } else {
      FSD_CHECK_EQ(t.quant_chunks, 0);
      FSD_CHECK(e2e_err == 0.0);
    }
    if (point.quant_bits == 0 && !point.compress) {
      lossless_raw_payload = t.send_raw_bytes;
    }
    if (point.quant_bits == 0 && point.compress) {
      lz_wire = wire;
      lz_dollars = dollars;
    }
    if (point.quant_bits == 8) {
      quant8_wire = wire;
      quant8_dollars = dollars;
    }

    std::printf("%-13s | %12.0f %8.1f%% | %-11s | %10.2e %10.2e | %.4f%%\n",
                point.name, wire,
                lz_wire > 0.0 ? (wire / lz_wire - 1.0) * 100.0 : 0.0,
                HumanDollars(dollars).c_str(), bound, e2e_err,
                pred_comm_rel_err * 100.0);
    const std::string key = point.name;
    json.emplace_back(key + ".send_wire_bytes", wire);
    json.emplace_back(key + ".dollars_per_query", dollars);
    json.emplace_back(key + ".e2e_rel_err", e2e_err);
  }

  // Acceptance gate: ≥30% bytes-on-wire reduction at the ≤1e-2 setting.
  FSD_CHECK(quant8_wire < 0.7 * lz_wire);

  // Break-even term vs what actually happened: a-priori wire sizes from
  // the measured raw payload, savings priced on the queue's byte meter.
  core::FsdOptions base;
  base.variant = core::Variant::kQueue;
  base.num_workers = workers;
  base.compress = true;
  const cloud::PricingConfig pricing;
  const cloud::ComputeModelConfig compute;
  const core::QuantBreakEvenEstimate be = core::EstimateQuantBreakEven(
      pricing, compute, base, core::Variant::kQueue,
      core::DefaultWorkerMemoryMb(workload.dnn.neurons(),
                                  core::Variant::kQueue),
      static_cast<double>(lossless_raw_payload), 8);
  std::printf(
      "\nbreak-even (b=8, a-priori): wire %.0f -> %.0f bytes, byte $ saved "
      "%.3e, cpu $ added %.3e, net %.3e (%s)\n",
      be.lossless_wire_bytes, be.quant_wire_bytes, be.byte_dollars_saved,
      be.cpu_dollars_added, be.net_saving,
      be.worthwhile ? "worthwhile" : "not worthwhile");
  std::printf(
      "measured:                  wire %.0f -> %.0f bytes (%.1f%%), "
      "$/query %s -> %s\n",
      lz_wire, quant8_wire, (quant8_wire / lz_wire - 1.0) * 100.0,
      HumanDollars(lz_dollars).c_str(), HumanDollars(quant8_dollars).c_str());

  json.emplace_back("quant8_wire_reduction_pct",
                    (1.0 - quant8_wire / lz_wire) * 100.0);
  json.emplace_back("quant8_net_saving_dollars", lz_dollars - quant8_dollars);

  // Wall-clock encode throughput of the quantized codec on this workload's
  // input rows — the gated *_bytes_per_sec key (smaller is worse).
  std::vector<int32_t> ids;
  for (const auto& [id, vec] : workload.input) ids.push_back(id);
  int64_t raw_bytes = 0;
  const auto start = std::chrono::steady_clock::now();
  const int encode_iters = scale.tiny ? 4 : 16;
  for (int it = 0; it < encode_iters; ++it) {
    core::EncodeResult encoded = core::EncodeRows(
        workload.input, ids, 224 * 1024, core::QuantCodec(8));
    for (const auto& chunk : encoded.chunks) raw_bytes += chunk.raw_bytes;
  }
  const double encode_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf("quantized encode throughput: %.1f MB/s\n",
              raw_bytes / std::max(1e-9, encode_s) / 1e6);
  json.emplace_back("quant8_encode_bytes_per_sec",
                    raw_bytes / std::max(1e-9, encode_s));
  bench::WriteBenchJson("data_plane", json);
  return 0;
}
