// Channel-backend microbenchmark: round-trip latency and per-exchange
// communication cost of the three CommChannel backends (queue, object, KV)
// across payload sizes, below the worker/model layer.
//
// Two workers ping-pong activation rows over the raw channel API; the
// round-trip time distribution isolates the channel service path (publish/
// fan-out/poll vs PUT/LIST/GET vs push/pop) from compute. Expected shapes:
//  - KV p50 beats the queue channel by >= 1 OOM at small payloads
//    (sub-millisecond cache ops vs ~10-40 ms queue/pub-sub API calls) —
//    asserted, this is the FSD-Inf-KV design claim
//  - at large payloads the gap narrows (transfer time dominates) and the
//    COST ranking inverts: KV's per-byte processing charges overtake
//    object storage's flat per-request pricing — asserted via the ledger,
//    and the cost model's per-variant predictions are printed alongside so
//    the crossover is explained, not just observed
#include <cstdio>
#include <functional>
#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "core/channel.h"
#include "core/metrics.h"

using namespace fsd;
using bench::ScaleConfig;

namespace {

struct PayloadSpec {
  const char* label;
  int32_t rows;
  int32_t nnz;
};

struct BackendResult {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double wire_per_round = 0.0;     // bytes each direction
  double actual_comm_per_round = 0.0;
  double predicted_comm_per_round = 0.0;
  double kv_node_per_round = 0.0;
  bool payloads_ok = true;
};

linalg::ActivationMap MakeRows(int32_t rows, int32_t nnz) {
  linalg::ActivationMap out;
  // Hash-scrambled values: real activations are not arithmetic sequences,
  // and the payload-size ladder must survive the compression stage.
  uint32_t h = 0x9E3779B9u;
  for (int32_t id = 0; id < rows; ++id) {
    linalg::SparseVector vec;
    vec.dim = nnz;
    for (int32_t j = 0; j < nnz; ++j) {
      h ^= h << 13;
      h ^= h >> 17;
      h ^= h << 5;
      vec.idx.push_back(j);
      vec.val.push_back(1.0f +
                        static_cast<float>(h % 100000u) * 1.0e-5f);
    }
    out.emplace(id, std::move(vec));
  }
  return out;
}

BackendResult RunPingPong(core::Variant variant, const PayloadSpec& payload,
                          int32_t rounds) {
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  core::FsdOptions options;
  options.variant = variant;
  options.num_workers = 2;
  options.object_scan_interval_s = 0.005;
  options.kv_poll_wait_s = 0.5;
  FSD_CHECK_OK(core::ProvisionChannelResources(&cloud, options));

  const linalg::ActivationMap rows = MakeRows(payload.rows, payload.nnz);
  std::vector<int32_t> ids;
  for (int32_t id = 0; id < payload.rows; ++id) ids.push_back(id);

  BackendResult result;
  std::vector<double> rtts;
  core::RunMetrics metrics;
  metrics.workers.resize(2);

  auto register_worker = [&](int32_t worker_id,
                             std::function<void(core::WorkerEnv*,
                                                core::CommChannel*)> body) {
    cloud::FaasFunctionConfig fn;
    fn.name = StrFormat("pingpong-%d", worker_id);
    fn.memory_mb = 2048;
    fn.timeout_s = 600.0;
    fn.handler = [&, worker_id, body](cloud::FaasContext* ctx) {
      std::unique_ptr<core::CommChannel> channel =
          core::MakeCommChannel(variant);
      core::WorkerEnv env;
      env.faas = ctx;
      env.cloud = &cloud;
      env.options = &options;
      env.metrics = &metrics.workers[worker_id];
      env.worker_id = worker_id;
      body(&env, channel.get());
      ctx->set_result(Status::OK());
    };
    FSD_CHECK_OK(cloud.faas().RegisterFunction(fn));
  };

  register_worker(0, [&](core::WorkerEnv* env, core::CommChannel* channel) {
    for (int32_t r = 0; r < rounds; ++r) {
      const double t0 = sim.Now();
      std::vector<core::SendSpec> sends{{1, &ids}};
      FSD_CHECK_OK(channel->SendPhase(env, 2 * r, rows, sends));
      auto got = channel->ReceivePhase(env, 2 * r + 1, {1});
      FSD_CHECK_OK(got.status());
      rtts.push_back(sim.Now() - t0);
      result.payloads_ok &= (*got == rows);
    }
  });
  register_worker(1, [&](core::WorkerEnv* env, core::CommChannel* channel) {
    for (int32_t r = 0; r < rounds; ++r) {
      auto got = channel->ReceivePhase(env, 2 * r, {0});
      FSD_CHECK_OK(got.status());
      std::vector<core::SendSpec> sends{{0, &ids}};
      FSD_CHECK_OK(channel->SendPhase(env, 2 * r + 1, *got, sends));
    }
  });

  const std::vector<cloud::BillingLine> before =
      core::SnapshotLedger(cloud.billing());
  sim.AddProcess("kickoff", [&]() {
    cloud.faas().InvokeAsync("pingpong-0", {});
    cloud.faas().InvokeAsync("pingpong-1", {});
  });
  sim.Run();
  FSD_CHECK_OK(core::TeardownChannelResources(&cloud, options));
  const core::BillingDelta delta =
      core::DiffLedger(before, cloud.billing());

  metrics.Finalize();
  result.p50_ms = core::Percentile(rtts, 50.0) * 1e3;
  result.p95_ms = core::Percentile(rtts, 95.0) * 1e3;
  result.wire_per_round =
      static_cast<double>(metrics.totals.send_wire_bytes) / (2.0 * rounds);
  const double node_cost =
      delta.quantity(cloud::BillingDimension::kKvNodeSecond) *
      cloud.billing().pricing().kv_node_hourly / 3600.0;
  result.kv_node_per_round = node_cost / rounds;
  result.actual_comm_per_round = (delta.comm_cost - node_cost) / rounds;
  // The analytic side of the story: the same request counters fed through
  // the cost model (Eqs. 5-7 + the KV terms) must explain the ledger.
  const core::CostBreakdown predicted = core::PredictFromMetrics(
      cloud.billing().pricing(), options, metrics, /*memory_mb=*/2048);
  result.predicted_comm_per_round = predicted.communication / rounds;
  return result;
}

}  // namespace

int main() {
  const ScaleConfig scale = ScaleConfig::FromEnv();
  const int32_t rounds = scale.tiny ? 6 : 30;
  const std::vector<PayloadSpec> payloads = {
      {"small", 8, 8},       // ~0.3 KiB wire: barrier/collective regime
      {"medium", 64, 128},   // ~tens of KiB: typical sparse layer exchange
      {"large", 256, 512},   // ~0.5 MiB: dense-ish activation volumes
  };
  const core::Variant backends[3] = {core::Variant::kQueue,
                                     core::Variant::kObject,
                                     core::Variant::kKv};

  bench::PrintHeader(
      "CHANNEL BACKENDS — raw round-trip latency and $/exchange by payload",
      StrFormat("2 workers ping-pong, %d rounds per cell; comm $ excludes "
                "the KV node's standing cost (shown separately)",
                rounds));

  std::map<std::pair<int, int>, BackendResult> results;
  for (size_t p = 0; p < payloads.size(); ++p) {
    std::printf("\npayload %s (rows=%d nnz=%d)\n", payloads[p].label,
                payloads[p].rows, payloads[p].nnz);
    std::printf("%-16s | %-10s %-10s %-12s | %-14s %-14s %s\n", "Backend",
                "p50 ms", "p95 ms", "wire/round", "comm $/round",
                "model $/round", "node $/round");
    bench::PrintRule();
    for (int b = 0; b < 3; ++b) {
      const BackendResult r =
          RunPingPong(backends[b], payloads[p], rounds);
      results[{static_cast<int>(p), b}] = r;
      FSD_CHECK(r.payloads_ok);
      std::printf("%-16s | %-10.3f %-10.3f %-12s | %-14s %-14s %s\n",
                  std::string(core::VariantName(backends[b])).c_str(),
                  r.p50_ms, r.p95_ms,
                  HumanBytes(r.wire_per_round).c_str(),
                  HumanDollars(r.actual_comm_per_round).c_str(),
                  HumanDollars(r.predicted_comm_per_round).c_str(),
                  r.kv_node_per_round > 0.0
                      ? HumanDollars(r.kv_node_per_round).c_str()
                      : "-");
    }
  }

  // The design claims, asserted: KV wins latency at small payloads; object
  // storage still wins cost at large ones (per-byte cache metering vs flat
  // per-request pricing) — the §IV-C-style trade-off the recommender uses.
  const BackendResult& queue_small = results[{0, 0}];
  const BackendResult& kv_small = results[{0, 2}];
  const BackendResult& object_large = results[{2, 1}];
  const BackendResult& kv_large = results[{2, 2}];
  std::printf("\nKV p50 at small payloads: %.3f ms vs queue %.3f ms "
              "(%.1fx faster)\n",
              kv_small.p50_ms, queue_small.p50_ms,
              queue_small.p50_ms / kv_small.p50_ms);
  std::printf("Object comm $ at large payloads: %s vs KV %s per round\n",
              HumanDollars(object_large.actual_comm_per_round).c_str(),
              HumanDollars(kv_large.actual_comm_per_round).c_str());
  FSD_CHECK_LT(kv_small.p50_ms, queue_small.p50_ms);
  FSD_CHECK_LT(object_large.actual_comm_per_round,
               kv_large.actual_comm_per_round);
  bench::WriteBenchJson(
      "channel_backends",
      {{"queue_small_p50_ms", queue_small.p50_ms},
       {"queue_small_p95_ms", queue_small.p95_ms},
       {"kv_small_p50_ms", kv_small.p50_ms},
       {"kv_small_p95_ms", kv_small.p95_ms},
       {"kv_small_speedup_vs_queue",
        queue_small.p50_ms / kv_small.p50_ms},
       {"object_large_comm_per_round", object_large.actual_comm_per_round},
       {"kv_large_comm_per_round", kv_large.actual_comm_per_round}});
  std::printf(
      "\n%s\n",
      bench::PaperNote(
          "the paper ships queue + object channels; the KV channel is the "
          "FMI-style low-latency extension — fastest at small payloads, "
          "priced out at volume")
          .c_str());
  return 0;
}
