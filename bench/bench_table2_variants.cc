// Reproduces paper Table II: end-to-end per-sample runtime (ms) of the
// optimal parallel FSD-Inference variant, FSD-Inf-Serial, and Sage-SL-Inf
// per model width. Also reports the endpoint caps Sage hits (the paper's
// footnote: Sage only served 8000/2500/1000 of 10000 samples, and failed
// entirely at N = 65536, as did Serial).
#include <cstdio>

#include "bench/bench_common.h"
#include "common/strings.h"

using namespace fsd;
using bench::ScaleConfig;

int main() {
  const ScaleConfig scale = ScaleConfig::FromEnv();
  bench::PrintHeader(
      "TABLE II — End-to-end per-sample runtime (ms): FSD-Inf-Parallel vs "
      "FSD-Inf-Serial vs Sage-SL-Inf",
      "paper values: N=1024: 6.43/2.00/2.26*  4096: 8.22/7.88/10.06*  "
      "16384: 12.97/32.62/37.07*  65536: 23.53/-/-");

  std::printf("%7s | %-16s %-14s %-16s\n", "N", "FSD-Inf-Parallel",
              "FSD-Inf-Serial", "Sage-SL-Inf");
  bench::PrintRule();

  for (int32_t neurons : scale.NeuronCounts()) {
    const bench::Workload& workload = bench::GetWorkload(neurons, scale);

    // Optimal parallel config: best per-sample time across the queue-channel
    // P sweep plus one object-channel point (the two channels' runtimes
    // track each other per Fig. 6; cost differs, not covered here).
    double best_parallel = -1.0;
    {
      // Two representative P points bracket the optimum (the full sweep is
      // bench_fig6_scaling's job).
      auto sweep = bench::SweepWorkers(neurons, core::Variant::kQueue, scale,
                                       scale.RepresentativeWorkers());
      for (auto& [workers, report] : sweep) {
        if (!report.status.ok()) continue;
        if (best_parallel < 0.0 || report.per_sample_ms < best_parallel) {
          best_parallel = report.per_sample_ms;
        }
      }
      const int32_t p_object = scale.WorkersOr(42);
      const part::ModelPartition& p42 = bench::GetPartition(
          neurons, p_object, part::PartitionScheme::kHypergraph, scale);
      core::FsdOptions options;
      options.variant = core::Variant::kObject;
      options.num_workers = p_object;
      core::InferenceReport report =
          bench::RunFsd(workload, p42, options);
      if (report.status.ok() &&
          (best_parallel < 0.0 || report.per_sample_ms < best_parallel)) {
        best_parallel = report.per_sample_ms;
      }
    }

    // FSD-Inf-Serial: single 10240 MB instance. Feasibility is gated at
    // paper dimensions (120 layers, 10k batch): N=65536 exceeds the cap
    // there even though the layer-reduced bench model would fit.
    std::string serial = "-";
    if (bench::SerialFitsPaperScale(neurons)) {
      const part::ModelPartition& single = bench::GetPartition(
          neurons, 1, part::PartitionScheme::kBlock, scale);
      core::FsdOptions options;
      options.variant = core::Variant::kSerial;
      options.num_workers = 1;
      core::InferenceReport report = bench::RunFsd(workload, single, options);
      if (report.status.ok()) {
        serial = StrFormat("%.3f", report.per_sample_ms);
      }
    } else {
      serial = "- (exceeds 10 GB FaaS cap)";
    }

    // Sage-SL-Inf: 6 GB / 6 MB / 60 s endpoint; memory gate likewise at
    // paper-scale model size.
    std::string sage;
    const double sage_model_mb =
        bench::PaperScaleModelBytes(neurons) * 1.6 / (1024.0 * 1024.0);
    if (sage_model_mb > 6144.0) {
      sage = "- (model exceeds 6 GB endpoint)";
    } else {
      sim::Simulation sim;
      cloud::CloudEnv cloud(&sim);
      const baselines::SageReport report = baselines::RunSageServerless(
          &cloud, workload.dnn, workload.stats, workload.batch);
      if (report.served_samples == 0) {
        sage = StrFormat("- (%s)",
                         std::string(StatusCodeToString(report.status.code()))
                             .c_str());
      } else if (!report.status.ok()) {
        sage = StrFormat("%.3f* (%d/%d samples)", report.per_sample_ms,
                         report.served_samples, report.requested_samples);
      } else {
        sage = StrFormat("%.3f", report.per_sample_ms);
      }
    }

    std::printf("%7d | %-16s %-14s %-16s\n", neurons,
                best_parallel < 0 ? "-"
                                  : StrFormat("%.3f", best_parallel).c_str(),
                serial.c_str(), sage.c_str());
  }
  std::printf(
      "\nPaper shapes: Serial wins at N<=4096; Parallel wins from N=16384;\n"
      "Serial and Sage cannot run N=65536 at all.\n");
  return 0;
}
