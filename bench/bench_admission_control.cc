// Admission-control benchmark: an overload sweep (0.5x-4x of the
// deployment's sustainable qps) against a slot-bounded serving fleet,
// with and without SLO-aware admission.
//
// The regime: a fixed budget of concurrent worker trees (the account-level
// FaaS concurrency limit divided by tree size). Below saturation both
// modes behave identically. Beyond it, the unadmitted baseline queues
// every arrival unconditionally — the backlog, and with it every accepted
// query's latency, grows linearly with the overload factor, and almost
// nothing finishes inside its deadline. With admission on, arrivals beyond
// the queue bound are REJECTED (typed outcome, not silent degradation):
// the queue stays shallow, accepted-query p95 stays bounded by
// (depth / slots + 1) tree times, and goodput (deadline-hitting completed
// queries per second) holds near the sustainable rate.
//
// Asserted shapes:
//  - with admission on, p95 latency of ACCEPTED queries stays bounded at
//    every overload factor (within the queue-depth bound implied by the
//    measured single-query time)
//  - at 2x overload, admission goodput strictly exceeds the unadmitted
//    baseline's
//  - FleetStats reconciles exactly with per-query outcomes: the
//    disposition partition sums to submissions, and deadline_hits equals
//    the hand count of deadline-met completed queries
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "core/serving.h"

using namespace fsd;
using bench::ScaleConfig;

namespace {

constexpr int32_t kSlots = 2;       // concurrent worker trees
constexpr int32_t kQueueDepth = 4;  // admission bound: 2 batches per slot

struct ModeResult {
  int32_t completed = 0;
  int32_t rejected = 0;
  double p95_s = 0.0;      ///< accepted (completed) queries only
  double goodput_qps = 0.0;
  double throughput_qps = 0.0;
  double slo_attainment = 0.0;
};

ModeResult RunMode(const bench::Workload& workload,
                   const part::ModelPartition& partition,
                   const std::vector<double>& arrivals, double slo_deadline_s,
                   bool admission) {
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  core::ServingOptions options;
  options.max_concurrent_runs = kSlots;
  if (admission) {
    options.admission_control = true;
    options.max_queue_depth = kQueueDepth;
  }
  core::ServingRuntime serving(&cloud, options);

  core::InferenceRequest request;
  request.dnn = &workload.dnn;
  request.partition = &partition;
  request.batches = {&workload.input};
  request.options.variant = core::Variant::kQueue;
  request.options.num_workers = partition.num_parts;
  request.options.slo_deadline_s = slo_deadline_s;
  for (double arrival : arrivals) {
    FSD_CHECK_OK(serving.Submit(request, arrival).status());
  }
  auto report = serving.Drain();
  FSD_CHECK_OK(report.status());

  // FleetStats must reconcile with the per-query outcomes EXACTLY.
  int32_t completed = 0, rejected = 0, shed = 0, failed = 0;
  int32_t deadline_queries = 0, deadline_hits = 0;
  for (const core::QueryOutcome& outcome : report->queries) {
    switch (outcome.disposition) {
      case core::QueryDisposition::kCompleted:
        ++completed;
        FSD_CHECK_OK(outcome.report.status);
        FSD_CHECK(outcome.report.outputs[0] == workload.expected);
        if (std::isfinite(outcome.deadline_s)) {
          ++deadline_queries;
          if (outcome.deadline_met) ++deadline_hits;
        }
        break;
      case core::QueryDisposition::kRejected:
        ++rejected;
        FSD_CHECK(!outcome.reject_reason.empty());
        break;
      case core::QueryDisposition::kShed:
        ++shed;
        break;
      default:
        ++failed;
        break;
    }
  }
  FSD_CHECK_EQ(report->fleet.completed, completed);
  FSD_CHECK_EQ(report->fleet.rejected, rejected);
  FSD_CHECK_EQ(report->fleet.shed, shed);
  FSD_CHECK_EQ(report->fleet.failed, failed);
  FSD_CHECK_EQ(completed + rejected + shed + failed,
               static_cast<int32_t>(report->queries.size()));
  FSD_CHECK_EQ(report->fleet.deadline_queries, deadline_queries);
  FSD_CHECK_EQ(report->fleet.deadline_hits, deadline_hits);
  FSD_CHECK_EQ(failed, 0);

  ModeResult result;
  result.completed = completed;
  result.rejected = rejected;
  result.p95_s = report->fleet.latency_p95_s;
  result.goodput_qps = report->fleet.goodput_qps;
  result.throughput_qps = report->fleet.throughput_qps;
  result.slo_attainment = report->fleet.slo_attainment;
  return result;
}

}  // namespace

int main() {
  const ScaleConfig scale = ScaleConfig::FromEnv();
  const int32_t neurons = 1024;  // small queries: the sweep is about load
  const int32_t workers = 4;
  const int32_t queries = scale.tiny ? 16 : 32;
  bench::OverrideBatch(neurons, 8);
  const bench::Workload& workload = bench::GetWorkload(neurons, scale);
  const part::ModelPartition& partition = bench::GetPartition(
      neurons, workers, part::PartitionScheme::kHypergraph, scale);

  // Calibrate cold and warm tree times with two well-separated queries on
  // one fleet: a steady-state deployment serves warm, so the WARM time is
  // what bounds sustainable throughput; the cold time sizes the latency
  // bound headroom for the sweep's first arrivals.
  double cold_tree_s = 0.0;
  double warm_tree_s = 0.0;
  {
    sim::Simulation sim;
    cloud::CloudEnv cloud(&sim);
    core::ServingRuntime serving(&cloud);
    core::InferenceRequest request;
    request.dnn = &workload.dnn;
    request.partition = &partition;
    request.batches = {&workload.input};
    request.options.variant = core::Variant::kQueue;
    request.options.num_workers = partition.num_parts;
    FSD_CHECK_OK(serving.Submit(request, 0.0).status());
    FSD_CHECK_OK(serving.Submit(request, 60.0).status());
    auto report = serving.Drain();
    FSD_CHECK_OK(report.status());
    cold_tree_s = report->queries[0].report.latency_s;
    warm_tree_s = report->queries[1].report.latency_s;
  }
  const double sustainable_qps = static_cast<double>(kSlots) / warm_tree_s;
  const double slo_deadline_s = 4.0 * warm_tree_s;
  // Accepted-query latency bound under admission: at most kQueueDepth
  // queued ahead across kSlots slots, plus the query's own tree time, with
  // cold-start headroom (the bound uses the cold time; the queue math the
  // warm one).
  const double p95_bound_s =
      cold_tree_s +
      static_cast<double>(kQueueDepth) / kSlots * warm_tree_s * 1.5;

  bench::PrintHeader(
      StrFormat("ADMISSION CONTROL — N=%d, P=%d, %d slots, %d queries/point",
                neurons, workers, kSlots, queries),
      StrFormat("overload sweep at 0.5x-4x sustainable (%.2f qps, tree "
                "%.2fs cold / %.2fs warm, SLO %.2fs): depth-bound admission "
                "vs accept-everything",
                sustainable_qps, cold_tree_s, warm_tree_s, slo_deadline_s));

  std::printf("%-8s | %-28s | %-28s\n", "", "no admission", "admission");
  std::printf("%-8s | %-6s %-8s %-6s %-5s | %-6s %-8s %-6s %-5s\n", "load",
              "done", "p95", "goodpt", "slo%", "done", "p95", "goodpt",
              "slo%");
  bench::PrintRule();

  const std::vector<double> factors{0.5, 1.0, 2.0, 4.0};
  std::vector<std::pair<std::string, double>> json;
  ModeResult base_2x, admit_2x;
  double admit_p95_worst = 0.0;
  for (double factor : factors) {
    const std::vector<double> arrivals = core::PoissonArrivals(
        factor * sustainable_qps, queries, /*seed=*/4242);
    const ModeResult base =
        RunMode(workload, partition, arrivals, slo_deadline_s, false);
    const ModeResult admit =
        RunMode(workload, partition, arrivals, slo_deadline_s, true);
    if (factor == 2.0) {
      base_2x = base;
      admit_2x = admit;
    }
    if (admit.p95_s > admit_p95_worst) admit_p95_worst = admit.p95_s;
    std::printf(
        "%6.1fx | %6d %7.2fs %6.2f %5.0f | %6d %7.2fs %6.2f %5.0f\n", factor,
        base.completed, base.p95_s, base.goodput_qps,
        100.0 * base.slo_attainment, admit.completed, admit.p95_s,
        admit.goodput_qps, 100.0 * admit.slo_attainment);
    const std::string tag = StrFormat("%g", factor);
    json.push_back({"baseline_p95_latency_s_" + tag + "x", base.p95_s});
    json.push_back({"admission_p95_latency_s_" + tag + "x", admit.p95_s});
    json.push_back({"baseline_goodput_qps_" + tag + "x", base.goodput_qps});
    json.push_back({"admission_goodput_qps_" + tag + "x", admit.goodput_qps});
    json.push_back(
        {"admission_rejected_" + tag + "x",
         static_cast<double>(admit.rejected)});
  }
  json.push_back({"sustainable_qps", sustainable_qps});
  json.push_back({"cold_tree_s", cold_tree_s});
  json.push_back({"warm_tree_s", warm_tree_s});
  json.push_back({"admission_p95_bound_s", p95_bound_s});
  bench::WriteBenchJson("admission_control", json);

  std::printf(
      "\naccepted-query p95 under admission stays <= %.2fs at every load "
      "(worst %.2fs); goodput at 2x overload: %.2f qps admitted vs %.2f qps "
      "baseline\n",
      p95_bound_s, admit_p95_worst, admit_2x.goodput_qps,
      base_2x.goodput_qps);

  // The acceptance claims, asserted (the sweep is virtual-time
  // deterministic, so these are exact regressions, not noisy thresholds).
  FSD_CHECK_LE(admit_p95_worst, p95_bound_s);
  FSD_CHECK_GT(admit_2x.goodput_qps, base_2x.goodput_qps);
  FSD_CHECK_GT(admit_2x.rejected, 0);
  FSD_CHECK_EQ(base_2x.rejected, 0);

  std::printf(
      "\n%s\n",
      bench::PaperNote(
          "the paper serves one query at a time; admission control + load "
          "shedding is the serving extension (cf. lambda-scale policy-driven "
          "scaling and the serverless-MoE cost/SLO deployment framing)")
          .c_str());
  return 0;
}
