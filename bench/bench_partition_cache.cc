// Partition-cache benchmark: cross-query warm-state reuse (λScale-style)
// on a repeated-family serving workload, cache on vs off.
//
// The workload is the serving sweet spot the cache targets: a stream of
// queries of ONE model family, spaced inside the FaaS keep-alive so every
// query after the first runs on warm instances. With the cache off, each
// of those warm workers still re-reads its entire model share from object
// storage; with the cache on, a worker whose instance already deserialized
// its (family, partition, version) share skips the read outright.
//
// Asserted shapes:
//  - warm-hit queries beat cache-off on p50 end-to-end latency
//  - the workload's projected daily cost drops (fewer GETs + less billed
//    runtime)
//  - the cost model's predicted object-GET savings (measured hit counts x
//    C_S3(Get)) validate against the billing ledger's cache-off vs
//    cache-on GET delta to < 0.1% (the §VI-F methodology applied to the
//    new cache-aware model-read term)
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "core/serving.h"

using namespace fsd;
using bench::ScaleConfig;

namespace {

struct ModeResult {
  double p50_s = 0.0;
  double p95_s = 0.0;
  double daily_cost = 0.0;
  double cost = 0.0;
  double hit_ratio = 0.0;
  double object_gets = 0.0;      ///< whole-workload ledger GETs
  int64_t model_gets_saved = 0;  ///< GETs skipped by cache hits
  int64_t model_bytes_saved = 0;
  bool outputs_ok = true;
};

ModeResult RunMode(const bench::Workload& workload,
                   const part::ModelPartition& partition,
                   const std::vector<double>& arrivals, bool cache_on) {
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  core::ServingRuntime serving(&cloud);
  core::InferenceRequest request;
  request.dnn = &workload.dnn;
  request.partition = &partition;
  request.batches = {&workload.input};
  // Queue variant: object-storage traffic is then the model reads alone,
  // so the ledger's GET line isolates exactly what the cache saves.
  request.options.variant = core::Variant::kQueue;
  request.options.num_workers = partition.num_parts;
  request.options.partition_cache = cache_on;
  for (double arrival : arrivals) {
    FSD_CHECK_OK(serving.Submit(request, arrival).status());
  }
  auto report = serving.Drain();
  FSD_CHECK_OK(report.status());
  ModeResult result;
  for (const core::QueryOutcome& outcome : report->queries) {
    FSD_CHECK_OK(outcome.report.status);
    result.outputs_ok &= outcome.report.outputs.size() == 1 &&
                         outcome.report.outputs[0] == workload.expected;
  }
  result.p50_s = report->fleet.latency_p50_s;
  result.p95_s = report->fleet.latency_p95_s;
  result.daily_cost = report->fleet.daily_cost;
  result.cost = report->billing.total_cost;
  result.hit_ratio = report->fleet.cache_hit_ratio;
  result.object_gets =
      report->billing.quantity(cloud::BillingDimension::kObjectGet);
  result.model_gets_saved = report->fleet.model_gets_saved;
  result.model_bytes_saved = report->fleet.model_bytes_saved;
  return result;
}

}  // namespace

int main() {
  const ScaleConfig scale = ScaleConfig::FromEnv();
  const int32_t neurons = scale.NeuronsOr(4096);
  const int32_t workers = scale.WorkersOr(8);
  const int32_t queries = scale.tiny ? 8 : 24;
  const bench::Workload& workload = bench::GetWorkload(neurons, scale);
  const part::ModelPartition& partition = bench::GetPartition(
      neurons, workers, part::PartitionScheme::kHypergraph, scale);

  bench::PrintHeader(
      StrFormat("PARTITION CACHE — repeated-family serving, N=%d, P=%d, "
                "%d queries",
                neurons, workers, queries),
      "cross-query warm-state reuse vs every-query-reads (cache off)");

  // One query every 20 s: no overlap between queries, every instance stays
  // inside the keep-alive — the pure warm-reuse regime.
  const std::vector<double> arrivals =
      core::BurstArrivals(/*bursts=*/queries, /*per_burst=*/1, /*gap_s=*/20.0);

  const ModeResult off = RunMode(workload, partition, arrivals, false);
  const ModeResult on = RunMode(workload, partition, arrivals, true);

  std::printf("%-10s | %-10s %-10s | %-12s %-12s | %-7s %-10s %s\n", "mode",
              "p50", "p95", "workload $", "daily $", "hit%", "GETs",
              "bytes saved");
  bench::PrintRule();
  std::printf("%-10s | %8.3fs %8.3fs | %-12s %-12s | %6.1f%% %10.0f %s\n",
              "cache-off", off.p50_s, off.p95_s,
              HumanDollars(off.cost).c_str(),
              HumanDollars(off.daily_cost).c_str(), 100.0 * off.hit_ratio,
              off.object_gets, "-");
  std::printf("%-10s | %8.3fs %8.3fs | %-12s %-12s | %6.1f%% %10.0f %s\n",
              "cache-on", on.p50_s, on.p95_s, HumanDollars(on.cost).c_str(),
              HumanDollars(on.daily_cost).c_str(), 100.0 * on.hit_ratio,
              on.object_gets,
              HumanBytes(static_cast<double>(on.model_bytes_saved)).c_str());

  // --- cost-model validation of the cache-aware GET term (§VI-F style):
  // predicted savings from measured hit counts vs the ledger's GET delta.
  const cloud::PricingConfig pricing;
  const double predicted_gets_saved =
      static_cast<double>(on.model_gets_saved);
  const double ledger_gets_saved = off.object_gets - on.object_gets;
  const double predicted_savings =
      predicted_gets_saved * pricing.object_per_get;
  const double ledger_savings = ledger_gets_saved * pricing.object_per_get;
  const double rel_err =
      std::abs(predicted_savings - ledger_savings) /
      std::max(1e-12, ledger_savings);

  // A-priori projection at the measured hit ratio (the recommender's view).
  const core::ModelReadEstimate estimate = core::EstimateModelReads(
      pricing, workload.dnn, partition, on.hit_ratio);

  std::printf(
      "\npredicted GET savings: %.0f GETs (%s) | ledger: %.0f GETs (%s) | "
      "rel.err %.4f%%\n",
      predicted_gets_saved, HumanDollars(predicted_savings).c_str(),
      ledger_gets_saved, HumanDollars(ledger_savings).c_str(),
      rel_err * 100.0);
  std::printf(
      "a-priori EstimateModelReads @ hit=%.1f%%: %.1f GETs/query issued, "
      "%.1f saved (%s/query)\n",
      100.0 * on.hit_ratio, estimate.get_parts, estimate.gets_saved,
      HumanDollars(estimate.savings).c_str());
  std::printf("p50 speedup %.2fx, daily cost %.2fx cheaper, outputs %s\n",
              off.p50_s / on.p50_s, off.daily_cost / on.daily_cost,
              (off.outputs_ok && on.outputs_ok) ? "IDENTICAL" : "MISMATCH");

  bench::WriteBenchJson(
      "partition_cache",
      {{"cache_off_p50_latency_s", off.p50_s},
       {"cache_off_p95_latency_s", off.p95_s},
       {"cache_off_daily_cost", off.daily_cost},
       {"cache_on_p50_latency_s", on.p50_s},
       {"cache_on_p95_latency_s", on.p95_s},
       {"cache_on_daily_cost", on.daily_cost},
       {"cache_hit_ratio", on.hit_ratio},
       {"p50_speedup", off.p50_s / on.p50_s},
       {"get_savings_rel_err", rel_err}});

  // The acceptance claims, asserted.
  FSD_CHECK(off.outputs_ok);
  FSD_CHECK(on.outputs_ok);
  FSD_CHECK_GT(on.hit_ratio, 0.0);
  FSD_CHECK_LT(on.p50_s, off.p50_s);
  FSD_CHECK_LT(on.daily_cost, off.daily_cost);
  FSD_CHECK_GT(ledger_gets_saved, 0.0);
  FSD_CHECK_LT(rel_err, 0.001);

  std::printf(
      "\n%s\n",
      bench::PaperNote(
          "the paper's workers re-read their share every query; the cache "
          "is the λScale-style serving extension (arXiv:2502.09922)")
          .c_str());
  return 0;
}
