// Cross-query batching benchmark: at high same-family arrival rates,
// coalescing concurrent queries into shared worker trees amortizes the
// per-query launch — P invocations, P model-share loads (GETs + billed
// deserialization runtime), the invocation tree — across every member of
// the batch.
//
// The workload is the regime the aggregator targets: interactive queries
// (small sample batches) against a HEAVY model, arriving faster than one
// worker tree turns around. Per-query cost is then dominated by the fixed
// tree launch (model loads above all), which batching divides by the
// occupancy; the per-batch compute/communication that cannot amortize is
// small. Two modes on the identical Poisson trace, identical options:
//  - unbatched: batch_window_s = 0, one worker tree per query (PR 1-3
//    serving; at these rates queries overlap, so instances are rarely
//    reused warm and every tree re-reads its model shares)
//  - batched:   same-family queries coalesce, up to 8 per tree
//
// Asserted shapes:
//  - per-query outputs byte-identical across the two modes (and vs the
//    serial reference)
//  - >= 30% cost-per-query reduction (or >= 1.5x throughput) at full
//    scale; latency pays the coalescing window, printed not hidden
//  - workload-level cost-model reconciliation: summed per-member
//    predictions match the ledger's communication charges to < 0.1%
//    (member metric slices sum exactly to run totals; the queue channel's
//    billed-byte counters meter the pub-sub Z term exactly)
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "core/serving.h"

using namespace fsd;
using bench::ScaleConfig;

namespace {

struct ModeResult {
  double throughput_qps = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double queue_wait_p95_s = 0.0;
  double occupancy = 0.0;
  int32_t runs = 0;
  int64_t invocations = 0;
  double object_gets = 0.0;
  double cost = 0.0;
  double cost_per_query = 0.0;
  double daily_cost = 0.0;
  double predicted_comm = 0.0;  ///< summed per-query comm predictions
  double ledger_comm = 0.0;
  bool outputs_ok = true;
};

ModeResult RunMode(const bench::Workload& workload,
                   const part::ModelPartition& partition,
                   const std::vector<double>& arrivals,
                   double batch_window_s) {
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  core::ServingOptions serving_options;
  serving_options.batch_window_s = batch_window_s;
  serving_options.max_batch_queries = 8;
  core::ServingRuntime serving(&cloud, serving_options);

  core::InferenceRequest request;
  request.dnn = &workload.dnn;
  request.partition = &partition;
  request.batches = {&workload.input};
  // Queue variant: per-batch IPC is API-call priced (the cheap dimension),
  // so the model-share reads and tree launch — exactly what batching
  // amortizes — carry their real weight in the bill.
  request.options.variant = core::Variant::kQueue;
  request.options.num_workers = partition.num_parts;
  for (double arrival : arrivals) {
    FSD_CHECK_OK(serving.Submit(request, arrival).status());
  }
  auto report = serving.Drain();
  FSD_CHECK_OK(report.status());

  ModeResult result;
  for (const core::QueryOutcome& outcome : report->queries) {
    FSD_CHECK_OK(outcome.report.status);
    result.outputs_ok &= outcome.report.outputs.size() == 1 &&
                         outcome.report.outputs[0] == workload.expected;
    result.predicted_comm += outcome.report.predicted.communication;
  }
  result.throughput_qps = report->fleet.throughput_qps;
  result.p50_s = report->fleet.latency_p50_s;
  result.p95_s = report->fleet.latency_p95_s;
  result.queue_wait_p95_s = report->fleet.queue_wait_p95_s;
  result.occupancy = report->fleet.batch_occupancy_mean;
  result.runs = report->fleet.runs;
  result.invocations = report->fleet.worker_invocations;
  result.object_gets =
      report->billing.quantity(cloud::BillingDimension::kObjectGet);
  result.cost = report->billing.total_cost;
  result.cost_per_query = report->fleet.cost_per_query;
  result.daily_cost = report->fleet.daily_cost;
  result.ledger_comm = report->billing.comm_cost;
  return result;
}

}  // namespace

int main() {
  const ScaleConfig scale = ScaleConfig::FromEnv();
  // Wide model, few workers: big shares make the per-query tree launch
  // (model reads above all) the dominant cost. P=2 is the cost-lean
  // deployment the recommender favours for interactive volumes (Table II:
  // fewer workers win at small batches); per-query batches are 8 samples.
  const int32_t neurons = scale.NeuronsOr(65536);
  const int32_t workers = scale.tiny ? 4 : 2;
  const int32_t queries = scale.tiny ? 8 : 24;
  const double rate_qps = 24.0;
  const double window_s = 0.5;
  bench::OverrideBatch(neurons, 8);
  const bench::Workload& workload = bench::GetWorkload(neurons, scale);
  const part::ModelPartition& partition = bench::GetPartition(
      neurons, workers, part::PartitionScheme::kHypergraph, scale);

  bench::PrintHeader(
      StrFormat("CROSS-QUERY BATCHING — N=%d, P=%d, %d same-family "
                "8-sample queries at %.0f qps",
                neurons, workers, queries, rate_qps),
      StrFormat("shared worker trees (window=%.2fs, <=8 queries/tree) vs "
                "one tree per query",
                window_s));

  const std::vector<double> arrivals =
      core::PoissonArrivals(rate_qps, queries, /*seed=*/4242);
  const ModeResult solo = RunMode(workload, partition, arrivals, 0.0);
  const ModeResult batched = RunMode(workload, partition, arrivals, window_s);

  std::printf("%-10s | %-8s %-8s %-8s %-8s | %-5s %-6s %-8s | %-10s %-10s\n",
              "mode", "qps", "p50", "p95", "qwait95", "trees", "occ",
              "GETs", "$/query", "daily $");
  bench::PrintRule();
  for (const auto& [name, r] :
       {std::pair<const char*, const ModeResult&>{"unbatched", solo},
        std::pair<const char*, const ModeResult&>{"batched", batched}}) {
    std::printf(
        "%-10s | %8.3f %7.3fs %7.3fs %7.3fs | %5d %6.2f %8.0f | %-10s %-10s\n",
        name, r.throughput_qps, r.p50_s, r.p95_s, r.queue_wait_p95_s,
        r.runs, r.occupancy, r.object_gets,
        HumanDollars(r.cost_per_query).c_str(),
        HumanDollars(r.daily_cost).c_str());
  }

  const double cost_reduction = 1.0 - batched.cost_per_query /
                                          solo.cost_per_query;
  const double throughput_gain =
      batched.throughput_qps / solo.throughput_qps;
  const double rel_err =
      std::abs(batched.predicted_comm - batched.ledger_comm) /
      std::max(1e-12, batched.ledger_comm);
  const double rel_err_solo =
      std::abs(solo.predicted_comm - solo.ledger_comm) /
      std::max(1e-12, solo.ledger_comm);

  std::printf(
      "\ninvocations %lld -> %lld (%.1fx fewer), model GETs %.0f -> %.0f, "
      "cost/query -%.1f%%, throughput %.2fx\n",
      static_cast<long long>(solo.invocations),
      static_cast<long long>(batched.invocations),
      static_cast<double>(solo.invocations) /
          static_cast<double>(batched.invocations),
      solo.object_gets, batched.object_gets, 100.0 * cost_reduction,
      throughput_gain);
  std::printf(
      "cost-model reconciliation (summed per-member comm predictions vs "
      "ledger): batched rel.err %.4f%%, unbatched %.4f%%\n",
      100.0 * rel_err, 100.0 * rel_err_solo);
  std::printf("outputs %s\n",
              (solo.outputs_ok && batched.outputs_ok) ? "IDENTICAL"
                                                      : "MISMATCH");

  bench::WriteBenchJson(
      "query_batching",
      {{"unbatched_throughput_qps", solo.throughput_qps},
       {"unbatched_p50_latency_s", solo.p50_s},
       {"unbatched_p95_latency_s", solo.p95_s},
       {"unbatched_cost_per_query", solo.cost_per_query},
       {"unbatched_daily_cost", solo.daily_cost},
       {"batched_throughput_qps", batched.throughput_qps},
       {"batched_p50_latency_s", batched.p50_s},
       {"batched_p95_latency_s", batched.p95_s},
       {"batched_queue_wait_p95_s", batched.queue_wait_p95_s},
       {"batched_cost_per_query", batched.cost_per_query},
       {"batched_daily_cost", batched.daily_cost},
       {"batch_occupancy_mean", batched.occupancy},
       {"cost_per_query_reduction", cost_reduction},
       {"throughput_gain", throughput_gain},
       {"comm_prediction_rel_err", rel_err}});

  // The acceptance claims, asserted. (Tiny smoke runs the full code path
  // but its 1024-wide model has no meaningful fixed cost to amortize, so —
  // as everywhere in bench/ — magnitudes are not asserted at that scale.)
  FSD_CHECK(solo.outputs_ok);
  FSD_CHECK(batched.outputs_ok);
  FSD_CHECK_GT(batched.occupancy, 1.0);
  FSD_CHECK_LT(batched.invocations, solo.invocations);
  FSD_CHECK_LT(rel_err, 0.001);
  FSD_CHECK_LT(rel_err_solo, 0.001);
  if (!scale.tiny) {
    // >= 30% cost-per-query reduction OR >= 1.5x throughput.
    FSD_CHECK(cost_reduction >= 0.30 || throughput_gain >= 1.5);
  }

  std::printf(
      "\n%s\n",
      bench::PaperNote(
          "the paper launches one worker tree per query; request "
          "coalescing is the serving extension (cf. lambda-scale fast "
          "scaling and serverless-MoE request batching)")
          .c_str());
  return 0;
}
