// Reproduces the paper's §VI-F cost-model validation: fine-grained run
// metrics feed the analytical model (Eqs. 1-7); the prediction is compared
// against the billing ledger's "actual" charges (the simulation's AWS Cost
// & Usage report), for N = 16384, P = 20, both channels.
//
// Paper example (N=16384, P=20, 10k samples):
//   FSD-Inf-Queue : Pred (Comp $0.10, Comms $0.25, Total $0.35) == Actual
//   FSD-Inf-Object: Pred (Comp $0.09, Comms $0.28, Total $0.37) == Actual
#include <cstdio>

#include "bench/bench_common.h"
#include "common/strings.h"

using namespace fsd;
using bench::ScaleConfig;

int main() {
  const ScaleConfig scale = ScaleConfig::FromEnv();
  const int32_t neurons = scale.NeuronsOr(16384);
  const int32_t workers = scale.WorkersOr(20);
  const bench::Workload& workload = bench::GetWorkload(neurons, scale);
  const part::ModelPartition& partition = bench::GetPartition(
      neurons, workers, part::PartitionScheme::kHypergraph, scale);

  bench::PrintHeader(
      StrFormat("COST MODEL VALIDATION (§VI-F) — N=%d, P=%d, L=%d, batch=%d",
                neurons, workers, workload.dnn.layers(), workload.batch),
      "predicted (Eqs. 1-7 from run metrics) vs actual (billing ledger)");

  std::printf("%-16s | %-12s %-12s %-12s | %-12s %-12s %-12s | %s\n",
              "Variant", "Pred Comp", "Pred Comms", "Pred Total", "Act Comp",
              "Act Comms", "Act Total", "rel.err");
  bench::PrintRule();

  const cloud::PricingConfig pricing;
  for (core::Variant variant :
       {core::Variant::kQueue, core::Variant::kObject, core::Variant::kKv}) {
    core::FsdOptions options;
    options.variant = variant;
    options.num_workers = workers;
    core::InferenceReport report = bench::RunFsd(workload, partition, options);
    // The prediction covers IPC plus the cache-aware model-read GET term,
    // so only the KV namespace's node time (billed at teardown, outside
    // per-run metrics) is filtered from the ledger delta.
    const double node_cost =
        report.billing.quantity(cloud::BillingDimension::kKvNodeSecond) *
        pricing.kv_node_hourly / 3600.0;
    const double actual_comms = report.billing.comm_cost - node_cost;
    const double actual_total = report.billing.faas_cost + actual_comms;
    const double rel_err =
        std::abs(report.predicted.total - actual_total) /
        std::max(1e-12, actual_total);
    std::printf(
        "%-16s | %-12s %-12s %-12s | %-12s %-12s %-12s | %.2f%%\n",
        std::string(core::VariantName(variant)).c_str(),
        HumanDollars(report.predicted.compute).c_str(),
        HumanDollars(report.predicted.communication).c_str(),
        HumanDollars(report.predicted.total).c_str(),
        HumanDollars(report.billing.faas_cost).c_str(),
        HumanDollars(actual_comms).c_str(),
        HumanDollars(actual_total).c_str(), rel_err * 100.0);
  }
  std::printf(
      "\nPaper result: predictions match actual charges to the cent for "
      "both paper variants;\nthe KV extension's request/byte terms validate "
      "the same way (node time billed at teardown).\n");
  return 0;
}
