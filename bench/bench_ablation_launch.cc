// Launch-mechanism ablation (paper §III: "experiments (not shown) indicate
// this mechanism reduces the launch time for the fully populated instance
// tree, compared to a centralized single-loop launch or a two-level launch
// loop as used in Lambada").
//
// Charts time-to-full-tree for the three strategies across P; the
// hierarchical tree amortizes sequential invoke round trips across internal
// nodes, winning at high parallelism.
#include <cstdio>

#include "bench/bench_common.h"
#include "common/strings.h"

using namespace fsd;
using bench::ScaleConfig;

int main() {
  ScaleConfig scale = ScaleConfig::FromEnv();
  const int32_t neurons = 1024;
  const bench::Workload& workload = bench::GetWorkload(neurons, scale);

  bench::PrintHeader(
      "ABLATION — launch mechanism: time until all P workers started (s)",
      "hierarchical (b=4) vs two-level (Lambada-style) vs centralized loop");

  std::printf("%4s | %-14s %-12s %-12s\n", "P", "hierarchical", "two-level",
              "centralized");
  bench::PrintRule();
  for (int32_t workers : scale.WorkerCounts()) {
    const part::ModelPartition& partition = bench::GetPartition(
        neurons, workers, part::PartitionScheme::kHypergraph, scale);
    double times[3] = {0, 0, 0};
    const core::LaunchStrategy strategies[3] = {
        core::LaunchStrategy::kHierarchical, core::LaunchStrategy::kTwoLevel,
        core::LaunchStrategy::kCentralized};
    for (int s = 0; s < 3; ++s) {
      core::FsdOptions options;
      options.variant = core::Variant::kQueue;
      options.num_workers = workers;
      options.launch = strategies[s];
      core::InferenceReport report =
          bench::RunFsd(workload, partition, options);
      times[s] = report.launch_complete_s;
    }
    std::printf("%4d | %-14.3f %-12.3f %-12.3f%s\n", workers, times[0],
                times[1], times[2],
                (times[0] < times[2]) ? "" : "   (centralized still ahead)");
  }
  std::printf(
      "\nExpected shape: centralized grows linearly in P (one sequential\n"
      "invoke per worker); the tree strategies grow ~logarithmically and\n"
      "win from mid-range P.\n");
  return 0;
}
