// Reproduces paper Figure 4: daily cost vs query volume for FSD-Inference,
// Server-Always-On and Server-Job-Scoped. Queries are evenly spread over
// the model widths N = 1024..65536 (each query processes one batch).
//
// Paper shapes: Server-Always-On is a flat ~$98/day (2 x c5.12xlarge);
// FSD-Inference is far cheaper until ~4M samples/day; Server-Job-Scoped is
// marginally cheaper than FSD but suffers crippling latency (Fig. 5).
#include <cstdio>

#include "bench/bench_common.h"
#include "common/strings.h"

using namespace fsd;
using bench::ScaleConfig;

int main() {
  const ScaleConfig scale = ScaleConfig::FromEnv();
  bench::PrintHeader(
      "FIGURE 4 — Daily cost ($) vs query volume (thousands of samples/day)",
      "queries evenly spread over N in {1024, 4096, 16384, 65536}");

  const cloud::PricingConfig pricing;
  const std::vector<int32_t> neuron_counts = scale.NeuronCounts();

  // Calibration: measured per-sample cost of the best FSD variant and the
  // per-sample job-scoped cost, per N. Per §IV-C the best FSD variant for
  // each query is picked by cost/performance (serial for small models,
  // parallel channels beyond).
  std::map<int32_t, double> fsd_cost_per_sample;
  std::map<int32_t, double> js_cost_per_sample;
  for (int32_t neurons : neuron_counts) {
    const bench::Workload& workload = bench::GetWorkload(neurons, scale);

    double best = -1.0;
    if (bench::SerialFitsPaperScale(neurons)) {
      // FSD-Inf-Serial candidate.
      const part::ModelPartition& single = bench::GetPartition(
          neurons, 1, part::PartitionScheme::kBlock, scale);
      core::FsdOptions options;
      options.variant = core::Variant::kSerial;
      options.num_workers = 1;
      core::InferenceReport report =
          bench::RunFsd(workload, single, options);
      if (report.status.ok()) {
        best = report.billing.total_cost / report.total_samples;
      }
    }
    for (core::Variant variant :
         {core::Variant::kQueue, core::Variant::kObject}) {
      // Paper-preferred parallelism for cost: a moderate P.
      const int32_t workers = scale.WorkersOr(20);
      const part::ModelPartition& partition = bench::GetPartition(
          neurons, workers, part::PartitionScheme::kHypergraph, scale);
      core::FsdOptions options;
      options.variant = variant;
      options.num_workers = workers;
      core::InferenceReport report =
          bench::RunFsd(workload, partition, options);
      if (!report.status.ok()) continue;
      const double per_sample =
          report.billing.total_cost / report.total_samples;
      if (best < 0.0 || per_sample < best) best = per_sample;
    }
    fsd_cost_per_sample[neurons] = best;

    // Job-scoped: boot + load + compute on the paper's per-N instance.
    sim::Simulation sim;
    cloud::CloudEnv cloud(&sim);
    baselines::ServerRunOptions options;
    options.job_scoped = true;
    options.residence = baselines::ModelResidence::kObject;
    options.precomputed_stats = &workload.stats;
    auto report = baselines::RunServerInference(&cloud, workload.dnn,
                                                workload.input, options);
    FSD_CHECK_OK(report.status());
    js_cost_per_sample[neurons] = report->job_cost / workload.batch;
  }

  // Always-on fleet: 2 x c5.12xlarge for 24 h, load-independent.
  const double always_on_daily =
      2 * 24.0 * pricing.vm_hourly.at("c5.12xlarge");

  std::printf("%12s | %-12s %-16s %-16s\n", "k-samples/d", "FSD-Inference",
              "Server-Always-On", "Server-Job-Scoped");
  bench::PrintRule();
  for (int64_t thousands : {10, 20, 40, 80, 160, 320, 640, 1280, 2560, 5120}) {
    const double samples_per_day = thousands * 1000.0;
    const double share = samples_per_day / neuron_counts.size();
    double fsd = 0.0, js = 0.0;
    for (int32_t neurons : neuron_counts) {
      fsd += share * fsd_cost_per_sample[neurons];
      js += share * js_cost_per_sample[neurons];
    }
    std::printf("%12lld | %-12s %-16s %-16s%s\n",
                static_cast<long long>(thousands),
                StrFormat("$%.2f", fsd).c_str(),
                StrFormat("$%.2f", always_on_daily).c_str(),
                StrFormat("$%.2f", js).c_str(),
                fsd < always_on_daily ? "" : "   <- FSD crossover passed");
  }
  std::printf(
      "\nPaper shapes: always-on flat (~$98/day at current prices); FSD far\n"
      "cheaper at low volume, crossing over near ~4M samples/day; JS "
      "marginally\ncheaper than FSD but with the Fig. 5 latency penalty.\n");
  return 0;
}
