// Shared scaffolding for the experiment harnesses (one binary per paper
// table/figure). Handles workload construction, partition caching, scale
// configuration and table printing.
//
// Scale: the paper runs L=120-layer networks on 10,000-sample batches on
// real AWS hardware. Virtual-time results are hardware-independent, but the
// real sparse kernels behind them are CPU-bound, so the default "quick"
// scale trims depth/batch (documented per bench and in EXPERIMENTS.md) while
// preserving every relationship the paper reports. Set FSD_BENCH_SCALE=paper
// for full-depth runs.
#ifndef FSD_BENCH_BENCH_COMMON_H_
#define FSD_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/hspff.h"
#include "baselines/sage.h"
#include "baselines/server.h"
#include "cloud/cloud.h"
#include "core/runtime.h"
#include "model/input_gen.h"
#include "model/reference.h"

namespace fsd::bench {

struct ScaleConfig {
  bool paper_scale = false;
  /// FSD_BENCH_SCALE=tiny: the CTest smoke configuration. Every bench
  /// binary runs its full code path in seconds so benches cannot bit-rot
  /// silently; magnitudes are meaningless at this scale, shapes are not
  /// asserted.
  bool tiny = false;
  /// Layer count for a given model width. Both compute and communication
  /// scale linearly in L, so per-sample ratios and crossovers are
  /// L-invariant; the default trims depth for single-core wall clock.
  int32_t LayersFor(int32_t neurons) const {
    if (paper_scale) return 120;
    if (tiny) return 4;
    return neurons >= 65536 ? 8 : 16;
  }
  /// Batch size (samples per inference query). N=16384 keeps a batch large
  /// enough that per-layer communication amortizes as in the paper's
  /// 10,000-sample batches (otherwise the parallel-vs-serial crossover of
  /// Table II would be hidden); smaller widths shrink further since their
  /// shapes ("fewer workers win") are batch-robust.
  int32_t BatchFor(int32_t neurons) const {
    if (paper_scale) return 2048;  // still below 10k; see EXPERIMENTS.md
    if (tiny) return 32;
    if (neurons >= 65536) return 192;
    if (neurons >= 16384) return 768;
    return 256;
  }
  /// Model widths included in sweeps.
  std::vector<int32_t> NeuronCounts() const {
    if (tiny) return {1024};
    return {1024, 4096, 16384, 65536};
  }
  /// Worker counts (the paper's P values).
  std::vector<int32_t> WorkerCounts() const {
    if (tiny) return {4, 8};
    return {8, 20, 42, 62};
  }
  /// Two P points bracketing the parallel optimum for quick sweeps.
  std::vector<int32_t> RepresentativeWorkers() const {
    if (tiny) return {4, 8};
    return {20, 62};
  }
  /// Clamp a bench's fixed model width / worker count to the smoke scale.
  int32_t NeuronsOr(int32_t neurons) const { return tiny ? 1024 : neurons; }
  int32_t WorkersOr(int32_t workers) const {
    return tiny && workers > 8 ? 8 : workers;
  }

  static ScaleConfig FromEnv();
};

/// A fully-prepared workload: model, input batch, reference ground truth.
struct Workload {
  model::SparseDnn dnn;
  linalg::ActivationMap input;
  linalg::ActivationMap expected;
  model::ReferenceStats stats;
  int32_t batch = 0;
};

/// Builds (and memoizes per process) the workload for a model width. The
/// reference activations/stats are additionally cached on disk (under
/// $FSD_BENCH_CACHE, default "fsd_bench_cache/") so the bench binaries do
/// not recompute multi-second ground truths.
const Workload& GetWorkload(int32_t neurons, const ScaleConfig& scale);

/// Optional batch override for benches that need a different amortization
/// point (e.g. Table III's random-partitioning run). Must be called before
/// the first GetWorkload() for that width.
void OverrideBatch(int32_t neurons, int32_t batch);

/// Builds (and memoizes, including on disk) a partition for
/// (neurons, P, scheme).
const part::ModelPartition& GetPartition(int32_t neurons, int32_t workers,
                                         part::PartitionScheme scheme,
                                         const ScaleConfig& scale);

/// Runs one FSD-Inference query on a fresh cloud; verifies the output
/// matches the serial reference (aborting loudly on mismatch).
core::InferenceReport RunFsd(const Workload& workload,
                             const part::ModelPartition& partition,
                             core::FsdOptions options,
                             bool verify_output = true);

/// Sweeps worker counts for a variant and returns (P -> report).
std::map<int32_t, core::InferenceReport> SweepWorkers(
    int32_t neurons, core::Variant variant, const ScaleConfig& scale,
    const std::vector<int32_t>& worker_counts);

/// Serialized model size at PAPER dimensions (L=120), used for feasibility
/// gates: bench-scale models are layer-reduced, but whether FSD-Inf-Serial
/// or Sage-SL-Inf can hold a model family at all is a paper-scale question.
uint64_t PaperScaleModelBytes(int32_t neurons);

/// Whether the paper-scale workload (120 layers, 10k-sample batches) fits a
/// single 10240 MB FaaS instance (the FSD-Inf-Serial feasibility gate; the
/// paper reports N=65536 failing it).
bool SerialFitsPaperScale(int32_t neurons);

/// ---- machine-readable results ----

/// When the env var FSD_BENCH_JSON names a directory, writes
/// `<dir>/BENCH_<bench_name>.json` with the bench's headline numbers
/// (typically p50/p95 latency, throughput, daily cost) plus the scale tier
/// it ran at, so CI can archive the perf trajectory per commit. No-op when
/// the env var is unset. Non-finite values are emitted as null.
void WriteBenchJson(
    const std::string& bench_name,
    const std::vector<std::pair<std::string, double>>& metrics);

/// ---- table formatting ----

void PrintHeader(const std::string& title, const std::string& subtitle);
void PrintRule();

/// "paper reports X, we measured Y" annotation helper.
std::string PaperNote(const std::string& note);

}  // namespace fsd::bench

#endif  // FSD_BENCH_BENCH_COMMON_H_
