// Reproduces paper Table I: features of potential inter-worker
// communication channels. The matrix is data in the core library
// (core/channel_traits.h); this harness renders it.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/channel_traits.h"

int main() {
  using fsd::core::ChannelTraitMatrix;
  using fsd::core::TraitSupportSymbol;

  fsd::bench::PrintHeader(
      "TABLE I — Features of potential inter-worker communication channels",
      "Y = supported, Y* = partial support (asterisks in the paper)");

  std::printf("%-16s %-11s %-9s %-10s %-9s %-10s %-10s %-8s\n", "Category",
              "Serverless", "LowLat/HT", "CostEff", "FlexPay", "ManyP/C",
              "SvcFilter", "Direct");
  fsd::bench::PrintRule();
  for (const auto& t : ChannelTraitMatrix()) {
    std::printf("%-16s %-11s %-9s %-10s %-9s %-10s %-10s %-8s\n",
                std::string(t.category).c_str(),
                std::string(TraitSupportSymbol(t.serverless)).c_str(),
                std::string(TraitSupportSymbol(t.low_latency_high_throughput))
                    .c_str(),
                std::string(TraitSupportSymbol(t.cost_effective)).c_str(),
                std::string(TraitSupportSymbol(t.flexible_payloads)).c_str(),
                std::string(TraitSupportSymbol(t.many_producers_consumers))
                    .c_str(),
                std::string(TraitSupportSymbol(t.service_side_filtering))
                    .c_str(),
                std::string(TraitSupportSymbol(t.direct_consumer_access))
                    .c_str());
  }
  fsd::bench::PrintRule();
  for (const auto& t : ChannelTraitMatrix()) {
    std::printf("  %-16s %s\n", std::string(t.category).c_str(),
                std::string(t.verdict).c_str());
  }
  std::printf(
      "\nConclusion (paper §II-D): pub-sub + queues and object storage are\n"
      "the viable fully serverless channels; both are implemented here as\n"
      "FSD-Inf-Queue and FSD-Inf-Object.\n");
  return 0;
}
