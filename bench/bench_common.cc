#include "bench/bench_common.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "codec/varint.h"
#include "common/check.h"
#include "common/strings.h"
#include "core/serialization.h"

namespace fsd::bench {
namespace {

constexpr uint32_t kCacheFormatVersion = 3;

struct PartitionKey {
  int32_t neurons;
  int32_t workers;
  part::PartitionScheme scheme;
  bool operator<(const PartitionKey& o) const {
    if (neurons != o.neurons) return neurons < o.neurons;
    if (workers != o.workers) return workers < o.workers;
    return static_cast<int>(scheme) < static_cast<int>(o.scheme);
  }
};

std::map<int32_t, std::unique_ptr<Workload>>& WorkloadCache() {
  static auto* cache = new std::map<int32_t, std::unique_ptr<Workload>>();
  return *cache;
}

std::map<int32_t, int32_t>& BatchOverrides() {
  static auto* overrides = new std::map<int32_t, int32_t>();
  return *overrides;
}

std::map<PartitionKey, std::unique_ptr<part::ModelPartition>>&
PartitionCache() {
  static auto* cache =
      new std::map<PartitionKey, std::unique_ptr<part::ModelPartition>>();
  return *cache;
}

std::filesystem::path CacheDir() {
  const char* env = std::getenv("FSD_BENCH_CACHE");
  std::filesystem::path dir =
      (env != nullptr && env[0] != '\0') ? env : "fsd_bench_cache";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

bool ReadFile(const std::filesystem::path& path, Bytes* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  in.seekg(0, std::ios::end);
  out->resize(static_cast<size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(out->data()),
          static_cast<std::streamsize>(out->size()));
  return in.good();
}

void WriteFileAtomic(const std::filesystem::path& path, const Bytes& data) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out.good()) return;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
}

// ---- partition (de)serialization -----------------------------------------

Bytes SerializePartition(const part::ModelPartition& partition) {
  Bytes out;
  codec::PutVarint64(&out, kCacheFormatVersion);
  codec::PutVarint64(&out, static_cast<uint64_t>(partition.num_parts));
  codec::PutVarint64(&out, static_cast<uint64_t>(partition.scheme));
  codec::PutVarint64(&out, static_cast<uint64_t>(partition.cut_cost));
  AppendRaw(&out, partition.imbalance);
  codec::PutVarint64(&out, partition.assignment.size());
  for (int32_t a : partition.assignment) {
    codec::PutVarint64(&out, static_cast<uint64_t>(a));
  }
  codec::PutVarint64(&out, partition.layers.size());
  for (const part::LayerComm& layer : partition.layers) {
    for (int32_t m = 0; m < partition.num_parts; ++m) {
      const auto& sends = layer.send[m];
      codec::PutVarint64(&out, sends.size());
      for (const part::SendEntry& entry : sends) {
        codec::PutVarint64(&out, static_cast<uint64_t>(entry.peer));
        codec::PutVarint64(&out, entry.rows.size());
        int64_t prev = -1;
        for (int32_t row : entry.rows) {
          codec::PutVarint64(&out, static_cast<uint64_t>(row - prev - 1));
          prev = row;
        }
      }
    }
  }
  return out;
}

Result<part::ModelPartition> DeserializePartition(const Bytes& data) {
  ByteReader reader(data);
  FSD_ASSIGN_OR_RETURN(uint64_t version, codec::GetVarint64(&reader));
  if (version != kCacheFormatVersion) {
    return Status::FailedPrecondition("cache format changed");
  }
  part::ModelPartition partition;
  FSD_ASSIGN_OR_RETURN(uint64_t parts, codec::GetVarint64(&reader));
  partition.num_parts = static_cast<int32_t>(parts);
  FSD_ASSIGN_OR_RETURN(uint64_t scheme, codec::GetVarint64(&reader));
  partition.scheme = static_cast<part::PartitionScheme>(scheme);
  FSD_ASSIGN_OR_RETURN(uint64_t cut, codec::GetVarint64(&reader));
  partition.cut_cost = static_cast<int64_t>(cut);
  FSD_ASSIGN_OR_RETURN(partition.imbalance, reader.Read<double>());
  FSD_ASSIGN_OR_RETURN(uint64_t rows, codec::GetVarint64(&reader));
  partition.assignment.resize(rows);
  partition.owned_rows.assign(partition.num_parts, {});
  for (uint64_t i = 0; i < rows; ++i) {
    FSD_ASSIGN_OR_RETURN(uint64_t a, codec::GetVarint64(&reader));
    partition.assignment[i] = static_cast<int32_t>(a);
    partition.owned_rows[a].push_back(static_cast<int32_t>(i));
  }
  FSD_ASSIGN_OR_RETURN(uint64_t layers, codec::GetVarint64(&reader));
  partition.layers.resize(layers);
  for (uint64_t k = 0; k < layers; ++k) {
    part::LayerComm& comm = partition.layers[k];
    comm.send.resize(partition.num_parts);
    comm.recv.resize(partition.num_parts);
    for (int32_t m = 0; m < partition.num_parts; ++m) {
      FSD_ASSIGN_OR_RETURN(uint64_t entries, codec::GetVarint64(&reader));
      comm.send[m].resize(entries);
      for (uint64_t e = 0; e < entries; ++e) {
        part::SendEntry& entry = comm.send[m][e];
        FSD_ASSIGN_OR_RETURN(uint64_t peer, codec::GetVarint64(&reader));
        entry.peer = static_cast<int32_t>(peer);
        FSD_ASSIGN_OR_RETURN(uint64_t count, codec::GetVarint64(&reader));
        entry.rows.resize(count);
        int64_t prev = -1;
        for (uint64_t r = 0; r < count; ++r) {
          FSD_ASSIGN_OR_RETURN(uint64_t delta, codec::GetVarint64(&reader));
          prev += 1 + static_cast<int64_t>(delta);
          entry.rows[r] = static_cast<int32_t>(prev);
        }
        partition.total_row_transfers += static_cast<int64_t>(count);
      }
    }
    // Rebuild recv as the mirror of send.
    for (int32_t m = 0; m < partition.num_parts; ++m) {
      for (const part::SendEntry& entry : comm.send[m]) {
        comm.recv[entry.peer].push_back({m, entry.rows});
      }
    }
    for (auto& entries : comm.recv) {
      std::sort(entries.begin(), entries.end(),
                [](const part::SendEntry& a, const part::SendEntry& b) {
                  return a.peer < b.peer;
                });
    }
  }
  return partition;
}

// ---- workload reference (de)serialization ---------------------------------

Bytes SerializeReference(const Workload& workload) {
  Bytes out;
  codec::PutVarint64(&out, kCacheFormatVersion);
  // Reference stats.
  AppendRaw(&out, workload.stats.total_macs);
  AppendRaw(&out, workload.stats.total_flops);
  codec::PutVarint64(&out, workload.stats.rows_per_layer.size());
  for (size_t k = 0; k < workload.stats.rows_per_layer.size(); ++k) {
    codec::PutVarint64(&out,
                       static_cast<uint64_t>(workload.stats.rows_per_layer[k]));
    codec::PutVarint64(&out,
                       static_cast<uint64_t>(workload.stats.nnz_per_layer[k]));
  }
  // Expected activations, reusing the channel wire format (uncompressed
  // encode + one Lz pass over the whole blob).
  std::vector<int32_t> ids;
  for (const auto& [id, vec] : workload.expected) ids.push_back(id);
  core::EncodeResult encoded =
      core::EncodeRows(workload.expected, ids, /*max_chunk_bytes=*/0,
                       core::LosslessCodec(true));
  FSD_CHECK_EQ(encoded.chunks.size(), 1u);
  codec::PutVarint64(&out, encoded.chunks[0].wire.size());
  out.insert(out.end(), encoded.chunks[0].wire.begin(),
             encoded.chunks[0].wire.end());
  return out;
}

Status DeserializeReference(const Bytes& data, Workload* workload) {
  ByteReader reader(data);
  FSD_ASSIGN_OR_RETURN(uint64_t version, codec::GetVarint64(&reader));
  if (version != kCacheFormatVersion) {
    return Status::FailedPrecondition("cache format changed");
  }
  FSD_ASSIGN_OR_RETURN(workload->stats.total_macs, reader.Read<double>());
  FSD_ASSIGN_OR_RETURN(workload->stats.total_flops, reader.Read<double>());
  FSD_ASSIGN_OR_RETURN(uint64_t layers, codec::GetVarint64(&reader));
  workload->stats.rows_per_layer.resize(layers);
  workload->stats.nnz_per_layer.resize(layers);
  for (uint64_t k = 0; k < layers; ++k) {
    FSD_ASSIGN_OR_RETURN(uint64_t rows, codec::GetVarint64(&reader));
    FSD_ASSIGN_OR_RETURN(uint64_t nnz, codec::GetVarint64(&reader));
    workload->stats.rows_per_layer[k] = static_cast<int64_t>(rows);
    workload->stats.nnz_per_layer[k] = static_cast<int64_t>(nnz);
  }
  FSD_ASSIGN_OR_RETURN(uint64_t wire_size, codec::GetVarint64(&reader));
  FSD_ASSIGN_OR_RETURN(Bytes wire, reader.ReadBytes(wire_size));
  return core::DecodeRows(wire, &workload->expected);
}

}  // namespace

ScaleConfig ScaleConfig::FromEnv() {
  ScaleConfig scale;
  const char* env = std::getenv("FSD_BENCH_SCALE");
  scale.paper_scale = (env != nullptr && std::strcmp(env, "paper") == 0);
  scale.tiny = (env != nullptr && std::strcmp(env, "tiny") == 0);
  return scale;
}

void OverrideBatch(int32_t neurons, int32_t batch) {
  FSD_CHECK(!WorkloadCache().contains(neurons));
  BatchOverrides()[neurons] = batch;
}

const Workload& GetWorkload(int32_t neurons, const ScaleConfig& scale) {
  auto& cache = WorkloadCache();
  auto it = cache.find(neurons);
  if (it != cache.end()) return *it->second;

  auto workload = std::make_unique<Workload>();
  model::SparseDnnConfig config;
  config.neurons = neurons;
  config.layers = scale.LayersFor(neurons);
  config.seed = 7;
  auto dnn = model::GenerateSparseDnn(config);
  FSD_CHECK_OK(dnn.status());
  workload->dnn = std::move(*dnn);

  model::InputConfig input_config;
  input_config.neurons = neurons;
  input_config.batch = scale.BatchFor(neurons);
  if (auto ov = BatchOverrides().find(neurons); ov != BatchOverrides().end()) {
    input_config.batch = ov->second;
  }
  input_config.seed = 11;
  auto input = model::GenerateInputBatch(input_config);
  FSD_CHECK_OK(input.status());
  workload->input = std::move(*input);
  workload->batch = input_config.batch;

  // Reference ground truth: disk-cached across bench binaries.
  const std::filesystem::path path =
      CacheDir() / StrFormat("reference-n%d-l%d-b%d.bin", neurons,
                             config.layers, workload->batch);
  Bytes blob;
  bool loaded = false;
  if (ReadFile(path, &blob)) {
    loaded = DeserializeReference(blob, workload.get()).ok();
  }
  if (!loaded) {
    auto expected = model::ReferenceInference(workload->dnn, workload->input,
                                              &workload->stats);
    FSD_CHECK_OK(expected.status());
    workload->expected = std::move(*expected);
    WriteFileAtomic(path, SerializeReference(*workload));
  }

  const Workload& ref = *workload;
  cache.emplace(neurons, std::move(workload));
  return ref;
}

const part::ModelPartition& GetPartition(int32_t neurons, int32_t workers,
                                         part::PartitionScheme scheme,
                                         const ScaleConfig& scale) {
  auto& cache = PartitionCache();
  const PartitionKey key{neurons, workers, scheme};
  auto it = cache.find(key);
  if (it != cache.end()) return *it->second;

  const Workload& workload = GetWorkload(neurons, scale);
  const std::filesystem::path path =
      CacheDir() / StrFormat("partition-n%d-l%d-p%d-%s.bin", neurons,
                             workload.dnn.layers(), workers,
                             std::string(part::PartitionSchemeName(scheme))
                                 .c_str());
  Bytes blob;
  if (ReadFile(path, &blob)) {
    auto restored = DeserializePartition(blob);
    if (restored.ok() && restored->num_parts == workers) {
      auto owned =
          std::make_unique<part::ModelPartition>(std::move(*restored));
      const part::ModelPartition& ref = *owned;
      cache.emplace(key, std::move(owned));
      return ref;
    }
  }

  part::ModelPartitionOptions options;
  options.scheme = scheme;
  // Big hypergraphs: one sampled layer is representative and keeps the
  // offline partitioning step to seconds.
  options.hypergraph_sample_layers = neurons >= 65536 ? 1 : 2;
  auto partition = part::PartitionModel(workload.dnn, workers, options);
  FSD_CHECK_OK(partition.status());
  WriteFileAtomic(path, SerializePartition(*partition));
  auto owned = std::make_unique<part::ModelPartition>(std::move(*partition));
  const part::ModelPartition& ref = *owned;
  cache.emplace(key, std::move(owned));
  return ref;
}

core::InferenceReport RunFsd(const Workload& workload,
                             const part::ModelPartition& partition,
                             core::FsdOptions options, bool verify_output) {
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  core::InferenceRequest request;
  request.dnn = &workload.dnn;
  request.partition = &partition;
  request.batches = {&workload.input};
  request.options = std::move(options);
  auto report = core::RunInference(&cloud, request);
  FSD_CHECK_OK(report.status());
  if (report->status.ok() && verify_output) {
    FSD_CHECK_EQ(report->outputs.size(), 1u);
    FSD_CHECK(report->outputs[0].size() == workload.expected.size());
    for (const auto& [row, vec] : workload.expected) {
      auto it = report->outputs[0].find(row);
      FSD_CHECK(it != report->outputs[0].end());
      FSD_CHECK(it->second == vec);
    }
  }
  return std::move(*report);
}

std::map<int32_t, core::InferenceReport> SweepWorkers(
    int32_t neurons, core::Variant variant, const ScaleConfig& scale,
    const std::vector<int32_t>& worker_counts) {
  std::map<int32_t, core::InferenceReport> out;
  const Workload& workload = GetWorkload(neurons, scale);
  for (int32_t workers : worker_counts) {
    const part::ModelPartition& partition = GetPartition(
        neurons, workers, part::PartitionScheme::kHypergraph, scale);
    core::FsdOptions options;
    options.variant = variant;
    options.num_workers = workers;
    out.emplace(workers, RunFsd(workload, partition, options));
  }
  return out;
}

uint64_t PaperScaleModelBytes(int32_t neurons) {
  // 120 layers x N rows x 32 nonzeros x 8 bytes, plus row metadata.
  return 120ull * neurons * 32 * 8 + 120ull * (neurons + 1) * 8;
}

bool SerialFitsPaperScale(int32_t neurons) {
  // Model (with in-memory sparse-structure expansion) plus double-buffered
  // dense-ish activations for a 10,000-sample batch.
  const double model_mb =
      PaperScaleModelBytes(neurons) * 1.6 / (1024.0 * 1024.0);
  const double activations_mb =
      static_cast<double>(neurons) * 10000.0 * 8.0 * 2.0 / (1024.0 * 1024.0);
  return model_mb + activations_mb < 10240.0;
}

void WriteBenchJson(
    const std::string& bench_name,
    const std::vector<std::pair<std::string, double>>& metrics) {
  const char* env = std::getenv("FSD_BENCH_JSON");
  if (env == nullptr || env[0] == '\0') return;
  std::error_code ec;
  std::filesystem::create_directories(env, ec);
  const std::filesystem::path path =
      std::filesystem::path(env) / ("BENCH_" + bench_name + ".json");
  const char* scale_env = std::getenv("FSD_BENCH_SCALE");
  const std::string scale =
      (scale_env != nullptr && scale_env[0] != '\0') ? scale_env : "quick";

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "FSD_BENCH_JSON: cannot write %s\n",
                 path.string().c_str());
    return;
  }
  out << "{\n  \"bench\": \"" << bench_name << "\",\n  \"scale\": \""
      << scale << "\",\n  \"metrics\": {";
  for (size_t i = 0; i < metrics.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << metrics[i].first << "\": ";
    if (std::isfinite(metrics[i].second)) {
      out << StrFormat("%.9g", metrics[i].second);
    } else {
      out << "null";
    }
  }
  out << "\n  }\n}\n";
}

void PrintHeader(const std::string& title, const std::string& subtitle) {
  std::printf("\n================================================================================\n");
  std::printf("%s\n", title.c_str());
  if (!subtitle.empty()) std::printf("%s\n", subtitle.c_str());
  std::printf("================================================================================\n");
}

void PrintRule() {
  std::printf("--------------------------------------------------------------------------------\n");
}

std::string PaperNote(const std::string& note) {
  return "  [paper: " + note + "]";
}

}  // namespace fsd::bench
