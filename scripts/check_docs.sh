#!/usr/bin/env bash
# Docs gate (the CI `docs` job; also registered as the `docs_check` CTest
# test so it runs locally with the suite):
#   1. every src/* subdirectory and bench/ carries a README.md
#   2. intra-repo markdown links ([text](path)) in tracked *.md files
#      resolve to existing files/directories (anchors and external URLs
#      are skipped)
set -euo pipefail
cd "$(dirname "$0")/.."
fail=0

for dir in src/*/ bench/; do
  if [ ! -f "${dir}README.md" ]; then
    echo "MISSING README: ${dir}README.md"
    fail=1
  fi
done

if git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  # Tracked + newly added markdown (so the gate sees files pre-commit).
  files=$(git ls-files --cached --others --exclude-standard '*.md')
else
  files=$(find . -name '*.md' -not -path './build*' | sed 's|^\./||')
fi

while IFS= read -r file; do
  [ -n "$file" ] || continue
  case "$file" in
    # Exemplar snippets / retrieval dumps quote other repositories'
    # relative links verbatim; they are reference material, not repo docs.
    SNIPPETS.md | PAPERS.md) continue ;;
  esac
  dir=$(dirname "$file")
  # Inline links only (reference-style links are not used in this repo),
  # with fenced code blocks stripped so quoted examples don't trip the
  # checker.
  while IFS= read -r target; do
    [ -n "$target" ] || continue
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path="${target%%#*}"  # strip in-page anchor
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN LINK: $file -> $target"
      fail=1
    fi
  done < <(awk '/^[[:space:]]*```/ { in_fence = !in_fence; next }
                !in_fence' "$file" |
           grep -o '\[[^]]*\]([^)]*)' 2>/dev/null |
           sed 's/.*](\([^)]*\))$/\1/')
done <<< "$files"

if [ "$fail" -ne 0 ]; then
  echo "docs check FAILED"
  exit 1
fi
echo "docs check OK"
