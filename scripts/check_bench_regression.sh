#!/usr/bin/env bash
# Bench-JSON perf regression gate (the CI step after the smoke-test run):
# diffs the gated metrics of the BENCH_*.json files a CTest run dropped
# (FSD_BENCH_JSON) against the checked-in tiny-scale baselines in
# fsd_bench_cache/bench_baselines/, and fails on any metric that regressed
# by more than 25%. The gate is direction-aware:
#   - p50/p95 latency metrics: BIGGER is worse. These are virtual-time
#     deterministic, so a diff is a real behaviour change, never noise.
#   - *_per_sec throughput metrics (events_per_sec, bytes_per_sec, ...):
#     SMALLER is worse. These are wall-clock, so the threshold also absorbs
#     machine noise; the bench binaries gate the structural claim (kernel
#     speedup) themselves.
# The generous threshold leaves room for intentional scheduling/latency-
# model changes (refresh the baselines in the same PR when one is
# deliberate).
#
# usage: check_bench_regression.sh <json-dir> [--warn-only]
#   --warn-only: report regressions without failing (the ASan job — same
#   virtual numbers, but it should never be the job that blocks a merge).
#
# Refresh baselines with:
#   FSD_BENCH_SCALE=tiny FSD_BENCH_JSON=fsd_bench_cache/bench_baselines \
#     ctest --test-dir build -R '_smoke$'
set -euo pipefail
cd "$(dirname "$0")/.."

json_dir="${1:?usage: check_bench_regression.sh <json-dir> [--warn-only]}"
warn_only=0
[ "${2:-}" = "--warn-only" ] && warn_only=1
baseline_dir="fsd_bench_cache/bench_baselines"
threshold_pct=25

# "key value direction" lines for the gated metrics: latency-shaped keys
# (p50/p95 — bigger is worse) and throughput keys ending in _per_sec
# (smaller is worse). Other keys (speedups, counts) are informational only.
metrics() {
  sed -n 's/^ *"\([A-Za-z0-9_.]*\)": *\(-*[0-9][-0-9.eE+]*\),*$/\1 \2/p' \
    "$1" | awk '$1 ~ /p50|p95/ { print $0, "bigger-is-worse"; next }
                $1 ~ /_per_sec$/ { print $0, "smaller-is-worse" }' \
    || true
}

fail=0
checked=0
# New benches (run emitted JSON, no baseline yet) are reported but pass;
# the reverse — a baselined bench whose JSON is missing from the run — is
# a FAILURE, or a broken smoke test would silently drop its metrics from
# the gate.
for current in "$json_dir"/BENCH_*.json; do
  [ -e "$current" ] || { echo "no BENCH_*.json under $json_dir"; exit 1; }
  name=$(basename "$current")
  if [ ! -f "$baseline_dir/$name" ]; then
    echo "NEW BENCH (no baseline yet): $name — check one in"
  fi
done
for baseline in "$baseline_dir"/BENCH_*.json; do
  [ -e "$baseline" ] || { echo "no baselines under $baseline_dir"; exit 1; }
  name=$(basename "$baseline")
  current="$json_dir/$name"
  if [ ! -f "$current" ]; then
    echo "MISSING BENCH JSON: $name has a baseline but the run produced none"
    fail=1
    continue
  fi
  while IFS=' ' read -r key base dir; do
    [ -n "$key" ] || continue
    cur=$(metrics "$current" | awk -v k="$key" '$1 == k { print $2 }')
    if [ -z "$cur" ]; then
      echo "MISSING METRIC: $name $key (baseline has it, run does not)"
      fail=1
      continue
    fi
    checked=$((checked + 1))
    verdict=$(awk -v c="$cur" -v b="$base" -v t="$threshold_pct" \
              -v d="$dir" 'BEGIN {
      if (b <= 1e-9) { print "ok"; exit }
      delta = (c - b) / b * 100.0
      if (d == "smaller-is-worse") delta = -delta
      if (delta > t) printf "regressed %.1f%%", delta
      else print "ok"
    }')
    if [ "$verdict" != "ok" ]; then
      echo "REGRESSION: $name $key $base -> $cur ($verdict, threshold ${threshold_pct}%)"
      fail=1
    fi
  done < <(metrics "$baseline")
done

if [ "$checked" -eq 0 ]; then
  echo "bench regression check: no comparable gated metrics found"
  exit 1
fi
if [ "$fail" -ne 0 ]; then
  if [ "$warn_only" -eq 1 ]; then
    echo "bench regression check: REGRESSIONS found ($checked metrics; warn-only)"
    exit 0
  fi
  echo "bench regression check FAILED ($checked metrics compared)"
  exit 1
fi
echo "bench regression check OK ($checked gated metrics within ${threshold_pct}%)"
