// Backend x topology parameterized conformance suite for the CommChannel
// contract: one set of behavioural guarantees, verified against every
// production backend (queue, object, KV, direct) under every collective
// topology (through-root, binomial tree, ring). Anything a worker or
// collective may rely on — delivery exactness, phase separation, chunk
// reassembly, empty-send markers, compression/lane configuration
// independence, collective semantics (byte-identical across topologies),
// abort draining (including mid-tree), relay fallback on punch failure,
// and channel_scope isolation — is pinned here, so a new backend or
// topology is done when this suite passes.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <tuple>
#include <vector>

#include "cloud/cloud.h"
#include "common/strings.h"
#include "core/channel.h"
#include "core/collectives.h"
#include "core/direct_channel.h"
#include "core/kv_channel.h"

namespace fsd::core {
namespace {

linalg::ActivationMap MakeRows(std::vector<int32_t> ids, int32_t dim,
                               int32_t nnz, float salt = 0.0f) {
  linalg::ActivationMap out;
  for (int32_t id : ids) {
    linalg::SparseVector vec;
    vec.dim = dim;
    for (int32_t j = 0; j < nnz; ++j) {
      vec.idx.push_back(j);
      vec.val.push_back(static_cast<float>(id) + 0.25f * j + salt);
    }
    out.emplace(id, std::move(vec));
  }
  return out;
}

/// One simulated worker of a conformance scenario.
struct WorkerSpec {
  std::function<void(WorkerEnv*, CommChannel*)> body;
  /// Channel configuration (defaults to the fixture's options_). Distinct
  /// pointers model concurrent runs with their own channel_scope.
  const FsdOptions* options = nullptr;
  /// Worker id within its options' run (defaults to the spec index).
  int32_t worker_id = -1;
};

class ChannelConformanceTest
    : public ::testing::TestWithParam<std::tuple<Variant, CollectiveTopology>> {
 protected:
  ChannelConformanceTest() : cloud_(&sim_) {}

  Variant Backend() const { return std::get<0>(GetParam()); }
  CollectiveTopology Topology() const { return std::get<1>(GetParam()); }

  void SetUp() override {
    options_.variant = Backend();
    options_.collective_topology = Topology();
    options_.num_workers = 4;
    options_.poll_wait_s = 2.0;
    options_.kv_poll_wait_s = 0.5;
    options_.direct_poll_wait_s = 0.5;
    options_.object_scan_interval_s = 0.01;
  }

  /// PhaseBlock for a collective op at this fixture's topology: the phase
  /// layout a worker tree would reserve for `workers` participants.
  PhaseBlock Block(CollectiveOp op, int32_t workers) const {
    return PhaseAllocator(0, 0, CollectiveRounds(Topology(), workers))
        .Block(op);
  }

  /// Runs each spec's body inside its own FaaS handler with a fresh
  /// channel instance bound to the spec's options. May be called several
  /// times per test (each call provisions and drives to quiescence).
  void RunWorkers(std::vector<WorkerSpec> specs) {
    const int epoch = run_counter_++;
    std::vector<const FsdOptions*> provisioned;
    for (size_t i = 0; i < specs.size(); ++i) {
      const FsdOptions* options =
          specs[i].options != nullptr ? specs[i].options : &options_;
      if (std::find(provisioned.begin(), provisioned.end(), options) ==
          provisioned.end()) {
        FSD_CHECK_OK(ProvisionChannelResources(active_cloud_, *options));
        provisioned.push_back(options);
      }
      metrics_.emplace_back(std::make_unique<WorkerMetrics>());
      WorkerMetrics* metrics = metrics_.back().get();
      const int32_t worker_id = specs[i].worker_id >= 0
                                    ? specs[i].worker_id
                                    : static_cast<int32_t>(i);
      auto body = specs[i].body;
      cloud::FaasFunctionConfig fn;
      fn.name = StrFormat("e%d-w%zu", epoch, i);
      fn.memory_mb = 2048;
      fn.timeout_s = 600.0;
      fn.handler = [this, body, options, metrics,
                    worker_id](cloud::FaasContext* ctx) {
        std::unique_ptr<CommChannel> channel =
            MakeCommChannel(options->variant);
        WorkerEnv env;
        env.faas = ctx;
        env.cloud = active_cloud_;
        env.options = options;
        env.metrics = metrics;
        env.worker_id = worker_id;
        env.abort = &abort_;
        body(&env, channel.get());
        ctx->set_result(Status::OK());
      };
      FSD_CHECK_OK(active_cloud_->faas().RegisterFunction(fn));
    }
    sim_.AddProcess(StrFormat("kickoff-%d", epoch),
                    [this, epoch, n = specs.size()]() {
                      for (size_t i = 0; i < n; ++i) {
                        active_cloud_->faas().InvokeAsync(
                            StrFormat("e%d-w%zu", epoch, i), {});
                      }
                    });
    sim_.Run();
  }

  sim::Simulation sim_;
  cloud::CloudEnv cloud_;
  /// The environment RunWorkers drives: tests needing a non-default cloud
  /// configuration (e.g. a 100% punch-failure rate) repoint this before
  /// their first RunWorkers call.
  cloud::CloudEnv* active_cloud_ = &cloud_;
  FsdOptions options_;
  bool abort_ = false;
  int run_counter_ = 0;
  std::vector<std::unique_ptr<WorkerMetrics>> metrics_;
};

std::string ComboName(
    const ::testing::TestParamInfo<std::tuple<Variant, CollectiveTopology>>&
        info) {
  std::string name;
  switch (std::get<0>(info.param)) {
    case Variant::kQueue:
      name = "Queue";
      break;
    case Variant::kObject:
      name = "Object";
      break;
    case Variant::kKv:
      name = "Kv";
      break;
    case Variant::kDirect:
      name = "Direct";
      break;
    default:
      name = "Unknown";
      break;
  }
  switch (std::get<1>(info.param)) {
    case CollectiveTopology::kThroughRoot:
      return name + "ThroughRoot";
    case CollectiveTopology::kBinomialTree:
      return name + "Binomial";
    case CollectiveTopology::kRing:
      return name + "Ring";
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, ChannelConformanceTest,
    ::testing::Combine(::testing::Values(Variant::kQueue, Variant::kObject,
                                         Variant::kKv, Variant::kDirect),
                       ::testing::Values(CollectiveTopology::kThroughRoot,
                                         CollectiveTopology::kBinomialTree,
                                         CollectiveTopology::kRing)),
    ComboName);

TEST_P(ChannelConformanceTest, RoundtripDeliversExactRows) {
  const linalg::ActivationMap rows = MakeRows({3, 7, 11}, 16, 4);
  static const std::vector<int32_t> ids = {3, 7, 11};
  linalg::ActivationMap received;
  RunWorkers({
      {[&](WorkerEnv* env, CommChannel* channel) {
        std::vector<SendSpec> sends{{1, &ids}};
        ASSERT_TRUE(channel->SendPhase(env, 0, rows, sends).ok());
      }},
      {[&](WorkerEnv* env, CommChannel* channel) {
        auto got = channel->ReceivePhase(env, 0, {0});
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        received = std::move(*got);
      }},
  });
  ASSERT_EQ(received.size(), 3u);
  for (int32_t id : ids) EXPECT_EQ(received.at(id), rows.at(id));
}

TEST_P(ChannelConformanceTest, PhasesDeliverInOrderWithoutCrossTalk) {
  // All three phases are in flight before the receiver starts phase 0: a
  // conforming backend neither loses nor cross-delivers early phases.
  constexpr int kPhases = 3;
  std::vector<linalg::ActivationMap> sent;
  for (int p = 0; p < kPhases; ++p) {
    sent.push_back(MakeRows({p + 1, p + 10}, 8, 3,
                            /*salt=*/0.5f * static_cast<float>(p)));
  }
  static const std::vector<std::vector<int32_t>> ids = {
      {1, 10}, {2, 11}, {3, 12}};
  std::vector<linalg::ActivationMap> received(kPhases);
  RunWorkers({
      {[&](WorkerEnv* env, CommChannel* channel) {
        for (int p = 0; p < kPhases; ++p) {
          std::vector<SendSpec> sends{{1, &ids[p]}};
          ASSERT_TRUE(channel->SendPhase(env, p, sent[p], sends).ok());
        }
      }},
      {[&](WorkerEnv* env, CommChannel* channel) {
        ASSERT_TRUE(env->faas->SleepFor(1.0).ok());  // let all phases land
        for (int p = 0; p < kPhases; ++p) {
          auto got = channel->ReceivePhase(env, p, {0});
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          received[p] = std::move(*got);
        }
      }},
  });
  for (int p = 0; p < kPhases; ++p) {
    EXPECT_EQ(received[p], sent[p]) << "phase " << p;
  }
}

TEST_P(ChannelConformanceTest, ChunkedPayloadsReassemble) {
  // Force chunking on the size-capped backends; the object channel ships
  // one unbounded object either way. Values must reassemble exactly.
  options_.max_message_bytes = 512;
  options_.kv_max_value_bytes = 512;
  std::vector<int32_t> ids;
  for (int32_t i = 0; i < 40; ++i) ids.push_back(i);
  const linalg::ActivationMap rows = MakeRows(ids, 64, 48);
  linalg::ActivationMap received;
  int64_t send_chunks = 0;
  RunWorkers({
      {[&](WorkerEnv* env, CommChannel* channel) {
        std::vector<SendSpec> sends{{1, &ids}};
        ASSERT_TRUE(channel->SendPhase(env, 0, rows, sends).ok());
        send_chunks = env->metrics->Layer(0).send_chunks;
      }},
      {[&](WorkerEnv* env, CommChannel* channel) {
        auto got = channel->ReceivePhase(env, 0, {0});
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        received = std::move(*got);
      }},
  });
  if (Backend() != Variant::kObject) {
    EXPECT_GT(send_chunks, 5);
  }
  ASSERT_EQ(received.size(), ids.size());
  for (int32_t id : ids) EXPECT_EQ(received.at(id), rows.at(id));
}

TEST_P(ChannelConformanceTest, EmptySendCompletesReceiver) {
  // A source with nothing to transmit must still complete the receiver
  // (marker message / .nul object / header-only value).
  const linalg::ActivationMap empty;
  static const std::vector<int32_t> ids = {5, 6};
  bool receiver_done = false;
  RunWorkers({
      {[&](WorkerEnv* env, CommChannel* channel) {
        std::vector<SendSpec> sends{{1, &ids}};
        ASSERT_TRUE(channel->SendPhase(env, 0, empty, sends).ok());
      }},
      {[&](WorkerEnv* env, CommChannel* channel) {
        auto got = channel->ReceivePhase(env, 0, {0});
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_TRUE(got->empty());
        receiver_done = true;
      }},
  });
  EXPECT_TRUE(receiver_done);
}

TEST_P(ChannelConformanceTest, FanOutDeliversDisjointSubsets) {
  // One SendPhase call with three targets: each receiver sees exactly its
  // subset, nothing more.
  const linalg::ActivationMap rows = MakeRows({1, 2, 3}, 8, 4);
  static const std::vector<std::vector<int32_t>> subsets = {{1}, {2}, {3}};
  std::vector<linalg::ActivationMap> received(3);
  RunWorkers({
      {[&](WorkerEnv* env, CommChannel* channel) {
        std::vector<SendSpec> sends{
            {1, &subsets[0]}, {2, &subsets[1]}, {3, &subsets[2]}};
        ASSERT_TRUE(channel->SendPhase(env, 0, rows, sends).ok());
      }},
      {[&](WorkerEnv* env, CommChannel* channel) {
        auto got = channel->ReceivePhase(env, 0, {0});
        ASSERT_TRUE(got.ok());
        received[0] = std::move(*got);
      }},
      {[&](WorkerEnv* env, CommChannel* channel) {
        auto got = channel->ReceivePhase(env, 0, {0});
        ASSERT_TRUE(got.ok());
        received[1] = std::move(*got);
      }},
      {[&](WorkerEnv* env, CommChannel* channel) {
        auto got = channel->ReceivePhase(env, 0, {0});
        ASSERT_TRUE(got.ok());
        received[2] = std::move(*got);
      }},
  });
  for (int n = 0; n < 3; ++n) {
    ASSERT_EQ(received[n].size(), 1u) << "target " << n + 1;
    EXPECT_EQ(received[n].at(n + 1), rows.at(n + 1));
  }
}

TEST_P(ChannelConformanceTest, CompressionOnAndOffBothRoundtrip) {
  static const std::vector<int32_t> ids = {4, 9, 20};
  const linalg::ActivationMap rows = MakeRows(ids, 32, 24);
  for (bool compress : {true, false}) {
    FsdOptions options = options_;
    options.compress = compress;
    options.channel_scope = compress ? "cmp-" : "raw-";
    linalg::ActivationMap received;
    RunWorkers({
        {[&](WorkerEnv* env, CommChannel* channel) {
          std::vector<SendSpec> sends{{1, &ids}};
          ASSERT_TRUE(channel->SendPhase(env, 0, rows, sends).ok());
        }, &options},
        {[&](WorkerEnv* env, CommChannel* channel) {
          auto got = channel->ReceivePhase(env, 0, {0});
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          received = std::move(*got);
        }, &options},
    });
    ASSERT_EQ(received.size(), ids.size()) << "compress=" << compress;
    for (int32_t id : ids) {
      EXPECT_EQ(received.at(id), rows.at(id)) << "compress=" << compress;
    }
  }
}

TEST_P(ChannelConformanceTest, LaneCountDoesNotChangeValues) {
  static const std::vector<int32_t> ids = {0, 1, 2, 3, 4, 5, 6, 7};
  const linalg::ActivationMap rows = MakeRows(ids, 64, 32);
  std::vector<linalg::ActivationMap> received(2);
  int lane_run = 0;
  for (int32_t lanes : {1, 8}) {
    FsdOptions options = options_;
    options.io_lanes = lanes;
    options.channel_scope = StrFormat("lanes%d-", lanes);
    RunWorkers({
        {[&, lanes](WorkerEnv* env, CommChannel* channel) {
          std::vector<SendSpec> sends{{1, &ids}};
          ASSERT_TRUE(channel->SendPhase(env, 0, rows, sends).ok());
        }, &options},
        {[&, idx = lane_run](WorkerEnv* env, CommChannel* channel) {
          auto got = channel->ReceivePhase(env, 0, {0});
          ASSERT_TRUE(got.ok());
          received[idx] = std::move(*got);
        }, &options},
    });
    ++lane_run;
  }
  EXPECT_EQ(received[0], received[1]);
  EXPECT_EQ(received[0], rows);
}

TEST_P(ChannelConformanceTest, BarrierReleasesNobodyBeforeLastArrival) {
  constexpr int32_t kWorkers = 4;
  std::vector<double> arrived(kWorkers, 0.0);
  std::vector<double> released(kWorkers, 0.0);
  std::vector<WorkerSpec> specs;
  for (int32_t w = 0; w < kWorkers; ++w) {
    specs.push_back({[&, w](WorkerEnv* env, CommChannel* channel) {
      // Staggered arrivals: the barrier must hold everyone until the
      // slowest worker shows up.
      ASSERT_TRUE(env->faas->SleepFor(0.3 * w).ok());
      arrived[w] = env->cloud->sim()->Now();
      ASSERT_TRUE(Barrier(channel, env, Topology(),
                          Block(CollectiveOp::kBarrierArrive, kWorkers),
                          Block(CollectiveOp::kBarrierRelease, kWorkers),
                          kWorkers)
                      .ok());
      released[w] = env->cloud->sim()->Now();
    }});
  }
  RunWorkers(std::move(specs));
  const double last_arrival =
      *std::max_element(arrived.begin(), arrived.end());
  for (int32_t w = 0; w < kWorkers; ++w) {
    EXPECT_GE(released[w], last_arrival) << "worker " << w;
  }
}

TEST_P(ChannelConformanceTest, ReduceGathersEveryWorkersRows) {
  constexpr int32_t kWorkers = 4;
  linalg::ActivationMap gathered;
  std::vector<WorkerSpec> specs;
  for (int32_t w = 0; w < kWorkers; ++w) {
    specs.push_back({[&, w](WorkerEnv* env, CommChannel* channel) {
      // Disjoint row ownership, as the row-wise decomposition guarantees.
      const linalg::ActivationMap mine = MakeRows({w}, 8, 3);
      auto got = Reduce(channel, env, Topology(),
                        Block(CollectiveOp::kReduce, kWorkers), kWorkers, mine);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      if (w == 0) {
        gathered = std::move(*got);
      } else {
        EXPECT_TRUE(got->empty());
      }
    }});
  }
  RunWorkers(std::move(specs));
  ASSERT_EQ(gathered.size(), static_cast<size_t>(kWorkers));
  for (int32_t w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(gathered.at(w), MakeRows({w}, 8, 3).at(w));
  }
}

TEST_P(ChannelConformanceTest, BroadcastDeliversRootRowsToAll) {
  constexpr int32_t kWorkers = 4;
  const linalg::ActivationMap root_rows = MakeRows({2, 5}, 8, 4);
  std::vector<linalg::ActivationMap> got_rows(kWorkers);
  std::vector<WorkerSpec> specs;
  for (int32_t w = 0; w < kWorkers; ++w) {
    specs.push_back({[&, w](WorkerEnv* env, CommChannel* channel) {
      const linalg::ActivationMap mine =
          w == 0 ? root_rows : linalg::ActivationMap{};
      auto got = Broadcast(channel, env, Topology(),
                           Block(CollectiveOp::kBroadcast, kWorkers), kWorkers,
                           mine);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      got_rows[w] = std::move(*got);
    }});
  }
  RunWorkers(std::move(specs));
  for (int32_t w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(got_rows[w], root_rows) << "worker " << w;
  }
}

TEST_P(ChannelConformanceTest, AbortUnblocksPendingReceive) {
  // Worker 1 waits for a source that never sends; the abort flag (set when
  // a peer fails) must drain the receive promptly instead of letting it
  // poll until the runtime cap.
  Status receive_status = Status::OK();
  double unblocked_at = 0.0;
  sim_.AddProcess("abort-setter", [this]() {
    sim_.Hold(0.5);
    abort_ = true;
  });
  RunWorkers({
      {[&](WorkerEnv*, CommChannel*) { /* never sends */ }},
      {[&](WorkerEnv* env, CommChannel* channel) {
        auto got = channel->ReceivePhase(env, 0, {0});
        receive_status = got.status();
        unblocked_at = env->cloud->sim()->Now();
      }},
  });
  EXPECT_FALSE(receive_status.ok());
  EXPECT_EQ(receive_status.code(), StatusCode::kUnavailable)
      << receive_status.ToString();
  // Bounded by one poll/pop wait after the abort, with scheduling slack.
  EXPECT_LT(unblocked_at, 0.5 + 2.0 * options_.poll_wait_s + 1.0);
}

TEST_P(ChannelConformanceTest, ChannelScopeIsolatesConcurrentRuns) {
  // Two runs with identical (phase, source -> target) traffic but
  // different scopes: each receiver must see exactly its own run's rows.
  FsdOptions run_a = options_;
  run_a.channel_scope = "runA-";
  FsdOptions run_b = options_;
  run_b.channel_scope = "runB-";
  static const std::vector<int32_t> ids = {7};
  const linalg::ActivationMap rows_a = MakeRows({7}, 8, 3, /*salt=*/0.0f);
  const linalg::ActivationMap rows_b = MakeRows({7}, 8, 3, /*salt=*/100.0f);
  linalg::ActivationMap got_a, got_b;
  RunWorkers({
      {[&](WorkerEnv* env, CommChannel* channel) {
        std::vector<SendSpec> sends{{1, &ids}};
        ASSERT_TRUE(channel->SendPhase(env, 0, rows_a, sends).ok());
      }, &run_a, /*worker_id=*/0},
      {[&](WorkerEnv* env, CommChannel* channel) {
        auto got = channel->ReceivePhase(env, 0, {0});
        ASSERT_TRUE(got.ok());
        got_a = std::move(*got);
      }, &run_a, /*worker_id=*/1},
      {[&](WorkerEnv* env, CommChannel* channel) {
        std::vector<SendSpec> sends{{1, &ids}};
        ASSERT_TRUE(channel->SendPhase(env, 0, rows_b, sends).ok());
      }, &run_b, /*worker_id=*/0},
      {[&](WorkerEnv* env, CommChannel* channel) {
        auto got = channel->ReceivePhase(env, 0, {0});
        ASSERT_TRUE(got.ok());
        got_b = std::move(*got);
      }, &run_b, /*worker_id=*/1},
  });
  ASSERT_EQ(got_a.size(), 1u);
  ASSERT_EQ(got_b.size(), 1u);
  EXPECT_EQ(got_a.at(7), rows_a.at(7));
  EXPECT_EQ(got_b.at(7), rows_b.at(7));
  EXPECT_NE(got_a.at(7), got_b.at(7));
}

TEST_P(ChannelConformanceTest, DirectPunchFailuresFallBackToRelay) {
  // With every hole punch failing (all-symmetric-NAT fleet), the direct
  // channel must deliver the same rows through its KV relay: exactness is
  // preserved, the fallback counters fire, and no message rides a link.
  if (Backend() != Variant::kDirect) {
    GTEST_SKIP() << "punch fallback is direct-channel behaviour";
  }
  cloud::CloudConfig config;
  config.latency.p2p_punch_failure_rate = 1.0;
  cloud::CloudEnv relay_cloud(&sim_, config);
  active_cloud_ = &relay_cloud;
  static const std::vector<int32_t> ids = {3, 7};
  const linalg::ActivationMap rows = MakeRows(ids, 16, 4);
  linalg::ActivationMap received;
  int64_t punch_failures = 0;
  int64_t relay_msgs = 0;
  int64_t direct_msgs = 0;
  RunWorkers({
      {[&](WorkerEnv* env, CommChannel* channel) {
        std::vector<SendSpec> sends{{1, &ids}};
        ASSERT_TRUE(channel->SendPhase(env, 0, rows, sends).ok());
        punch_failures = env->metrics->Layer(0).punch_failures;
        relay_msgs = env->metrics->Layer(0).relay_fallback_msgs;
        direct_msgs = env->metrics->Layer(0).direct_msgs;
      }},
      {[&](WorkerEnv* env, CommChannel* channel) {
        auto got = channel->ReceivePhase(env, 0, {0});
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        received = std::move(*got);
      }},
  });
  ASSERT_EQ(received.size(), ids.size());
  for (int32_t id : ids) EXPECT_EQ(received.at(id), rows.at(id));
  EXPECT_GT(punch_failures, 0);
  EXPECT_GT(relay_msgs, 0);
  EXPECT_EQ(direct_msgs, 0);
}

TEST_P(ChannelConformanceTest, AbortDrainsMidTreeCollective) {
  // Worker 3 dies before contributing; the survivors are mid-collective
  // (root or chain neighbours blocked on the missing rank, depending on
  // topology). The abort flag must drain every blocked participant
  // promptly with kUnavailable instead of letting the tree hang.
  constexpr int32_t kWorkers = 4;
  std::vector<Status> statuses(kWorkers, Status::OK());
  std::vector<double> done_at(kWorkers, 0.0);
  sim_.AddProcess("abort-setter", [this]() {
    sim_.Hold(0.5);
    abort_ = true;
  });
  std::vector<WorkerSpec> specs;
  for (int32_t w = 0; w < kWorkers; ++w) {
    specs.push_back({[&, w](WorkerEnv* env, CommChannel* channel) {
      if (w == 3) return;  // crashed peer: never participates
      const linalg::ActivationMap mine = MakeRows({w}, 8, 3);
      auto got = Reduce(channel, env, Topology(),
                        Block(CollectiveOp::kReduce, kWorkers), kWorkers, mine);
      statuses[w] = got.status();
      done_at[w] = env->cloud->sim()->Now();
    }});
  }
  RunWorkers(std::move(specs));
  int unavailable = 0;
  for (int32_t w = 0; w < kWorkers - 1; ++w) {
    ASSERT_TRUE(statuses[w].ok() ||
                statuses[w].code() == StatusCode::kUnavailable)
        << "worker " << w << ": " << statuses[w].ToString();
    if (!statuses[w].ok()) ++unavailable;
    // Bounded by one poll/pop wait after the abort, with scheduling slack.
    EXPECT_LT(done_at[w], 0.5 + 2.0 * options_.poll_wait_s + 1.0)
        << "worker " << w;
  }
  // Whatever the topology, somebody was waiting on rank 3's contribution.
  EXPECT_GE(unavailable, 1);
}

TEST_P(ChannelConformanceTest, TeardownReleasesPerRunResources) {
  // Teardown must be idempotent and, for the KV backend, actually delete
  // the run's namespace (billing its node time).
  FSD_CHECK_OK(ProvisionChannelResources(&cloud_, options_));
  ASSERT_TRUE(TeardownChannelResources(&cloud_, options_).ok());
  ASSERT_TRUE(TeardownChannelResources(&cloud_, options_).ok());
  if (Backend() == Variant::kKv) {
    EXPECT_FALSE(
        cloud_.kv().NamespaceExists(KvChannel::NamespaceName(options_)));
    EXPECT_GT(
        cloud_.billing().line(cloud::BillingDimension::kKvNodeSecond).events,
        0u);
  }
}

}  // namespace
}  // namespace fsd::core
