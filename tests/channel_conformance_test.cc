// Backend-parameterized conformance suite for the CommChannel contract:
// one set of behavioural guarantees, verified against every production
// backend (queue, object, KV). Anything a worker or collective may rely on
// — delivery exactness, phase separation, chunk reassembly, empty-send
// markers, compression/lane configuration independence, collective
// semantics, abort draining, and channel_scope isolation — is pinned here,
// so a new backend is done when this suite passes.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "cloud/cloud.h"
#include "common/strings.h"
#include "core/channel.h"
#include "core/collectives.h"
#include "core/kv_channel.h"

namespace fsd::core {
namespace {

linalg::ActivationMap MakeRows(std::vector<int32_t> ids, int32_t dim,
                               int32_t nnz, float salt = 0.0f) {
  linalg::ActivationMap out;
  for (int32_t id : ids) {
    linalg::SparseVector vec;
    vec.dim = dim;
    for (int32_t j = 0; j < nnz; ++j) {
      vec.idx.push_back(j);
      vec.val.push_back(static_cast<float>(id) + 0.25f * j + salt);
    }
    out.emplace(id, std::move(vec));
  }
  return out;
}

/// One simulated worker of a conformance scenario.
struct WorkerSpec {
  std::function<void(WorkerEnv*, CommChannel*)> body;
  /// Channel configuration (defaults to the fixture's options_). Distinct
  /// pointers model concurrent runs with their own channel_scope.
  const FsdOptions* options = nullptr;
  /// Worker id within its options' run (defaults to the spec index).
  int32_t worker_id = -1;
};

class ChannelConformanceTest : public ::testing::TestWithParam<Variant> {
 protected:
  ChannelConformanceTest() : cloud_(&sim_) {}

  void SetUp() override {
    options_.variant = GetParam();
    options_.num_workers = 4;
    options_.poll_wait_s = 2.0;
    options_.kv_poll_wait_s = 0.5;
    options_.object_scan_interval_s = 0.01;
  }

  /// Runs each spec's body inside its own FaaS handler with a fresh
  /// channel instance bound to the spec's options. May be called several
  /// times per test (each call provisions and drives to quiescence).
  void RunWorkers(std::vector<WorkerSpec> specs) {
    const int epoch = run_counter_++;
    std::vector<const FsdOptions*> provisioned;
    for (size_t i = 0; i < specs.size(); ++i) {
      const FsdOptions* options =
          specs[i].options != nullptr ? specs[i].options : &options_;
      if (std::find(provisioned.begin(), provisioned.end(), options) ==
          provisioned.end()) {
        FSD_CHECK_OK(ProvisionChannelResources(&cloud_, *options));
        provisioned.push_back(options);
      }
      metrics_.emplace_back(std::make_unique<WorkerMetrics>());
      WorkerMetrics* metrics = metrics_.back().get();
      const int32_t worker_id = specs[i].worker_id >= 0
                                    ? specs[i].worker_id
                                    : static_cast<int32_t>(i);
      auto body = specs[i].body;
      cloud::FaasFunctionConfig fn;
      fn.name = StrFormat("e%d-w%zu", epoch, i);
      fn.memory_mb = 2048;
      fn.timeout_s = 600.0;
      fn.handler = [this, body, options, metrics,
                    worker_id](cloud::FaasContext* ctx) {
        std::unique_ptr<CommChannel> channel =
            MakeCommChannel(options->variant);
        WorkerEnv env;
        env.faas = ctx;
        env.cloud = &cloud_;
        env.options = options;
        env.metrics = metrics;
        env.worker_id = worker_id;
        env.abort = &abort_;
        body(&env, channel.get());
        ctx->set_result(Status::OK());
      };
      FSD_CHECK_OK(cloud_.faas().RegisterFunction(fn));
    }
    sim_.AddProcess(StrFormat("kickoff-%d", epoch),
                    [this, epoch, n = specs.size()]() {
                      for (size_t i = 0; i < n; ++i) {
                        cloud_.faas().InvokeAsync(
                            StrFormat("e%d-w%zu", epoch, i), {});
                      }
                    });
    sim_.Run();
  }

  sim::Simulation sim_;
  cloud::CloudEnv cloud_;
  FsdOptions options_;
  bool abort_ = false;
  int run_counter_ = 0;
  std::vector<std::unique_ptr<WorkerMetrics>> metrics_;
};

std::string BackendName(const ::testing::TestParamInfo<Variant>& info) {
  switch (info.param) {
    case Variant::kQueue:
      return "Queue";
    case Variant::kObject:
      return "Object";
    case Variant::kKv:
      return "Kv";
    default:
      return "Unknown";
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ChannelConformanceTest,
                         ::testing::Values(Variant::kQueue, Variant::kObject,
                                           Variant::kKv),
                         BackendName);

TEST_P(ChannelConformanceTest, RoundtripDeliversExactRows) {
  const linalg::ActivationMap rows = MakeRows({3, 7, 11}, 16, 4);
  static const std::vector<int32_t> ids = {3, 7, 11};
  linalg::ActivationMap received;
  RunWorkers({
      {[&](WorkerEnv* env, CommChannel* channel) {
        std::vector<SendSpec> sends{{1, &ids}};
        ASSERT_TRUE(channel->SendPhase(env, 0, rows, sends).ok());
      }},
      {[&](WorkerEnv* env, CommChannel* channel) {
        auto got = channel->ReceivePhase(env, 0, {0});
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        received = std::move(*got);
      }},
  });
  ASSERT_EQ(received.size(), 3u);
  for (int32_t id : ids) EXPECT_EQ(received.at(id), rows.at(id));
}

TEST_P(ChannelConformanceTest, PhasesDeliverInOrderWithoutCrossTalk) {
  // All three phases are in flight before the receiver starts phase 0: a
  // conforming backend neither loses nor cross-delivers early phases.
  constexpr int kPhases = 3;
  std::vector<linalg::ActivationMap> sent;
  for (int p = 0; p < kPhases; ++p) {
    sent.push_back(MakeRows({p + 1, p + 10}, 8, 3,
                            /*salt=*/0.5f * static_cast<float>(p)));
  }
  static const std::vector<std::vector<int32_t>> ids = {
      {1, 10}, {2, 11}, {3, 12}};
  std::vector<linalg::ActivationMap> received(kPhases);
  RunWorkers({
      {[&](WorkerEnv* env, CommChannel* channel) {
        for (int p = 0; p < kPhases; ++p) {
          std::vector<SendSpec> sends{{1, &ids[p]}};
          ASSERT_TRUE(channel->SendPhase(env, p, sent[p], sends).ok());
        }
      }},
      {[&](WorkerEnv* env, CommChannel* channel) {
        ASSERT_TRUE(env->faas->SleepFor(1.0).ok());  // let all phases land
        for (int p = 0; p < kPhases; ++p) {
          auto got = channel->ReceivePhase(env, p, {0});
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          received[p] = std::move(*got);
        }
      }},
  });
  for (int p = 0; p < kPhases; ++p) {
    EXPECT_EQ(received[p], sent[p]) << "phase " << p;
  }
}

TEST_P(ChannelConformanceTest, ChunkedPayloadsReassemble) {
  // Force chunking on the size-capped backends; the object channel ships
  // one unbounded object either way. Values must reassemble exactly.
  options_.max_message_bytes = 512;
  options_.kv_max_value_bytes = 512;
  std::vector<int32_t> ids;
  for (int32_t i = 0; i < 40; ++i) ids.push_back(i);
  const linalg::ActivationMap rows = MakeRows(ids, 64, 48);
  linalg::ActivationMap received;
  int64_t send_chunks = 0;
  RunWorkers({
      {[&](WorkerEnv* env, CommChannel* channel) {
        std::vector<SendSpec> sends{{1, &ids}};
        ASSERT_TRUE(channel->SendPhase(env, 0, rows, sends).ok());
        send_chunks = env->metrics->Layer(0).send_chunks;
      }},
      {[&](WorkerEnv* env, CommChannel* channel) {
        auto got = channel->ReceivePhase(env, 0, {0});
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        received = std::move(*got);
      }},
  });
  if (GetParam() != Variant::kObject) {
    EXPECT_GT(send_chunks, 5);
  }
  ASSERT_EQ(received.size(), ids.size());
  for (int32_t id : ids) EXPECT_EQ(received.at(id), rows.at(id));
}

TEST_P(ChannelConformanceTest, EmptySendCompletesReceiver) {
  // A source with nothing to transmit must still complete the receiver
  // (marker message / .nul object / header-only value).
  const linalg::ActivationMap empty;
  static const std::vector<int32_t> ids = {5, 6};
  bool receiver_done = false;
  RunWorkers({
      {[&](WorkerEnv* env, CommChannel* channel) {
        std::vector<SendSpec> sends{{1, &ids}};
        ASSERT_TRUE(channel->SendPhase(env, 0, empty, sends).ok());
      }},
      {[&](WorkerEnv* env, CommChannel* channel) {
        auto got = channel->ReceivePhase(env, 0, {0});
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_TRUE(got->empty());
        receiver_done = true;
      }},
  });
  EXPECT_TRUE(receiver_done);
}

TEST_P(ChannelConformanceTest, FanOutDeliversDisjointSubsets) {
  // One SendPhase call with three targets: each receiver sees exactly its
  // subset, nothing more.
  const linalg::ActivationMap rows = MakeRows({1, 2, 3}, 8, 4);
  static const std::vector<std::vector<int32_t>> subsets = {{1}, {2}, {3}};
  std::vector<linalg::ActivationMap> received(3);
  RunWorkers({
      {[&](WorkerEnv* env, CommChannel* channel) {
        std::vector<SendSpec> sends{
            {1, &subsets[0]}, {2, &subsets[1]}, {3, &subsets[2]}};
        ASSERT_TRUE(channel->SendPhase(env, 0, rows, sends).ok());
      }},
      {[&](WorkerEnv* env, CommChannel* channel) {
        auto got = channel->ReceivePhase(env, 0, {0});
        ASSERT_TRUE(got.ok());
        received[0] = std::move(*got);
      }},
      {[&](WorkerEnv* env, CommChannel* channel) {
        auto got = channel->ReceivePhase(env, 0, {0});
        ASSERT_TRUE(got.ok());
        received[1] = std::move(*got);
      }},
      {[&](WorkerEnv* env, CommChannel* channel) {
        auto got = channel->ReceivePhase(env, 0, {0});
        ASSERT_TRUE(got.ok());
        received[2] = std::move(*got);
      }},
  });
  for (int n = 0; n < 3; ++n) {
    ASSERT_EQ(received[n].size(), 1u) << "target " << n + 1;
    EXPECT_EQ(received[n].at(n + 1), rows.at(n + 1));
  }
}

TEST_P(ChannelConformanceTest, CompressionOnAndOffBothRoundtrip) {
  static const std::vector<int32_t> ids = {4, 9, 20};
  const linalg::ActivationMap rows = MakeRows(ids, 32, 24);
  for (bool compress : {true, false}) {
    FsdOptions options = options_;
    options.compress = compress;
    options.channel_scope = compress ? "cmp-" : "raw-";
    linalg::ActivationMap received;
    RunWorkers({
        {[&](WorkerEnv* env, CommChannel* channel) {
          std::vector<SendSpec> sends{{1, &ids}};
          ASSERT_TRUE(channel->SendPhase(env, 0, rows, sends).ok());
        }, &options},
        {[&](WorkerEnv* env, CommChannel* channel) {
          auto got = channel->ReceivePhase(env, 0, {0});
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          received = std::move(*got);
        }, &options},
    });
    ASSERT_EQ(received.size(), ids.size()) << "compress=" << compress;
    for (int32_t id : ids) {
      EXPECT_EQ(received.at(id), rows.at(id)) << "compress=" << compress;
    }
  }
}

TEST_P(ChannelConformanceTest, LaneCountDoesNotChangeValues) {
  static const std::vector<int32_t> ids = {0, 1, 2, 3, 4, 5, 6, 7};
  const linalg::ActivationMap rows = MakeRows(ids, 64, 32);
  std::vector<linalg::ActivationMap> received(2);
  int lane_run = 0;
  for (int32_t lanes : {1, 8}) {
    FsdOptions options = options_;
    options.io_lanes = lanes;
    options.channel_scope = StrFormat("lanes%d-", lanes);
    RunWorkers({
        {[&, lanes](WorkerEnv* env, CommChannel* channel) {
          std::vector<SendSpec> sends{{1, &ids}};
          ASSERT_TRUE(channel->SendPhase(env, 0, rows, sends).ok());
        }, &options},
        {[&, idx = lane_run](WorkerEnv* env, CommChannel* channel) {
          auto got = channel->ReceivePhase(env, 0, {0});
          ASSERT_TRUE(got.ok());
          received[idx] = std::move(*got);
        }, &options},
    });
    ++lane_run;
  }
  EXPECT_EQ(received[0], received[1]);
  EXPECT_EQ(received[0], rows);
}

TEST_P(ChannelConformanceTest, BarrierReleasesNobodyBeforeLastArrival) {
  constexpr int32_t kWorkers = 4;
  std::vector<double> arrived(kWorkers, 0.0);
  std::vector<double> released(kWorkers, 0.0);
  std::vector<WorkerSpec> specs;
  for (int32_t w = 0; w < kWorkers; ++w) {
    specs.push_back({[&, w](WorkerEnv* env, CommChannel* channel) {
      // Staggered arrivals: the barrier must hold everyone until the
      // slowest worker shows up.
      ASSERT_TRUE(env->faas->SleepFor(0.3 * w).ok());
      arrived[w] = env->cloud->sim()->Now();
      ASSERT_TRUE(Barrier(channel, env, /*phase=*/0, kWorkers).ok());
      released[w] = env->cloud->sim()->Now();
    }});
  }
  RunWorkers(std::move(specs));
  const double last_arrival =
      *std::max_element(arrived.begin(), arrived.end());
  for (int32_t w = 0; w < kWorkers; ++w) {
    EXPECT_GE(released[w], last_arrival) << "worker " << w;
  }
}

TEST_P(ChannelConformanceTest, ReduceGathersEveryWorkersRows) {
  constexpr int32_t kWorkers = 4;
  linalg::ActivationMap gathered;
  std::vector<WorkerSpec> specs;
  for (int32_t w = 0; w < kWorkers; ++w) {
    specs.push_back({[&, w](WorkerEnv* env, CommChannel* channel) {
      // Disjoint row ownership, as the row-wise decomposition guarantees.
      const linalg::ActivationMap mine = MakeRows({w}, 8, 3);
      auto got = Reduce(channel, env, /*phase=*/0, kWorkers, mine);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      if (w == 0) {
        gathered = std::move(*got);
      } else {
        EXPECT_TRUE(got->empty());
      }
    }});
  }
  RunWorkers(std::move(specs));
  ASSERT_EQ(gathered.size(), static_cast<size_t>(kWorkers));
  for (int32_t w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(gathered.at(w), MakeRows({w}, 8, 3).at(w));
  }
}

TEST_P(ChannelConformanceTest, BroadcastDeliversRootRowsToAll) {
  constexpr int32_t kWorkers = 4;
  const linalg::ActivationMap root_rows = MakeRows({2, 5}, 8, 4);
  std::vector<linalg::ActivationMap> got_rows(kWorkers);
  std::vector<WorkerSpec> specs;
  for (int32_t w = 0; w < kWorkers; ++w) {
    specs.push_back({[&, w](WorkerEnv* env, CommChannel* channel) {
      const linalg::ActivationMap mine =
          w == 0 ? root_rows : linalg::ActivationMap{};
      auto got = Broadcast(channel, env, /*phase=*/0, kWorkers, mine);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      got_rows[w] = std::move(*got);
    }});
  }
  RunWorkers(std::move(specs));
  for (int32_t w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(got_rows[w], root_rows) << "worker " << w;
  }
}

TEST_P(ChannelConformanceTest, AbortUnblocksPendingReceive) {
  // Worker 1 waits for a source that never sends; the abort flag (set when
  // a peer fails) must drain the receive promptly instead of letting it
  // poll until the runtime cap.
  Status receive_status = Status::OK();
  double unblocked_at = 0.0;
  sim_.AddProcess("abort-setter", [this]() {
    sim_.Hold(0.5);
    abort_ = true;
  });
  RunWorkers({
      {[&](WorkerEnv*, CommChannel*) { /* never sends */ }},
      {[&](WorkerEnv* env, CommChannel* channel) {
        auto got = channel->ReceivePhase(env, 0, {0});
        receive_status = got.status();
        unblocked_at = env->cloud->sim()->Now();
      }},
  });
  EXPECT_FALSE(receive_status.ok());
  EXPECT_EQ(receive_status.code(), StatusCode::kUnavailable)
      << receive_status.ToString();
  // Bounded by one poll/pop wait after the abort, with scheduling slack.
  EXPECT_LT(unblocked_at, 0.5 + 2.0 * options_.poll_wait_s + 1.0);
}

TEST_P(ChannelConformanceTest, ChannelScopeIsolatesConcurrentRuns) {
  // Two runs with identical (phase, source -> target) traffic but
  // different scopes: each receiver must see exactly its own run's rows.
  FsdOptions run_a = options_;
  run_a.channel_scope = "runA-";
  FsdOptions run_b = options_;
  run_b.channel_scope = "runB-";
  static const std::vector<int32_t> ids = {7};
  const linalg::ActivationMap rows_a = MakeRows({7}, 8, 3, /*salt=*/0.0f);
  const linalg::ActivationMap rows_b = MakeRows({7}, 8, 3, /*salt=*/100.0f);
  linalg::ActivationMap got_a, got_b;
  RunWorkers({
      {[&](WorkerEnv* env, CommChannel* channel) {
        std::vector<SendSpec> sends{{1, &ids}};
        ASSERT_TRUE(channel->SendPhase(env, 0, rows_a, sends).ok());
      }, &run_a, /*worker_id=*/0},
      {[&](WorkerEnv* env, CommChannel* channel) {
        auto got = channel->ReceivePhase(env, 0, {0});
        ASSERT_TRUE(got.ok());
        got_a = std::move(*got);
      }, &run_a, /*worker_id=*/1},
      {[&](WorkerEnv* env, CommChannel* channel) {
        std::vector<SendSpec> sends{{1, &ids}};
        ASSERT_TRUE(channel->SendPhase(env, 0, rows_b, sends).ok());
      }, &run_b, /*worker_id=*/0},
      {[&](WorkerEnv* env, CommChannel* channel) {
        auto got = channel->ReceivePhase(env, 0, {0});
        ASSERT_TRUE(got.ok());
        got_b = std::move(*got);
      }, &run_b, /*worker_id=*/1},
  });
  ASSERT_EQ(got_a.size(), 1u);
  ASSERT_EQ(got_b.size(), 1u);
  EXPECT_EQ(got_a.at(7), rows_a.at(7));
  EXPECT_EQ(got_b.at(7), rows_b.at(7));
  EXPECT_NE(got_a.at(7), got_b.at(7));
}

TEST_P(ChannelConformanceTest, TeardownReleasesPerRunResources) {
  // Teardown must be idempotent and, for the KV backend, actually delete
  // the run's namespace (billing its node time).
  FSD_CHECK_OK(ProvisionChannelResources(&cloud_, options_));
  ASSERT_TRUE(TeardownChannelResources(&cloud_, options_).ok());
  ASSERT_TRUE(TeardownChannelResources(&cloud_, options_).ok());
  if (GetParam() == Variant::kKv) {
    EXPECT_FALSE(
        cloud_.kv().NamespaceExists(KvChannel::NamespaceName(options_)));
    EXPECT_GT(
        cloud_.billing().line(cloud::BillingDimension::kKvNodeSecond).events,
        0u);
  }
}

}  // namespace
}  // namespace fsd::core
