// Serving-level scheduler-pipeline tests: admission control, load
// shedding, deadline-driven batch flushing and EDF dispatch exercised
// end-to-end on real worker trees, plus the FleetStats disposition
// partition and SLO-attainment reconciliation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cloud/cloud.h"
#include "core/serving.h"
#include "model/input_gen.h"
#include "model/reference.h"

namespace fsd::core {
namespace {

struct Workload {
  model::SparseDnn dnn;
  part::ModelPartition partition;
  linalg::ActivationMap input;
  linalg::ActivationMap expected;
};

Workload MakeWorkload(int32_t neurons = 256, int32_t layers = 8,
                      int32_t batch = 16, int32_t workers = 4,
                      uint64_t seed = 7) {
  model::SparseDnnConfig config;
  config.neurons = neurons;
  config.layers = layers;
  config.seed = seed;
  auto dnn = model::GenerateSparseDnn(config);
  EXPECT_TRUE(dnn.ok()) << dnn.status().ToString();

  part::ModelPartitionOptions po;
  auto partition = part::PartitionModel(*dnn, workers, po);
  EXPECT_TRUE(partition.ok()) << partition.status().ToString();

  model::InputConfig input_config;
  input_config.neurons = neurons;
  input_config.batch = batch;
  input_config.seed = seed + 1;
  auto input = model::GenerateInputBatch(input_config);
  EXPECT_TRUE(input.ok()) << input.status().ToString();

  auto expected = model::ReferenceInference(*dnn, *input);
  EXPECT_TRUE(expected.ok()) << expected.status().ToString();
  return Workload{std::move(*dnn), std::move(*partition), std::move(*input),
                  std::move(*expected)};
}

InferenceRequest MakeRequest(const Workload& w, double slo_deadline_s = 0.0,
                             int32_t priority = 0) {
  InferenceRequest request;
  request.dnn = &w.dnn;
  request.partition = &w.partition;
  request.batches = {&w.input};
  request.options.variant = Variant::kQueue;
  request.options.num_workers = w.partition.num_parts;
  request.options.slo_deadline_s = slo_deadline_s;
  request.options.priority = priority;
  return request;
}

/// The FleetStats partition identity plus exact SLO reconciliation against
/// the per-query outcomes — asserted after every workload in this suite.
void CheckFleetReconciles(const ServingReport& report) {
  const FleetStats& fleet = report.fleet;
  int32_t completed = 0, failed = 0, rejected = 0, shed = 0;
  int32_t deadline_queries = 0, deadline_hits = 0;
  for (const QueryOutcome& outcome : report.queries) {
    switch (outcome.disposition) {
      case QueryDisposition::kCompleted:
        ++completed;
        if (std::isfinite(outcome.deadline_s)) {
          ++deadline_queries;
          if (outcome.deadline_met) ++deadline_hits;
          EXPECT_EQ(outcome.deadline_met,
                    outcome.finish_s <= outcome.deadline_s);
        }
        break;
      case QueryDisposition::kRejected:
        ++rejected;
        EXPECT_FALSE(outcome.reject_reason.empty());
        EXPECT_EQ(outcome.run_id, 0u);  // nothing was provisioned
        break;
      case QueryDisposition::kShed:
        ++shed;
        EXPECT_FALSE(outcome.reject_reason.empty());
        break;
      default:
        ++failed;
        break;
    }
  }
  EXPECT_EQ(fleet.queries, static_cast<int32_t>(report.queries.size()));
  EXPECT_EQ(fleet.completed, completed);
  EXPECT_EQ(fleet.failed, failed);
  EXPECT_EQ(fleet.rejected, rejected);
  EXPECT_EQ(fleet.shed, shed);
  EXPECT_EQ(fleet.completed + fleet.failed + fleet.rejected + fleet.shed,
            fleet.queries);
  EXPECT_EQ(fleet.deadline_queries, deadline_queries);
  EXPECT_EQ(fleet.deadline_hits, deadline_hits);
}

TEST(AdmissionServing, OverloadRejectsBeyondQueueDepthDeterministically) {
  Workload w = MakeWorkload();
  auto run_once = [&]() {
    sim::Simulation sim;
    cloud::CloudEnv cloud(&sim);
    ServingOptions options;
    options.admission_control = true;
    options.max_queue_depth = 2;
    options.max_concurrent_runs = 1;
    ServingRuntime serving(&cloud, options);
    // A simultaneous burst of 6 against 1 tree slot + depth 2: the first
    // occupies the slot, two queue, the rest are rejected with a typed
    // reason.
    for (int q = 0; q < 6; ++q) {
      EXPECT_TRUE(serving.Submit(MakeRequest(w), 0.0).ok());
    }
    auto report = serving.Drain();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return std::move(*report);
  };

  ServingReport report = run_once();
  CheckFleetReconciles(report);
  EXPECT_EQ(report.fleet.queries, 6);
  EXPECT_EQ(report.fleet.completed, 3);
  EXPECT_EQ(report.fleet.rejected, 3);
  EXPECT_EQ(report.fleet.failed, 0);
  for (const QueryOutcome& outcome : report.queries) {
    if (outcome.disposition == QueryDisposition::kRejected) {
      EXPECT_TRUE(outcome.report.status.code() ==
                  StatusCode::kResourceExhausted)
          << outcome.report.status.ToString();
      EXPECT_NE(outcome.reject_reason.find("depth"), std::string::npos);
    } else {
      ASSERT_TRUE(outcome.report.status.ok())
          << outcome.report.status.ToString();
      EXPECT_EQ(outcome.report.outputs[0], w.expected);
    }
  }
  // Rejection is deterministic: the same workload rejects the same
  // queries.
  ServingReport again = run_once();
  for (size_t q = 0; q < report.queries.size(); ++q) {
    EXPECT_EQ(report.queries[q].disposition, again.queries[q].disposition);
    EXPECT_EQ(report.queries[q].reject_reason, again.queries[q].reject_reason);
  }
}

TEST(AdmissionServing, ShedLowestPriorityAdmitsOutrankingArrival) {
  Workload w = MakeWorkload();
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  ServingOptions options;
  options.admission_control = true;
  options.max_queue_depth = 1;
  options.max_concurrent_runs = 1;
  options.shed_policy = ShedPolicy::kShedLowestPriority;
  options.queue_discipline = QueueDiscipline::kEdf;
  ServingRuntime serving(&cloud, options);
  // t=0: query 0 takes the slot. t=0.001: query 1 (priority 0) queues,
  // filling the depth bound. t=0.002: query 2 (priority 1) arrives — the
  // queued low-priority query is shed to make room.
  ASSERT_TRUE(serving.Submit(MakeRequest(w), 0.0).ok());
  ASSERT_TRUE(serving.Submit(MakeRequest(w), 0.001).ok());
  ASSERT_TRUE(
      serving.Submit(MakeRequest(w, /*slo_deadline_s=*/0.0, /*priority=*/1),
                     0.002)
          .ok());
  auto report = serving.Drain();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  CheckFleetReconciles(*report);
  EXPECT_EQ(report->queries[0].disposition, QueryDisposition::kCompleted);
  EXPECT_EQ(report->queries[1].disposition, QueryDisposition::kShed);
  EXPECT_NE(report->queries[1].reject_reason.find("priority"),
            std::string::npos);
  EXPECT_EQ(report->queries[2].disposition, QueryDisposition::kCompleted);
  EXPECT_EQ(report->queries[2].report.outputs[0], w.expected);
  EXPECT_EQ(report->fleet.shed, 1);
  EXPECT_EQ(report->fleet.completed, 2);
}

TEST(AdmissionServing, DeadlineSlackFlushesBatchBeforeTheWindow) {
  Workload w = MakeWorkload();
  // A 30s coalescing window would blow any sub-second SLO; the deadline
  // batcher must flush as soon as the oldest member's slack runs out.
  ServingOptions options;
  options.batch_window_s = 30.0;
  options.max_batch_queries = 8;

  auto serve = [&](double slo_deadline_s) {
    sim::Simulation sim;
    cloud::CloudEnv cloud(&sim);
    ServingRuntime serving(&cloud, options);
    // Warm-up query (opted out of batching so it runs immediately): its
    // completed run seeds the execution-time EWMA the batcher's slack
    // computation refines the coarse a-priori estimate with, and leaves
    // the worker pool warm.
    InferenceRequest warmup = MakeRequest(w);
    warmup.options.cross_query_batching = false;
    EXPECT_TRUE(serving.Submit(warmup, 0.0).ok());
    EXPECT_TRUE(serving.Drain().ok());
    for (int q = 0; q < 2; ++q) {
      EXPECT_TRUE(serving.Submit(MakeRequest(w, slo_deadline_s), 0.5).ok());
    }
    auto report = serving.Drain();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return std::move(*report);
  };

  // Without deadlines the pair waits out the full window.
  ServingReport windowed = serve(/*slo_deadline_s=*/0.0);
  CheckFleetReconciles(windowed);
  EXPECT_NEAR(windowed.queries[1].queue_wait_s, 30.0, 0.5);
  // With a 5s SLO the batch flushes when the slack runs out — far before
  // the window — and both members still coalesced into one tree that
  // finished inside the deadline.
  ServingReport slack = serve(/*slo_deadline_s=*/5.0);
  CheckFleetReconciles(slack);
  EXPECT_EQ(slack.fleet.runs, 2);  // warm-up tree + the coalesced pair
  EXPECT_EQ(slack.queries[1].batch_peers, 2);
  EXPECT_LT(slack.queries[1].queue_wait_s, 5.0);
  for (const QueryOutcome& outcome : slack.queries) {
    ASSERT_TRUE(outcome.report.status.ok());
    EXPECT_EQ(outcome.report.outputs[0], w.expected);
    EXPECT_TRUE(outcome.deadline_met);
  }
  EXPECT_EQ(slack.fleet.deadline_hits, 2);
  EXPECT_DOUBLE_EQ(slack.fleet.slo_attainment, 1.0);
}

TEST(AdmissionServing, EdfLaunchesParkedRunsByDeadlineNotArrival) {
  Workload w = MakeWorkload();
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  ServingOptions options;
  options.max_concurrent_runs = 1;
  options.queue_discipline = QueueDiscipline::kEdf;
  ServingRuntime serving(&cloud, options);
  // Query 0 occupies the only slot. Queries 1..3 park, FIFO-arriving with
  // ever TIGHTER deadlines: EDF must launch them in reverse arrival order.
  ASSERT_TRUE(serving.Submit(MakeRequest(w), 0.0).ok());
  ASSERT_TRUE(serving.Submit(MakeRequest(w, /*slo=*/300.0), 0.010).ok());
  ASSERT_TRUE(serving.Submit(MakeRequest(w, /*slo=*/200.0), 0.011).ok());
  ASSERT_TRUE(serving.Submit(MakeRequest(w, /*slo=*/100.0), 0.012).ok());
  auto report = serving.Drain();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  CheckFleetReconciles(*report);
  ASSERT_EQ(report->fleet.completed, 4);
  // Launch order shows in queue_wait_s: the latest-arriving, tightest-
  // deadline query launched first among the parked three.
  EXPECT_LT(report->queries[3].queue_wait_s, report->queries[2].queue_wait_s);
  EXPECT_LT(report->queries[2].queue_wait_s, report->queries[1].queue_wait_s);
  for (const QueryOutcome& outcome : report->queries) {
    EXPECT_EQ(outcome.report.outputs[0], w.expected);
  }

  // FIFO control: same workload, arrival order wins.
  sim::Simulation fifo_sim;
  cloud::CloudEnv fifo_cloud(&fifo_sim);
  options.queue_discipline = QueueDiscipline::kFifo;
  ServingRuntime fifo_serving(&fifo_cloud, options);
  ASSERT_TRUE(fifo_serving.Submit(MakeRequest(w), 0.0).ok());
  ASSERT_TRUE(fifo_serving.Submit(MakeRequest(w, 300.0), 0.010).ok());
  ASSERT_TRUE(fifo_serving.Submit(MakeRequest(w, 200.0), 0.011).ok());
  ASSERT_TRUE(fifo_serving.Submit(MakeRequest(w, 100.0), 0.012).ok());
  auto fifo_report = fifo_serving.Drain();
  ASSERT_TRUE(fifo_report.ok());
  EXPECT_LT(fifo_report->queries[1].queue_wait_s,
            fifo_report->queries[2].queue_wait_s);
  EXPECT_LT(fifo_report->queries[2].queue_wait_s,
            fifo_report->queries[3].queue_wait_s);
}

TEST(AdmissionServing, WaitBoundRejectsWhenBacklogOutgrowsThroughput) {
  Workload w = MakeWorkload();
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  ServingOptions options;
  options.admission_control = true;
  options.max_queue_depth = 0;       // no depth bound: wait bound only
  options.max_queue_wait_s = 1e-6;   // nothing with a backlog passes
  options.max_concurrent_runs = 1;
  ServingRuntime serving(&cloud, options);
  for (int q = 0; q < 4; ++q) {
    ASSERT_TRUE(serving.Submit(MakeRequest(w), 0.0).ok());
  }
  auto report = serving.Drain();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  CheckFleetReconciles(*report);
  // Query 0 takes the slot and query 1 parks — both saw an empty queue, so
  // the wait bound cannot trip. Queries 2 and 3 arrive behind a backlog
  // whose predicted wait dwarfs the microscopic bound: rejected.
  EXPECT_EQ(report->fleet.completed, 2);
  EXPECT_EQ(report->fleet.rejected, 2);
  for (int q = 2; q < 4; ++q) {
    EXPECT_EQ(report->queries[q].disposition, QueryDisposition::kRejected);
    EXPECT_NE(report->queries[q].reject_reason.find("wait"),
              std::string::npos);
  }
}

TEST(AdmissionServing, AdmissionOffRemainsUnconditional) {
  // The explicit ablation: pipeline knobs at their defaults accept every
  // query of an arbitrarily deep burst, and the report carries only
  // kCompleted dispositions.
  Workload w = MakeWorkload();
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  ServingRuntime serving(&cloud);
  for (int q = 0; q < 6; ++q) {
    ASSERT_TRUE(serving.Submit(MakeRequest(w), 0.0).ok());
  }
  auto report = serving.Drain();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  CheckFleetReconciles(*report);
  EXPECT_EQ(report->fleet.completed, 6);
  EXPECT_EQ(report->fleet.rejected, 0);
  EXPECT_EQ(report->fleet.shed, 0);
  for (const QueryOutcome& outcome : report->queries) {
    EXPECT_EQ(outcome.disposition, QueryDisposition::kCompleted);
    EXPECT_EQ(outcome.report.outputs[0], w.expected);
  }
}

TEST(AdmissionServing, SheddingInsideOpenBatchShrinksTheFlush) {
  Workload w = MakeWorkload();
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  ServingOptions options;
  options.admission_control = true;
  options.max_queue_depth = 2;
  options.shed_policy = ShedPolicy::kShedLowestPriority;
  options.batch_window_s = 1.0;
  options.max_batch_queries = 8;
  // One slot, occupied by nothing yet — every arrival queues into the
  // coalescing window, so the depth bound bites inside the open batch.
  options.max_concurrent_runs = 1;
  ServingRuntime serving(&cloud, options);
  // Two low-priority queries open a batch and fill the queue; the
  // high-priority arrival sheds one of them mid-window and joins.
  ASSERT_TRUE(serving.Submit(MakeRequest(w, 0.0, /*priority=*/0), 0.0).ok());
  ASSERT_TRUE(serving.Submit(MakeRequest(w, 0.0, /*priority=*/0), 0.01).ok());
  ASSERT_TRUE(serving.Submit(MakeRequest(w, 0.0, /*priority=*/1), 0.02).ok());
  auto report = serving.Drain();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  CheckFleetReconciles(*report);
  EXPECT_EQ(report->fleet.shed, 1);
  EXPECT_EQ(report->fleet.completed, 2);
  // Priority is scheduling metadata, not part of the coalescing family:
  // the high-priority arrival joined the SAME open batch its victim left,
  // so the two survivors shared one tree; the shed query never launched.
  EXPECT_EQ(report->fleet.runs, 1);
  EXPECT_EQ(report->fleet.batch_occupancy_max, 2);
  const QueryOutcome& shed = report->queries[1];
  EXPECT_EQ(shed.disposition, QueryDisposition::kShed);
  EXPECT_EQ(shed.run_id, 0u);
  for (const QueryOutcome& outcome : report->queries) {
    if (outcome.disposition != QueryDisposition::kCompleted) continue;
    EXPECT_EQ(outcome.report.outputs[0], w.expected);
  }
  EXPECT_EQ(sim.live_processes(), 0);
}

TEST(AdmissionServing, LateJoinerWithTightDeadlineTightensTheFlush) {
  // A deadline-free query opens a 30s window; a second query joins
  // mid-window carrying a tight SLO. The batcher must pull the flush
  // forward to the joiner's slack — the pair still coalesces (deadlines
  // are scheduling metadata, not part of the family) and both finish
  // inside the joiner's deadline window.
  Workload w = MakeWorkload();
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  ServingOptions options;
  options.batch_window_s = 30.0;
  options.max_batch_queries = 8;
  ServingRuntime serving(&cloud, options);
  // Warm-up to seed the execution-time EWMA (as a deployed fleet has).
  InferenceRequest warmup = MakeRequest(w);
  warmup.options.cross_query_batching = false;
  ASSERT_TRUE(serving.Submit(warmup, 0.0).ok());
  ASSERT_TRUE(serving.Drain().ok());

  ASSERT_TRUE(serving.Submit(MakeRequest(w), 0.1).ok());
  ASSERT_TRUE(serving.Submit(MakeRequest(w, /*slo_deadline_s=*/8.0), 1.1).ok());
  auto report = serving.Drain();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  CheckFleetReconciles(*report);
  ASSERT_EQ(report->fleet.completed, 3);
  // One coalesced tree for the pair (plus the warm-up's own).
  EXPECT_EQ(report->fleet.runs, 2);
  EXPECT_EQ(report->queries[1].batch_peers, 2);
  EXPECT_EQ(report->queries[1].run_id, report->queries[2].run_id);
  // The opener did NOT wait out its 30s window: the joiner's slack pulled
  // the flush forward, and the joiner met its deadline.
  EXPECT_LT(report->queries[1].queue_wait_s, 9.0);
  EXPECT_TRUE(report->queries[2].deadline_met);
  EXPECT_EQ(report->fleet.deadline_hits, 1);
  EXPECT_EQ(sim.live_processes(), 0);
}

}  // namespace
}  // namespace fsd::core
