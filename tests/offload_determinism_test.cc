// Compute-offload determinism: the acceptance gate for multi-core worker
// kernels. A serving fleet (real sparse kernels, channel codecs, billing)
// must produce BYTE-IDENTICAL outputs, FleetStats and billing ledgers for
// every compute pool size — 0 (inline), 1, 4 and the host's hardware
// concurrency — the pool may only change the wall clock, never an event.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "cloud/cloud.h"
#include "core/serving.h"
#include "model/input_gen.h"
#include "model/reference.h"

namespace fsd::core {
namespace {

struct Workload {
  model::SparseDnn dnn;
  part::ModelPartition partition;
  linalg::ActivationMap input;
  linalg::ActivationMap expected;
};

Workload MakeWorkload(int32_t neurons, int32_t layers, int32_t batch,
                      int32_t workers, uint64_t seed = 7) {
  model::SparseDnnConfig config;
  config.neurons = neurons;
  config.layers = layers;
  config.seed = seed;
  auto dnn = model::GenerateSparseDnn(config);
  EXPECT_TRUE(dnn.ok()) << dnn.status().ToString();

  part::ModelPartitionOptions po;
  auto partition = part::PartitionModel(*dnn, workers, po);
  EXPECT_TRUE(partition.ok()) << partition.status().ToString();

  model::InputConfig input_config;
  input_config.neurons = neurons;
  input_config.batch = batch;
  input_config.seed = seed + 1;
  auto input = model::GenerateInputBatch(input_config);
  EXPECT_TRUE(input.ok()) << input.status().ToString();

  auto expected = model::ReferenceInference(*dnn, *input);
  EXPECT_TRUE(expected.ok()) << expected.status().ToString();
  return Workload{std::move(*dnn), std::move(*partition), std::move(*input),
                  std::move(*expected)};
}

/// Everything a run can observe: outputs, per-query metrics, fleet stats,
/// the full billing ledger and the kernel's event count. Byte-compared.
struct Artifacts {
  std::vector<std::vector<linalg::ActivationMap>> outputs;
  std::vector<std::string> query_metrics;
  std::string fleet_summary;
  std::string ledger;
  uint64_t events = 0;
  uint64_t offload_calls = 0;  // wall-clock side; NOT part of the compare
};

Artifacts RunFleet(const Workload& w, Variant variant, int compute_threads,
                   int32_t quant_bits) {
  constexpr int32_t kWorkers = 4;
  constexpr int kQueries = 2;
  sim::SimTuning tuning;
  tuning.compute_threads = compute_threads;
  sim::Simulation sim(tuning);
  cloud::CloudEnv cloud(&sim);
  ServingRuntime serving(&cloud);

  InferenceRequest request;
  request.dnn = &w.dnn;
  request.partition = &w.partition;
  request.batches = {&w.input};
  request.options.variant = variant;
  request.options.num_workers = kWorkers;
  request.options.quant_bits = quant_bits;
  for (int q = 0; q < kQueries; ++q) {
    auto id = serving.Submit(request, 0.01 * q);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
  }
  auto report = serving.Drain();
  EXPECT_TRUE(report.ok()) << report.status().ToString();

  Artifacts artifacts;
  for (const QueryOutcome& outcome : report->queries) {
    EXPECT_TRUE(outcome.report.status.ok())
        << outcome.report.status.ToString();
    artifacts.outputs.push_back(outcome.report.outputs);
    artifacts.query_metrics.push_back(outcome.report.metrics.Summary());
  }
  artifacts.fleet_summary = report->fleet.Summary();
  artifacts.ledger = cloud.billing().ToString();
  artifacts.events = sim.events_dispatched();
  artifacts.offload_calls = sim.offload_stats().calls;
  return artifacts;
}

std::vector<int> PoolSizes() {
  std::vector<int> pools = {0, 1, 4};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 0 && std::find(pools.begin(), pools.end(), hw) == pools.end()) {
    pools.push_back(hw);
  }
  return pools;
}

class OffloadDeterminism : public ::testing::TestWithParam<Variant> {};

TEST_P(OffloadDeterminism, FleetByteIdenticalAcrossPoolSizes) {
  const Variant variant = GetParam();
  const Workload w = MakeWorkload(256, 8, 16, 4);
  const Artifacts baseline = RunFleet(w, variant, /*compute_threads=*/0,
                                      /*quant_bits=*/0);
  // The offload path is genuinely exercised (kernels + codec passes), and
  // the deterministic metrics surface it.
  EXPECT_GT(baseline.offload_calls, 0u);
  EXPECT_NE(baseline.fleet_summary.find(" offload="), std::string::npos)
      << baseline.fleet_summary;
  // Correct answers, not just consistent ones.
  for (const auto& outputs : baseline.outputs) {
    ASSERT_EQ(outputs.size(), 1u);
    EXPECT_EQ(outputs[0], w.expected);
  }

  for (const int pool : PoolSizes()) {
    if (pool == 0) continue;
    const Artifacts run = RunFleet(w, variant, pool, /*quant_bits=*/0);
    EXPECT_EQ(baseline.outputs, run.outputs) << "pool " << pool;
    EXPECT_EQ(baseline.query_metrics, run.query_metrics) << "pool " << pool;
    EXPECT_EQ(baseline.fleet_summary, run.fleet_summary) << "pool " << pool;
    EXPECT_EQ(baseline.ledger, run.ledger) << "pool " << pool;
    EXPECT_EQ(baseline.events, run.events) << "pool " << pool;
    EXPECT_EQ(baseline.offload_calls, run.offload_calls) << "pool " << pool;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, OffloadDeterminism,
                         ::testing::Values(Variant::kQueue, Variant::kObject,
                                           Variant::kKv, Variant::kDirect),
                         [](const auto& info) {
                           switch (info.param) {
                             case Variant::kQueue: return std::string("Queue");
                             case Variant::kObject: return std::string("Object");
                             case Variant::kKv: return std::string("Kv");
                             case Variant::kDirect: return std::string("Direct");
                             default: return std::string("Other");
                           }
                         });

TEST(OffloadDeterminism, QuantizedWireByteIdenticalAcrossPoolSizes) {
  // Quantized transport adds the scan+pack pass to the offloaded encode
  // closure and a surcharge to the charged window — both must stay
  // byte-identical under the pool.
  const Workload w = MakeWorkload(256, 8, 16, 4);
  const Artifacts baseline =
      RunFleet(w, Variant::kQueue, /*compute_threads=*/0, /*quant_bits=*/8);
  const Artifacts pooled =
      RunFleet(w, Variant::kQueue, /*compute_threads=*/4, /*quant_bits=*/8);
  EXPECT_EQ(baseline.query_metrics, pooled.query_metrics);
  EXPECT_EQ(baseline.fleet_summary, pooled.fleet_summary);
  EXPECT_EQ(baseline.ledger, pooled.ledger);
  EXPECT_EQ(baseline.events, pooled.events);
  EXPECT_EQ(baseline.outputs, pooled.outputs);
}

}  // namespace
}  // namespace fsd::core
