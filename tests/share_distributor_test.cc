// λScale-style share distribution tests: relay fallback must deliver
// multi-chunk shares byte-identically, dead holders must fall out of the
// registry (storage fallback, never a ghost transfer), and the serving
// integration (peer transfer + predictive pre-warm) must leave query
// outputs byte-identical to the storage-only cold path.
#include <gtest/gtest.h>

#include <memory>
#include <string_view>

#include "cloud/cloud.h"
#include "core/serving.h"
#include "core/share_distributor.h"
#include "core/worker.h"
#include "model/input_gen.h"
#include "model/reference.h"

namespace fsd::core {
namespace {

TEST(ShareDistributor, ChunkEncodingIsDeterministic) {
  EXPECT_EQ(ShareDistributor::ChunkCount(0, 128), 1u);
  EXPECT_EQ(ShareDistributor::ChunkCount(128, 128), 1u);
  EXPECT_EQ(ShareDistributor::ChunkCount(129, 128), 2u);
  EXPECT_EQ(ShareDistributor::ChunkCount(300 * 1024, 128 * 1024), 3u);

  const Bytes a = ShareDistributor::EncodeShareChunk("fam", 2, 7, 1, 3, 4096);
  const Bytes b = ShareDistributor::EncodeShareChunk("fam", 2, 7, 1, 3, 4096);
  EXPECT_EQ(a, b);  // replay-stable wire encoding
  EXPECT_GT(a.size(), 4096u);  // header + payload
  // Any field change must change the bytes (receiver-side verification
  // depends on it).
  EXPECT_NE(a, ShareDistributor::EncodeShareChunk("fam", 2, 7, 2, 3, 4096));
  EXPECT_NE(a, ShareDistributor::EncodeShareChunk("fam", 3, 7, 1, 3, 4096));
  EXPECT_NE(a, ShareDistributor::EncodeShareChunk("fam", 2, 8, 1, 3, 4096));
}

// Forced punch failure: the transfer must fall back to the KV relay and
// still deliver every chunk byte-identically (the receiver verifies each
// chunk against EncodeShareChunk; a corrupt delivery would degrade to
// kStorage, not kPeer).
TEST(ShareDistributor, RelayFallbackDeliversMultiChunkShareByteIdentically) {
  sim::Simulation sim;
  cloud::CloudConfig config;
  config.latency.p2p_punch_failure_rate = 1.0;  // every punch fails
  cloud::CloudEnv cloud(&sim, config);

  ShareDistributor distributor(&cloud, {});
  const FsdOptions options;  // defaults: cache on, version 0
  const std::string family = "fam@relay";
  const uint64_t share_bytes = 300 * 1024;  // 3 relay chunks at 128 KiB
  const uint64_t chunks = ShareDistributor::ChunkCount(
      share_bytes, distributor.options().relay_chunk_bytes);
  ASSERT_EQ(chunks, 3u);

  WorkerMetrics loader_metrics, puller_metrics;
  auto loader_source = ShareDistributor::Source::kPeer;
  auto puller_source = ShareDistributor::Source::kStorage;

  cloud::FaasFunctionConfig loader_fn;
  loader_fn.name = "sd-loader";
  loader_fn.memory_mb = 1024;
  loader_fn.handler = [&](cloud::FaasContext* ctx) {
    loader_source = distributor.Acquire(ctx, options, family, 0, share_bytes,
                                        &loader_metrics);
    ASSERT_EQ(loader_source, ShareDistributor::Source::kStorage);
    // Model the storage read taking a while: concurrent requesters must
    // wait it out instead of issuing a second read.
    ASSERT_TRUE(ctx->SleepFor(3.0).ok());
    PartitionCache* cache = InstancePartitionCache(ctx, options);
    ASSERT_NE(cache, nullptr);
    EXPECT_TRUE(cache->Insert(family, 0, options.model_version, share_bytes)
                    .inserted);
    distributor.Publish(ctx, options, family, 0);
    ctx->set_result(Status::OK());
  };
  ASSERT_TRUE(cloud.faas().RegisterFunction(loader_fn).ok());

  cloud::FaasFunctionConfig puller_fn;
  puller_fn.name = "sd-puller";
  puller_fn.memory_mb = 1024;
  puller_fn.handler = [&](cloud::FaasContext* ctx) {
    puller_source = distributor.Acquire(ctx, options, family, 0, share_bytes,
                                        &puller_metrics);
    PartitionCache* cache = InstancePartitionCache(ctx, options);
    ASSERT_NE(cache, nullptr);
    // A peer delivery must have planted the share in this instance's cache.
    EXPECT_TRUE(cache->Contains(family, 0, options.model_version));
    ctx->set_result(Status::OK());
  };
  ASSERT_TRUE(cloud.faas().RegisterFunction(puller_fn).ok());

  ASSERT_TRUE(cloud.faas().InvokeAsync("sd-loader", {}).status.ok());
  // After the loader registered its pending read, before it publishes.
  sim.AddProcess(
      "invoke-puller",
      [&]() { ASSERT_TRUE(cloud.faas().InvokeAsync("sd-puller", {}).status.ok()); },
      /*start=*/1.5);
  sim.Run();

  EXPECT_EQ(loader_source, ShareDistributor::Source::kStorage);
  EXPECT_EQ(puller_source, ShareDistributor::Source::kPeer);
  EXPECT_EQ(puller_metrics.share_loads_peer, 1);
  // Every chunk moved over the relay, none over the punched fabric.
  EXPECT_EQ(puller_metrics.share_relay_chunks, static_cast<int64_t>(chunks));
  EXPECT_GE(puller_metrics.share_relay_requests,
            static_cast<int64_t>(chunks));
  EXPECT_GE(puller_metrics.share_relay_bytes,
            static_cast<int64_t>(share_bytes));
  EXPECT_EQ(puller_metrics.share_peer_chunks, 0);
  EXPECT_EQ(puller_metrics.share_peer_bytes, 0);
  EXPECT_EQ(puller_metrics.share_peer_connects, 0);
  // Both instances now hold the share.
  EXPECT_EQ(distributor.HolderCount(family, 0, options.model_version), 2);
}

// A holder whose instance was reclaimed at keep-alive expiry must be pruned
// on the next lookup; the requester degrades to the storage read it was
// going to do anyway.
TEST(ShareDistributor, DeadHolderIsPrunedAndRequesterFallsBackToStorage) {
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  cloud.faas().set_keep_alive_s(1.0);  // tiny warm window

  ShareDistributor distributor(&cloud, {});
  const FsdOptions options;
  const std::string family = "fam@dead";
  const uint64_t share_bytes = 64 * 1024;

  WorkerMetrics metrics;
  auto late_source = ShareDistributor::Source::kPeer;
  int64_t holders_seen_by_late = -1;

  cloud::FaasFunctionConfig fn;
  fn.name = "sd-holder";
  fn.memory_mb = 1024;
  fn.handler = [&](cloud::FaasContext* ctx) {
    WorkerMetrics scratch;
    const auto source = distributor.Acquire(ctx, options, family, 0,
                                            share_bytes, &scratch);
    if (source == ShareDistributor::Source::kStorage) {
      PartitionCache* cache = InstancePartitionCache(ctx, options);
      ASSERT_NE(cache, nullptr);
      EXPECT_TRUE(cache->Insert(family, 0, options.model_version, share_bytes)
                      .inserted);
      distributor.Publish(ctx, options, family, 0);
    }
    ctx->set_result(Status::OK());
  };
  ASSERT_TRUE(cloud.faas().RegisterFunction(fn).ok());

  cloud::FaasFunctionConfig late_fn;
  late_fn.name = "sd-late";
  late_fn.memory_mb = 1024;
  late_fn.handler = [&](cloud::FaasContext* ctx) {
    // The original holder's instance expired at t=0+keep_alive; its cache
    // died with it, so the registry must prune it here.
    holders_seen_by_late =
        distributor.HolderCount(family, 0, options.model_version);
    late_source = distributor.Acquire(ctx, options, family, 0, share_bytes,
                                      &metrics);
    if (late_source == ShareDistributor::Source::kStorage) {
      distributor.Abandon(family, 0, options.model_version);
    }
    ctx->set_result(Status::OK());
  };
  ASSERT_TRUE(cloud.faas().RegisterFunction(late_fn).ok());

  ASSERT_TRUE(cloud.faas().InvokeAsync("sd-holder", {}).status.ok());
  // Reclaim the holder's instance: an invoke of the SAME function sweeps
  // its expired warm pool (state — and the registered cache — dies).
  sim.AddProcess(
      "reinvoke-holder",
      [&]() { ASSERT_TRUE(cloud.faas().InvokeAsync("sd-holder", {}).status.ok()); },
      /*start=*/30.0);
  sim.Run();
  // The second sd-holder invocation ran cold (its predecessor expired), so
  // it re-read from storage and re-published.
  EXPECT_EQ(distributor.HolderCount(family, 0, options.model_version), 1);

  sim.AddProcess(
      "late-check",
      [&]() { ASSERT_TRUE(cloud.faas().InvokeAsync("sd-late", {}).status.ok()); },
      /*start=*/100.0);  // long past every keep-alive
  sim.Run();

  EXPECT_EQ(holders_seen_by_late, 0);  // pruned, no ghost holders
  EXPECT_EQ(late_source, ShareDistributor::Source::kStorage);
  EXPECT_EQ(metrics.share_loads_peer, 0);
}

// ---- serving integration ----

struct Workload {
  model::SparseDnn dnn;
  part::ModelPartition partition;
  linalg::ActivationMap input;
  linalg::ActivationMap expected;
};

Workload MakeWorkload(int32_t neurons, int32_t layers, int32_t batch,
                      int32_t workers, uint64_t seed = 7) {
  model::SparseDnnConfig config;
  config.neurons = neurons;
  config.layers = layers;
  config.seed = seed;
  auto dnn = model::GenerateSparseDnn(config);
  EXPECT_TRUE(dnn.ok()) << dnn.status().ToString();

  part::ModelPartitionOptions po;
  auto partition = part::PartitionModel(*dnn, workers, po);
  EXPECT_TRUE(partition.ok()) << partition.status().ToString();

  model::InputConfig input_config;
  input_config.neurons = neurons;
  input_config.batch = batch;
  input_config.seed = seed + 1;
  auto input = model::GenerateInputBatch(input_config);
  EXPECT_TRUE(input.ok()) << input.status().ToString();

  auto expected = model::ReferenceInference(*dnn, *input);
  EXPECT_TRUE(expected.ok()) << expected.status().ToString();
  return Workload{std::move(*dnn), std::move(*partition), std::move(*input),
                  std::move(*expected)};
}

InferenceRequest MakeRequest(const Workload& w, int32_t workers) {
  InferenceRequest request;
  request.dnn = &w.dnn;
  request.partition = &w.partition;
  request.batches = {&w.input};
  request.options.variant = Variant::kQueue;
  request.options.num_workers = workers;
  return request;
}

// Feature flag on vs. off over the same burst: outputs must be
// byte-identical (the distributor moves bytes, never values), and the peer
// path must absorb cold loads the storage-only baseline paid for.
TEST(ServingFastScaling, PeerTransferKeepsOutputsIdenticalAndCutsStorageReads) {
  constexpr int32_t kWorkers = 4;
  constexpr int kQueries = 6;
  Workload w = MakeWorkload(256, 8, 16, kWorkers);
  InferenceRequest request = MakeRequest(w, kWorkers);

  auto run = [&](bool peer) {
    sim::Simulation sim;
    cloud::CloudEnv cloud(&sim);
    ServingOptions so;
    so.peer_share_transfer = peer;
    ServingRuntime serving(&cloud, so);
    for (int q = 0; q < kQueries; ++q) {
      EXPECT_TRUE(serving.Submit(request, 0.001 * q).ok());
    }
    auto report = serving.Drain();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return std::move(*report);
  };
  const ServingReport off = run(false);
  const ServingReport on = run(true);

  ASSERT_EQ(off.queries.size(), static_cast<size_t>(kQueries));
  ASSERT_EQ(on.queries.size(), static_cast<size_t>(kQueries));
  for (int q = 0; q < kQueries; ++q) {
    ASSERT_TRUE(on.queries[q].report.status.ok())
        << on.queries[q].report.status.ToString();
    EXPECT_EQ(on.queries[q].report.outputs, off.queries[q].report.outputs)
        << "query " << q;
    EXPECT_EQ(on.queries[q].report.outputs[0], w.expected) << "query " << q;
  }
  EXPECT_EQ(off.fleet.share_loads_peer, 0);
  EXPECT_GT(on.fleet.share_loads_peer, 0);
  EXPECT_LT(on.fleet.share_loads_storage, off.fleet.share_loads_storage);
  // Total cold loads are conserved — the peer path changes WHERE bytes come
  // from, not how many instances needed them.
  EXPECT_EQ(on.fleet.share_loads_storage + on.fleet.share_loads_peer,
            off.fleet.share_loads_storage + off.fleet.share_loads_peer);
}

// Steady arrivals: the rate policy must fire pre-warm invocations, stay
// inside the dollar budget, and never perturb query outputs.
TEST(ServingFastScaling, PredictivePrewarmFiresWithinBudget) {
  constexpr int32_t kWorkers = 4;
  constexpr int kQueries = 8;
  Workload w = MakeWorkload(256, 8, 16, kWorkers);
  InferenceRequest request = MakeRequest(w, kWorkers);

  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  ServingOptions so;
  so.peer_share_transfer = true;
  so.predictive_prewarm = true;
  so.prewarm_budget_dollars = 0.01;
  ServingRuntime serving(&cloud, so);
  for (int q = 0; q < kQueries; ++q) {
    ASSERT_TRUE(serving.Submit(request, 0.4 * q).ok());
  }
  auto report = serving.Drain();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  ASSERT_EQ(report->queries.size(), static_cast<size_t>(kQueries));
  for (int q = 0; q < kQueries; ++q) {
    ASSERT_TRUE(report->queries[q].report.status.ok());
    EXPECT_EQ(report->queries[q].report.outputs[0], w.expected)
        << "query " << q;
  }
  EXPECT_GT(report->fleet.prewarm_invocations, 0);
  EXPECT_GT(report->fleet.prewarm_budget_spent, 0.0);
  EXPECT_LE(report->fleet.prewarm_budget_spent, so.prewarm_budget_dollars);
  EXPECT_EQ(report->fleet.failed, 0);
}

// Fires a fixed pre-warm burst during an early window and nothing after —
// isolates "pre-warmed then evicted" from the rate policy re-firing at the
// late arrival (which would stand capacity back up and mask the eviction).
class EarlyWindowPolicy final : public PreWarmPolicy {
 public:
  std::string_view name() const override { return "early-window"; }
  PrewarmDecision Decide(const PrewarmSnapshot& snapshot) override {
    PrewarmDecision decision;
    if (snapshot.now_s < 1.0 && snapshot.pending_prewarms == 0) {
      decision.instances = snapshot.workers_per_run;
      decision.reason = "test: early burst";
    } else {
      decision.reason = "test: outside window";
    }
    return decision;
  }
};

// Pre-warmed instances reclaimed before the predicted arrival: the late
// query pays its cold start again but must still complete correctly — the
// pre-warm loop can waste dollars, never correctness.
TEST(ServingFastScaling, PrewarmedInstancesEvictedBeforeArrivalStayCorrect) {
  constexpr int32_t kWorkers = 4;
  Workload w = MakeWorkload(256, 8, 16, kWorkers);
  InferenceRequest request = MakeRequest(w, kWorkers);

  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  cloud.faas().set_keep_alive_s(0.2);  // everything expires almost at once
  ServingOptions so;
  so.peer_share_transfer = true;
  so.predictive_prewarm = true;
  so.prewarm_budget_dollars = 0.05;
  so.prewarm_policy = std::make_shared<EarlyWindowPolicy>();
  ServingRuntime serving(&cloud, so);
  // A short trickle seeds the EWMA and triggers pre-warms...
  ASSERT_TRUE(serving.Submit(request, 0.0).ok());
  ASSERT_TRUE(serving.Submit(request, 0.3).ok());
  ASSERT_TRUE(serving.Submit(request, 0.6).ok());
  // ...then a long silence lets every instance (pre-warmed included) die
  // before the next arrival.
  ASSERT_TRUE(serving.Submit(request, 60.0).ok());
  auto report = serving.Drain();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  ASSERT_EQ(report->queries.size(), 4u);
  for (const QueryOutcome& outcome : report->queries) {
    ASSERT_TRUE(outcome.report.status.ok())
        << outcome.report.status.ToString();
    EXPECT_EQ(outcome.report.outputs[0], w.expected);
  }
  EXPECT_GT(report->fleet.prewarm_invocations, 0);
  // The late query found nothing warm: its workers all cold-started and no
  // pre-warmed cache entry survived to serve it.
  const RunMetrics& late = report->queries[3].report.metrics;
  EXPECT_GT(late.cold_starts, 0);
  EXPECT_EQ(late.prewarmed_hits, 0);
  EXPECT_EQ(report->fleet.failed, 0);
}

}  // namespace
}  // namespace fsd::core
