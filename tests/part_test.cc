#include <gtest/gtest.h>

#include <set>

#include "model/sparse_dnn.h"
#include "part/hypergraph.h"
#include "part/model_partition.h"
#include "part/partitioner.h"

namespace fsd::part {
namespace {

Hypergraph TinyHypergraph() {
  // 6 vertices, 3 nets: {0,1,2}, {2,3}, {3,4,5}.
  return Hypergraph::Build(6, {1, 1, 1, 1, 1, 1},
                           {{0, 1, 2}, {2, 3}, {3, 4, 5}}, {1, 1, 1});
}

TEST(Hypergraph, BuildDropsDegenerateNetsAndDedupesPins) {
  Hypergraph hg = Hypergraph::Build(4, {1, 1, 1, 1},
                                    {{0, 0, 1}, {2}, {}, {1, 3}}, {5, 9, 9, 2});
  EXPECT_EQ(hg.num_nets(), 2);  // single-pin and empty nets dropped
  EXPECT_EQ(hg.net_size(0), 2);
  EXPECT_EQ(hg.net_cost(0), 5);
  EXPECT_EQ(hg.net_cost(1), 2);
  EXPECT_EQ(hg.num_pins(), 4);
}

TEST(Hypergraph, ConnectivityMinusOne) {
  Hypergraph hg = TinyHypergraph();
  // All in one part: zero.
  EXPECT_EQ(hg.ConnectivityMinusOne({0, 0, 0, 0, 0, 0}, 1), 0);
  // Split {0,1,2} vs {3,4,5}: net0 uncut, net1 cut (2 parts -> 1),
  // net2 uncut.
  EXPECT_EQ(hg.ConnectivityMinusOne({0, 0, 0, 1, 1, 1}, 2), 1);
  // Fully scattered: net0 spans 3 parts (+2), net1 spans 2 (+1),
  // net2 spans 3 (+2).
  EXPECT_EQ(hg.ConnectivityMinusOne({0, 1, 2, 3, 4, 5}, 6), 5);
}

TEST(Hypergraph, VertexNetIncidence) {
  Hypergraph hg = TinyHypergraph();
  std::vector<int64_t> nets_of_2;
  hg.ForEachNetOf(2, [&](int64_t e) { nets_of_2.push_back(e); });
  EXPECT_EQ(nets_of_2.size(), 2u);  // vertex 2 pins nets 0 and 1
}

class PartitionerSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PartitionerSweep, CoversAllVerticesWithinBalance) {
  auto [neurons, parts] = GetParam();
  model::SparseDnnConfig config;
  config.neurons = neurons;
  config.layers = 4;
  auto dnn = model::GenerateSparseDnn(config);
  ASSERT_TRUE(dnn.ok());
  Hypergraph hg = BuildDnnHypergraph(*dnn, 2);

  PartitionerOptions options;
  auto result = PartitionHypergraph(hg, parts, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->assignment.size(), static_cast<size_t>(neurons));
  std::set<int32_t> used;
  for (int32_t p : result->assignment) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, parts);
    used.insert(p);
  }
  EXPECT_EQ(static_cast<int32_t>(used.size()), parts);  // no empty part
  EXPECT_LE(result->imbalance, options.epsilon + 0.05);
  EXPECT_EQ(result->cut_cost,
            hg.ConnectivityMinusOne(result->assignment, parts));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PartitionerSweep,
                         ::testing::Values(std::make_tuple(256, 2),
                                           std::make_tuple(256, 7),
                                           std::make_tuple(512, 8),
                                           std::make_tuple(1024, 20),
                                           std::make_tuple(512, 3)));

TEST(Partitioner, HgpBeatsRandomOnStructuredModels) {
  model::SparseDnnConfig config;
  config.neurons = 1024;
  config.layers = 4;
  auto dnn = model::GenerateSparseDnn(config);
  ASSERT_TRUE(dnn.ok());
  Hypergraph hg = BuildDnnHypergraph(*dnn, 2);
  auto hgp = PartitionHypergraph(hg, 8, PartitionerOptions{});
  ASSERT_TRUE(hgp.ok());
  PartitionResult rp = PartitionRandom(hg, 8, 1);
  PartitionResult block = PartitionBlock(hg, 8);
  // HGP-DNN must clearly beat random placement and never lose to naive
  // contiguity. (At this small scale the local window spans a sizeable
  // fraction of each block, so the gap is structurally modest; the ~1 OOM
  // separation of paper Table III emerges at N=16384 — see
  // bench_table3_partitioning.)
  EXPECT_LT(hgp->cut_cost, rp.cut_cost * 0.8);
  EXPECT_LE(hgp->cut_cost, block.cut_cost);
}

TEST(Partitioner, SinglePartIsTrivial) {
  Hypergraph hg = TinyHypergraph();
  auto result = PartitionHypergraph(hg, 1, PartitionerOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cut_cost, 0);
}

TEST(Partitioner, RejectsBadArguments) {
  Hypergraph hg = TinyHypergraph();
  EXPECT_FALSE(PartitionHypergraph(hg, 0, PartitionerOptions{}).ok());
  EXPECT_FALSE(PartitionHypergraph(hg, 7, PartitionerOptions{}).ok());
}

TEST(Partitioner, DeterministicForSeed) {
  model::SparseDnnConfig config;
  config.neurons = 512;
  config.layers = 3;
  auto dnn = model::GenerateSparseDnn(config);
  Hypergraph hg = BuildDnnHypergraph(*dnn, 2);
  PartitionerOptions options;
  auto a = PartitionHypergraph(hg, 6, options);
  auto b = PartitionHypergraph(hg, 6, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
}

TEST(PartitionSchemes, Names) {
  EXPECT_EQ(PartitionSchemeName(PartitionScheme::kHypergraph), "HGP-DNN");
  EXPECT_EQ(PartitionSchemeName(PartitionScheme::kRandom), "RP");
  EXPECT_EQ(PartitionSchemeName(PartitionScheme::kBlock), "BLOCK");
}

// ---------------------------------------------------------------------------
// Model partition (send/recv map) invariants
// ---------------------------------------------------------------------------

class ModelPartitionInvariants
    : public ::testing::TestWithParam<std::tuple<PartitionScheme, int>> {};

TEST_P(ModelPartitionInvariants, MapsAreConsistent) {
  auto [scheme, parts] = GetParam();
  model::SparseDnnConfig config;
  config.neurons = 512;
  config.layers = 5;
  auto dnn = model::GenerateSparseDnn(config);
  ASSERT_TRUE(dnn.ok());
  ModelPartitionOptions options;
  options.scheme = scheme;
  auto partition = PartitionModel(*dnn, parts, options);
  ASSERT_TRUE(partition.ok());

  // Ownership covers every row exactly once.
  std::vector<int32_t> seen(512, 0);
  for (int32_t m = 0; m < parts; ++m) {
    for (int32_t row : partition->owned_rows[m]) {
      EXPECT_EQ(partition->assignment[row], m);
      ++seen[row];
    }
  }
  for (int32_t count : seen) EXPECT_EQ(count, 1);

  int64_t transfers = 0;
  for (int32_t k = 0; k < 5; ++k) {
    const LayerComm& comm = partition->layers[k];
    ASSERT_EQ(comm.send.size(), static_cast<size_t>(parts));
    ASSERT_EQ(comm.recv.size(), static_cast<size_t>(parts));
    // (1) send/recv are exact mirrors.
    for (int32_t m = 0; m < parts; ++m) {
      for (const SendEntry& entry : comm.send[m]) {
        transfers += static_cast<int64_t>(entry.rows.size());
        EXPECT_NE(entry.peer, m);  // never send to self
        bool found = false;
        for (const SendEntry& recv : comm.recv[entry.peer]) {
          if (recv.peer == m) {
            EXPECT_EQ(recv.rows, entry.rows);
            found = true;
          }
        }
        EXPECT_TRUE(found);
        // (2) the sender owns every row it ships.
        for (int32_t row : entry.rows) {
          EXPECT_EQ(partition->assignment[row], m);
        }
      }
    }
    // (3) completeness: every cross-part weight dependency is covered.
    const linalg::CsrMatrix& w = dnn->weights[k];
    for (int32_t i = 0; i < w.rows(); ++i) {
      const int32_t consumer = partition->assignment[i];
      w.ForEachInRow(i, [&](int32_t j, float) {
        const int32_t owner = partition->assignment[j];
        if (owner == consumer) return;
        bool covered = false;
        for (const SendEntry& entry : comm.recv[consumer]) {
          if (entry.peer == owner &&
              std::binary_search(entry.rows.begin(), entry.rows.end(), j)) {
            covered = true;
          }
        }
        EXPECT_TRUE(covered) << "layer " << k << " row " << j;
      });
    }
  }
  EXPECT_EQ(partition->total_row_transfers, transfers);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelPartitionInvariants,
    ::testing::Combine(::testing::Values(PartitionScheme::kHypergraph,
                                         PartitionScheme::kRandom,
                                         PartitionScheme::kBlock),
                       ::testing::Values(2, 5, 8)));

TEST(ModelPartition, SingleWorkerHasNoComm) {
  model::SparseDnnConfig config;
  config.neurons = 128;
  config.layers = 3;
  auto dnn = model::GenerateSparseDnn(config);
  auto partition = PartitionModel(*dnn, 1, ModelPartitionOptions{});
  ASSERT_TRUE(partition.ok());
  EXPECT_EQ(partition->total_row_transfers, 0);
  EXPECT_EQ(partition->owned_rows[0].size(), 128u);
  for (const LayerComm& comm : partition->layers) {
    EXPECT_TRUE(comm.send[0].empty());
    EXPECT_TRUE(comm.recv[0].empty());
  }
}

TEST(ModelPartition, WeightShareBytesSumsToModel) {
  model::SparseDnnConfig config;
  config.neurons = 256;
  config.layers = 4;
  auto dnn = model::GenerateSparseDnn(config);
  auto partition = PartitionModel(*dnn, 4, ModelPartitionOptions{});
  ASSERT_TRUE(partition.ok());
  uint64_t total = 0;
  for (int32_t m = 0; m < 4; ++m) {
    total += partition->WeightShareBytes(*dnn, m);
  }
  // Nonzero payload portion must sum exactly; per-row metadata differs from
  // the monolithic layout only by the row-pointer representation.
  EXPECT_EQ(total, static_cast<uint64_t>(dnn->TotalNnz()) * 8 +
                       4ull * 256 * 8);
}

TEST(ModelPartition, RejectsBadArguments) {
  model::SparseDnnConfig config;
  config.neurons = 64;
  config.layers = 2;
  auto dnn = model::GenerateSparseDnn(config);
  EXPECT_FALSE(PartitionModel(*dnn, 0, ModelPartitionOptions{}).ok());
  EXPECT_FALSE(PartitionModel(*dnn, 65, ModelPartitionOptions{}).ok());
}

}  // namespace
}  // namespace fsd::part
