// End-to-end distributed inference tests: every FSD-Inference variant must
// produce exactly the serial reference's output for every (N, P) tested.
#include <gtest/gtest.h>

#include "cloud/cloud.h"
#include "core/runtime.h"
#include "model/input_gen.h"
#include "model/reference.h"

namespace fsd::core {
namespace {

struct Workload {
  model::SparseDnn dnn;
  linalg::ActivationMap input;
  linalg::ActivationMap expected;
};

Workload MakeWorkload(int32_t neurons, int32_t layers, int32_t batch,
                      uint64_t seed = 7) {
  model::SparseDnnConfig config;
  config.neurons = neurons;
  config.layers = layers;
  config.seed = seed;
  auto dnn = model::GenerateSparseDnn(config);
  EXPECT_TRUE(dnn.ok()) << dnn.status().ToString();

  model::InputConfig input_config;
  input_config.neurons = neurons;
  input_config.batch = batch;
  input_config.seed = seed + 1;
  auto input = model::GenerateInputBatch(input_config);
  EXPECT_TRUE(input.ok()) << input.status().ToString();

  auto expected = model::ReferenceInference(*dnn, *input);
  EXPECT_TRUE(expected.ok()) << expected.status().ToString();
  return Workload{std::move(*dnn), std::move(*input), std::move(*expected)};
}

part::ModelPartition MakePartition(const model::SparseDnn& dnn, int32_t parts,
                                   part::PartitionScheme scheme =
                                       part::PartitionScheme::kHypergraph) {
  part::ModelPartitionOptions options;
  options.scheme = scheme;
  auto partition = part::PartitionModel(dnn, parts, options);
  EXPECT_TRUE(partition.ok()) << partition.status().ToString();
  return std::move(*partition);
}

void ExpectSameActivations(const linalg::ActivationMap& expected,
                           const linalg::ActivationMap& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (const auto& [row, vec] : expected) {
    auto it = actual.find(row);
    ASSERT_NE(it, actual.end()) << "missing row " << row;
    ASSERT_EQ(vec.idx, it->second.idx) << "row " << row;
    for (size_t j = 0; j < vec.val.size(); ++j) {
      EXPECT_FLOAT_EQ(vec.val[j], it->second.val[j]) << "row " << row;
    }
  }
}

InferenceReport RunVariant(const Workload& w,
                           const part::ModelPartition& partition,
                           Variant variant, int32_t workers) {
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  InferenceRequest request;
  request.dnn = &w.dnn;
  request.partition = &partition;
  request.batches = {&w.input};
  request.options.variant = variant;
  request.options.num_workers = workers;
  auto report = RunInference(&cloud, request);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->status.ok()) << report->status.ToString();
  return std::move(*report);
}

TEST(EndToEnd, SerialMatchesReference) {
  Workload w = MakeWorkload(256, 12, 16);
  part::ModelPartition partition = MakePartition(w.dnn, 1);
  InferenceReport report = RunVariant(w, partition, Variant::kSerial, 1);
  ASSERT_EQ(report.outputs.size(), 1u);
  ExpectSameActivations(w.expected, report.outputs[0]);
  EXPECT_GT(report.latency_s, 0.0);
  EXPECT_GT(report.billing.faas_cost, 0.0);
  // No IPC happens; the only storage traffic is the one-off model read.
  EXPECT_EQ(report.metrics.totals.publishes, 0);
  EXPECT_EQ(report.metrics.totals.puts_dat, 0);
  EXPECT_EQ(report.metrics.totals.polls, 0);
  EXPECT_LT(report.billing.comm_cost, 1e-4);
}

TEST(EndToEnd, QueueMatchesReference) {
  Workload w = MakeWorkload(256, 12, 16);
  part::ModelPartition partition = MakePartition(w.dnn, 4);
  InferenceReport report = RunVariant(w, partition, Variant::kQueue, 4);
  ASSERT_EQ(report.outputs.size(), 1u);
  ExpectSameActivations(w.expected, report.outputs[0]);
  EXPECT_GT(report.metrics.totals.publishes, 0);
  EXPECT_GT(report.metrics.totals.polls, 0);
  EXPECT_GT(report.billing.comm_cost, 0.0);
}

TEST(EndToEnd, ObjectMatchesReference) {
  Workload w = MakeWorkload(256, 12, 16);
  part::ModelPartition partition = MakePartition(w.dnn, 4);
  InferenceReport report = RunVariant(w, partition, Variant::kObject, 4);
  ASSERT_EQ(report.outputs.size(), 1u);
  ExpectSameActivations(w.expected, report.outputs[0]);
  EXPECT_GT(report.metrics.totals.lists, 0);
  EXPECT_GT(report.metrics.totals.puts_dat, 0);
  EXPECT_GT(report.billing.comm_cost, 0.0);
}

TEST(EndToEnd, KvMatchesReference) {
  Workload w = MakeWorkload(256, 12, 16);
  part::ModelPartition partition = MakePartition(w.dnn, 4);
  InferenceReport report = RunVariant(w, partition, Variant::kKv, 4);
  ASSERT_EQ(report.outputs.size(), 1u);
  ExpectSameActivations(w.expected, report.outputs[0]);
  EXPECT_GT(report.metrics.totals.kv_pushes, 0);
  EXPECT_GT(report.metrics.totals.kv_pops, 0);
  // No queue/object traffic leaks onto the KV path.
  EXPECT_EQ(report.metrics.totals.publishes, 0);
  EXPECT_EQ(report.metrics.totals.puts_dat, 0);
  EXPECT_GT(report.billing.comm_cost, 0.0);
  // Teardown billed the run's namespace node time.
  EXPECT_GT(report.billing.quantity(cloud::BillingDimension::kKvNodeSecond),
            0.0);
}

TEST(EndToEnd, DirectMatchesReference) {
  Workload w = MakeWorkload(256, 12, 16);
  part::ModelPartition partition = MakePartition(w.dnn, 4);
  InferenceReport report = RunVariant(w, partition, Variant::kDirect, 4);
  ASSERT_EQ(report.outputs.size(), 1u);
  ExpectSameActivations(w.expected, report.outputs[0]);
  // Most traffic rides punched links; the deterministic punch-failure
  // fraction relays through the KV namespace.
  EXPECT_GT(report.metrics.totals.direct_connects, 0);
  EXPECT_GT(report.metrics.totals.direct_msgs, 0);
  EXPECT_GT(report.metrics.totals.direct_pops, 0);
  // No queue/object traffic leaks onto the direct path.
  EXPECT_EQ(report.metrics.totals.publishes, 0);
  EXPECT_EQ(report.metrics.totals.puts_dat, 0);
  // Ledger saw the p2p dimensions.
  EXPECT_GT(report.billing.quantity(cloud::BillingDimension::kP2pConnection),
            0.0);
  EXPECT_GT(report.billing.quantity(cloud::BillingDimension::kP2pByte), 0.0);
  EXPECT_GT(report.billing.comm_cost, 0.0);
}

// ---------------------------------------------------------------------------
// Parameterized correctness sweep: (variant, P, partition scheme).
// ---------------------------------------------------------------------------

class DistributedCorrectness
    : public ::testing::TestWithParam<
          std::tuple<Variant, int, part::PartitionScheme>> {};

TEST_P(DistributedCorrectness, MatchesSerialReference) {
  auto [variant, workers, scheme] = GetParam();
  Workload w = MakeWorkload(384, 10, 12, /*seed=*/21);
  part::ModelPartition partition = MakePartition(w.dnn, workers, scheme);
  InferenceReport report = RunVariant(w, partition, variant, workers);
  ASSERT_EQ(report.outputs.size(), 1u);
  ExpectSameActivations(w.expected, report.outputs[0]);
  EXPECT_EQ(report.total_samples, 12);
  EXPECT_GT(report.per_sample_ms, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistributedCorrectness,
    ::testing::Combine(
        ::testing::Values(Variant::kQueue, Variant::kObject, Variant::kKv,
                          Variant::kDirect),
        ::testing::Values(2, 3, 8, 13),
        ::testing::Values(part::PartitionScheme::kHypergraph,
                          part::PartitionScheme::kRandom)));

TEST(EndToEnd, TopologiesProduceByteIdenticalOutputsOnEveryBackend) {
  // The collective topology is pure routing: on every backend the tree and
  // ring runs must emit outputs bit-equal (not merely float-close) to the
  // through-root run's, which itself matches the serial reference.
  Workload w = MakeWorkload(256, 6, 8);
  part::ModelPartition partition = MakePartition(w.dnn, 5);
  for (Variant variant : {Variant::kQueue, Variant::kObject, Variant::kKv,
                          Variant::kDirect}) {
    std::vector<linalg::ActivationMap> outputs;
    for (CollectiveTopology topology :
         {CollectiveTopology::kThroughRoot, CollectiveTopology::kBinomialTree,
          CollectiveTopology::kRing}) {
      sim::Simulation sim;
      cloud::CloudEnv cloud(&sim);
      InferenceRequest request;
      request.dnn = &w.dnn;
      request.partition = &partition;
      request.batches = {&w.input};
      request.options.variant = variant;
      request.options.num_workers = 5;
      request.options.collective_topology = topology;
      auto report = RunInference(&cloud, request);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      ASSERT_TRUE(report->status.ok())
          << VariantName(variant) << "/" << CollectiveTopologyName(topology)
          << ": " << report->status.ToString();
      ASSERT_EQ(report->outputs.size(), 1u);
      outputs.push_back(std::move(report->outputs[0]));
    }
    ExpectSameActivations(w.expected, outputs[0]);
    EXPECT_EQ(outputs[1], outputs[0]) << VariantName(variant);
    EXPECT_EQ(outputs[2], outputs[0]) << VariantName(variant);
  }
}

TEST(EndToEnd, MultiBatchReusesWorkerTree) {
  Workload w = MakeWorkload(256, 8, 8);
  model::InputConfig second_config;
  second_config.neurons = 256;
  second_config.batch = 8;
  second_config.seed = 99;
  auto second = model::GenerateInputBatch(second_config);
  ASSERT_TRUE(second.ok());
  auto second_expected = model::ReferenceInference(w.dnn, *second);
  ASSERT_TRUE(second_expected.ok());

  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  part::ModelPartition partition = MakePartition(w.dnn, 4);
  InferenceRequest request;
  request.dnn = &w.dnn;
  request.partition = &partition;
  request.batches = {&w.input, &*second};
  request.options.variant = Variant::kQueue;
  request.options.num_workers = 4;
  auto report = RunInference(&cloud, request);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->status.ok()) << report->status.ToString();
  ASSERT_EQ(report->outputs.size(), 2u);
  ExpectSameActivations(w.expected, report->outputs[0]);
  ExpectSameActivations(*second_expected, report->outputs[1]);
  EXPECT_EQ(report->total_samples, 16);
}

TEST(EndToEnd, LaunchStrategiesAllComplete) {
  Workload w = MakeWorkload(256, 6, 8);
  part::ModelPartition partition = MakePartition(w.dnn, 8);
  for (LaunchStrategy strategy :
       {LaunchStrategy::kHierarchical, LaunchStrategy::kTwoLevel,
        LaunchStrategy::kCentralized}) {
    sim::Simulation sim;
    cloud::CloudEnv cloud(&sim);
    InferenceRequest request;
    request.dnn = &w.dnn;
    request.partition = &partition;
    request.batches = {&w.input};
    request.options.variant = Variant::kQueue;
    request.options.num_workers = 8;
    request.options.launch = strategy;
    auto report = RunInference(&cloud, request);
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(report->status.ok()) << LaunchStrategyName(strategy);
    ExpectSameActivations(w.expected, report->outputs[0]);
    EXPECT_GT(report->launch_complete_s, 0.0);
  }
}

TEST(EndToEnd, HierarchicalLaunchBeatsCentralizedAtScale) {
  // At the paper's P=62 the centralized single-loop launcher pays 62
  // sequential invoke round trips, while the tree amortizes them across
  // internal nodes (each level costs one cold start + b invokes). At small
  // P the centralized loop can still win — the crossover is charted by
  // bench_ablation_launch.
  Workload w = MakeWorkload(512, 2, 4);
  part::ModelPartition partition = MakePartition(w.dnn, 62);
  auto launch_time = [&](LaunchStrategy strategy) {
    sim::Simulation sim;
    cloud::CloudEnv cloud(&sim);
    InferenceRequest request;
    request.dnn = &w.dnn;
    request.partition = &partition;
    request.batches = {&w.input};
    request.options.variant = Variant::kQueue;
    request.options.num_workers = 62;
    request.options.branching = 8;
    request.options.launch = strategy;
    auto report = RunInference(&cloud, request);
    EXPECT_TRUE(report.ok() && report->status.ok());
    return report->launch_complete_s;
  };
  EXPECT_LT(launch_time(LaunchStrategy::kHierarchical),
            launch_time(LaunchStrategy::kCentralized));
}

TEST(EndToEnd, WorkerTimeoutSurfacesDeadlineExceeded) {
  Workload w = MakeWorkload(256, 12, 16);
  part::ModelPartition partition = MakePartition(w.dnn, 4);
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  InferenceRequest request;
  request.dnn = &w.dnn;
  request.partition = &partition;
  request.batches = {&w.input};
  request.options.variant = Variant::kQueue;
  request.options.num_workers = 4;
  request.options.worker_timeout_s = 0.5;  // far too tight
  auto report = RunInference(&cloud, request);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->status.ok());
}

TEST(EndToEnd, CostModelPredictionMatchesLedger) {
  // The §VI-F validation, in miniature: predicted cost computed from run
  // metrics must match the billing ledger's actuals for both channels.
  Workload w = MakeWorkload(384, 10, 16);
  part::ModelPartition partition = MakePartition(w.dnn, 5);
  for (Variant variant : {Variant::kQueue, Variant::kObject, Variant::kKv,
                          Variant::kDirect}) {
    Workload local = MakeWorkload(384, 10, 16);
    InferenceReport report = RunVariant(local, partition, variant, 5);
    // Communication: the prediction counts IPC plus the cache-aware
    // model-read GET term (the share GETs each worker actually issued);
    // the ledger delta additionally contains (for KV, and for direct's
    // relay namespace) the node time billed at teardown, so compare with
    // that removed. The direct channel's billed-byte counters are exact by
    // construction, so hold it to the 0.1% acceptance bar.
    const double node_cost =
        report.billing.quantity(cloud::BillingDimension::kKvNodeSecond) *
        cloud::PricingConfig{}.kv_node_hourly / 3600.0;
    const double ledger_ipc = report.billing.comm_cost - node_cost;
    const double comm_tolerance =
        variant == Variant::kDirect
            ? 0.001 * std::max(1e-9, ledger_ipc)
            : 0.02 * std::max(1e-9, ledger_ipc) + 1e-7;
    EXPECT_NEAR(report.predicted.communication, ledger_ipc, comm_tolerance)
        << VariantName(variant);
    // The model-read GETs in the metrics reconcile exactly with the
    // ledger: object GETs = channel GETs + share GETs.
    EXPECT_DOUBLE_EQ(
        report.billing.quantity(cloud::BillingDimension::kObjectGet),
        static_cast<double>(report.metrics.totals.gets +
                            report.metrics.model_get_parts))
        << VariantName(variant);
    // Compute: same Tbar-based formula on both sides.
    EXPECT_NEAR(report.predicted.compute, report.billing.faas_cost,
                0.25 * report.billing.faas_cost)
        << VariantName(variant);
  }
}

TEST(EndToEnd, QueueChannelCheaperThanObjectAtThisScale) {
  // §VI-D: at small data volumes with nontrivial parallelism, the queue
  // channel's communication bill undercuts object storage.
  Workload w = MakeWorkload(384, 10, 16);
  part::ModelPartition partition = MakePartition(w.dnn, 8);
  InferenceReport queue = RunVariant(w, partition, Variant::kQueue, 8);
  InferenceReport object = RunVariant(w, partition, Variant::kObject, 8);
  EXPECT_LT(queue.predicted.communication, object.predicted.communication);
}

TEST(EndToEnd, RunValidationRejectsBadRequests) {
  Workload w = MakeWorkload(256, 6, 8);
  part::ModelPartition partition = MakePartition(w.dnn, 4);
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  InferenceRequest request;  // missing everything
  EXPECT_FALSE(RunInference(&cloud, request).ok());

  request.dnn = &w.dnn;
  request.partition = &partition;
  request.batches = {&w.input};
  request.options.num_workers = 8;  // mismatched with partition (4)
  request.options.variant = Variant::kQueue;
  auto mismatch = RunInference(&cloud, request);
  EXPECT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kFailedPrecondition);

  request.options.num_workers = 4;
  request.options.variant = Variant::kSerial;  // serial requires P == 1
  EXPECT_FALSE(RunInference(&cloud, request).ok());
}

TEST(EndToEnd, MetricsAccountingIsConsistent) {
  Workload w = MakeWorkload(384, 8, 16);
  part::ModelPartition partition = MakePartition(w.dnn, 6);
  InferenceReport report = RunVariant(w, partition, Variant::kQueue, 6);
  const LayerMetrics& t = report.metrics.totals;
  // Every chunk sent must be consumed exactly once: any extra receptions
  // (visibility-timeout redeliveries) are flagged redundant.
  EXPECT_EQ(t.send_chunks, t.msgs_received - t.redundant_skipped);
  EXPECT_EQ(t.send_wire_bytes, t.recv_wire_bytes);
  // Workers: P entries with sane timings.
  ASSERT_EQ(report.metrics.workers.size(), 6u);
  for (const WorkerMetrics& wm : report.metrics.workers) {
    EXPECT_GT(wm.duration_s(), 0.0);
    EXPECT_GE(wm.model_load_s, 0.0);
  }
  EXPECT_GE(report.metrics.max_worker_s, report.metrics.mean_worker_s);
  // Compute covered every owned row's work: MACs match the reference total.
  model::ReferenceStats stats;
  auto ref = model::ReferenceInference(w.dnn, w.input, &stats);
  ASSERT_TRUE(ref.ok());
  EXPECT_NEAR(t.compute_macs, stats.total_macs, stats.total_macs * 1e-9);
}

}  // namespace
}  // namespace fsd::core
