#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/serialization.h"

namespace fsd::core {
namespace {

linalg::ActivationMap MakeRows(int32_t rows, int32_t dim, double density,
                               uint64_t seed) {
  Rng rng(seed);
  linalg::ActivationMap out;
  for (int32_t r = 0; r < rows; ++r) {
    linalg::SparseVector vec;
    vec.dim = dim;
    for (int32_t s = 0; s < dim; ++s) {
      if (rng.NextBool(density)) {
        vec.idx.push_back(s);
        vec.val.push_back(static_cast<float>(rng.NextUniform(0.01, 32.0)));
      }
    }
    if (!vec.empty()) out.emplace(r * 3, std::move(vec));  // sparse ids
  }
  return out;
}

std::vector<int32_t> AllIds(const linalg::ActivationMap& rows) {
  std::vector<int32_t> ids;
  for (const auto& [id, vec] : rows) ids.push_back(id);
  return ids;
}

class SerializationRoundtrip
    : public ::testing::TestWithParam<std::tuple<bool, int, double>> {};

TEST_P(SerializationRoundtrip, EncodeDecodeIdentity) {
  auto [compress, rows, density] = GetParam();
  const linalg::ActivationMap original = MakeRows(rows, 64, density, 42);
  EncodeResult encoded = EncodeRows(original, AllIds(original),
                                    /*max_chunk_bytes=*/0, compress, {});
  ASSERT_EQ(encoded.chunks.size(), 1u);
  linalg::ActivationMap decoded;
  ASSERT_TRUE(
      DecodeRows(encoded.chunks[0].wire, compress, &decoded).ok());
  ASSERT_EQ(decoded.size(), original.size());
  for (const auto& [id, vec] : original) {
    EXPECT_EQ(decoded.at(id), vec) << "row " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SerializationRoundtrip,
    ::testing::Combine(::testing::Bool(), ::testing::Values(1, 16, 200),
                       ::testing::Values(0.05, 0.5, 1.0)));

TEST(Serialization, ChunkingRespectsCap) {
  const linalg::ActivationMap rows = MakeRows(400, 256, 0.8, 7);
  const uint64_t cap = 4096;
  EncodeResult encoded = EncodeRows(rows, AllIds(rows), cap,
                                    /*compress=*/false, {});
  EXPECT_GT(encoded.chunks.size(), 1u);
  linalg::ActivationMap decoded;
  for (const RowChunk& chunk : encoded.chunks) {
    // Raw payload honors the NNZ-heuristic cap (estimate-based, so allow
    // one row of slack; single oversized rows may exceed alone).
    if (chunk.num_rows > 1) {
      EXPECT_LE(chunk.raw_bytes, cap + 2048);
    }
    ASSERT_TRUE(DecodeRows(chunk.wire, false, &decoded).ok());
  }
  EXPECT_EQ(decoded.size(), rows.size());
}

TEST(Serialization, SkipsInactiveAndMissingRows) {
  linalg::ActivationMap rows = MakeRows(10, 16, 1.0, 3);
  std::vector<int32_t> ids = AllIds(rows);
  ids.push_back(9999);  // never present
  EncodeResult encoded = EncodeRows(rows, ids, 0, false, {});
  EXPECT_EQ(encoded.active_rows, static_cast<int32_t>(rows.size()));
  linalg::ActivationMap decoded;
  ASSERT_TRUE(DecodeRows(encoded.chunks[0].wire, false, &decoded).ok());
  EXPECT_FALSE(decoded.contains(9999));
}

TEST(Serialization, EmptySendProducesExplicitMarkerChunk) {
  linalg::ActivationMap empty;
  EncodeResult encoded = EncodeRows(empty, {1, 2, 3}, 1024, true, {});
  ASSERT_EQ(encoded.chunks.size(), 1u);  // receiver needs a signal
  EXPECT_EQ(encoded.active_rows, 0);
  linalg::ActivationMap decoded;
  ASSERT_TRUE(DecodeRows(encoded.chunks[0].wire, true, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(Serialization, CompressionShrinksRepetitiveRows) {
  // Saturated activations (clamped at 32) compress well.
  linalg::ActivationMap rows;
  for (int32_t r = 0; r < 64; ++r) {
    linalg::SparseVector vec;
    vec.dim = 512;
    for (int32_t s = 0; s < 512; ++s) {
      vec.idx.push_back(s);
      vec.val.push_back(32.0f);
    }
    rows.emplace(r, std::move(vec));
  }
  EncodeResult plain = EncodeRows(rows, AllIds(rows), 0, false, {});
  EncodeResult packed = EncodeRows(rows, AllIds(rows), 0, true, {});
  EXPECT_LT(packed.chunks[0].wire.size(), plain.chunks[0].wire.size() / 3);
}

TEST(Serialization, DecodeRejectsCorruption) {
  linalg::ActivationMap rows = MakeRows(20, 32, 0.7, 9);
  EncodeResult encoded = EncodeRows(rows, AllIds(rows), 0, true, {});
  Bytes wire = encoded.chunks[0].wire;
  wire[wire.size() / 2] ^= 0xFF;
  linalg::ActivationMap decoded;
  EXPECT_FALSE(DecodeRows(wire, true, &decoded).ok());
  EXPECT_FALSE(DecodeRows(Bytes{}, true, &decoded).ok());
  EXPECT_FALSE(DecodeRows(Bytes{9, 9, 9}, true, &decoded).ok());
}

TEST(Serialization, EstimateRowBytesMonotonic) {
  EXPECT_LT(EstimateRowBytes(1), EstimateRowBytes(100));
  EXPECT_GE(EstimateRowBytes(0), 1u);
}

}  // namespace
}  // namespace fsd::core
