#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "codec/quant.h"
#include "common/rng.h"
#include "core/serialization.h"

namespace fsd::core {
namespace {

linalg::ActivationMap MakeRows(int32_t rows, int32_t dim, double density,
                               uint64_t seed) {
  Rng rng(seed);
  linalg::ActivationMap out;
  for (int32_t r = 0; r < rows; ++r) {
    linalg::SparseVector vec;
    vec.dim = dim;
    for (int32_t s = 0; s < dim; ++s) {
      if (rng.NextBool(density)) {
        vec.idx.push_back(s);
        vec.val.push_back(static_cast<float>(rng.NextUniform(0.01, 32.0)));
      }
    }
    if (!vec.empty()) out.emplace(r * 3, std::move(vec));  // sparse ids
  }
  return out;
}

std::vector<int32_t> AllIds(const linalg::ActivationMap& rows) {
  std::vector<int32_t> ids;
  for (const auto& [id, vec] : rows) ids.push_back(id);
  return ids;
}

class SerializationRoundtrip
    : public ::testing::TestWithParam<std::tuple<bool, int, double>> {};

TEST_P(SerializationRoundtrip, EncodeDecodeIdentity) {
  auto [compress, rows, density] = GetParam();
  const linalg::ActivationMap original = MakeRows(rows, 64, density, 42);
  EncodeResult encoded = EncodeRows(original, AllIds(original),
                                    /*max_chunk_bytes=*/0,
                                    LosslessCodec(compress));
  ASSERT_EQ(encoded.chunks.size(), 1u);
  linalg::ActivationMap decoded;
  ASSERT_TRUE(DecodeRows(encoded.chunks[0].wire, &decoded).ok());
  ASSERT_EQ(decoded.size(), original.size());
  for (const auto& [id, vec] : original) {
    EXPECT_EQ(decoded.at(id), vec) << "row " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SerializationRoundtrip,
    ::testing::Combine(::testing::Bool(), ::testing::Values(1, 16, 200),
                       ::testing::Values(0.05, 0.5, 1.0)));

TEST(Serialization, ChunkingRespectsCap) {
  const linalg::ActivationMap rows = MakeRows(400, 256, 0.8, 7);
  const uint64_t cap = 4096;
  EncodeResult encoded = EncodeRows(rows, AllIds(rows), cap, WireCodec{});
  EXPECT_GT(encoded.chunks.size(), 1u);
  linalg::ActivationMap decoded;
  for (const RowChunk& chunk : encoded.chunks) {
    // Raw payload honors the NNZ-heuristic cap (estimate-based, so allow
    // one row of slack; single oversized rows may exceed alone).
    if (chunk.num_rows > 1) {
      EXPECT_LE(chunk.raw_bytes, cap + 2048);
    }
    ASSERT_TRUE(DecodeRows(chunk.wire, &decoded).ok());
  }
  EXPECT_EQ(decoded.size(), rows.size());
}

TEST(Serialization, SkipsInactiveAndMissingRows) {
  linalg::ActivationMap rows = MakeRows(10, 16, 1.0, 3);
  std::vector<int32_t> ids = AllIds(rows);
  ids.push_back(9999);  // never present
  EncodeResult encoded = EncodeRows(rows, ids, 0, WireCodec{});
  EXPECT_EQ(encoded.active_rows, static_cast<int32_t>(rows.size()));
  linalg::ActivationMap decoded;
  ASSERT_TRUE(DecodeRows(encoded.chunks[0].wire, &decoded).ok());
  EXPECT_FALSE(decoded.contains(9999));
}

TEST(Serialization, EmptySendProducesExplicitMarkerChunk) {
  linalg::ActivationMap empty;
  EncodeResult encoded =
      EncodeRows(empty, {1, 2, 3}, 1024, LosslessCodec(true));
  ASSERT_EQ(encoded.chunks.size(), 1u);  // receiver needs a signal
  EXPECT_EQ(encoded.active_rows, 0);
  linalg::ActivationMap decoded;
  ASSERT_TRUE(DecodeRows(encoded.chunks[0].wire, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(Serialization, CompressionShrinksRepetitiveRows) {
  // Saturated activations (clamped at 32) compress well.
  linalg::ActivationMap rows;
  for (int32_t r = 0; r < 64; ++r) {
    linalg::SparseVector vec;
    vec.dim = 512;
    for (int32_t s = 0; s < 512; ++s) {
      vec.idx.push_back(s);
      vec.val.push_back(32.0f);
    }
    rows.emplace(r, std::move(vec));
  }
  EncodeResult plain = EncodeRows(rows, AllIds(rows), 0, WireCodec{});
  EncodeResult packed =
      EncodeRows(rows, AllIds(rows), 0, LosslessCodec(true));
  EXPECT_LT(packed.chunks[0].wire.size(), plain.chunks[0].wire.size() / 3);
}

TEST(Serialization, DecodeRejectsCorruption) {
  linalg::ActivationMap rows = MakeRows(20, 32, 0.7, 9);
  EncodeResult encoded =
      EncodeRows(rows, AllIds(rows), 0, LosslessCodec(true));
  Bytes wire = encoded.chunks[0].wire;
  wire[wire.size() / 2] ^= 0xFF;
  linalg::ActivationMap decoded;
  EXPECT_FALSE(DecodeRows(wire, &decoded).ok());
  EXPECT_FALSE(DecodeRows(Bytes{}, &decoded).ok());
  EXPECT_FALSE(DecodeRows(Bytes{9, 9, 9}, &decoded).ok());
}

TEST(Serialization, EstimateRowBytesMonotonic) {
  EXPECT_LT(EstimateRowBytes(1), EstimateRowBytes(100));
  EXPECT_GE(EstimateRowBytes(0), 1u);
}

// --- property tests: randomized maps across wire modes ---

/// Randomized rows with mixed signs and magnitudes (the hand-built
/// activation shapes above only cover positive benchmark-style values).
linalg::ActivationMap RandomRows(Rng* rng, int32_t max_rows, int32_t dim) {
  linalg::ActivationMap out;
  const int32_t rows = 1 + static_cast<int32_t>(rng->NextBounded(max_rows));
  for (int32_t r = 0; r < rows; ++r) {
    linalg::SparseVector vec;
    vec.dim = dim;
    for (int32_t s = 0; s < dim; ++s) {
      if (!rng->NextBool(0.3)) continue;
      vec.idx.push_back(s);
      // Span several decades, both signs, with exact zeros excluded (an
      // all-zero row would have been dropped upstream).
      const double mag = std::pow(10.0, rng->NextUniform(-3.0, 2.0));
      vec.val.push_back(static_cast<float>(rng->NextBool(0.5) ? mag : -mag));
    }
    if (!vec.empty()) {
      out.emplace(static_cast<int32_t>(rng->NextBounded(1 << 20)),
                  std::move(vec));
    }
  }
  return out;
}

TEST(SerializationProperty, LosslessRoundTripIsByteExact) {
  Rng rng(1234);
  for (int trial = 0; trial < 40; ++trial) {
    const linalg::ActivationMap original = RandomRows(&rng, 50, 96);
    const bool compress = trial % 2 == 0;
    const uint64_t cap = trial % 3 == 0 ? 512 : 0;
    EncodeResult encoded = EncodeRows(original, AllIds(original), cap,
                                      LosslessCodec(compress));
    linalg::ActivationMap decoded;
    for (const RowChunk& chunk : encoded.chunks) {
      ASSERT_TRUE(DecodeRows(chunk.wire, &decoded).ok());
    }
    ASSERT_EQ(decoded.size(), original.size()) << "trial " << trial;
    for (const auto& [id, vec] : original) {
      // operator== on float values: the lossless path must be bit-exact.
      EXPECT_EQ(decoded.at(id), vec) << "trial " << trial << " row " << id;
    }
  }
}

TEST(SerializationProperty, QuantizedWidthsStayWithinBound) {
  Rng rng(99);
  for (const int32_t bits : {2, 4, 8, 12, 16}) {
    const double bound = codec::QuantRelErrorBound(bits);
    for (int trial = 0; trial < 10; ++trial) {
      const linalg::ActivationMap original = RandomRows(&rng, 40, 80);
      if (original.empty()) continue;
      float global_max = 0.0f;
      for (const auto& [id, vec] : original) {
        for (float v : vec.val) global_max = std::max(global_max, std::fabs(v));
      }
      const uint64_t cap = trial % 2 == 0 ? 768 : 0;
      EncodeResult encoded =
          EncodeRows(original, AllIds(original), cap,
                     QuantCodec(bits));
      linalg::ActivationMap decoded;
      for (const RowChunk& chunk : encoded.chunks) {
        EXPECT_EQ(chunk.quant_bits, bits);
        // The chunk's measured error must respect the advertised bound.
        EXPECT_LE(chunk.quant_err_max, bound);
        ASSERT_TRUE(DecodeRows(chunk.wire, &decoded).ok());
      }
      ASSERT_EQ(decoded.size(), original.size());
      for (const auto& [id, vec] : original) {
        const linalg::SparseVector& got = decoded.at(id);
        // Structure (ids, indices, dim) is never lossy.
        ASSERT_EQ(got.idx, vec.idx) << "bits " << bits << " row " << id;
        ASSERT_EQ(got.dim, vec.dim);
        for (size_t j = 0; j < vec.val.size(); ++j) {
          // Per-chunk scale <= global max, so the chunk-relative bound
          // holds a fortiori against the map's global max.
          EXPECT_LE(std::fabs(got.val[j] - vec.val[j]),
                    bound * static_cast<double>(global_max))
              << "bits " << bits << " row " << id << " j " << j;
        }
      }
    }
  }
}

TEST(SerializationProperty, QuantizedCorruptionAndTruncationRejected) {
  Rng rng(7);
  const linalg::ActivationMap original = RandomRows(&rng, 30, 64);
  ASSERT_FALSE(original.empty());
  EncodeResult encoded =
      EncodeRows(original, AllIds(original), 0,
                 QuantCodec(8));
  const Bytes& wire = encoded.chunks[0].wire;
  // Flip bytes across the chunk: tag/framing, structure block, FQ header,
  // FQ symbol stream. Every flip must be rejected (never silently decode
  // to different rows). The final byte is excluded: it can be pure
  // BitWriter zero-padding that no reader consumes.
  for (const size_t pos :
       {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{5}, size_t{8},
        wire.size() / 4, wire.size() / 2, (3 * wire.size()) / 4,
        wire.size() - 2}) {
    Bytes corrupt = wire;
    corrupt[pos] ^= 0xFF;
    linalg::ActivationMap decoded;
    const Status status = DecodeRows(corrupt, &decoded);
    if (status.ok()) {
      // A flip that survives decoding must reconstruct the exact same
      // rows (e.g. it landed in dead padding); anything else is silent
      // corruption.
      EXPECT_EQ(decoded.size(), original.size()) << "pos " << pos;
      for (const auto& [id, vec] : original) {
        ASSERT_TRUE(decoded.contains(id)) << "pos " << pos;
        EXPECT_EQ(decoded.at(id).idx, vec.idx) << "pos " << pos;
      }
    }
  }
  // Truncations anywhere must fail loudly.
  for (const size_t keep :
       {size_t{0}, size_t{1}, size_t{4}, wire.size() / 2, wire.size() - 1}) {
    Bytes truncated(wire.begin(), wire.begin() + keep);
    linalg::ActivationMap decoded;
    EXPECT_FALSE(DecodeRows(truncated, &decoded).ok()) << "keep " << keep;
  }
}

TEST(SerializationProperty, QuantizedWireShrinksLosslessWire) {
  // The headline trade: 8-bit quantized transport must land well under
  // the lossless-compressed wire size on benchmark-shaped activations.
  const linalg::ActivationMap rows = MakeRows(200, 256, 0.4, 21);
  EncodeResult lossless =
      EncodeRows(rows, AllIds(rows), 0, LosslessCodec(true));
  EncodeResult quantized = EncodeRows(
      rows, AllIds(rows), 0, QuantCodec(8));
  ASSERT_EQ(lossless.chunks.size(), 1u);
  ASSERT_EQ(quantized.chunks.size(), 1u);
  EXPECT_LT(quantized.chunks[0].wire.size(),
            lossless.chunks[0].wire.size() * 7 / 10);
}

TEST(SerializationProperty, PlanRowsAgreesWithEncodeRowsExactly) {
  // PlanRows prices the serialization CPU BEFORE the encode runs on the
  // compute pool, so its raw-byte total, chunk count and active-row/nnz
  // numbers must agree with the real encode exactly — for every codec
  // (raw bytes are codec-independent by construction) and every cap.
  const std::vector<WireCodec> codecs = {
      WireCodec{}, LosslessCodec(true), QuantCodec(8), QuantCodec(4, false)};
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 71);
    const int32_t rows = static_cast<int32_t>(rng.NextBounded(120));
    const double density = rng.NextUniform(0.02, 0.9);
    const linalg::ActivationMap source = MakeRows(rows, 96, density, seed);
    // Mix present, absent and (via MakeRows dropping empties) inactive ids.
    std::vector<int32_t> ids = AllIds(source);
    ids.push_back(100000);  // never present
    for (const uint64_t cap : {uint64_t{0}, uint64_t{64}, uint64_t{700},
                               uint64_t{1} << 20}) {
      const EncodePlan plan = PlanRows(source, ids, cap);
      for (const WireCodec& codec : codecs) {
        const EncodeResult encoded = EncodeRows(source, ids, cap, codec);
        uint64_t raw_bytes = 0;
        for (const RowChunk& chunk : encoded.chunks) {
          raw_bytes += chunk.raw_bytes;
        }
        ASSERT_EQ(plan.raw_bytes, raw_bytes)
            << "seed " << seed << " cap " << cap;
        ASSERT_EQ(plan.num_chunks, encoded.chunks.size())
            << "seed " << seed << " cap " << cap;
        ASSERT_EQ(plan.active_rows, encoded.active_rows)
            << "seed " << seed << " cap " << cap;
      }
    }
  }
}

TEST(Serialization, PlanRowsEmptySendMatchesMarkerChunk) {
  const linalg::ActivationMap empty;
  const EncodePlan plan = PlanRows(empty, {1, 2, 3}, 1024);
  const EncodeResult encoded =
      EncodeRows(empty, {1, 2, 3}, 1024, LosslessCodec(true));
  ASSERT_EQ(encoded.chunks.size(), 1u);
  EXPECT_EQ(plan.num_chunks, 1u);
  EXPECT_EQ(plan.raw_bytes, encoded.chunks[0].raw_bytes);
  EXPECT_EQ(plan.active_rows, 0);
}

}  // namespace
}  // namespace fsd::core
