#include <gtest/gtest.h>

#include <tuple>

#include "codec/bitstream.h"
#include "codec/crc32.h"
#include "codec/huffman.h"
#include "codec/lz.h"
#include "codec/varint.h"
#include "common/rng.h"

namespace fsd::codec {
namespace {

TEST(Varint, RoundtripBoundaries) {
  const uint64_t cases[] = {0,    1,        127,        128,
                            300,  16383,    16384,      1ull << 32,
                            ~0ull};
  for (uint64_t v : cases) {
    Bytes buf;
    PutVarint64(&buf, v);
    ByteReader reader(buf);
    EXPECT_EQ(*GetVarint64(&reader), v) << v;
    EXPECT_TRUE(reader.exhausted());
  }
}

TEST(Varint, SignedZigZag) {
  const int64_t cases[] = {0, -1, 1, -2, 63, -64, 1000000, -1000000,
                           INT64_MAX, INT64_MIN};
  for (int64_t v : cases) {
    Bytes buf;
    PutVarintSigned(&buf, v);
    ByteReader reader(buf);
    EXPECT_EQ(*GetVarintSigned(&reader), v) << v;
  }
}

TEST(Varint, TruncatedFails) {
  Bytes buf;
  PutVarint64(&buf, 1ull << 40);
  buf.pop_back();
  ByteReader reader(buf);
  EXPECT_FALSE(GetVarint64(&reader).ok());
}

TEST(Crc32, KnownVector) {
  // IEEE CRC-32 of "123456789" is 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(s), 9), 0xCBF43926u);
}

TEST(Crc32, SeedChaining) {
  const Bytes data = {10, 20, 30, 40, 50, 60};
  const uint32_t whole = Crc32(data.data(), data.size());
  const uint32_t first = Crc32(data.data(), 3);
  const uint32_t chained = Crc32(data.data() + 3, 3, first);
  EXPECT_EQ(whole, chained);
}

TEST(Bitstream, RoundtripMixedWidths) {
  Bytes buf;
  BitWriter writer(&buf);
  writer.Write(0b101, 3);
  writer.Write(0xFFFF, 16);
  writer.Write(1, 1);
  writer.Write(0x12345, 20);
  writer.Finish();
  BitReader reader(buf.data(), buf.size());
  EXPECT_EQ(*reader.Read(3), 0b101u);
  EXPECT_EQ(*reader.Read(16), 0xFFFFu);
  EXPECT_EQ(*reader.Read(1), 1u);
  EXPECT_EQ(*reader.Read(20), 0x12345u);
}

TEST(Bitstream, UnderrunFails) {
  Bytes buf = {0xAB};
  BitReader reader(buf.data(), buf.size());
  EXPECT_TRUE(reader.Read(8).ok());
  EXPECT_FALSE(reader.Read(1).ok());
}

TEST(Huffman, RoundtripSkewedAlphabet) {
  std::vector<uint64_t> freqs = {1000, 500, 100, 10, 1, 0, 7};
  const std::vector<uint8_t> lengths = BuildCodeLengths(freqs);
  EXPECT_EQ(lengths[5], 0);          // unused symbol gets no code
  EXPECT_LE(lengths[0], lengths[4]);  // frequent symbols get short codes
  HuffmanEncoder encoder(lengths);
  auto decoder = HuffmanDecoder::Build(lengths);
  ASSERT_TRUE(decoder.ok());

  const std::vector<int> symbols = {0, 1, 2, 0, 0, 6, 4, 3, 0, 1, 2, 2};
  Bytes buf;
  BitWriter writer(&buf);
  for (int s : symbols) encoder.Encode(&writer, s);
  writer.Finish();
  BitReader reader(buf.data(), buf.size());
  for (int s : symbols) {
    EXPECT_EQ(*decoder->Decode(&reader), s);
  }
}

TEST(Huffman, SingleSymbolAlphabet) {
  std::vector<uint64_t> freqs = {0, 42, 0};
  const std::vector<uint8_t> lengths = BuildCodeLengths(freqs);
  EXPECT_EQ(lengths[1], 1);
  HuffmanEncoder encoder(lengths);
  auto decoder = HuffmanDecoder::Build(lengths);
  ASSERT_TRUE(decoder.ok());
  Bytes buf;
  BitWriter writer(&buf);
  encoder.Encode(&writer, 1);
  encoder.Encode(&writer, 1);
  writer.Finish();
  BitReader reader(buf.data(), buf.size());
  EXPECT_EQ(*decoder->Decode(&reader), 1);
  EXPECT_EQ(*decoder->Decode(&reader), 1);
}

TEST(Huffman, LengthLimitRespected) {
  // Fibonacci-like frequencies force deep trees; lengths must stay <= 15.
  std::vector<uint64_t> freqs;
  uint64_t a = 1, b = 1;
  for (int i = 0; i < 40; ++i) {
    freqs.push_back(a);
    const uint64_t next = a + b;
    a = b;
    b = next;
  }
  const std::vector<uint8_t> lengths = BuildCodeLengths(freqs);
  for (uint8_t len : lengths) EXPECT_LE(len, kMaxCodeLen);
  // The limited code must still be decodable (Kraft-consistent).
  EXPECT_TRUE(HuffmanDecoder::Build(lengths).ok());
}

// ---------------------------------------------------------------------------
// LZ property tests across data shapes and sizes.
// ---------------------------------------------------------------------------

enum class Pattern { kZeros, kRandom, kRepetitive, kText, kSparseFloats };

class LzRoundtrip : public ::testing::TestWithParam<std::tuple<Pattern, int>> {
 protected:
  Bytes MakeData(Pattern pattern, int size) {
    Rng rng(size * 31 + static_cast<int>(pattern));
    Bytes data(size);
    switch (pattern) {
      case Pattern::kZeros:
        break;
      case Pattern::kRandom:
        for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
        break;
      case Pattern::kRepetitive:
        for (int i = 0; i < size; ++i) {
          data[i] = static_cast<uint8_t>("abcabcabd"[i % 9]);
        }
        break;
      case Pattern::kText: {
        const char* words[] = {"serverless ", "inference ", "queue ",
                               "object ", "lambda "};
        int pos = 0;
        while (pos < size) {
          const char* w = words[rng.NextBounded(5)];
          for (const char* p = w; *p && pos < size; ++p) {
            data[pos++] = static_cast<uint8_t>(*p);
          }
        }
        break;
      }
      case Pattern::kSparseFloats:
        // Mimics row payloads: varint-ish small ints + float bytes.
        for (int i = 0; i + 4 <= size; i += 4) {
          const float f = (rng.NextBounded(100) < 70)
                              ? 0.0f
                              : static_cast<float>(rng.NextDouble());
          std::memcpy(&data[i], &f, 4);
        }
        break;
    }
    return data;
  }
};

TEST_P(LzRoundtrip, CompressDecompressIdentity) {
  auto [pattern, size] = GetParam();
  const Bytes data = MakeData(pattern, size);
  const Bytes packed = LzCompress(data);
  auto unpacked = LzDecompress(packed);
  ASSERT_TRUE(unpacked.ok()) << unpacked.status().ToString();
  EXPECT_EQ(*unpacked, data);
  EXPECT_EQ(*LzUncompressedSize(packed), data.size());
}

TEST_P(LzRoundtrip, DeterministicOutput) {
  auto [pattern, size] = GetParam();
  const Bytes data = MakeData(pattern, size);
  EXPECT_EQ(LzCompress(data), LzCompress(data));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LzRoundtrip,
    ::testing::Combine(::testing::Values(Pattern::kZeros, Pattern::kRandom,
                                         Pattern::kRepetitive, Pattern::kText,
                                         Pattern::kSparseFloats),
                       ::testing::Values(0, 1, 63, 64, 1000, 65536, 300000)));

TEST(Lz, CompressesRedundantData) {
  Bytes data(100000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>("hello world "[i % 12]);
  }
  const Bytes packed = LzCompress(data);
  EXPECT_LT(packed.size(), data.size() / 4);
}

TEST(Lz, StoredModeForIncompressible) {
  Rng rng(5);
  Bytes data(4096);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  const Bytes packed = LzCompress(data);
  // Container overhead only; never inflates beyond header + payload.
  EXPECT_LE(packed.size(), data.size() + 16);
  EXPECT_EQ(*LzDecompress(packed), data);
}

TEST(Lz, DetectsCorruption) {
  Bytes data(5000, 7);
  Bytes packed = LzCompress(data);
  packed[packed.size() / 2] ^= 0x40;
  EXPECT_FALSE(LzDecompress(packed).ok());
}

TEST(Lz, DetectsTruncation) {
  Bytes data(5000, 7);
  Bytes packed = LzCompress(data);
  packed.resize(packed.size() - 3);
  EXPECT_FALSE(LzDecompress(packed).ok());
}

TEST(Lz, RejectsGarbageHeader) {
  EXPECT_FALSE(LzDecompress({1, 2, 3, 4, 5}).ok());
  EXPECT_FALSE(LzDecompress({}).ok());
}

}  // namespace
}  // namespace fsd::codec
