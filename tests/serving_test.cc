// Concurrent serving-runtime tests: overlapping queries must be
// value-identical to sequential RunInference calls, warm pools must be
// reused across bursts, and aborts/teardown must drain cleanly.
#include <gtest/gtest.h>

#include "cloud/cloud.h"
#include "core/serving.h"
#include "model/input_gen.h"
#include "model/reference.h"

namespace fsd::core {
namespace {

struct Workload {
  model::SparseDnn dnn;
  part::ModelPartition partition;
  linalg::ActivationMap input;
  linalg::ActivationMap expected;
};

Workload MakeWorkload(int32_t neurons, int32_t layers, int32_t batch,
                      int32_t workers, uint64_t seed = 7) {
  model::SparseDnnConfig config;
  config.neurons = neurons;
  config.layers = layers;
  config.seed = seed;
  auto dnn = model::GenerateSparseDnn(config);
  EXPECT_TRUE(dnn.ok()) << dnn.status().ToString();

  part::ModelPartitionOptions po;
  auto partition = part::PartitionModel(*dnn, workers, po);
  EXPECT_TRUE(partition.ok()) << partition.status().ToString();

  model::InputConfig input_config;
  input_config.neurons = neurons;
  input_config.batch = batch;
  input_config.seed = seed + 1;
  auto input = model::GenerateInputBatch(input_config);
  EXPECT_TRUE(input.ok()) << input.status().ToString();

  auto expected = model::ReferenceInference(*dnn, *input);
  EXPECT_TRUE(expected.ok()) << expected.status().ToString();
  return Workload{std::move(*dnn), std::move(*partition), std::move(*input),
                  std::move(*expected)};
}

InferenceRequest MakeRequest(const Workload& w, Variant variant,
                             int32_t workers) {
  InferenceRequest request;
  request.dnn = &w.dnn;
  request.partition = &w.partition;
  request.batches = {&w.input};
  request.options.variant = variant;
  request.options.num_workers = workers;
  return request;
}

TEST(Serving, OverlappingQueriesMatchSequentialRunsExactly) {
  constexpr int32_t kWorkers = 4;
  constexpr int kQueries = 3;
  for (Variant variant :
       {Variant::kQueue, Variant::kObject, Variant::kKv}) {
    SCOPED_TRACE(std::string(VariantName(variant)));
    Workload w = MakeWorkload(256, 8, 16, kWorkers);
    InferenceRequest request = MakeRequest(w, variant, kWorkers);

    // Baseline: N queries through the sequential entry point.
    std::vector<std::vector<linalg::ActivationMap>> sequential;
    {
      sim::Simulation sim;
      cloud::CloudEnv cloud(&sim);
      for (int q = 0; q < kQueries; ++q) {
        auto report = RunInference(&cloud, request);
        ASSERT_TRUE(report.ok()) << report.status().ToString();
        ASSERT_TRUE(report->status.ok()) << report->status.ToString();
        sequential.push_back(report->outputs);
      }
    }

    // The same N queries, overlapping inside one simulation.
    sim::Simulation sim;
    cloud::CloudEnv cloud(&sim);
    ServingRuntime serving(&cloud);
    for (int q = 0; q < kQueries; ++q) {
      auto id = serving.Submit(request, 0.01 * q);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
    }
    auto report = serving.Drain();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_EQ(report->queries.size(), static_cast<size_t>(kQueries));

    double max_arrival = 0.0;
    double min_finish = 1e300;
    for (int q = 0; q < kQueries; ++q) {
      const QueryOutcome& outcome = report->queries[q];
      ASSERT_TRUE(outcome.report.status.ok())
          << outcome.report.status.ToString();
      // Byte-identical activations: concurrency must not change values.
      EXPECT_EQ(outcome.report.outputs, sequential[q]) << "query " << q;
      EXPECT_EQ(outcome.report.outputs[0], w.expected) << "query " << q;
      max_arrival = std::max(max_arrival, outcome.arrival_s);
      min_finish = std::min(min_finish, outcome.finish_s);
    }
    // The runs genuinely overlapped: every query arrived before the first
    // one finished.
    EXPECT_LT(max_arrival, min_finish);
    EXPECT_EQ(report->fleet.queries, kQueries);
    EXPECT_EQ(report->fleet.failed, 0);
    EXPECT_GT(report->fleet.throughput_qps, 0.0);
    EXPECT_GE(report->billing.total_cost, 0.0);
  }
}

TEST(Serving, ServingWorkloadIsDeterministic) {
  constexpr int32_t kWorkers = 4;
  Workload w = MakeWorkload(256, 8, 16, kWorkers);
  InferenceRequest request = MakeRequest(w, Variant::kQueue, kWorkers);
  auto run_once = [&]() {
    sim::Simulation sim;
    cloud::CloudEnv cloud(&sim);
    ServingRuntime serving(&cloud);
    const std::vector<double> arrivals = PoissonArrivals(2.0, 4, 99);
    for (double t : arrivals) {
      EXPECT_TRUE(serving.Submit(request, t).ok());
    }
    auto report = serving.Drain();
    EXPECT_TRUE(report.ok());
    std::vector<double> latencies;
    for (const QueryOutcome& outcome : report->queries) {
      latencies.push_back(outcome.report.latency_s);
    }
    return latencies;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Serving, ByteIdenticalOutputsAcrossBackendsAndScheduling) {
  // Determinism regression: one seed, one workload — every channel backend
  // must produce byte-identical per-query activations, whether queries run
  // sequentially (one simulation per query) or overlapped (one serving
  // simulation), and repeated runs must reproduce themselves exactly.
  constexpr int32_t kWorkers = 4;
  constexpr int kQueries = 3;
  Workload w = MakeWorkload(256, 8, 16, kWorkers, /*seed=*/42);
  for (Variant variant :
       {Variant::kQueue, Variant::kObject, Variant::kKv}) {
    SCOPED_TRACE(std::string(VariantName(variant)));
    InferenceRequest request = MakeRequest(w, variant, kWorkers);

    auto run_sequential = [&]() {
      std::vector<std::vector<linalg::ActivationMap>> outputs;
      sim::Simulation sim;
      cloud::CloudEnv cloud(&sim);
      for (int q = 0; q < kQueries; ++q) {
        auto report = RunInference(&cloud, request);
        EXPECT_TRUE(report.ok() && report->status.ok());
        outputs.push_back(report->outputs);
      }
      return outputs;
    };
    auto run_overlapped = [&]() {
      std::vector<std::vector<linalg::ActivationMap>> outputs;
      sim::Simulation sim;
      cloud::CloudEnv cloud(&sim);
      ServingRuntime serving(&cloud);
      for (int q = 0; q < kQueries; ++q) {
        EXPECT_TRUE(serving.Submit(request, 0.01 * q).ok());
      }
      auto report = serving.Drain();
      EXPECT_TRUE(report.ok());
      for (const QueryOutcome& outcome : report->queries) {
        EXPECT_TRUE(outcome.report.status.ok())
            << outcome.report.status.ToString();
        outputs.push_back(outcome.report.outputs);
      }
      return outputs;
    };

    const auto sequential = run_sequential();
    const auto overlapped = run_overlapped();
    // Repeat both schedules: byte-identical reproduction.
    EXPECT_EQ(sequential, run_sequential());
    EXPECT_EQ(overlapped, run_overlapped());
    // Overlap never changes values, and every query matches the serial
    // reference — which also makes outputs identical ACROSS backends.
    EXPECT_EQ(sequential, overlapped);
    for (const auto& outputs : overlapped) {
      ASSERT_EQ(outputs.size(), 1u);
      EXPECT_EQ(outputs[0], w.expected);
    }
  }
}

TEST(Serving, BurstArrivalsReuseWarmInstances) {
  constexpr int32_t kWorkers = 4;
  constexpr int32_t kPerBurst = 2;
  Workload w = MakeWorkload(256, 8, 16, kWorkers);
  InferenceRequest request = MakeRequest(w, Variant::kQueue, kWorkers);

  // Two bursts 60 s apart (within the keep-alive): the second burst must
  // find the first burst's instances warm.
  const std::vector<double> arrivals =
      BurstArrivals(/*bursts=*/2, kPerBurst, /*gap_s=*/60.0);
  ASSERT_EQ(arrivals.size(), 4u);

  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  ServingRuntime serving(&cloud);
  for (double t : arrivals) {
    ASSERT_TRUE(serving.Submit(request, t).ok());
  }
  auto report = serving.Drain();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->fleet.failed, 0);

  // Burst 1: every worker instance is cold. Burst 2: all warm.
  for (int q = 0; q < 2 * kPerBurst; ++q) {
    const RunMetrics& metrics = report->queries[q].report.metrics;
    if (q < kPerBurst) {
      EXPECT_EQ(metrics.cold_starts, kWorkers) << "query " << q;
    } else {
      EXPECT_EQ(metrics.cold_starts, 0) << "warm query " << q;
    }
  }
  EXPECT_EQ(report->fleet.cold_starts, kPerBurst * kWorkers);
  EXPECT_DOUBLE_EQ(report->fleet.cold_start_ratio, 0.5);

  // Ablation: per-query functions can never reuse instances.
  sim::Simulation cold_sim;
  cloud::CloudEnv cold_cloud(&cold_sim);
  ServingOptions cold_options;
  cold_options.share_functions = false;
  ServingRuntime cold_serving(&cold_cloud, cold_options);
  for (double t : arrivals) {
    ASSERT_TRUE(cold_serving.Submit(request, t).ok());
  }
  auto cold_report = cold_serving.Drain();
  ASSERT_TRUE(cold_report.ok()) << cold_report.status().ToString();
  EXPECT_EQ(cold_report->fleet.cold_starts, 2 * kPerBurst * kWorkers);
  EXPECT_DOUBLE_EQ(cold_report->fleet.cold_start_ratio, 1.0);
}

TEST(Serving, StopOnFailureAbortsInFlightQueries) {
  constexpr int32_t kWorkers = 4;
  Workload w = MakeWorkload(256, 8, 16, kWorkers);
  InferenceRequest healthy = MakeRequest(w, Variant::kQueue, kWorkers);
  InferenceRequest poisoned = healthy;
  // A runtime cap far below the query latency: workers DeadlineExceeded.
  poisoned.options.worker_timeout_s = 0.01;

  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  ServingOptions options;
  options.stop_on_failure = true;
  ServingRuntime serving(&cloud, options);
  ASSERT_TRUE(serving.Submit(poisoned, 0.0).ok());
  for (int q = 0; q < 3; ++q) {
    ASSERT_TRUE(serving.Submit(healthy, 0.005 * (q + 1)).ok());
  }
  auto report = serving.Drain();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // The poisoned query failed; the workload drained (simulation is not
  // stuck with live pollers) and every query reached a terminal state.
  EXPECT_GE(report->fleet.failed, 1);
  EXPECT_FALSE(report->queries[0].report.status.ok());
  for (const QueryOutcome& outcome : report->queries) {
    EXPECT_GT(outcome.finish_s, 0.0);
  }
  EXPECT_EQ(sim.live_processes(), 0);
}

TEST(Serving, ResumedDrainCompletesCutOffQueries) {
  constexpr int32_t kWorkers = 4;
  Workload w = MakeWorkload(256, 8, 16, kWorkers);
  InferenceRequest request = MakeRequest(w, Variant::kQueue, kWorkers);

  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  ServingOptions options;
  options.run_until = 0.2;  // well before any query can finish
  ServingRuntime serving(&cloud, options);
  for (int q = 0; q < 3; ++q) {
    ASSERT_TRUE(serving.Submit(request, 0.01 * q).ok());
  }
  auto cut = serving.Drain();
  ASSERT_TRUE(cut.ok());
  for (const QueryOutcome& outcome : cut->queries) {
    EXPECT_FALSE(outcome.report.status.ok());
  }

  // Extending the horizon resumes the in-flight queries to completion.
  auto resumed = serving.Drain(/*run_until=*/-1.0);
  ASSERT_TRUE(resumed.ok());
  for (const QueryOutcome& outcome : resumed->queries) {
    ASSERT_TRUE(outcome.report.status.ok())
        << outcome.report.status.ToString();
    EXPECT_EQ(outcome.report.outputs[0], w.expected);
  }
  EXPECT_EQ(sim.live_processes(), 0);
  // Fleet dollars span both drains, not just the resumed interval.
  EXPECT_GT(resumed->fleet.total_cost, 0.0);
  EXPECT_GE(resumed->fleet.total_cost, resumed->billing.total_cost);
}

TEST(Serving, DestructSimulationWithLiveServingQueries) {
  // Cutting a serving workload off mid-flight leaves many concurrent
  // in-flight queries; destructing the Simulation must unwind them all.
  constexpr int32_t kWorkers = 4;
  Workload w = MakeWorkload(256, 8, 16, kWorkers);
  InferenceRequest request = MakeRequest(w, Variant::kQueue, kWorkers);
  {
    sim::Simulation sim;
    cloud::CloudEnv cloud(&sim);
    ServingOptions options;
    options.run_until = 0.2;  // well before any query can finish
    ServingRuntime serving(&cloud, options);
    for (int q = 0; q < 4; ++q) {
      ASSERT_TRUE(serving.Submit(request, 0.01 * q).ok());
    }
    auto report = serving.Drain();
    ASSERT_TRUE(report.ok());
    for (const QueryOutcome& outcome : report->queries) {
      EXPECT_FALSE(outcome.report.status.ok());
    }
    EXPECT_GT(sim.live_processes(), 0);
  }  // Simulation destructor unwinds the live queries
  SUCCEED();
}

}  // namespace
}  // namespace fsd::core
