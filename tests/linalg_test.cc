#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <thread>
#include <tuple>

#include "common/rng.h"
#include "linalg/csr.h"
#include "linalg/spmm.h"

namespace fsd::linalg {
namespace {

TEST(Csr, FromTripletsSortsAndSumsDuplicates) {
  CsrMatrix m = CsrMatrix::FromTriplets(
      3, 4, {{2, 1, 1.0f}, {0, 3, 2.0f}, {0, 3, 3.0f}, {1, 0, -1.0f}});
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.nnz(), 3);  // duplicate (0,3) merged
  EXPECT_EQ(m.RowNnz(0), 1);
  std::vector<float> dense = m.ToDense();
  EXPECT_EQ(dense[0 * 4 + 3], 5.0f);
  EXPECT_EQ(dense[1 * 4 + 0], -1.0f);
  EXPECT_EQ(dense[2 * 4 + 1], 1.0f);
}

TEST(Csr, CancellingDuplicatesDropped) {
  CsrMatrix m =
      CsrMatrix::FromTriplets(1, 2, {{0, 1, 2.0f}, {0, 1, -2.0f}});
  EXPECT_EQ(m.nnz(), 0);
}

TEST(Csr, RowBlockExtract) {
  CsrMatrix m = CsrMatrix::FromTriplets(
      4, 4, {{0, 0, 1.0f}, {1, 1, 2.0f}, {2, 2, 3.0f}, {3, 3, 4.0f}});
  RowBlock block = RowBlock::Extract(m, {1, 3});
  EXPECT_EQ(block.num_rows(), 2u);
  EXPECT_EQ(block.nnz(), 2);
  EXPECT_EQ(block.row_ids[0], 1);
  int32_t seen_col = -1;
  block.ForEachInRow(1, [&](int32_t c, float v) {
    seen_col = c;
    EXPECT_EQ(v, 4.0f);
  });
  EXPECT_EQ(seen_col, 3);
}

TEST(SparseVector, FromDenseAndAxpy) {
  const float dense[] = {0.0f, 1.5f, 0.0f, -2.0f};
  SparseVector v = SparseVector::FromDense(dense, 4);
  EXPECT_EQ(v.nnz(), 2u);
  EXPECT_EQ(v.idx, (std::vector<int32_t>{1, 3}));
  float acc[4] = {0, 0, 0, 0};
  v.AxpyInto(2.0f, acc);
  EXPECT_EQ(acc[1], 3.0f);
  EXPECT_EQ(acc[3], -4.0f);
}

// ---------------------------------------------------------------------------
// LayerForward vs a dense reference implementation (property test).
// ---------------------------------------------------------------------------

struct DenseRef {
  // Computes relu_cap(min(relu(W x + b))) densely.
  static std::vector<float> Forward(const CsrMatrix& w,
                                    const std::vector<float>& x_dense,
                                    int32_t batch, float bias,
                                    float relu_cap) {
    std::vector<float> out(static_cast<size_t>(w.rows()) * batch, 0.0f);
    for (int32_t i = 0; i < w.rows(); ++i) {
      std::vector<float> acc(batch, 0.0f);
      bool touched = false;
      w.ForEachInRow(i, [&](int32_t j, float weight) {
        for (int32_t s = 0; s < batch; ++s) {
          const float xv = x_dense[static_cast<size_t>(j) * batch + s];
          if (xv != 0.0f) {
            acc[s] += weight * xv;
            touched = true;
          }
        }
      });
      if (!touched) continue;  // matches the sparse kernel's skip
      for (int32_t s = 0; s < batch; ++s) {
        if (acc[s] == 0.0f) continue;  // untouched position stays zero
        float v = acc[s] + bias;
        if (relu_cap > 0.0f) {
          v = std::max(0.0f, std::min(relu_cap, v));
        }
        out[static_cast<size_t>(i) * batch + s] = v;
      }
    }
    return out;
  }
};

class LayerForwardProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int, double>> {};

TEST_P(LayerForwardProperty, MatchesDenseReference) {
  auto [n, batch, nnz_per_row, density] = GetParam();
  Rng rng(n * 1000 + batch);
  std::vector<Triplet> triplets;
  for (int32_t i = 0; i < n; ++i) {
    for (int k = 0; k < nnz_per_row; ++k) {
      triplets.push_back(
          {i, static_cast<int32_t>(rng.NextBounded(n)),
           static_cast<float>(rng.NextUniform(-0.5, 1.0))});
    }
  }
  const CsrMatrix w = CsrMatrix::FromTriplets(n, n, triplets);

  // Random sparse input.
  ActivationMap x;
  std::vector<float> x_dense(static_cast<size_t>(n) * batch, 0.0f);
  for (int32_t j = 0; j < n; ++j) {
    SparseVector row;
    row.dim = batch;
    for (int32_t s = 0; s < batch; ++s) {
      if (rng.NextBool(density)) {
        const float v = static_cast<float>(rng.NextUniform(0.1, 2.0));
        row.idx.push_back(s);
        row.val.push_back(v);
        x_dense[static_cast<size_t>(j) * batch + s] = v;
      }
    }
    if (!row.empty()) x.emplace(j, std::move(row));
  }

  const float bias = -0.25f;
  const float cap = 4.0f;
  LayerForwardStats stats;
  ActivationMap out = LayerForwardAll(
      w,
      [&x](int32_t row) -> const SparseVector* {
        auto it = x.find(row);
        return it == x.end() ? nullptr : &it->second;
      },
      bias, cap, batch, &stats);

  const std::vector<float> expected =
      DenseRef::Forward(w, x_dense, batch, bias, cap);
  // Compare element-wise (tolerance: accumulation order differs).
  int64_t nnz_seen = 0;
  for (int32_t i = 0; i < n; ++i) {
    const SparseVector* row = nullptr;
    auto it = out.find(i);
    if (it != out.end()) row = &it->second;
    for (int32_t s = 0; s < batch; ++s) {
      const float want = expected[static_cast<size_t>(i) * batch + s];
      float got = 0.0f;
      if (row != nullptr) {
        auto pos = std::lower_bound(row->idx.begin(), row->idx.end(), s);
        if (pos != row->idx.end() && *pos == s) {
          got = row->val[pos - row->idx.begin()];
        }
      }
      ASSERT_NEAR(want, got, 1e-4) << "row " << i << " sample " << s;
      if (got != 0.0f) ++nnz_seen;
    }
  }
  EXPECT_EQ(stats.output_nnz, nnz_seen);
  EXPECT_GT(stats.macs, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LayerForwardProperty,
    ::testing::Values(std::make_tuple(16, 4, 3, 0.5),
                      std::make_tuple(64, 8, 8, 0.3),
                      std::make_tuple(128, 16, 16, 0.15),
                      std::make_tuple(256, 5, 32, 0.05),
                      std::make_tuple(32, 32, 4, 0.9)));

TEST(LayerForward, SubsetMatchesUnion) {
  // Computing rows {evens} and {odds} separately must equal all rows.
  Rng rng(99);
  std::vector<Triplet> triplets;
  const int32_t n = 64;
  for (int32_t i = 0; i < n; ++i) {
    for (int k = 0; k < 6; ++k) {
      triplets.push_back({i, static_cast<int32_t>(rng.NextBounded(n)),
                          static_cast<float>(rng.NextUniform(0.0, 1.0))});
    }
  }
  const CsrMatrix w = CsrMatrix::FromTriplets(n, n, triplets);
  ActivationMap x;
  for (int32_t j = 0; j < n; j += 2) {
    SparseVector row;
    row.dim = 4;
    row.idx = {0, 2};
    row.val = {1.0f, 0.5f};
    x.emplace(j, row);
  }
  auto provider = [&x](int32_t row) -> const SparseVector* {
    auto it = x.find(row);
    return it == x.end() ? nullptr : &it->second;
  };
  ActivationMap all = LayerForwardAll(w, provider, -0.1f, 32.0f, 4);
  std::vector<int32_t> evens, odds;
  for (int32_t i = 0; i < n; ++i) ((i % 2 == 0) ? evens : odds).push_back(i);
  ActivationMap even_out = LayerForward(w, evens, provider, -0.1f, 32.0f, 4);
  ActivationMap odd_out = LayerForward(w, odds, provider, -0.1f, 32.0f, 4);
  ActivationMap merged = even_out;
  for (auto& [k, v] : odd_out) merged.emplace(k, v);
  EXPECT_EQ(all.size(), merged.size());
  for (const auto& [row, vec] : all) {
    ASSERT_TRUE(merged.contains(row));
    EXPECT_EQ(vec, merged.at(row)) << row;
  }
}

TEST(LayerForward, ReluClampAndThreshold) {
  // Single weight of 10 on an input of 10 -> 100, clamped to 32.
  const CsrMatrix w = CsrMatrix::FromTriplets(2, 1, {{0, 0, 10.0f},
                                                     {1, 0, -1.0f}});
  ActivationMap x;
  SparseVector row;
  row.dim = 1;
  row.idx = {0};
  row.val = {10.0f};
  x.emplace(0, row);
  ActivationMap out = LayerForwardAll(
      w,
      [&x](int32_t r) -> const SparseVector* {
        auto it = x.find(r);
        return it == x.end() ? nullptr : &it->second;
      },
      0.0f, 32.0f, 1);
  ASSERT_EQ(out.size(), 1u);                 // negative row ReLU'd away
  EXPECT_EQ(out.at(0).val[0], 32.0f);        // clamped
}

TEST(LayerForward, KernelsProduceByteIdenticalOutputs) {
  // The vectorized kernel must match the portable one bit-for-bit — same
  // ActivationMap bytes, same stats — across randomized layers. Where the
  // AVX2 path is compiled out or the CPU lacks it, both runs take the
  // portable kernel and the comparison is trivially exact.
  Rng rng(4242);
  for (int trial = 0; trial < 6; ++trial) {
    const int32_t n = 32 + static_cast<int32_t>(rng.NextBounded(200));
    const int32_t batch = 1 + static_cast<int32_t>(rng.NextBounded(40));
    const int nnz_per_row = 1 + static_cast<int>(rng.NextBounded(24));
    std::vector<Triplet> triplets;
    for (int32_t i = 0; i < n; ++i) {
      for (int k = 0; k < nnz_per_row; ++k) {
        triplets.push_back({i, static_cast<int32_t>(rng.NextBounded(n)),
                            static_cast<float>(rng.NextUniform(-1.0, 1.0))});
      }
    }
    const CsrMatrix w = CsrMatrix::FromTriplets(n, n, triplets);

    ActivationMap x;
    for (int32_t j = 0; j < n; ++j) {
      SparseVector row;
      row.dim = batch;
      // Mix of contiguous runs (the AVX2 fast path) and scattered samples.
      const bool contiguous = rng.NextBool(0.5);
      for (int32_t s = 0; s < batch; ++s) {
        if (contiguous ? s < batch / 2 : rng.NextBool(0.3)) {
          row.idx.push_back(s);
          row.val.push_back(static_cast<float>(rng.NextUniform(-2.0, 2.0)));
        }
      }
      if (!row.empty()) x.emplace(j, std::move(row));
    }
    auto provider = [&x](int32_t row) -> const SparseVector* {
      auto it = x.find(row);
      return it == x.end() ? nullptr : &it->second;
    };

    SetLayerForwardKernel(ForwardKernel::kPortable);
    LayerForwardStats portable_stats;
    const ActivationMap portable =
        LayerForwardAll(w, provider, -0.2f, 8.0f, batch, &portable_stats);

    SetLayerForwardKernel(ForwardKernel::kVectorized);
    LayerForwardStats vector_stats;
    const ActivationMap vectorized =
        LayerForwardAll(w, provider, -0.2f, 8.0f, batch, &vector_stats);
    SetLayerForwardKernel(ForwardKernel::kAuto);

    ASSERT_EQ(portable.size(), vectorized.size()) << "trial " << trial;
    for (const auto& [row, vec] : portable) {
      ASSERT_TRUE(vectorized.contains(row)) << "trial " << trial;
      const SparseVector& other = vectorized.at(row);
      ASSERT_EQ(vec.idx, other.idx) << "trial " << trial << " row " << row;
      ASSERT_EQ(vec.dim, other.dim) << "trial " << trial << " row " << row;
      for (size_t p = 0; p < vec.val.size(); ++p) {
        // Bit-level comparison: 0.0f == -0.0f would hide a sign flip.
        ASSERT_EQ(std::bit_cast<uint32_t>(vec.val[p]),
                  std::bit_cast<uint32_t>(other.val[p]))
            << "trial " << trial << " row " << row << " pos " << p;
      }
    }
    EXPECT_EQ(portable_stats.macs, vector_stats.macs);
    EXPECT_EQ(portable_stats.rows_produced, vector_stats.rows_produced);
    EXPECT_EQ(portable_stats.output_nnz, vector_stats.output_nnz);
  }
}

TEST(LayerForward, KernelSelectionReportsName) {
  SetLayerForwardKernel(ForwardKernel::kPortable);
  EXPECT_STREQ(LayerForwardKernelName(), "portable");
  SetLayerForwardKernel(ForwardKernel::kVectorized);
  if (LayerForwardVectorizedAvailable()) {
    EXPECT_STREQ(LayerForwardKernelName(), "avx2");
  } else {
    EXPECT_STREQ(LayerForwardKernelName(), "portable");
  }
  SetLayerForwardKernel(ForwardKernel::kAuto);
}

TEST(LayerForward, EmptyInputYieldsEmptyOutput) {
  const CsrMatrix w = CsrMatrix::FromTriplets(4, 4, {{0, 1, 1.0f}});
  ActivationMap out = LayerForwardAll(
      w, [](int32_t) -> const SparseVector* { return nullptr; }, -0.1f,
      32.0f, 8);
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------------
// Compute-offload support: the MAC pre-pass and thread-safe scratch.

struct RandomProblem {
  CsrMatrix weights;
  ActivationMap x;
  int32_t batch = 0;

  RowProvider Provider() const {
    return [this](int32_t row) -> const SparseVector* {
      auto it = x.find(row);
      return it == x.end() ? nullptr : &it->second;
    };
  }

  static RandomProblem Make(uint64_t seed, int32_t n, int32_t batch,
                            int nnz_per_row, double density) {
    Rng rng(seed);
    RandomProblem problem;
    problem.batch = batch;
    std::vector<Triplet> triplets;
    for (int32_t i = 0; i < n; ++i) {
      for (int k = 0; k < nnz_per_row; ++k) {
        triplets.push_back(
            {i, static_cast<int32_t>(rng.NextBounded(n)),
             static_cast<float>(rng.NextUniform(-0.5, 1.0))});
      }
    }
    problem.weights = CsrMatrix::FromTriplets(n, n, triplets);
    for (int32_t j = 0; j < n; ++j) {
      SparseVector row;
      row.dim = batch;
      for (int32_t s = 0; s < batch; ++s) {
        if (rng.NextBool(density)) {
          row.idx.push_back(s);
          row.val.push_back(static_cast<float>(rng.NextUniform(0.1, 2.0)));
        }
      }
      if (!row.empty()) problem.x.emplace(j, std::move(row));
    }
    return problem;
  }
};

TEST(CountLayerMacs, MatchesKernelStatsExactly) {
  // The pre-pass prices a kernel's virtual time BEFORE the kernel runs;
  // any divergence from stats.macs would silently skew event times, so
  // the agreement must be bitwise, not approximate.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const RandomProblem problem =
        RandomProblem::Make(seed, 96, 8, 6, 0.25);
    std::vector<int32_t> all_rows, evens;
    for (int32_t i = 0; i < problem.weights.rows(); ++i) {
      all_rows.push_back(i);
      if (i % 2 == 0) evens.push_back(i);
    }
    for (const std::vector<int32_t>* rows : {&all_rows, &evens}) {
      const RowProvider provider = problem.Provider();
      const double predicted =
          CountLayerMacs(problem.weights, *rows, provider);
      LayerForwardStats stats;
      LayerForward(problem.weights, *rows, provider, -0.25f, 4.0f,
                   problem.batch, &stats);
      EXPECT_EQ(predicted, stats.macs) << "seed " << seed;
    }
  }
  // Empty subset and empty input both price to zero.
  const RandomProblem problem = RandomProblem::Make(9, 16, 4, 2, 0.5);
  EXPECT_EQ(CountLayerMacs(problem.weights, {}, problem.Provider()), 0.0);
  EXPECT_EQ(CountLayerMacs(problem.weights, {0, 1},
                           [](int32_t) -> const SparseVector* {
                             return nullptr;
                           }),
            0.0);
}

TEST(LayerForward, ConcurrentCallsMatchSerialByteForByte) {
  // The kernel's accumulator panel and epoch-stamped touched tracking are
  // thread_local: concurrent calls from a compute pool must neither race
  // nor perturb results. Each thread replays problems a serial pass
  // already solved and demands identical ActivationMaps.
  constexpr int kProblems = 8;
  constexpr int kRepeats = 4;
  std::vector<RandomProblem> problems;
  std::vector<ActivationMap> serial(kProblems);
  std::vector<LayerForwardStats> serial_stats(kProblems);
  for (int i = 0; i < kProblems; ++i) {
    problems.push_back(
        RandomProblem::Make(100 + i, 128, 16, 8, 0.2));
  }
  for (int i = 0; i < kProblems; ++i) {
    serial[i] = LayerForwardAll(problems[i].weights, problems[i].Provider(),
                                -0.25f, 4.0f, problems[i].batch,
                                &serial_stats[i]);
  }
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kProblems, 0);
  for (int i = 0; i < kProblems; ++i) {
    threads.emplace_back([&, i]() {
      for (int r = 0; r < kRepeats; ++r) {
        LayerForwardStats stats;
        const ActivationMap out = LayerForwardAll(
            problems[i].weights, problems[i].Provider(), -0.25f, 4.0f,
            problems[i].batch, &stats);
        if (out != serial[i] || stats.macs != serial_stats[i].macs ||
            stats.output_nnz != serial_stats[i].output_nnz) {
          ++mismatches[i];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kProblems; ++i) {
    EXPECT_EQ(mismatches[i], 0) << "problem " << i;
  }
}

}  // namespace
}  // namespace fsd::linalg
