#include <gtest/gtest.h>

#include "model/input_gen.h"
#include "model/reference.h"
#include "model/sparse_dnn.h"

namespace fsd::model {
namespace {

TEST(SparseDnnGenerator, GraphChallengeDegreeInvariant) {
  SparseDnnConfig config;
  config.neurons = 512;
  config.layers = 6;
  auto dnn = GenerateSparseDnn(config);
  ASSERT_TRUE(dnn.ok());
  ASSERT_EQ(dnn->weights.size(), 6u);
  for (const auto& w : dnn->weights) {
    EXPECT_EQ(w.rows(), 512);
    EXPECT_EQ(w.cols(), 512);
    for (int32_t i = 0; i < w.rows(); ++i) {
      EXPECT_EQ(w.RowNnz(i), 32) << "row " << i;
    }
  }
  EXPECT_EQ(dnn->TotalNnz(), 6 * 512 * 32);
}

TEST(SparseDnnGenerator, DeterministicForSeed) {
  SparseDnnConfig config;
  config.neurons = 256;
  config.layers = 3;
  auto a = GenerateSparseDnn(config);
  auto b = GenerateSparseDnn(config);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(a->weights[k].col_idx(), b->weights[k].col_idx());
    EXPECT_EQ(a->weights[k].values(), b->weights[k].values());
  }
  config.seed += 1;
  auto c = GenerateSparseDnn(config);
  EXPECT_NE(a->weights[0].col_idx(), c->weights[0].col_idx());
}

TEST(SparseDnnGenerator, LocalityStructure) {
  SparseDnnConfig config;
  config.neurons = 2048;
  config.layers = 1;
  config.window = 48;
  auto dnn = GenerateSparseDnn(config);
  ASSERT_TRUE(dnn.ok());
  // Most links should be near the diagonal (mod wrap-around).
  int64_t local = 0, total = 0;
  const auto& w = dnn->weights[0];
  for (int32_t i = 0; i < w.rows(); ++i) {
    w.ForEachInRow(i, [&](int32_t j, float) {
      int32_t d = std::abs(j - i);
      d = std::min(d, w.cols() - d);
      if (d <= config.window) ++local;
      ++total;
    });
  }
  EXPECT_GT(static_cast<double>(local) / total, 0.5);
  EXPECT_LT(static_cast<double>(local) / total, 0.95);  // long links exist
}

TEST(SparseDnnGenerator, ValidatesConfig) {
  SparseDnnConfig config;
  config.neurons = 4;
  EXPECT_FALSE(GenerateSparseDnn(config).ok());
  config.neurons = 64;
  config.nnz_per_row = 65;
  EXPECT_FALSE(GenerateSparseDnn(config).ok());
  config.nnz_per_row = 32;
  config.bias = 0.5f;  // positive bias breaks the sparse kernel contract
  EXPECT_FALSE(GenerateSparseDnn(config).ok());
  config.bias = SparseDnnConfig::kAutoBias;
  config.long_range_fraction = 1.5;
  EXPECT_FALSE(GenerateSparseDnn(config).ok());
}

TEST(SparseDnnGenerator, DefaultBiasSchedule) {
  // Per-N schedule (re-calibrated Graph Challenge ladder): magnitude grows
  // with N, and all values are strictly negative.
  EXPECT_FLOAT_EQ(DefaultBias(256), -0.08f);
  EXPECT_FLOAT_EQ(DefaultBias(1024), -0.10f);
  EXPECT_FLOAT_EQ(DefaultBias(4096), -0.10f);
  EXPECT_FLOAT_EQ(DefaultBias(16384), -0.12f);
  EXPECT_FLOAT_EQ(DefaultBias(65536), -0.12f);
  EXPECT_LE(DefaultBias(1024), DefaultBias(256));
  EXPECT_LE(DefaultBias(65536), DefaultBias(1024));
}

TEST(InputGenerator, DensityAndShape) {
  InputConfig config;
  config.neurons = 1024;
  config.batch = 32;
  config.density = 0.2;
  auto input = GenerateInputBatch(config);
  ASSERT_TRUE(input.ok());
  int64_t nnz = 0;
  for (const auto& [row, vec] : *input) {
    EXPECT_GE(row, 0);
    EXPECT_LT(row, 1024);
    EXPECT_EQ(vec.dim, 32);
    for (size_t j = 0; j + 1 < vec.idx.size(); ++j) {
      EXPECT_LT(vec.idx[j], vec.idx[j + 1]);  // sorted, unique
    }
    for (float v : vec.val) EXPECT_EQ(v, 1.0f);
    nnz += static_cast<int64_t>(vec.nnz());
  }
  const double density =
      static_cast<double>(nnz) / (1024.0 * 32.0);
  EXPECT_GT(density, 0.08);
  EXPECT_LT(density, 0.30);
}

TEST(InputGenerator, Deterministic) {
  InputConfig config;
  config.neurons = 256;
  config.batch = 8;
  auto a = GenerateInputBatch(config);
  auto b = GenerateInputBatch(config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->size(), b->size());
  for (const auto& [row, vec] : *a) {
    EXPECT_EQ(vec, b->at(row));
  }
}

TEST(ReferenceInference, ActivationsSurviveDeepNetworks) {
  // The core calibration property: with default weights/bias, activation
  // density must stabilize mid-range across many layers — neither dying
  // out nor saturating (matches Graph Challenge behaviour).
  SparseDnnConfig config;
  config.neurons = 1024;
  config.layers = 60;
  auto dnn = GenerateSparseDnn(config);
  ASSERT_TRUE(dnn.ok());
  InputConfig input_config;
  input_config.neurons = 1024;
  input_config.batch = 16;
  auto input = GenerateInputBatch(input_config);
  ASSERT_TRUE(input.ok());

  ReferenceStats stats;
  auto out = ReferenceInference(*dnn, *input, &stats);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(stats.rows_per_layer.size(), 60u);
  // Every layer keeps a live population of neurons (no die-out), and the
  // activation matrix never degenerates to a handful of values.
  for (size_t k = 0; k < stats.rows_per_layer.size(); ++k) {
    EXPECT_GT(stats.rows_per_layer[k], 1024 / 10) << "layer " << k;
    EXPECT_LE(stats.rows_per_layer[k], 1024) << "layer " << k;
    EXPECT_GT(stats.nnz_per_layer[k], 1024 * 16 / 100) << "layer " << k;
  }
  EXPECT_FALSE(out->empty());
  EXPECT_GT(stats.total_macs, 0.0);
}

TEST(ReferenceInference, PerLayerCallbackObservesEveryLayer) {
  SparseDnnConfig config;
  config.neurons = 128;
  config.layers = 5;
  auto dnn = GenerateSparseDnn(config);
  ASSERT_TRUE(dnn.ok());
  InputConfig ic;
  ic.neurons = 128;
  ic.batch = 4;
  auto input = GenerateInputBatch(ic);
  int32_t calls = 0;
  auto out = ReferenceInference(
      *dnn, *input, nullptr,
      [&](int32_t k, const linalg::ActivationMap&) { EXPECT_EQ(k, calls++); });
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(calls, 5);
}

TEST(ReferenceInference, RejectsEmptyInput) {
  SparseDnnConfig config;
  config.neurons = 128;
  config.layers = 2;
  auto dnn = GenerateSparseDnn(config);
  linalg::ActivationMap empty;
  EXPECT_FALSE(ReferenceInference(*dnn, empty).ok());
}

TEST(ReferenceInference, SampleScores) {
  linalg::ActivationMap final_layer;
  linalg::SparseVector a;
  a.dim = 3;
  a.idx = {0, 2};
  a.val = {1.0f, 2.0f};
  final_layer.emplace(5, a);
  linalg::SparseVector b;
  b.dim = 3;
  b.idx = {2};
  b.val = {0.5f};
  final_layer.emplace(9, b);
  const std::vector<double> scores = SampleScores(final_layer, 3);
  EXPECT_DOUBLE_EQ(scores[0], 1.0);
  EXPECT_DOUBLE_EQ(scores[1], 0.0);
  EXPECT_DOUBLE_EQ(scores[2], 2.5);
}

TEST(SparseDnn, WeightBytesTracksNnz) {
  SparseDnnConfig config;
  config.neurons = 256;
  config.layers = 4;
  auto dnn = GenerateSparseDnn(config);
  ASSERT_TRUE(dnn.ok());
  EXPECT_EQ(dnn->WeightBytes(),
            static_cast<uint64_t>(dnn->TotalNnz()) * 8 +
                4ull * (256 + 1) * 8);
}

}  // namespace
}  // namespace fsd::model
