// Scheduler-policy unit tests: Admission / QueuePolicy / Batcher decided
// against synthetic arrival traces as pure logic — no simulation, no
// worker trees. Covers EDF ordering, slack-triggered batch flushing,
// shed-by-priority victim selection, depth/wait-bound rejection, the
// dispatch-gate slot invariant, and per-seed determinism of the decision
// sequence.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "core/serving.h"

namespace fsd::core {
namespace {

SchedQuery Q(uint64_t id, double arrival_s, double deadline_s = kNoDeadline,
             int32_t priority = 0) {
  SchedQuery q;
  q.query_id = id;
  q.arrival_s = arrival_s;
  q.deadline_s = deadline_s;
  q.priority = priority;
  q.cols = 16;
  return q;
}

std::vector<uint64_t> Ids(const std::vector<SchedQuery>& queue) {
  std::vector<uint64_t> ids;
  for (const SchedQuery& q : queue) ids.push_back(q.query_id);
  return ids;
}

TEST(QueuePolicyTest, FifoOrdersByArrivalThenId) {
  auto fifo = MakeQueuePolicy(QueueDiscipline::kFifo);
  std::vector<SchedQuery> queue{Q(3, 2.0), Q(1, 0.5), Q(2, 0.5), Q(4, 1.0)};
  fifo->Order(&queue);
  EXPECT_EQ(Ids(queue), (std::vector<uint64_t>{1, 2, 4, 3}));
}

TEST(QueuePolicyTest, EdfOrdersByDeadlineWithinPriorityClass) {
  auto edf = MakeQueuePolicy(QueueDiscipline::kEdf);
  std::vector<SchedQuery> queue{
      Q(1, 0.0, /*deadline_s=*/9.0),
      Q(2, 1.0, /*deadline_s=*/4.0),
      Q(3, 2.0),  // no deadline: sorts after every deadline-carrying peer
      Q(4, 3.0, /*deadline_s=*/6.0),
      Q(5, 4.0, /*deadline_s=*/20.0, /*priority=*/1),  // outranks them all
  };
  edf->Order(&queue);
  EXPECT_EQ(Ids(queue), (std::vector<uint64_t>{5, 2, 4, 1, 3}));
}

TEST(QueuePolicyTest, EdfBreaksDeadlineTiesByArrival) {
  auto edf = MakeQueuePolicy(QueueDiscipline::kEdf);
  std::vector<SchedQuery> queue{Q(2, 1.0, 5.0), Q(1, 0.0, 5.0)};
  edf->Order(&queue);
  EXPECT_EQ(Ids(queue), (std::vector<uint64_t>{1, 2}));
}

TEST(QueuePolicyTest, ShedVictimIsLowestPriorityLatestDeadline) {
  auto edf = MakeQueuePolicy(QueueDiscipline::kEdf);
  const std::vector<SchedQuery> queue{
      Q(1, 0.0, 5.0, /*priority=*/1),
      Q(2, 1.0, 3.0, /*priority=*/0),
      Q(3, 2.0, 8.0, /*priority=*/0),  // lowest class, latest deadline
      Q(4, 3.0, 4.0, /*priority=*/2),
  };
  EXPECT_EQ(queue[edf->ShedVictim(queue)].query_id, 3u);
  // Among equals, the latest arrival yields first.
  const std::vector<SchedQuery> ties{Q(1, 0.0), Q(2, 1.0), Q(3, 0.5)};
  EXPECT_EQ(ties[edf->ShedVictim(ties)].query_id, 2u);
}

TEST(BatchPolicyTest, NoDeadlineMeansFixedWindow) {
  auto batcher = MakeDeadlineBatchPolicy();
  const std::vector<SchedQuery> members{Q(1, 0.0), Q(2, 0.01)};
  EXPECT_DOUBLE_EQ(
      batcher->FlushIn(members, /*now_s=*/0.02, /*window_s=*/0.5,
                       /*est_exec_s=*/1.0),
      0.5);
}

TEST(BatchPolicyTest, SlackTriggeredFlushUsesOldestMemberDeadline) {
  auto batcher = MakeDeadlineBatchPolicy();
  // Member 1 must finish by t=2.0 and execution is predicted at 1.0s: the
  // batch may wait until its safety-margined slack
  // (2.0 - 0.1 - kSlackSafetyFactor * 1.0) runs out, even though the
  // window would allow 5s.
  const std::vector<SchedQuery> members{Q(1, 0.0, /*deadline_s=*/2.0),
                                        Q(2, 0.05, /*deadline_s=*/9.0)};
  EXPECT_NEAR(batcher->FlushIn(members, /*now_s=*/0.1, /*window_s=*/5.0,
                               /*est_exec_s=*/1.0),
              1.9 - kSlackSafetyFactor, 1e-12);
  // Slack already exhausted: flush immediately, never negative.
  EXPECT_DOUBLE_EQ(batcher->FlushIn(members, /*now_s=*/1.5, /*window_s=*/5.0,
                                    /*est_exec_s=*/1.0),
                   0.0);
  // Ample slack: the window still caps the wait.
  EXPECT_DOUBLE_EQ(batcher->FlushIn(members, /*now_s=*/0.1, /*window_s=*/0.3,
                                    /*est_exec_s=*/0.01),
                   0.3);
}

LoadSnapshot Load(int32_t queued, double sustainable_qps,
                  int32_t max_concurrent_runs = 2) {
  LoadSnapshot load;
  load.queued = queued;
  load.max_concurrent_runs = max_concurrent_runs;
  load.sustainable_qps = sustainable_qps;
  return load;
}

TEST(AdmissionTest, AdmitAllNeverRejects) {
  auto admit_all = MakeAdmitAll();
  const AdmissionDecision decision =
      admit_all->Decide(Q(1, 0.0), Load(1 << 20, 0.001), {});
  EXPECT_EQ(decision.action, AdmissionDecision::Action::kAdmit);
}

TEST(AdmissionTest, DepthBoundRejectsWithTypedReason) {
  auto admission = MakeDepthBoundAdmission(/*max_queue_depth=*/2,
                                           /*max_queue_wait_s=*/-1.0,
                                           ShedPolicy::kRejectNew);
  const std::vector<SchedQuery> queue{Q(1, 0.0), Q(2, 0.1)};
  EXPECT_EQ(admission->Decide(Q(3, 0.2), Load(1, 10.0), {Q(1, 0.0)}).action,
            AdmissionDecision::Action::kAdmit);
  const AdmissionDecision rejected =
      admission->Decide(Q(3, 0.2), Load(2, 10.0), queue);
  EXPECT_EQ(rejected.action, AdmissionDecision::Action::kReject);
  EXPECT_NE(rejected.reason.find("depth"), std::string::npos);
}

TEST(AdmissionTest, WaitBoundRejectsOnPredictedWait) {
  auto admission = MakeDepthBoundAdmission(/*max_queue_depth=*/0,
                                           /*max_queue_wait_s=*/1.0,
                                           ShedPolicy::kRejectNew);
  // An empty queue never trips the wait bound, whatever the rate.
  EXPECT_EQ(admission->Decide(Q(9, 0.0), Load(0, 0.01), {}).action,
            AdmissionDecision::Action::kAdmit);
  // 4 ahead at 10 qps -> predicted wait 0.4s: fine.
  EXPECT_EQ(admission->Decide(Q(9, 0.0), Load(4, 10.0), {}).action,
            AdmissionDecision::Action::kAdmit);
  // 20 ahead at 10 qps -> predicted wait 2s: rejected.
  const AdmissionDecision rejected =
      admission->Decide(Q(9, 0.0), Load(20, 10.0), {});
  EXPECT_EQ(rejected.action, AdmissionDecision::Action::kReject);
  EXPECT_NE(rejected.reason.find("wait"), std::string::npos);
  // An unbounded dispatcher sustains any rate: never rejected on wait.
  EXPECT_EQ(admission
                ->Decide(Q(9, 0.0),
                         Load(1 << 20,
                              std::numeric_limits<double>::infinity(),
                              /*max_concurrent_runs=*/0),
                         {})
                .action,
            AdmissionDecision::Action::kAdmit);
}

TEST(AdmissionTest, ShedLowestPriorityMakesRoomForOutrankingArrival) {
  auto admission = MakeDepthBoundAdmission(/*max_queue_depth=*/2,
                                           /*max_queue_wait_s=*/-1.0,
                                           ShedPolicy::kShedLowestPriority);
  const std::vector<SchedQuery> queue{Q(1, 0.0, 5.0, /*priority=*/0),
                                      Q(2, 0.1, 9.0, /*priority=*/0)};
  // Higher-priority arrival: the lowest-priority, latest-deadline member
  // yields.
  const AdmissionDecision shed =
      admission->Decide(Q(3, 0.2, 4.0, /*priority=*/1), Load(2, 10.0), queue);
  EXPECT_EQ(shed.action, AdmissionDecision::Action::kShedVictim);
  EXPECT_EQ(shed.victim_query_id, 2u);
  EXPECT_FALSE(shed.reason.empty());
  // Equal priority never sheds: the arrival is rejected instead.
  EXPECT_EQ(admission->Decide(Q(3, 0.2, 4.0, /*priority=*/0), Load(2, 10.0),
                              queue)
                .action,
            AdmissionDecision::Action::kReject);
}

TEST(AdmissionTest, DecisionSequenceIsDeterministicPerSeed) {
  // A synthetic serving loop over a Poisson trace: arrivals enqueue, the
  // "fleet" dequeues at a fixed service rate. The admission decision
  // sequence must be a pure function of the trace (identical per seed).
  auto run_trace = [](uint64_t seed) {
    auto admission = MakeDepthBoundAdmission(/*max_queue_depth=*/3,
                                             /*max_queue_wait_s=*/-1.0,
                                             ShedPolicy::kRejectNew);
    const std::vector<double> arrivals =
        PoissonArrivals(/*rate_qps=*/8.0, /*count=*/64, seed);
    constexpr double kServiceRateQps = 4.0;
    std::vector<SchedQuery> queue;
    std::vector<int> decisions;
    double drained_until = 0.0;
    for (size_t i = 0; i < arrivals.size(); ++i) {
      // Dequeue whatever the service rate finished by now.
      while (!queue.empty() &&
             drained_until + 1.0 / kServiceRateQps <= arrivals[i]) {
        drained_until += 1.0 / kServiceRateQps;
        queue.erase(queue.begin());
      }
      if (drained_until < arrivals[i] && queue.empty()) {
        drained_until = arrivals[i];
      }
      const SchedQuery arrival = Q(i, arrivals[i]);
      LoadSnapshot load;
      load.now_s = arrivals[i];
      load.queued = static_cast<int32_t>(queue.size());
      load.max_concurrent_runs = 1;
      load.sustainable_qps = kServiceRateQps;
      const AdmissionDecision decision =
          admission->Decide(arrival, load, queue);
      decisions.push_back(static_cast<int>(decision.action));
      if (decision.action == AdmissionDecision::Action::kAdmit) {
        queue.push_back(arrival);
      }
    }
    return decisions;
  };
  const auto a = run_trace(7);
  EXPECT_EQ(a, run_trace(7));  // same seed, same decisions — always
  // The trace genuinely exercised both outcomes.
  EXPECT_NE(std::count(a.begin(), a.end(),
                       static_cast<int>(AdmissionDecision::Action::kReject)),
            0);
  EXPECT_NE(std::count(a.begin(), a.end(),
                       static_cast<int>(AdmissionDecision::Action::kAdmit)),
            0);
}

TEST(AdmissionTest, DegenerateThroughputSnapshotsNeverDivideByZero) {
  // First-arrival regression: before any run completes the runtime's EWMAs
  // are unseeded, so the snapshot can carry est_run_s = 0 and a
  // sustainable_qps of 0 or +inf. The wait bound must degrade to "no
  // prediction" (admit on depth alone), never divide by zero or reject on
  // a NaN/inf wait.
  auto admission = MakeDepthBoundAdmission(/*max_queue_depth=*/8,
                                           /*max_queue_wait_s=*/0.5,
                                           ShedPolicy::kRejectNew);
  for (const double qps :
       {0.0, std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity()}) {
    LoadSnapshot load = Load(/*queued=*/4, qps);
    load.est_run_s = 0.0;
    load.ewma_service_rate_qps = 0.0;
    const AdmissionDecision decision = admission->Decide(Q(1, 0.0), load, {});
    EXPECT_EQ(decision.action, AdmissionDecision::Action::kAdmit)
        << "sustainable_qps=" << qps << ": " << decision.reason;
  }
  // The depth bound still applies without a throughput estimate.
  EXPECT_EQ(admission->Decide(Q(1, 0.0), Load(8, 0.0), {Q(2, 0.0)}).action,
            AdmissionDecision::Action::kReject);
}

PrewarmSnapshot Warm(double rate_qps, double est_run_s, int32_t workers,
                     int32_t warm, int32_t in_flight = 0,
                     int32_t pending = 0) {
  PrewarmSnapshot s;
  s.arrival_rate_qps = rate_qps;
  s.est_run_s = est_run_s;
  s.workers_per_run = workers;
  s.warm_instances = warm;
  s.in_flight_runs = in_flight;
  s.pending_prewarms = pending;
  s.est_cost_per_instance = 0.001;
  s.budget_remaining = 1.0;
  return s;
}

TEST(PreWarmPolicyTest, RatePolicyCoversLittlesLawDeficit) {
  auto policy = MakeRatePreWarmPolicy();
  EXPECT_EQ(policy->name(), "rate");
  // 2 qps x 1.5s service = 3 concurrent trees x 4 workers = 12 instances;
  // 5 warm -> 7 to pre-warm.
  EXPECT_EQ(policy->Decide(Warm(2.0, 1.5, 4, 5)).instances, 7);
  // In-flight trees and pending pre-warms count as supply.
  EXPECT_EQ(policy->Decide(Warm(2.0, 1.5, 4, 5, /*in_flight=*/1,
                                /*pending=*/3))
                .instances,
            0);
  // Supply already covers demand: idle, with a reason.
  const PrewarmDecision covered = policy->Decide(Warm(2.0, 1.5, 4, 12));
  EXPECT_EQ(covered.instances, 0);
  EXPECT_FALSE(covered.reason.empty());
}

TEST(PreWarmPolicyTest, RatePolicyIgnoresDegenerateSignals) {
  auto policy = MakeRatePreWarmPolicy();
  // Unseeded rate / run-time estimate, zero-size trees, non-finite rate:
  // no spend, ever — the policy can only act on a measured signal.
  EXPECT_EQ(policy->Decide(Warm(0.0, 1.5, 4, 0)).instances, 0);
  EXPECT_EQ(policy->Decide(Warm(2.0, 0.0, 4, 0)).instances, 0);
  EXPECT_EQ(policy->Decide(Warm(2.0, 1.5, 0, 0)).instances, 0);
  EXPECT_EQ(policy
                ->Decide(Warm(std::numeric_limits<double>::infinity(), 1.5,
                              4, 0))
                .instances,
            0);
}

TEST(PreWarmPolicyTest, RatePolicyRespectsBudget) {
  auto policy = MakeRatePreWarmPolicy();
  PrewarmSnapshot s = Warm(2.0, 1.5, 4, 0);  // deficit 12
  s.est_cost_per_instance = 0.01;
  s.budget_remaining = 0.055;  // affords 5
  EXPECT_EQ(policy->Decide(s).instances, 5);
  s.budget_remaining = 0.001;  // affords none
  const PrewarmDecision broke = policy->Decide(s);
  EXPECT_EQ(broke.instances, 0);
  EXPECT_NE(broke.reason.find("budget"), std::string::npos);
  // No cost estimate: the deficit is uncapped (the runtime re-checks the
  // hard budget per fired instance anyway).
  s.est_cost_per_instance = 0.0;
  EXPECT_EQ(policy->Decide(s).instances, 12);
}

TEST(DispatchGateTest, SlotAccountingIsExact) {
  DispatchGate gate(2);
  EXPECT_TRUE(gate.bounded());
  EXPECT_TRUE(gate.TryAcquire());
  EXPECT_TRUE(gate.TryAcquire());
  EXPECT_FALSE(gate.TryAcquire());
  EXPECT_EQ(gate.in_flight(), 2);
  gate.Release();
  EXPECT_EQ(gate.in_flight(), 1);
  EXPECT_TRUE(gate.TryAcquire());
  EXPECT_FALSE(gate.TryAcquire());

  DispatchGate unbounded(0);
  EXPECT_FALSE(unbounded.bounded());
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(unbounded.TryAcquire());
}

TEST(SchedulerNames, PoliciesAndEnumsAreNamed) {
  EXPECT_EQ(MakeAdmitAll()->name(), "admit-all");
  EXPECT_EQ(MakeDepthBoundAdmission(1, -1.0, ShedPolicy::kRejectNew)->name(),
            "depth-bound");
  EXPECT_EQ(MakeQueuePolicy(QueueDiscipline::kFifo)->name(), "fifo");
  EXPECT_EQ(MakeQueuePolicy(QueueDiscipline::kEdf)->name(), "edf");
  EXPECT_EQ(MakeDeadlineBatchPolicy()->name(), "deadline-slack");
  EXPECT_EQ(ShedPolicyName(ShedPolicy::kShedLowestPriority),
            "shed-lowest-priority");
  EXPECT_EQ(QueueDisciplineName(QueueDiscipline::kEdf), "edf");
  EXPECT_EQ(QueryDispositionName(QueryDisposition::kRejected), "rejected");
  EXPECT_EQ(QueryDispositionName(QueryDisposition::kShed), "shed");
}

}  // namespace
}  // namespace fsd::core
