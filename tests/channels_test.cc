// Direct unit tests of the two communication channels, below the worker
// layer: chunking, publish packing, empty-send markers, cross-phase
// stashing, and the object channel's .nul/redundant-read optimizations.
#include <gtest/gtest.h>

#include "cloud/cloud.h"
#include "core/object_channel.h"
#include "core/queue_channel.h"
#include "common/strings.h"

namespace fsd::core {
namespace {

linalg::ActivationMap MakeRows(std::vector<int32_t> ids, int32_t dim,
                               int32_t nnz) {
  linalg::ActivationMap out;
  for (int32_t id : ids) {
    linalg::SparseVector vec;
    vec.dim = dim;
    for (int32_t j = 0; j < nnz; ++j) {
      vec.idx.push_back(j);
      vec.val.push_back(static_cast<float>(id) + 0.25f * j);
    }
    out.emplace(id, std::move(vec));
  }
  return out;
}

/// Harness: runs `body` inside FaaS handlers (one per worker id), giving
/// each a WorkerEnv bound to a fresh channel instance.
class ChannelTest : public ::testing::Test {
 protected:
  ChannelTest() : cloud_(&sim_) {
    options_.num_workers = 4;
    options_.poll_wait_s = 2.0;
    options_.object_scan_interval_s = 0.01;
  }

  template <typename Channel>
  void RunWorkers(
      std::vector<std::function<void(WorkerEnv*, Channel*)>> bodies) {
    FSD_CHECK_OK(Channel::Provision(&cloud_, options_));
    for (size_t id = 0; id < bodies.size(); ++id) {
      metrics_.emplace_back(std::make_unique<WorkerMetrics>());
    }
    for (size_t id = 0; id < bodies.size(); ++id) {
      cloud::FaasFunctionConfig fn;
      fn.name = fsd::StrFormat("w%zu", id);
      fn.memory_mb = 2048;
      fn.timeout_s = 600.0;
      auto body = bodies[id];
      WorkerMetrics* metrics = metrics_[id].get();
      const int32_t worker_id = static_cast<int32_t>(id);
      fn.handler = [this, body, metrics, worker_id](cloud::FaasContext* ctx) {
        Channel channel;
        WorkerEnv env;
        env.faas = ctx;
        env.cloud = &cloud_;
        env.options = &options_;
        env.metrics = metrics;
        env.worker_id = worker_id;
        body(&env, &channel);
        ctx->set_result(Status::OK());
      };
      FSD_CHECK_OK(cloud_.faas().RegisterFunction(fn));
    }
    sim_.AddProcess("kickoff", [this, n = bodies.size()]() {
      for (size_t id = 0; id < n; ++id) {
        cloud_.faas().InvokeAsync(fsd::StrFormat("w%zu", id), {});
      }
    });
    sim_.Run();
  }

  sim::Simulation sim_;
  cloud::CloudEnv cloud_;
  FsdOptions options_;
  std::vector<std::unique_ptr<WorkerMetrics>> metrics_;
};

TEST_F(ChannelTest, QueueRoundtripBetweenWorkers) {
  const linalg::ActivationMap rows = MakeRows({3, 7, 11}, 16, 4);
  const std::vector<int32_t> ids = {3, 7, 11};
  linalg::ActivationMap received;
  RunWorkers<QueueChannel>({
      [&](WorkerEnv* env, QueueChannel* channel) {
        std::vector<SendSpec> sends{{1, &ids}};
        ASSERT_TRUE(channel->SendPhase(env, 0, rows, sends).ok());
      },
      [&](WorkerEnv* env, QueueChannel* channel) {
        auto got = channel->ReceivePhase(env, 0, {0});
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        received = std::move(*got);
      },
  });
  ASSERT_EQ(received.size(), 3u);
  for (int32_t id : ids) EXPECT_EQ(received.at(id), rows.at(id));
}

TEST_F(ChannelTest, QueueChunksLargePayloads) {
  options_.max_message_bytes = 512;  // force many chunks
  std::vector<int32_t> ids;
  for (int32_t i = 0; i < 40; ++i) ids.push_back(i);
  const linalg::ActivationMap rows = MakeRows(ids, 64, 48);
  linalg::ActivationMap received;
  RunWorkers<QueueChannel>({
      [&](WorkerEnv* env, QueueChannel* channel) {
        std::vector<SendSpec> sends{{1, &ids}};
        ASSERT_TRUE(channel->SendPhase(env, 0, rows, sends).ok());
        EXPECT_GT(env->metrics->Layer(0).send_chunks, 5);
      },
      [&](WorkerEnv* env, QueueChannel* channel) {
        auto got = channel->ReceivePhase(env, 0, {0});
        ASSERT_TRUE(got.ok());
        received = std::move(*got);
      },
  });
  ASSERT_EQ(received.size(), ids.size());
  for (int32_t id : ids) EXPECT_EQ(received.at(id), rows.at(id));
}

TEST_F(ChannelTest, QueueEmptySendDeliversMarker) {
  const linalg::ActivationMap empty;
  static const std::vector<int32_t> ids = {5, 6};
  bool receiver_done = false;
  RunWorkers<QueueChannel>({
      [&](WorkerEnv* env, QueueChannel* channel) {
        std::vector<SendSpec> sends{{1, &ids}};
        ASSERT_TRUE(channel->SendPhase(env, 0, empty, sends).ok());
      },
      [&](WorkerEnv* env, QueueChannel* channel) {
        // Must terminate (marker received) rather than poll forever.
        auto got = channel->ReceivePhase(env, 0, {0});
        ASSERT_TRUE(got.ok());
        EXPECT_TRUE(got->empty());
        receiver_done = true;
      },
  });
  EXPECT_TRUE(receiver_done);
}

TEST_F(ChannelTest, QueueStashesOutOfPhaseMessages) {
  const linalg::ActivationMap rows0 = MakeRows({1}, 8, 3);
  const linalg::ActivationMap rows1 = MakeRows({2}, 8, 3);
  static const std::vector<int32_t> ids0 = {1};
  static const std::vector<int32_t> ids1 = {2};
  linalg::ActivationMap got0, got1;
  RunWorkers<QueueChannel>({
      [&](WorkerEnv* env, QueueChannel* channel) {
        // Send BOTH phases before the receiver starts phase 0: the phase-1
        // message lands mid-poll and must be stashed, not lost.
        std::vector<SendSpec> s0{{1, &ids0}};
        std::vector<SendSpec> s1{{1, &ids1}};
        ASSERT_TRUE(channel->SendPhase(env, 0, rows0, s0).ok());
        ASSERT_TRUE(channel->SendPhase(env, 1, rows1, s1).ok());
      },
      [&](WorkerEnv* env, QueueChannel* channel) {
        env->faas->SleepFor(1.0).ok();  // let both phases arrive
        auto r0 = channel->ReceivePhase(env, 0, {0});
        ASSERT_TRUE(r0.ok());
        got0 = std::move(*r0);
        auto r1 = channel->ReceivePhase(env, 1, {0});
        ASSERT_TRUE(r1.ok());
        got1 = std::move(*r1);
      },
  });
  EXPECT_TRUE(got0.contains(1));
  EXPECT_TRUE(got1.contains(2));
}

TEST_F(ChannelTest, QueueGreedyPackingReducesPublishes) {
  // 4 targets x small payloads: greedy packing folds them into one publish
  // batch; disabled packing issues one publish per message.
  auto run = [&](bool packing) {
    int64_t publishes = 0;
    options_.greedy_packing = packing;
    sim::Simulation sim;
    cloud::CloudEnv cloud(&sim);
    FSD_CHECK_OK(QueueChannel::Provision(&cloud, options_));
    WorkerMetrics metrics;
    cloud::FaasFunctionConfig fn;
    fn.name = "sender";
    fn.memory_mb = 2048;
    fn.timeout_s = 60.0;
    const linalg::ActivationMap rows = MakeRows({0}, 8, 2);
    static const std::vector<int32_t> ids = {0};
    fn.handler = [&](cloud::FaasContext* ctx) {
      QueueChannel channel;
      WorkerEnv env;
      env.faas = ctx;
      env.cloud = &cloud;
      env.options = &options_;
      env.metrics = &metrics;
      env.worker_id = 0;
      std::vector<SendSpec> sends{{1, &ids}, {2, &ids}, {3, &ids}};
      FSD_CHECK_OK(channel.SendPhase(&env, 0, rows, sends));
      publishes = metrics.Layer(0).publishes;
      ctx->set_result(Status::OK());
    };
    FSD_CHECK_OK(cloud.faas().RegisterFunction(fn));
    sim.AddProcess("kick", [&]() { cloud.faas().InvokeAsync("sender", {}); });
    sim.Run();
    return publishes;
  };
  EXPECT_EQ(run(true), 1);
  EXPECT_EQ(run(false), 3);
}

TEST_F(ChannelTest, ObjectRoundtripAndNulMarkers) {
  const linalg::ActivationMap rows = MakeRows({4, 9}, 16, 4);
  static const std::vector<int32_t> ids = {4, 9};
  static const std::vector<int32_t> empty_ids = {77};
  linalg::ActivationMap received_data;
  linalg::ActivationMap received_empty;
  RunWorkers<ObjectChannel>({
      [&](WorkerEnv* env, ObjectChannel* channel) {
        std::vector<SendSpec> sends{{2, &ids}};
        ASSERT_TRUE(channel->SendPhase(env, 0, rows, sends).ok());
        EXPECT_EQ(env->metrics->Layer(0).puts_dat, 1);
      },
      [&](WorkerEnv* env, ObjectChannel* channel) {
        // Nothing to send: a 0-byte .nul marker goes out instead.
        std::vector<SendSpec> sends{{2, &empty_ids}};
        linalg::ActivationMap nothing;
        ASSERT_TRUE(channel->SendPhase(env, 0, nothing, sends).ok());
        EXPECT_EQ(env->metrics->Layer(0).puts_nul, 1);
        EXPECT_EQ(env->metrics->Layer(0).puts_dat, 0);
      },
      [&](WorkerEnv* env, ObjectChannel* channel) {
        auto got = channel->ReceivePhase(env, 0, {0, 1});
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        received_data = std::move(*got);
        // Source 1's .nul completed it without a GET.
        EXPECT_EQ(env->metrics->Layer(0).nul_skipped, 1);
        EXPECT_EQ(env->metrics->Layer(0).gets, 1);
      },
  });
  ASSERT_EQ(received_data.size(), 2u);
  EXPECT_EQ(received_data.at(4), rows.at(4));
  (void)received_empty;
}

TEST_F(ChannelTest, ObjectNulDisabledFallsBackToEmptyDat) {
  options_.nul_markers = false;
  static const std::vector<int32_t> empty_ids = {5};
  RunWorkers<ObjectChannel>({
      [&](WorkerEnv* env, ObjectChannel* channel) {
        linalg::ActivationMap nothing;
        std::vector<SendSpec> sends{{1, &empty_ids}};
        ASSERT_TRUE(channel->SendPhase(env, 0, nothing, sends).ok());
        EXPECT_EQ(env->metrics->Layer(0).puts_nul, 0);
        EXPECT_EQ(env->metrics->Layer(0).puts_dat, 1);  // empty .dat
      },
      [&](WorkerEnv* env, ObjectChannel* channel) {
        auto got = channel->ReceivePhase(env, 0, {0});
        ASSERT_TRUE(got.ok());
        EXPECT_TRUE(got->empty());
        // The ablation's cost: an extra GET for an empty file.
        EXPECT_EQ(env->metrics->Layer(0).gets, 1);
        EXPECT_EQ(env->metrics->Layer(0).nul_skipped, 0);
      },
  });
}

TEST_F(ChannelTest, ObjectKeyNamingMatchesPaperScheme) {
  FsdOptions options;
  options.num_buckets = 10;
  EXPECT_EQ(ObjectChannel::BucketName(13, options), "bucket-3");
  EXPECT_EQ(ObjectChannel::ObjectKey(5, 2, 13, false), "5/13/2_13.dat");
  EXPECT_EQ(ObjectChannel::ObjectKey(5, 2, 13, true), "5/13/2_13.nul");
  EXPECT_EQ(QueueChannel::TopicName(13, options), "topic-3");
  EXPECT_EQ(QueueChannel::QueueName(7, options), "queue-7");

  // A channel scope namespaces every resource (per-query isolation in the
  // serving runtime) without changing the paper's shard layout.
  options.channel_scope = "q7-";
  EXPECT_EQ(ObjectChannel::BucketName(13, options), "q7-bucket-3");
  EXPECT_EQ(QueueChannel::TopicName(13, options), "q7-topic-3");
  EXPECT_EQ(QueueChannel::QueueName(7, options), "q7-queue-7");
}

TEST_F(ChannelTest, ObjectScanBackoffBoundsListCalls) {
  // The receiver starts before the sender writes: it must re-scan a few
  // times (bounded by the back-off), not hammer LIST.
  static const std::vector<int32_t> ids = {1};
  const linalg::ActivationMap rows = MakeRows({1}, 8, 2);
  int64_t lists = 0;
  RunWorkers<ObjectChannel>({
      [&](WorkerEnv* env, ObjectChannel* channel) {
        env->faas->SleepFor(0.5).ok();  // write late
        std::vector<SendSpec> sends{{1, &ids}};
        ASSERT_TRUE(channel->SendPhase(env, 0, rows, sends).ok());
      },
      [&](WorkerEnv* env, ObjectChannel* channel) {
        auto got = channel->ReceivePhase(env, 0, {0});
        ASSERT_TRUE(got.ok());
        lists = env->metrics->Layer(0).lists;
      },
  });
  EXPECT_GT(lists, 1);
  // 0.5 s of waiting at a 10 ms scan interval plus LIST latency: well under
  // a hundred scans.
  EXPECT_LT(lists, 100);
}

}  // namespace
}  // namespace fsd::core
