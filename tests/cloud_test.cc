#include <gtest/gtest.h>

#include "cloud/cloud.h"

namespace fsd::cloud {
namespace {

class CloudTest : public ::testing::Test {
 protected:
  sim::Simulation sim_;
  CloudEnv cloud_{&sim_};

  /// Runs `body` inside a simulation process and drives the sim to empty.
  void InProcess(std::function<void()> body) {
    sim_.AddProcess("test", std::move(body));
    sim_.Run();
  }
};

// ---------------------------------------------------------------------------
// Queue service
// ---------------------------------------------------------------------------

TEST_F(CloudTest, QueueDeliverAndLongPollReceive) {
  ASSERT_TRUE(cloud_.queues().CreateQueue("q").ok());
  InProcess([&] {
    QueueMessage msg;
    msg.body = {1, 2, 3};
    msg.attributes["k"] = "v";
    ASSERT_TRUE(cloud_.queues().Deliver("q", msg).ok());
    auto got = cloud_.queues().Receive("q", 10, /*wait_s=*/5.0);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), 1u);
    EXPECT_EQ((*got)[0].body, (Bytes{1, 2, 3}));
    EXPECT_EQ((*got)[0].attributes.at("k"), "v");
  });
}

TEST_F(CloudTest, QueueLongPollBlocksUntilArrival) {
  ASSERT_TRUE(cloud_.queues().CreateQueue("q").ok());
  double received_at = -1.0;
  sim_.AddProcess("consumer", [&] {
    auto got = cloud_.queues().Receive("q", 10, /*wait_s=*/20.0);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->size(), 1u);
    received_at = sim_.Now();
  });
  sim_.AddProcess("producer", [&] {
    sim_.Hold(3.0);
    QueueMessage msg;
    msg.body = {9};
    ASSERT_TRUE(cloud_.queues().Deliver("q", msg).ok());
  });
  sim_.Run();
  EXPECT_GE(received_at, 3.0);
  EXPECT_LT(received_at, 4.0);  // well before the 20 s window closes
}

TEST_F(CloudTest, QueueLongPollTimesOutEmptyHanded) {
  ASSERT_TRUE(cloud_.queues().CreateQueue("q").ok());
  InProcess([&] {
    const double t0 = sim_.Now();
    auto got = cloud_.queues().Receive("q", 10, /*wait_s=*/2.0);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->empty());
    EXPECT_GE(sim_.Now() - t0, 2.0);
  });
}

TEST_F(CloudTest, QueueShortPollCanMissMessages) {
  QueueOptions options;
  options.num_shards = 8;
  options.short_poll_shard_prob = 0.5;
  ASSERT_TRUE(cloud_.queues().CreateQueue("q", options).ok());
  InProcess([&] {
    // One message per backend shard.
    for (int i = 0; i < 8; ++i) {
      QueueMessage msg;
      msg.body = {static_cast<uint8_t>(i)};
      ASSERT_TRUE(cloud_.queues().Deliver("q", msg).ok());
    }
    // A short poll (wait 0) samples a subset of shards: across several
    // polls, at least one must come back with fewer than the visible
    // messages (long polling, by contrast, always visits every shard).
    bool missed_some = false;
    for (int attempt = 0; attempt < 8; ++attempt) {
      auto got = cloud_.queues().Receive("q", 10, /*wait_s=*/0.0);
      ASSERT_TRUE(got.ok());
      if (got->size() < 8) missed_some = true;
      sim_.Hold(60.0);  // let visibility timeouts lapse between polls
    }
    EXPECT_TRUE(missed_some);
    // Nothing was deleted: all 8 messages are still stored.
    EXPECT_EQ(*cloud_.queues().ApproximateDepth("q"), 8u);
    // And a long poll sees every shard.
    auto all = cloud_.queues().Receive("q", 10, /*wait_s=*/1.0);
    ASSERT_TRUE(all.ok());
    EXPECT_EQ(all->size(), 8u);
  });
}

TEST_F(CloudTest, QueueVisibilityTimeoutRedelivers) {
  QueueOptions options;
  options.visibility_timeout_s = 5.0;
  ASSERT_TRUE(cloud_.queues().CreateQueue("q", options).ok());
  InProcess([&] {
    QueueMessage msg;
    msg.body = {42};
    ASSERT_TRUE(cloud_.queues().Deliver("q", msg).ok());
    auto first = cloud_.queues().Receive("q", 10, 1.0);
    ASSERT_EQ(first->size(), 1u);
    // Not deleted: invisible now, redelivered after the timeout.
    auto hidden = cloud_.queues().Receive("q", 10, 1.0);
    EXPECT_TRUE(hidden->empty());
    sim_.Hold(6.0);
    auto again = cloud_.queues().Receive("q", 10, 1.0);
    ASSERT_EQ(again->size(), 1u);
    EXPECT_EQ((*again)[0].id, (*first)[0].id);
  });
}

TEST_F(CloudTest, QueueDeleteRemovesMessages) {
  ASSERT_TRUE(cloud_.queues().CreateQueue("q").ok());
  InProcess([&] {
    QueueMessage msg;
    msg.body = {1};
    ASSERT_TRUE(cloud_.queues().Deliver("q", msg).ok());
    auto got = cloud_.queues().Receive("q", 10, 1.0);
    ASSERT_EQ(got->size(), 1u);
    ASSERT_TRUE(cloud_.queues().DeleteMessages("q", {(*got)[0].id}).ok());
    sim_.Hold(60.0);
    auto after = cloud_.queues().Receive("q", 10, 0.5);
    EXPECT_TRUE(after->empty());
    EXPECT_EQ(*cloud_.queues().ApproximateDepth("q"), 0u);
  });
}

TEST_F(CloudTest, QueueBillsPerApiCall) {
  ASSERT_TRUE(cloud_.queues().CreateQueue("q").ok());
  InProcess([&] {
    const auto& line = cloud_.billing().line(BillingDimension::kQueueApiCall);
    const double before = line.quantity;
    cloud_.queues().Receive("q", 10, 0.0).ok();
    cloud_.queues().Receive("q", 10, 0.0).ok();
    QueueMessage m;
    m.body = {1};
    cloud_.queues().SendMessage("q", m).ok();
    EXPECT_EQ(line.quantity - before, 3.0);
  });
}

TEST_F(CloudTest, QueueValidatesArguments) {
  ASSERT_TRUE(cloud_.queues().CreateQueue("q").ok());
  EXPECT_TRUE(cloud_.queues().CreateQueue("q").code() ==
              StatusCode::kAlreadyExists);
  InProcess([&] {
    EXPECT_FALSE(cloud_.queues().Receive("nope", 10, 0.0).ok());
    EXPECT_FALSE(cloud_.queues().Receive("q", 11, 0.0).ok());
    EXPECT_FALSE(cloud_.queues().Receive("q", 0, 0.0).ok());
    std::vector<uint64_t> too_many(11, 1);
    EXPECT_FALSE(cloud_.queues().DeleteMessages("q", too_many).ok());
  });
}

// ---------------------------------------------------------------------------
// Pub-sub service
// ---------------------------------------------------------------------------

TEST_F(CloudTest, PubSubFilterPolicyRoutes) {
  ASSERT_TRUE(cloud_.pubsub().CreateTopic("t").ok());
  ASSERT_TRUE(cloud_.queues().CreateQueue("qa").ok());
  ASSERT_TRUE(cloud_.queues().CreateQueue("qb").ok());
  FilterPolicy pa, pb;
  pa.equals["target"] = {"a"};
  pb.equals["target"] = {"b"};
  ASSERT_TRUE(cloud_.pubsub().Subscribe("t", "qa", pa).ok());
  ASSERT_TRUE(cloud_.pubsub().Subscribe("t", "qb", pb).ok());
  InProcess([&] {
    QueueMessage to_a, to_b;
    to_a.body = {1};
    to_a.attributes["target"] = "a";
    to_b.body = {2};
    to_b.attributes["target"] = "b";
    auto outcome = cloud_.pubsub().PublishBatch("t", {to_a, to_b});
    ASSERT_TRUE(outcome.status.ok());
    sim_.Hold(2.0);  // let fan-out deliveries land
    auto got_a = cloud_.queues().Receive("qa", 10, 0.5);
    auto got_b = cloud_.queues().Receive("qb", 10, 0.5);
    ASSERT_EQ(got_a->size(), 1u);
    ASSERT_EQ(got_b->size(), 1u);
    EXPECT_EQ((*got_a)[0].body, (Bytes{1}));
    EXPECT_EQ((*got_b)[0].body, (Bytes{2}));
  });
}

TEST_F(CloudTest, PubSubNoMatchDropsMessage) {
  ASSERT_TRUE(cloud_.pubsub().CreateTopic("t").ok());
  ASSERT_TRUE(cloud_.queues().CreateQueue("q").ok());
  FilterPolicy policy;
  policy.equals["target"] = {"x"};
  ASSERT_TRUE(cloud_.pubsub().Subscribe("t", "q", policy).ok());
  InProcess([&] {
    QueueMessage msg;
    msg.body = {1};
    msg.attributes["target"] = "y";  // no subscriber wants this
    ASSERT_TRUE(cloud_.pubsub().PublishBatch("t", {msg}).status.ok());
    sim_.Hold(2.0);
    EXPECT_TRUE(cloud_.queues().Receive("q", 10, 0.2)->empty());
  });
}

TEST_F(CloudTest, PubSubEnforcesBatchLimits) {
  ASSERT_TRUE(cloud_.pubsub().CreateTopic("t").ok());
  InProcess([&] {
    std::vector<QueueMessage> eleven(11);
    for (auto& m : eleven) m.body = {1};
    EXPECT_FALSE(cloud_.pubsub().PublishBatch("t", eleven).status.ok());

    QueueMessage huge;
    huge.body.assign(kMaxPublishBytes + 1, 0);
    EXPECT_TRUE(cloud_.pubsub()
                    .PublishBatch("t", {huge})
                    .status.IsResourceExhausted());
    EXPECT_FALSE(cloud_.pubsub().PublishBatch("t", {}).status.ok());
  });
}

TEST_F(CloudTest, PubSubBillsIn64KiBIncrements) {
  ASSERT_TRUE(cloud_.pubsub().CreateTopic("t").ok());
  InProcess([&] {
    QueueMessage m1, m2;
    m1.body.assign(100 * 1024, 0);  // 100 KiB
    m2.body.assign(120 * 1024, 0);  // 120 KiB; batch ~220 KiB -> 4 chunks
    auto outcome = cloud_.pubsub().PublishBatch("t", {m1, m2});
    ASSERT_TRUE(outcome.status.ok());
    EXPECT_EQ(outcome.billed_chunks, 4u);

    QueueMessage tiny;
    tiny.body = {1};
    EXPECT_EQ(cloud_.pubsub().PublishBatch("t", {tiny}).billed_chunks, 1u);
  });
}

TEST_F(CloudTest, PubSubDeliveryBytesBilled) {
  ASSERT_TRUE(cloud_.pubsub().CreateTopic("t").ok());
  ASSERT_TRUE(cloud_.queues().CreateQueue("q").ok());
  ASSERT_TRUE(cloud_.pubsub().Subscribe("t", "q", FilterPolicy{}).ok());
  InProcess([&] {
    const auto& line =
        cloud_.billing().line(BillingDimension::kPubSubDeliveryByte);
    const double before = line.quantity;
    QueueMessage m;
    m.body.assign(1000, 7);
    ASSERT_TRUE(cloud_.pubsub().PublishBatch("t", {m}).status.ok());
    EXPECT_GE(line.quantity - before, 1000.0);
  });
}

// ---------------------------------------------------------------------------
// Object store
// ---------------------------------------------------------------------------

TEST_F(CloudTest, ObjectPutBecomesVisibleAfterLatency) {
  ASSERT_TRUE(cloud_.objects().CreateBucket("b").ok());
  InProcess([&] {
    auto put = cloud_.objects().Put("b", "k/x.dat", Bytes{1, 2});
    ASSERT_TRUE(put.status.ok());
    // Immediately after the call the upload is still in flight.
    auto listing = cloud_.objects().List("b", "k/");
    // (List holds its own latency, which may or may not pass the PUT's; be
    // generous and only assert eventual visibility.)
    sim_.Hold(5.0);
    listing = cloud_.objects().List("b", "k/");
    ASSERT_TRUE(listing.ok());
    ASSERT_EQ(listing->size(), 1u);
    EXPECT_EQ((*listing)[0].key, "k/x.dat");
    EXPECT_EQ((*listing)[0].size, 2u);
    auto body = cloud_.objects().GetBlocking("b", "k/x.dat");
    ASSERT_TRUE(body.ok());
    EXPECT_EQ(*body, (Bytes{1, 2}));
  });
}

TEST_F(CloudTest, ObjectListRespectsPrefix) {
  ASSERT_TRUE(cloud_.objects().CreateBucket("b").ok());
  InProcess([&] {
    cloud_.objects().Put("b", "12/1/a.dat", Bytes{1});
    cloud_.objects().Put("b", "12/1/b.dat", Bytes{1});
    cloud_.objects().Put("b", "120/1/c.dat", Bytes{1});
    cloud_.objects().Put("b", "2/1/d.dat", Bytes{1});
    sim_.Hold(5.0);
    auto listing = cloud_.objects().List("b", "12/1/");
    ASSERT_TRUE(listing.ok());
    ASSERT_EQ(listing->size(), 2u);  // "120/..." must NOT match "12/"
    EXPECT_EQ((*listing)[0].key, "12/1/a.dat");
    EXPECT_EQ((*listing)[1].key, "12/1/b.dat");
  });
}

TEST_F(CloudTest, ObjectGetMissingFailsButBills) {
  ASSERT_TRUE(cloud_.objects().CreateBucket("b").ok());
  InProcess([&] {
    const auto& line = cloud_.billing().line(BillingDimension::kObjectGet);
    const double before = line.quantity;
    EXPECT_FALSE(cloud_.objects().GetBlocking("b", "nope").ok());
    EXPECT_EQ(line.quantity - before, 1.0);
  });
}

TEST_F(CloudTest, ObjectRequestBilling) {
  ASSERT_TRUE(cloud_.objects().CreateBucket("b").ok());
  InProcess([&] {
    const auto& puts = cloud_.billing().line(BillingDimension::kObjectPut);
    const auto& lists = cloud_.billing().line(BillingDimension::kObjectList);
    const double p0 = puts.quantity, l0 = lists.quantity;
    cloud_.objects().Put("b", "x", Bytes{});
    cloud_.objects().Put("b", "y", Bytes(1024 * 1024, 1));
    sim_.Hold(5.0);
    cloud_.objects().List("b", "").ok();
    EXPECT_EQ(puts.quantity - p0, 2.0);  // size-independent
    EXPECT_EQ(lists.quantity - l0, 1.0);
  });
}

TEST_F(CloudTest, ObjectDeleteRemoves) {
  ASSERT_TRUE(cloud_.objects().CreateBucket("b").ok());
  InProcess([&] {
    cloud_.objects().Put("b", "x", Bytes{1});
    sim_.Hold(5.0);
    ASSERT_TRUE(cloud_.objects().Delete("b", "x").ok());
    EXPECT_TRUE(cloud_.objects().List("b", "")->empty());
  });
}

TEST_F(CloudTest, ObjectRateLimiterAddsQueueingDelay) {
  LatencyConfig latency;
  RateLimiter limiter(10.0);  // 10 rps -> 0.1 s service time
  EXPECT_EQ(limiter.AdmissionDelay(0.0), 0.0);
  // Second arrival at t=0 queues behind the first.
  EXPECT_NEAR(limiter.AdmissionDelay(0.0), 0.1, 1e-9);
  EXPECT_NEAR(limiter.AdmissionDelay(0.0), 0.2, 1e-9);
  // A late arrival sees an idle server.
  EXPECT_EQ(limiter.AdmissionDelay(10.0), 0.0);
}

// ---------------------------------------------------------------------------
// FaaS
// ---------------------------------------------------------------------------

TEST_F(CloudTest, FaasInvokeRunsHandlerAndBills) {
  FaasFunctionConfig fn;
  fn.name = "f";
  fn.memory_mb = 1024;
  fn.timeout_s = 10.0;
  double ran_at = -1.0;
  Bytes seen_payload;
  fn.handler = [&](FaasContext* ctx) {
    ran_at = ctx->sim()->Now();
    seen_payload = ctx->payload();
    ctx->set_result(Status::OK());
  };
  ASSERT_TRUE(cloud_.faas().RegisterFunction(fn).ok());
  InProcess([&] {
    auto outcome = cloud_.faas().InvokeAsync("f", Bytes{5, 6});
    ASSERT_TRUE(outcome.status.ok());
    sim_.WaitSignal(outcome.completion.get());
    auto record = cloud_.faas().completion(outcome.request_id);
    ASSERT_TRUE(record.ok());
    EXPECT_TRUE(record->status.ok());
    EXPECT_TRUE(record->cold_start);  // first invocation is cold
  });
  EXPECT_GT(ran_at, 0.0);  // cold start delay happened
  EXPECT_EQ(seen_payload, (Bytes{5, 6}));
  EXPECT_EQ(
      cloud_.billing().line(BillingDimension::kFaasInvocation).quantity, 1.0);
}

TEST_F(CloudTest, FaasWarmStartReusesInstance) {
  FaasFunctionConfig fn;
  fn.name = "f";
  fn.memory_mb = 512;
  fn.timeout_s = 10.0;
  fn.handler = [](FaasContext* ctx) { ctx->set_result(Status::OK()); };
  ASSERT_TRUE(cloud_.faas().RegisterFunction(fn).ok());
  InProcess([&] {
    auto first = cloud_.faas().InvokeAsync("f", {});
    sim_.WaitSignal(first.completion.get());
    EXPECT_EQ(cloud_.faas().WarmCount("f"), 1);
    auto second = cloud_.faas().InvokeAsync("f", {});
    sim_.WaitSignal(second.completion.get());
    EXPECT_FALSE(cloud_.faas().completion(second.request_id)->cold_start);
  });
}

TEST_F(CloudTest, FaasInstanceStateSurvivesWarmReuse) {
  // Instance-local state is the warm residue real handlers exploit: set by
  // one invocation, visible to the next one reusing the instance warm,
  // gone once the keep-alive reclaims the instance.
  FaasFunctionConfig fn;
  fn.name = "f";
  fn.memory_mb = 512;
  fn.timeout_s = 10.0;
  std::vector<uint64_t> instance_ids;
  std::vector<int> seen_values;
  fn.handler = [&](FaasContext* ctx) {
    instance_ids.push_back(ctx->instance_id());
    auto state = std::static_pointer_cast<int>(ctx->instance_state());
    seen_values.push_back(state == nullptr ? -1 : *state);
    ctx->set_instance_state(std::make_shared<int>(
        static_cast<int>(seen_values.size())));
    ctx->set_result(Status::OK());
  };
  ASSERT_TRUE(cloud_.faas().RegisterFunction(fn).ok());
  InProcess([&] {
    auto first = cloud_.faas().InvokeAsync("f", {});
    sim_.WaitSignal(first.completion.get());
    auto second = cloud_.faas().InvokeAsync("f", {});
    sim_.WaitSignal(second.completion.get());
    // Outlive the keep-alive: the third invocation is cold with no state.
    sim_.Hold(601.0);
    auto third = cloud_.faas().InvokeAsync("f", {});
    sim_.WaitSignal(third.completion.get());
    EXPECT_TRUE(cloud_.faas().completion(third.request_id)->cold_start);
  });
  ASSERT_EQ(seen_values.size(), 3u);
  EXPECT_EQ(seen_values[0], -1);  // cold: fresh environment
  EXPECT_EQ(seen_values[1], 1);   // warm: previous invocation's state
  EXPECT_EQ(seen_values[2], -1);  // reclaimed: state died with the instance
  EXPECT_EQ(instance_ids[0], instance_ids[1]);
  EXPECT_NE(instance_ids[0], instance_ids[2]);
}

TEST_F(CloudTest, FaasConcurrentInvocationsGetDistinctInstances) {
  // Concurrent invocations occupy distinct instances (each with its own
  // instance state); once both are released, a later invocation reuses
  // one of them warm instead of minting a third environment.
  FaasFunctionConfig fn;
  fn.name = "f";
  fn.memory_mb = 512;
  fn.timeout_s = 10.0;
  std::vector<uint64_t> instance_ids;
  fn.handler = [&](FaasContext* ctx) {
    instance_ids.push_back(ctx->instance_id());
    ctx->sim()->Hold(1.0);
    ctx->set_result(Status::OK());
  };
  ASSERT_TRUE(cloud_.faas().RegisterFunction(fn).ok());
  InProcess([&] {
    auto a = cloud_.faas().InvokeAsync("f", {});
    auto b = cloud_.faas().InvokeAsync("f", {});
    sim_.WaitSignal(a.completion.get());
    sim_.WaitSignal(b.completion.get());
    EXPECT_EQ(cloud_.faas().WarmCount("f"), 2);
    auto c = cloud_.faas().InvokeAsync("f", {});
    sim_.WaitSignal(c.completion.get());
    EXPECT_FALSE(cloud_.faas().completion(c.request_id)->cold_start);
  });
  ASSERT_EQ(instance_ids.size(), 3u);
  EXPECT_NE(instance_ids[0], instance_ids[1]);  // overlapped: two instances
  // The third run reused one of the released environments.
  EXPECT_TRUE(instance_ids[2] == instance_ids[0] ||
              instance_ids[2] == instance_ids[1]);
}

TEST_F(CloudTest, FaasDeadlineExceededSurfaces) {
  FaasFunctionConfig fn;
  fn.name = "slow";
  fn.memory_mb = 1769;  // exactly 1 vCPU
  fn.timeout_s = 1.0;
  fn.handler = [](FaasContext* ctx) {
    // Needs ~1.47 s of compute at 0.68 GFLOPS -> must hit the cap.
    Status s = ctx->Burn(1e9);
    ctx->set_result(s);
  };
  ASSERT_TRUE(cloud_.faas().RegisterFunction(fn).ok());
  InProcess([&] {
    auto outcome = cloud_.faas().InvokeAsync("slow", {});
    sim_.WaitSignal(outcome.completion.get());
    auto record = cloud_.faas().completion(outcome.request_id);
    EXPECT_TRUE(record->status.IsDeadlineExceeded());
    // Billed runtime is capped at the timeout.
    EXPECT_LE(record->duration_s, 1.0 + 1e-9);
  });
}

TEST_F(CloudTest, FaasRegistrationValidation) {
  FaasFunctionConfig fn;
  fn.name = "f";
  fn.handler = [](FaasContext*) {};
  fn.memory_mb = 64;  // below provider minimum
  EXPECT_FALSE(cloud_.faas().RegisterFunction(fn).ok());
  fn.memory_mb = 20000;  // above provider maximum
  EXPECT_FALSE(cloud_.faas().RegisterFunction(fn).ok());
  fn.memory_mb = 1024;
  fn.timeout_s = 1000.0;  // above the 15-minute cap
  EXPECT_FALSE(cloud_.faas().RegisterFunction(fn).ok());
  fn.timeout_s = 10.0;
  EXPECT_TRUE(cloud_.faas().RegisterFunction(fn).ok());
  EXPECT_EQ(cloud_.faas().RegisterFunction(fn).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(CloudTest, ComputeModelScalesWithMemory) {
  const ComputeModelConfig& compute = cloud_.compute();
  // vCPU share grows linearly with memory until the 6-vCPU cap.
  EXPECT_NEAR(compute.FaasVcpus(1769), 1.0, 1e-9);
  EXPECT_NEAR(compute.FaasVcpus(3538), 2.0, 1e-9);
  EXPECT_NEAR(compute.FaasVcpus(10240), 5.789, 0.01);
  EXPECT_EQ(compute.FaasVcpus(1000000), 6.0);
  // More memory -> faster compute.
  EXPECT_LT(compute.FaasComputeSeconds(1e9, 4000),
            compute.FaasComputeSeconds(1e9, 1000));
}

// ---------------------------------------------------------------------------
// VMs
// ---------------------------------------------------------------------------

TEST_F(CloudTest, VmLaunchBootsAndTerminateBills) {
  InProcess([&] {
    const double t0 = sim_.Now();
    auto vm = cloud_.vms().Launch("c5.2xlarge");
    ASSERT_TRUE(vm.ok());
    EXPECT_GT(sim_.Now() - t0, 10.0);  // boot delay is tens of seconds
    sim_.Hold(3600.0);
    ASSERT_TRUE(cloud_.vms().Terminate(*vm).ok());
    const auto& line = cloud_.billing().line(BillingDimension::kVmSecond);
    // One hour at $0.34/h.
    EXPECT_NEAR(line.cost, 0.34, 0.01);
  });
}

TEST_F(CloudTest, VmMinimumBillingWindow) {
  InProcess([&] {
    auto vm = cloud_.vms().Launch("c5.2xlarge");
    ASSERT_TRUE(vm.ok());
    ASSERT_TRUE(cloud_.vms().Terminate(*vm).ok());  // immediate
    const auto& line = cloud_.billing().line(BillingDimension::kVmSecond);
    EXPECT_NEAR(line.quantity, 60.0, 1e-9);  // 60 s minimum
  });
}

TEST_F(CloudTest, VmAlwaysOnBilling) {
  ASSERT_TRUE(cloud_.vms().BillAlwaysOn("c5.12xlarge", 86400.0, 2).ok());
  const auto& line = cloud_.billing().line(BillingDimension::kVmSecond);
  EXPECT_NEAR(line.cost, 2 * 24 * 2.04, 0.01);  // 2 instances x 24 h
  EXPECT_FALSE(cloud_.vms().BillAlwaysOn("nope", 1.0, 1).ok());
}

TEST_F(CloudTest, VmUnknownTypeRejected) {
  InProcess([&] { EXPECT_FALSE(cloud_.vms().Launch("m7g.huge").ok()); });
}

// ---------------------------------------------------------------------------
// KV store (ElastiCache/Redis-style)
// ---------------------------------------------------------------------------

TEST_F(CloudTest, KvPushPopRoundtripPreservesFifoOrder) {
  ASSERT_TRUE(cloud_.kv().CreateNamespace("ns").ok());
  InProcess([&] {
    cloud_.kv().Push("ns", "list", Bytes{1});
    cloud_.kv().Push("ns", "list", Bytes{2});
    cloud_.kv().Push("ns", "list", Bytes{3});
    sim_.Hold(0.1);  // all three pushes become visible
    auto got = cloud_.kv().BlockingPopAll("ns", "list", 10, /*wait_s=*/1.0);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), 3u);
    EXPECT_EQ((*got)[0], Bytes{1});
    EXPECT_EQ((*got)[1], Bytes{2});
    EXPECT_EQ((*got)[2], Bytes{3});
    // Pops are destructive: nothing remains.
    auto empty = cloud_.kv().BlockingPopAll("ns", "list", 10, 0.0);
    ASSERT_TRUE(empty.ok());
    EXPECT_TRUE(empty->empty());
  });
}

TEST_F(CloudTest, KvBlockingPopWakesOnArrival) {
  ASSERT_TRUE(cloud_.kv().CreateNamespace("ns").ok());
  double received_at = -1.0;
  sim_.AddProcess("consumer", [&] {
    auto got = cloud_.kv().BlockingPopAll("ns", "list", 10, /*wait_s=*/20.0);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->size(), 1u);
    received_at = sim_.Now();
  });
  sim_.AddProcess("producer", [&] {
    sim_.Hold(3.0);
    cloud_.kv().Push("ns", "list", Bytes{9});
  });
  sim_.Run();
  EXPECT_GE(received_at, 3.0);
  // Sub-millisecond ops: the wake + pop tail is far tighter than a queue
  // receive round trip.
  EXPECT_LT(received_at, 3.1);
}

TEST_F(CloudTest, KvBillsRequestsAndProcessedBytes) {
  ASSERT_TRUE(cloud_.kv().CreateNamespace("ns").ok());
  InProcess([&] {
    cloud_.kv().Push("ns", "list", Bytes(1000, 7));
    auto got = cloud_.kv().BlockingPopAll("ns", "list", 10, /*wait_s=*/1.0);
    ASSERT_TRUE(got.ok());
    const auto& requests =
        cloud_.billing().line(BillingDimension::kKvRequest);
    const auto& bytes =
        cloud_.billing().line(BillingDimension::kKvProcessedByte);
    EXPECT_EQ(requests.quantity, 2.0);  // one push + one pop
    EXPECT_EQ(bytes.quantity, 2000.0);  // 1000 in + 1000 out
    EXPECT_GT(requests.cost + bytes.cost, 0.0);
  });
}

TEST_F(CloudTest, KvDeleteNamespaceBillsNodeLifetime) {
  ASSERT_TRUE(cloud_.kv().CreateNamespace("ns").ok());
  InProcess([&] {
    // Pre-provisioned idle time is free; billing spans first use -> delete.
    sim_.Hold(40.0);
    cloud_.kv().Push("ns", "list", Bytes{1});
    sim_.Hold(120.0);
    ASSERT_TRUE(cloud_.kv().DeleteNamespace("ns").ok());
    const auto& line =
        cloud_.billing().line(BillingDimension::kKvNodeSecond);
    EXPECT_NEAR(line.quantity, 120.0, 1e-9);
    EXPECT_NEAR(line.cost,
                120.0 * cloud_.billing().pricing().kv_node_hourly / 3600.0,
                1e-12);
    // Gone: subsequent data-plane calls observe NotFound.
    EXPECT_FALSE(cloud_.kv().NamespaceExists("ns"));
    EXPECT_FALSE(cloud_.kv().Push("ns", "list", Bytes{1}).status.ok());
    EXPECT_FALSE(cloud_.kv().DeleteNamespace("ns").ok());
  });
}

TEST_F(CloudTest, KvDeleteNamespaceUnblocksWaiters) {
  ASSERT_TRUE(cloud_.kv().CreateNamespace("ns").ok());
  Status pop_status = Status::OK();
  sim_.AddProcess("consumer", [&] {
    auto got = cloud_.kv().BlockingPopAll("ns", "list", 10, /*wait_s=*/60.0);
    pop_status = got.status();
  });
  sim_.AddProcess("deleter", [&] {
    sim_.Hold(1.0);
    ASSERT_TRUE(cloud_.kv().DeleteNamespace("ns").ok());
  });
  sim_.Run();
  EXPECT_EQ(pop_status.code(), StatusCode::kNotFound)
      << pop_status.ToString();
  EXPECT_EQ(sim_.live_processes(), 0);
}

TEST_F(CloudTest, KvSetGetRoundtripAndValidation) {
  ASSERT_TRUE(cloud_.kv().CreateNamespace("ns").ok());
  EXPECT_FALSE(cloud_.kv().CreateNamespace("ns").ok());  // AlreadyExists
  InProcess([&] {
    ASSERT_TRUE(cloud_.kv().Set("ns", "k", Bytes{4, 2}).ok());
    auto got = cloud_.kv().Get("ns", "k");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, (Bytes{4, 2}));
    EXPECT_FALSE(cloud_.kv().Get("ns", "missing").ok());
    EXPECT_FALSE(
        cloud_.kv().BlockingPopAll("ns", "list", 0, 0.0).ok());  // bad count
    EXPECT_FALSE(cloud_.kv().BlockingPopAll("nope", "list", 1, 0.0).ok());
  });
}

// ---------------------------------------------------------------------------
// P2P fabric (NAT-punched direct links)
// ---------------------------------------------------------------------------

TEST_F(CloudTest, P2pPunchOutcomeIsDeterministicPerPair) {
  ASSERT_TRUE(cloud_.p2p().CreateSession("s").ok());
  InProcess([&] {
    // Same ordered pair, repeated: identical outcome, fresh only once.
    const auto first = cloud_.p2p().Connect("s", 0, 1);
    ASSERT_TRUE(first.status.ok());
    EXPECT_TRUE(first.fresh);
    const auto again = cloud_.p2p().Connect("s", 0, 1);
    ASSERT_TRUE(again.status.ok());
    EXPECT_FALSE(again.fresh);
    EXPECT_EQ(again.punched, first.punched);
    // setup_s reports the REMAINING handshake time: positive while the
    // fresh punch is still in flight, zero once it completed.
    EXPECT_LE(again.setup_s, first.setup_s);
    sim_.Hold(first.setup_s + 1e-9);
    EXPECT_DOUBLE_EQ(cloud_.p2p().Connect("s", 0, 1).setup_s, 0.0);
    // At the default 8% failure rate, a 20-worker all-pairs sweep must see
    // both outcomes, and the punched/failed split must replay exactly.
    int punched = 0, failed = 0;
    for (int32_t src = 0; src < 20; ++src) {
      for (int32_t dst = 0; dst < 20; ++dst) {
        if (src == dst) continue;
        const auto out = cloud_.p2p().Connect("s", src, dst);
        ASSERT_TRUE(out.status.ok());
        const auto replay = cloud_.p2p().Connect("s", src, dst);
        EXPECT_EQ(replay.punched, out.punched);
        (out.punched ? punched : failed)++;
      }
    }
    EXPECT_GT(punched, 0);
    EXPECT_GT(failed, 0);
    EXPECT_GT(punched, failed);  // failures are the minority at 8%
  });
}

TEST_F(CloudTest, P2pBillsConnectionsOnFreshPunchOnly) {
  ASSERT_TRUE(cloud_.p2p().CreateSession("s").ok());
  InProcess([&] {
    // Find one punched and (if present in the first few) repeat it.
    const auto out = cloud_.p2p().Connect("s", 0, 1);
    ASSERT_TRUE(out.status.ok());
    cloud_.p2p().Connect("s", 0, 1);
    cloud_.p2p().Connect("s", 0, 1);
    const auto& line = cloud_.billing().line(BillingDimension::kP2pConnection);
    // Successful fresh punches bill exactly once; failed punches bill
    // nothing (their penalty is relaying through the managed service).
    EXPECT_EQ(line.quantity, out.punched ? 1.0 : 0.0);
  });
}

TEST_F(CloudTest, P2pPunchIsMutualAndBillsOncePerPhysicalPair) {
  ASSERT_TRUE(cloud_.p2p().CreateSession("s").ok());
  InProcess([&] {
    // Punching is mutual: the reverse direction of an established pair is
    // the SAME physical link — same verdict, not fresh, and never a second
    // connection charge (the historical bug billed once per asking side).
    const auto forward = cloud_.p2p().Connect("s", 3, 7);
    ASSERT_TRUE(forward.status.ok());
    EXPECT_TRUE(forward.fresh);
    const auto reverse = cloud_.p2p().Connect("s", 7, 3);
    ASSERT_TRUE(reverse.status.ok());
    EXPECT_FALSE(reverse.fresh);
    EXPECT_EQ(reverse.punched, forward.punched);
    const auto& line = cloud_.billing().line(BillingDimension::kP2pConnection);
    EXPECT_EQ(line.quantity, forward.punched ? 1.0 : 0.0);
    // Verdicts are symmetric across a whole sweep, and asking from both
    // sides books exactly one connection per punched physical pair.
    int64_t punched_pairs = forward.punched ? 1 : 0;
    for (int32_t a = 0; a < 16; ++a) {
      for (int32_t b = a + 1; b < 16; ++b) {
        if (a == 3 && b == 7) continue;  // already established above
        const auto ab = cloud_.p2p().Connect("s", a, b);
        const auto ba = cloud_.p2p().Connect("s", b, a);
        ASSERT_TRUE(ab.status.ok());
        ASSERT_TRUE(ba.status.ok());
        EXPECT_TRUE(ab.fresh);
        EXPECT_FALSE(ba.fresh);
        EXPECT_EQ(ba.punched, ab.punched);
        if (ab.punched) ++punched_pairs;
      }
    }
    EXPECT_EQ(cloud_.billing().line(BillingDimension::kP2pConnection).quantity,
              static_cast<double>(punched_pairs));
    // A punched pair's link carries traffic in BOTH directions.
    int32_t a = -1, b = -1;
    for (int32_t d = 1; d < 16 && a < 0; ++d) {
      if (cloud_.p2p().Connect("s", 0, d).punched) {
        a = 0;
        b = d;
      }
    }
    ASSERT_GE(a, 0);
    EXPECT_TRUE(cloud_.p2p().Send("s", a, b, "fwd", Bytes{1}).status.ok());
    EXPECT_TRUE(cloud_.p2p().Send("s", b, a, "rev", Bytes{2}).status.ok());
  });
}

TEST_F(CloudTest, P2pSendDeliversAndBillsBytesOnly) {
  ASSERT_TRUE(cloud_.p2p().CreateSession("s").ok());
  InProcess([&] {
    // Locate a punched pair deterministically.
    int32_t dst = -1;
    for (int32_t d = 1; d < 32; ++d) {
      if (cloud_.p2p().Connect("s", 0, d).punched) {
        dst = d;
        break;
      }
    }
    ASSERT_GE(dst, 0) << "no punched pair in 31 tries at 8% failure";
    const auto sent = cloud_.p2p().Send("s", 0, dst, "inbox", Bytes(1000, 5));
    ASSERT_TRUE(sent.status.ok());
    EXPECT_GT(sent.latency, 0.0);
    sim_.Hold(sent.latency + 0.01);
    auto got = cloud_.p2p().BlockingPopAll("s", "inbox", 10, /*wait_s=*/1.0);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), 1u);
    EXPECT_EQ((*got)[0], Bytes(1000, 5));
    EXPECT_EQ(cloud_.billing().line(BillingDimension::kP2pByte).quantity,
              1000.0);
    // Sends and pops carry NO per-request service charge: the kv/queue
    // request dimensions never moved.
    EXPECT_EQ(cloud_.billing().line(BillingDimension::kKvRequest).quantity,
              0.0);
    // A pair that never punched cannot use the fabric.
    int32_t unpunched = -1;
    for (int32_t d = 1; d < 256 && unpunched < 0; ++d) {
      if (!cloud_.p2p().Connect("s", 1, d).punched) unpunched = d;
    }
    ASSERT_GE(unpunched, 0);
    EXPECT_EQ(cloud_.p2p().Send("s", 1, unpunched, "x", Bytes{1}).status.code(),
              StatusCode::kFailedPrecondition);
  });
}

TEST_F(CloudTest, P2pDeleteSessionUnblocksWaiters) {
  ASSERT_TRUE(cloud_.p2p().CreateSession("s").ok());
  EXPECT_FALSE(cloud_.p2p().CreateSession("s").ok());  // AlreadyExists
  Status pop_status = Status::OK();
  sim_.AddProcess("consumer", [&] {
    auto got = cloud_.p2p().BlockingPopAll("s", "inbox", 10, /*wait_s=*/60.0);
    pop_status = got.status();
  });
  sim_.AddProcess("deleter", [&] {
    sim_.Hold(1.0);
    ASSERT_TRUE(cloud_.p2p().DeleteSession("s").ok());
  });
  sim_.Run();
  EXPECT_EQ(pop_status.code(), StatusCode::kNotFound) << pop_status.ToString();
  EXPECT_FALSE(cloud_.p2p().SessionExists("s"));
  EXPECT_EQ(sim_.live_processes(), 0);
}

}  // namespace
}  // namespace fsd::cloud
