#include <gtest/gtest.h>

#include "core/auto_config.h"

namespace fsd::core {
namespace {

model::SparseDnn MakeModel(int32_t neurons, int32_t layers) {
  model::SparseDnnConfig config;
  config.neurons = neurons;
  config.layers = layers;
  return *model::GenerateSparseDnn(config);
}

class AutoConfigTest : public ::testing::Test {
 protected:
  sim::Simulation sim_;
  cloud::CloudEnv cloud_{&sim_};
};

TEST_F(AutoConfigTest, SmallModelCostPriorityPicksSerial) {
  model::SparseDnn dnn = MakeModel(1024, 8);
  AutoSelectRequest request;
  request.dnn = &dnn;
  request.batch = 64;
  request.latency_weight = 0.0;  // pure cost
  auto result = AutoSelectConfiguration(cloud_, request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->best.variant, Variant::kSerial);
  EXPECT_EQ(result->best.workers, 1);
}

TEST_F(AutoConfigTest, LatencyPriorityBuysParallelism) {
  model::SparseDnn dnn = MakeModel(16384, 16);
  AutoSelectRequest request;
  request.dnn = &dnn;
  request.batch = 2048;  // heavy batch: compute dominates
  request.latency_weight = 1.0;
  auto result = AutoSelectConfiguration(cloud_, request);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->best.workers, 1);
}

TEST_F(AutoConfigTest, RankingIsSortedAndComplete) {
  model::SparseDnn dnn = MakeModel(4096, 8);
  AutoSelectRequest request;
  request.dnn = &dnn;
  auto result = AutoSelectConfiguration(cloud_, request);
  ASSERT_TRUE(result.ok());
  // 1 serial + 4 variants x 4 parallel P values.
  EXPECT_EQ(result->ranking.size(), 17u);
  for (size_t i = 1; i < result->ranking.size(); ++i) {
    EXPECT_LE(result->ranking[i - 1].score, result->ranking[i].score);
  }
  EXPECT_EQ(result->best.score, result->ranking.front().score);
}

TEST_F(AutoConfigTest, InfeasibleSerialIsExcluded) {
  // A model family whose paper-scale working set exceeds the FaaS cap:
  // use a big batch so activations blow the 10 GB budget.
  model::SparseDnn dnn = MakeModel(65536, 4);
  AutoSelectRequest request;
  request.dnn = &dnn;
  request.batch = 20000;  // 65536 x 20000 x 8 x 2 bytes ~ 19.5 GB
  auto result = AutoSelectConfiguration(cloud_, request);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->best.variant, Variant::kSerial);
  bool found_infeasible_serial = false;
  for (const ConfigCandidate& c : result->ranking) {
    if (c.variant == Variant::kSerial) {
      EXPECT_FALSE(c.feasible);
      EXPECT_FALSE(c.infeasible_reason.empty());
      found_infeasible_serial = true;
    }
  }
  EXPECT_TRUE(found_infeasible_serial);
}

TEST_F(AutoConfigTest, CostCrossoverBetweenQueueAndObject) {
  // §IV-C both ways: queue costs grow much more slowly with parallelism at
  // moderate data volumes, but once volumes saturate the pub-sub payload
  // economics (per-byte delivery charges), object storage wins.
  model::SparseDnn dnn = MakeModel(16384, 16);
  AutoSelectRequest request;
  request.dnn = &dnn;
  request.latency_weight = 0.0;
  request.candidate_workers = {42};

  request.batch = 2000;  // moderate volume: queue is the cheap channel
  auto moderate = AutoSelectConfiguration(cloud_, request);
  ASSERT_TRUE(moderate.ok());
  ASSERT_EQ(moderate->ranking.size(), 4u);
  EXPECT_EQ(moderate->best.variant, Variant::kQueue);

  request.batch = 40000;  // huge volume: per-byte charges flip the choice
  auto huge = AutoSelectConfiguration(cloud_, request);
  ASSERT_TRUE(huge.ok());
  EXPECT_EQ(huge->best.variant, Variant::kObject);
}

TEST_F(AutoConfigTest, LatencyWeightedWorkloadPicksDirect) {
  // Established NAT-punched links carry sub-millisecond sends with no
  // managed-service hop, so a pure-latency priority must surface the
  // direct channel for a chatty parallel workload.
  model::SparseDnn dnn = MakeModel(16384, 16);
  AutoSelectRequest request;
  request.dnn = &dnn;
  request.batch = 2048;
  request.latency_weight = 1.0;
  // Parallel candidates only: the point is the channel choice, and the
  // model fits a single instance, which would otherwise win pure cost.
  request.candidate_workers = {8, 20, 42, 62};
  auto result = AutoSelectConfiguration(cloud_, request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->best.variant, Variant::kDirect);
  EXPECT_GT(result->best.workers, 1);

  // A moderate-volume chatty workload at large P under pure cost priority
  // picks the queue channel instead: the direct variant's connection
  // setup charges (one per communicating pair, so quadratic in P) plus
  // the relay's standing node cost hand the win back to request-priced
  // pub-sub + queues.
  request.batch = 2000;
  request.candidate_workers = {42};
  request.latency_weight = 0.0;
  auto cheapest = AutoSelectConfiguration(cloud_, request);
  ASSERT_TRUE(cheapest.ok());
  EXPECT_EQ(cheapest->best.variant, Variant::kQueue);
}

TEST_F(AutoConfigTest, TopologyRecommendationTracksRootDrain) {
  // Through-root's single round is optimal while the root's pop machinery
  // drains the whole fan-in in ~one op; once the fan-in serializes on
  // per-message requests, the binomial tree's bounded rounds win.
  FsdOptions options;
  const cloud::LatencyConfig& latency = cloud_.latency();
  EXPECT_EQ(RecommendTopology(latency, options, Variant::kQueue, 2),
            CollectiveTopology::kThroughRoot);
  EXPECT_EQ(RecommendTopology(latency, options, Variant::kSerial, 62),
            CollectiveTopology::kThroughRoot);
  // KV/direct pops drain 64 values per op: through-root stays one op wide.
  EXPECT_EQ(RecommendTopology(latency, options, Variant::kKv, 42),
            CollectiveTopology::kThroughRoot);
  // Queue polls batch 10 messages; object storage pays one GET per
  // message: at P = 42 the root's round is several ops wide and the tree
  // takes over.
  EXPECT_EQ(RecommendTopology(latency, options, Variant::kQueue, 42),
            CollectiveTopology::kBinomialTree);
  EXPECT_EQ(RecommendTopology(latency, options, Variant::kObject, 42),
            CollectiveTopology::kBinomialTree);
  // Every parallel ranking entry carries its recommended topology.
  model::SparseDnn dnn = MakeModel(4096, 8);
  AutoSelectRequest request;
  request.dnn = &dnn;
  auto result = AutoSelectConfiguration(cloud_, request);
  ASSERT_TRUE(result.ok());
  for (const ConfigCandidate& c : result->ranking) {
    EXPECT_EQ(c.topology,
              RecommendTopology(latency, request.base_options, c.variant,
                                c.workers));
  }
}

TEST_F(AutoConfigTest, QuantFlipRespectsErrorBudgetAndBreakEven) {
  model::SparseDnn dnn = MakeModel(16384, 16);
  AutoSelectRequest request;
  request.dnn = &dnn;
  request.batch = 2048;  // byte-heavy workload: savings dominate
  request.latency_weight = 0.0;
  request.base_options.compress = true;

  // No error budget: every candidate stays lossless.
  auto strict = AutoSelectConfiguration(cloud_, request);
  ASSERT_TRUE(strict.ok());
  for (const ConfigCandidate& c : strict->ranking) {
    EXPECT_EQ(c.quant_bits, 0);
  }

  // A 1e-2 budget admits b=8 (bound ~3.9e-3) but not b=4 (~7.1e-2); the
  // byte-metered variants should flip and get cheaper for it.
  request.base_options.quant_max_rel_error = 1e-2;
  auto relaxed = AutoSelectConfiguration(cloud_, request);
  ASSERT_TRUE(relaxed.ok());
  bool any_quantized = false;
  for (size_t i = 0; i < relaxed->ranking.size(); ++i) {
    const ConfigCandidate& c = relaxed->ranking[i];
    EXPECT_TRUE(c.quant_bits == 0 || c.quant_bits == 8);
    if (c.quant_bits != 0) {
      any_quantized = true;
      // Object/serial bill per request, never per byte — no flip there.
      EXPECT_NE(c.variant, Variant::kObject);
      EXPECT_NE(c.variant, Variant::kSerial);
    }
  }
  EXPECT_TRUE(any_quantized);
  // Quantization can only help the blended objective.
  EXPECT_LE(relaxed->best.predicted_cost.total,
            strict->best.predicted_cost.total + 1e-12);

  // A budget looser than even b=4's bound picks the narrowest width.
  request.base_options.quant_max_rel_error = 0.5;
  auto loose = AutoSelectConfiguration(cloud_, request);
  ASSERT_TRUE(loose.ok());
  bool any_b4 = false;
  for (const ConfigCandidate& c : loose->ranking) {
    if (c.quant_bits == 4) any_b4 = true;
    EXPECT_TRUE(c.quant_bits == 0 || c.quant_bits == 4);
  }
  EXPECT_TRUE(any_b4);
}

TEST_F(AutoConfigTest, ValidatesArguments) {
  model::SparseDnn dnn = MakeModel(1024, 4);
  AutoSelectRequest request;
  EXPECT_FALSE(AutoSelectConfiguration(cloud_, request).ok());
  request.dnn = &dnn;
  request.latency_weight = 2.0;
  EXPECT_FALSE(AutoSelectConfiguration(cloud_, request).ok());
  request.latency_weight = 0.5;
  request.candidate_workers.clear();
  EXPECT_FALSE(AutoSelectConfiguration(cloud_, request).ok());
}

}  // namespace
}  // namespace fsd::core
