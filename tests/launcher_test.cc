#include <gtest/gtest.h>

#include <cmath>
#include <queue>
#include <set>
#include <tuple>

#include "core/launcher.h"

namespace fsd::core {
namespace {

TEST(Launcher, TreeChildrenOfRoot) {
  EXPECT_EQ(TreeChildren(0, 4, 62), (std::vector<int32_t>{1, 2, 3, 4}));
  EXPECT_EQ(TreeChildren(0, 2, 3), (std::vector<int32_t>{1, 2}));
  EXPECT_EQ(TreeChildren(0, 4, 1), (std::vector<int32_t>{}));
}

TEST(Launcher, TreeParentInverse) {
  EXPECT_EQ(TreeParent(0, 4), -1);
  for (int32_t id = 1; id < 100; ++id) {
    const int32_t parent = TreeParent(id, 4);
    const auto children = TreeChildren(parent, 4, 1000);
    EXPECT_NE(std::find(children.begin(), children.end(), id),
              children.end())
        << id;
  }
}

class LaunchCoverage
    : public ::testing::TestWithParam<std::tuple<LaunchStrategy, int, int>> {};

TEST_P(LaunchCoverage, EveryWorkerInvokedExactlyOnce) {
  auto [strategy, branching, num_workers] = GetParam();
  // Simulate the invocation cascade: coordinator first, then each invoked
  // worker invokes its own children.
  std::vector<int> invoked(num_workers, 0);
  std::queue<int32_t> frontier;
  for (int32_t id : CoordinatorInvokes(strategy, num_workers)) {
    ++invoked[id];
    frontier.push(id);
  }
  int32_t hops = 0;  // longest chain bound (sanity against cycles)
  while (!frontier.empty() && hops < num_workers + 2) {
    const size_t level = frontier.size();
    for (size_t i = 0; i < level; ++i) {
      const int32_t id = frontier.front();
      frontier.pop();
      for (int32_t child :
           ChildrenToInvoke(strategy, id, branching, num_workers)) {
        ASSERT_GE(child, 0);
        ASSERT_LT(child, num_workers);
        ++invoked[child];
        frontier.push(child);
      }
    }
    ++hops;
  }
  for (int32_t id = 0; id < num_workers; ++id) {
    EXPECT_EQ(invoked[id], 1) << "worker " << id;
  }
  if (strategy == LaunchStrategy::kHierarchical && num_workers > 1) {
    // Tree depth is logarithmic.
    const double depth_bound =
        std::ceil(std::log(num_workers * (branching - 1.0) + 1) /
                  std::log(static_cast<double>(branching))) +
        1;
    EXPECT_LE(hops, depth_bound + 1);
  }
  if (strategy == LaunchStrategy::kCentralized) {
    EXPECT_LE(hops, 1);  // flat: nobody invokes anybody else
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LaunchCoverage,
    ::testing::Combine(::testing::Values(LaunchStrategy::kHierarchical,
                                         LaunchStrategy::kTwoLevel,
                                         LaunchStrategy::kCentralized),
                       ::testing::Values(2, 4, 8),
                       ::testing::Values(1, 2, 8, 20, 42, 62, 63)));

TEST(Launcher, CoordinatorInvokesRootOnlyForTrees) {
  EXPECT_EQ(CoordinatorInvokes(LaunchStrategy::kHierarchical, 62).size(), 1u);
  EXPECT_EQ(CoordinatorInvokes(LaunchStrategy::kTwoLevel, 62).size(), 1u);
  EXPECT_EQ(CoordinatorInvokes(LaunchStrategy::kCentralized, 62).size(), 62u);
}

TEST(ConfigNames, Strings) {
  EXPECT_EQ(VariantName(Variant::kSerial), "FSD-Inf-Serial");
  EXPECT_EQ(VariantName(Variant::kQueue), "FSD-Inf-Queue");
  EXPECT_EQ(VariantName(Variant::kObject), "FSD-Inf-Object");
  EXPECT_EQ(LaunchStrategyName(LaunchStrategy::kHierarchical),
            "hierarchical");
}

TEST(Config, DefaultWorkerMemorySchedule) {
  // The paper's sizing: 1000/1500/2000/4000 MB by N; serial gets the max.
  EXPECT_EQ(DefaultWorkerMemoryMb(1024, Variant::kQueue), 1000);
  EXPECT_EQ(DefaultWorkerMemoryMb(4096, Variant::kQueue), 1500);
  EXPECT_EQ(DefaultWorkerMemoryMb(16384, Variant::kObject), 2000);
  EXPECT_EQ(DefaultWorkerMemoryMb(65536, Variant::kObject), 4000);
  EXPECT_EQ(DefaultWorkerMemoryMb(1024, Variant::kSerial), 10240);
}

}  // namespace
}  // namespace fsd::core
