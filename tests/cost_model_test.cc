#include <gtest/gtest.h>

#include "core/cost_model.h"

namespace fsd::core {
namespace {

cloud::PricingConfig Pricing() { return cloud::PricingConfig{}; }

TEST(CostModel, FaasCostEquation4) {
  // C_lambda = P*C_inv + P*Tbar*M*C_run, hand-computed.
  const cloud::PricingConfig pricing = Pricing();
  const double cost = FaasCost(pricing, 20, 30.0, 2000);
  const double expect = 20 * pricing.faas_per_invocation +
                        20 * 30.0 * 2000 * pricing.faas_per_mb_second;
  EXPECT_DOUBLE_EQ(cost, expect);
  // Paper magnitude check: 20 workers x 2 GB x 30 s ~= $0.02.
  EXPECT_NEAR(cost, 0.020, 0.005);
}

TEST(CostModel, QueueCostEquations5And6) {
  const cloud::PricingConfig pricing = Pricing();
  const CostBreakdown cost =
      QueueCost(pricing, 8, 10.0, 1000, /*chunks=*/5000,
                /*bytes=*/2.0e9, /*api=*/40000);
  EXPECT_DOUBLE_EQ(cost.communication,
                   5000 * pricing.pubsub_per_publish_chunk +
                       2.0e9 * pricing.pubsub_per_byte +
                       40000 * pricing.queue_per_api_call);
  EXPECT_DOUBLE_EQ(cost.total, cost.compute + cost.communication);
}

TEST(CostModel, ObjectCostEquation7) {
  const cloud::PricingConfig pricing = Pricing();
  const CostBreakdown cost = ObjectCost(pricing, 8, 10.0, 1000,
                                        /*puts=*/10000, /*gets=*/9000,
                                        /*lists=*/3000);
  EXPECT_DOUBLE_EQ(cost.communication, 10000 * pricing.object_per_put +
                                           9000 * pricing.object_per_get +
                                           3000 * pricing.object_per_list);
}

TEST(CostModel, SerialCostIsComputeOnly) {
  const CostBreakdown cost = SerialCost(Pricing(), 20.0, 10240);
  EXPECT_DOUBLE_EQ(cost.communication, 0.0);
  EXPECT_DOUBLE_EQ(cost.total, cost.compute);
}

TEST(CostModel, ApiPriceRelationshipsFromThePaper) {
  // §IV-C: pub-sub/queueing API calls are ~1 OOM cheaper than object
  // storage PUT/LIST requests.
  const cloud::PricingConfig pricing = Pricing();
  EXPECT_LT(pricing.pubsub_per_publish_chunk * 8,
            pricing.object_per_put);
  EXPECT_LT(pricing.queue_per_api_call * 8, pricing.object_per_list);
  // GETs are the cheap object operation.
  EXPECT_LT(pricing.object_per_get, pricing.object_per_put);
}

TEST(CostModel, PredictFromMetricsMatchesManualComputation) {
  FsdOptions options;
  options.variant = Variant::kQueue;
  options.num_workers = 4;
  RunMetrics metrics;
  metrics.workers.resize(4);
  for (auto& w : metrics.workers) {
    w.start_time = 0.0;
    w.end_time = 12.0;
    LayerMetrics& lm = w.Layer(0);
    lm.publish_chunks = 100;
    lm.send_wire_bytes = 1 << 20;
    lm.send_chunks = 10;
    lm.polls = 50;
    lm.deletes = 25;
  }
  metrics.Finalize();
  const CostBreakdown predicted =
      PredictFromMetrics(Pricing(), options, metrics, 1500);
  const CostBreakdown manual = QueueCost(
      Pricing(), 4, 12.0, 1500, 400,
      4.0 * ((1 << 20) + 10 * 96.0), 4 * 75.0);
  EXPECT_NEAR(predicted.total, manual.total, 1e-12);
}

TEST(Recommender, SerialForSmallModels) {
  model::SparseDnnConfig config;
  config.neurons = 512;
  config.layers = 4;
  auto dnn = model::GenerateSparseDnn(config);
  ASSERT_TRUE(dnn.ok());
  WorkloadEstimate estimate;  // tiny model: estimate content irrelevant
  EXPECT_EQ(RecommendVariant(*dnn, 8, estimate), Variant::kSerial);
  EXPECT_EQ(RecommendVariant(*dnn, 1, estimate), Variant::kSerial);
}

TEST(Recommender, QueueForModerateVolumes) {
  model::SparseDnnConfig config;
  config.neurons = 1024;
  config.layers = 4;
  auto dnn = model::GenerateSparseDnn(config);
  WorkloadEstimate estimate;
  estimate.puts = 1000;
  estimate.est_bytes_per_batch = 1000 * 64.0 * 1024;  // 64 KiB per pair
  // Force past the "fits in one instance" rule with a fake huge model by
  // using a wide model config instead.
  model::SparseDnnConfig big;
  big.neurons = 65536;
  big.layers = 2;  // keep generation cheap; WeightBytes still large
  // WeightBytes = 2*65536*32*8 ~= 34 MB -> still "small". Emulate a large
  // model via layers.
  big.layers = 4;
  auto big_dnn = model::GenerateSparseDnn(big);
  ASSERT_TRUE(big_dnn.ok());
  // Directly exercise the volume rule with a synthetic threshold check.
  const double avg = estimate.est_bytes_per_batch / estimate.puts;
  EXPECT_LT(avg, 2.0 * 256.0 * 1024.0);
  (void)dnn;
}

TEST(Recommender, ObjectForSaturatingVolumes) {
  WorkloadEstimate estimate;
  estimate.puts = 100;
  estimate.est_bytes_per_batch = 100 * 4.0 * 1024 * 1024;  // 4 MiB per pair
  const double avg = estimate.est_bytes_per_batch / estimate.puts;
  EXPECT_GT(avg, 2.0 * 256.0 * 1024.0);
}

TEST(CostModel, EstimateWorkloadScalesWithParallelism) {
  model::SparseDnnConfig config;
  config.neurons = 1024;
  config.layers = 6;
  auto dnn = model::GenerateSparseDnn(config);
  ASSERT_TRUE(dnn.ok());
  FsdOptions options;
  part::ModelPartitionOptions popts;
  auto p4 = part::PartitionModel(*dnn, 4, popts);
  auto p16 = part::PartitionModel(*dnn, 16, popts);
  ASSERT_TRUE(p4.ok() && p16.ok());
  const WorkloadEstimate e4 = EstimateWorkload(*dnn, *p4, options, 0.3, 64);
  const WorkloadEstimate e16 = EstimateWorkload(*dnn, *p16, options, 0.3, 64);
  // More workers -> more pairs -> more PUTs, publish chunks, KV requests.
  EXPECT_GT(e16.puts, e4.puts);
  EXPECT_GT(e16.publish_chunks, e4.publish_chunks);
  EXPECT_GT(e16.kv_requests, e4.kv_requests);
  EXPECT_GT(e4.puts, 0.0);
  EXPECT_GT(e4.kv_requests, 0.0);
  // Both directions pass through the cache.
  EXPECT_NEAR(e4.kv_processed_bytes, 2.0 * e4.est_bytes_per_batch, 1e-9);
}

TEST(CostModel, KvCostTerms) {
  const cloud::PricingConfig pricing = Pricing();
  const CostBreakdown cost =
      KvCost(pricing, 8, 10.0, 1000, /*requests=*/50000,
             /*processed_bytes=*/3.0e9, /*node_seconds=*/7200.0);
  EXPECT_DOUBLE_EQ(cost.communication,
                   50000 * pricing.kv_per_request +
                       3.0e9 * pricing.kv_per_processed_byte +
                       7200.0 * pricing.kv_node_hourly / 3600.0);
  EXPECT_DOUBLE_EQ(cost.total, cost.compute + cost.communication);
  // The design claim the recommender rests on: KV requests are the
  // cheapest per call, but its per-byte metering dwarfs the pub-sub
  // delivery charge, and the node term has no queue/object analogue.
  EXPECT_LT(pricing.kv_per_request, pricing.queue_per_api_call);
  EXPECT_GT(pricing.kv_per_processed_byte, pricing.pubsub_per_byte);
}

TEST(CostModel, DirectCostTerms) {
  const cloud::PricingConfig pricing = Pricing();
  const CostBreakdown cost =
      DirectCost(pricing, 8, 10.0, 1000, /*connections=*/56.0,
                 /*direct_bytes=*/2.0e9, /*relay_requests=*/400.0,
                 /*relay_processed_bytes=*/1.0e8);
  EXPECT_DOUBLE_EQ(cost.communication,
                   56.0 * pricing.p2p_per_connection +
                       2.0e9 * pricing.p2p_per_byte +
                       400.0 * pricing.kv_per_request +
                       1.0e8 * pricing.kv_per_processed_byte);
  EXPECT_DOUBLE_EQ(cost.total, cost.compute + cost.communication);
  // The pricing relationships the direct channel's pitch rests on: moving
  // a byte over a punched link undercuts KV's processed-byte metering by
  // a wide margin, while the connection charge is a real standing fee that
  // must amortize over the run (it dwarfs a single KV request).
  EXPECT_LT(pricing.p2p_per_byte * 10, pricing.kv_per_processed_byte);
  EXPECT_GT(pricing.p2p_per_connection, pricing.kv_per_request);
}

TEST(CostModel, BreakdownToString) {
  CostBreakdown cost{0.10, 0.25, 0.35};
  const std::string s = cost.ToString();
  EXPECT_NE(s.find("$0.1000"), std::string::npos);
  EXPECT_NE(s.find("$0.3500"), std::string::npos);
}

TEST(CostModel, EstimateWireRatioTracksCodec) {
  FsdOptions options;
  options.compress = false;
  EXPECT_DOUBLE_EQ(EstimateWireRatio(options), 1.0);
  options.compress = true;
  EXPECT_DOUBLE_EQ(EstimateWireRatio(options), kAprioriCompressRatio);
  // Quantized: ~2 structure bytes keep the lossless ratio, the 4 value
  // bytes shrink to quant_bits/8.
  options.quant_bits = 8;
  EXPECT_DOUBLE_EQ(EstimateWireRatio(options),
                   (2.0 * kAprioriCompressRatio + 1.0) / 6.0);
  options.compress = false;
  EXPECT_DOUBLE_EQ(EstimateWireRatio(options), (2.0 + 1.0) / 6.0);
  options.compress = true;
  options.quant_bits = 4;
  EXPECT_LT(EstimateWireRatio(options),
            (2.0 * kAprioriCompressRatio + 1.0) / 6.0);
}

TEST(CostModel, MeasuredCompressRatioPrefersMetrics) {
  FsdOptions options;
  options.compress = true;
  LayerMetrics totals;
  // No counters: fall back to the a-priori ratio.
  EXPECT_DOUBLE_EQ(MeasuredCompressRatio(totals, options),
                   kAprioriCompressRatio);
  totals.send_raw_bytes = 1000;
  totals.send_wire_bytes = 450;
  EXPECT_DOUBLE_EQ(MeasuredCompressRatio(totals, options), 0.45);
}

TEST(CostModel, PredictFromMetricsUsesMeasuredRatioFallback) {
  // Raw-bytes-only metrics (no wire or billed counters): the queue
  // prediction should size delivery bytes with the measured ratio when
  // present — here absent, so the a-priori ratio applies.
  cloud::PricingConfig pricing;
  FsdOptions options;
  options.variant = Variant::kQueue;
  options.num_workers = 2;
  options.compress = true;
  RunMetrics metrics;
  metrics.mean_worker_s = 1.0;
  metrics.totals.send_raw_bytes = 1'000'000;
  metrics.totals.send_chunks = 10;
  metrics.totals.publish_chunks = 10;
  const CostBreakdown cost = PredictFromMetrics(pricing, options, metrics, 512);
  const double expected_bytes = 1'000'000 * kAprioriCompressRatio + 10 * 96.0;
  const CostBreakdown manual =
      QueueCost(pricing, 2, 1.0, 512, 10.0, expected_bytes, 0.0);
  EXPECT_DOUBLE_EQ(cost.communication, manual.communication);
}

TEST(CostModel, QuantBreakEvenPricesBytesAgainstCpu) {
  cloud::PricingConfig pricing;
  cloud::ComputeModelConfig compute;
  FsdOptions options;
  options.compress = true;
  const double raw = 100.0e6;  // 100 MB of activations per query
  const QuantBreakEvenEstimate kv = EstimateQuantBreakEven(
      pricing, compute, options, Variant::kKv, 1024, raw, 8);
  EXPECT_GT(kv.bytes_saved, 0.0);
  EXPECT_GT(kv.byte_dollars_saved, 0.0);
  EXPECT_GT(kv.cpu_dollars_added, 0.0);
  EXPECT_DOUBLE_EQ(kv.net_saving,
                   kv.byte_dollars_saved - kv.cpu_dollars_added);
  // KV meters processed bytes in both directions — at 100 MB/query the
  // savings dwarf the quantize pass.
  EXPECT_TRUE(kv.worthwhile);
  // Object storage has no per-byte meter: quantization only costs CPU.
  const QuantBreakEvenEstimate object = EstimateQuantBreakEven(
      pricing, compute, options, Variant::kObject, 1024, raw, 8);
  EXPECT_DOUBLE_EQ(object.byte_dollars_saved, 0.0);
  EXPECT_FALSE(object.worthwhile);
  // Narrower widths save strictly more bytes.
  const QuantBreakEvenEstimate narrow = EstimateQuantBreakEven(
      pricing, compute, options, Variant::kKv, 1024, raw, 4);
  EXPECT_GT(narrow.bytes_saved, kv.bytes_saved);
}

}  // namespace
}  // namespace fsd::core
