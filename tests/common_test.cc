#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace fsd {
namespace {

TEST(Status, OkIsDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s, Status::OK());
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(Status, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_FALSE(Status::Internal("x").IsNotFound());
}

Status FailsThrough() {
  FSD_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::OK();
}

TEST(Status, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kInternal);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  FSD_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(Result, ValueAndError) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);
  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(Result, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubled(4), 8);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(Result, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, LogNormalMedian) {
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 4001; ++i) xs.push_back(rng.NextLogNormal(std::log(0.02), 0.3));
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], 0.02, 0.002);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, ForkIndependence) {
  Rng base(42);
  Rng f1 = base.Fork(1);
  Rng f2 = base.Fork(2);
  Rng f1_again = base.Fork(1);
  EXPECT_EQ(f1.Next(), f1_again.Next());
  EXPECT_NE(f1.Next(), f2.Next());
}

TEST(Strings, Format) {
  EXPECT_EQ(StrFormat("a%db", 7), "a7b");
  EXPECT_EQ(StrFormat("%s-%0.2f", "x", 1.5), "x-1.50");
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KiB");
  EXPECT_EQ(HumanBytes(3.5 * 1024 * 1024), "3.50 MiB");
}

TEST(Strings, HumanDollars) {
  EXPECT_EQ(HumanDollars(0.35), "$0.3500");
  EXPECT_EQ(HumanDollars(0.0), "$0.0000");
  EXPECT_EQ(HumanDollars(1e-6), "$1.000e-06");
}

TEST(Bytes, ReaderRoundtrip) {
  Bytes buf;
  AppendRaw<uint32_t>(&buf, 0xDEADBEEF);
  AppendRaw<float>(&buf, 1.5f);
  ByteReader reader(buf);
  EXPECT_EQ(*reader.Read<uint32_t>(), 0xDEADBEEFu);
  EXPECT_EQ(*reader.Read<float>(), 1.5f);
  EXPECT_TRUE(reader.exhausted());
  EXPECT_FALSE(reader.Read<uint8_t>().ok());
}

TEST(Bytes, ReadBytesBoundsChecked) {
  Bytes buf = {1, 2, 3};
  ByteReader reader(buf);
  auto got = reader.ReadBytes(2);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, (Bytes{1, 2}));
  EXPECT_FALSE(reader.ReadBytes(2).ok());
  EXPECT_TRUE(reader.ReadBytes(1).ok());
}

}  // namespace
}  // namespace fsd
