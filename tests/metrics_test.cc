// Metrics-layer unit tests: percentile edge cases, FleetStats on tiny
// sample counts (0/1/2 queries), batch-occupancy accounting, the
// mutually-exclusive disposition partition (rejected/shed/aborted/
// completed), SLO attainment, and the determinism of the arrival-trace
// generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "core/metrics.h"
#include "core/serving.h"

namespace fsd::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

FleetStats::QuerySample Sample(
    double arrival_s, double finish_s, double latency_s, double queue_wait_s,
    QueryDisposition disposition = QueryDisposition::kCompleted,
    int32_t priority = 0, double deadline_s = kInf) {
  FleetStats::QuerySample sample;
  sample.arrival_s = arrival_s;
  sample.finish_s = finish_s;
  sample.latency_s = latency_s;
  sample.queue_wait_s = queue_wait_s;
  sample.disposition = disposition;
  sample.priority = priority;
  sample.deadline_s = deadline_s;
  return sample;
}

TEST(Percentile, EmptySampleIsZero) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 100.0), 0.0);
}

TEST(Percentile, SingleSampleIsEveryPercentile) {
  for (double pct : {0.0, 1.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(Percentile({3.5}, pct), 3.5) << pct;
  }
}

TEST(Percentile, TwoSamplesSplitAtTheMedian) {
  const std::vector<double> two{2.0, 1.0};  // unsorted on purpose
  // Nearest-rank: ceil(p/100 * 2) picks the 1st value up to p50, the 2nd
  // beyond it.
  EXPECT_DOUBLE_EQ(Percentile(two, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(two, 50.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(two, 50.1), 2.0);
  EXPECT_DOUBLE_EQ(Percentile(two, 95.0), 2.0);
  EXPECT_DOUBLE_EQ(Percentile(two, 100.0), 2.0);
}

TEST(FleetStats, EmptyWorkloadFinalizesToZeros) {
  FleetStats fleet;
  fleet.Finalize();
  EXPECT_EQ(fleet.queries, 0);
  EXPECT_DOUBLE_EQ(fleet.throughput_qps, 0.0);
  EXPECT_DOUBLE_EQ(fleet.latency_p50_s, 0.0);
  EXPECT_DOUBLE_EQ(fleet.latency_p99_s, 0.0);
  EXPECT_DOUBLE_EQ(fleet.queue_wait_p95_s, 0.0);
  EXPECT_DOUBLE_EQ(fleet.cold_start_ratio, 0.0);
  EXPECT_DOUBLE_EQ(fleet.batch_occupancy_mean, 0.0);
  EXPECT_DOUBLE_EQ(fleet.cost_per_query, 0.0);
}

TEST(FleetStats, SingleQueryDistributionsCollapseToThatQuery) {
  FleetStats fleet;
  RunMetrics metrics;
  fleet.AddQuery(Sample(/*arrival_s=*/1.0, /*finish_s=*/3.0, /*latency_s=*/2.0,
                        /*queue_wait_s=*/0.5),
                 metrics);
  fleet.AddRun(/*member_queries=*/1, /*worker_invocations=*/4,
               /*cold_starts=*/4, /*ok=*/true);
  fleet.total_cost = 0.01;
  fleet.Finalize();
  EXPECT_EQ(fleet.queries, 1);
  EXPECT_EQ(fleet.failed, 0);
  EXPECT_DOUBLE_EQ(fleet.makespan_s, 2.0);
  for (double p : {fleet.latency_p50_s, fleet.latency_p95_s,
                   fleet.latency_p99_s, fleet.latency_max_s}) {
    EXPECT_DOUBLE_EQ(p, 2.0);
  }
  for (double p : {fleet.queue_wait_p50_s, fleet.queue_wait_p95_s,
                   fleet.queue_wait_max_s, fleet.queue_wait_mean_s}) {
    EXPECT_DOUBLE_EQ(p, 0.5);
  }
  EXPECT_DOUBLE_EQ(fleet.batch_occupancy_mean, 1.0);
  EXPECT_EQ(fleet.batch_occupancy_max, 1);
  EXPECT_DOUBLE_EQ(fleet.cold_start_ratio, 1.0);
  EXPECT_DOUBLE_EQ(fleet.cost_per_query, 0.01);
}

TEST(FleetStats, TwoQueriesSplitPercentilesAndOccupancy) {
  FleetStats fleet;
  RunMetrics metrics;
  fleet.AddQuery(Sample(0.0, 1.0, 1.0, 0.0), metrics);
  fleet.AddQuery(Sample(0.5, 4.5, 4.0, 1.5), metrics);
  // Both queries were served by ONE shared tree (occupancy 2).
  fleet.AddRun(/*member_queries=*/2, /*worker_invocations=*/4,
               /*cold_starts=*/2, /*ok=*/true);
  fleet.Finalize();
  EXPECT_EQ(fleet.queries, 2);
  EXPECT_DOUBLE_EQ(fleet.makespan_s, 4.5);
  EXPECT_DOUBLE_EQ(fleet.latency_p50_s, 1.0);   // nearest rank: 1st of 2
  EXPECT_DOUBLE_EQ(fleet.latency_p95_s, 4.0);   // 2nd of 2
  EXPECT_DOUBLE_EQ(fleet.latency_max_s, 4.0);
  EXPECT_DOUBLE_EQ(fleet.queue_wait_p50_s, 0.0);
  EXPECT_DOUBLE_EQ(fleet.queue_wait_p95_s, 1.5);
  EXPECT_DOUBLE_EQ(fleet.queue_wait_mean_s, 0.75);
  EXPECT_EQ(fleet.runs, 1);
  EXPECT_EQ(fleet.batched_queries, 2);
  EXPECT_DOUBLE_EQ(fleet.batch_occupancy_mean, 2.0);
  EXPECT_EQ(fleet.batch_occupancy_max, 2);
  EXPECT_DOUBLE_EQ(fleet.cold_start_ratio, 0.5);
}

TEST(FleetStats, FailedQueriesAndRunsAreExcludedFromDistributions) {
  FleetStats fleet;
  RunMetrics metrics;
  fleet.AddQuery(Sample(0.0, 1.0, 1.0, 0.0), metrics);
  fleet.AddQuery(Sample(0.0, 9.0, 9.0, 0.0, QueryDisposition::kFailed),
                 metrics);  // failed: excluded
  fleet.AddRun(1, 4, 0, true);
  fleet.AddRun(1, 4, 4, false);  // failed run: no invocations counted
  fleet.Finalize();
  EXPECT_EQ(fleet.queries, 2);
  EXPECT_EQ(fleet.completed, 1);
  EXPECT_EQ(fleet.failed, 1);
  EXPECT_DOUBLE_EQ(fleet.latency_max_s, 1.0);
  EXPECT_EQ(fleet.runs, 1);
  EXPECT_EQ(fleet.worker_invocations, 4);
  EXPECT_EQ(fleet.cold_starts, 0);
  // Makespan still spans every query (the failed one finished last).
  EXPECT_DOUBLE_EQ(fleet.makespan_s, 9.0);
}

TEST(FleetStats, DispositionsPartitionTotalSubmissionsExactly) {
  // One query per disposition, plus one extra completed one. The terminal
  // partition must be mutually exclusive and sum to total submissions —
  // a rejected or shed query can never leak into failed (or vice versa),
  // and aborted/horizon-cut queries are labeled subsets of failed.
  FleetStats fleet;
  RunMetrics metrics;
  fleet.AddQuery(Sample(0.0, 1.0, 1.0, 0.0), metrics);
  fleet.AddQuery(Sample(0.1, 1.1, 1.0, 0.0), metrics);
  fleet.AddQuery(Sample(0.2, 2.0, 1.8, 0.0, QueryDisposition::kFailed),
                 metrics);
  fleet.AddQuery(Sample(0.3, 0.3, 0.0, 0.0, QueryDisposition::kRejected),
                 metrics);
  fleet.AddQuery(Sample(0.4, 0.9, 0.0, 0.5, QueryDisposition::kShed),
                 metrics);
  fleet.AddQuery(Sample(0.5, 1.5, 0.0, 0.0, QueryDisposition::kAborted),
                 metrics);
  fleet.AddQuery(Sample(0.6, 3.0, 0.0, 0.0, QueryDisposition::kInFlight),
                 metrics);
  fleet.AddRun(2, 4, 0, true);
  fleet.Finalize();

  EXPECT_EQ(fleet.queries, 7);
  EXPECT_EQ(fleet.completed, 2);
  EXPECT_EQ(fleet.failed, 3);  // execution failure + aborted + in flight
  EXPECT_EQ(fleet.aborted, 1);
  EXPECT_EQ(fleet.still_in_flight, 1);
  EXPECT_EQ(fleet.rejected, 1);
  EXPECT_EQ(fleet.shed, 1);
  // The partition identity: completed + failed + rejected + shed == total.
  EXPECT_EQ(fleet.completed + fleet.failed + fleet.rejected + fleet.shed,
            fleet.queries);
  EXPECT_LE(fleet.aborted + fleet.still_in_flight, fleet.failed);

  // Rejected/shed queries never launched a tree: they must not appear in
  // the latency distribution (max reflects the completed queries only) nor
  // in the occupancy denominator (2 completed queries on 1 run).
  EXPECT_DOUBLE_EQ(fleet.latency_max_s, 1.0);
  EXPECT_DOUBLE_EQ(fleet.batch_occupancy_mean, 2.0);
  // Throughput counts completed queries only.
  EXPECT_DOUBLE_EQ(fleet.throughput_qps, 2.0 / fleet.makespan_s);
}

TEST(FleetStats, SloAttainmentAndPerClassPercentiles) {
  FleetStats fleet;
  RunMetrics metrics;
  // Priority 0: two completed queries with deadlines, one hit, one miss.
  fleet.AddQuery(Sample(0.0, 1.0, 1.0, 0.0, QueryDisposition::kCompleted,
                        /*priority=*/0, /*deadline_s=*/2.0),
                 metrics);
  fleet.AddQuery(Sample(0.0, 5.0, 5.0, 0.0, QueryDisposition::kCompleted,
                        /*priority=*/0, /*deadline_s=*/4.0),
                 metrics);
  // Priority 1: one deadline-free completed query.
  fleet.AddQuery(Sample(0.0, 2.0, 2.0, 0.0, QueryDisposition::kCompleted,
                        /*priority=*/1),
                 metrics);
  // A rejected query with a deadline never counts toward attainment.
  fleet.AddQuery(Sample(0.0, 0.0, 0.0, 0.0, QueryDisposition::kRejected,
                        /*priority=*/0, /*deadline_s=*/1.0),
                 metrics);
  fleet.Finalize();

  EXPECT_EQ(fleet.deadline_queries, 2);
  EXPECT_EQ(fleet.deadline_hits, 1);
  EXPECT_DOUBLE_EQ(fleet.slo_attainment, 0.5);
  // Goodput: completed-and-on-time queries (the deadline-free one counts
  // as on time) over the makespan.
  EXPECT_DOUBLE_EQ(fleet.goodput_qps, 2.0 / fleet.makespan_s);
  EXPECT_DOUBLE_EQ(fleet.throughput_qps, 3.0 / fleet.makespan_s);

  ASSERT_EQ(fleet.class_latency.size(), 2u);
  EXPECT_EQ(fleet.class_latency[0].priority, 0);
  EXPECT_EQ(fleet.class_latency[0].completed, 2);
  EXPECT_DOUBLE_EQ(fleet.class_latency[0].latency_p50_s, 1.0);
  EXPECT_DOUBLE_EQ(fleet.class_latency[0].latency_p95_s, 5.0);
  EXPECT_EQ(fleet.class_latency[1].priority, 1);
  EXPECT_EQ(fleet.class_latency[1].completed, 1);
  EXPECT_DOUBLE_EQ(fleet.class_latency[1].latency_p50_s, 2.0);
}

TEST(FleetStats, NoDeadlinesMeansFullAttainment) {
  FleetStats fleet;
  RunMetrics metrics;
  fleet.AddQuery(Sample(0.0, 1.0, 1.0, 0.0), metrics);
  fleet.Finalize();
  EXPECT_EQ(fleet.deadline_queries, 0);
  EXPECT_DOUBLE_EQ(fleet.slo_attainment, 1.0);
  EXPECT_DOUBLE_EQ(fleet.goodput_qps, fleet.throughput_qps);
}

TEST(LayerMetrics, AddAccumulatesDirectAndCollectiveCounters) {
  LayerMetrics a;
  a.direct_connects = 2;
  a.punch_failures = 1;
  a.direct_msgs = 5;
  a.direct_billed_bytes = 1000;
  a.relay_fallback_msgs = 3;
  a.direct_pops = 7;
  a.direct_empty_pops = 2;
  a.collective_rounds = 4;
  a.collective_round_s = 0.25;
  LayerMetrics b;
  b.direct_connects = 1;
  b.punch_failures = 2;
  b.direct_msgs = 10;
  b.direct_billed_bytes = 500;
  b.relay_fallback_msgs = 1;
  b.direct_pops = 3;
  b.direct_empty_pops = 1;
  b.collective_rounds = 6;
  b.collective_round_s = 0.15;
  a.Add(b);
  EXPECT_EQ(a.direct_connects, 3);
  EXPECT_EQ(a.punch_failures, 3);
  EXPECT_EQ(a.direct_msgs, 15);
  EXPECT_EQ(a.direct_billed_bytes, 1500);
  EXPECT_EQ(a.relay_fallback_msgs, 4);
  EXPECT_EQ(a.direct_pops, 10);
  EXPECT_EQ(a.direct_empty_pops, 3);
  EXPECT_EQ(a.collective_rounds, 10);
  EXPECT_DOUBLE_EQ(a.collective_round_s, 0.40);
}

TEST(FleetStats, DirectLinkAndCollectiveRoundCountersAggregate) {
  FleetStats fleet;
  RunMetrics first;
  first.totals.direct_connects = 3;
  first.totals.punch_failures = 1;
  first.totals.relay_fallback_msgs = 2;
  first.totals.collective_rounds = 4;
  first.totals.collective_round_s = 0.4;
  fleet.AddQuery(Sample(0.0, 1.0, 1.0, 0.0), first);
  RunMetrics second;
  second.totals.direct_connects = 1;
  second.totals.collective_rounds = 6;
  second.totals.collective_round_s = 0.2;
  fleet.AddQuery(Sample(0.0, 2.0, 2.0, 0.0), second);
  // Non-completed queries contribute nothing (consistent with every other
  // per-run aggregate: only served queries enter fleet totals).
  RunMetrics failed;
  failed.totals.direct_connects = 100;
  failed.totals.collective_rounds = 100;
  fleet.AddQuery(Sample(0.0, 3.0, 3.0, 0.0, QueryDisposition::kFailed),
                 failed);
  fleet.Finalize();
  EXPECT_EQ(fleet.direct_connects, 4);
  EXPECT_EQ(fleet.punch_failures, 1);
  EXPECT_EQ(fleet.relay_fallbacks, 2);
  EXPECT_EQ(fleet.collective_rounds, 10);
  // Mean per-round time pools the time over the pooled round count.
  EXPECT_DOUBLE_EQ(fleet.collective_round_mean_s, 0.6 / 10.0);
  // The counters surface in the operator-facing summary.
  const std::string summary = fleet.Summary();
  EXPECT_NE(summary.find("relay"), std::string::npos) << summary;
  EXPECT_NE(summary.find("round"), std::string::npos) << summary;
}

TEST(Arrivals, PoissonIsDeterministicPerSeed) {
  const auto a = PoissonArrivals(2.0, 64, 42);
  const auto b = PoissonArrivals(2.0, 64, 42);
  EXPECT_EQ(a, b);
  const auto c = PoissonArrivals(2.0, 64, 43);
  EXPECT_NE(a, c);
  ASSERT_EQ(a.size(), 64u);
  // Strictly increasing, positive gaps.
  for (size_t i = 1; i < a.size(); ++i) EXPECT_GT(a[i], a[i - 1]);
  EXPECT_GT(a.front(), 0.0);
  // Mean inter-arrival roughly 1/rate (loose: 64 samples).
  EXPECT_NEAR(a.back() / 64.0, 0.5, 0.25);
}

TEST(Arrivals, BurstTraceIsExactAndDeterministic) {
  const auto a = BurstArrivals(3, 2, 10.0, /*start_s=*/1.0);
  const std::vector<double> expected{1.0, 1.0, 11.0, 11.0, 21.0, 21.0};
  EXPECT_EQ(a, expected);
  EXPECT_EQ(a, BurstArrivals(3, 2, 10.0, 1.0));
}

TEST(PercentileSketch, ExactTierMatchesPercentileByteForByte) {
  // While the sample fits under the threshold the sketch IS the exact
  // estimator: identical bits, not just identical-ish values.
  PercentileSketch sketch(/*exact_threshold=*/64);
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 64; ++i) {
    const double v = rng.NextLogNormal(0.0, 1.5);
    values.push_back(v);
    sketch.Add(v);
  }
  EXPECT_FALSE(sketch.streaming());
  for (const double pct : {0.0, 10.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(sketch.Quantile(pct), Percentile(values, pct)) << pct;
  }
}

TEST(PercentileSketch, BimodalStreamingStaysWithinOnePercent) {
  // Adversarial for naive sketches: two tight modes three orders of
  // magnitude apart, 90/10 split — p50 sits in one mode, p95/p99 in the
  // other, and any bucket scheme with >1% relative error smears them.
  PercentileSketch sketch(/*exact_threshold=*/128);
  Rng rng(11);
  std::vector<double> values;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.NextBool(0.9) ? rng.NextUniform(0.010, 0.012)
                                       : rng.NextUniform(10.0, 12.0);
    values.push_back(v);
    sketch.Add(v);
  }
  EXPECT_TRUE(sketch.streaming());
  for (const double pct : {50.0, 95.0, 99.0}) {
    const double exact = Percentile(values, pct);
    EXPECT_NEAR(sketch.Quantile(pct), exact, exact * 0.01) << "p" << pct;
  }
  EXPECT_EQ(sketch.count(), 100000);
  // The whole point: 100k samples, bounded residency.
  EXPECT_LT(sketch.resident_samples(), 4096u);
}

TEST(PercentileSketch, HeavyTailStreamingStaysWithinOnePercent) {
  // Lognormal with sigma=2: the p99 is ~100x the median, the max far
  // beyond that — tail buckets must hold relative (not absolute) error.
  PercentileSketch sketch(/*exact_threshold=*/128);
  Rng rng(13);
  std::vector<double> values;
  double max_seen = 0.0;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.NextLogNormal(-2.0, 2.0);
    values.push_back(v);
    sketch.Add(v);
    max_seen = std::max(max_seen, v);
  }
  for (const double pct : {50.0, 95.0, 99.0}) {
    const double exact = Percentile(values, pct);
    EXPECT_NEAR(sketch.Quantile(pct), exact, exact * 0.01) << "p" << pct;
  }
  // Mean and max stay exact regardless of tier.
  double sum = 0.0;
  for (const double v : values) sum += v;
  EXPECT_EQ(sketch.Max(), max_seen);
  EXPECT_NEAR(sketch.Mean(), sum / 50000.0, sum / 50000.0 * 1e-12);
}

TEST(PercentileSketch, ZerosAndNonpositivesAreExact) {
  PercentileSketch sketch(/*exact_threshold=*/4);
  for (int i = 0; i < 100; ++i) sketch.Add(0.0);
  for (int i = 0; i < 100; ++i) sketch.Add(5.0);
  EXPECT_TRUE(sketch.streaming());
  EXPECT_EQ(sketch.Quantile(25.0), 0.0);
  EXPECT_NEAR(sketch.Quantile(90.0), 5.0, 5.0 * 0.01);
}

TEST(FleetStats, SummaryIsIdenticalBelowStreamingThreshold) {
  // Two stats fed the same queries — one with a threshold far above the
  // sample count, one effectively unbounded — must summarize to the same
  // bytes: streaming must be invisible until it actually engages.
  auto feed = [](FleetStats& stats) {
    Rng rng(17);
    for (int i = 0; i < 200; ++i) {
      FleetStats::QuerySample sample;
      sample.arrival_s = i * 0.01;
      sample.latency_s = rng.NextLogNormal(0.0, 1.0);
      sample.finish_s = sample.arrival_s + sample.latency_s;
      sample.queue_wait_s = rng.NextUniform(0.0, 0.05);
      sample.disposition = QueryDisposition::kCompleted;
      stats.AddQuery(sample, {});
    }
    stats.Finalize();
  };
  FleetStats small_threshold;
  small_threshold.set_streaming_threshold(4096);
  FleetStats huge_threshold;
  huge_threshold.set_streaming_threshold(1u << 30);
  feed(small_threshold);
  feed(huge_threshold);
  EXPECT_EQ(small_threshold.Summary(), huge_threshold.Summary());
}

TEST(FleetStats, ResidentSamplesStayCappedUnderMillionsOfQueries) {
  // The regression this guards: FleetStats used to retain every latency
  // sample for Finalize's percentile sort, so a million-query replay held
  // a million doubles per distribution.
  FleetStats stats;
  stats.set_streaming_threshold(256);
  Rng rng(19);
  size_t peak_resident = 0;
  size_t resident_at_half = 0;
  for (int i = 0; i < 50000; ++i) {
    FleetStats::QuerySample sample;
    sample.arrival_s = i * 0.001;
    sample.latency_s = rng.NextLogNormal(-1.0, 1.0);
    sample.finish_s = sample.arrival_s + sample.latency_s;
    sample.queue_wait_s = rng.NextUniform(0.0, 0.01);
    sample.disposition = QueryDisposition::kCompleted;
    sample.priority = i % 3;  // three SLO classes, each its own sketch
    sample.tenant = i % 5;    // five tenants, each its own sketch
    stats.AddQuery(sample, {});
    peak_resident = std::max(peak_resident, stats.resident_samples());
    if (i == 24999) resident_at_half = stats.resident_samples();
  }
  stats.Finalize();
  // Residency is O(sketches x log value-range) — ~10 sketches here, each
  // a few hundred exact slots plus log-spaced buckets — and crucially
  // PLATEAUS: the second 25k queries may only add the stragglers of the
  // distribution tails, not grow linearly like the old retain-everything
  // code (which would hold 100k+ doubles by now).
  EXPECT_LT(peak_resident, 20000u);
  EXPECT_LT(peak_resident, resident_at_half + resident_at_half / 4 + 64);
  EXPECT_EQ(stats.queries, 50000);
}

TEST(FleetStats, TenantStatsPartitionDispositions) {
  FleetStats stats;
  auto add = [&](int32_t tenant, QueryDisposition disposition, double lat) {
    FleetStats::QuerySample sample;
    sample.latency_s = lat;
    sample.finish_s = lat;
    sample.disposition = disposition;
    sample.tenant = tenant;
    stats.AddQuery(sample, {});
  };
  add(1, QueryDisposition::kCompleted, 0.1);
  add(1, QueryDisposition::kCompleted, 0.3);
  add(1, QueryDisposition::kRejected, 0.0);
  add(2, QueryDisposition::kCompleted, 0.2);
  add(2, QueryDisposition::kShed, 0.0);
  add(2, QueryDisposition::kFailed, 0.0);
  stats.Finalize();
  ASSERT_EQ(stats.tenant_stats.size(), 2u);
  const auto& t1 = stats.tenant_stats[0];
  EXPECT_EQ(t1.tenant, 1);
  EXPECT_EQ(t1.queries, 3);
  EXPECT_EQ(t1.completed, 2);
  EXPECT_EQ(t1.rejected, 1);
  EXPECT_EQ(t1.completed + t1.failed + t1.rejected + t1.shed, t1.queries);
  const auto& t2 = stats.tenant_stats[1];
  EXPECT_EQ(t2.tenant, 2);
  EXPECT_EQ(t2.queries, 3);
  EXPECT_EQ(t2.completed, 1);
  EXPECT_EQ(t2.shed, 1);
  EXPECT_EQ(t2.failed, 1);
  EXPECT_GT(t2.latency_p50_s, 0.0);
}

}  // namespace
}  // namespace fsd::core
