// Metrics-layer unit tests: percentile edge cases, FleetStats on tiny
// sample counts (0/1/2 queries), batch-occupancy accounting, and the
// determinism of the arrival-trace generators.
#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/serving.h"

namespace fsd::core {
namespace {

TEST(Percentile, EmptySampleIsZero) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 100.0), 0.0);
}

TEST(Percentile, SingleSampleIsEveryPercentile) {
  for (double pct : {0.0, 1.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(Percentile({3.5}, pct), 3.5) << pct;
  }
}

TEST(Percentile, TwoSamplesSplitAtTheMedian) {
  const std::vector<double> two{2.0, 1.0};  // unsorted on purpose
  // Nearest-rank: ceil(p/100 * 2) picks the 1st value up to p50, the 2nd
  // beyond it.
  EXPECT_DOUBLE_EQ(Percentile(two, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(two, 50.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(two, 50.1), 2.0);
  EXPECT_DOUBLE_EQ(Percentile(two, 95.0), 2.0);
  EXPECT_DOUBLE_EQ(Percentile(two, 100.0), 2.0);
}

TEST(FleetStats, EmptyWorkloadFinalizesToZeros) {
  FleetStats fleet;
  fleet.Finalize();
  EXPECT_EQ(fleet.queries, 0);
  EXPECT_DOUBLE_EQ(fleet.throughput_qps, 0.0);
  EXPECT_DOUBLE_EQ(fleet.latency_p50_s, 0.0);
  EXPECT_DOUBLE_EQ(fleet.latency_p99_s, 0.0);
  EXPECT_DOUBLE_EQ(fleet.queue_wait_p95_s, 0.0);
  EXPECT_DOUBLE_EQ(fleet.cold_start_ratio, 0.0);
  EXPECT_DOUBLE_EQ(fleet.batch_occupancy_mean, 0.0);
  EXPECT_DOUBLE_EQ(fleet.cost_per_query, 0.0);
}

TEST(FleetStats, SingleQueryDistributionsCollapseToThatQuery) {
  FleetStats fleet;
  RunMetrics metrics;
  fleet.AddQuery(/*arrival_s=*/1.0, /*finish_s=*/3.0, /*latency_s=*/2.0,
                 /*queue_wait_s=*/0.5, /*ok=*/true, metrics);
  fleet.AddRun(/*member_queries=*/1, /*worker_invocations=*/4,
               /*cold_starts=*/4, /*ok=*/true);
  fleet.total_cost = 0.01;
  fleet.Finalize();
  EXPECT_EQ(fleet.queries, 1);
  EXPECT_EQ(fleet.failed, 0);
  EXPECT_DOUBLE_EQ(fleet.makespan_s, 2.0);
  for (double p : {fleet.latency_p50_s, fleet.latency_p95_s,
                   fleet.latency_p99_s, fleet.latency_max_s}) {
    EXPECT_DOUBLE_EQ(p, 2.0);
  }
  for (double p : {fleet.queue_wait_p50_s, fleet.queue_wait_p95_s,
                   fleet.queue_wait_max_s, fleet.queue_wait_mean_s}) {
    EXPECT_DOUBLE_EQ(p, 0.5);
  }
  EXPECT_DOUBLE_EQ(fleet.batch_occupancy_mean, 1.0);
  EXPECT_EQ(fleet.batch_occupancy_max, 1);
  EXPECT_DOUBLE_EQ(fleet.cold_start_ratio, 1.0);
  EXPECT_DOUBLE_EQ(fleet.cost_per_query, 0.01);
}

TEST(FleetStats, TwoQueriesSplitPercentilesAndOccupancy) {
  FleetStats fleet;
  RunMetrics metrics;
  fleet.AddQuery(0.0, 1.0, 1.0, 0.0, true, metrics);
  fleet.AddQuery(0.5, 4.5, 4.0, 1.5, true, metrics);
  // Both queries were served by ONE shared tree (occupancy 2).
  fleet.AddRun(/*member_queries=*/2, /*worker_invocations=*/4,
               /*cold_starts=*/2, /*ok=*/true);
  fleet.Finalize();
  EXPECT_EQ(fleet.queries, 2);
  EXPECT_DOUBLE_EQ(fleet.makespan_s, 4.5);
  EXPECT_DOUBLE_EQ(fleet.latency_p50_s, 1.0);   // nearest rank: 1st of 2
  EXPECT_DOUBLE_EQ(fleet.latency_p95_s, 4.0);   // 2nd of 2
  EXPECT_DOUBLE_EQ(fleet.latency_max_s, 4.0);
  EXPECT_DOUBLE_EQ(fleet.queue_wait_p50_s, 0.0);
  EXPECT_DOUBLE_EQ(fleet.queue_wait_p95_s, 1.5);
  EXPECT_DOUBLE_EQ(fleet.queue_wait_mean_s, 0.75);
  EXPECT_EQ(fleet.runs, 1);
  EXPECT_EQ(fleet.batched_queries, 2);
  EXPECT_DOUBLE_EQ(fleet.batch_occupancy_mean, 2.0);
  EXPECT_EQ(fleet.batch_occupancy_max, 2);
  EXPECT_DOUBLE_EQ(fleet.cold_start_ratio, 0.5);
}

TEST(FleetStats, FailedQueriesAndRunsAreExcludedFromDistributions) {
  FleetStats fleet;
  RunMetrics metrics;
  fleet.AddQuery(0.0, 1.0, 1.0, 0.0, true, metrics);
  fleet.AddQuery(0.0, 9.0, 9.0, 0.0, false, metrics);  // failed: excluded
  fleet.AddRun(1, 4, 0, true);
  fleet.AddRun(1, 4, 4, false);  // failed run: no invocations counted
  fleet.Finalize();
  EXPECT_EQ(fleet.queries, 2);
  EXPECT_EQ(fleet.failed, 1);
  EXPECT_DOUBLE_EQ(fleet.latency_max_s, 1.0);
  EXPECT_EQ(fleet.runs, 1);
  EXPECT_EQ(fleet.worker_invocations, 4);
  EXPECT_EQ(fleet.cold_starts, 0);
  // Makespan still spans every query (the failed one finished last).
  EXPECT_DOUBLE_EQ(fleet.makespan_s, 9.0);
}

TEST(Arrivals, PoissonIsDeterministicPerSeed) {
  const auto a = PoissonArrivals(2.0, 64, 42);
  const auto b = PoissonArrivals(2.0, 64, 42);
  EXPECT_EQ(a, b);
  const auto c = PoissonArrivals(2.0, 64, 43);
  EXPECT_NE(a, c);
  ASSERT_EQ(a.size(), 64u);
  // Strictly increasing, positive gaps.
  for (size_t i = 1; i < a.size(); ++i) EXPECT_GT(a[i], a[i - 1]);
  EXPECT_GT(a.front(), 0.0);
  // Mean inter-arrival roughly 1/rate (loose: 64 samples).
  EXPECT_NEAR(a.back() / 64.0, 0.5, 0.25);
}

TEST(Arrivals, BurstTraceIsExactAndDeterministic) {
  const auto a = BurstArrivals(3, 2, 10.0, /*start_s=*/1.0);
  const std::vector<double> expected{1.0, 1.0, 11.0, 11.0, 21.0, 21.0};
  EXPECT_EQ(a, expected);
  EXPECT_EQ(a, BurstArrivals(3, 2, 10.0, 1.0));
}

}  // namespace
}  // namespace fsd::core
