// Metrics-layer unit tests: percentile edge cases, FleetStats on tiny
// sample counts (0/1/2 queries), batch-occupancy accounting, the
// mutually-exclusive disposition partition (rejected/shed/aborted/
// completed), SLO attainment, and the determinism of the arrival-trace
// generators.
#include <gtest/gtest.h>

#include <limits>

#include "core/metrics.h"
#include "core/serving.h"

namespace fsd::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

FleetStats::QuerySample Sample(
    double arrival_s, double finish_s, double latency_s, double queue_wait_s,
    QueryDisposition disposition = QueryDisposition::kCompleted,
    int32_t priority = 0, double deadline_s = kInf) {
  FleetStats::QuerySample sample;
  sample.arrival_s = arrival_s;
  sample.finish_s = finish_s;
  sample.latency_s = latency_s;
  sample.queue_wait_s = queue_wait_s;
  sample.disposition = disposition;
  sample.priority = priority;
  sample.deadline_s = deadline_s;
  return sample;
}

TEST(Percentile, EmptySampleIsZero) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 100.0), 0.0);
}

TEST(Percentile, SingleSampleIsEveryPercentile) {
  for (double pct : {0.0, 1.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(Percentile({3.5}, pct), 3.5) << pct;
  }
}

TEST(Percentile, TwoSamplesSplitAtTheMedian) {
  const std::vector<double> two{2.0, 1.0};  // unsorted on purpose
  // Nearest-rank: ceil(p/100 * 2) picks the 1st value up to p50, the 2nd
  // beyond it.
  EXPECT_DOUBLE_EQ(Percentile(two, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(two, 50.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(two, 50.1), 2.0);
  EXPECT_DOUBLE_EQ(Percentile(two, 95.0), 2.0);
  EXPECT_DOUBLE_EQ(Percentile(two, 100.0), 2.0);
}

TEST(FleetStats, EmptyWorkloadFinalizesToZeros) {
  FleetStats fleet;
  fleet.Finalize();
  EXPECT_EQ(fleet.queries, 0);
  EXPECT_DOUBLE_EQ(fleet.throughput_qps, 0.0);
  EXPECT_DOUBLE_EQ(fleet.latency_p50_s, 0.0);
  EXPECT_DOUBLE_EQ(fleet.latency_p99_s, 0.0);
  EXPECT_DOUBLE_EQ(fleet.queue_wait_p95_s, 0.0);
  EXPECT_DOUBLE_EQ(fleet.cold_start_ratio, 0.0);
  EXPECT_DOUBLE_EQ(fleet.batch_occupancy_mean, 0.0);
  EXPECT_DOUBLE_EQ(fleet.cost_per_query, 0.0);
}

TEST(FleetStats, SingleQueryDistributionsCollapseToThatQuery) {
  FleetStats fleet;
  RunMetrics metrics;
  fleet.AddQuery(Sample(/*arrival_s=*/1.0, /*finish_s=*/3.0, /*latency_s=*/2.0,
                        /*queue_wait_s=*/0.5),
                 metrics);
  fleet.AddRun(/*member_queries=*/1, /*worker_invocations=*/4,
               /*cold_starts=*/4, /*ok=*/true);
  fleet.total_cost = 0.01;
  fleet.Finalize();
  EXPECT_EQ(fleet.queries, 1);
  EXPECT_EQ(fleet.failed, 0);
  EXPECT_DOUBLE_EQ(fleet.makespan_s, 2.0);
  for (double p : {fleet.latency_p50_s, fleet.latency_p95_s,
                   fleet.latency_p99_s, fleet.latency_max_s}) {
    EXPECT_DOUBLE_EQ(p, 2.0);
  }
  for (double p : {fleet.queue_wait_p50_s, fleet.queue_wait_p95_s,
                   fleet.queue_wait_max_s, fleet.queue_wait_mean_s}) {
    EXPECT_DOUBLE_EQ(p, 0.5);
  }
  EXPECT_DOUBLE_EQ(fleet.batch_occupancy_mean, 1.0);
  EXPECT_EQ(fleet.batch_occupancy_max, 1);
  EXPECT_DOUBLE_EQ(fleet.cold_start_ratio, 1.0);
  EXPECT_DOUBLE_EQ(fleet.cost_per_query, 0.01);
}

TEST(FleetStats, TwoQueriesSplitPercentilesAndOccupancy) {
  FleetStats fleet;
  RunMetrics metrics;
  fleet.AddQuery(Sample(0.0, 1.0, 1.0, 0.0), metrics);
  fleet.AddQuery(Sample(0.5, 4.5, 4.0, 1.5), metrics);
  // Both queries were served by ONE shared tree (occupancy 2).
  fleet.AddRun(/*member_queries=*/2, /*worker_invocations=*/4,
               /*cold_starts=*/2, /*ok=*/true);
  fleet.Finalize();
  EXPECT_EQ(fleet.queries, 2);
  EXPECT_DOUBLE_EQ(fleet.makespan_s, 4.5);
  EXPECT_DOUBLE_EQ(fleet.latency_p50_s, 1.0);   // nearest rank: 1st of 2
  EXPECT_DOUBLE_EQ(fleet.latency_p95_s, 4.0);   // 2nd of 2
  EXPECT_DOUBLE_EQ(fleet.latency_max_s, 4.0);
  EXPECT_DOUBLE_EQ(fleet.queue_wait_p50_s, 0.0);
  EXPECT_DOUBLE_EQ(fleet.queue_wait_p95_s, 1.5);
  EXPECT_DOUBLE_EQ(fleet.queue_wait_mean_s, 0.75);
  EXPECT_EQ(fleet.runs, 1);
  EXPECT_EQ(fleet.batched_queries, 2);
  EXPECT_DOUBLE_EQ(fleet.batch_occupancy_mean, 2.0);
  EXPECT_EQ(fleet.batch_occupancy_max, 2);
  EXPECT_DOUBLE_EQ(fleet.cold_start_ratio, 0.5);
}

TEST(FleetStats, FailedQueriesAndRunsAreExcludedFromDistributions) {
  FleetStats fleet;
  RunMetrics metrics;
  fleet.AddQuery(Sample(0.0, 1.0, 1.0, 0.0), metrics);
  fleet.AddQuery(Sample(0.0, 9.0, 9.0, 0.0, QueryDisposition::kFailed),
                 metrics);  // failed: excluded
  fleet.AddRun(1, 4, 0, true);
  fleet.AddRun(1, 4, 4, false);  // failed run: no invocations counted
  fleet.Finalize();
  EXPECT_EQ(fleet.queries, 2);
  EXPECT_EQ(fleet.completed, 1);
  EXPECT_EQ(fleet.failed, 1);
  EXPECT_DOUBLE_EQ(fleet.latency_max_s, 1.0);
  EXPECT_EQ(fleet.runs, 1);
  EXPECT_EQ(fleet.worker_invocations, 4);
  EXPECT_EQ(fleet.cold_starts, 0);
  // Makespan still spans every query (the failed one finished last).
  EXPECT_DOUBLE_EQ(fleet.makespan_s, 9.0);
}

TEST(FleetStats, DispositionsPartitionTotalSubmissionsExactly) {
  // One query per disposition, plus one extra completed one. The terminal
  // partition must be mutually exclusive and sum to total submissions —
  // a rejected or shed query can never leak into failed (or vice versa),
  // and aborted/horizon-cut queries are labeled subsets of failed.
  FleetStats fleet;
  RunMetrics metrics;
  fleet.AddQuery(Sample(0.0, 1.0, 1.0, 0.0), metrics);
  fleet.AddQuery(Sample(0.1, 1.1, 1.0, 0.0), metrics);
  fleet.AddQuery(Sample(0.2, 2.0, 1.8, 0.0, QueryDisposition::kFailed),
                 metrics);
  fleet.AddQuery(Sample(0.3, 0.3, 0.0, 0.0, QueryDisposition::kRejected),
                 metrics);
  fleet.AddQuery(Sample(0.4, 0.9, 0.0, 0.5, QueryDisposition::kShed),
                 metrics);
  fleet.AddQuery(Sample(0.5, 1.5, 0.0, 0.0, QueryDisposition::kAborted),
                 metrics);
  fleet.AddQuery(Sample(0.6, 3.0, 0.0, 0.0, QueryDisposition::kInFlight),
                 metrics);
  fleet.AddRun(2, 4, 0, true);
  fleet.Finalize();

  EXPECT_EQ(fleet.queries, 7);
  EXPECT_EQ(fleet.completed, 2);
  EXPECT_EQ(fleet.failed, 3);  // execution failure + aborted + in flight
  EXPECT_EQ(fleet.aborted, 1);
  EXPECT_EQ(fleet.still_in_flight, 1);
  EXPECT_EQ(fleet.rejected, 1);
  EXPECT_EQ(fleet.shed, 1);
  // The partition identity: completed + failed + rejected + shed == total.
  EXPECT_EQ(fleet.completed + fleet.failed + fleet.rejected + fleet.shed,
            fleet.queries);
  EXPECT_LE(fleet.aborted + fleet.still_in_flight, fleet.failed);

  // Rejected/shed queries never launched a tree: they must not appear in
  // the latency distribution (max reflects the completed queries only) nor
  // in the occupancy denominator (2 completed queries on 1 run).
  EXPECT_DOUBLE_EQ(fleet.latency_max_s, 1.0);
  EXPECT_DOUBLE_EQ(fleet.batch_occupancy_mean, 2.0);
  // Throughput counts completed queries only.
  EXPECT_DOUBLE_EQ(fleet.throughput_qps, 2.0 / fleet.makespan_s);
}

TEST(FleetStats, SloAttainmentAndPerClassPercentiles) {
  FleetStats fleet;
  RunMetrics metrics;
  // Priority 0: two completed queries with deadlines, one hit, one miss.
  fleet.AddQuery(Sample(0.0, 1.0, 1.0, 0.0, QueryDisposition::kCompleted,
                        /*priority=*/0, /*deadline_s=*/2.0),
                 metrics);
  fleet.AddQuery(Sample(0.0, 5.0, 5.0, 0.0, QueryDisposition::kCompleted,
                        /*priority=*/0, /*deadline_s=*/4.0),
                 metrics);
  // Priority 1: one deadline-free completed query.
  fleet.AddQuery(Sample(0.0, 2.0, 2.0, 0.0, QueryDisposition::kCompleted,
                        /*priority=*/1),
                 metrics);
  // A rejected query with a deadline never counts toward attainment.
  fleet.AddQuery(Sample(0.0, 0.0, 0.0, 0.0, QueryDisposition::kRejected,
                        /*priority=*/0, /*deadline_s=*/1.0),
                 metrics);
  fleet.Finalize();

  EXPECT_EQ(fleet.deadline_queries, 2);
  EXPECT_EQ(fleet.deadline_hits, 1);
  EXPECT_DOUBLE_EQ(fleet.slo_attainment, 0.5);
  // Goodput: completed-and-on-time queries (the deadline-free one counts
  // as on time) over the makespan.
  EXPECT_DOUBLE_EQ(fleet.goodput_qps, 2.0 / fleet.makespan_s);
  EXPECT_DOUBLE_EQ(fleet.throughput_qps, 3.0 / fleet.makespan_s);

  ASSERT_EQ(fleet.class_latency.size(), 2u);
  EXPECT_EQ(fleet.class_latency[0].priority, 0);
  EXPECT_EQ(fleet.class_latency[0].completed, 2);
  EXPECT_DOUBLE_EQ(fleet.class_latency[0].latency_p50_s, 1.0);
  EXPECT_DOUBLE_EQ(fleet.class_latency[0].latency_p95_s, 5.0);
  EXPECT_EQ(fleet.class_latency[1].priority, 1);
  EXPECT_EQ(fleet.class_latency[1].completed, 1);
  EXPECT_DOUBLE_EQ(fleet.class_latency[1].latency_p50_s, 2.0);
}

TEST(FleetStats, NoDeadlinesMeansFullAttainment) {
  FleetStats fleet;
  RunMetrics metrics;
  fleet.AddQuery(Sample(0.0, 1.0, 1.0, 0.0), metrics);
  fleet.Finalize();
  EXPECT_EQ(fleet.deadline_queries, 0);
  EXPECT_DOUBLE_EQ(fleet.slo_attainment, 1.0);
  EXPECT_DOUBLE_EQ(fleet.goodput_qps, fleet.throughput_qps);
}

TEST(LayerMetrics, AddAccumulatesDirectAndCollectiveCounters) {
  LayerMetrics a;
  a.direct_connects = 2;
  a.punch_failures = 1;
  a.direct_msgs = 5;
  a.direct_billed_bytes = 1000;
  a.relay_fallback_msgs = 3;
  a.direct_pops = 7;
  a.direct_empty_pops = 2;
  a.collective_rounds = 4;
  a.collective_round_s = 0.25;
  LayerMetrics b;
  b.direct_connects = 1;
  b.punch_failures = 2;
  b.direct_msgs = 10;
  b.direct_billed_bytes = 500;
  b.relay_fallback_msgs = 1;
  b.direct_pops = 3;
  b.direct_empty_pops = 1;
  b.collective_rounds = 6;
  b.collective_round_s = 0.15;
  a.Add(b);
  EXPECT_EQ(a.direct_connects, 3);
  EXPECT_EQ(a.punch_failures, 3);
  EXPECT_EQ(a.direct_msgs, 15);
  EXPECT_EQ(a.direct_billed_bytes, 1500);
  EXPECT_EQ(a.relay_fallback_msgs, 4);
  EXPECT_EQ(a.direct_pops, 10);
  EXPECT_EQ(a.direct_empty_pops, 3);
  EXPECT_EQ(a.collective_rounds, 10);
  EXPECT_DOUBLE_EQ(a.collective_round_s, 0.40);
}

TEST(FleetStats, DirectLinkAndCollectiveRoundCountersAggregate) {
  FleetStats fleet;
  RunMetrics first;
  first.totals.direct_connects = 3;
  first.totals.punch_failures = 1;
  first.totals.relay_fallback_msgs = 2;
  first.totals.collective_rounds = 4;
  first.totals.collective_round_s = 0.4;
  fleet.AddQuery(Sample(0.0, 1.0, 1.0, 0.0), first);
  RunMetrics second;
  second.totals.direct_connects = 1;
  second.totals.collective_rounds = 6;
  second.totals.collective_round_s = 0.2;
  fleet.AddQuery(Sample(0.0, 2.0, 2.0, 0.0), second);
  // Non-completed queries contribute nothing (consistent with every other
  // per-run aggregate: only served queries enter fleet totals).
  RunMetrics failed;
  failed.totals.direct_connects = 100;
  failed.totals.collective_rounds = 100;
  fleet.AddQuery(Sample(0.0, 3.0, 3.0, 0.0, QueryDisposition::kFailed),
                 failed);
  fleet.Finalize();
  EXPECT_EQ(fleet.direct_connects, 4);
  EXPECT_EQ(fleet.punch_failures, 1);
  EXPECT_EQ(fleet.relay_fallbacks, 2);
  EXPECT_EQ(fleet.collective_rounds, 10);
  // Mean per-round time pools the time over the pooled round count.
  EXPECT_DOUBLE_EQ(fleet.collective_round_mean_s, 0.6 / 10.0);
  // The counters surface in the operator-facing summary.
  const std::string summary = fleet.Summary();
  EXPECT_NE(summary.find("relay"), std::string::npos) << summary;
  EXPECT_NE(summary.find("round"), std::string::npos) << summary;
}

TEST(Arrivals, PoissonIsDeterministicPerSeed) {
  const auto a = PoissonArrivals(2.0, 64, 42);
  const auto b = PoissonArrivals(2.0, 64, 42);
  EXPECT_EQ(a, b);
  const auto c = PoissonArrivals(2.0, 64, 43);
  EXPECT_NE(a, c);
  ASSERT_EQ(a.size(), 64u);
  // Strictly increasing, positive gaps.
  for (size_t i = 1; i < a.size(); ++i) EXPECT_GT(a[i], a[i - 1]);
  EXPECT_GT(a.front(), 0.0);
  // Mean inter-arrival roughly 1/rate (loose: 64 samples).
  EXPECT_NEAR(a.back() / 64.0, 0.5, 0.25);
}

TEST(Arrivals, BurstTraceIsExactAndDeterministic) {
  const auto a = BurstArrivals(3, 2, 10.0, /*start_s=*/1.0);
  const std::vector<double> expected{1.0, 1.0, 11.0, 11.0, 21.0, 21.0};
  EXPECT_EQ(a, expected);
  EXPECT_EQ(a, BurstArrivals(3, 2, 10.0, 1.0));
}

}  // namespace
}  // namespace fsd::core
