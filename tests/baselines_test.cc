#include <gtest/gtest.h>

#include "baselines/hspff.h"
#include "baselines/sage.h"
#include "baselines/server.h"
#include "model/input_gen.h"
#include "model/reference.h"

namespace fsd::baselines {
namespace {

struct Fixture {
  model::SparseDnn dnn;
  linalg::ActivationMap input;
  model::ReferenceStats stats;
  linalg::ActivationMap expected;
};

Fixture MakeFixture(int32_t neurons = 512, int32_t layers = 8,
                    int32_t batch = 16) {
  model::SparseDnnConfig config;
  config.neurons = neurons;
  config.layers = layers;
  Fixture f{*model::GenerateSparseDnn(config), {}, {}, {}};
  model::InputConfig ic;
  ic.neurons = neurons;
  ic.batch = batch;
  f.input = *model::GenerateInputBatch(ic);
  f.expected = *model::ReferenceInference(f.dnn, f.input, &f.stats);
  return f;
}

TEST(ServerBaseline, JobScopedSizingRule) {
  EXPECT_EQ(JobScopedInstanceType(1024), "c5.2xlarge");
  EXPECT_EQ(JobScopedInstanceType(4096), "c5.2xlarge");
  EXPECT_EQ(JobScopedInstanceType(16384), "c5.9xlarge");
  EXPECT_EQ(JobScopedInstanceType(65536), "c5.12xlarge");
}

TEST(ServerBaseline, HotColdLatencyOrdering) {
  Fixture f = MakeFixture();
  auto run = [&](ModelResidence residence) {
    sim::Simulation sim;
    cloud::CloudEnv cloud(&sim);
    ServerRunOptions options;
    options.residence = residence;
    options.precomputed_stats = &f.stats;
    auto report = RunServerInference(&cloud, f.dnn, f.input, options);
    EXPECT_TRUE(report.ok());
    return report->latency_s;
  };
  const double memory = run(ModelResidence::kMemory);
  const double ebs = run(ModelResidence::kEbs);
  const double object = run(ModelResidence::kObject);
  EXPECT_LT(memory, ebs);
  EXPECT_LT(ebs, object);
}

TEST(ServerBaseline, JobScopedPaysBootAndBills) {
  Fixture f = MakeFixture();
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  ServerRunOptions options;
  options.job_scoped = true;
  options.residence = ModelResidence::kObject;
  options.precomputed_stats = &f.stats;
  auto report = RunServerInference(&cloud, f.dnn, f.input, options);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->boot_s, 10.0);  // VM boot dominates
  EXPECT_GT(report->job_cost, 0.0);
  EXPECT_GT(report->latency_s, report->boot_s);
}

TEST(ServerBaseline, ComputesRealOutputWhenAsked) {
  Fixture f = MakeFixture(256, 4, 8);
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  ServerRunOptions options;  // no precomputed stats -> runs the kernel
  auto report = RunServerInference(&cloud, f.dnn, f.input, options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->output.size(), f.expected.size());
  for (const auto& [row, vec] : f.expected) {
    EXPECT_EQ(report->output.at(row), vec);
  }
}

TEST(ServerBaseline, BiggerInstanceIsFaster) {
  Fixture f = MakeFixture();
  auto run = [&](const std::string& type) {
    sim::Simulation sim;
    cloud::CloudEnv cloud(&sim);
    ServerRunOptions options;
    options.instance_type = type;
    options.precomputed_stats = &f.stats;
    return RunServerInference(&cloud, f.dnn, f.input, options)->latency_s;
  };
  EXPECT_GT(run("c5.2xlarge"), run("c5.12xlarge"));
}

TEST(ServerBaseline, RejectsUnknownInstanceType) {
  Fixture f = MakeFixture(256, 2, 4);
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  ServerRunOptions options;
  options.instance_type = "x1e.32xlarge";
  EXPECT_FALSE(RunServerInference(&cloud, f.dnn, f.input, options).ok());
}

TEST(Hspff, ComputeRateBeatsAnySingleServer) {
  // 4 nodes x 24 cores at 0.7 efficiency ~ 67 effective cores: with the
  // fixed per-layer MPI overhead removed, H-SpFF's pure compute must beat
  // the largest single VM in the catalogue. (On toy workloads the fixed
  // overhead legitimately dominates — the full-scale relationship is what
  // bench_fig5_query_latency charts.)
  Fixture f = MakeFixture();
  cloud::ComputeModelConfig compute;
  HspffConfig config;
  config.per_layer_comm_s = 0.0;
  const HspffReport hpc = EstimateHspff(f.dnn, f.stats, 16, compute, config);
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  ServerRunOptions options;
  options.precomputed_stats = &f.stats;
  auto server = RunServerInference(&cloud, f.dnn, f.input, options);
  ASSERT_TRUE(server.ok());
  EXPECT_LT(hpc.latency_s, server->latency_s);
  EXPECT_GT(hpc.latency_s, 0.0);
}

TEST(Hspff, MoreNodesAreFaster) {
  Fixture f = MakeFixture();
  cloud::ComputeModelConfig compute;
  HspffConfig small;
  small.nodes = 2;
  HspffConfig large;
  large.nodes = 16;
  EXPECT_GT(EstimateHspff(f.dnn, f.stats, 16, compute, small).latency_s,
            EstimateHspff(f.dnn, f.stats, 16, compute, large).latency_s);
}

TEST(Hspff, CommOverheadScalesWithLayers) {
  Fixture f = MakeFixture(512, 8, 16);
  cloud::ComputeModelConfig compute;
  HspffConfig config;
  config.per_layer_comm_s = 1.0;  // exaggerate to isolate the term
  const HspffReport slow = EstimateHspff(f.dnn, f.stats, 16, compute, config);
  config.per_layer_comm_s = 0.0;
  const HspffReport fast = EstimateHspff(f.dnn, f.stats, 16, compute, config);
  EXPECT_NEAR(slow.latency_s - fast.latency_s, 8.0, 1e-9);
}

TEST(SageServerless, ServesSmallModels) {
  Fixture f = MakeFixture(512, 6, 32);
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  const SageReport report = RunSageServerless(&cloud, f.dnn, f.stats, 32);
  EXPECT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_EQ(report.served_samples, 32);
  EXPECT_GT(report.per_sample_ms, 0.0);
}

TEST(SageServerless, MemoryCapRejectsLargeModels) {
  // A synthetic "model" whose weights exceed 6 GB: N=65536, L=120 would be
  // ~2 GB real + overhead; fake it with a small dnn and a tiny cap.
  Fixture f = MakeFixture(512, 6, 8);
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  SageEndpointConfig config;
  config.memory_mb = 1;  // model cannot fit
  const SageReport report =
      RunSageServerless(&cloud, f.dnn, f.stats, 8, config);
  EXPECT_TRUE(report.status.IsResourceExhausted());
  EXPECT_EQ(report.served_samples, 0);
}

TEST(SageServerless, PayloadCapLimitsBatch) {
  Fixture f = MakeFixture(1024, 4, 64);
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  SageEndpointConfig config;
  config.max_payload_bytes = 16 * 1024;  // tiny request cap
  const SageReport report =
      RunSageServerless(&cloud, f.dnn, f.stats, 64, config);
  EXPECT_TRUE(report.status.IsResourceExhausted());
  EXPECT_GT(report.served_samples, 0);
  EXPECT_LT(report.served_samples, 64);
}

TEST(SageServerless, RuntimeCapLimitsBatch) {
  Fixture f = MakeFixture(1024, 8, 64);
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  SageEndpointConfig config;
  // Budget: model load plus ~10 samples of compute -> only a partial batch
  // fits the runtime window.
  const double per_sample = cloud.compute().FaasComputeSeconds(
      f.stats.total_flops / 64.0, config.memory_mb);
  const double model_load = static_cast<double>(f.dnn.WeightBytes()) /
                            cloud.compute().deserialize_bytes_per_s;
  config.max_runtime_s = model_load + 10.5 * per_sample;
  const SageReport report =
      RunSageServerless(&cloud, f.dnn, f.stats, 64, config);
  EXPECT_TRUE(report.status.IsResourceExhausted());
  EXPECT_EQ(report.served_samples, 10);

  // And a budget below the model load fails outright.
  config.max_runtime_s = model_load * 0.5;
  const SageReport dead = RunSageServerless(&cloud, f.dnn, f.stats, 64, config);
  EXPECT_TRUE(dead.status.IsDeadlineExceeded());
  EXPECT_EQ(dead.served_samples, 0);
}

}  // namespace
}  // namespace fsd::baselines
