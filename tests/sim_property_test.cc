// Property tests for the DES kernel: randomized schedules must replay
// identically run-over-run AND across kernel tunings (the fast pooled
// handshake vs the legacy thread-per-process path), and every run must
// uphold the kernel invariants — monotonic virtual time, no callback
// after quiesce, every scheduled event either fires or is drained.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "sim/simulation.h"

namespace fsd::sim {
namespace {

// A randomized schedule is generated as DATA first (from one Rng draw
// sequence), then executed against any tuning — so every execution of one
// seed runs the exact same program and only the kernel under test varies.
struct Op {
  enum Kind { kHold, kFire, kWait, kCallback, kSpawnJoin, kOffload };
  Kind kind = kHold;
  double amount = 0.0;  // hold/callback delay, wait timeout or offload charge
  int signal = 0;       // kFire / kWait target
};

struct Program {
  int num_signals = 1;
  std::vector<std::vector<Op>> processes;  // ops per process
  int callbacks = 0;                       // total kCallback ops
};

Program MakeProgram(uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  Program program;
  program.num_signals = 1 + static_cast<int>(rng.NextBounded(3));
  const int num_procs = 2 + static_cast<int>(rng.NextBounded(5));
  program.processes.resize(num_procs);
  for (auto& ops : program.processes) {
    const int num_ops = 1 + static_cast<int>(rng.NextBounded(6));
    for (int i = 0; i < num_ops; ++i) {
      Op op;
      switch (rng.NextBounded(6)) {
        case 0:
          op.kind = Op::kHold;
          op.amount = rng.NextUniform(0.0, 2.0);
          break;
        case 1:
          op.kind = Op::kFire;
          op.signal = static_cast<int>(rng.NextBounded(program.num_signals));
          break;
        case 2:
          op.kind = Op::kWait;
          op.signal = static_cast<int>(rng.NextBounded(program.num_signals));
          op.amount = rng.NextUniform(0.1, 1.5);
          break;
        case 3:
          op.kind = Op::kCallback;
          op.amount = rng.NextUniform(0.0, 3.0);
          ++program.callbacks;
          break;
        case 4:
          op.kind = Op::kOffload;
          op.amount = rng.NextUniform(0.0, 1.0);
          break;
        default:
          op.kind = Op::kSpawnJoin;
          op.amount = rng.NextUniform(0.0, 1.0);
          break;
      }
      ops.push_back(op);
    }
  }
  return program;
}

struct RunResult {
  // One line per observable step: "<time> <who> <what>". Comparing the
  // whole trace across runs asserts identical ORDER, not just end state.
  std::vector<std::string> trace;
  double end_time = 0.0;
  uint64_t events_dispatched = 0;
  uint64_t pending_after_run = 0;
};

RunResult Execute(const Program& program, SimTuning tuning) {
  RunResult result;
  Simulation sim(tuning);
  std::vector<std::shared_ptr<SimSignal>> signals;
  for (int i = 0; i < program.num_signals; ++i) {
    signals.push_back(sim.MakeSignal());
  }
  auto record = [&](int who, const char* what) {
    result.trace.push_back(
        StrFormat("%.9f p%d %s", sim.Now(), who, what));
  };
  for (size_t p = 0; p < program.processes.size(); ++p) {
    const std::vector<Op>& ops = program.processes[p];
    const int who = static_cast<int>(p);
    sim.AddProcess(StrFormat("prop-%d", who), [&, ops, who]() {
      record(who, "start");
      for (const Op& op : ops) {
        switch (op.kind) {
          case Op::kHold:
            sim.Hold(op.amount);
            record(who, "held");
            break;
          case Op::kFire:
            signals[op.signal]->Fire();
            record(who, "fired");
            break;
          case Op::kWait: {
            const bool woke =
                sim.WaitSignal(signals[op.signal].get(), op.amount);
            record(who, woke ? "woke" : "timeout");
            break;
          }
          case Op::kCallback:
            sim.ScheduleCallback(op.amount,
                                 [&, who]() { record(who, "callback"); });
            break;
          case Op::kOffload: {
            // The closure writes op-local state only (the offload
            // contract); the value is observed AFTER the join so the
            // trace proves both the charge and the result handoff.
            int computed = 0;
            sim.Offload(op.amount, [&computed, who]() {
              computed = 1000 + who;
            });
            record(who, computed == 1000 + who ? "offloaded" : "LOST");
            break;
          }
          case Op::kSpawnJoin: {
            ProcessHandle child =
                sim.Spawn(StrFormat("child-%d", who), [&, who]() {
                  sim.Hold(op.amount);
                  record(who, "child-done");
                });
            sim.Join(child);
            record(who, "joined");
            break;
          }
        }
      }
      record(who, "end");
    });
  }
  sim.Run();
  result.end_time = sim.Now();
  result.events_dispatched = sim.events_dispatched();
  result.pending_after_run = sim.pending_events();
  return result;
}

constexpr int kSeeds = 120;

TEST(SimProperty, ReplayIsDeterministicPerSeed) {
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    const Program program = MakeProgram(seed);
    const RunResult a = Execute(program, SimTuning{});
    const RunResult b = Execute(program, SimTuning{});
    ASSERT_EQ(a.trace, b.trace) << "seed " << seed;
    ASSERT_EQ(a.end_time, b.end_time) << "seed " << seed;
    ASSERT_EQ(a.events_dispatched, b.events_dispatched) << "seed " << seed;
  }
}

TEST(SimProperty, FastAndLegacyTuningsOrderIdentically) {
  // The tuning changes HOW processes are resumed (pooled semaphore
  // handshake vs dedicated thread + mutex/cv), never WHAT order events
  // fire in — the legacy kernel doubles as the oracle for the fast one.
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    const Program program = MakeProgram(seed);
    const RunResult fast = Execute(program, SimTuning{});
    const RunResult legacy = Execute(program, SimTuning::Legacy());
    ASSERT_EQ(fast.trace, legacy.trace) << "seed " << seed;
    ASSERT_EQ(fast.end_time, legacy.end_time) << "seed " << seed;
    ASSERT_EQ(fast.events_dispatched, legacy.events_dispatched)
        << "seed " << seed;
  }
}

TEST(SimProperty, ComputePoolSizesTraceIdentically) {
  // compute_threads moves closures onto real threads; virtual behaviour —
  // the full observable trace, the clock, the event count — must be
  // byte-identical for every pool size, inline included.
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    const Program program = MakeProgram(seed);
    SimTuning inline_tuning;
    inline_tuning.compute_threads = 0;
    const RunResult inline_run = Execute(program, inline_tuning);
    for (const int pool : {1, 4}) {
      SimTuning tuning;
      tuning.compute_threads = pool;
      const RunResult pooled = Execute(program, tuning);
      ASSERT_EQ(inline_run.trace, pooled.trace)
          << "seed " << seed << " pool " << pool;
      ASSERT_EQ(inline_run.end_time, pooled.end_time)
          << "seed " << seed << " pool " << pool;
      ASSERT_EQ(inline_run.events_dispatched, pooled.events_dispatched)
          << "seed " << seed << " pool " << pool;
    }
    // The pool must also compose with the legacy thread-per-process path.
    SimTuning legacy_pooled = SimTuning::Legacy();
    legacy_pooled.compute_threads = 2;
    ASSERT_EQ(inline_run.trace, Execute(program, legacy_pooled).trace)
        << "seed " << seed;
  }
}

TEST(SimProperty, VirtualTimeIsMonotoneAndEveryEventResolves) {
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    const Program program = MakeProgram(seed);
    const RunResult result = Execute(program, SimTuning{});
    // Trace lines embed the observation time; parse them back and demand
    // global monotonicity (virtual time never runs backwards).
    double last = 0.0;
    for (const std::string& line : result.trace) {
      const double t = std::stod(line);
      ASSERT_GE(t, last) << "seed " << seed << ": " << line;
      last = t;
    }
    // Run-to-completion leaves nothing behind: every scheduled event
    // fired (and was counted) or was consumed by its process.
    ASSERT_EQ(result.pending_after_run, 0u) << "seed " << seed;
    ASSERT_GT(result.events_dispatched, 0u) << "seed " << seed;
  }
}

TEST(SimProperty, NoCallbackRunsAfterHorizonOrTeardown) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(seed + 17);
    int fired = 0;
    int beyond = 0;
    {
      Simulation sim;
      for (int i = 0; i < 20; ++i) {
        const double at = rng.NextUniform(0.0, 10.0);
        if (at > 5.0) ++beyond;
        sim.ScheduleCallback(at, [&fired]() { ++fired; });
      }
      sim.Run(5.0);
      // Events beyond the horizon are still pending, not fired.
      ASSERT_EQ(sim.pending_events(), static_cast<uint64_t>(beyond))
          << "seed " << seed;
      ASSERT_EQ(fired, 20 - beyond) << "seed " << seed;
    }
    // Teardown drained the remainder without running them.
    ASSERT_EQ(fired, 20 - beyond) << "seed " << seed;
  }
}

}  // namespace
}  // namespace fsd::sim
