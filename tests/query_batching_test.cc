// Cross-query batching tests: concurrent same-family queries coalesced
// into shared worker trees must produce byte-identical per-query outputs
// vs unbatched serving (batch_window_s = 0) on every channel backend,
// attribute metrics and cost per member exactly, and keep abort/quiescence
// guarantees under mid-workload kills.
#include <gtest/gtest.h>

#include <numeric>

#include "cloud/cloud.h"
#include "core/serving.h"
#include "model/input_gen.h"
#include "model/reference.h"

namespace fsd::core {
namespace {

struct Family {
  model::SparseDnn dnn;
  part::ModelPartition partition;
  /// Distinct inputs (one per query) with their own ground truths, so a
  /// misrouted output slice can never pass by accident.
  std::vector<linalg::ActivationMap> inputs;
  std::vector<linalg::ActivationMap> expected;
};

Family MakeFamily(int32_t queries, int32_t neurons = 256, int32_t layers = 8,
                  int32_t batch = 16, int32_t workers = 4,
                  uint64_t seed = 7) {
  Family f;
  model::SparseDnnConfig config;
  config.neurons = neurons;
  config.layers = layers;
  config.seed = seed;
  auto dnn = model::GenerateSparseDnn(config);
  EXPECT_TRUE(dnn.ok()) << dnn.status().ToString();
  f.dnn = std::move(*dnn);

  part::ModelPartitionOptions po;
  auto partition = part::PartitionModel(f.dnn, workers, po);
  EXPECT_TRUE(partition.ok()) << partition.status().ToString();
  f.partition = std::move(*partition);

  for (int32_t q = 0; q < queries; ++q) {
    model::InputConfig input_config;
    input_config.neurons = neurons;
    input_config.batch = batch;
    input_config.seed = seed + 100 + static_cast<uint64_t>(q);
    auto input = model::GenerateInputBatch(input_config);
    EXPECT_TRUE(input.ok()) << input.status().ToString();
    f.inputs.push_back(std::move(*input));
  }
  for (const auto& input : f.inputs) {
    auto expected = model::ReferenceInference(f.dnn, input);
    EXPECT_TRUE(expected.ok()) << expected.status().ToString();
    f.expected.push_back(std::move(*expected));
  }
  return f;
}

InferenceRequest MakeRequest(const Family& f, int32_t query, Variant variant) {
  InferenceRequest request;
  request.dnn = &f.dnn;
  request.partition = &f.partition;
  request.batches = {&f.inputs[static_cast<size_t>(query)]};
  request.options.variant = variant;
  request.options.num_workers = f.partition.num_parts;
  return request;
}

Result<ServingReport> ServeAll(const Family& f, Variant variant,
                               const std::vector<double>& arrivals,
                               const ServingOptions& options) {
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  ServingRuntime serving(&cloud, options);
  for (size_t q = 0; q < arrivals.size(); ++q) {
    auto id = serving.Submit(MakeRequest(f, static_cast<int32_t>(q), variant),
                             arrivals[q]);
    if (!id.ok()) return id.status();
  }
  return serving.Drain();
}

TEST(QueryBatching, BatchedOutputsByteIdenticalToUnbatchedPerBackend) {
  constexpr int kQueries = 5;
  Family f = MakeFamily(kQueries);
  // Everything in flight at once: the batching sweet spot.
  const std::vector<double> arrivals(kQueries, 0.0);
  for (Variant variant : {Variant::kQueue, Variant::kObject, Variant::kKv}) {
    SCOPED_TRACE(std::string(VariantName(variant)));

    ServingOptions unbatched;  // batch_window_s = 0: the ablation baseline
    auto base = ServeAll(f, variant, arrivals, unbatched);
    ASSERT_TRUE(base.ok()) << base.status().ToString();

    ServingOptions batched;
    batched.batch_window_s = 0.05;
    batched.max_batch_queries = kQueries;
    auto coalesced = ServeAll(f, variant, arrivals, batched);
    ASSERT_TRUE(coalesced.ok()) << coalesced.status().ToString();

    ASSERT_EQ(base->queries.size(), static_cast<size_t>(kQueries));
    ASSERT_EQ(coalesced->queries.size(), static_cast<size_t>(kQueries));
    for (int q = 0; q < kQueries; ++q) {
      const QueryOutcome& b = base->queries[q];
      const QueryOutcome& c = coalesced->queries[q];
      ASSERT_TRUE(b.report.status.ok()) << b.report.status.ToString();
      ASSERT_TRUE(c.report.status.ok()) << c.report.status.ToString();
      // Byte-identical per-query activations, and each query got ITS OWN
      // result (inputs are distinct per query).
      EXPECT_EQ(c.report.outputs, b.report.outputs) << "query " << q;
      ASSERT_EQ(c.report.outputs.size(), 1u);
      EXPECT_EQ(c.report.outputs[0], f.expected[q]) << "query " << q;
      // Latency runs from the query's own submission: the window wait is
      // part of it, never hidden.
      EXPECT_GE(c.report.latency_s, c.queue_wait_s);
      EXPECT_DOUBLE_EQ(c.report.latency_s, c.finish_s - c.arrival_s);
    }
    // The five queries genuinely shared one tree.
    EXPECT_EQ(coalesced->fleet.runs, 1);
    EXPECT_EQ(coalesced->fleet.batch_occupancy_max, kQueries);
    EXPECT_EQ(coalesced->queries[0].batch_peers, kQueries);
    for (int q = 1; q < kQueries; ++q) {
      EXPECT_EQ(coalesced->queries[q].run_id,
                coalesced->queries[0].run_id);
    }
    // Whereas unbatched ran one tree per query.
    EXPECT_EQ(base->fleet.runs, kQueries);
    EXPECT_EQ(base->fleet.batch_occupancy_max, 1);
    // Amortization: the shared tree paid P worker invocations once.
    EXPECT_EQ(coalesced->fleet.worker_invocations,
              base->fleet.worker_invocations / kQueries);
  }
}

TEST(QueryBatching, MultiBatchQueriesSliceTheRightOutputs) {
  Family f = MakeFamily(3);
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  ServingOptions options;
  options.batch_window_s = 0.05;
  ServingRuntime serving(&cloud, options);

  // Query 0 carries TWO batches, queries 1 and 2 one each: the merged run
  // has four batches and must slice [0,2), [2,3), [3,4) back.
  InferenceRequest two = MakeRequest(f, 0, Variant::kQueue);
  two.batches = {&f.inputs[0], &f.inputs[1]};
  ASSERT_TRUE(serving.Submit(two, 0.0).ok());
  ASSERT_TRUE(serving.Submit(MakeRequest(f, 1, Variant::kQueue), 0.0).ok());
  ASSERT_TRUE(serving.Submit(MakeRequest(f, 2, Variant::kQueue), 0.0).ok());

  auto report = serving.Drain();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->fleet.runs, 1);
  const auto& q0 = report->queries[0];
  ASSERT_TRUE(q0.report.status.ok()) << q0.report.status.ToString();
  ASSERT_EQ(q0.report.outputs.size(), 2u);
  EXPECT_EQ(q0.report.outputs[0], f.expected[0]);
  EXPECT_EQ(q0.report.outputs[1], f.expected[1]);
  for (int q = 1; q <= 2; ++q) {
    const auto& outcome = report->queries[q];
    ASSERT_TRUE(outcome.report.status.ok());
    ASSERT_EQ(outcome.report.outputs.size(), 1u);
    EXPECT_EQ(outcome.report.outputs[0], f.expected[q]) << "query " << q;
  }
}

TEST(QueryBatching, FullBatchFlushesBeforeTheWindow) {
  constexpr int kQueries = 4;
  Family f = MakeFamily(kQueries);
  const std::vector<double> arrivals(kQueries, 0.0);
  ServingOptions options;
  options.batch_window_s = 30.0;  // far longer than the whole workload
  options.max_batch_queries = 2;
  auto report = ServeAll(f, Variant::kQueue, arrivals, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // 4 simultaneous queries at cap 2: two full trees, flushed immediately
  // (no query waited out the 30 s window).
  EXPECT_EQ(report->fleet.runs, 2);
  EXPECT_EQ(report->fleet.batch_occupancy_max, 2);
  for (const QueryOutcome& outcome : report->queries) {
    ASSERT_TRUE(outcome.report.status.ok());
    EXPECT_EQ(outcome.batch_peers, 2);
    EXPECT_LT(outcome.queue_wait_s, 1.0);
  }
  EXPECT_EQ(report->queries[0].run_id, report->queries[1].run_id);
  EXPECT_EQ(report->queries[2].run_id, report->queries[3].run_id);
  EXPECT_NE(report->queries[0].run_id, report->queries[2].run_id);
}

TEST(QueryBatching, ColumnCapBoundsSharedTrees) {
  constexpr int kQueries = 4;
  Family f = MakeFamily(kQueries);  // 16 columns per query
  const std::vector<double> arrivals(kQueries, 0.0);
  ServingOptions options;
  options.batch_window_s = 0.05;
  options.max_batch_queries = 8;
  options.max_batch_cols = 32;  // two 16-column queries per tree
  auto report = ServeAll(f, Variant::kQueue, arrivals, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->fleet.runs, 2);
  EXPECT_EQ(report->fleet.batch_occupancy_max, 2);
  for (int q = 0; q < kQueries; ++q) {
    const QueryOutcome& outcome = report->queries[q];
    ASSERT_TRUE(outcome.report.status.ok());
    EXPECT_EQ(outcome.report.outputs[0], f.expected[q]) << "query " << q;
  }
}

TEST(QueryBatching, OptOutAndForeignFamiliesNeverCoalesce) {
  Family f = MakeFamily(3);
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  ServingOptions options;
  options.batch_window_s = 0.05;
  ServingRuntime serving(&cloud, options);

  // Query 0 opts out; queries 1 and 2 differ in an execution-relevant
  // option (num_workers is fixed by the partition, so use the seed).
  InferenceRequest opt_out = MakeRequest(f, 0, Variant::kQueue);
  opt_out.options.cross_query_batching = false;
  InferenceRequest a = MakeRequest(f, 1, Variant::kQueue);
  InferenceRequest b = MakeRequest(f, 2, Variant::kQueue);
  b.options.seed = a.options.seed + 1;
  ASSERT_TRUE(serving.Submit(opt_out, 0.0).ok());
  ASSERT_TRUE(serving.Submit(a, 0.0).ok());
  ASSERT_TRUE(serving.Submit(b, 0.0).ok());

  auto report = serving.Drain();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->fleet.runs, 3);
  for (int q = 0; q < 3; ++q) {
    const QueryOutcome& outcome = report->queries[q];
    ASSERT_TRUE(outcome.report.status.ok());
    EXPECT_EQ(outcome.batch_peers, 1) << "query " << q;
    EXPECT_EQ(outcome.report.outputs[0], f.expected[q]) << "query " << q;
  }
}

TEST(QueryBatching, OverlappedBatchedServingIsDeterministic) {
  constexpr int kQueries = 6;
  Family f = MakeFamily(kQueries);
  // Staggered arrivals: some land inside an open window (coalesce), some
  // after a tree already launched (overlap with it as their own run/batch).
  const std::vector<double> arrivals =
      PoissonArrivals(/*rate_qps=*/8.0, kQueries, /*seed=*/31);
  ServingOptions options;
  options.batch_window_s = 0.1;
  options.max_batch_queries = 3;

  auto run_once = [&](Variant variant) {
    auto report = ServeAll(f, variant, arrivals, options);
    EXPECT_TRUE(report.ok());
    std::vector<std::vector<linalg::ActivationMap>> outputs;
    for (int q = 0; q < kQueries; ++q) {
      const QueryOutcome& outcome = report->queries[q];
      EXPECT_TRUE(outcome.report.status.ok())
          << outcome.report.status.ToString();
      EXPECT_EQ(outcome.report.outputs[0], f.expected[q]) << "query " << q;
      outputs.push_back(outcome.report.outputs);
    }
    // Trees genuinely coalesced AND overlapped (more than one run, fewer
    // runs than queries).
    EXPECT_GT(report->fleet.runs, 1);
    EXPECT_LT(report->fleet.runs, kQueries);
    return outputs;
  };
  for (Variant variant : {Variant::kQueue, Variant::kObject, Variant::kKv}) {
    SCOPED_TRACE(std::string(VariantName(variant)));
    EXPECT_EQ(run_once(variant), run_once(variant));
  }
}

TEST(QueryBatching, PerQueryAttributionSumsToWholeWorkload) {
  constexpr int kQueries = 4;
  Family f = MakeFamily(kQueries);
  const std::vector<double> arrivals(kQueries, 0.0);
  ServingOptions options;
  options.batch_window_s = 0.05;
  options.max_batch_queries = kQueries;

  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  ServingRuntime serving(&cloud, options);
  for (int q = 0; q < kQueries; ++q) {
    ASSERT_TRUE(serving.Submit(MakeRequest(f, q, Variant::kObject), 0.0).ok());
  }
  auto report = serving.Drain();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->fleet.runs, 1);

  // Exact integer attribution: the members' sliced model-read and channel
  // GET counters must sum to the ledger's object GETs exactly (the §VI-F
  // reconciliation, per member).
  int64_t gets = 0;
  double predicted_comm = 0.0;
  double tree_share = 0.0;
  for (const QueryOutcome& outcome : report->queries) {
    ASSERT_TRUE(outcome.report.status.ok());
    gets += outcome.report.metrics.model_get_parts +
            outcome.report.metrics.totals.gets;
    predicted_comm += outcome.report.predicted.communication;
    tree_share += outcome.report.metrics.tree_share;
    EXPECT_LT(outcome.report.metrics.tree_share, 1.0);
  }
  EXPECT_DOUBLE_EQ(
      report->billing.quantity(cloud::BillingDimension::kObjectGet),
      static_cast<double>(gets));
  EXPECT_NEAR(tree_share, 1.0, 1e-12);
  // Summed per-member comm predictions reconcile with the ledger's comm
  // charges (object variant: every op is individually billed and counted).
  EXPECT_NEAR(predicted_comm, report->billing.comm_cost,
              1e-3 * report->billing.comm_cost);
}

TEST(QueryBatching, MalformedRequestsFailAtSubmitOnBothPaths) {
  Family f = MakeFamily(1);
  for (double window : {0.0, 0.1}) {
    SCOPED_TRACE(window);
    sim::Simulation sim;
    cloud::CloudEnv cloud(&sim);
    ServingOptions options;
    options.batch_window_s = window;
    ServingRuntime serving(&cloud, options);

    InferenceRequest no_batches = MakeRequest(f, 0, Variant::kQueue);
    no_batches.batches.clear();
    EXPECT_FALSE(serving.Submit(no_batches, 0.0).ok());

    InferenceRequest null_batch = MakeRequest(f, 0, Variant::kQueue);
    null_batch.batches = {nullptr};
    EXPECT_FALSE(serving.Submit(null_batch, 0.0).ok());

    linalg::ActivationMap empty;
    InferenceRequest empty_batch = MakeRequest(f, 0, Variant::kQueue);
    empty_batch.batches = {&empty};
    EXPECT_FALSE(serving.Submit(empty_batch, 0.0).ok());

    EXPECT_EQ(serving.queries_submitted(), 0);
  }
}

TEST(QueryBatching, StopOnFailureAbortsQueriesWaitingInTheWindow) {
  constexpr int32_t kWorkers = 4;
  Family f = MakeFamily(4, 256, 8, 16, kWorkers);
  InferenceRequest poisoned = MakeRequest(f, 0, Variant::kQueue);
  poisoned.options.worker_timeout_s = 0.01;  // fails fast

  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  ServingOptions options;
  options.stop_on_failure = true;
  options.batch_window_s = 5.0;
  ServingRuntime serving(&cloud, options);
  // The poisoned query (own family: different timeout) flushes at t=5 and
  // fails within milliseconds; the healthy queries arrive at t=1 so their
  // batch is still waiting out its window (flush at t=6) when the failure
  // aborts the workload — they must abort WITHOUT launching a tree.
  ASSERT_TRUE(serving.Submit(poisoned, 0.0).ok());
  for (int q = 1; q < 4; ++q) {
    ASSERT_TRUE(serving.Submit(MakeRequest(f, q, Variant::kQueue), 1.0).ok());
  }
  auto report = serving.Drain();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // The poisoned query failed; the healthy ones were still coalescing and
  // abort when their batch flushes — without launching a tree. Everything
  // reaches a terminal state and the simulation fully drains.
  EXPECT_FALSE(report->queries[0].report.status.ok());
  EXPECT_EQ(report->fleet.failed, 4);
  for (const QueryOutcome& outcome : report->queries) {
    EXPECT_GT(outcome.finish_s, 0.0);
  }
  EXPECT_EQ(sim.live_processes(), 0);
}

TEST(QueryBatching, ResumedDrainFlushesWindowsCutOffByTheHorizon) {
  constexpr int kQueries = 3;
  Family f = MakeFamily(kQueries);
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  ServingOptions options;
  options.batch_window_s = 0.5;
  options.run_until = 0.1;  // inside the window: nothing launched yet
  ServingRuntime serving(&cloud, options);
  for (int q = 0; q < kQueries; ++q) {
    ASSERT_TRUE(serving.Submit(MakeRequest(f, q, Variant::kQueue), 0.0).ok());
  }
  auto cut = serving.Drain();
  ASSERT_TRUE(cut.ok());
  for (const QueryOutcome& outcome : cut->queries) {
    EXPECT_FALSE(outcome.report.status.ok());
  }
  auto resumed = serving.Drain(/*run_until=*/-1.0);
  ASSERT_TRUE(resumed.ok());
  for (int q = 0; q < kQueries; ++q) {
    const QueryOutcome& outcome = resumed->queries[q];
    ASSERT_TRUE(outcome.report.status.ok())
        << outcome.report.status.ToString();
    EXPECT_EQ(outcome.report.outputs[0], f.expected[q]);
    EXPECT_EQ(outcome.batch_peers, kQueries);
  }
  EXPECT_EQ(sim.live_processes(), 0);
}

}  // namespace
}  // namespace fsd::core
