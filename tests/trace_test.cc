// Workload-trace tests: generator determinism and statistical shape,
// serialization round-trips, and a serving-level replay asserting
// per-tenant quota enforcement and the FleetStats tenant partition.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "cloud/cloud.h"
#include "core/serving.h"
#include "core/trace.h"
#include "model/input_gen.h"
#include "model/reference.h"

namespace fsd::core {
namespace {

TraceConfig TwoTenantConfig() {
  TraceConfig config;
  config.duration_s = 200.0;
  config.base_rate_qps = 50.0;
  config.diurnal_amplitude = 0.4;
  config.diurnal_period_s = 100.0;
  config.seed = 42;
  TenantSpec gold;
  gold.tenant = 1;
  gold.name = "gold";
  gold.qps_share = 3.0;
  gold.priority = 2;
  gold.slo_deadline_s = 5.0;
  TenantSpec bronze;
  bronze.tenant = 2;
  bronze.name = "bronze";
  bronze.qps_share = 1.0;
  bronze.quota_qps = 2.0;
  config.tenants = {gold, bronze};
  return config;
}

TEST(Trace, GenerationIsDeterministicPerSeed) {
  const TraceConfig config = TwoTenantConfig();
  auto a = GenerateTrace(config);
  auto b = GenerateTrace(config);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(SerializeTrace(*a), SerializeTrace(*b));
  ASSERT_GT(a->queries.size(), 1000u);

  TraceConfig reseeded = config;
  reseeded.seed = 43;
  auto c = GenerateTrace(reseeded);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(SerializeTrace(*a), SerializeTrace(*c));
}

TEST(Trace, ArrivalsAreSortedAndInRange) {
  auto trace = GenerateTrace(TwoTenantConfig());
  ASSERT_TRUE(trace.ok());
  double last = 0.0;
  for (const TraceQuery& q : trace->queries) {
    EXPECT_GE(q.arrival_s, last);
    EXPECT_LT(q.arrival_s, trace->config.duration_s);
    EXPECT_TRUE(q.tenant == 1 || q.tenant == 2);
    last = q.arrival_s;
  }
}

TEST(Trace, DiurnalSinusoidShapesTheRate) {
  TraceConfig config;
  config.duration_s = 400.0;
  config.base_rate_qps = 100.0;
  config.diurnal_amplitude = 0.8;
  config.diurnal_period_s = 400.0;  // one full cycle over the trace
  config.diurnal_phase = 0.0;
  config.seed = 7;
  auto trace = GenerateTrace(config);
  ASSERT_TRUE(trace.ok());
  // sin peaks at t=100 (rate 180 qps) and troughs at t=300 (rate 20 qps):
  // a 9x count ratio between symmetric windows around them.
  int peak = 0, trough = 0;
  for (const TraceQuery& q : trace->queries) {
    if (q.arrival_s >= 80.0 && q.arrival_s < 120.0) ++peak;
    if (q.arrival_s >= 280.0 && q.arrival_s < 320.0) ++trough;
  }
  EXPECT_GT(peak, trough * 5);  // 9x expected; 5x leaves Poisson noise room
  EXPECT_NEAR(TraceRateAt(config, 100.0), 180.0, 1e-9);
  EXPECT_NEAR(TraceRateAt(config, 300.0), 20.0, 1e-9);
}

TEST(Trace, FlashCrowdMultipliesTheRate) {
  TraceConfig config;
  config.duration_s = 100.0;
  config.base_rate_qps = 40.0;
  config.seed = 9;
  FlashCrowd crowd;
  crowd.start_s = 40.0;
  crowd.duration_s = 20.0;
  crowd.rate_multiplier = 5.0;
  config.flash_crowds = {crowd};
  auto trace = GenerateTrace(config);
  ASSERT_TRUE(trace.ok());
  int inside = 0, before = 0;
  for (const TraceQuery& q : trace->queries) {
    if (q.arrival_s >= 40.0 && q.arrival_s < 60.0) ++inside;
    if (q.arrival_s >= 10.0 && q.arrival_s < 30.0) ++before;
  }
  // Same-width windows: the crowd window should hold ~5x the arrivals.
  EXPECT_GT(inside, before * 3);
  EXPECT_NEAR(TraceRateAt(config, 50.0), 200.0, 1e-9);
  EXPECT_NEAR(TraceRateAt(config, 70.0), 40.0, 1e-9);
}

TEST(Trace, TenantSharesAreConservedWithinTolerance) {
  const TraceConfig config = TwoTenantConfig();  // 3:1 gold:bronze
  auto trace = GenerateTrace(config);
  ASSERT_TRUE(trace.ok());
  std::map<int32_t, int> counts;
  for (const TraceQuery& q : trace->queries) ++counts[q.tenant];
  const double total = static_cast<double>(trace->queries.size());
  EXPECT_NEAR(counts[1] / total, 0.75, 0.05);
  EXPECT_NEAR(counts[2] / total, 0.25, 0.05);
}

TEST(Trace, MaxQueriesCapsGeneration) {
  TraceConfig config = TwoTenantConfig();
  config.max_queries = 100;
  auto trace = GenerateTrace(config);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->queries.size(), 100u);
}

TEST(Trace, RejectsInvalidConfigs) {
  TraceConfig config;
  config.duration_s = -1.0;
  EXPECT_FALSE(GenerateTrace(config).ok());
  config = TraceConfig{};
  config.diurnal_amplitude = 1.5;
  EXPECT_FALSE(GenerateTrace(config).ok());
  config = TraceConfig{};
  config.tenants = {TenantSpec{}, TenantSpec{}};  // both id 0
  EXPECT_FALSE(GenerateTrace(config).ok());
}

TEST(Trace, SerializationRoundTripsExactly) {
  TraceConfig config = TwoTenantConfig();
  config.flash_crowds = {FlashCrowd{13.25, 7.5, 3.75}};
  config.max_queries = 5000;
  auto trace = GenerateTrace(config);
  ASSERT_TRUE(trace.ok());
  const std::string text = SerializeTrace(*trace);
  auto parsed = ParseTrace(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // %.17g doubles round-trip exactly: re-serializing must be stable.
  EXPECT_EQ(SerializeTrace(*parsed), text);
  EXPECT_EQ(parsed->queries.size(), trace->queries.size());
  EXPECT_EQ(parsed->config.tenants.size(), 2u);
  EXPECT_EQ(parsed->config.tenants[0].name, "gold");
  EXPECT_EQ(parsed->config.tenants[1].quota_qps, 2.0);

  const std::string path = testing::TempDir() + "/fsd_trace_roundtrip.txt";
  ASSERT_TRUE(SaveTrace(*trace, path).ok());
  auto loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(SerializeTrace(*loaded), text);

  EXPECT_FALSE(ParseTrace("not a trace").ok());
  EXPECT_FALSE(LoadTrace(path + ".missing").ok());
}

// --- serving-level replay ---

struct Workload {
  model::SparseDnn dnn;
  part::ModelPartition partition;
  linalg::ActivationMap input;
};

Workload MakeWorkload() {
  model::SparseDnnConfig config;
  config.neurons = 64;
  config.layers = 2;
  config.seed = 7;
  auto dnn = model::GenerateSparseDnn(config);
  EXPECT_TRUE(dnn.ok()) << dnn.status().ToString();
  auto partition = part::PartitionModel(*dnn, 1, {});
  EXPECT_TRUE(partition.ok()) << partition.status().ToString();
  model::InputConfig input_config;
  input_config.neurons = 64;
  input_config.batch = 4;
  input_config.seed = 8;
  auto input = model::GenerateInputBatch(input_config);
  EXPECT_TRUE(input.ok()) << input.status().ToString();
  return Workload{std::move(*dnn), std::move(*partition), std::move(*input)};
}

InferenceRequest MakeRequest(const Workload& w) {
  InferenceRequest request;
  request.dnn = &w.dnn;
  request.partition = &w.partition;
  request.batches = {&w.input};
  request.options.variant = Variant::kSerial;  // cheap single-worker trees
  request.options.num_workers = 1;
  return request;
}

TEST(TraceReplay, EnforcesTenantQuotasAndPartitionsFleetStats) {
  TraceConfig config;
  config.duration_s = 100.0;
  config.base_rate_qps = 10.0;
  config.seed = 21;
  TenantSpec gold;
  gold.tenant = 1;
  gold.qps_share = 1.0;
  gold.priority = 1;
  TenantSpec bronze;
  bronze.tenant = 2;
  bronze.qps_share = 1.0;
  bronze.quota_qps = 1.0;  // ~5 qps offered against a 1 qps quota
  config.tenants = {gold, bronze};
  auto trace = GenerateTrace(config);
  ASSERT_TRUE(trace.ok());
  ASSERT_GT(trace->queries.size(), 700u);

  Workload w = MakeWorkload();
  auto replay_once = [&]() {
    sim::Simulation sim;
    cloud::CloudEnv cloud(&sim);
    ServingOptions options;
    options.tenant_quotas = TraceTenantQuotas(trace->config);
    ServingRuntime serving(&cloud, options);
    auto report = ReplayTrace(serving, *trace, MakeRequest(w));
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return std::move(*report);
  };

  ServingReport report = replay_once();
  const FleetStats& fleet = report.fleet;
  EXPECT_EQ(fleet.queries, static_cast<int32_t>(trace->queries.size()));
  EXPECT_EQ(fleet.completed + fleet.failed + fleet.rejected + fleet.shed,
            fleet.queries);

  // Per-tenant disposition partition, against the per-query outcomes.
  std::map<int32_t, int32_t> queries, completed, rejected;
  for (const QueryOutcome& outcome : report.queries) {
    ++queries[outcome.tenant];
    if (outcome.disposition == QueryDisposition::kCompleted) {
      ++completed[outcome.tenant];
    }
    if (outcome.disposition == QueryDisposition::kRejected) {
      ++rejected[outcome.tenant];
      EXPECT_EQ(outcome.tenant, 2) << "only bronze carries a quota";
      EXPECT_NE(outcome.reject_reason.find("quota"), std::string::npos);
    }
    // Tenant metadata was stamped from the spec.
    if (outcome.tenant == 1) {
      EXPECT_EQ(outcome.priority, 1);
    }
  }
  ASSERT_EQ(fleet.tenant_stats.size(), 2u);
  for (const FleetStats::TenantStats& t : fleet.tenant_stats) {
    EXPECT_EQ(t.queries, queries[t.tenant]);
    EXPECT_EQ(t.completed, completed[t.tenant]);
    EXPECT_EQ(t.rejected, rejected[t.tenant]);
    EXPECT_EQ(t.completed + t.failed + t.rejected + t.shed, t.queries);
  }
  // Gold is unlimited: nothing rejected. Bronze offered ~5x its quota:
  // the bucket must reject the bulk of it but admit ~quota x duration.
  EXPECT_EQ(rejected[1], 0);
  EXPECT_GT(rejected[2], queries[2] / 2);
  EXPECT_GT(completed[2], 50);  // ~100s x 1 qps, minus burst edge effects

  // The replay is deterministic end to end: same trace, same kernel
  // decisions, byte-identical fleet summary.
  ServingReport again = replay_once();
  EXPECT_EQ(report.fleet.Summary(), again.fleet.Summary());
}

}  // namespace
}  // namespace fsd::core
