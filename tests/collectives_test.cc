// Collective operations over both serverless channels (the paper's MPI
// primitives: Send/Recv/Barrier/Reduce/Broadcast).
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "cloud/cloud.h"
#include "common/strings.h"
#include "core/collectives.h"
#include "core/object_channel.h"
#include "core/queue_channel.h"

namespace fsd::core {
namespace {

linalg::ActivationMap MakeRows(std::vector<int32_t> ids, float value) {
  linalg::ActivationMap out;
  for (int32_t id : ids) {
    linalg::SparseVector vec;
    vec.dim = 4;
    vec.idx = {0, 2};
    vec.val = {value, value * 2};
    out.emplace(id, std::move(vec));
  }
  return out;
}

/// Typed test over both channel implementations.
template <typename Channel>
class CollectivesTest : public ::testing::Test {
 protected:
  CollectivesTest() : cloud_(&sim_) {
    options_.num_workers = 4;
    options_.poll_wait_s = 2.0;
    options_.object_scan_interval_s = 0.01;
  }

  /// May be called several times per test (each call provisions under the
  /// current options_ and drives the fleet to quiescence); function names
  /// are epoch-qualified so repeated calls never collide.
  void RunWorkers(int32_t count,
                  std::function<void(WorkerEnv*, CommChannel*)> body) {
    const int epoch = epoch_++;
    FSD_CHECK_OK(Channel::Provision(&cloud_, options_));
    metrics_.resize(count);
    for (int32_t id = 0; id < count; ++id) {
      cloud::FaasFunctionConfig fn;
      fn.name = StrFormat("e%d-w%d", epoch, id);
      fn.memory_mb = 2048;
      fn.timeout_s = 600.0;
      WorkerMetrics* metrics = &metrics_[id];
      fn.handler = [this, body, metrics, id](cloud::FaasContext* ctx) {
        Channel channel;
        WorkerEnv env;
        env.faas = ctx;
        env.cloud = &cloud_;
        env.options = &options_;
        env.metrics = metrics;
        env.worker_id = id;
        body(&env, &channel);
        ctx->set_result(Status::OK());
      };
      FSD_CHECK_OK(cloud_.faas().RegisterFunction(fn));
    }
    sim_.AddProcess(StrFormat("kickoff-%d", epoch), [this, epoch, count]() {
      for (int32_t id = 0; id < count; ++id) {
        cloud_.faas().InvokeAsync(StrFormat("e%d-w%d", epoch, id), {});
      }
    });
    sim_.Run();
  }

  sim::Simulation sim_;
  cloud::CloudEnv cloud_;
  FsdOptions options_;
  int epoch_ = 0;
  std::vector<WorkerMetrics> metrics_;
};

using ChannelTypes = ::testing::Types<QueueChannel, ObjectChannel>;
TYPED_TEST_SUITE(CollectivesTest, ChannelTypes);

TYPED_TEST(CollectivesTest, SendRecvPointToPoint) {
  const linalg::ActivationMap rows = MakeRows({1, 5}, 3.0f);
  linalg::ActivationMap got;
  this->RunWorkers(2, [&](WorkerEnv* env, CommChannel* channel) {
    if (env->worker_id == 0) {
      ASSERT_TRUE(Send(channel, env, 0, 1, rows).ok());
    } else {
      auto r = Recv(channel, env, 0, 0);
      ASSERT_TRUE(r.ok());
      got = std::move(*r);
    }
  });
  EXPECT_EQ(got.size(), 2u);
  EXPECT_EQ(got.at(5), rows.at(5));
}

TYPED_TEST(CollectivesTest, BarrierSynchronizesEveryone) {
  std::vector<double> release_times(4, -1.0);
  const double stagger[] = {0.0, 0.5, 1.0, 2.0};
  this->RunWorkers(4, [&](WorkerEnv* env, CommChannel* channel) {
    env->faas->SleepFor(stagger[env->worker_id]).ok();
    ASSERT_TRUE(Barrier(channel, env, 0, 4).ok());
    release_times[env->worker_id] = env->cloud->sim()->Now();
  });
  // Nobody leaves the barrier before the last arrival (t = 2.0).
  for (double t : release_times) EXPECT_GE(t, 2.0);
}

TYPED_TEST(CollectivesTest, ReduceGathersDisjointRowsAtRoot) {
  linalg::ActivationMap at_root;
  this->RunWorkers(3, [&](WorkerEnv* env, CommChannel* channel) {
    // Worker m owns rows {m, m+10}.
    const linalg::ActivationMap mine =
        MakeRows({env->worker_id, env->worker_id + 10},
                 static_cast<float>(env->worker_id + 1));
    auto gathered = Reduce(channel, env, 0, 3, mine);
    ASSERT_TRUE(gathered.ok());
    if (env->worker_id == 0) {
      at_root = std::move(*gathered);
    } else {
      EXPECT_TRUE(gathered->empty());
    }
  });
  EXPECT_EQ(at_root.size(), 6u);
  for (int32_t m = 0; m < 3; ++m) {
    EXPECT_FLOAT_EQ(at_root.at(m).val[0], static_cast<float>(m + 1));
    EXPECT_TRUE(at_root.contains(m + 10));
  }
}

TYPED_TEST(CollectivesTest, BroadcastDeliversRootRowsToAll) {
  const linalg::ActivationMap rows = MakeRows({7}, 9.0f);
  std::vector<linalg::ActivationMap> got(4);
  this->RunWorkers(4, [&](WorkerEnv* env, CommChannel* channel) {
    const linalg::ActivationMap payload =
        env->worker_id == 0 ? rows : linalg::ActivationMap{};
    auto r = Broadcast(channel, env, 0, 4, payload);
    ASSERT_TRUE(r.ok());
    got[env->worker_id] = std::move(*r);
  });
  for (int32_t m = 0; m < 4; ++m) {
    ASSERT_EQ(got[m].size(), 1u) << "worker " << m;
    EXPECT_EQ(got[m].at(7), rows.at(7));
  }
}

TYPED_TEST(CollectivesTest, EveryTopologyMatchesThroughRootByteForByte) {
  // The refactor's central invariant: the topology is pure routing. For
  // every fleet size the tree and ring reduce+broadcast must hand back
  // exactly the rows the single-round through-root exchange produces —
  // same keys, same float bits — at the root and at every broadcast
  // receiver.
  constexpr CollectiveTopology kTopologies[] = {
      CollectiveTopology::kThroughRoot, CollectiveTopology::kBinomialTree,
      CollectiveTopology::kRing};
  for (int32_t workers = 1; workers <= 9; ++workers) {
    std::array<linalg::ActivationMap, 3> reduced;
    std::array<std::vector<linalg::ActivationMap>, 3> bcast;
    for (size_t t = 0; t < 3; ++t) {
      const CollectiveTopology topology = kTopologies[t];
      this->options_.num_workers = workers;
      this->options_.collective_topology = topology;
      this->options_.channel_scope = StrFormat("inv-p%d-t%zu-", workers, t);
      bcast[t].resize(workers);
      this->RunWorkers(
          workers, [&, topology, workers](WorkerEnv* env, CommChannel* ch) {
            const PhaseAllocator phases(0, 0,
                                        CollectiveRounds(topology, workers));
            // Worker m owns rows {m, m+100} with m-dependent values.
            const linalg::ActivationMap mine =
                MakeRows({env->worker_id, env->worker_id + 100},
                         static_cast<float>(env->worker_id) + 0.5f);
            auto r = Reduce(ch, env, topology,
                            phases.Block(CollectiveOp::kReduce), workers,
                            mine);
            ASSERT_TRUE(r.ok()) << r.status().ToString();
            if (env->worker_id == 0) reduced[t] = *r;
            auto b = Broadcast(
                ch, env, topology, phases.Block(CollectiveOp::kBroadcast),
                workers,
                env->worker_id == 0 ? *r : linalg::ActivationMap{});
            ASSERT_TRUE(b.ok()) << b.status().ToString();
            bcast[t][env->worker_id] = std::move(*b);
          });
    }
    ASSERT_EQ(reduced[0].size(), 2u * static_cast<size_t>(workers));
    for (size_t t = 1; t < 3; ++t) {
      EXPECT_EQ(reduced[t], reduced[0])
          << "P=" << workers << " topology " << t;
      for (int32_t w = 0; w < workers; ++w) {
        EXPECT_EQ(bcast[t][w], bcast[0][w])
            << "P=" << workers << " topology " << t << " worker " << w;
        EXPECT_EQ(bcast[t][w], reduced[0])
            << "P=" << workers << " topology " << t << " worker " << w;
      }
    }
  }
}

TYPED_TEST(CollectivesTest, SingleWorkerCollectivesAreNoOps) {
  const linalg::ActivationMap rows = MakeRows({3}, 1.0f);
  this->RunWorkers(1, [&](WorkerEnv* env, CommChannel* channel) {
    EXPECT_TRUE(Barrier(channel, env, 0, 1).ok());
    auto reduced = Reduce(channel, env, 2, 1, rows);
    ASSERT_TRUE(reduced.ok());
    EXPECT_EQ(reduced->size(), 1u);
    auto bcast = Broadcast(channel, env, 4, 1, rows);
    ASSERT_TRUE(bcast.ok());
    EXPECT_EQ(bcast->size(), 1u);
  });
}

}  // namespace
}  // namespace fsd::core
