// Cross-query partition-cache tests: LRU semantics under a byte budget,
// stale-version invalidation, warm-serving reuse through the FaaS
// instance state, abort consistency, and the guarantee the cache must
// never break — byte-identical outputs with the cache on or off.
#include <gtest/gtest.h>

#include "cloud/cloud.h"
#include "core/partition_cache.h"
#include "core/serving.h"
#include "model/input_gen.h"
#include "model/reference.h"

namespace fsd::core {
namespace {

// ---------------------------------------------------------------------------
// PartitionCache unit semantics
// ---------------------------------------------------------------------------

TEST(PartitionCache, MissThenHitThenRecencyRefresh) {
  PartitionCache cache(/*budget_bytes=*/1000);
  EXPECT_EQ(cache.Find("fam", 0, 1), PartitionCache::Lookup::kMiss);
  const PartitionCache::InsertOutcome first = cache.Insert("fam", 0, 1, 400);
  EXPECT_TRUE(first.inserted);
  EXPECT_EQ(first.evicted, 0);
  EXPECT_EQ(cache.Find("fam", 0, 1), PartitionCache::Lookup::kHit);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.bytes_cached(), 400u);
  EXPECT_EQ(cache.entries(), 1);

  // Another partition of the same family is a distinct entry.
  EXPECT_EQ(cache.Find("fam", 1, 1), PartitionCache::Lookup::kMiss);
  EXPECT_TRUE(cache.Insert("fam", 1, 1, 400).inserted);
  EXPECT_EQ(cache.entries(), 2);

  // Touch entry 0 so it is most recent, then overflow: entry 1 (LRU) goes.
  EXPECT_EQ(cache.Find("fam", 0, 1), PartitionCache::Lookup::kHit);
  EXPECT_EQ(cache.Insert("fam", 2, 1, 400).evicted, 1);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.Find("fam", 1, 1), PartitionCache::Lookup::kMiss);
  EXPECT_EQ(cache.Find("fam", 0, 1), PartitionCache::Lookup::kHit);
  EXPECT_LE(cache.bytes_cached(), cache.budget_bytes());
}

TEST(PartitionCache, EvictsLruUntilBudgetHolds) {
  PartitionCache cache(/*budget_bytes=*/1000);
  cache.Insert("fam", 0, 1, 400);
  cache.Insert("fam", 1, 1, 400);
  // 900 bytes only fit alone: both residents must go.
  EXPECT_EQ(cache.Insert("fam", 2, 1, 900).evicted, 2);
  EXPECT_EQ(cache.entries(), 1);
  EXPECT_EQ(cache.bytes_cached(), 900u);
  EXPECT_EQ(cache.Find("fam", 2, 1), PartitionCache::Lookup::kHit);
}

TEST(PartitionCache, OversizedShareIsNotCached) {
  PartitionCache cache(/*budget_bytes=*/100);
  // An oversize reject is DISTINCT from a clean no-evict insert (both
  // historically returned 0): inserted=false and the reject counter moves.
  const PartitionCache::InsertOutcome rejected =
      cache.Insert("fam", 0, 1, 101);
  EXPECT_FALSE(rejected.inserted);
  EXPECT_EQ(rejected.evicted, 0);
  EXPECT_EQ(cache.oversize_rejects(), 1);
  EXPECT_EQ(cache.entries(), 0);
  EXPECT_EQ(cache.bytes_cached(), 0u);
  EXPECT_EQ(cache.Find("fam", 0, 1), PartitionCache::Lookup::kMiss);
  // And it must not have evicted residents to make room it can't use.
  EXPECT_TRUE(cache.Insert("fam", 1, 1, 90).inserted);
  EXPECT_EQ(cache.oversize_rejects(), 1);
  EXPECT_FALSE(cache.Insert("fam", 2, 1, 200).inserted);
  EXPECT_EQ(cache.oversize_rejects(), 2);
  EXPECT_EQ(cache.Find("fam", 1, 1), PartitionCache::Lookup::kHit);
}

TEST(PartitionCache, ContainsPeeksWithoutTouchingAccounting) {
  PartitionCache cache(/*budget_bytes=*/1000);
  cache.Insert("fam", 0, /*version=*/1, 400);
  const int64_t hits = cache.hits();
  const int64_t misses = cache.misses();
  EXPECT_TRUE(cache.Contains("fam", 0, 1));
  EXPECT_FALSE(cache.Contains("fam", 0, 2));  // other version: no invalidate
  EXPECT_FALSE(cache.Contains("fam", 1, 1));
  EXPECT_EQ(cache.hits(), hits);
  EXPECT_EQ(cache.misses(), misses);
  EXPECT_EQ(cache.invalidations(), 0);
  // The stale-at-other-version entry is still resident: Contains must not
  // have dropped it the way Find() would.
  EXPECT_EQ(cache.entries(), 1);
}

TEST(PartitionCache, PrewarmedFlagReportsFirstHitOnly) {
  PartitionCache cache(/*budget_bytes=*/1000);
  cache.Insert("fam", 0, 1, 400, /*prewarmed=*/true);
  bool prewarmed = false;
  EXPECT_EQ(cache.Find("fam", 0, 1, &prewarmed),
            PartitionCache::Lookup::kHit);
  EXPECT_TRUE(prewarmed) << "first hit consumes the planted flag";
  EXPECT_EQ(cache.Find("fam", 0, 1, &prewarmed),
            PartitionCache::Lookup::kHit);
  EXPECT_FALSE(prewarmed) << "subsequent hits are plain warm hits";
  // A normal insert never reports prewarmed, even without the out-param.
  cache.Insert("fam", 1, 1, 400);
  EXPECT_EQ(cache.Find("fam", 1, 1), PartitionCache::Lookup::kHit);
  bool flag = true;
  EXPECT_EQ(cache.Find("fam", 1, 1, &flag), PartitionCache::Lookup::kHit);
  EXPECT_FALSE(flag);
}

TEST(PartitionCache, VersionChangeInvalidatesResidentShare) {
  PartitionCache cache(/*budget_bytes=*/1000);
  cache.Insert("fam", 0, /*version=*/1, 400);
  // Looking up version 2 drops the stale entry immediately.
  EXPECT_EQ(cache.Find("fam", 0, 2), PartitionCache::Lookup::kStale);
  EXPECT_EQ(cache.invalidations(), 1);
  EXPECT_EQ(cache.entries(), 0);
  EXPECT_EQ(cache.bytes_cached(), 0u);
  // Even going BACK to version 1 misses: the stale share is gone.
  EXPECT_EQ(cache.Find("fam", 0, 1), PartitionCache::Lookup::kMiss);
  // Re-inserting at the new version works normally.
  cache.Insert("fam", 0, 2, 400);
  EXPECT_EQ(cache.Find("fam", 0, 2), PartitionCache::Lookup::kHit);
}

TEST(PartitionCache, ReinsertSameKeyReplacesInsteadOfDoubleCounting) {
  PartitionCache cache(/*budget_bytes=*/1000);
  cache.Insert("fam", 0, 1, 400);
  cache.Insert("fam", 0, 2, 600);
  EXPECT_EQ(cache.entries(), 1);
  EXPECT_EQ(cache.bytes_cached(), 600u);
  EXPECT_EQ(cache.Find("fam", 0, 2), PartitionCache::Lookup::kHit);
}

TEST(PartitionCache, ZeroBudgetCachesNothing) {
  PartitionCache cache(/*budget_bytes=*/0);
  EXPECT_FALSE(cache.Insert("fam", 0, 1, 1).inserted);
  EXPECT_EQ(cache.Find("fam", 0, 1), PartitionCache::Lookup::kMiss);
  EXPECT_EQ(cache.entries(), 0);
}

// ---------------------------------------------------------------------------
// Cache-family derivation: no aliasing across models or partitionings
// ---------------------------------------------------------------------------

std::string CacheFamilyFor(const model::SparseDnn& dnn,
                           const part::ModelPartition& partition,
                           const linalg::ActivationMap& input,
                           const FsdOptions& base = {}) {
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  InferenceRequest request;
  request.dnn = &dnn;
  request.partition = &partition;
  request.batches = {&input};
  request.options = base;
  request.options.num_workers = partition.num_parts;
  auto state = PrepareRunState(&cloud, request, AllocateRunId());
  EXPECT_TRUE(state.ok()) << state.status().ToString();
  return (*state)->cache_family;
}

TEST(PartitionCacheFamily, DistinctPartitioningsOfOneModelNeverAlias) {
  // Warm pools are shared per function group, so queries of one model
  // under DIFFERENT partitionings (hypergraph vs random at the same P,
  // or a different P) can land on the same instance; their derived cache
  // families must differ or a worker would serve the wrong share as a
  // hit. Identical requests must keep deriving the identical family.
  model::SparseDnnConfig config;
  config.neurons = 256;
  config.layers = 6;
  auto dnn = model::GenerateSparseDnn(config);
  ASSERT_TRUE(dnn.ok());
  model::InputConfig ic;
  ic.neurons = 256;
  ic.batch = 8;
  auto input = model::GenerateInputBatch(ic);
  ASSERT_TRUE(input.ok());

  part::ModelPartitionOptions hypergraph;
  part::ModelPartitionOptions random;
  random.scheme = part::PartitionScheme::kRandom;
  auto hgp4 = part::PartitionModel(*dnn, 4, hypergraph);
  auto rnd4 = part::PartitionModel(*dnn, 4, random);
  auto hgp2 = part::PartitionModel(*dnn, 2, hypergraph);
  ASSERT_TRUE(hgp4.ok() && rnd4.ok() && hgp2.ok());

  const std::string f_hgp4 = CacheFamilyFor(*dnn, *hgp4, *input);
  EXPECT_FALSE(f_hgp4.empty());
  EXPECT_EQ(f_hgp4, CacheFamilyFor(*dnn, *hgp4, *input));  // stable
  EXPECT_NE(f_hgp4, CacheFamilyFor(*dnn, *rnd4, *input));  // same P, other rows
  EXPECT_NE(f_hgp4, CacheFamilyFor(*dnn, *hgp2, *input));  // other P

  // A user-supplied family is qualified with the layout fingerprint too.
  FsdOptions named;
  named.model_family = "prod-model";
  EXPECT_NE(CacheFamilyFor(*dnn, *hgp4, *input, named),
            CacheFamilyFor(*dnn, *rnd4, *input, named));
}

TEST(PartitionCacheFamily, WeightAffectingConfigChangesTheFamily) {
  // Every generator field that changes the weights must change the
  // derived family — nnz_per_row (and friends) are part of the identity,
  // not just (neurons, layers, seed).
  model::InputConfig ic;
  ic.neurons = 256;
  ic.batch = 8;
  auto input = model::GenerateInputBatch(ic);
  ASSERT_TRUE(input.ok());
  auto family_for = [&](const model::SparseDnnConfig& config) {
    auto dnn = model::GenerateSparseDnn(config);
    EXPECT_TRUE(dnn.ok());
    part::ModelPartitionOptions po;
    auto partition = part::PartitionModel(*dnn, 2, po);
    EXPECT_TRUE(partition.ok());
    return CacheFamilyFor(*dnn, *partition, *input);
  };
  model::SparseDnnConfig base;
  base.neurons = 256;
  base.layers = 6;
  const std::string family = family_for(base);

  model::SparseDnnConfig other_nnz = base;
  other_nnz.nnz_per_row = 16;
  EXPECT_NE(family, family_for(other_nnz));

  model::SparseDnnConfig other_window = base;
  other_window.window = 24;
  EXPECT_NE(family, family_for(other_window));

  model::SparseDnnConfig other_seed = base;
  other_seed.seed = base.seed + 1;
  EXPECT_NE(family, family_for(other_seed));
}

// ---------------------------------------------------------------------------
// Serving integration: warm-state reuse across queries
// ---------------------------------------------------------------------------

struct Workload {
  model::SparseDnn dnn;
  part::ModelPartition partition;
  linalg::ActivationMap input;
  linalg::ActivationMap expected;
};

Workload MakeWorkload(int32_t neurons, int32_t layers, int32_t batch,
                      int32_t workers, uint64_t seed = 7) {
  model::SparseDnnConfig config;
  config.neurons = neurons;
  config.layers = layers;
  config.seed = seed;
  auto dnn = model::GenerateSparseDnn(config);
  EXPECT_TRUE(dnn.ok()) << dnn.status().ToString();
  part::ModelPartitionOptions po;
  auto partition = part::PartitionModel(*dnn, workers, po);
  EXPECT_TRUE(partition.ok()) << partition.status().ToString();
  model::InputConfig input_config;
  input_config.neurons = neurons;
  input_config.batch = batch;
  input_config.seed = seed + 1;
  auto input = model::GenerateInputBatch(input_config);
  EXPECT_TRUE(input.ok()) << input.status().ToString();
  auto expected = model::ReferenceInference(*dnn, *input);
  EXPECT_TRUE(expected.ok()) << expected.status().ToString();
  return Workload{std::move(*dnn), std::move(*partition), std::move(*input),
                  std::move(*expected)};
}

InferenceRequest MakeRequest(const Workload& w, Variant variant,
                             int32_t workers) {
  InferenceRequest request;
  request.dnn = &w.dnn;
  request.partition = &w.partition;
  request.batches = {&w.input};
  request.options.variant = variant;
  request.options.num_workers = workers;
  return request;
}

/// Runs `requests` (paired with arrival offsets) through one serving
/// runtime and returns the report.
ServingReport Serve(const std::vector<std::pair<InferenceRequest, double>>&
                        submissions) {
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  ServingRuntime serving(&cloud);
  for (const auto& [request, arrival] : submissions) {
    EXPECT_TRUE(serving.Submit(request, arrival).ok());
  }
  auto report = serving.Drain();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return std::move(*report);
}

TEST(PartitionCacheServing, SingleWorkerWarmQueriesHitDeterministically) {
  // P=1 gives a one-instance warm pool, so instance reuse (and therefore
  // the cache-hit pattern) is exact: query 1 reads, queries 2..K hit.
  constexpr int kQueries = 4;
  Workload w = MakeWorkload(256, 6, 16, /*workers=*/1);
  InferenceRequest request = MakeRequest(w, Variant::kQueue, 1);
  std::vector<std::pair<InferenceRequest, double>> submissions;
  for (int q = 0; q < kQueries; ++q) {
    submissions.emplace_back(request, 30.0 * q);  // inside the keep-alive
  }
  ServingReport report = Serve(submissions);

  for (int q = 0; q < kQueries; ++q) {
    const QueryOutcome& outcome = report.queries[q];
    ASSERT_TRUE(outcome.report.status.ok())
        << outcome.report.status.ToString();
    EXPECT_EQ(outcome.report.outputs[0], w.expected) << "query " << q;
    const RunMetrics& m = outcome.report.metrics;
    if (q == 0) {
      EXPECT_EQ(m.cache_hits, 0) << "cold query";
      EXPECT_EQ(m.cache_misses, 1);
      EXPECT_GT(m.model_get_parts, 0);
    } else {
      EXPECT_EQ(m.cache_hits, 1) << "warm query " << q;
      EXPECT_EQ(m.cache_misses, 0);
      EXPECT_EQ(m.model_get_parts, 0) << "hit must skip the share GETs";
      EXPECT_GT(m.model_bytes_saved, 0);
      // A warm hit makes the model load virtually instant.
      EXPECT_LT(m.workers[0].model_load_s, 1e-9);
    }
  }
  EXPECT_EQ(report.fleet.cache_hits, kQueries - 1);
  EXPECT_EQ(report.fleet.cache_misses, 1);
  EXPECT_DOUBLE_EQ(report.fleet.cache_hit_ratio,
                   static_cast<double>(kQueries - 1) / kQueries);
  EXPECT_GT(report.fleet.model_bytes_saved, 0);
}

TEST(PartitionCacheServing, MultiWorkerFleetConvergesAndSavesGets) {
  // With P workers the LIFO warm pool shuffles instances across worker
  // ids, so hits accumulate as instances fill with shares; assert the
  // aggregate accounting instead of an exact schedule.
  constexpr int32_t kWorkers = 4;
  constexpr int kQueries = 6;
  Workload w = MakeWorkload(256, 8, 16, kWorkers);
  InferenceRequest request = MakeRequest(w, Variant::kQueue, kWorkers);
  std::vector<std::pair<InferenceRequest, double>> submissions;
  for (int q = 0; q < kQueries; ++q) {
    submissions.emplace_back(request, 30.0 * q);
  }
  ServingReport report = Serve(submissions);

  int64_t ledger_model_gets = 0;
  for (const QueryOutcome& outcome : report.queries) {
    ASSERT_TRUE(outcome.report.status.ok());
    EXPECT_EQ(outcome.report.outputs[0], w.expected);
    ledger_model_gets += outcome.report.metrics.model_get_parts;
  }
  // Every load is either a hit or a miss; every miss read, every hit saved.
  EXPECT_EQ(report.fleet.cache_hits + report.fleet.cache_misses,
            static_cast<int64_t>(kWorkers) * kQueries);
  EXPECT_GT(report.fleet.cache_hits, 0);
  EXPECT_GT(report.fleet.model_gets_saved, 0);
  // Shares at this size are one GET part each, so the identity is exact.
  EXPECT_EQ(report.fleet.model_gets_saved + ledger_model_gets,
            static_cast<int64_t>(kWorkers) * kQueries);
  // The whole-workload ledger shows the savings: fewer object GETs than
  // the cache-off ablation of the same workload.
  std::vector<std::pair<InferenceRequest, double>> ablation = submissions;
  for (auto& [req, arrival] : ablation) req.options.partition_cache = false;
  ServingReport off = Serve(ablation);
  EXPECT_EQ(off.fleet.cache_hits, 0);
  EXPECT_EQ(off.fleet.cache_misses, 0);
  EXPECT_GT(report.billing.quantity(cloud::BillingDimension::kObjectGet), 0);
  EXPECT_LT(report.billing.quantity(cloud::BillingDimension::kObjectGet),
            off.billing.quantity(cloud::BillingDimension::kObjectGet));
}

TEST(PartitionCacheServing, CacheOnAndOffAreByteIdentical) {
  // The cache changes when shares are read, never what workers compute:
  // per-query activations must be byte-identical with the cache on or off.
  constexpr int32_t kWorkers = 4;
  constexpr int kQueries = 3;
  Workload w = MakeWorkload(256, 8, 16, kWorkers, /*seed=*/42);
  for (Variant variant :
       {Variant::kQueue, Variant::kObject, Variant::kKv}) {
    SCOPED_TRACE(std::string(VariantName(variant)));
    auto run = [&](bool cache_on) {
      InferenceRequest request = MakeRequest(w, variant, kWorkers);
      request.options.partition_cache = cache_on;
      std::vector<std::pair<InferenceRequest, double>> submissions;
      for (int q = 0; q < kQueries; ++q) {
        submissions.emplace_back(request, 20.0 * q);
      }
      ServingReport report = Serve(submissions);
      std::vector<std::vector<linalg::ActivationMap>> outputs;
      for (const QueryOutcome& outcome : report.queries) {
        EXPECT_TRUE(outcome.report.status.ok())
            << outcome.report.status.ToString();
        outputs.push_back(outcome.report.outputs);
      }
      return outputs;
    };
    const auto on = run(true);
    const auto off = run(false);
    EXPECT_EQ(on, off);
    for (const auto& outputs : on) {
      ASSERT_EQ(outputs.size(), 1u);
      EXPECT_EQ(outputs[0], w.expected);
    }
  }
}

TEST(PartitionCacheServing, VersionBumpInvalidatesWarmShares) {
  constexpr int kWarmups = 2;
  Workload w = MakeWorkload(256, 6, 16, /*workers=*/1);
  InferenceRequest v1 = MakeRequest(w, Variant::kQueue, 1);
  v1.options.model_family = "prod-model";
  v1.options.model_version = 1;
  InferenceRequest v2 = v1;
  v2.options.model_version = 2;

  std::vector<std::pair<InferenceRequest, double>> submissions;
  for (int q = 0; q < kWarmups; ++q) submissions.emplace_back(v1, 30.0 * q);
  submissions.emplace_back(v2, 30.0 * kWarmups);
  submissions.emplace_back(v2, 30.0 * (kWarmups + 1));
  ServingReport report = Serve(submissions);

  // v1 warms up: one miss then hits.
  EXPECT_EQ(report.queries[1].report.metrics.cache_hits, 1);
  // The first v2 query finds the v1 share, invalidates it and re-reads.
  const RunMetrics& upgraded = report.queries[kWarmups].report.metrics;
  EXPECT_EQ(upgraded.cache_hits, 0);
  EXPECT_EQ(upgraded.cache_invalidations, 1);
  EXPECT_GT(upgraded.model_get_parts, 0);
  // The second v2 query hits the re-cached v2 share.
  EXPECT_EQ(report.queries[kWarmups + 1].report.metrics.cache_hits, 1);
  for (const QueryOutcome& outcome : report.queries) {
    ASSERT_TRUE(outcome.report.status.ok());
    EXPECT_EQ(outcome.report.outputs[0], w.expected);
  }
}

TEST(PartitionCacheServing, EvictionForcesAccountedReRead) {
  // Two families alternating through a budget sized for exactly one share:
  // every load misses (the other family always evicted it) and the
  // evictions are visible in the metrics.
  Workload a = MakeWorkload(256, 6, 16, /*workers=*/1, /*seed=*/7);
  Workload b = MakeWorkload(256, 6, 16, /*workers=*/1, /*seed=*/8);
  const uint64_t share_a = a.partition.WeightShareBytes(a.dnn, 0);
  const uint64_t share_b = b.partition.WeightShareBytes(b.dnn, 0);
  InferenceRequest ra = MakeRequest(a, Variant::kQueue, 1);
  InferenceRequest rb = MakeRequest(b, Variant::kQueue, 1);
  ra.options.partition_cache_budget_bytes = std::max(share_a, share_b);
  rb.options.partition_cache_budget_bytes = std::max(share_a, share_b);

  ServingReport report = Serve({{ra, 0.0},
                                {rb, 30.0},
                                {ra, 60.0},
                                {rb, 90.0}});
  for (const QueryOutcome& outcome : report.queries) {
    ASSERT_TRUE(outcome.report.status.ok());
    // Each load was a miss billed as a full re-read.
    EXPECT_EQ(outcome.report.metrics.cache_hits, 0);
    EXPECT_EQ(outcome.report.metrics.cache_misses, 1);
    EXPECT_GT(outcome.report.metrics.model_get_parts, 0);
  }
  // Inserts of queries 2..4 each evicted the other family's share.
  EXPECT_EQ(report.fleet.cache_evictions, 3);
  EXPECT_EQ(report.queries[0].report.outputs[0], a.expected);
  EXPECT_EQ(report.queries[1].report.outputs[0], b.expected);
}

TEST(PartitionCacheServing, AbortedQueryLeavesCacheConsistent) {
  // A query killed mid-flight (timeout far below its latency) must not
  // leave a half-read share in the cache: the next healthy query of the
  // same family re-reads and produces correct output.
  Workload w = MakeWorkload(256, 8, 16, /*workers=*/1);
  InferenceRequest poisoned = MakeRequest(w, Variant::kQueue, 1);
  poisoned.options.worker_timeout_s = 0.01;  // dies during the model load
  InferenceRequest healthy = MakeRequest(w, Variant::kQueue, 1);

  ServingReport report = Serve({{poisoned, 0.0}, {healthy, 30.0}});
  EXPECT_FALSE(report.queries[0].report.status.ok());
  const RunMetrics& h = report.queries[1].report.metrics;
  ASSERT_TRUE(report.queries[1].report.status.ok())
      << report.queries[1].report.status.ToString();
  EXPECT_EQ(report.queries[1].report.outputs[0], w.expected);
  // The interrupted read never populated the cache; separate worker
  // functions aside, the healthy query can only have read its own share.
  EXPECT_EQ(h.cache_hits, 0);
  EXPECT_GT(h.model_get_parts, 0);
}

TEST(PartitionCacheServing, DifferentBudgetsNeverShareWarmInstances) {
  // The cache budget is part of the serving function-group key: a
  // budget-ablation stream must not land on instances whose cache was
  // created under another budget. Observable as cold starts — the
  // small-budget query finds no warm pool despite the big-budget
  // queries' instances sitting warm.
  Workload w = MakeWorkload(256, 6, 16, /*workers=*/1);
  InferenceRequest big = MakeRequest(w, Variant::kQueue, 1);
  InferenceRequest small = big;
  small.options.partition_cache_budget_bytes = 1024 * 1024;

  ServingReport report =
      Serve({{big, 0.0}, {big, 30.0}, {small, 60.0}});
  for (const QueryOutcome& outcome : report.queries) {
    ASSERT_TRUE(outcome.report.status.ok());
    EXPECT_EQ(outcome.report.outputs[0], w.expected);
  }
  EXPECT_EQ(report.queries[0].report.metrics.cold_starts, 1);  // cold pool
  EXPECT_EQ(report.queries[1].report.metrics.cold_starts, 0);  // warm reuse
  EXPECT_EQ(report.queries[1].report.metrics.cache_hits, 1);
  // Different budget => different function group => its own cold start
  // and an empty cache, even with warm big-budget instances available.
  EXPECT_EQ(report.queries[2].report.metrics.cold_starts, 1);
  EXPECT_EQ(report.queries[2].report.metrics.cache_hits, 0);
}

TEST(PartitionCacheServing, DisabledCacheKeepsPaperBehaviour) {
  // partition_cache=false reproduces every-query-reads: no lookups, no
  // savings, model GETs scale with queries x workers.
  constexpr int32_t kWorkers = 2;
  constexpr int kQueries = 3;
  Workload w = MakeWorkload(256, 6, 16, kWorkers);
  InferenceRequest request = MakeRequest(w, Variant::kQueue, kWorkers);
  request.options.partition_cache = false;
  std::vector<std::pair<InferenceRequest, double>> submissions;
  for (int q = 0; q < kQueries; ++q) {
    submissions.emplace_back(request, 30.0 * q);
  }
  ServingReport report = Serve(submissions);
  int64_t model_gets = 0;
  for (const QueryOutcome& outcome : report.queries) {
    ASSERT_TRUE(outcome.report.status.ok());
    EXPECT_EQ(outcome.report.metrics.cache_hits, 0);
    EXPECT_EQ(outcome.report.metrics.cache_misses, 0);
    EXPECT_EQ(outcome.report.metrics.model_gets_saved, 0);
    model_gets += outcome.report.metrics.model_get_parts;
  }
  EXPECT_GE(model_gets, static_cast<int64_t>(kWorkers) * kQueries);
  EXPECT_EQ(report.fleet.cache_hit_ratio, 0.0);
}

}  // namespace
}  // namespace fsd::core
