#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "sim/simulation.h"

namespace fsd::sim {
namespace {

TEST(Simulation, HoldAdvancesVirtualTimeOnly) {
  Simulation sim;
  double observed = -1.0;
  sim.AddProcess("p", [&]() {
    EXPECT_EQ(sim.Now(), 0.0);
    sim.Hold(1.5);
    EXPECT_EQ(sim.Now(), 1.5);
    sim.Hold(0.0);
    observed = sim.Now();
  });
  sim.Run();
  EXPECT_EQ(observed, 1.5);
}

TEST(Simulation, EventsOrderedByTimeThenSeq) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleCallback(2.0, [&] { order.push_back(3); });
  sim.ScheduleCallback(1.0, [&] { order.push_back(1); });
  sim.ScheduleCallback(1.0, [&] { order.push_back(2); });  // same t: FIFO
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, ProcessesInterleaveDeterministically) {
  auto run_once = [] {
    Simulation sim;
    std::vector<int> trace;
    sim.AddProcess("a", [&]() {
      trace.push_back(1);
      sim.Hold(2.0);
      trace.push_back(3);
    });
    sim.AddProcess("b", [&]() {
      trace.push_back(2);
      sim.Hold(3.0);
      trace.push_back(4);
    });
    sim.Run();
    return trace;
  };
  const auto t1 = run_once();
  const auto t2 = run_once();
  EXPECT_EQ(t1, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(t1, t2);
}

TEST(Simulation, SignalWakesWaiter) {
  Simulation sim;
  auto signal = sim.MakeSignal();
  double woke_at = -1.0;
  sim.AddProcess("waiter", [&]() {
    EXPECT_TRUE(sim.WaitSignal(signal.get()));
    woke_at = sim.Now();
  });
  sim.AddProcess("firer", [&]() {
    sim.Hold(5.0);
    signal->Fire();
  });
  sim.Run();
  EXPECT_EQ(woke_at, 5.0);
}

TEST(Simulation, SignalTimeoutExpires) {
  Simulation sim;
  auto signal = sim.MakeSignal();
  bool fired = true;
  double woke_at = -1.0;
  sim.AddProcess("waiter", [&]() {
    fired = sim.WaitSignal(signal.get(), 2.0);
    woke_at = sim.Now();
  });
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(woke_at, 2.0);
}

TEST(Simulation, TimedOutWaiterNotWokenByLaterFire) {
  Simulation sim;
  auto signal = sim.MakeSignal();
  int wakes = 0;
  sim.AddProcess("waiter", [&]() {
    EXPECT_FALSE(sim.WaitSignal(signal.get(), 1.0));
    ++wakes;
    sim.Hold(10.0);  // a stale Fire wake would cut this short
    EXPECT_EQ(sim.Now(), 11.0);
    ++wakes;
  });
  sim.AddProcess("firer", [&]() {
    sim.Hold(3.0);
    signal->Fire();
  });
  sim.Run();
  EXPECT_EQ(wakes, 2);
}

TEST(Simulation, FiredSignalReturnsImmediately) {
  Simulation sim;
  auto signal = sim.MakeSignal();
  signal->Fire();
  double waited = -1.0;
  sim.AddProcess("p", [&]() {
    EXPECT_TRUE(sim.WaitSignal(signal.get(), 100.0));
    waited = sim.Now();
  });
  sim.Run();
  EXPECT_EQ(waited, 0.0);
}

TEST(Simulation, SpawnAndJoin) {
  Simulation sim;
  double child_done = -1.0, parent_done = -1.0;
  sim.AddProcess("parent", [&]() {
    ProcessHandle child = sim.Spawn("child", [&]() {
      sim.Hold(4.0);
      child_done = sim.Now();
    });
    sim.Hold(1.0);
    sim.Join(child);
    parent_done = sim.Now();
  });
  sim.Run();
  EXPECT_EQ(child_done, 4.0);
  EXPECT_EQ(parent_done, 4.0);
}

TEST(Simulation, JoinFinishedProcessReturnsImmediately) {
  Simulation sim;
  sim.AddProcess("parent", [&]() {
    ProcessHandle child = sim.Spawn("child", [] {});
    sim.Hold(10.0);
    sim.Join(child);  // already done
    EXPECT_EQ(sim.Now(), 10.0);
  });
  sim.Run();
}

TEST(Simulation, RunUntilStopsEarlyAndResumes) {
  Simulation sim;
  int steps = 0;
  sim.AddProcess("p", [&]() {
    for (int i = 0; i < 5; ++i) {
      sim.Hold(1.0);
      ++steps;
    }
  });
  sim.Run(2.5);
  EXPECT_EQ(steps, 2);
  EXPECT_EQ(sim.Now(), 2.5);
  sim.Run();
  EXPECT_EQ(steps, 5);
  EXPECT_EQ(sim.Now(), 5.0);
}

TEST(Simulation, StartDelayHonored) {
  Simulation sim;
  double started = -1.0;
  sim.AddProcess("late", [&]() { started = sim.Now(); }, /*start=*/7.0);
  sim.Run();
  EXPECT_EQ(started, 7.0);
}

TEST(Simulation, ManyProcessesDeterministicEventCount) {
  auto count_events = [] {
    Simulation sim;
    for (int i = 0; i < 50; ++i) {
      sim.AddProcess("w", [&sim]() {
        for (int k = 0; k < 20; ++k) sim.Hold(0.01);
      });
    }
    sim.Run();
    return sim.events_dispatched();
  };
  const uint64_t e1 = count_events();
  EXPECT_EQ(e1, count_events());
  EXPECT_GE(e1, 50u * 20u);
}

TEST(Simulation, TeardownUnwindsBlockedProcesses) {
  // A process blocked on a never-fired signal must not hang destruction.
  auto signal_holder = std::make_shared<std::shared_ptr<SimSignal>>();
  {
    Simulation sim;
    *signal_holder = sim.MakeSignal();
    sim.AddProcess("stuck", [&sim, signal_holder]() {
      sim.WaitSignal(signal_holder->get());
    });
    sim.Run();
    EXPECT_EQ(sim.live_processes(), 1);
  }  // destructor must join the stuck thread without deadlock
  SUCCEED();
}

TEST(Simulation, TeardownWithManyConcurrentLiveProcesses) {
  // A serving workload aborting mid-flight leaves MANY processes blocked at
  // once — holds, signal waits, and join chains all unwinding together.
  auto signal_holder = std::make_shared<std::shared_ptr<SimSignal>>();
  {
    Simulation sim;
    *signal_holder = sim.MakeSignal();
    for (int i = 0; i < 8; ++i) {
      sim.AddProcess("holder", [&sim]() { sim.Hold(1e9); });
      sim.AddProcess("waiter", [&sim, signal_holder]() {
        sim.WaitSignal(signal_holder->get());
      });
      sim.AddProcess("parent", [&sim]() {
        ProcessHandle child = sim.Spawn("child", [&sim]() { sim.Hold(1e9); });
        sim.Join(child);
      });
    }
    // A process that never got to start at all (event beyond the horizon).
    sim.AddProcess("never-started", [&sim]() { sim.Hold(1.0); },
                   /*start=*/1e12);
    sim.Run(/*until=*/5.0);
    EXPECT_GT(sim.live_processes(), 30);
  }  // destructor must unwind and join every thread without deadlock
  SUCCEED();
}

TEST(Simulation, KillPathToleratesSimCallsFromUnwindingDestructors) {
  // Destructors on a killed process's stack may re-enter the kernel (hold a
  // drain delay, fire a completion signal, schedule a cleanup callback,
  // spawn a reaper). During teardown these must be inert, not crash/hang.
  struct ReentrantGuard {
    Simulation* sim;
    std::shared_ptr<SimSignal> done;
    ~ReentrantGuard() {
      sim->Hold(0.5);
      done->Fire();
      sim->ScheduleCallback(0.1, [] {});
      ProcessHandle reaper = sim->Spawn("reaper", [] {});
      sim->Join(reaper);
      (void)sim->WaitSignal(done.get(), 1.0);
    }
  };
  auto done_holder = std::make_shared<std::shared_ptr<SimSignal>>();
  {
    Simulation sim;
    *done_holder = sim.MakeSignal();
    for (int i = 0; i < 4; ++i) {
      sim.AddProcess("guarded", [&sim, done_holder]() {
        ReentrantGuard guard{&sim, *done_holder};
        sim.Hold(1e9);  // blocked here when the Simulation dies
      });
    }
    sim.Run(/*until=*/1.0);
    EXPECT_EQ(sim.live_processes(), 4);
  }
  SUCCEED();
}

TEST(Simulation, OffloadChargesVirtualTimeAndRunsClosure) {
  for (const int pool : {0, 1, 2}) {
    SimTuning tuning;
    tuning.compute_threads = pool;
    Simulation sim(tuning);
    int ran = 0;
    double after = -1.0;
    sim.AddProcess("p", [&]() {
      sim.Offload(1.25, [&]() { ++ran; });
      after = sim.Now();
      EXPECT_EQ(ran, 1);  // result visible right after the join
    });
    sim.Run();
    EXPECT_EQ(ran, 1) << "pool=" << pool;
    EXPECT_EQ(after, 1.25) << "pool=" << pool;
  }
}

TEST(Simulation, OffloadNullClosureIsAPlainHold) {
  SimTuning tuning;
  tuning.compute_threads = 2;
  Simulation sim(tuning);
  double after = -1.0;
  sim.AddProcess("p", [&]() {
    sim.Offload(2.0, nullptr);
    after = sim.Now();
  });
  sim.Run();
  EXPECT_EQ(after, 2.0);
  EXPECT_EQ(sim.offload_stats().calls, 0u);  // null fn is not an offload
  EXPECT_EQ(sim.offload_stats().pool_runs, 0u);
}

TEST(Simulation, OffloadFromSchedulerContextRunsInline) {
  // No submitting process (callback context): the closure must still run,
  // synchronously, so callers never need to special-case.
  Simulation sim;
  bool ran = false;
  sim.ScheduleCallback(1.0, [&]() {
    sim.Offload(5.0, [&]() { ran = true; });
    EXPECT_TRUE(ran);
  });
  sim.Run();
  EXPECT_TRUE(ran);
}

TEST(Simulation, OffloadStatsCountCallsAndPoolRuns) {
  for (const int pool : {0, 3}) {
    SimTuning tuning;
    tuning.compute_threads = pool;
    Simulation sim(tuning);
    for (int p = 0; p < 4; ++p) {
      sim.AddProcess("p", [&]() {
        for (int i = 0; i < 3; ++i) sim.Offload(0.5, []() {});
      });
    }
    sim.Run();
    const OffloadStats stats = sim.offload_stats();
    EXPECT_EQ(stats.calls, 12u) << "pool=" << pool;
    EXPECT_DOUBLE_EQ(stats.virtual_s, 6.0) << "pool=" << pool;
    EXPECT_EQ(stats.pool_runs, pool == 0 ? 0u : 12u) << "pool=" << pool;
  }
}

TEST(Simulation, OffloadByteIdenticalAcrossPoolSizes) {
  // A fleet of processes interleaving offloads, holds and signal traffic:
  // the (time, order, value) trace must match for every pool size.
  auto run_once = [](int pool) {
    SimTuning tuning;
    tuning.compute_threads = pool;
    Simulation sim(tuning);
    std::vector<std::pair<double, int>> trace;
    auto signal = sim.MakeSignal();
    for (int p = 0; p < 6; ++p) {
      sim.AddProcess("p", [&, p]() {
        int local = 0;
        for (int i = 0; i < 4; ++i) {
          sim.Offload(0.1 * (p + 1), [&]() { local += p + i; });
          trace.push_back({sim.Now(), 100 * p + local});
          if (p == 0 && i == 1) signal->Fire();
          if (p == 5 && i == 0) (void)sim.WaitSignal(signal.get(), 10.0);
          sim.Hold(0.05 * p);
        }
      });
    }
    sim.Run();
    return std::make_pair(trace, sim.events_dispatched());
  };
  const auto inline_run = run_once(0);
  EXPECT_EQ(inline_run, run_once(1));
  EXPECT_EQ(inline_run, run_once(4));
  EXPECT_EQ(inline_run,
            run_once(static_cast<int>(std::thread::hardware_concurrency())));
}

TEST(Simulation, TeardownDrainsInFlightOffloadClosures) {
  // Destruction with a closure RUNNING on the pool: the drain must wait it
  // out (never free state under a live worker) and then unwind the blocked
  // submitter without deadlock.
  std::atomic<int> completed{0};
  {
    SimTuning tuning;
    tuning.compute_threads = 2;
    Simulation sim(tuning);
    for (int p = 0; p < 2; ++p) {
      sim.AddProcess("p", [&]() {
        sim.Offload(10.0, [&]() {
          std::this_thread::sleep_for(std::chrono::milliseconds(30));
          ++completed;
        });
      });
    }
    sim.Run(/*until=*/1.0);  // wake events (t=10) never fire
  }  // destructor: drain in-flight closures, then kill blocked submitters
  // Everything that STARTED must have finished before the pool died.
  EXPECT_LE(completed.load(), 2);
  SUCCEED();
}

TEST(Simulation, TeardownDiscardsQueuedOffloadJobs) {
  // More submitters than pool threads: at destruction some jobs are still
  // QUEUED (never started). They must be discarded, not run, and their
  // submitters unwound cleanly.
  {
    SimTuning tuning;
    tuning.compute_threads = 1;
    Simulation sim(tuning);
    for (int p = 0; p < 6; ++p) {
      sim.AddProcess("p", [&]() {
        sim.Offload(10.0, [&]() {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        });
      });
    }
    sim.Run(/*until=*/1.0);
  }
  SUCCEED();
}

TEST(Simulation, KillPathToleratesOffloadFromUnwindingDestructors) {
  // A destructor on a killed process's stack may call Offload (e.g. a
  // worker flushing a codec buffer). During teardown the closure must run
  // inline and return — inert, no pool, no hang.
  struct OffloadGuard {
    Simulation* sim;
    bool* ran;
    ~OffloadGuard() {
      sim->Offload(0.5, [this]() { *ran = true; });
    }
  };
  bool ran = false;
  {
    SimTuning tuning;
    tuning.compute_threads = 2;
    Simulation sim(tuning);
    sim.AddProcess("guarded", [&]() {
      OffloadGuard guard{&sim, &ran};
      sim.Hold(1e9);  // blocked here when the Simulation dies
    });
    sim.Run(/*until=*/1.0);
    EXPECT_EQ(sim.live_processes(), 1);
  }
  EXPECT_TRUE(ran);
}

TEST(ParallelMakespan, SingleLaneSums) {
  EXPECT_DOUBLE_EQ(ParallelMakespan({1.0, 2.0, 3.0}, 1), 6.0);
}

TEST(ParallelMakespan, ManyLanesTakeMax) {
  EXPECT_DOUBLE_EQ(ParallelMakespan({1.0, 2.0, 3.0}, 3), 3.0);
  EXPECT_DOUBLE_EQ(ParallelMakespan({1.0, 2.0, 3.0}, 8), 3.0);
}

TEST(ParallelMakespan, GreedyAssignment) {
  // lanes=2: [4] | [1,2] -> makespan 4; greedy puts 2 after 1.
  EXPECT_DOUBLE_EQ(ParallelMakespan({4.0, 1.0, 2.0}, 2), 4.0);
  // lanes=2 submission order matters (list scheduling, not optimal).
  EXPECT_DOUBLE_EQ(ParallelMakespan({1.0, 1.0, 4.0}, 2), 5.0);
}

TEST(ParallelMakespan, EdgeCases) {
  EXPECT_DOUBLE_EQ(ParallelMakespan({}, 4), 0.0);
  EXPECT_DOUBLE_EQ(ParallelMakespan({2.0}, 0), 2.0);  // lanes clamped to 1
}

}  // namespace
}  // namespace fsd::sim
