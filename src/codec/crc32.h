// CRC-32 (IEEE 802.3 polynomial), table-driven; used to detect payload
// corruption end-to-end across the simulated communication channels.
#ifndef FSD_CODEC_CRC32_H_
#define FSD_CODEC_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace fsd::codec {

/// Computes CRC-32 over `size` bytes, chaining from `seed` (0 to start).
uint32_t Crc32(const uint8_t* data, size_t size, uint32_t seed = 0);

}  // namespace fsd::codec

#endif  // FSD_CODEC_CRC32_H_
