#include "codec/lz.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "codec/bitstream.h"
#include "codec/crc32.h"
#include "codec/huffman.h"
#include "codec/varint.h"
#include "common/check.h"

namespace fsd::codec {
namespace {

constexpr uint8_t kMagic0 = 'F';
constexpr uint8_t kMagic1 = 'Z';
constexpr uint8_t kVersion = 1;
constexpr uint8_t kMethodStored = 0;
constexpr uint8_t kMethodLz = 1;

constexpr int kMinMatch = 4;
constexpr int kMaxMatch = 258;
// 32 KiB window: exactly the span the distance-bucket table encodes
// (24577 + 2^13 - 1 = 32768), mirroring DEFLATE.
constexpr int kWindowBits = 15;
constexpr size_t kWindowSize = 1u << kWindowBits;

constexpr int kEndSymbol = 256;
constexpr int kNumLengthBuckets = 24;
constexpr int kNumLitLen = 257 + kNumLengthBuckets;
constexpr int kNumDist = 30;

// Length buckets: base values and extra bits, covering [4, 258].
struct Bucket {
  int base;
  int extra_bits;
};

constexpr Bucket kLengthBuckets[kNumLengthBuckets] = {
    {4, 0},   {5, 0},   {6, 0},   {7, 0},   {8, 0},    {9, 0},
    {10, 0},  {11, 1},  {13, 1},  {15, 1},  {17, 2},   {21, 2},
    {25, 2},  {29, 2},  {33, 3},  {41, 3},  {49, 3},   {57, 3},
    {65, 4},  {81, 4},  {97, 4},  {113, 5}, {145, 6},  {209, 6},
};

constexpr Bucket kDistBuckets[kNumDist] = {
    {1, 0},     {2, 0},     {3, 0},     {4, 0},     {5, 1},    {7, 1},
    {9, 2},     {13, 2},    {17, 3},    {25, 3},    {33, 4},   {49, 4},
    {65, 5},    {97, 5},    {129, 6},   {193, 6},   {257, 7},  {385, 7},
    {513, 8},   {769, 8},   {1025, 9},  {1537, 9},  {2049, 10}, {3073, 10},
    {4097, 11}, {6145, 11}, {8193, 12}, {12289, 12}, {16385, 13}, {24577, 13},
};

int FindLengthBucket(int length) {
  FSD_CHECK(length >= kMinMatch && length <= kMaxMatch);
  for (int i = kNumLengthBuckets - 1; i >= 0; --i) {
    if (kLengthBuckets[i].base <= length) return i;
  }
  FSD_CHECK(false);
  return -1;
}

int FindDistBucket(int dist) {
  FSD_CHECK(dist >= 1 && dist <= static_cast<int>(kWindowSize));
  for (int i = kNumDist - 1; i >= 0; --i) {
    if (kDistBuckets[i].base <= dist) return i;
  }
  FSD_CHECK(false);
  return -1;
}

struct Token {
  bool is_match;
  uint8_t literal;   // when !is_match
  int length;        // when is_match
  int distance;      // when is_match
};

uint32_t HashAt(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 17;  // 15-bit hash
}

// Greedy LZ77 tokenizer with hash chains.
std::vector<Token> Tokenize(const Bytes& input, const LzOptions& options) {
  std::vector<Token> tokens;
  const size_t n = input.size();
  tokens.reserve(n / 3);
  constexpr size_t kHashSize = 1u << 15;
  std::vector<int32_t> head(kHashSize, -1);
  std::vector<int32_t> prev(n, -1);
  const uint8_t* data = input.data();

  auto insert_position = [&](size_t j) {
    if (j + kMinMatch > n) return;
    const uint32_t h = HashAt(data + j);
    prev[j] = head[h];
    head[h] = static_cast<int32_t>(j);
  };

  size_t i = 0;
  while (i < n) {
    int best_len = 0;
    int best_dist = 0;
    if (i + kMinMatch <= n) {
      const uint32_t h = HashAt(data + i);
      int32_t cand = head[h];
      int probes = options.max_chain_probes;
      const size_t window_floor = (i > kWindowSize) ? i - kWindowSize : 0;
      while (cand >= 0 && static_cast<size_t>(cand) >= window_floor &&
             probes-- > 0) {
        const size_t max_len = std::min<size_t>(kMaxMatch, n - i);
        size_t len = 0;
        const uint8_t* a = data + cand;
        const uint8_t* b = data + i;
        while (len < max_len && a[len] == b[len]) ++len;
        if (static_cast<int>(len) > best_len) {
          best_len = static_cast<int>(len);
          best_dist = static_cast<int>(i - cand);
          if (best_len >= kMaxMatch) break;
        }
        cand = prev[cand];
      }
    }
    if (best_len >= kMinMatch) {
      tokens.push_back({true, 0, best_len, best_dist});
      // Thread hash entries for every covered position so later matches can
      // reference the interior of this one.
      const size_t end = i + static_cast<size_t>(best_len);
      for (size_t j = i; j < end; ++j) insert_position(j);
      i = end;
    } else {
      tokens.push_back({false, data[i], 0, 0});
      insert_position(i);
      ++i;
    }
  }
  return tokens;
}

void WriteNibbleLengths(Bytes* out, const std::vector<uint8_t>& lengths) {
  for (size_t i = 0; i < lengths.size(); i += 2) {
    uint8_t lo = lengths[i] & 0x0F;
    uint8_t hi = (i + 1 < lengths.size()) ? (lengths[i + 1] & 0x0F) : 0;
    out->push_back(static_cast<uint8_t>(lo | (hi << 4)));
  }
}

Result<std::vector<uint8_t>> ReadNibbleLengths(ByteReader* reader, int count) {
  std::vector<uint8_t> lengths(count, 0);
  const int bytes = (count + 1) / 2;
  FSD_ASSIGN_OR_RETURN(const uint8_t* p, reader->Skip(bytes));
  for (int i = 0; i < count; ++i) {
    const uint8_t b = p[i / 2];
    lengths[i] = (i % 2 == 0) ? (b & 0x0F) : (b >> 4);
  }
  return lengths;
}

Bytes CompressStored(const Bytes& input) {
  Bytes out;
  out.reserve(input.size() + 16);
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kVersion);
  out.push_back(kMethodStored);
  PutVarint64(&out, input.size());
  AppendRaw<uint32_t>(&out, Crc32(input.data(), input.size()));
  out.insert(out.end(), input.begin(), input.end());
  return out;
}

}  // namespace

Bytes LzCompress(const Bytes& input, const LzOptions& options) {
  if (input.size() < options.min_compress_size) return CompressStored(input);

  const std::vector<Token> tokens = Tokenize(input, options);

  // Frequency pass.
  std::vector<uint64_t> lit_freq(kNumLitLen, 0);
  std::vector<uint64_t> dist_freq(kNumDist, 0);
  for (const Token& t : tokens) {
    if (t.is_match) {
      ++lit_freq[257 + FindLengthBucket(t.length)];
      ++dist_freq[FindDistBucket(t.distance)];
    } else {
      ++lit_freq[t.literal];
    }
  }
  ++lit_freq[kEndSymbol];

  const std::vector<uint8_t> lit_lengths = BuildCodeLengths(lit_freq);
  const std::vector<uint8_t> dist_lengths = BuildCodeLengths(dist_freq);
  HuffmanEncoder lit_enc(lit_lengths);
  HuffmanEncoder dist_enc(dist_lengths);

  Bytes out;
  out.reserve(input.size() / 2 + 64);
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kVersion);
  out.push_back(kMethodLz);
  PutVarint64(&out, input.size());
  AppendRaw<uint32_t>(&out, Crc32(input.data(), input.size()));
  WriteNibbleLengths(&out, lit_lengths);
  WriteNibbleLengths(&out, dist_lengths);

  BitWriter writer(&out);
  for (const Token& t : tokens) {
    if (t.is_match) {
      const int lb = FindLengthBucket(t.length);
      lit_enc.Encode(&writer, 257 + lb);
      writer.Write(
          static_cast<uint32_t>(t.length - kLengthBuckets[lb].base),
          kLengthBuckets[lb].extra_bits);
      const int db = FindDistBucket(t.distance);
      dist_enc.Encode(&writer, db);
      writer.Write(static_cast<uint32_t>(t.distance - kDistBuckets[db].base),
                   kDistBuckets[db].extra_bits);
    } else {
      lit_enc.Encode(&writer, t.literal);
    }
  }
  lit_enc.Encode(&writer, kEndSymbol);
  writer.Finish();

  // Fall back to stored mode if we failed to shrink the payload.
  if (out.size() >= input.size() + 16) return CompressStored(input);
  return out;
}

Result<Bytes> LzDecompress(const Bytes& input) {
  ByteReader reader(input);
  FSD_ASSIGN_OR_RETURN(uint8_t m0, reader.Read<uint8_t>());
  FSD_ASSIGN_OR_RETURN(uint8_t m1, reader.Read<uint8_t>());
  FSD_ASSIGN_OR_RETURN(uint8_t version, reader.Read<uint8_t>());
  FSD_ASSIGN_OR_RETURN(uint8_t method, reader.Read<uint8_t>());
  if (m0 != kMagic0 || m1 != kMagic1 || version != kVersion) {
    return Status::DataLoss("bad FsdLz header");
  }
  FSD_ASSIGN_OR_RETURN(uint64_t raw_size, GetVarint64(&reader));
  FSD_ASSIGN_OR_RETURN(uint32_t expect_crc, reader.Read<uint32_t>());

  Bytes out;
  if (method == kMethodStored) {
    FSD_ASSIGN_OR_RETURN(out, reader.ReadBytes(raw_size));
  } else if (method == kMethodLz) {
    FSD_ASSIGN_OR_RETURN(std::vector<uint8_t> lit_lengths,
                         ReadNibbleLengths(&reader, kNumLitLen));
    FSD_ASSIGN_OR_RETURN(std::vector<uint8_t> dist_lengths,
                         ReadNibbleLengths(&reader, kNumDist));
    FSD_ASSIGN_OR_RETURN(HuffmanDecoder lit_dec,
                         HuffmanDecoder::Build(lit_lengths));
    FSD_ASSIGN_OR_RETURN(HuffmanDecoder dist_dec,
                         HuffmanDecoder::Build(dist_lengths));
    BitReader bits(input.data() + reader.position(),
                   input.size() - reader.position());
    out.reserve(raw_size);
    while (true) {
      FSD_ASSIGN_OR_RETURN(int sym, lit_dec.Decode(&bits));
      if (sym == kEndSymbol) break;
      if (sym < 256) {
        out.push_back(static_cast<uint8_t>(sym));
        continue;
      }
      const int lb = sym - 257;
      if (lb < 0 || lb >= kNumLengthBuckets) {
        return Status::DataLoss("bad length symbol");
      }
      FSD_ASSIGN_OR_RETURN(
          uint32_t lextra, bits.Read(kLengthBuckets[lb].extra_bits));
      const int length = kLengthBuckets[lb].base + static_cast<int>(lextra);
      FSD_ASSIGN_OR_RETURN(int db, dist_dec.Decode(&bits));
      FSD_ASSIGN_OR_RETURN(uint32_t dextra,
                           bits.Read(kDistBuckets[db].extra_bits));
      const int dist = kDistBuckets[db].base + static_cast<int>(dextra);
      if (dist <= 0 || static_cast<size_t>(dist) > out.size()) {
        return Status::DataLoss("bad match distance");
      }
      size_t src = out.size() - static_cast<size_t>(dist);
      for (int j = 0; j < length; ++j) out.push_back(out[src + j]);
      if (out.size() > raw_size) return Status::DataLoss("overlong stream");
    }
  } else {
    return Status::DataLoss("unknown FsdLz method");
  }

  if (out.size() != raw_size) {
    return Status::DataLoss("FsdLz size mismatch");
  }
  if (Crc32(out.data(), out.size()) != expect_crc) {
    return Status::DataLoss("FsdLz checksum mismatch");
  }
  return out;
}

Result<uint64_t> LzUncompressedSize(const Bytes& input) {
  ByteReader reader(input);
  FSD_RETURN_IF_ERROR(reader.Skip(4).status());
  return GetVarint64(&reader);
}

}  // namespace fsd::codec
