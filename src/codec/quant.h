// Bounded-error uniform quantization of float payloads ("FQ" container).
//
// Values are quantized symmetrically to b-bit symbols against a per-block
// scale (the block's max |value|), bit-packed LSB-first, and entropy-coded
// through the same canonical-Huffman machinery as FsdLz when that shrinks
// them. The worst-case reconstruction error is half a quantization step
// relative to the block scale — QuantRelErrorBound(b) — so callers can pick
// the narrowest width that satisfies a configured relative-error budget.
#ifndef FSD_CODEC_QUANT_H_
#define FSD_CODEC_QUANT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace fsd::codec {

constexpr int32_t kQuantMinBits = 2;
constexpr int32_t kQuantMaxBits = 16;

/// Guaranteed worst-case |v_hat - v| / max|v| of b-bit quantization (half a
/// step relative to the block scale, plus float rounding slack).
double QuantRelErrorBound(int32_t bits);

struct QuantStats {
  double max_rel_err = 0.0;  ///< measured max |v_hat - v| / scale this block
};

/// Quantizes `count` floats to `bits` bits each (bits in
/// [kQuantMinBits, kQuantMaxBits]) into a self-describing FQ container.
Bytes QuantCompress(const float* values, size_t count, int32_t bits,
                    QuantStats* stats = nullptr);

/// Inverse of QuantCompress; validates magic/version/CRC.
Result<std::vector<float>> QuantDecompress(const Bytes& data);

}  // namespace fsd::codec

#endif  // FSD_CODEC_QUANT_H_
