// LEB128 varints and zigzag transforms for compact integer encoding.
#ifndef FSD_CODEC_VARINT_H_
#define FSD_CODEC_VARINT_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/result.h"

namespace fsd::codec {

/// Appends an unsigned LEB128 varint (1-10 bytes).
inline void PutVarint64(Bytes* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

/// Reads an unsigned LEB128 varint from `reader`.
inline Result<uint64_t> GetVarint64(ByteReader* reader) {
  uint64_t value = 0;
  int shift = 0;
  while (shift < 64) {
    FSD_ASSIGN_OR_RETURN(uint8_t byte, reader->Read<uint8_t>());
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  return Status::DataLoss("varint too long");
}

/// Zigzag transform mapping signed to unsigned for varint friendliness.
inline uint64_t ZigZagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

inline int64_t ZigZagDecode(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

inline void PutVarintSigned(Bytes* out, int64_t value) {
  PutVarint64(out, ZigZagEncode(value));
}

inline Result<int64_t> GetVarintSigned(ByteReader* reader) {
  FSD_ASSIGN_OR_RETURN(uint64_t raw, GetVarint64(reader));
  return ZigZagDecode(raw);
}

}  // namespace fsd::codec

#endif  // FSD_CODEC_VARINT_H_
