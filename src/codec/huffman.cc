#include "codec/huffman.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace fsd::codec {
namespace {

struct Node {
  uint64_t freq;
  int index;  // < num_symbols: leaf; otherwise internal node id
  int left = -1;
  int right = -1;
};

// Computes unbounded Huffman depths via the standard two-queue method.
void ComputeDepths(const std::vector<Node>& nodes, int root, int depth,
                   std::vector<uint8_t>* depths, int num_symbols) {
  // Iterative DFS to avoid recursion limits on degenerate trees.
  std::vector<std::pair<int, int>> stack{{root, depth}};
  while (!stack.empty()) {
    auto [idx, d] = stack.back();
    stack.pop_back();
    const Node& n = nodes[idx];
    if (n.left < 0) {
      FSD_CHECK_LT(n.index, num_symbols);
      (*depths)[n.index] = static_cast<uint8_t>(d);
    } else {
      stack.push_back({n.left, d + 1});
      stack.push_back({n.right, d + 1});
    }
  }
}

}  // namespace

std::vector<uint8_t> BuildCodeLengths(const std::vector<uint64_t>& freqs,
                                      int max_len) {
  const int n = static_cast<int>(freqs.size());
  std::vector<uint8_t> lengths(n, 0);
  std::vector<int> used;
  for (int i = 0; i < n; ++i) {
    if (freqs[i] > 0) used.push_back(i);
  }
  if (used.empty()) return lengths;
  if (used.size() == 1) {
    lengths[used[0]] = 1;
    return lengths;
  }

  // Standard Huffman construction with a min-heap.
  std::vector<Node> nodes;
  nodes.reserve(used.size() * 2);
  auto cmp = [&nodes](int a, int b) {
    if (nodes[a].freq != nodes[b].freq) return nodes[a].freq > nodes[b].freq;
    return a > b;  // deterministic tie-break
  };
  std::priority_queue<int, std::vector<int>, decltype(cmp)> heap(cmp);
  for (int s : used) {
    nodes.push_back({freqs[s], s});
    heap.push(static_cast<int>(nodes.size()) - 1);
  }
  while (heap.size() > 1) {
    int a = heap.top();
    heap.pop();
    int b = heap.top();
    heap.pop();
    nodes.push_back({nodes[a].freq + nodes[b].freq,
                     static_cast<int>(nodes.size()), a, b});
    heap.push(static_cast<int>(nodes.size()) - 1);
  }
  ComputeDepths(nodes, heap.top(), 0, &lengths, n);

  // Enforce the length limit by demoting over-long codes and rebalancing
  // (heuristic used by zlib: push overflow down onto shorter codes while
  // preserving the Kraft inequality).
  int max_depth = 0;
  for (int s : used) max_depth = std::max<int>(max_depth, lengths[s]);
  if (max_depth <= max_len) return lengths;

  std::vector<int> bl_count(max_len + 1, 0);
  for (int s : used) {
    const int len = std::min<int>(lengths[s], max_len);
    lengths[s] = static_cast<uint8_t>(len);
    ++bl_count[len];
  }
  // Repair Kraft sum: sum(2^-len) must be <= 1.
  auto kraft = [&]() {
    uint64_t sum = 0;  // scaled by 2^max_len
    for (int l = 1; l <= max_len; ++l) {
      sum += static_cast<uint64_t>(bl_count[l]) << (max_len - l);
    }
    return sum;
  };
  const uint64_t budget = 1ull << max_len;
  while (kraft() > budget) {
    // Find a code at max_len and a code at < max_len - 1 to split; the
    // classic fix: take one max_len code, pair it under an existing
    // (max_len-1) code by lengthening that one.
    int l = max_len - 1;
    while (l > 0 && bl_count[l] == 0) --l;
    FSD_CHECK_GT(l, 0);
    --bl_count[l];
    bl_count[l + 1] += 2;
    --bl_count[max_len];
  }
  // Reassign lengths canonically: symbols sorted by original freq desc get
  // shorter codes first.
  std::sort(used.begin(), used.end(), [&](int a, int b) {
    if (freqs[a] != freqs[b]) return freqs[a] > freqs[b];
    return a < b;
  });
  size_t pos = 0;
  for (int l = 1; l <= max_len; ++l) {
    for (int c = 0; c < bl_count[l]; ++c) {
      FSD_CHECK_LT(pos, used.size());
      lengths[used[pos++]] = static_cast<uint8_t>(l);
    }
  }
  FSD_CHECK_EQ(pos, used.size());
  return lengths;
}

HuffmanEncoder::HuffmanEncoder(const std::vector<uint8_t>& lengths)
    : codes_(lengths.size(), 0), lengths_(lengths) {
  // Canonical code assignment.
  int bl_count[kMaxCodeLen + 1] = {0};
  for (uint8_t len : lengths) {
    if (len > 0) ++bl_count[len];
  }
  uint32_t next_code[kMaxCodeLen + 2] = {0};
  uint32_t code = 0;
  for (int len = 1; len <= kMaxCodeLen; ++len) {
    code = (code + bl_count[len - 1]) << 1;
    next_code[len] = code;
  }
  for (size_t s = 0; s < lengths.size(); ++s) {
    const uint8_t len = lengths[s];
    if (len == 0) continue;
    // Reverse bits so the LSB-first writer emits MSB-first canonical codes.
    uint32_t c = next_code[len]++;
    uint32_t rev = 0;
    for (int b = 0; b < len; ++b) {
      rev = (rev << 1) | (c & 1u);
      c >>= 1;
    }
    codes_[s] = rev;
  }
}

Result<HuffmanDecoder> HuffmanDecoder::Build(
    const std::vector<uint8_t>& lengths) {
  HuffmanDecoder dec;
  for (size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] > kMaxCodeLen) {
      return Status::InvalidArgument("huffman code length out of range");
    }
    if (lengths[s] > 0) ++dec.count_[lengths[s]];
  }
  // sorted_symbols_: symbols ordered by (length, symbol index).
  int offsets[kMaxCodeLen + 2] = {0};
  int total = 0;
  for (int l = 1; l <= kMaxCodeLen; ++l) {
    offsets[l] = total;
    total += dec.count_[l];
  }
  dec.sorted_symbols_.resize(total);
  {
    int cursor[kMaxCodeLen + 2];
    std::copy(offsets, offsets + kMaxCodeLen + 2, cursor);
    for (size_t s = 0; s < lengths.size(); ++s) {
      if (lengths[s] > 0) {
        dec.sorted_symbols_[cursor[lengths[s]]++] = static_cast<int>(s);
      }
    }
  }
  uint32_t code = 0;
  uint64_t kraft = 0;
  for (int l = 1; l <= kMaxCodeLen; ++l) {
    code = (code + dec.count_[l - 1]) << 1;
    dec.first_code_[l] = code;
    dec.first_index_[l] = offsets[l];
    code += 0;  // first code of this length is `code`
    kraft += static_cast<uint64_t>(dec.count_[l]) << (kMaxCodeLen - l);
  }
  if (total > 0 && kraft > (1ull << kMaxCodeLen)) {
    return Status::InvalidArgument("over-subscribed huffman code");
  }
  return dec;
}

Result<int> HuffmanDecoder::Decode(BitReader* reader) const {
  uint32_t code = 0;
  for (int len = 1; len <= kMaxCodeLen; ++len) {
    FSD_ASSIGN_OR_RETURN(int bit, reader->ReadBit());
    code = (code << 1) | static_cast<uint32_t>(bit);
    const uint32_t first = first_code_[len];
    const uint32_t count = count_[len];
    if (count > 0 && code >= first && code < first + count) {
      return sorted_symbols_[first_index_[len] + (code - first)];
    }
  }
  return Status::DataLoss("invalid huffman code in stream");
}

}  // namespace fsd::codec
