// Canonical Huffman coding with a bounded code length, used by the LZ codec.
#ifndef FSD_CODEC_HUFFMAN_H_
#define FSD_CODEC_HUFFMAN_H_

#include <cstdint>
#include <vector>

#include "codec/bitstream.h"
#include "common/result.h"

namespace fsd::codec {

/// Maximum Huffman code length; lengths are stored in 4-bit nibbles.
constexpr int kMaxCodeLen = 15;

/// Computes length-limited canonical code lengths for the given symbol
/// frequencies. Symbols with zero frequency get length 0 (no code). If only
/// one symbol has nonzero frequency it is assigned length 1.
std::vector<uint8_t> BuildCodeLengths(const std::vector<uint64_t>& freqs,
                                      int max_len = kMaxCodeLen);

/// Encoder: maps symbol -> (code bits, length) from canonical lengths.
class HuffmanEncoder {
 public:
  /// `lengths[i]` is the code length of symbol i (0 = unused).
  explicit HuffmanEncoder(const std::vector<uint8_t>& lengths);

  void Encode(BitWriter* writer, int symbol) const {
    writer->Write(codes_[symbol], lengths_[symbol]);
  }

  uint8_t length(int symbol) const { return lengths_[symbol]; }

 private:
  std::vector<uint32_t> codes_;
  std::vector<uint8_t> lengths_;
};

/// Decoder over the same canonical code space.
class HuffmanDecoder {
 public:
  /// Builds the decoder; returns InvalidArgument for an inconsistent code.
  static Result<HuffmanDecoder> Build(const std::vector<uint8_t>& lengths);

  /// Decodes one symbol bit-by-bit (canonical first-code method).
  Result<int> Decode(BitReader* reader) const;

 private:
  HuffmanDecoder() = default;
  // first_code_[len], first_index_[len] give the canonical decoding tables;
  // sorted_symbols_ lists symbols ordered by (length, symbol).
  uint32_t first_code_[kMaxCodeLen + 2] = {0};
  int first_index_[kMaxCodeLen + 2] = {0};
  uint16_t count_[kMaxCodeLen + 2] = {0};
  std::vector<int> sorted_symbols_;
};

}  // namespace fsd::codec

#endif  // FSD_CODEC_HUFFMAN_H_
