// FsdLz: from-scratch general-purpose compressor (LZ77 + canonical Huffman).
//
// This is the repository's substitute for ZLIB, which FSD-Inference uses to
// compress inter-worker payloads (paper §IV-B). The container format is:
//
//   byte 0   : 'F'           magic
//   byte 1   : 'Z'           magic
//   byte 2   : version (1)
//   byte 3   : method (0 = stored, 1 = lz-huffman)
//   varint   : uncompressed size
//   u32      : CRC-32 of the uncompressed data
//   payload  : raw bytes (stored) or Huffman-coded LZ token stream
//
// The LZ stage uses a 32 KiB window (the span of the distance alphabet, as
// in DEFLATE), greedy hash-chain matching, minimum match 4, maximum 258.
// Token symbols follow a DEFLATE-like layout: 0..255 literals, 256
// end-of-stream, 257.. length buckets with extra bits; match distances use
// a separate 30-bucket alphabet.
#ifndef FSD_CODEC_LZ_H_
#define FSD_CODEC_LZ_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/result.h"

namespace fsd::codec {

/// Compression effort/behaviour knobs (RocksDB-style options struct).
struct LzOptions {
  /// Maximum hash-chain probes per position; higher = better ratio, slower.
  int max_chain_probes = 32;
  /// Below this input size compression is skipped (stored mode).
  size_t min_compress_size = 64;
};

/// Compresses `input`; output is always a valid FsdLz container (stored mode
/// is used automatically when compression does not help).
Bytes LzCompress(const Bytes& input, const LzOptions& options = {});

/// Decompresses an FsdLz container, verifying the CRC.
Result<Bytes> LzDecompress(const Bytes& input);

/// Parses only the header and returns the uncompressed size.
Result<uint64_t> LzUncompressedSize(const Bytes& input);

}  // namespace fsd::codec

#endif  // FSD_CODEC_LZ_H_
