// LSB-first bit-level reader/writer backing the Huffman-coded LZ format.
#ifndef FSD_CODEC_BITSTREAM_H_
#define FSD_CODEC_BITSTREAM_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/check.h"
#include "common/result.h"

namespace fsd::codec {

/// Accumulates bits LSB-first into a byte vector.
class BitWriter {
 public:
  explicit BitWriter(Bytes* out) : out_(out) {}

  /// Writes the low `count` bits of `bits` (count <= 32).
  void Write(uint32_t bits, int count) {
    FSD_CHECK(count >= 0 && count <= 32);
    acc_ |= static_cast<uint64_t>(bits & ((count == 32) ? 0xFFFFFFFFu
                                                        : ((1u << count) - 1)))
            << filled_;
    filled_ += count;
    while (filled_ >= 8) {
      out_->push_back(static_cast<uint8_t>(acc_));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }

  /// Flushes any partial byte (zero-padded). Call exactly once at the end.
  void Finish() {
    if (filled_ > 0) {
      out_->push_back(static_cast<uint8_t>(acc_));
      acc_ = 0;
      filled_ = 0;
    }
  }

 private:
  Bytes* out_;
  uint64_t acc_ = 0;
  int filled_ = 0;
};

/// Reads bits LSB-first from a byte span.
class BitReader {
 public:
  BitReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  /// Reads `count` bits (count <= 32); fails on underrun.
  Result<uint32_t> Read(int count) {
    FSD_CHECK(count >= 0 && count <= 32);
    while (filled_ < count) {
      if (pos_ >= size_) return Status::DataLoss("bitstream underrun");
      acc_ |= static_cast<uint64_t>(data_[pos_++]) << filled_;
      filled_ += 8;
    }
    const uint32_t value = static_cast<uint32_t>(
        acc_ & ((count == 32) ? 0xFFFFFFFFull : ((1ull << count) - 1)));
    acc_ >>= count;
    filled_ -= count;
    return value;
  }

  /// Reads a single bit; hot path for Huffman decoding.
  Result<int> ReadBit() {
    if (filled_ == 0) {
      if (pos_ >= size_) return Status::DataLoss("bitstream underrun");
      acc_ = data_[pos_++];
      filled_ = 8;
    }
    const int bit = static_cast<int>(acc_ & 1u);
    acc_ >>= 1;
    --filled_;
    return bit;
  }

  /// Number of whole bytes consumed so far (including buffered bits).
  size_t bytes_consumed() const { return pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  uint64_t acc_ = 0;
  int filled_ = 0;
};

}  // namespace fsd::codec

#endif  // FSD_CODEC_BITSTREAM_H_
