#include "codec/quant.h"

#include <cmath>
#include <cstdlib>

#include "codec/bitstream.h"
#include "codec/crc32.h"
#include "codec/huffman.h"
#include "codec/varint.h"
#include "common/check.h"

namespace fsd::codec {
namespace {

constexpr uint8_t kMagic0 = 'F';
constexpr uint8_t kMagic1 = 'Q';
constexpr uint8_t kVersion = 1;
constexpr uint8_t kMethodStored = 0;
constexpr uint8_t kMethodHuffman = 1;

int64_t MaxMagnitude(int32_t bits) { return (1ll << (bits - 1)) - 1; }

size_t PackedBytes(size_t count, int32_t bits) {
  return (count * static_cast<size_t>(bits) + 7) / 8;
}

Result<std::vector<uint8_t>> ReadNibbleLengths(ByteReader* reader, int count) {
  std::vector<uint8_t> lengths(count, 0);
  const int bytes = (count + 1) / 2;
  FSD_ASSIGN_OR_RETURN(const uint8_t* p, reader->Skip(bytes));
  for (int i = 0; i < count; ++i) {
    const uint8_t b = p[i / 2];
    lengths[i] = (i % 2 == 0) ? (b & 0x0F) : (b >> 4);
  }
  return lengths;
}

}  // namespace

double QuantRelErrorBound(int32_t bits) {
  FSD_CHECK(bits >= kQuantMinBits && bits <= kQuantMaxBits);
  // Half a step relative to the block scale; the 1e-7 absorbs the float
  // rounding of the reconstructed value (quantization itself runs in
  // double).
  return 0.5 / static_cast<double>(MaxMagnitude(bits)) + 1e-7;
}

Bytes QuantCompress(const float* values, size_t count, int32_t bits,
                    QuantStats* stats) {
  FSD_CHECK(bits >= kQuantMinBits && bits <= kQuantMaxBits);
  const int64_t m = MaxMagnitude(bits);
  float scale = 0.0f;
  for (size_t i = 0; i < count; ++i) {
    const float a = std::fabs(values[i]);
    if (a > scale) scale = a;
  }

  // Quantize into b-bit symbols sym = q + m, q in [-m, m].
  Bytes packed;
  packed.reserve(PackedBytes(count, bits));
  BitWriter packer(&packed);
  const double inv_step =
      scale > 0.0f ? static_cast<double>(m) / static_cast<double>(scale) : 0.0;
  const double step =
      scale > 0.0f ? static_cast<double>(scale) / static_cast<double>(m) : 0.0;
  double max_rel_err = 0.0;
  for (size_t i = 0; i < count; ++i) {
    int64_t q = std::llround(static_cast<double>(values[i]) * inv_step);
    if (q > m) q = m;
    if (q < -m) q = -m;
    packer.Write(static_cast<uint32_t>(q + m), bits);
    if (stats != nullptr && scale > 0.0f) {
      const double err =
          std::fabs(static_cast<double>(q) * step -
                    static_cast<double>(values[i])) /
          static_cast<double>(scale);
      if (err > max_rel_err) max_rel_err = err;
    }
  }
  packer.Finish();
  if (stats != nullptr) stats->max_rel_err = max_rel_err;

  // The CRC covers the decode-critical header (width, count, scale) as
  // well as the packed symbols: a flipped scale byte would otherwise
  // reconstruct silently wrong values.
  Bytes crc_hdr;
  crc_hdr.push_back(static_cast<uint8_t>(bits));
  PutVarint64(&crc_hdr, count);
  AppendRaw<float>(&crc_hdr, scale);
  const uint32_t crc =
      Crc32(packed.data(), packed.size(), Crc32(crc_hdr.data(), crc_hdr.size()));

  Bytes out;
  out.reserve(packed.size() + 16);
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kVersion);
  out.push_back(static_cast<uint8_t>(bits));
  PutVarint64(&out, count);
  AppendRaw<float>(&out, scale);
  AppendRaw<uint32_t>(&out, crc);

  // Entropy-code the packed symbol bytes when that actually shrinks them
  // (activation magnitudes are heavily skewed, so symbol bytes repeat).
  std::vector<uint64_t> freqs(256, 0);
  for (uint8_t b : packed) ++freqs[b];
  const std::vector<uint8_t> lengths = BuildCodeLengths(freqs);
  HuffmanEncoder enc(lengths);
  uint64_t coded_bits = 0;
  for (int s = 0; s < 256; ++s) coded_bits += freqs[s] * enc.length(s);
  const size_t table_bytes = 128;  // 256 nibble lengths
  if (table_bytes + (coded_bits + 7) / 8 < packed.size()) {
    out.push_back(kMethodHuffman);
    for (size_t i = 0; i < 256; i += 2) {
      out.push_back(static_cast<uint8_t>((lengths[i] & 0x0F) |
                                         ((lengths[i + 1] & 0x0F) << 4)));
    }
    BitWriter writer(&out);
    for (uint8_t b : packed) enc.Encode(&writer, b);
    writer.Finish();
  } else {
    out.push_back(kMethodStored);
    out.insert(out.end(), packed.begin(), packed.end());
  }
  return out;
}

Result<std::vector<float>> QuantDecompress(const Bytes& data) {
  ByteReader reader(data);
  FSD_ASSIGN_OR_RETURN(uint8_t m0, reader.Read<uint8_t>());
  FSD_ASSIGN_OR_RETURN(uint8_t m1, reader.Read<uint8_t>());
  FSD_ASSIGN_OR_RETURN(uint8_t version, reader.Read<uint8_t>());
  FSD_ASSIGN_OR_RETURN(uint8_t bits, reader.Read<uint8_t>());
  if (m0 != kMagic0 || m1 != kMagic1 || version != kVersion) {
    return Status::DataLoss("bad FQ header");
  }
  if (bits < kQuantMinBits || bits > kQuantMaxBits) {
    return Status::DataLoss("bad FQ width");
  }
  FSD_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(&reader));
  FSD_ASSIGN_OR_RETURN(float scale, reader.Read<float>());
  FSD_ASSIGN_OR_RETURN(uint32_t expect_crc, reader.Read<uint32_t>());
  FSD_ASSIGN_OR_RETURN(uint8_t method, reader.Read<uint8_t>());
  if (!(scale >= 0.0f) || !std::isfinite(scale)) {
    return Status::DataLoss("bad FQ scale");
  }

  const size_t packed_bytes = PackedBytes(count, bits);
  Bytes packed;
  if (method == kMethodStored) {
    FSD_ASSIGN_OR_RETURN(packed, reader.ReadBytes(packed_bytes));
  } else if (method == kMethodHuffman) {
    FSD_ASSIGN_OR_RETURN(std::vector<uint8_t> lengths,
                         ReadNibbleLengths(&reader, 256));
    FSD_ASSIGN_OR_RETURN(HuffmanDecoder dec, HuffmanDecoder::Build(lengths));
    BitReader bits_in(data.data() + reader.position(),
                      data.size() - reader.position());
    packed.reserve(packed_bytes);
    for (size_t i = 0; i < packed_bytes; ++i) {
      FSD_ASSIGN_OR_RETURN(int sym, dec.Decode(&bits_in));
      packed.push_back(static_cast<uint8_t>(sym));
    }
  } else {
    return Status::DataLoss("unknown FQ method");
  }
  Bytes crc_hdr;
  crc_hdr.push_back(bits);
  PutVarint64(&crc_hdr, count);
  AppendRaw<float>(&crc_hdr, scale);
  const uint32_t crc = Crc32(packed.data(), packed.size(),
                             Crc32(crc_hdr.data(), crc_hdr.size()));
  if (crc != expect_crc) {
    return Status::DataLoss("FQ checksum mismatch");
  }

  const int64_t m = MaxMagnitude(bits);
  const double step =
      scale > 0.0f ? static_cast<double>(scale) / static_cast<double>(m) : 0.0;
  std::vector<float> values;
  values.reserve(count);
  BitReader unpacker(packed.data(), packed.size());
  for (uint64_t i = 0; i < count; ++i) {
    FSD_ASSIGN_OR_RETURN(uint32_t sym, unpacker.Read(bits));
    if (sym > static_cast<uint32_t>(2 * m)) {
      return Status::DataLoss("FQ symbol out of range");
    }
    const int64_t q = static_cast<int64_t>(sym) - m;
    values.push_back(static_cast<float>(static_cast<double>(q) * step));
  }
  return values;
}

}  // namespace fsd::codec
