#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace fsd {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_log_mutex;

LogLevel InitialLevel() {
  const char* env = std::getenv("FSD_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarn;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

struct LevelInit {
  LevelInit() { g_level.store(static_cast<int>(InitialLevel())); }
};
LevelInit g_level_init;

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void LogV(LogLevel level, const char* file, int line, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  const char* base = std::strrchr(file, '/');
  base = (base != nullptr) ? base + 1 : file;
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s %s:%d] ", LevelName(level), base, line);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace fsd
