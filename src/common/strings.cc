#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace fsd {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed <= 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string HumanBytes(double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  return StrFormat("%.2f %s", bytes, units[unit]);
}

std::string HumanDollars(double dollars) {
  if (dollars != 0.0 && dollars < 0.001) {
    return StrFormat("$%.3e", dollars);
  }
  return StrFormat("$%.4f", dollars);
}

}  // namespace fsd
