// Small string formatting helpers (printf-backed; std::format is not yet
// reliably available in the toolchains we target).
#ifndef FSD_COMMON_STRINGS_H_
#define FSD_COMMON_STRINGS_H_

#include <string>

namespace fsd {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Human-readable byte count, e.g. "1.5 MiB".
std::string HumanBytes(double bytes);

/// Fixed-point dollar amount, e.g. "$0.3471".
std::string HumanDollars(double dollars);

}  // namespace fsd

#endif  // FSD_COMMON_STRINGS_H_
