#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace fsd {
namespace {

inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  origin_seed_ = seed;
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  have_cached_gaussian_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  FSD_CHECK_GT(bound, 0u);
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; avoid log(0) by nudging u1 away from zero.
  double u1 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextGaussian());
}

double Rng::NextExponential(double mean) {
  FSD_CHECK_GT(mean, 0.0);
  double u = NextDouble();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Rng Rng::Fork(uint64_t tag) const {
  // Mix the origin seed with the tag through SplitMix64 for independence.
  uint64_t st = origin_seed_ ^ (tag * 0xD6E8FEB86659FD93ULL + 1);
  uint64_t mixed = SplitMix64(st);
  return Rng(mixed);
}

}  // namespace fsd
