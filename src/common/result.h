// Result<T>: value-or-Status, the return type of fallible producers.
//
// Mirrors arrow::Result / absl::StatusOr. Accessing the value of an errored
// Result is a programmer error and aborts via FSD_CHECK.
#ifndef FSD_COMMON_RESULT_H_
#define FSD_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace fsd {

template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {
    FSD_CHECK(!status_.ok());  // OK without a value is meaningless
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; aborts if !ok().
  const T& value() const& {
    FSD_CHECK(ok());
    return *value_;
  }
  T& value() & {
    FSD_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    FSD_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace fsd

/// Assigns the value of a Result expression to `lhs`, propagating errors.
///   FSD_ASSIGN_OR_RETURN(auto rows, ReadRows(...));
#define FSD_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value();

#define FSD_ASSIGN_OR_RETURN_CAT(a, b) a##b
#define FSD_ASSIGN_OR_RETURN_NAME(a, b) FSD_ASSIGN_OR_RETURN_CAT(a, b)

#define FSD_ASSIGN_OR_RETURN(lhs, expr) \
  FSD_ASSIGN_OR_RETURN_IMPL(            \
      FSD_ASSIGN_OR_RETURN_NAME(_fsd_result_, __LINE__), lhs, expr)

#endif  // FSD_COMMON_RESULT_H_
