// Minimal leveled logger (RocksDB Logger spirit, printf-style).
//
// Logging defaults to WARN so tests and benches stay quiet; the simulation
// runtime raises verbosity when FSD_LOG_LEVEL is set in the environment.
#ifndef FSD_COMMON_LOGGING_H_
#define FSD_COMMON_LOGGING_H_

#include <cstdarg>

namespace fsd {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// printf-style log emission; prefer the FSD_LOG macro.
void LogV(LogLevel level, const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

}  // namespace fsd

#define FSD_LOG(level, ...) \
  ::fsd::LogV(::fsd::LogLevel::level, __FILE__, __LINE__, __VA_ARGS__)

#endif  // FSD_COMMON_LOGGING_H_
