// Status: error-handling primitive used across the FSD-Inference codebase.
//
// Library code does not throw exceptions across API boundaries (Google C++
// style; RocksDB/Arrow idiom). Fallible operations return Status, or
// Result<T> (see result.h) when they also produce a value.
#ifndef FSD_COMMON_STATUS_H_
#define FSD_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace fsd {

/// Canonical error space, loosely following absl::StatusCode.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kResourceExhausted = 4,   ///< provider quota / capacity limit hit
  kFailedPrecondition = 5,
  kOutOfRange = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kDeadlineExceeded = 9,    ///< FaaS max-runtime or poll deadline exceeded
  kDataLoss = 10,           ///< corruption detected (checksum mismatch)
  kUnavailable = 11,        ///< transient service failure (retryable)
};

/// Returns a stable human-readable name for a StatusCode (e.g. "NotFound").
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantic status of an operation: a code plus an optional message.
///
/// The OK status carries no allocation. Statuses are cheap to copy and move.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace fsd

/// Propagates a non-OK Status to the caller. Usage:
///   FSD_RETURN_IF_ERROR(DoThing());
#define FSD_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::fsd::Status _fsd_status = (expr);          \
    if (!_fsd_status.ok()) return _fsd_status;   \
  } while (0)

#endif  // FSD_COMMON_STATUS_H_
