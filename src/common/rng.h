// Deterministic pseudo-random number generation.
//
// Every stochastic component (model generator, latency models, workload
// generators) takes an explicit seed so simulations replay bit-identically.
// The generator is xoshiro256** seeded via SplitMix64 — fast, high quality,
// and stable across platforms (unlike std:: distributions, whose outputs are
// implementation-defined; we implement our own distributions).
#ifndef FSD_COMMON_RNG_H_
#define FSD_COMMON_RNG_H_

#include <cstdint>

namespace fsd {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single 64-bit value.
  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound) using Lemire rejection; bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller (deterministic pairing).
  double NextGaussian();

  /// Lognormal with the given log-space mu/sigma.
  double NextLogNormal(double mu, double sigma);

  /// Exponential with the given mean (> 0).
  double NextExponential(double mean);

  /// Bernoulli draw with probability p.
  bool NextBool(double p);

  /// Derives an independent child generator; stable for a given (seed, tag).
  Rng Fork(uint64_t tag) const;

 private:
  uint64_t s_[4];
  uint64_t origin_seed_ = 0;
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace fsd

#endif  // FSD_COMMON_RNG_H_
