// FSD_CHECK family: fail-fast invariant checks for programmer errors.
//
// Unlike Status (expected, recoverable failures), a failed check indicates a
// bug; it prints a diagnostic and aborts. Checks are active in all build
// types — database-grade code does not strip invariant checks in release.
#ifndef FSD_COMMON_CHECK_H_
#define FSD_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace fsd::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "FSD_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace fsd::internal

#define FSD_CHECK(expr)                                       \
  do {                                                        \
    if (!(expr)) {                                            \
      ::fsd::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                         \
  } while (0)

#define FSD_CHECK_OK(status_expr)                                          \
  do {                                                                     \
    ::fsd::Status _fsd_chk = (status_expr);                                \
    if (!_fsd_chk.ok()) {                                                  \
      ::fsd::internal::CheckFailed(__FILE__, __LINE__,                     \
                                   _fsd_chk.ToString().c_str());           \
    }                                                                      \
  } while (0)

#define FSD_CHECK_EQ(a, b) FSD_CHECK((a) == (b))
#define FSD_CHECK_NE(a, b) FSD_CHECK((a) != (b))
#define FSD_CHECK_LT(a, b) FSD_CHECK((a) < (b))
#define FSD_CHECK_LE(a, b) FSD_CHECK((a) <= (b))
#define FSD_CHECK_GT(a, b) FSD_CHECK((a) > (b))
#define FSD_CHECK_GE(a, b) FSD_CHECK((a) >= (b))

#endif  // FSD_COMMON_CHECK_H_
