// Byte buffer and cursor types used for message payloads and object bodies.
#ifndef FSD_COMMON_BYTES_H_
#define FSD_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace fsd {

using Bytes = std::vector<uint8_t>;

/// Appends raw little-endian scalar bytes to `out`.
template <typename T>
void AppendRaw(Bytes* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const size_t offset = out->size();
  out->resize(offset + sizeof(T));
  std::memcpy(out->data() + offset, &value, sizeof(T));
}

/// Sequential reader over a byte span with bounds checking.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const Bytes& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  bool exhausted() const { return pos_ >= size_; }

  /// Reads a trivially-copyable scalar; fails cleanly on truncation.
  template <typename T>
  Result<T> Read() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) {
      return Status::OutOfRange("byte reader truncated scalar");
    }
    T value;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  /// Reads `n` raw bytes.
  Result<Bytes> ReadBytes(size_t n) {
    if (remaining() < n) {
      return Status::OutOfRange("byte reader truncated span");
    }
    Bytes out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
  }

  /// Returns a pointer to the current position and advances by n.
  Result<const uint8_t*> Skip(size_t n) {
    if (remaining() < n) {
      return Status::OutOfRange("byte reader truncated skip");
    }
    const uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Converts bytes to a std::string (for map keys / debugging).
inline std::string ToString(const Bytes& bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

inline Bytes FromString(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

}  // namespace fsd

#endif  // FSD_COMMON_BYTES_H_
