#include "baselines/server.h"

#include "common/strings.h"

namespace fsd::baselines {

std::string JobScopedInstanceType(int32_t neurons) {
  if (neurons <= 4096) return "c5.2xlarge";
  if (neurons <= 16384) return "c5.9xlarge";
  return "c5.12xlarge";
}

Result<ServerReport> RunServerInference(cloud::CloudEnv* cloud,
                                        const model::SparseDnn& dnn,
                                        const linalg::ActivationMap& input,
                                        const ServerRunOptions& options) {
  if (input.empty()) return Status::InvalidArgument("empty input");
  const int32_t batch = input.begin()->second.dim;
  std::string type = options.instance_type;
  if (type.empty()) {
    type = options.job_scoped ? JobScopedInstanceType(dnn.neurons())
                              : "c5.12xlarge";
  }
  auto type_it = cloud::VmCatalogue().find(type);
  if (type_it == cloud::VmCatalogue().end()) {
    return Status::NotFound("unknown instance type: " + type);
  }
  const cloud::VmType vm_type = type_it->second;

  auto report = std::make_unique<ServerReport>();
  Status run_status = Status::OK();
  cloud->sim()->AddProcess("server-query", [&]() {
    const double t0 = cloud->sim()->Now();
    uint64_t vm_id = 0;
    const auto before_vm_cost =
        cloud->billing().line(cloud::BillingDimension::kVmSecond).cost;
    if (options.job_scoped) {
      Result<uint64_t> launched = cloud->vms().Launch(type);
      if (!launched.ok()) {
        run_status = launched.status();
        return;
      }
      vm_id = *launched;
      report->boot_s = cloud->sim()->Now() - t0;
    }

    // Model acquisition.
    const double load_start = cloud->sim()->Now();
    const uint64_t model_bytes = dnn.WeightBytes();
    Rng rng(dnn.config.seed ^ 0x5E2Full);
    switch (options.residence) {
      case ModelResidence::kMemory:
        break;
      case ModelResidence::kEbs:
        cloud->sim()->Hold(static_cast<double>(model_bytes) /
                           cloud->latency().ebs_read_bytes_per_s);
        break;
      case ModelResidence::kObject: {
        // Multipart S3 read, 16 MiB parts, 8 parallel streams.
        constexpr uint64_t kPart = 16ull * 1024 * 1024;
        const uint64_t parts =
            std::max<uint64_t>(1, (model_bytes + kPart - 1) / kPart);
        cloud->billing().Record(cloud::BillingDimension::kObjectGet,
                                static_cast<double>(parts));
        std::vector<double> latencies;
        uint64_t remaining = model_bytes;
        for (uint64_t p = 0; p < parts; ++p) {
          const uint64_t part = std::min<uint64_t>(kPart, remaining);
          remaining -= part;
          latencies.push_back(
              cloud->latency().object_get.Sample(&rng, part));
        }
        cloud->sim()->Hold(sim::ParallelMakespan(latencies, 8));
        break;
      }
    }
    // Deserialization into the runtime's sparse structures.
    cloud->sim()->Hold(static_cast<double>(model_bytes) /
                       cloud->compute().deserialize_bytes_per_s);
    report->model_load_s = cloud->sim()->Now() - load_start;

    // Compute: same serial path as FSD-Inf-Serial, with multi-core scaling.
    double flops = 0.0;
    if (options.precomputed_stats != nullptr) {
      flops = options.precomputed_stats->total_flops;
    } else {
      model::ReferenceStats stats;
      Result<linalg::ActivationMap> out =
          model::ReferenceInference(dnn, input, &stats);
      if (!out.ok()) {
        run_status = out.status();
        return;
      }
      report->output = std::move(*out);
      flops = stats.total_flops;
    }
    const double effective_vcpus =
        vm_type.vcpus * options.parallel_efficiency;
    cloud->sim()->Hold(
        cloud->compute().VmComputeSeconds(flops, effective_vcpus));

    if (options.job_scoped) {
      Status term = cloud->vms().Terminate(vm_id);
      if (!term.ok()) {
        run_status = term;
        return;
      }
      report->job_cost =
          cloud->billing().line(cloud::BillingDimension::kVmSecond).cost -
          before_vm_cost;
    }
    report->latency_s = cloud->sim()->Now() - t0;
    report->per_sample_ms = report->latency_s * 1000.0 / batch;
  });
  cloud->sim()->Run();
  FSD_RETURN_IF_ERROR(run_status);
  report->status = Status::OK();
  return std::move(*report);
}

}  // namespace fsd::baselines
