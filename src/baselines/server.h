// Server-based inference baselines (paper §VI-B): Server-Always-On (hot /
// EBS-warm / cold) and Server-Job-Scoped, running the same serial compute
// path as FSD-Inf-Serial on provisioned VMs.
#ifndef FSD_BASELINES_SERVER_H_
#define FSD_BASELINES_SERVER_H_

#include <string>

#include "cloud/cloud.h"
#include "common/result.h"
#include "linalg/spmm.h"
#include "model/reference.h"
#include "model/sparse_dnn.h"

namespace fsd::baselines {

/// Where the model weights come from when the query arrives.
enum class ModelResidence {
  kMemory,  ///< already resident (the lucky half of "AO-Hot" requests)
  kEbs,     ///< on the attached block volume (SageMaker MME spill tier 1)
  kObject,  ///< fetched from object storage ("AO-Cold")
};

struct ServerRunOptions {
  /// Instance type; empty selects the paper's sizing: job-scoped uses the
  /// smallest c5 with more vCPU+memory than the equivalent FSD fleet
  /// (c5.2xlarge / c5.9xlarge / c5.12xlarge by N), always-on uses
  /// c5.12xlarge.
  std::string instance_type;
  ModelResidence residence = ModelResidence::kMemory;
  /// Job-scoped VMs boot on demand and terminate after the query.
  bool job_scoped = false;
  /// Fraction of peak FLOPs a multi-threaded server run achieves (the
  /// paper's baselines run the FSD-Inf-Serial codebase with BLAS-level
  /// threading; scaling across 48 vCPUs is imperfect).
  double parallel_efficiency = 0.5;
  /// Reuse precomputed reference stats instead of re-running the kernel
  /// (benches already computed the ground truth).
  const model::ReferenceStats* precomputed_stats = nullptr;
};

struct ServerReport {
  Status status;
  double latency_s = 0.0;
  double per_sample_ms = 0.0;
  double model_load_s = 0.0;
  double boot_s = 0.0;
  /// Cost billed for this query (job-scoped only; always-on fleets are
  /// billed wall-clock via VmService::BillAlwaysOn by the caller).
  double job_cost = 0.0;
  linalg::ActivationMap output;  ///< empty when precomputed stats were used
};

/// The paper's job-scoped sizing rule for a given model width.
std::string JobScopedInstanceType(int32_t neurons);

/// Runs one batch query on a server (drives the simulation internally).
Result<ServerReport> RunServerInference(cloud::CloudEnv* cloud,
                                        const model::SparseDnn& dnn,
                                        const linalg::ActivationMap& input,
                                        const ServerRunOptions& options);

}  // namespace fsd::baselines

#endif  // FSD_BASELINES_SERVER_H_
