#include "baselines/hspff.h"

namespace fsd::baselines {

HspffReport EstimateHspff(const model::SparseDnn& dnn,
                          const model::ReferenceStats& stats, int32_t batch,
                          const cloud::ComputeModelConfig& compute,
                          const HspffConfig& config) {
  HspffReport report;
  const double cores = static_cast<double>(config.nodes) *
                       config.cores_per_node * config.parallel_efficiency;
  const double rate =
      1e9 * compute.gflops_per_vcpu * config.core_speed_ratio * cores;
  report.latency_s = stats.total_flops / rate +
                     static_cast<double>(dnn.layers()) * config.per_layer_comm_s;
  report.per_sample_ms = report.latency_s * 1000.0 / batch;
  return report;
}

}  // namespace fsd::baselines
