// Sage-SL-Inf baseline (paper §VI-B): a commercial serverless inference
// endpoint in the image of SageMaker Serverless Inference. A single
// resource-constrained FaaS instance serves each request, subject to the
// provider caps that made the paper's Sage-SL-Inf runs fail on larger
// workloads: 6 GB memory, 6 MB request payload, 60 s runtime.
#ifndef FSD_BASELINES_SAGE_H_
#define FSD_BASELINES_SAGE_H_

#include "cloud/cloud.h"
#include "common/result.h"
#include "model/reference.h"
#include "model/sparse_dnn.h"

namespace fsd::baselines {

struct SageEndpointConfig {
  int32_t memory_mb = 6144;          ///< provider max at the time of writing
  uint64_t max_payload_bytes = 6ull * 1024 * 1024;
  double max_runtime_s = 60.0;
  /// Rough in-memory expansion of serialized weights (sparse structures).
  double model_memory_overhead = 1.6;
  /// Estimated serialized bytes per input sample (thresholded image).
  double bytes_per_sample = 0.0;     ///< 0 derives from the input density
};

struct SageReport {
  Status status;                ///< why the endpoint rejected the workload
  double latency_s = 0.0;       ///< for the samples it DID process
  double per_sample_ms = 0.0;
  int32_t requested_samples = 0;
  int32_t served_samples = 0;   ///< 0 when the model cannot be loaded
  int32_t max_batch_per_request = 0;
};

/// Evaluates the endpoint on a batch workload. If the model fits, processes
/// as many samples as payload + runtime caps allow (the paper reports
/// 8000/2500/1000 of 10000 for N = 1024/4096/16384, and total failure at
/// N = 65536).
SageReport RunSageServerless(cloud::CloudEnv* cloud,
                             const model::SparseDnn& dnn,
                             const model::ReferenceStats& stats,
                             int32_t batch,
                             const SageEndpointConfig& config = {});

}  // namespace fsd::baselines

#endif  // FSD_BASELINES_SAGE_H_
