#include "baselines/sage.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace fsd::baselines {

SageReport RunSageServerless(cloud::CloudEnv* cloud,
                             const model::SparseDnn& dnn,
                             const model::ReferenceStats& stats,
                             int32_t batch, const SageEndpointConfig& config) {
  SageReport report;
  report.requested_samples = batch;

  // 1) Memory gate: weights plus working set must fit the 6 GB cap.
  const double needed_mb = static_cast<double>(dnn.WeightBytes()) *
                           config.model_memory_overhead / (1024.0 * 1024.0);
  if (needed_mb > config.memory_mb) {
    report.status = Status::ResourceExhausted(StrFormat(
        "model needs ~%.0f MB, endpoint cap is %d MB", needed_mb,
        config.memory_mb));
    return report;
  }

  // 2) Payload gate: how many samples fit one 6 MB request.
  double bytes_per_sample = config.bytes_per_sample;
  if (bytes_per_sample <= 0.0) {
    // Thresholded sparse image: ~20% active neurons at ~5 bytes each.
    bytes_per_sample = 0.20 * dnn.neurons() * 5.0;
  }
  const int32_t payload_batch = std::max<int32_t>(
      1,
      static_cast<int32_t>(config.max_payload_bytes / bytes_per_sample));

  // 3) Runtime gate: samples processable inside 60 s on a 6 GB instance.
  const double flops_per_sample = stats.total_flops / batch;
  const double rate_s_per_sample =
      cloud->compute().FaasComputeSeconds(flops_per_sample, config.memory_mb);
  const double model_load_s =
      static_cast<double>(dnn.WeightBytes()) /
      cloud->compute().deserialize_bytes_per_s;
  const double usable_s = config.max_runtime_s - model_load_s;
  if (usable_s <= 0.0) {
    report.status = Status::DeadlineExceeded(
        "model load alone exceeds the runtime cap");
    return report;
  }
  const int32_t runtime_batch = std::max<int32_t>(
      0, static_cast<int32_t>(usable_s / rate_s_per_sample));
  if (runtime_batch == 0) {
    report.status = Status::DeadlineExceeded(
        "a single sample exceeds the runtime cap");
    return report;
  }

  report.max_batch_per_request = std::min(payload_batch, runtime_batch);
  report.served_samples = std::min(batch, report.max_batch_per_request);
  report.latency_s =
      model_load_s + report.served_samples * rate_s_per_sample;
  report.per_sample_ms = report.latency_s * 1000.0 / report.served_samples;
  if (report.served_samples < batch) {
    report.status = Status::ResourceExhausted(StrFormat(
        "endpoint served %d of %d samples (payload/runtime caps)",
        report.served_samples, batch));
  } else {
    report.status = Status::OK();
  }
  return report;
}

}  // namespace fsd::baselines
