// H-SpFF baseline (paper §VI-B): the hypergraph-partitioned sparse
// feed-forward inference engine of Demirci & Ferhatosmanoglu (ICS'21)
// running on an on-premise HPC cluster with MPI over a fast interconnect.
//
// No cloud services are involved (the paper reports no cost for H-SpFF), so
// the baseline is an analytic latency model: distributed compute at HPC
// parallel efficiency plus per-layer MPI exchange overheads.
#ifndef FSD_BASELINES_HSPFF_H_
#define FSD_BASELINES_HSPFF_H_

#include "cloud/faas.h"
#include "model/reference.h"
#include "model/sparse_dnn.h"

namespace fsd::baselines {

struct HspffConfig {
  int32_t nodes = 4;
  int32_t cores_per_node = 24;
  /// Parallel efficiency of the hypergraph-partitioned MPI execution.
  double parallel_efficiency = 0.7;
  /// Per-layer synchronization + point-to-point exchange overhead.
  double per_layer_comm_s = 0.004;
  /// Per-core sustained sparse rate relative to the FaaS calibration.
  double core_speed_ratio = 1.0;
};

struct HspffReport {
  double latency_s = 0.0;
  double per_sample_ms = 0.0;
};

/// Estimates batch latency from the reference run's FLOP count.
HspffReport EstimateHspff(const model::SparseDnn& dnn,
                          const model::ReferenceStats& stats, int32_t batch,
                          const cloud::ComputeModelConfig& compute,
                          const HspffConfig& config = {});

}  // namespace fsd::baselines

#endif  // FSD_BASELINES_HSPFF_H_
