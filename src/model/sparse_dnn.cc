#include "model/sparse_dnn.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "common/strings.h"

namespace fsd::model {

float DefaultBias(int32_t neurons) {
  // Mirrors the Graph Challenge's per-N bias schedule, with magnitudes
  // re-calibrated for the synthetic signed-weight distribution so that
  // 120-layer networks neither die out nor blow up: activations stay alive
  // at every layer and densify gradually, as the real benchmark's do.
  if (neurons <= 512) return -0.08f;
  if (neurons <= 4096) return -0.10f;
  return -0.12f;
}

int64_t SparseDnn::TotalNnz() const {
  int64_t total = 0;
  for (const auto& w : weights) total += w.nnz();
  return total;
}

uint64_t SparseDnn::WeightBytes() const {
  return static_cast<uint64_t>(TotalNnz()) * 8 +
         static_cast<uint64_t>(config.layers) * (config.neurons + 1) * 8;
}

Result<SparseDnn> GenerateSparseDnn(const SparseDnnConfig& config) {
  if (config.neurons < 8) {
    return Status::InvalidArgument("neurons must be >= 8");
  }
  if (config.layers < 1) return Status::InvalidArgument("layers must be >= 1");
  if (config.nnz_per_row < 1 || config.nnz_per_row > config.neurons) {
    return Status::InvalidArgument("nnz_per_row outside [1, neurons]");
  }
  if (config.long_range_fraction < 0.0 || config.long_range_fraction > 1.0) {
    return Status::InvalidArgument("long_range_fraction outside [0, 1]");
  }

  SparseDnn dnn;
  dnn.config = config;
  if (dnn.config.bias == SparseDnnConfig::kAutoBias) {
    dnn.config.bias = DefaultBias(config.neurons);
  }
  if (dnn.config.bias > 0.0f) {
    return Status::InvalidArgument(
        "bias must be <= 0 (sparse kernel precondition)");
  }

  const int32_t n = config.neurons;
  const int32_t n_long = static_cast<int32_t>(
      std::lround(config.nnz_per_row * config.long_range_fraction));
  const int32_t window =
      std::min<int32_t>(config.window, std::max<int32_t>(1, n / 2 - 1));

  Rng base(config.seed);
  dnn.weights.reserve(config.layers);
  for (int32_t k = 0; k < config.layers; ++k) {
    Rng rng = base.Fork(static_cast<uint64_t>(k) + 1);

    // Global shifted-diagonal offsets: anchored at fixed fractions of N so
    // they align across layers (partition-friendly structure), with a small
    // per-layer jitter so layers are not identical.
    std::vector<int32_t> global_offsets;
    global_offsets.reserve(config.num_global_offsets);
    for (int32_t g = 0; g < config.num_global_offsets; ++g) {
      const int64_t anchor =
          static_cast<int64_t>(g + 1) * n / (config.num_global_offsets + 1);
      const int32_t jitter = static_cast<int32_t>(
          rng.NextBounded(static_cast<uint64_t>(window) + 1)) -
          window / 2;
      int64_t offset = (anchor + jitter) % n;
      if (offset < 0) offset += n;
      global_offsets.push_back(static_cast<int32_t>(offset));
    }

    std::vector<linalg::Triplet> triplets;
    triplets.reserve(static_cast<size_t>(n) * config.nnz_per_row);
    std::unordered_set<int32_t> cols;
    for (int32_t i = 0; i < n; ++i) {
      cols.clear();
      // Long-range links to the layer's shifted diagonals.
      int32_t want_long = std::min<int32_t>(
          n_long, static_cast<int32_t>(global_offsets.size()));
      for (int32_t j = 0; j < want_long; ++j) {
        const int32_t g = static_cast<int32_t>(
            rng.NextBounded(global_offsets.size()));
        cols.insert((i + global_offsets[g]) % n);
      }
      // Local links in the diagonal window; retry until the row has its
      // full Graph Challenge degree.
      int guard = 0;
      while (static_cast<int32_t>(cols.size()) < config.nnz_per_row) {
        const int32_t u = static_cast<int32_t>(rng.NextBounded(
                              static_cast<uint64_t>(2 * window) + 1)) -
                          window;
        int32_t c = (i + u) % n;
        if (c < 0) c += n;
        cols.insert(c);
        if (++guard > 64 * config.nnz_per_row) break;  // tiny-N safety valve
      }
      for (int32_t c : cols) {
        float w = static_cast<float>(
            rng.NextUniform(config.weight_min, config.weight_max));
        if (w == 0.0f) w = config.weight_max * 0.5f;
        triplets.push_back({i, c, w});
      }
    }
    dnn.weights.push_back(linalg::CsrMatrix::FromTriplets(n, n, triplets));
  }
  return dnn;
}

}  // namespace fsd::model
