#include "model/input_gen.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.h"

namespace fsd::model {

Result<linalg::ActivationMap> GenerateInputBatch(const InputConfig& config) {
  if (config.neurons < 1 || config.batch < 1) {
    return Status::InvalidArgument("neurons and batch must be positive");
  }
  if (config.density <= 0.0 || config.density > 1.0) {
    return Status::InvalidArgument("density outside (0, 1]");
  }
  if (config.blobs < 1) return Status::InvalidArgument("blobs must be >= 1");

  Rng rng(config.seed);
  const int32_t n = config.neurons;
  const int32_t active_per_sample = std::max<int32_t>(
      1, static_cast<int32_t>(n * config.density));
  // Blob length is kept N-independent (like fixed-size strokes in the
  // benchmark's images); the blob count scales with resolution instead.
  const int32_t blob_len = std::min<int32_t>(
      40, std::max<int32_t>(1, active_per_sample / config.blobs));
  const int32_t num_blobs =
      std::max<int32_t>(config.blobs, active_per_sample / blob_len);

  // Collect (neuron, sample) actives per neuron row.
  std::map<int32_t, std::vector<int32_t>> active;
  for (int32_t s = 0; s < config.batch; ++s) {
    int32_t placed = 0;
    for (int32_t b = 0; b < num_blobs && placed < active_per_sample; ++b) {
      const int32_t start =
          static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(n)));
      for (int32_t j = 0; j < blob_len && placed < active_per_sample; ++j) {
        // 85% fill inside a blob: thresholding leaves pinholes.
        if (!rng.NextBool(0.85)) continue;
        active[(start + j) % n].push_back(s);
        ++placed;
      }
    }
  }

  linalg::ActivationMap out;
  for (auto& [neuron, samples] : active) {
    std::sort(samples.begin(), samples.end());
    samples.erase(std::unique(samples.begin(), samples.end()), samples.end());
    linalg::SparseVector row;
    row.dim = config.batch;
    row.idx = std::move(samples);
    row.val.assign(row.idx.size(), 1.0f);
    out.emplace(neuron, std::move(row));
  }
  return out;
}

}  // namespace fsd::model
