// Serial reference inference engine: the ground truth every distributed
// configuration is validated against (the paper checks its outputs against
// the Graph Challenge ground truths; our generated models use this engine
// as the equivalent oracle). Also reused as the compute core of
// FSD-Inf-Serial and the server baselines.
#ifndef FSD_MODEL_REFERENCE_H_
#define FSD_MODEL_REFERENCE_H_

#include <functional>

#include "linalg/spmm.h"
#include "model/sparse_dnn.h"

namespace fsd::model {

struct ReferenceStats {
  double total_macs = 0.0;
  double total_flops = 0.0;
  /// Per-layer activation row counts (density diagnostics).
  std::vector<int64_t> rows_per_layer;
  std::vector<int64_t> nnz_per_layer;
};

/// Runs all layers serially; returns the final activation map.
/// `per_layer` (optional) observes activations after each layer.
Result<linalg::ActivationMap> ReferenceInference(
    const SparseDnn& dnn, const linalg::ActivationMap& input,
    ReferenceStats* stats = nullptr,
    const std::function<void(int32_t, const linalg::ActivationMap&)>&
        per_layer = nullptr);

/// Category scores as in the Graph Challenge: per-sample sum of final-layer
/// activations (used to compare outcomes compactly).
std::vector<double> SampleScores(const linalg::ActivationMap& final_layer,
                                 int32_t batch);

}  // namespace fsd::model

#endif  // FSD_MODEL_REFERENCE_H_
