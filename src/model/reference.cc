#include "model/reference.h"

namespace fsd::model {

Result<linalg::ActivationMap> ReferenceInference(
    const SparseDnn& dnn, const linalg::ActivationMap& input,
    ReferenceStats* stats,
    const std::function<void(int32_t, const linalg::ActivationMap&)>&
        per_layer) {
  if (input.empty()) {
    return Status::InvalidArgument("input batch has no active neurons");
  }
  int32_t batch = input.begin()->second.dim;
  if (batch <= 0) return Status::InvalidArgument("batch width must be > 0");

  linalg::ActivationMap x = input;
  if (stats != nullptr) *stats = ReferenceStats{};
  for (int32_t k = 0; k < dnn.layers(); ++k) {
    const linalg::ActivationMap* source = &x;
    linalg::LayerForwardStats layer_stats;
    linalg::ActivationMap next = linalg::LayerForwardAll(
        dnn.weights[k],
        [source](int32_t row) -> const linalg::SparseVector* {
          auto it = source->find(row);
          return it == source->end() ? nullptr : &it->second;
        },
        dnn.config.bias, dnn.config.relu_cap, batch, &layer_stats);
    if (stats != nullptr) {
      stats->total_macs += layer_stats.macs;
      stats->total_flops += linalg::LayerFlops(layer_stats);
      stats->rows_per_layer.push_back(layer_stats.rows_produced);
      stats->nnz_per_layer.push_back(layer_stats.output_nnz);
    }
    x = std::move(next);
    if (per_layer) per_layer(k, x);
    if (x.empty()) break;  // network died out; remaining layers are zero
  }
  return x;
}

std::vector<double> SampleScores(const linalg::ActivationMap& final_layer,
                                 int32_t batch) {
  std::vector<double> scores(static_cast<size_t>(batch), 0.0);
  for (const auto& [row, vec] : final_layer) {
    for (size_t j = 0; j < vec.idx.size(); ++j) {
      scores[vec.idx[j]] += vec.val[j];
    }
  }
  return scores;
}

}  // namespace fsd::model
