// Synthetic inference inputs standing in for the thresholded, flattened
// MNIST-style images of the Graph Challenge benchmark (paper §VI-A).
//
// Each sample activates a few contiguous "blobs" of neurons (the analogue
// of bright image regions after thresholding), giving realistic clustered
// sparsity rather than uniform noise.
#ifndef FSD_MODEL_INPUT_GEN_H_
#define FSD_MODEL_INPUT_GEN_H_

#include <cstdint>

#include "common/result.h"
#include "linalg/spmm.h"

namespace fsd::model {

struct InputConfig {
  int32_t neurons = 1024;  ///< input width (matches the model)
  int32_t batch = 64;      ///< samples per inference batch
  /// Target fraction of active neurons per sample.
  double density = 0.20;
  /// Blobs (contiguous active runs) per sample.
  int32_t blobs = 6;
  uint64_t seed = 11;
};

/// Generates the layer-0 activation map: neuron-row -> sparse row over the
/// batch, with all active values 1.0 (thresholded binary input).
Result<linalg::ActivationMap> GenerateInputBatch(const InputConfig& config);

}  // namespace fsd::model

#endif  // FSD_MODEL_INPUT_GEN_H_
