// Synthetic sparse DNN generator, standing in for the MIT/IEEE/Amazon Sparse
// Deep Neural Network Graph Challenge networks (RadiX-Net) used by the paper.
//
// Faithfully preserved workload properties:
//  - N neurons per layer, L layers, exactly `nnz_per_row` (32) connections
//    per neuron — the Graph Challenge signature
//  - ReLU activation with values clamped at 32
//  - structured connectivity: mostly-local links (a window around the
//    diagonal) plus a few global shifted-diagonal links shared by all rows,
//    mirroring RadiX-Net's mixed-radix locality. This is what gives
//    hypergraph partitioning real communication volume to optimize
//    (paper Table III) while leaving some irreducible cross-partition
//    traffic, as in the real topologies.
//  - signed weights and negative biases tuned so activation density
//    stabilizes mid-range across 120 layers instead of dying out or
//    saturating (the Graph Challenge inputs behave the same way).
//
// Substitution documented in DESIGN.md: weight values and bias magnitudes
// are re-calibrated for the synthetic weight distribution; correctness is
// defined against this repository's serial reference engine.
#ifndef FSD_MODEL_SPARSE_DNN_H_
#define FSD_MODEL_SPARSE_DNN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "linalg/csr.h"

namespace fsd::model {

struct SparseDnnConfig {
  int32_t neurons = 1024;       ///< N: per-layer neuron count
  int32_t layers = 120;         ///< L
  int32_t nnz_per_row = 32;     ///< Graph Challenge connectivity
  float relu_cap = 32.0f;       ///< activation clamp (Graph Challenge)
  /// Bias applied at every layer; <= 0 required by the sparse kernel.
  /// Defaults to DefaultBias(neurons) when NaN.
  float bias = kAutoBias;
  /// Local-connectivity halo: most links land within +-window of the
  /// diagonal.
  int32_t window = 48;
  /// Fraction of links routed to global shifted diagonals.
  double long_range_fraction = 0.25;
  /// Number of distinct global offsets (shared by all rows of a layer).
  int32_t num_global_offsets = 8;
  /// Signed weight range (mean must be positive to carry signal).
  float weight_min = -0.05f;
  float weight_max = 0.14f;
  uint64_t seed = 7;

  static constexpr float kAutoBias = -1e30f;
};

/// Bias magnitudes follow the Graph Challenge schedule (-0.30/-0.35/-0.40/
/// -0.45 for N = 1024..65536), rescaled (x0.1) for the synthetic weight
/// distribution so that deep networks neither die out nor saturate.
float DefaultBias(int32_t neurons);

/// A generated model: one sparse weight matrix per layer.
struct SparseDnn {
  SparseDnnConfig config;
  std::vector<linalg::CsrMatrix> weights;

  int32_t neurons() const { return config.neurons; }
  int32_t layers() const { return config.layers; }
  int64_t TotalNnz() const;
  /// Serialized size (bytes) of the full model: 8 bytes per nonzero plus
  /// row-pointer overhead. Used to size phantom model objects in storage.
  uint64_t WeightBytes() const;
};

/// Generates the model deterministically from config.seed.
Result<SparseDnn> GenerateSparseDnn(const SparseDnnConfig& config);

}  // namespace fsd::model

#endif  // FSD_MODEL_SPARSE_DNN_H_
