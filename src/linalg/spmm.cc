#include "linalg/spmm.h"

#include <algorithm>
#include <vector>

namespace fsd::linalg {
namespace {

/// Shared kernel core. RowSource provides the row iteration:
///   size_t size() const;
///   int32_t GlobalId(size_t local) const;
///   template <typename Fn> void ForEach(size_t local, Fn fn) const;
template <typename RowSource>
ActivationMap LayerForwardImpl(const RowSource& source,
                               const RowProvider& provider, float bias,
                               float relu_cap, int32_t batch,
                               LayerForwardStats* stats) {
  ActivationMap out;
  std::vector<float> acc(static_cast<size_t>(batch));
  std::vector<int32_t> touched;
  touched.reserve(batch);
  double macs = 0.0;
  int64_t output_nnz = 0;
  // Hoisted out of the row loop: rows that produce no output (or whose
  // touched positions all cancel/deactivate) reuse the buffers' capacity
  // instead of reallocating per row; emplaced rows reserve exactly
  // touched.size() up front instead of growth-doubling.
  SparseVector row;

  for (size_t local = 0; local < source.size(); ++local) {
    // Sparse accumulation: only positions touched by some input row are
    // visited, so fully-inactive output rows cost nothing to scan.
    touched.clear();
    source.ForEach(local, [&](int32_t col, float weight) {
      const SparseVector* x = provider(col);
      if (x == nullptr || x->empty()) return;
      macs += static_cast<double>(x->nnz());
      for (size_t j = 0; j < x->idx.size(); ++j) {
        const int32_t pos = x->idx[j];
        if (acc[pos] == 0.0f) touched.push_back(pos);
        acc[pos] += weight * x->val[j];
      }
    });
    if (touched.empty()) continue;
    std::sort(touched.begin(), touched.end());

    // Untouched positions evaluate to ReLU(bias); with the benchmark's
    // non-positive biases that is exactly 0, so skipping them is correct
    // (callers must not rely on positive biases activating silent rows).
    row.dim = batch;
    row.idx.clear();
    row.val.clear();
    row.idx.reserve(touched.size());
    row.val.reserve(touched.size());
    int32_t prev_pos = -1;
    for (int32_t pos : touched) {
      if (pos == prev_pos) continue;  // duplicate from exact cancellation
      prev_pos = pos;
      float v = acc[pos] + bias;
      acc[pos] = 0.0f;  // reset for the next output row
      if (relu_cap > 0.0f) {
        if (v <= 0.0f) continue;
        if (v > relu_cap) v = relu_cap;
      } else if (v == 0.0f) {
        continue;
      }
      row.idx.push_back(pos);
      row.val.push_back(v);
    }
    if (!row.empty()) {
      output_nnz += static_cast<int64_t>(row.nnz());
      out.emplace(source.GlobalId(local), std::move(row));
    }
  }

  if (stats != nullptr) {
    stats->macs = macs;
    stats->rows_produced = static_cast<int64_t>(out.size());
    stats->output_nnz = output_nnz;
  }
  return out;
}

struct BlockSource {
  const RowBlock& block;
  size_t size() const { return block.num_rows(); }
  int32_t GlobalId(size_t local) const { return block.row_ids[local]; }
  template <typename Fn>
  void ForEach(size_t local, Fn fn) const {
    block.ForEachInRow(local, fn);
  }
};

struct SubsetSource {
  const CsrMatrix& weights;
  const std::vector<int32_t>& rows;
  size_t size() const { return rows.size(); }
  int32_t GlobalId(size_t local) const { return rows[local]; }
  template <typename Fn>
  void ForEach(size_t local, Fn fn) const {
    weights.ForEachInRow(rows[local], fn);
  }
};

struct AllSource {
  const CsrMatrix& weights;
  size_t size() const { return static_cast<size_t>(weights.rows()); }
  int32_t GlobalId(size_t local) const { return static_cast<int32_t>(local); }
  template <typename Fn>
  void ForEach(size_t local, Fn fn) const {
    weights.ForEachInRow(static_cast<int32_t>(local), fn);
  }
};

}  // namespace

ActivationMap LayerForward(const RowBlock& block, const RowProvider& provider,
                           float bias, float relu_cap, int32_t batch,
                           LayerForwardStats* stats) {
  return LayerForwardImpl(BlockSource{block}, provider, bias, relu_cap, batch,
                          stats);
}

ActivationMap LayerForward(const CsrMatrix& weights,
                           const std::vector<int32_t>& rows,
                           const RowProvider& provider, float bias,
                           float relu_cap, int32_t batch,
                           LayerForwardStats* stats) {
  return LayerForwardImpl(SubsetSource{weights, rows}, provider, bias,
                          relu_cap, batch, stats);
}

ActivationMap LayerForwardAll(const CsrMatrix& weights,
                              const RowProvider& provider, float bias,
                              float relu_cap, int32_t batch,
                              LayerForwardStats* stats) {
  return LayerForwardImpl(AllSource{weights}, provider, bias, relu_cap, batch,
                          stats);
}

}  // namespace fsd::linalg
