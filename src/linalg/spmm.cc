#include "linalg/spmm.h"

#include <algorithm>
#include <atomic>
#include <vector>

#if FSD_LINALG_HAS_SIMD
#include <immintrin.h>
#endif

namespace fsd::linalg {
namespace {

std::atomic<ForwardKernel> g_kernel{ForwardKernel::kAuto};

/// Scatter-accumulates one input row into the batch accumulator and records
/// first-touched positions. The two passes are split so the multiply-add
/// stream is branch-free (the compiler can keep it in registers / vector
/// units) while the touched-tracking pass carries the branches.
///
/// Positions within one input row are distinct (idx is strictly increasing),
/// so each acc slot receives at most one add per call — any vectorization
/// across j preserves the exact per-slot FP accumulation order.
using AccumulateFn = void (*)(const SparseVector& x, float weight, float* acc,
                              uint32_t* stamp, uint32_t epoch,
                              std::vector<int32_t>& touched);

void AccumulatePortable(const SparseVector& x, float weight, float* acc,
                        uint32_t* stamp, uint32_t epoch,
                        std::vector<int32_t>& touched) {
  const int32_t* idx = x.idx.data();
  const float* val = x.val.data();
  const size_t n = x.idx.size();
  for (size_t j = 0; j < n; ++j) acc[idx[j]] += weight * val[j];
  for (size_t j = 0; j < n; ++j) {
    const int32_t pos = idx[j];
    if (stamp[pos] != epoch) {
      stamp[pos] = epoch;
      touched.push_back(pos);
    }
  }
}

#if FSD_LINALG_HAS_SIMD
__attribute__((target("avx2"))) void AccumulateAvx2(
    const SparseVector& x, float weight, float* acc, uint32_t* stamp,
    uint32_t epoch, std::vector<int32_t>& touched) {
  const int32_t* idx = x.idx.data();
  const float* val = x.val.data();
  const size_t n = x.idx.size();
  size_t j = 0;
  // Contiguous index runs (dense rows, and the dense segments blob-shaped
  // inputs produce) take the packed path: 8 independent slots per op.
  // Explicit mul-then-add — never _mm256_fmadd_ps — keeps every slot's
  // value bit-identical to the scalar `acc[p] += weight * val[j]`.
  if (n >= 8 && static_cast<size_t>(idx[n - 1] - idx[0]) + 1 == n) {
    float* dst = acc + idx[0];
    const __m256 w = _mm256_set1_ps(weight);
    for (; j + 8 <= n; j += 8) {
      const __m256 v = _mm256_loadu_ps(val + j);
      const __m256 a = _mm256_loadu_ps(dst + j);
      _mm256_storeu_ps(dst + j, _mm256_add_ps(a, _mm256_mul_ps(w, v)));
    }
  }
  for (; j < n; ++j) acc[idx[j]] += weight * val[j];
  for (size_t k = 0; k < n; ++k) {
    const int32_t pos = idx[k];
    if (stamp[pos] != epoch) {
      stamp[pos] = epoch;
      touched.push_back(pos);
    }
  }
}

bool Avx2Supported() {
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
}
#endif  // FSD_LINALG_HAS_SIMD

AccumulateFn ResolveAccumulate() {
#if FSD_LINALG_HAS_SIMD
  const ForwardKernel k = g_kernel.load(std::memory_order_relaxed);
  if (k != ForwardKernel::kPortable && Avx2Supported()) return AccumulateAvx2;
#endif
  return AccumulatePortable;
}

/// Per-thread kernel scratch: the dense accumulator panel, the epoch-stamp
/// array and the touched list. thread_local ownership makes concurrent
/// LayerForward calls (offloaded worker kernels overlapping on a compute
/// pool) race-free by construction, and reusing the panel across calls on
/// the same thread drops the per-call allocation cost.
///
/// Invariants carried across calls: `acc` is all-zero between calls (the
/// row loop resets every touched slot as it emits the row), and every
/// stamp satisfies stamp[pos] != epoch+1 at entry (stamps only ever hold
/// past epochs; the wrap branch refills on overflow), so reuse cannot
/// change results.
struct KernelScratch {
  std::vector<float> acc;
  std::vector<uint32_t> stamp;
  std::vector<int32_t> touched;
  uint32_t epoch = 0;

  void Prepare(size_t batch) {
    if (acc.size() < batch) {
      acc.resize(batch, 0.0f);
      stamp.resize(batch, 0u);  // 0 is never a live epoch (see wrap branch)
    }
    touched.reserve(batch);
  }
};

KernelScratch& ThreadScratch() {
  thread_local KernelScratch scratch;
  return scratch;
}

/// Shared kernel core. RowSource provides the row iteration:
///   size_t size() const;
///   int32_t cols() const;
///   int32_t GlobalId(size_t local) const;
///   template <typename Fn> void ForEach(size_t local, Fn fn) const;
template <typename RowSource>
ActivationMap LayerForwardImpl(const RowSource& source,
                               const RowProvider& provider, float bias,
                               float relu_cap, int32_t batch,
                               LayerForwardStats* stats) {
  ActivationMap out;
  // Epoch stamps replace the old `acc[pos] == 0.0f` probe: a position is
  // first-touched iff its stamp lags the row epoch, so the touched list is
  // duplicate-free even when sums cancel to exactly zero mid-row. The
  // panels live in per-thread scratch (see KernelScratch).
  KernelScratch& scratch = ThreadScratch();
  scratch.Prepare(static_cast<size_t>(batch));
  float* const acc = scratch.acc.data();
  uint32_t* const stamp = scratch.stamp.data();
  std::vector<int32_t>& touched = scratch.touched;
  uint32_t& epoch = scratch.epoch;
  // Provider results are memoized per call: every provider is a pure lookup
  // into this layer's input activations, and W's columns repeat across the
  // row block, so the std::function + map-find cost is paid once per
  // distinct column instead of once per weight nonzero.
  const size_t cols = static_cast<size_t>(std::max<int32_t>(source.cols(), 0));
  std::vector<const SparseVector*> memo(cols, nullptr);
  std::vector<uint8_t> memo_known(cols, 0);
  const AccumulateFn accumulate = ResolveAccumulate();
  double macs = 0.0;
  int64_t output_nnz = 0;
  // Hoisted out of the row loop: rows that produce no output (or whose
  // touched positions all cancel/deactivate) reuse the buffers' capacity
  // instead of reallocating per row; emplaced rows reserve exactly
  // touched.size() up front instead of growth-doubling.
  SparseVector row;

  for (size_t local = 0; local < source.size(); ++local) {
    if (++epoch == 0) {  // wrapped: stale stamps could alias, restart
      std::fill(scratch.stamp.begin(), scratch.stamp.end(), 0u);
      epoch = 1;
    }
    // Sparse accumulation: only positions touched by some input row are
    // visited, so fully-inactive output rows cost nothing to scan.
    touched.clear();
    source.ForEach(local, [&](int32_t col, float weight) {
      const SparseVector* x;
      if (memo_known[col]) {
        x = memo[col];
      } else {
        x = provider(col);
        memo[col] = x;
        memo_known[col] = 1;
      }
      if (x == nullptr || x->empty()) return;
      macs += static_cast<double>(x->nnz());
      accumulate(*x, weight, acc, stamp, epoch, touched);
    });
    if (touched.empty()) continue;
    std::sort(touched.begin(), touched.end());

    // Untouched positions evaluate to ReLU(bias); with the benchmark's
    // non-positive biases that is exactly 0, so skipping them is correct
    // (callers must not rely on positive biases activating silent rows).
    row.dim = batch;
    row.idx.clear();
    row.val.clear();
    row.idx.reserve(touched.size());
    row.val.reserve(touched.size());
    for (int32_t pos : touched) {
      float v = acc[pos] + bias;
      acc[pos] = 0.0f;  // reset for the next output row
      if (relu_cap > 0.0f) {
        if (v <= 0.0f) continue;
        if (v > relu_cap) v = relu_cap;
      } else if (v == 0.0f) {
        continue;
      }
      row.idx.push_back(pos);
      row.val.push_back(v);
    }
    if (!row.empty()) {
      output_nnz += static_cast<int64_t>(row.nnz());
      out.emplace(source.GlobalId(local), std::move(row));
    }
  }

  if (stats != nullptr) {
    stats->macs = macs;
    stats->rows_produced = static_cast<int64_t>(out.size());
    stats->output_nnz = output_nnz;
  }
  return out;
}

/// Replays LayerForwardImpl's provider walk — same iteration order, same
/// memoization, same `macs +=` accumulation — without touching the
/// accumulator panels, so the returned count matches stats->macs of the
/// corresponding kernel call bit-for-bit.
template <typename RowSource>
double CountMacsImpl(const RowSource& source, const RowProvider& provider) {
  const size_t cols = static_cast<size_t>(std::max<int32_t>(source.cols(), 0));
  std::vector<const SparseVector*> memo(cols, nullptr);
  std::vector<uint8_t> memo_known(cols, 0);
  double macs = 0.0;
  for (size_t local = 0; local < source.size(); ++local) {
    source.ForEach(local, [&](int32_t col, float /*weight*/) {
      const SparseVector* x;
      if (memo_known[col]) {
        x = memo[col];
      } else {
        x = provider(col);
        memo[col] = x;
        memo_known[col] = 1;
      }
      if (x == nullptr || x->empty()) return;
      macs += static_cast<double>(x->nnz());
    });
  }
  return macs;
}

struct BlockSource {
  const RowBlock& block;
  size_t size() const { return block.num_rows(); }
  int32_t cols() const { return block.cols; }
  int32_t GlobalId(size_t local) const { return block.row_ids[local]; }
  template <typename Fn>
  void ForEach(size_t local, Fn fn) const {
    block.ForEachInRow(local, fn);
  }
};

struct SubsetSource {
  const CsrMatrix& weights;
  const std::vector<int32_t>& rows;
  size_t size() const { return rows.size(); }
  int32_t cols() const { return weights.cols(); }
  int32_t GlobalId(size_t local) const { return rows[local]; }
  template <typename Fn>
  void ForEach(size_t local, Fn fn) const {
    weights.ForEachInRow(rows[local], fn);
  }
};

struct AllSource {
  const CsrMatrix& weights;
  size_t size() const { return static_cast<size_t>(weights.rows()); }
  int32_t cols() const { return weights.cols(); }
  int32_t GlobalId(size_t local) const { return static_cast<int32_t>(local); }
  template <typename Fn>
  void ForEach(size_t local, Fn fn) const {
    weights.ForEachInRow(static_cast<int32_t>(local), fn);
  }
};

}  // namespace

void SetLayerForwardKernel(ForwardKernel kernel) {
  g_kernel.store(kernel, std::memory_order_relaxed);
}

ForwardKernel GetLayerForwardKernel() {
  return g_kernel.load(std::memory_order_relaxed);
}

bool LayerForwardVectorizedAvailable() {
#if FSD_LINALG_HAS_SIMD
  return Avx2Supported();
#else
  return false;
#endif
}

const char* LayerForwardKernelName() {
  return ResolveAccumulate() == AccumulatePortable ? "portable" : "avx2";
}

ActivationMap LayerForward(const RowBlock& block, const RowProvider& provider,
                           float bias, float relu_cap, int32_t batch,
                           LayerForwardStats* stats) {
  return LayerForwardImpl(BlockSource{block}, provider, bias, relu_cap, batch,
                          stats);
}

ActivationMap LayerForward(const CsrMatrix& weights,
                           const std::vector<int32_t>& rows,
                           const RowProvider& provider, float bias,
                           float relu_cap, int32_t batch,
                           LayerForwardStats* stats) {
  return LayerForwardImpl(SubsetSource{weights, rows}, provider, bias,
                          relu_cap, batch, stats);
}

double CountLayerMacs(const CsrMatrix& weights,
                      const std::vector<int32_t>& rows,
                      const RowProvider& provider) {
  return CountMacsImpl(SubsetSource{weights, rows}, provider);
}

ActivationMap LayerForwardAll(const CsrMatrix& weights,
                              const RowProvider& provider, float bias,
                              float relu_cap, int32_t batch,
                              LayerForwardStats* stats) {
  return LayerForwardImpl(AllSource{weights}, provider, bias, relu_cap, batch,
                          stats);
}

}  // namespace fsd::linalg
