// SparseVector: index-sorted sparse vector over a fixed-width dense space.
//
// In FSD-Inference a SparseVector holds one neuron-row of the activation
// matrix across the inference batch: `idx` are sample positions, `val` the
// activation values. Exchanged between workers as the unit of communication.
#ifndef FSD_LINALG_SPARSE_VECTOR_H_
#define FSD_LINALG_SPARSE_VECTOR_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace fsd::linalg {

struct SparseVector {
  int32_t dim = 0;                ///< dense width (batch size)
  std::vector<int32_t> idx;       ///< strictly increasing positions
  std::vector<float> val;         ///< matching values (nonzero)

  size_t nnz() const { return idx.size(); }
  bool empty() const { return idx.empty(); }

  /// y[idx[j]] += scale * val[j] over a dense accumulator of width dim.
  void AxpyInto(float scale, float* dense) const {
    for (size_t j = 0; j < idx.size(); ++j) {
      dense[idx[j]] += scale * val[j];
    }
  }

  /// Builds from a dense buffer keeping entries with |v| > 0.
  static SparseVector FromDense(const float* dense, int32_t dim) {
    SparseVector out;
    out.dim = dim;
    for (int32_t i = 0; i < dim; ++i) {
      if (dense[i] != 0.0f) {
        out.idx.push_back(i);
        out.val.push_back(dense[i]);
      }
    }
    return out;
  }

  bool operator==(const SparseVector& other) const {
    return dim == other.dim && idx == other.idx && val == other.val;
  }
};

}  // namespace fsd::linalg

#endif  // FSD_LINALG_SPARSE_VECTOR_H_
