// CSR sparse matrices and row blocks.
//
// CsrMatrix stores a full matrix (used for model weights and reference
// activations); RowBlock stores an arbitrary subset of rows with global ids
// (a worker's partition of a layer's weight matrix).
#ifndef FSD_LINALG_CSR_H_
#define FSD_LINALG_CSR_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace fsd::linalg {

/// COO triplet used when assembling matrices.
struct Triplet {
  int32_t row;
  int32_t col;
  float value;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(int32_t rows, int32_t cols) : rows_(rows), cols_(cols) {
    row_ptr_.assign(static_cast<size_t>(rows) + 1, 0);
  }

  /// Builds from triplets (duplicates summed, rows/cols validated).
  static CsrMatrix FromTriplets(int32_t rows, int32_t cols,
                                std::vector<Triplet> triplets);

  int32_t rows() const { return rows_; }
  int32_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(col_idx_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int32_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  int64_t RowNnz(int32_t row) const {
    return row_ptr_[row + 1] - row_ptr_[row];
  }

  /// Iterates a row's entries: fn(col, value).
  template <typename Fn>
  void ForEachInRow(int32_t row, Fn fn) const {
    for (int64_t p = row_ptr_[row]; p < row_ptr_[row + 1]; ++p) {
      fn(col_idx_[p], values_[p]);
    }
  }

  /// Dense materialization (tests only; O(rows*cols)).
  std::vector<float> ToDense() const;

 private:
  int32_t rows_ = 0;
  int32_t cols_ = 0;
  std::vector<int64_t> row_ptr_;
  std::vector<int32_t> col_idx_;
  std::vector<float> values_;
};

/// A subset of a matrix's rows with global row ids (a model partition).
struct RowBlock {
  int32_t cols = 0;                 ///< global column space width
  std::vector<int32_t> row_ids;     ///< global ids, strictly increasing
  std::vector<int64_t> row_ptr;     ///< size row_ids.size() + 1
  std::vector<int32_t> col_idx;     ///< global column ids
  std::vector<float> values;

  size_t num_rows() const { return row_ids.size(); }
  int64_t nnz() const { return static_cast<int64_t>(col_idx.size()); }

  template <typename Fn>
  void ForEachInRow(size_t local_row, Fn fn) const {
    for (int64_t p = row_ptr[local_row]; p < row_ptr[local_row + 1]; ++p) {
      fn(col_idx[p], values[p]);
    }
  }

  /// Extracts the given global rows (sorted, deduped by caller) from `m`.
  static RowBlock Extract(const CsrMatrix& m,
                          const std::vector<int32_t>& rows);

  /// A block containing every row of `m` (the serial / reference case).
  static RowBlock All(const CsrMatrix& m);
};

}  // namespace fsd::linalg

#endif  // FSD_LINALG_CSR_H_
