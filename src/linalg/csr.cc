#include "linalg/csr.h"

#include <algorithm>
#include <numeric>

namespace fsd::linalg {

CsrMatrix CsrMatrix::FromTriplets(int32_t rows, int32_t cols,
                                  std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    FSD_CHECK(t.row >= 0 && t.row < rows);
    FSD_CHECK(t.col >= 0 && t.col < cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              if (a.row != b.row) return a.row < b.row;
              return a.col < b.col;
            });
  CsrMatrix m(rows, cols);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  for (size_t i = 0; i < triplets.size();) {
    size_t j = i;
    float sum = 0.0f;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      sum += triplets[j].value;
      ++j;
    }
    if (sum != 0.0f) {
      m.col_idx_.push_back(triplets[i].col);
      m.values_.push_back(sum);
      ++m.row_ptr_[triplets[i].row + 1];
    }
    i = j;
  }
  std::partial_sum(m.row_ptr_.begin(), m.row_ptr_.end(), m.row_ptr_.begin());
  return m;
}

std::vector<float> CsrMatrix::ToDense() const {
  std::vector<float> dense(static_cast<size_t>(rows_) * cols_, 0.0f);
  for (int32_t r = 0; r < rows_; ++r) {
    ForEachInRow(r, [&](int32_t c, float v) {
      dense[static_cast<size_t>(r) * cols_ + c] = v;
    });
  }
  return dense;
}

RowBlock RowBlock::Extract(const CsrMatrix& m,
                           const std::vector<int32_t>& rows) {
  RowBlock block;
  block.cols = m.cols();
  block.row_ids = rows;
  block.row_ptr.reserve(rows.size() + 1);
  block.row_ptr.push_back(0);
  for (int32_t r : rows) {
    FSD_CHECK(r >= 0 && r < m.rows());
    m.ForEachInRow(r, [&](int32_t c, float v) {
      block.col_idx.push_back(c);
      block.values.push_back(v);
    });
    block.row_ptr.push_back(static_cast<int64_t>(block.col_idx.size()));
  }
  return block;
}

RowBlock RowBlock::All(const CsrMatrix& m) {
  std::vector<int32_t> rows(m.rows());
  for (int32_t r = 0; r < m.rows(); ++r) rows[r] = r;
  return Extract(m, rows);
}

}  // namespace fsd::linalg
