// Distributed-inference compute kernel: one layer of sparse forward
// propagation over a row block.
//
// This single kernel is shared by the serial reference engine, the server
// baselines and every FSD-Inference worker, so distributed results can be
// compared bit-for-bit against the reference.
//
// Thread safety: the kernel's dense accumulator panel and epoch-stamped
// touched tracking live in thread_local scratch, so concurrent
// LayerForward calls from different threads (the sim's compute-offload
// pool) are race-free and produce results identical to serial calls.
#ifndef FSD_LINALG_SPMM_H_
#define FSD_LINALG_SPMM_H_

#include <cstdint>
#include <functional>
#include <map>

#include "linalg/csr.h"
#include "linalg/sparse_vector.h"

/// The vectorized kernel is compiled only where AVX2 intrinsics exist and
/// selected at runtime via cpuid, so one binary runs everywhere. Sanitized
/// builds fall back to the portable kernel (mirrors FSD_SIM_HAS_FIBERS:
/// keep the sanitizer jobs exercising the path every machine can take).
/// Define FSD_NO_SIMD to force the portable kernel on any build.
#if defined(FSD_NO_SIMD)
#define FSD_LINALG_HAS_SIMD 0
#elif defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define FSD_LINALG_HAS_SIMD 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define FSD_LINALG_HAS_SIMD 0
#elif defined(__x86_64__)
#define FSD_LINALG_HAS_SIMD 1
#else
#define FSD_LINALG_HAS_SIMD 0
#endif
#elif defined(__x86_64__)
#define FSD_LINALG_HAS_SIMD 1
#else
#define FSD_LINALG_HAS_SIMD 0
#endif

namespace fsd::linalg {

/// Activations of one layer: neuron-row id -> sparse row over the batch.
/// Ordered map for deterministic iteration (payload bytes must be stable).
using ActivationMap = std::map<int32_t, SparseVector>;

/// Returns the activation row for a global neuron id, or nullptr when the
/// row is entirely zero (inactive neuron).
using RowProvider = std::function<const SparseVector*(int32_t)>;

struct LayerForwardStats {
  double macs = 0.0;          ///< multiply-accumulate operations executed
  int64_t rows_produced = 0;  ///< nonzero output rows
  int64_t output_nnz = 0;     ///< total nonzeros in output rows
};

/// Kernel selection for LayerForward. Both kernels produce byte-identical
/// ActivationMaps and LayerForwardStats: the vectorized path only changes
/// how per-position sums are scheduled, never their accumulation order.
enum class ForwardKernel {
  kAuto,        ///< vectorized when compiled in and the CPU supports it
  kPortable,    ///< scalar baseline, always built
  kVectorized,  ///< AVX2 path; silently falls back when unavailable
};

/// Overrides the process-wide kernel choice (tests/benches; thread-safe).
void SetLayerForwardKernel(ForwardKernel kernel);
ForwardKernel GetLayerForwardKernel();

/// True when the AVX2 kernel is compiled in and this CPU can run it.
bool LayerForwardVectorizedAvailable();

/// Name of the kernel LayerForward would execute right now:
/// "portable" or "avx2".
const char* LayerForwardKernelName();

/// Computes  z = ReLU_clamped(W_block * X + bias)  for the rows in `block`.
///
/// X is presented through `provider` over `block.cols` global columns; each
/// provided row is a SparseVector of width `batch`. Output rows that are
/// entirely zero after activation are omitted (the Graph Challenge's
/// thresholded-ReLU keeps activations sparse). `relu_cap` clamps values
/// (32 in the benchmark); pass 0 to disable the final activation (used by
/// the output layer of generic models).
ActivationMap LayerForward(const RowBlock& block, const RowProvider& provider,
                           float bias, float relu_cap, int32_t batch,
                           LayerForwardStats* stats = nullptr);

/// Zero-copy variant: computes the same result for the subset `rows` of
/// `weights` without extracting a RowBlock (workers iterate their partition
/// of the shared model directly). `rows` must be sorted and in range.
ActivationMap LayerForward(const CsrMatrix& weights,
                           const std::vector<int32_t>& rows,
                           const RowProvider& provider, float bias,
                           float relu_cap, int32_t batch,
                           LayerForwardStats* stats = nullptr);

/// Exact MAC count the subset LayerForward above would report in
/// stats->macs, computed by replaying the kernel's provider walk without
/// running the accumulation. The compute-offload path uses this to price a
/// kernel's virtual time BEFORE submitting the kernel itself to the pool.
/// Bit-identical to the kernel's count (same iteration order; all addends
/// are integer-valued doubles).
double CountLayerMacs(const CsrMatrix& weights,
                      const std::vector<int32_t>& rows,
                      const RowProvider& provider);

/// Zero-copy variant over every row of `weights` (serial reference).
ActivationMap LayerForwardAll(const CsrMatrix& weights,
                              const RowProvider& provider, float bias,
                              float relu_cap, int32_t batch,
                              LayerForwardStats* stats = nullptr);

/// FLOPs estimate for a LayerForward call (2 per MAC, plus activation).
inline double LayerFlops(const LayerForwardStats& stats) {
  return 2.0 * stats.macs + static_cast<double>(stats.output_nnz);
}

}  // namespace fsd::linalg

#endif  // FSD_LINALG_SPMM_H_
