#include "core/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace fsd::core {

std::string_view QueryDispositionName(QueryDisposition disposition) {
  switch (disposition) {
    case QueryDisposition::kInFlight:
      return "in-flight";
    case QueryDisposition::kCompleted:
      return "completed";
    case QueryDisposition::kFailed:
      return "failed";
    case QueryDisposition::kRejected:
      return "rejected";
    case QueryDisposition::kShed:
      return "shed";
    case QueryDisposition::kAborted:
      return "aborted";
  }
  return "unknown";
}

void LayerMetrics::Add(const LayerMetrics& other) {
  send_targets += other.send_targets;
  send_rows_mapped += other.send_rows_mapped;
  send_rows_active += other.send_rows_active;
  send_chunks += other.send_chunks;
  send_raw_bytes += other.send_raw_bytes;
  send_wire_bytes += other.send_wire_bytes;
  send_billed_bytes += other.send_billed_bytes;
  publishes += other.publishes;
  publish_chunks += other.publish_chunks;
  puts_dat += other.puts_dat;
  puts_nul += other.puts_nul;
  kv_pushes += other.kv_pushes;
  direct_connects += other.direct_connects;
  punch_failures += other.punch_failures;
  direct_msgs += other.direct_msgs;
  direct_billed_bytes += other.direct_billed_bytes;
  relay_fallback_msgs += other.relay_fallback_msgs;
  quant_chunks += other.quant_chunks;
  quant_values += other.quant_values;
  if (other.quant_err_max > quant_err_max) quant_err_max = other.quant_err_max;
  serialize_s += other.serialize_s;
  polls += other.polls;
  empty_polls += other.empty_polls;
  deletes += other.deletes;
  msgs_received += other.msgs_received;
  lists += other.lists;
  gets += other.gets;
  kv_pops += other.kv_pops;
  kv_empty_pops += other.kv_empty_pops;
  direct_pops += other.direct_pops;
  direct_empty_pops += other.direct_empty_pops;
  nul_skipped += other.nul_skipped;
  redundant_skipped += other.redundant_skipped;
  recv_wire_bytes += other.recv_wire_bytes;
  recv_billed_bytes += other.recv_billed_bytes;
  recv_rows += other.recv_rows;
  recv_wait_s += other.recv_wait_s;
  deserialize_s += other.deserialize_s;
  compute_macs += other.compute_macs;
  compute_s += other.compute_s;
  offload_calls += other.offload_calls;
  offload_virtual_s += other.offload_virtual_s;
  out_rows += other.out_rows;
  out_nnz += other.out_nnz;
  layer_wall_s += other.layer_wall_s;
  collective_rounds += other.collective_rounds;
  collective_round_s += other.collective_round_s;
}

void WorkerMetrics::Finalize() {
  totals = LayerMetrics{};
  for (const LayerMetrics& layer : layers) totals.Add(layer);
}

void RunMetrics::Finalize() {
  totals = LayerMetrics{};
  mean_worker_s = 0.0;
  max_worker_s = 0.0;
  cold_starts = 0;
  model_get_parts = 0;
  model_bytes_read = 0;
  model_gets_saved = 0;
  model_bytes_saved = 0;
  cache_hits = 0;
  cache_misses = 0;
  cache_evictions = 0;
  cache_invalidations = 0;
  cache_oversize_rejects = 0;
  share_loads_storage = 0;
  share_loads_peer = 0;
  prewarmed_hits = 0;
  share_peer_connects = 0;
  share_peer_chunks = 0;
  share_peer_bytes = 0;
  share_relay_chunks = 0;
  share_relay_requests = 0;
  share_relay_bytes = 0;
  for (WorkerMetrics& w : workers) {
    w.Finalize();
    totals.Add(w.totals);
    const double d = w.duration_s();
    mean_worker_s += d;
    if (d > max_worker_s) max_worker_s = d;
    if (w.cold_start) ++cold_starts;
    model_get_parts += w.model_get_parts;
    model_bytes_read += w.model_bytes_read;
    model_gets_saved += w.model_gets_saved;
    model_bytes_saved += w.model_bytes_saved;
    cache_hits += w.cache_hits;
    cache_misses += w.cache_misses;
    cache_evictions += w.cache_evictions;
    cache_invalidations += w.cache_invalidations;
    cache_oversize_rejects += w.cache_oversize_rejects;
    share_loads_storage += w.share_loads_storage;
    share_loads_peer += w.share_loads_peer;
    prewarmed_hits += w.prewarmed_hits;
    share_peer_connects += w.share_peer_connects;
    share_peer_chunks += w.share_peer_chunks;
    share_peer_bytes += w.share_peer_bytes;
    share_relay_chunks += w.share_relay_chunks;
    share_relay_requests += w.share_relay_requests;
    share_relay_bytes += w.share_relay_bytes;
  }
  if (!workers.empty()) mean_worker_s /= static_cast<double>(workers.size());
}

std::string RunMetrics::Summary() const {
  return StrFormat(
      "workers=%zu Tbar=%.3fs Tmax=%.3fs sent=%lld chunks (%s wire, %s raw) "
      "publishes=%lld puts=%lld/%lld polls=%lld (%lld empty) lists=%lld "
      "gets=%lld kv=%lld/%lld direct=%lld msgs (%lld links, %lld relayed) "
      "rounds=%lld (%.1fms/round) recv_rows=%lld cache=%lld/%lld hit/miss "
      "(%s saved) shares=%lld/%lld/%lld storage/peer/prewarmed",
      workers.size(), mean_worker_s, max_worker_s,
      static_cast<long long>(totals.send_chunks),
      HumanBytes(static_cast<double>(totals.send_wire_bytes)).c_str(),
      HumanBytes(static_cast<double>(totals.send_raw_bytes)).c_str(),
      static_cast<long long>(totals.publishes),
      static_cast<long long>(totals.puts_dat),
      static_cast<long long>(totals.puts_nul),
      static_cast<long long>(totals.polls),
      static_cast<long long>(totals.empty_polls),
      static_cast<long long>(totals.lists),
      static_cast<long long>(totals.gets),
      static_cast<long long>(totals.kv_pushes),
      static_cast<long long>(totals.kv_pops),
      static_cast<long long>(totals.direct_msgs),
      static_cast<long long>(totals.direct_connects),
      static_cast<long long>(totals.relay_fallback_msgs),
      static_cast<long long>(totals.collective_rounds),
      totals.collective_rounds > 0
          ? 1000.0 * totals.collective_round_s /
                static_cast<double>(totals.collective_rounds)
          : 0.0,
      static_cast<long long>(totals.recv_rows),
      static_cast<long long>(cache_hits),
      static_cast<long long>(cache_misses),
      HumanBytes(static_cast<double>(model_bytes_saved)).c_str(),
      static_cast<long long>(share_loads_storage),
      static_cast<long long>(share_loads_peer),
      static_cast<long long>(prewarmed_hits));
}

double Percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (pct <= 0.0) return values.front();
  if (pct >= 100.0) return values.back();
  // Nearest-rank: ceil(p/100 * n), 1-indexed.
  const size_t rank = static_cast<size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(values.size())));
  return values[rank == 0 ? 0 : rank - 1];
}

void PercentileSketch::Add(double v) {
  ++count_;
  sum_ += v;
  if (count_ == 1 || v > max_) max_ = v;
  if (v > 0.0 && (min_positive_ == 0.0 || v < min_positive_)) {
    min_positive_ = v;
  }
  if (!streaming_) {
    exact_.push_back(v);
    if (exact_.size() > exact_threshold_) FoldIntoBuckets();
    return;
  }
  AddToBuckets(v);
}

int32_t PercentileSketch::BucketIndex(double v) const {
  return static_cast<int32_t>(std::floor(std::log(v) / std::log(kGrowth)));
}

void PercentileSketch::AddToBuckets(double v) {
  if (v <= 0.0) {
    ++nonpositive_;
    return;
  }
  ++buckets_[BucketIndex(v)];
}

void PercentileSketch::FoldIntoBuckets() {
  for (double v : exact_) AddToBuckets(v);
  exact_.clear();
  exact_.shrink_to_fit();
  streaming_ = true;
}

double PercentileSketch::Quantile(double pct) const {
  if (count_ == 0) return 0.0;
  // Exact tier: THE historical sort-based nearest-rank value, bit for bit.
  if (!streaming_) return Percentile(exact_, pct);
  if (pct >= 100.0) return Max();
  int64_t rank =
      pct <= 0.0
          ? 1
          : static_cast<int64_t>(
                std::ceil(pct / 100.0 * static_cast<double>(count_)));
  rank = std::max<int64_t>(1, std::min(rank, count_));
  if (rank <= nonpositive_) return 0.0;
  int64_t seen = nonpositive_;
  for (const auto& [index, n] : buckets_) {
    seen += n;
    if (seen >= rank) {
      // Geometric bucket midpoint, clamped into the observed value range
      // (the extreme buckets only partially cover their span).
      const double v =
          std::exp((static_cast<double>(index) + 0.5) * std::log(kGrowth));
      return std::min(std::max(v, min_positive_), max_);
    }
  }
  return Max();
}

double PercentileSketch::Mean() const {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double PercentileSketch::Max() const { return count_ > 0 ? max_ : 0.0; }

void FleetStats::AddQuery(const QuerySample& sample,
                          const RunMetrics& metrics) {
  if (queries == 0 || sample.arrival_s < first_arrival_s_) {
    first_arrival_s_ = sample.arrival_s;
  }
  if (queries == 0 || sample.finish_s > last_finish_s_) {
    last_finish_s_ = sample.finish_s;
  }
  ++queries;
  TenantAcc& tenant =
      tenant_acc_.try_emplace(sample.tenant, streaming_threshold_)
          .first->second;
  ++tenant.queries;
  switch (sample.disposition) {
    case QueryDisposition::kRejected:
      ++rejected;
      ++tenant.rejected;
      return;
    case QueryDisposition::kShed:
      ++shed;
      ++tenant.shed;
      return;
    case QueryDisposition::kAborted:
      ++failed;
      ++aborted;
      ++tenant.failed;
      return;
    case QueryDisposition::kInFlight:
      ++failed;
      ++still_in_flight;
      ++tenant.failed;
      return;
    case QueryDisposition::kFailed:
      ++failed;
      ++tenant.failed;
      return;
    case QueryDisposition::kCompleted:
      break;
  }
  ++completed;
  ++tenant.completed;
  if (std::isfinite(sample.deadline_s)) {
    ++deadline_queries;
    if (sample.finish_s <= sample.deadline_s) {
      ++deadline_hits;
    } else {
      ++deadline_misses_;
    }
  }
  latencies_.Add(sample.latency_s);
  queue_waits_.Add(sample.queue_wait_s);
  tenant.latencies.Add(sample.latency_s);
  class_latencies_.try_emplace(sample.priority, streaming_threshold_)
      .first->second.Add(sample.latency_s);
  cache_hits += metrics.cache_hits;
  cache_misses += metrics.cache_misses;
  cache_evictions += metrics.cache_evictions;
  cache_invalidations += metrics.cache_invalidations;
  cache_oversize_rejects += metrics.cache_oversize_rejects;
  model_gets_saved += metrics.model_gets_saved;
  model_bytes_saved += metrics.model_bytes_saved;
  share_loads_storage += metrics.share_loads_storage;
  share_loads_peer += metrics.share_loads_peer;
  prewarmed_hits += metrics.prewarmed_hits;
  share_peer_bytes += metrics.share_peer_bytes;
  share_relay_bytes += metrics.share_relay_bytes;
  direct_connects += metrics.totals.direct_connects;
  punch_failures += metrics.totals.punch_failures;
  relay_fallbacks += metrics.totals.relay_fallback_msgs;
  collective_rounds += metrics.totals.collective_rounds;
  collective_round_s_total_ += metrics.totals.collective_round_s;
  offload_calls += metrics.totals.offload_calls;
  offload_virtual_s += metrics.totals.offload_virtual_s;
}

void FleetStats::AddRun(int32_t member_queries, int64_t invocations,
                        int64_t cold, bool ok) {
  if (!ok) return;
  ++runs;
  if (member_queries > 1) batched_queries += member_queries;
  if (member_queries > batch_occupancy_max) {
    batch_occupancy_max = member_queries;
  }
  worker_invocations += invocations;
  cold_starts += cold;
}

void FleetStats::Finalize() {
  makespan_s = last_finish_s_ - first_arrival_s_;
  throughput_qps =
      makespan_s > 0.0 ? static_cast<double>(completed) / makespan_s : 0.0;
  goodput_qps = makespan_s > 0.0
                    ? static_cast<double>(completed - deadline_misses_) /
                          makespan_s
                    : 0.0;
  slo_attainment =
      deadline_queries > 0
          ? static_cast<double>(deadline_hits) /
                static_cast<double>(deadline_queries)
          : 1.0;
  class_latency.clear();
  for (const auto& [priority, sketch] : class_latencies_) {
    ClassLatency cls;
    cls.priority = priority;
    cls.completed = static_cast<int32_t>(sketch.count());
    cls.latency_p50_s = sketch.Quantile(50.0);
    cls.latency_p95_s = sketch.Quantile(95.0);
    class_latency.push_back(cls);
  }
  tenant_stats.clear();
  for (const auto& [id, acc] : tenant_acc_) {
    TenantStats t;
    t.tenant = id;
    t.queries = acc.queries;
    t.completed = acc.completed;
    t.failed = acc.failed;
    t.rejected = acc.rejected;
    t.shed = acc.shed;
    t.latency_p50_s = acc.latencies.Quantile(50.0);
    t.latency_p95_s = acc.latencies.Quantile(95.0);
    tenant_stats.push_back(t);
  }
  latency_mean_s = latencies_.Mean();
  latency_p50_s = latencies_.Quantile(50.0);
  latency_p95_s = latencies_.Quantile(95.0);
  latency_p99_s = latencies_.Quantile(99.0);
  latency_max_s = latencies_.Max();
  queue_wait_mean_s = queue_waits_.Mean();
  queue_wait_p50_s = queue_waits_.Quantile(50.0);
  queue_wait_p95_s = queue_waits_.Quantile(95.0);
  queue_wait_max_s = queue_waits_.Max();
  // Occupancy/cost denominators use the completed count only: rejected and
  // shed queries never launched (or finished) a tree, so counting them
  // would misstate how full the launched trees ran.
  batch_occupancy_mean =
      runs > 0 ? static_cast<double>(completed) / static_cast<double>(runs)
               : 0.0;
  cold_start_ratio =
      worker_invocations > 0
          ? static_cast<double>(cold_starts) /
                static_cast<double>(worker_invocations)
          : 0.0;
  collective_round_mean_s =
      collective_rounds > 0
          ? collective_round_s_total_ / static_cast<double>(collective_rounds)
          : 0.0;
  const int64_t lookups = cache_hits + cache_misses;
  cache_hit_ratio =
      lookups > 0 ? static_cast<double>(cache_hits) /
                        static_cast<double>(lookups)
                  : 0.0;
  cost_per_query =
      completed > 0 ? total_cost / static_cast<double>(completed) : 0.0;
  daily_cost =
      makespan_s > 0.0 ? total_cost * (86400.0 / makespan_s) : total_cost;
}

void FleetStats::set_streaming_threshold(size_t threshold) {
  streaming_threshold_ = threshold;
  latencies_ = PercentileSketch(threshold);
  queue_waits_ = PercentileSketch(threshold);
  class_latencies_.clear();
  tenant_acc_.clear();
}

size_t FleetStats::resident_samples() const {
  size_t resident = latencies_.resident_samples() +
                    queue_waits_.resident_samples();
  for (const auto& [priority, sketch] : class_latencies_) {
    resident += sketch.resident_samples();
  }
  for (const auto& [id, acc] : tenant_acc_) {
    resident += acc.latencies.resident_samples();
  }
  return resident;
}

std::string FleetStats::Summary() const {
  std::string slo;
  if (deadline_queries > 0) {
    slo = StrFormat(" slo=%.1f%% (%d/%d deadlines, goodput %.3f qps)",
                    100.0 * slo_attainment, deadline_hits, deadline_queries,
                    goodput_qps);
  }
  // Tenant breakdown only when the workload actually is multi-tenant:
  // single-default-tenant summaries stay byte-identical to the historical
  // format.
  std::string tenants;
  const bool multi_tenant =
      tenant_stats.size() > 1 ||
      (tenant_stats.size() == 1 && tenant_stats.front().tenant != 0);
  // Offload segment only when the workload used the compute-offload
  // primitive, so legacy summaries stay byte-identical. The counters are
  // virtual-time facts — identical for every compute_threads value — so
  // this string remains a valid cross-pool byte-identity witness.
  std::string offload;
  if (offload_calls > 0) {
    offload = StrFormat(" offload=%lld closures (%.3fs virtual)",
                        static_cast<long long>(offload_calls),
                        offload_virtual_s);
  }
  if (multi_tenant) {
    tenants = " tenants=[";
    for (size_t i = 0; i < tenant_stats.size(); ++i) {
      const TenantStats& t = tenant_stats[i];
      tenants += StrFormat(
          "%s%d:q%d c%d r%d s%d p50=%.3fs", i == 0 ? "" : " ", t.tenant,
          t.queries, t.completed, t.rejected, t.shed, t.latency_p50_s);
    }
    tenants += "]";
  }
  return StrFormat(
      "queries=%d (%d failed, %d rejected, %d shed) runs=%d "
      "occupancy=%.2f (max %d) makespan=%.2fs throughput=%.3f qps%s "
      "latency p50/p95/p99/max=%.3f/%.3f/%.3f/%.3fs "
      "queue-wait p50/p95=%.3f/%.3fs cold=%.1f%% "
      "cache=%.1f%% hit (%lld evicted, %s saved) "
      "shares=%lld/%lld/%lld storage/peer/prewarmed (%d prewarm calls) "
      "links=%lld (%lld punch-failed, %lld relayed) "
      "rounds=%lld (%.1fms/round)%s "
      "cost=%s (%s/query, %s/day)%s",
      queries, failed, rejected, shed, runs, batch_occupancy_mean,
      batch_occupancy_max, makespan_s, throughput_qps, slo.c_str(),
      latency_p50_s, latency_p95_s, latency_p99_s, latency_max_s,
      queue_wait_p50_s, queue_wait_p95_s, 100.0 * cold_start_ratio,
      100.0 * cache_hit_ratio, static_cast<long long>(cache_evictions),
      HumanBytes(static_cast<double>(model_bytes_saved)).c_str(),
      static_cast<long long>(share_loads_storage),
      static_cast<long long>(share_loads_peer),
      static_cast<long long>(prewarmed_hits), prewarm_invocations,
      static_cast<long long>(direct_connects),
      static_cast<long long>(punch_failures),
      static_cast<long long>(relay_fallbacks),
      static_cast<long long>(collective_rounds),
      1000.0 * collective_round_mean_s, offload.c_str(),
      HumanDollars(total_cost).c_str(), HumanDollars(cost_per_query).c_str(),
      HumanDollars(daily_cost).c_str(), tenants.c_str());
}

}  // namespace fsd::core
