#include "core/metrics.h"

#include "common/strings.h"

namespace fsd::core {

void LayerMetrics::Add(const LayerMetrics& other) {
  send_targets += other.send_targets;
  send_rows_mapped += other.send_rows_mapped;
  send_rows_active += other.send_rows_active;
  send_chunks += other.send_chunks;
  send_raw_bytes += other.send_raw_bytes;
  send_wire_bytes += other.send_wire_bytes;
  publishes += other.publishes;
  publish_chunks += other.publish_chunks;
  puts_dat += other.puts_dat;
  puts_nul += other.puts_nul;
  serialize_s += other.serialize_s;
  polls += other.polls;
  empty_polls += other.empty_polls;
  deletes += other.deletes;
  msgs_received += other.msgs_received;
  lists += other.lists;
  gets += other.gets;
  nul_skipped += other.nul_skipped;
  redundant_skipped += other.redundant_skipped;
  recv_wire_bytes += other.recv_wire_bytes;
  recv_rows += other.recv_rows;
  recv_wait_s += other.recv_wait_s;
  deserialize_s += other.deserialize_s;
  compute_macs += other.compute_macs;
  compute_s += other.compute_s;
  out_rows += other.out_rows;
  out_nnz += other.out_nnz;
  layer_wall_s += other.layer_wall_s;
}

void WorkerMetrics::Finalize() {
  totals = LayerMetrics{};
  for (const LayerMetrics& layer : layers) totals.Add(layer);
}

void RunMetrics::Finalize() {
  totals = LayerMetrics{};
  mean_worker_s = 0.0;
  max_worker_s = 0.0;
  for (WorkerMetrics& w : workers) {
    w.Finalize();
    totals.Add(w.totals);
    const double d = w.duration_s();
    mean_worker_s += d;
    if (d > max_worker_s) max_worker_s = d;
  }
  if (!workers.empty()) mean_worker_s /= static_cast<double>(workers.size());
}

std::string RunMetrics::Summary() const {
  return StrFormat(
      "workers=%zu Tbar=%.3fs Tmax=%.3fs sent=%lld chunks (%s wire, %s raw) "
      "publishes=%lld puts=%lld/%lld polls=%lld (%lld empty) lists=%lld "
      "gets=%lld recv_rows=%lld",
      workers.size(), mean_worker_s, max_worker_s,
      static_cast<long long>(totals.send_chunks),
      HumanBytes(static_cast<double>(totals.send_wire_bytes)).c_str(),
      HumanBytes(static_cast<double>(totals.send_raw_bytes)).c_str(),
      static_cast<long long>(totals.publishes),
      static_cast<long long>(totals.puts_dat),
      static_cast<long long>(totals.puts_nul),
      static_cast<long long>(totals.polls),
      static_cast<long long>(totals.empty_polls),
      static_cast<long long>(totals.lists),
      static_cast<long long>(totals.gets),
      static_cast<long long>(totals.recv_rows));
}

}  // namespace fsd::core
