#include "core/partition_cache.h"

namespace fsd::core {

void PartitionCache::Erase(
    std::map<Key, std::list<Entry>::iterator>::iterator it) {
  bytes_cached_ -= it->second->bytes;
  lru_.erase(it->second);
  index_.erase(it);
}

PartitionCache::Lookup PartitionCache::Find(const std::string& family,
                                            int32_t partition_id,
                                            uint64_t version,
                                            bool* prewarmed_first_hit) {
  if (prewarmed_first_hit != nullptr) *prewarmed_first_hit = false;
  auto it = index_.find(Key{family, partition_id});
  if (it == index_.end()) {
    ++misses_;
    return Lookup::kMiss;
  }
  if (it->second->version != version) {
    // The family moved to another version: the resident share is dead
    // weight, drop it now rather than letting it squat on the budget.
    Erase(it);
    ++invalidations_;
    ++misses_;
    return Lookup::kStale;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  if (it->second->prewarmed) {
    it->second->prewarmed = false;  // attribution is first-hit-only
    if (prewarmed_first_hit != nullptr) *prewarmed_first_hit = true;
  }
  return Lookup::kHit;
}

bool PartitionCache::Contains(const std::string& family, int32_t partition_id,
                              uint64_t version) const {
  auto it = index_.find(Key{family, partition_id});
  return it != index_.end() && it->second->version == version;
}

PartitionCache::InsertOutcome PartitionCache::Insert(const std::string& family,
                                                     int32_t partition_id,
                                                     uint64_t version,
                                                     uint64_t bytes,
                                                     bool prewarmed) {
  const Key key{family, partition_id};
  auto it = index_.find(key);
  if (it != index_.end()) Erase(it);
  if (bytes > budget_bytes_) {
    // Can never fit; don't thrash the LRU evicting everything for nothing.
    // Distinct from a clean insert: the share is NOT resident afterwards.
    ++oversize_rejects_;
    return InsertOutcome{/*inserted=*/false, /*evicted=*/0};
  }
  InsertOutcome outcome;
  outcome.inserted = true;
  while (!lru_.empty() && bytes_cached_ + bytes > budget_bytes_) {
    index_.erase(lru_.back().key);
    bytes_cached_ -= lru_.back().bytes;
    lru_.pop_back();
    ++evictions_;
    ++outcome.evicted;
  }
  lru_.push_front(Entry{key, version, bytes, prewarmed});
  index_[key] = lru_.begin();
  bytes_cached_ += bytes;
  return outcome;
}

}  // namespace fsd::core
