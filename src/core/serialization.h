// Wire encoding of activation rows exchanged between workers.
//
// Row payloads are delta/varint coded and optionally compressed with FsdLz
// (the paper's ZLIB stage). The queue channel additionally splits payloads
// into size-capped chunks using the paper's number-of-nonzeros heuristic
// ("we use the total NNZ over the rows to be communicated to estimate the
// number of byte strings required", §III-C1).
#ifndef FSD_CORE_SERIALIZATION_H_
#define FSD_CORE_SERIALIZATION_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "core/fsd_config.h"
#include "linalg/spmm.h"

namespace fsd::core {

/// Wire-format selection for EncodeRows, derived from FsdOptions (the
/// channel backends pass it through verbatim; tests/benches may build one
/// directly). Chunks are self-describing — DecodeRows never needs it.
struct WireCodec {
  bool compress = false;      ///< FsdLz-compress payloads
  codec::LzOptions lz;        ///< LZ effort knobs
  int32_t quant_bits = 0;     ///< 0 = lossless; 2..16 = quantize values
};

/// Lossless codec shorthand (tests, benches).
inline WireCodec LosslessCodec(bool compress = false) {
  WireCodec codec;
  codec.compress = compress;
  return codec;
}

/// Quantized codec shorthand: `bits`-wide values, lossless structure.
inline WireCodec QuantCodec(int32_t bits, bool compress = true) {
  WireCodec codec;
  codec.compress = compress;
  codec.quant_bits = bits;
  return codec;
}

inline WireCodec WireCodecFromOptions(const FsdOptions& options) {
  return WireCodec{options.compress, options.codec, options.quant_bits};
}

/// A contiguous run of encoded activation rows.
struct RowChunk {
  Bytes wire;              ///< encoded (possibly compressed) payload
  uint64_t raw_bytes = 0;  ///< pre-compression (lossless-equivalent) size
  int32_t num_rows = 0;
  int64_t nnz = 0;
  // Quantized wire mode only (see WireCodec::quant_bits):
  int32_t quant_bits = 0;       ///< width this chunk's values were sent at
  int64_t quant_values = 0;     ///< float values quantized in this chunk
  double quant_err_max = 0.0;   ///< measured max |err| / chunk scale
};

/// Serialized view of selected rows: the rows listed in `row_ids` are read
/// from `source` (missing/inactive rows are skipped — the receiving side
/// learns about them implicitly since every active row is self-describing).
struct EncodeResult {
  std::vector<RowChunk> chunks;
  int32_t active_rows = 0;
  int64_t active_nnz = 0;
};

/// Encodes the intersection of `row_ids` and active rows of `source` into
/// chunks of at most `max_chunk_bytes` raw payload (0 = single unbounded
/// chunk, used by the object channel). Rows are never split across chunks;
/// chunk boundaries are chosen with the NNZ heuristic so encoded chunks
/// approach the cap. With codec.quant_bits == 0 the round trip is
/// bit-exact; otherwise values travel through the FQ quantizer (structure —
/// ids, nnz, deltas — stays exact, values reconstruct within
/// codec::QuantRelErrorBound of each chunk's max |value|).
EncodeResult EncodeRows(const linalg::ActivationMap& source,
                        const std::vector<int32_t>& row_ids,
                        uint64_t max_chunk_bytes, const WireCodec& codec);

/// What an EncodeRows call WILL produce, computed without encoding: the
/// chunk count, the exact summed raw (pre-compression) bytes, and the
/// active row/nnz counts. Everything the serialization-CPU charge needs is
/// known here, so channel backends price the encode up front and run the
/// encode itself under the compute-offload window. Exactness is
/// structural: chunk boundaries come from the same NNZ-heuristic loop
/// EncodeRows uses, and raw bytes are varint-length arithmetic over the
/// identical wire layout (the quantized mode's lossless-equivalent raw
/// size follows the same formula). Covered by a PlanRows==EncodeRows
/// agreement test across codecs and chunk caps.
struct EncodePlan {
  uint64_t raw_bytes = 0;   ///< Σ chunk.raw_bytes EncodeRows will report
  size_t num_chunks = 0;    ///< chunks EncodeRows will emit (≥ 1)
  int32_t active_rows = 0;
  int64_t active_nnz = 0;
};
EncodePlan PlanRows(const linalg::ActivationMap& source,
                    const std::vector<int32_t>& row_ids,
                    uint64_t max_chunk_bytes);

/// Decodes a chunk produced by EncodeRows into `out` (rows merged in).
/// Chunks are self-describing (tag byte), so no codec argument is needed.
Status DecodeRows(const Bytes& wire, linalg::ActivationMap* out);

/// Estimated encoded bytes for a row with `nnz` nonzeros (the NNZ packing
/// heuristic: varint ids/deltas plus 4-byte values).
uint64_t EstimateRowBytes(int64_t nnz);

}  // namespace fsd::core

#endif  // FSD_CORE_SERIALIZATION_H_
