// Wire encoding of activation rows exchanged between workers.
//
// Row payloads are delta/varint coded and optionally compressed with FsdLz
// (the paper's ZLIB stage). The queue channel additionally splits payloads
// into size-capped chunks using the paper's number-of-nonzeros heuristic
// ("we use the total NNZ over the rows to be communicated to estimate the
// number of byte strings required", §III-C1).
#ifndef FSD_CORE_SERIALIZATION_H_
#define FSD_CORE_SERIALIZATION_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "core/fsd_config.h"
#include "linalg/spmm.h"

namespace fsd::core {

/// A contiguous run of encoded activation rows.
struct RowChunk {
  Bytes wire;              ///< encoded (possibly compressed) payload
  uint64_t raw_bytes = 0;  ///< pre-compression size
  int32_t num_rows = 0;
  int64_t nnz = 0;
};

/// Serialized view of selected rows: the rows listed in `row_ids` are read
/// from `source` (missing/inactive rows are skipped — the receiving side
/// learns about them implicitly since every active row is self-describing).
struct EncodeResult {
  std::vector<RowChunk> chunks;
  int32_t active_rows = 0;
  int64_t active_nnz = 0;
};

/// Encodes the intersection of `row_ids` and active rows of `source` into
/// chunks of at most `max_chunk_bytes` raw payload (0 = single unbounded
/// chunk, used by the object channel). Rows are never split across chunks;
/// chunk boundaries are chosen with the NNZ heuristic so encoded chunks
/// approach the cap.
EncodeResult EncodeRows(const linalg::ActivationMap& source,
                        const std::vector<int32_t>& row_ids,
                        uint64_t max_chunk_bytes, bool compress,
                        const codec::LzOptions& codec);

/// Decodes a chunk produced by EncodeRows into `out` (rows merged in).
Status DecodeRows(const Bytes& wire, bool compressed,
                  linalg::ActivationMap* out);

/// Estimated encoded bytes for a row with `nnz` nonzeros (the NNZ packing
/// heuristic: varint ids/deltas plus 4-byte values).
uint64_t EstimateRowBytes(int64_t nnz);

}  // namespace fsd::core

#endif  // FSD_CORE_SERIALIZATION_H_
