// Automatic configuration selection — the paper's stated extension
// (§VI-D1: "these findings (with our cost model) could enable automatic
// runtime selection of the optimal configuration for specific workloads,
// given latency and cost priorities").
//
// Given a model, a workload description and a latency/cost priority, scores
// every candidate (variant, P) pair with the analytical cost model (Eqs.
// 1-7) plus a coarse analytic latency model, and returns the best choice
// and the full ranking.
#ifndef FSD_CORE_AUTO_CONFIG_H_
#define FSD_CORE_AUTO_CONFIG_H_

#include <vector>

#include "cloud/cloud.h"
#include "core/cost_model.h"
#include "core/fsd_config.h"
#include "model/sparse_dnn.h"

namespace fsd::core {

struct AutoSelectRequest {
  const model::SparseDnn* dnn = nullptr;
  int32_t batch = 256;
  /// Expected activation density (fraction of nonzero activation values);
  /// drives communication-volume estimates.
  double activation_density = 0.3;
  /// 1.0 = pure latency priority, 0.0 = pure cost priority.
  double latency_weight = 0.5;
  /// Candidate parallelism levels (1 implies the serial variant).
  std::vector<int32_t> candidate_workers = {1, 8, 20, 42, 62};
  FsdOptions base_options;  ///< shared knobs (lanes, compression, ...)
};

struct ConfigCandidate {
  Variant variant = Variant::kSerial;
  int32_t workers = 1;
  /// Collective topology the candidate would run (RecommendTopology).
  CollectiveTopology topology = CollectiveTopology::kThroughRoot;
  /// Quantized wire width the candidate would run (0 = lossless). Set to
  /// the narrowest width within the request's quant_max_rel_error budget
  /// when the break-even term says the billed-byte savings beat the
  /// quantize CPU on this variant.
  int32_t quant_bits = 0;
  double predicted_latency_s = 0.0;
  CostBreakdown predicted_cost;
  /// Normalized blended objective (lower is better).
  double score = 0.0;
  bool feasible = true;
  std::string infeasible_reason;
};

struct AutoSelectResult {
  ConfigCandidate best;
  std::vector<ConfigCandidate> ranking;  ///< all candidates, best first
};

/// Scores all candidates against `cloud`'s pricing/latency/compute config.
Result<AutoSelectResult> AutoSelectConfiguration(
    const cloud::CloudEnv& cloud, const AutoSelectRequest& request);

/// Picks the collective topology for (variant, workers): the one that
/// minimizes the widest single collective round (the root's fan-in span —
/// the straggler-exposure metric the per-round accounting reports), with
/// fewer rounds as the tie-break. Through-root stays optimal while the
/// backend's pop/scan machinery drains the whole fan-in within ~one op;
/// a binomial tree takes over once the root's round serializes on
/// per-message requests (queue batches of 10, object GETs per message).
CollectiveTopology RecommendTopology(const cloud::LatencyConfig& latency,
                                     const FsdOptions& options,
                                     Variant variant, int32_t workers);

}  // namespace fsd::core

#endif  // FSD_CORE_AUTO_CONFIG_H_
