// Fine-grained run metrics (the paper captures 51 per-layer and 26
// per-batch metrics to validate its cost model, §VI-F; this is the
// equivalent instrumentation).
#ifndef FSD_CORE_METRICS_H_
#define FSD_CORE_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace fsd::core {

/// Terminal state of one serving query. Exactly one applies (FleetStats
/// asserts the partition): a query is served to completion, fails during
/// execution, is refused by admission before entering the queue, is shed
/// from the queue under overload, is aborted (kill path / stop_on_failure),
/// or is still in flight when a horizon-bounded Drain() stops.
enum class QueryDisposition : int {
  kInFlight = 0,  ///< not terminal yet (horizon-cut Drain)
  kCompleted = 1,
  kFailed = 2,    ///< execution failed (worker/channel error)
  kRejected = 3,  ///< admission refused it; nothing was provisioned
  kShed = 4,      ///< admitted, then dropped from the queue under overload
  kAborted = 5,   ///< aborted by AbortAll / stop_on_failure
};

std::string_view QueryDispositionName(QueryDisposition disposition);

/// Counters for one worker at one layer.
struct LayerMetrics {
  // --- send side ---
  int64_t send_targets = 0;       ///< (m -> n) pairs in the send map
  int64_t send_rows_mapped = 0;   ///< rows listed in the send map
  int64_t send_rows_active = 0;   ///< rows actually carrying data
  int64_t send_chunks = 0;        ///< byte strings / objects written
  int64_t send_raw_bytes = 0;     ///< pre-compression payload bytes
  int64_t send_wire_bytes = 0;    ///< on-the-wire payload bytes
  /// Service-billed bytes as metered on the send side: pub-sub delivery
  /// bytes including the per-message attribute envelope (queue channel) or
  /// pushed value bytes including the chunk header (KV channel). Lets the
  /// cost model predict byte-metered dimensions exactly instead of via the
  /// mean-envelope approximation. 0 for backends without a send-side
  /// byte dimension (object storage bills per request).
  int64_t send_billed_bytes = 0;
  int64_t publishes = 0;          ///< pub-sub publish API calls
  int64_t publish_chunks = 0;     ///< billed 64 KiB publish chunks
  int64_t puts_dat = 0;           ///< object .dat PUTs
  int64_t puts_nul = 0;           ///< object .nul marker PUTs
  int64_t kv_pushes = 0;          ///< KV push (RPUSH) requests
  /// Direct channel: successful fresh NAT punches (billed connections),
  /// fresh punches that failed (the pair relays via KV from then on),
  /// values sent over punched links, and the bytes those sends billed on
  /// the p2p byte dimension. Relayed values count in relay_fallback_msgs
  /// AND in the KV counters (kv_pushes / send_billed_bytes) — the relay
  /// IS a KV push, so KV cost terms stay exact.
  int64_t direct_connects = 0;
  int64_t punch_failures = 0;
  int64_t direct_msgs = 0;
  int64_t direct_billed_bytes = 0;
  int64_t relay_fallback_msgs = 0;
  /// Quantized activation transport (WireCodec::quant_bits != 0): chunks
  /// sent through the bounded-error wire mode, float values they carried,
  /// and the worst measured per-chunk relative error (max-merged in Add —
  /// it is a bound witness, not a volume).
  int64_t quant_chunks = 0;
  int64_t quant_values = 0;
  double quant_err_max = 0.0;
  double serialize_s = 0.0;       ///< worker CPU spent packing/compressing

  // --- receive side ---
  int64_t polls = 0;              ///< queue receive API calls
  int64_t empty_polls = 0;        ///< polls returning no messages
  int64_t deletes = 0;            ///< queue delete API calls
  int64_t msgs_received = 0;
  int64_t lists = 0;              ///< object LIST calls
  int64_t gets = 0;               ///< object GET calls
  int64_t kv_pops = 0;            ///< KV blocking-pop requests
  int64_t kv_empty_pops = 0;      ///< pops whose wait expired empty
  int64_t direct_pops = 0;        ///< p2p fabric inbox pops (unbilled)
  int64_t direct_empty_pops = 0;  ///< fabric pops whose wait expired empty
  int64_t nul_skipped = 0;        ///< .nul markers skipped without GET
  int64_t redundant_skipped = 0;  ///< already-received sources skipped
  int64_t recv_wire_bytes = 0;
  /// Service-billed bytes metered on the receive side (KV: bytes processed
  /// by blocking pops). 0 for queue/object (deliveries bill at send time).
  int64_t recv_billed_bytes = 0;
  int64_t recv_rows = 0;
  double recv_wait_s = 0.0;       ///< virtual time blocked receiving
  double deserialize_s = 0.0;

  // --- compute ---
  double compute_macs = 0.0;
  double compute_s = 0.0;
  /// Compute-offload primitive (Simulation::Offload): closures this layer
  /// submitted and the virtual seconds charged for them. Both are
  /// virtual-time facts — byte-identical for every SimTuning::
  /// compute_threads value (wall-clock pool counters live outside the
  /// metrics, in Simulation::offload_stats()).
  int64_t offload_calls = 0;
  double offload_virtual_s = 0.0;
  int64_t out_rows = 0;
  int64_t out_nnz = 0;
  double layer_wall_s = 0.0;      ///< virtual time spent in this layer

  // --- collectives (phases >= L; slots indexed by collective phase) ---
  /// Send/receive rounds this worker executed inside collective
  /// operations, and the virtual time they took. Through-root runs one
  /// round per op; binomial/ring topologies run O(log P) / O(P) shorter
  /// rounds — comm time PER ROUND is the topology comparison metric.
  int64_t collective_rounds = 0;
  double collective_round_s = 0.0;

  void Add(const LayerMetrics& other);
};

/// One worker's whole-run metrics.
struct WorkerMetrics {
  int32_t worker_id = 0;
  double start_time = 0.0;        ///< handler start (virtual)
  double end_time = 0.0;
  double model_load_s = 0.0;
  double launch_children_s = 0.0;
  bool cold_start = false;

  /// --- model-share load + partition cache (cross-query warm reuse) ---
  int64_t model_get_parts = 0;    ///< multipart GETs issued for the share
  int64_t model_bytes_read = 0;   ///< share bytes read from object storage
  int64_t model_gets_saved = 0;   ///< GETs skipped on a cache hit
  int64_t model_bytes_saved = 0;  ///< share bytes a cache hit skipped
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;    ///< entries this worker's insert evicted
  int64_t cache_invalidations = 0;  ///< stale-version entries dropped
  int64_t cache_oversize_rejects = 0;  ///< inserts rejected: share > budget

  /// --- λScale-style peer share distribution (cold-start attribution) ---
  /// Every cache miss resolves from exactly one source: object storage
  /// (share_loads_storage — it issued model_get_parts GETs) or a warm
  /// peer over the P2P fabric / its KV relay (share_loads_peer).
  /// prewarmed_hits counts cache hits whose entry a pre-warm task planted
  /// (first hit only) — the third cold-start source.
  int64_t share_loads_storage = 0;
  int64_t share_loads_peer = 0;
  int64_t prewarmed_hits = 0;
  /// Peer-transfer billing mirrors (quantities as metered by the ledger,
  /// so the cost model's share-transfer terms reconcile exactly): fresh
  /// punched links established for share pulls, chunks/bytes billed on
  /// the p2p byte dimension, and — for pairs whose punch failed — relay
  /// chunks with their KV request count and processed bytes.
  int64_t share_peer_connects = 0;
  int64_t share_peer_chunks = 0;
  int64_t share_peer_bytes = 0;
  int64_t share_relay_chunks = 0;
  int64_t share_relay_requests = 0;
  int64_t share_relay_bytes = 0;

  std::vector<LayerMetrics> layers;
  LayerMetrics totals;            ///< sum over layers

  LayerMetrics& Layer(int32_t k) {
    if (static_cast<size_t>(k) >= layers.size()) layers.resize(k + 1);
    return layers[static_cast<size_t>(k)];
  }
  void Finalize();
  double duration_s() const { return end_time - start_time; }
};

/// Aggregated run metrics across workers.
struct RunMetrics {
  std::vector<WorkerMetrics> workers;
  LayerMetrics totals;
  double mean_worker_s = 0.0;  ///< T-bar in the cost model
  double max_worker_s = 0.0;
  int64_t cold_starts = 0;     ///< worker invocations that paid a cold start

  /// This view's share of its worker tree's per-invocation costs: 1 for a
  /// whole run; a member of a cross-query-batched run carries its batch
  /// share (member cols / run cols) so per-query cost predictions bill the
  /// member its fraction of the P invocations — member predictions then sum
  /// to the whole tree's. Worker durations in a member view are already
  /// share-scaled, so only the per-invocation term needs this.
  double tree_share = 1.0;

  /// Model-share load + partition-cache totals across workers (model reads
  /// happen once per worker per run, outside the layer loop, so they are
  /// not part of the per-layer totals).
  int64_t model_get_parts = 0;
  int64_t model_bytes_read = 0;
  int64_t model_gets_saved = 0;
  int64_t model_bytes_saved = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  int64_t cache_invalidations = 0;
  int64_t cache_oversize_rejects = 0;
  int64_t share_loads_storage = 0;
  int64_t share_loads_peer = 0;
  int64_t prewarmed_hits = 0;
  int64_t share_peer_connects = 0;
  int64_t share_peer_chunks = 0;
  int64_t share_peer_bytes = 0;
  int64_t share_relay_chunks = 0;
  int64_t share_relay_requests = 0;
  int64_t share_relay_bytes = 0;

  void Finalize();
  std::string Summary() const;
};

/// Nearest-rank percentile (pct in [0, 100]) over an unsorted sample;
/// returns 0 for an empty sample. Sorts a copy.
double Percentile(std::vector<double> values, double pct);

/// Bounded-memory quantile accumulator for serving-scale distributions.
///
/// Small samples stay exact: while count() <= the exact threshold the
/// sketch holds every value and Quantile() IS Percentile() — byte-identical
/// to the historical sort-based path, so sub-threshold workloads (every
/// unit test, most benches) see no change at all. Past the threshold the
/// exact buffer folds into a log-spaced histogram (growth kGrowth per
/// bucket) and memory is bounded by the bucket count — O(log(max/min)) —
/// instead of the sample count, which is what lets FleetStats absorb a
/// 10^6-query day without retaining 10^6 QuerySamples.
///
/// Accuracy contract once streaming: quantiles are reported as the
/// geometric midpoint of the rank's bucket, so the relative error is
/// bounded by sqrt(kGrowth) - 1 (~0.25% at the default growth, well inside
/// the documented 1%); Mean() and Max() stay exact, and non-positive
/// values (idle queue waits are exactly 0) are counted in a dedicated
/// bucket that reports 0 exactly.
class PercentileSketch {
 public:
  static constexpr size_t kDefaultExactThreshold = 4096;
  static constexpr double kGrowth = 1.005;

  explicit PercentileSketch(
      size_t exact_threshold = kDefaultExactThreshold)
      : exact_threshold_(exact_threshold) {}

  void Add(double v);
  /// Nearest-rank percentile (pct in [0, 100]) of everything Add()ed.
  double Quantile(double pct) const;
  double Mean() const;
  double Max() const;
  int64_t count() const { return count_; }
  bool streaming() const { return streaming_; }
  /// Peak-memory proxy: exact samples still held plus histogram buckets.
  /// Bounded by exact_threshold + O(log(max/min) / log(kGrowth)) however
  /// many values were Add()ed.
  size_t resident_samples() const {
    return exact_.size() + buckets_.size() + (nonpositive_ > 0 ? 1 : 0);
  }

 private:
  int32_t BucketIndex(double v) const;
  void AddToBuckets(double v);
  void FoldIntoBuckets();

  size_t exact_threshold_;
  bool streaming_ = false;
  std::vector<double> exact_;
  std::map<int32_t, int64_t> buckets_;  ///< log-spaced, index -> count
  int64_t nonpositive_ = 0;             ///< values <= 0 (reported as 0)
  int64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
  double min_positive_ = 0.0;  ///< smallest positive value seen
};

/// Fleet-level aggregation over a serving workload: the SLO-facing view
/// (tail latency, throughput, cold-start ratio, projected daily cost) of
/// many queries sharing one cloud deployment.
struct FleetStats {
  int32_t queries = 0;  ///< total submissions
  /// Mutually exclusive terminal partition over submissions:
  ///   completed + failed + rejected + shed == queries,
  /// where `failed` keeps its historical umbrella meaning "terminal without
  /// a successful report" and is itself partitioned into execution
  /// failures (failed - aborted - still_in_flight), aborts, and queries a
  /// horizon-bounded Drain() cut off. Rejected/shed queries never launched
  /// a tree and appear in NO latency/queue-wait/occupancy aggregate.
  int32_t completed = 0;
  int32_t failed = 0;
  int32_t aborted = 0;          ///< subset of failed: AbortAll / kill path
  int32_t still_in_flight = 0;  ///< subset of failed: horizon-cut drains
  int32_t rejected = 0;         ///< admission refused (typed, counted here)
  int32_t shed = 0;             ///< dropped from the queue under overload
  double makespan_s = 0.0;        ///< first arrival -> last completion
  double throughput_qps = 0.0;    ///< completed queries / makespan
  /// Completed queries that met their deadline (deadline-free queries
  /// count as met) / makespan: the SLO-facing throughput.
  double goodput_qps = 0.0;

  // SLO attainment (acceptance deadline accounting; reconciles exactly
  // with per-query outcomes: deadline_hits == completed deadline-carrying
  // queries whose finish time was <= their absolute deadline).
  int32_t deadline_queries = 0;  ///< completed queries carrying a deadline
  int32_t deadline_hits = 0;
  double slo_attainment = 0.0;   ///< hits / deadline_queries (1.0 if none)

  /// Live EWMA of the serving runtime's observed service rate at Drain
  /// time (what admission control saw); 0 when no runs completed.
  double ewma_service_rate_qps = 0.0;

  // Per-query end-to-end latency distribution (completed queries only).
  double latency_mean_s = 0.0;
  double latency_p50_s = 0.0;
  double latency_p95_s = 0.0;
  double latency_p99_s = 0.0;
  double latency_max_s = 0.0;

  /// Latency percentiles per priority class (ascending priority), over
  /// completed queries of that class.
  struct ClassLatency {
    int32_t priority = 0;
    int32_t completed = 0;
    double latency_p50_s = 0.0;
    double latency_p95_s = 0.0;
  };
  std::vector<ClassLatency> class_latency;

  /// Per-tenant disposition partition and completed-latency percentiles
  /// (ascending tenant id), filled by Finalize(). Each tenant's row obeys
  /// the same identity as the fleet totals — completed + failed +
  /// rejected + shed == queries — so a multi-tenant replay can assert
  /// quota enforcement tenant by tenant. Workloads that never set a
  /// tenant id report a single tenant-0 row.
  struct TenantStats {
    int32_t tenant = 0;
    int32_t queries = 0;
    int32_t completed = 0;
    int32_t failed = 0;
    int32_t rejected = 0;
    int32_t shed = 0;
    double latency_p50_s = 0.0;
    double latency_p95_s = 0.0;
  };
  std::vector<TenantStats> tenant_stats;

  // FaaS instance reuse across the workload.
  int64_t worker_invocations = 0;
  int64_t cold_starts = 0;
  double cold_start_ratio = 0.0;  ///< cold / worker invocations

  // Cross-query batching: worker trees launched and how full they ran.
  // Without batching every query is its own run, so runs == completed
  // queries and occupancy is 1.
  int32_t runs = 0;                  ///< shared worker trees launched
  int32_t batched_queries = 0;       ///< queries that shared a tree (>1 peer)
  double batch_occupancy_mean = 0.0; ///< queries per tree
  int32_t batch_occupancy_max = 0;

  // Queue wait (submission -> the serving tree actually launching): the
  // price of the coalescing window, included in every per-query latency.
  double queue_wait_mean_s = 0.0;
  double queue_wait_p50_s = 0.0;
  double queue_wait_p95_s = 0.0;
  double queue_wait_max_s = 0.0;

  // Direct-channel link health and collective shape across completed
  // queries: how many NAT-punched links the fleet established, how many
  // payload values had to fall back to the KV relay, and the collective
  // rounds executed with their mean per-round comm time (the
  // topology-comparison metric).
  int64_t direct_connects = 0;
  int64_t punch_failures = 0;
  int64_t relay_fallbacks = 0;
  int64_t collective_rounds = 0;
  double collective_round_mean_s = 0.0;

  /// Compute-offload closures submitted by completed queries and the
  /// virtual seconds charged for them. Virtual-time facts: byte-identical
  /// across every SimTuning::compute_threads value (the wall-clock pool
  /// counters live in Simulation::offload_stats(), deliberately outside
  /// this summary's byte-identity surface).
  int64_t offload_calls = 0;
  double offload_virtual_s = 0.0;

  // Cross-query partition cache (model-share warm reuse).
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  int64_t cache_invalidations = 0;
  int64_t cache_oversize_rejects = 0;  ///< shares too big to ever cache
  double cache_hit_ratio = 0.0;    ///< hits / (hits + misses)
  int64_t model_gets_saved = 0;    ///< object GETs the cache avoided
  int64_t model_bytes_saved = 0;   ///< share bytes the cache avoided

  // λScale-style peer share distribution: where the fleet's cold loads
  // came from (storage read / peer transfer / pre-warmed entry), and the
  // bytes the peer path billed on the fabric vs. its KV relay.
  int64_t share_loads_storage = 0;
  int64_t share_loads_peer = 0;
  int64_t prewarmed_hits = 0;
  int64_t share_peer_bytes = 0;
  int64_t share_relay_bytes = 0;

  // Predictive pre-warming control loop (runs outside any query's tree;
  // its billing is workload-level, never query-attributed). The
  // share-transfer mirrors carry the ledger quantities the pre-warm loads
  // moved, so workload-level cost reconciliation can account for them.
  int32_t prewarm_invocations = 0;       ///< worker fn calls the policy fired
  int64_t prewarm_storage_parts = 0;     ///< object GETs pre-warm loads paid
  int64_t prewarm_storage_bytes = 0;
  int64_t prewarm_peer_connects = 0;
  int64_t prewarm_peer_bytes = 0;
  int64_t prewarm_relay_requests = 0;
  int64_t prewarm_relay_bytes = 0;
  double prewarm_budget_spent = 0.0;     ///< policy's committed estimate ($)

  // Dollars (filled from the workload's billing-ledger delta).
  double total_cost = 0.0;
  double cost_per_query = 0.0;
  double daily_cost = 0.0;        ///< total_cost extrapolated to 24 h

  /// One query's contribution to the fleet aggregates: its timeline, its
  /// terminal disposition and its SLO class. `deadline_s` is the absolute
  /// deadline (+infinity when the query carried none).
  struct QuerySample {
    double arrival_s = 0.0;
    double finish_s = 0.0;
    double latency_s = 0.0;
    double queue_wait_s = 0.0;  ///< submission -> tree launch (0 unbatched)
    QueryDisposition disposition = QueryDisposition::kCompleted;
    int32_t priority = 0;
    int32_t tenant = 0;       ///< tenant id (0 = the default tenant)
    double deadline_s = 0.0;  ///< absolute; set to +inf for "none"
  };

  /// Accumulates one terminal (or horizon-cut) query; callers then call
  /// Finalize once. `metrics` may be a whole run's or a batched member's
  /// sliced view — member slices sum exactly to run totals, so fleet cache
  /// counters stay exact either way. Only completed queries enter the
  /// latency/queue-wait distributions and cache totals; every disposition
  /// lands in exactly one partition counter.
  void AddQuery(const QuerySample& sample, const RunMetrics& metrics);
  /// Accumulates one completed worker tree (a run serving `member_queries`
  /// coalesced queries — 1 without batching). Invocations and cold starts
  /// are per-tree facts, not per-query facts, so they are counted here.
  void AddRun(int32_t member_queries, int64_t worker_invocations,
              int64_t cold_starts, bool ok);
  /// Computes the distribution/ratio/throughput fields; `total_cost` must
  /// already be set for the dollar fields.
  void Finalize();
  std::string Summary() const;

  /// Lowers the per-distribution exact threshold (tests exercise the
  /// streaming path without 4096+ queries). Must be called before the
  /// first AddQuery — it resets the accumulated distributions.
  void set_streaming_threshold(size_t threshold);
  /// Peak resident distribution samples across every internal sketch —
  /// the bounded-aggregation guarantee a long replay is tested against.
  size_t resident_samples() const;

 private:
  size_t streaming_threshold_ = PercentileSketch::kDefaultExactThreshold;
  PercentileSketch latencies_;
  PercentileSketch queue_waits_;
  double collective_round_s_total_ = 0.0;
  std::map<int32_t, PercentileSketch> class_latencies_;  ///< by priority
  struct TenantAcc {
    explicit TenantAcc(size_t threshold) : latencies(threshold) {}
    int32_t queries = 0;
    int32_t completed = 0;
    int32_t failed = 0;
    int32_t rejected = 0;
    int32_t shed = 0;
    PercentileSketch latencies;
  };
  std::map<int32_t, TenantAcc> tenant_acc_;  ///< by tenant id
  int32_t deadline_misses_ = 0;
  double first_arrival_s_ = 0.0;
  double last_finish_s_ = 0.0;
};

}  // namespace fsd::core

#endif  // FSD_CORE_METRICS_H_
