#include "core/channel_traits.h"

namespace fsd::core {

std::string_view TraitSupportSymbol(TraitSupport support) {
  switch (support) {
    case TraitSupport::kNo:
      return " ";
    case TraitSupport::kPartial:
      return "Y*";
    case TraitSupport::kYes:
      return "Y";
  }
  return "?";
}

const std::array<ChannelTraits, 9>& ChannelTraitMatrix() {
  using enum TraitSupport;
  static const std::array<ChannelTraits, 9> matrix = {{
      {"Stream", kPartial, kYes, kPartial, kNo, kPartial, kNo, kYes,
       "provisioned shards; producer/consumer and API-rate caps"},
      {"Stream (ETL)", kYes, kYes, kYes, kNo, kYes, kYes, kNo,
       "no direct polling of the delivery stream; large minimum buffers"},
      {"NoSQL", kPartial, kYes, kNo, kNo, kYes, kYes, kYes,
       "restricted item sizes, limited batch updates, relatively high cost"},
      {"Pub-Sub", kYes, kYes, kYes, kNo, kYes, kYes, kYes,
       "needs a queue target to retain messages for polling consumers"},
      {"Queues", kYes, kYes, kYes, kNo, kYes, kNo, kYes,
       "no service-side fan-out/filtering on its own"},
      {"Pub-Sub+Queues", kYes, kYes, kYes, kNo, kYes, kYes, kYes,
       "SELECTED: FSD-Inf-Queue (filtered fan-out + per-worker queues)"},
      {"Object Storage", kYes, kYes, kPartial, kYes, kYes, kNo, kYes,
       "SELECTED: FSD-Inf-Object (size-free payloads; per-request billing)"},
      {"In-Memory KV", kPartial, kYes, kPartial, kNo, kYes, kNo, kYes,
       "SELECTED: FSD-Inf-KV (sub-ms ops for small payloads; standing "
       "node cost + per-byte metering)"},
      {"Direct P2P (NAT-punched)", kPartial, kYes, kYes, kYes, kPartial, kNo,
       kYes,
       "SELECTED: FSD-Inf-Direct (no per-request charge on punched links; "
       "setup cost + punch failures relay via KV)"},
  }};
  return matrix;
}

}  // namespace fsd::core
