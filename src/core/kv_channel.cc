#include "core/kv_channel.h"

#include <algorithm>
#include <map>

#include "codec/varint.h"
#include "common/strings.h"
#include "sim/simulation.h"

namespace fsd::core {

Bytes EncodeInboxValue(int32_t source, int32_t seq, int32_t total,
                       Bytes wire) {
  Bytes out;
  out.reserve(wire.size() + 6);
  codec::PutVarint64(&out, static_cast<uint64_t>(source));
  codec::PutVarint64(&out, static_cast<uint64_t>(seq));
  codec::PutVarint64(&out, static_cast<uint64_t>(total));
  out.insert(out.end(), wire.begin(), wire.end());
  return out;
}

Result<DecodedInboxValue> DecodeInboxValue(const Bytes& value) {
  ByteReader reader(value);
  DecodedInboxValue decoded;
  FSD_ASSIGN_OR_RETURN(uint64_t source, codec::GetVarint64(&reader));
  FSD_ASSIGN_OR_RETURN(uint64_t seq, codec::GetVarint64(&reader));
  FSD_ASSIGN_OR_RETURN(uint64_t total, codec::GetVarint64(&reader));
  decoded.source = static_cast<int32_t>(source);
  decoded.seq = static_cast<int32_t>(seq);
  decoded.total = static_cast<int32_t>(total);
  FSD_ASSIGN_OR_RETURN(decoded.body, reader.ReadBytes(reader.remaining()));
  return decoded;
}

std::string KvChannel::NamespaceName(const FsdOptions& options) {
  return StrFormat("%skv", options.channel_scope.c_str());
}

std::string KvChannel::InboxKey(int32_t phase, int32_t target) {
  return StrFormat("p%d/w%d", phase, target);
}

Status KvChannel::Provision(cloud::CloudEnv* cloud,
                            const FsdOptions& options) {
  const std::string ns = NamespaceName(options);
  if (!cloud->kv().NamespaceExists(ns)) {
    cloud::KvNamespaceOptions ns_options;
    ns_options.num_shards = std::max<int32_t>(1, options.kv_shards);
    FSD_RETURN_IF_ERROR(cloud->kv().CreateNamespace(ns, ns_options));
  }
  return Status::OK();
}

Status KvChannel::Teardown(cloud::CloudEnv* cloud, const FsdOptions& options) {
  const std::string ns = NamespaceName(options);
  if (!cloud->kv().NamespaceExists(ns)) return Status::OK();
  return cloud->kv().DeleteNamespace(ns);
}

Status KvChannel::SendPhase(WorkerEnv* env, int32_t phase,
                            const linalg::ActivationMap& source,
                            const std::vector<SendSpec>& sends) {
  if (sends.empty()) return Status::OK();
  const FsdOptions& options = *env->options;
  LayerMetrics& metrics = env->metrics->Layer(phase);
  metrics.send_targets += static_cast<int64_t>(sends.size());

  // 1) Plan the encode (value-capped, NNZ heuristic): chunk counts and
  // exact raw bytes are input-determined, so the CPU charge is computable
  // before encoding. An empty send still produces one marker chunk so the
  // receiver's per-source accounting completes without data.
  uint64_t serialize_bytes = 0;
  size_t total_chunks = 0;
  for (const SendSpec& send : sends) {
    metrics.send_rows_mapped += static_cast<int64_t>(send.rows->size());
    const EncodePlan plan =
        PlanRows(source, *send.rows, options.kv_max_value_bytes);
    metrics.send_rows_active += plan.active_rows;
    serialize_bytes += plan.raw_bytes;
    total_chunks += plan.num_chunks;
  }

  // 2) Charge the serialization/compression CPU (parallel over IPC lanes)
  // and run the encode under the charged window; accounting and dispatch
  // follow the join.
  std::vector<EncodeResult> encoded(sends.size());
  FSD_RETURN_IF_ERROR(OffloadSerializeCpu(
      env, &metrics, serialize_bytes, total_chunks, [&]() {
        for (size_t s = 0; s < sends.size(); ++s) {
          encoded[s] =
              EncodeRows(source, *sends[s].rows, options.kv_max_value_bytes,
                         WireCodecFromOptions(options));
        }
      }));

  // 3) Build inbox values from the encoded chunks.
  struct Outgoing {
    std::string key;
    Bytes value;
  };
  std::vector<Outgoing> outgoing;
  outgoing.reserve(total_chunks);
  for (size_t s = 0; s < sends.size(); ++s) {
    const int32_t total = static_cast<int32_t>(encoded[s].chunks.size());
    for (int32_t seq = 0; seq < total; ++seq) {
      RowChunk& chunk = encoded[s].chunks[seq];
      AccountSendChunk(&metrics, chunk);
      outgoing.push_back(
          {InboxKey(phase, sends[s].target),
           EncodeInboxValue(env->worker_id, seq, total,
                            std::move(chunk.wire))});
    }
  }

  // 4) Lane-scheduled pushes: each lane issues its next push when the
  // previous completes, using the median op latency as the lane estimate.
  DispatchLanes lanes(options.io_lanes, env->cloud->latency().kv_push.median_s);
  metrics.kv_pushes += static_cast<int64_t>(outgoing.size());
  // The cache meters processed bytes per request: a push processes the
  // whole value (header + chunk) — mirrored exactly for the cost model.
  for (const Outgoing& out : outgoing) {
    metrics.send_billed_bytes += static_cast<int64_t>(out.value.size());
  }
  const std::string ns = NamespaceName(options);
  for (Outgoing& out : outgoing) {
    const double offset = lanes.NextOffset();
    cloud::CloudEnv* cloud = env->cloud;
    env->cloud->sim()->ScheduleCallback(
        offset, [cloud, ns, key = std::move(out.key),
                 value = std::move(out.value)]() mutable {
          cloud->kv().Push(ns, key, std::move(value));
        });
  }
  // The worker only pays the pipelined dispatch overhead; the op round
  // trips ride on the lanes above.
  FSD_RETURN_IF_ERROR(ChargeDispatchOverhead(env, outgoing.size()));
  return Status::OK();
}

Result<linalg::ActivationMap> KvChannel::ReceivePhase(
    WorkerEnv* env, int32_t phase, const std::vector<int32_t>& sources) {
  linalg::ActivationMap received;
  if (sources.empty()) return received;
  const FsdOptions& options = *env->options;
  LayerMetrics& metrics = env->metrics->Layer(phase);
  const double start = env->cloud->sim()->Now();
  const auto& compute = env->cloud->compute();

  struct Progress {
    int32_t expected = -1;
    int32_t got = 0;
  };
  std::map<int32_t, Progress> pending;
  for (int32_t s : sources) pending.emplace(s, Progress{});

  const std::string ns = NamespaceName(options);
  const std::string inbox = InboxKey(phase, env->worker_id);
  while (!pending.empty()) {
    FSD_RETURN_IF_ERROR(env->CheckAbort());
    FSD_RETURN_IF_ERROR(env->faas->CheckDeadline());
    FSD_ASSIGN_OR_RETURN(
        std::vector<Bytes> values,
        env->cloud->kv().BlockingPopAll(ns, inbox, cloud::kMaxValuesPerPop,
                                        options.kv_poll_wait_s));
    ++metrics.kv_pops;
    if (values.empty()) {
      ++metrics.kv_empty_pops;
      continue;
    }
    // First pass (inline): header decode and per-source bookkeeping — the
    // poll loop's control state. The row decode itself is batched below
    // and runs under the batch's deserialization window.
    uint64_t popped_bytes = 0;
    std::vector<Bytes> bodies;
    bodies.reserve(values.size());
    for (const Bytes& value : values) {
      // Processed bytes the pop was billed for: the full value, header
      // included — counted before any skip, because the service meters
      // what it moved, not what the receiver could use.
      metrics.recv_billed_bytes += static_cast<int64_t>(value.size());
      FSD_ASSIGN_OR_RETURN(DecodedInboxValue decoded, DecodeInboxValue(value));
      auto it = pending.find(decoded.source);
      if (it == pending.end()) {
        // Pops are destructive, so a duplicate can only mean a stray value
        // from a mis-scoped sender; count it like the other channels do.
        ++metrics.redundant_skipped;
        continue;
      }
      it->second.expected = decoded.total;
      ++it->second.got;
      metrics.recv_wire_bytes += static_cast<int64_t>(decoded.body.size());
      popped_bytes += decoded.body.size();
      bodies.push_back(std::move(decoded.body));
      if (it->second.got == it->second.expected) pending.erase(it);
    }
    const double deser_s =
        static_cast<double>(popped_bytes) / compute.deserialize_bytes_per_s;
    metrics.deserialize_s += deser_s;
    Status decoded_rows;
    std::function<void()> decode_fn;
    if (!bodies.empty()) {
      metrics.offload_calls += 1;
      metrics.offload_virtual_s += deser_s;
      decode_fn = [&]() {
        for (const Bytes& body : bodies) {
          decoded_rows = DecodeRows(body, &received);
          if (!decoded_rows.ok()) return;
        }
      };
    }
    const size_t before = received.size();
    FSD_RETURN_IF_ERROR(env->faas->OffloadFor(deser_s, std::move(decode_fn)));
    FSD_RETURN_IF_ERROR(decoded_rows);
    metrics.recv_rows += static_cast<int64_t>(received.size() - before);
  }

  metrics.recv_wait_s += env->cloud->sim()->Now() - start;
  return received;
}

}  // namespace fsd::core
