// Production-style workload traces for the serving runtime.
//
// A WorkloadTrace is a deterministic list of (arrival time, tenant) pairs
// drawn from a generative model of production inference traffic:
//
//   rate(t) = base_rate_qps
//             x (1 + diurnal_amplitude * sin(2*pi*t/period + phase))
//             x flash-crowd multiplier(t)
//
// sampled by Poisson thinning (Lewis & Shedler): arrivals are drawn from a
// homogeneous Poisson process at the envelope rate max_t rate(t) and each
// is kept with probability rate(t)/max_rate, which yields an exact
// non-homogeneous Poisson process without numerical integration. Each kept
// arrival is then assigned a tenant by a weighted draw over the tenant
// mix. All randomness flows from one Rng seeded with TraceConfig::seed in
// a fixed draw order (gap, thinning accept, tenant), so a config generates
// the same trace on every host and toolchain modulo floating-point
// contraction (the math here is plain +/*, no transcendental in the
// per-arrival loop except the rate envelope itself).
//
// Traces serialize to a line-based text format (see SerializeTrace) whose
// doubles round-trip exactly (%.17g), so a saved trace replays
// byte-identically, and they replay into a ServingRuntime via ReplayTrace,
// which stamps each query with its tenant's scheduling metadata (tenant
// id, priority, SLO deadline, model family).
#ifndef FSD_CORE_TRACE_H_
#define FSD_CORE_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/scheduler.h"

namespace fsd::core {

class ServingRuntime;
struct ServingReport;
struct InferenceRequest;

/// A step surge in traffic: rate(t) is multiplied by `rate_multiplier`
/// for t in [start_s, start_s + duration_s). Overlapping crowds compound.
struct FlashCrowd {
  double start_s = 0.0;
  double duration_s = 0.0;
  double rate_multiplier = 1.0;
};

/// One tenant of the workload mix. Shares are relative weights (they need
/// not sum to 1); the scheduling fields are stamped onto every replayed
/// query of this tenant.
struct TenantSpec {
  /// Stable tenant id (> 0; 0 is the default tenant of untagged queries).
  int32_t tenant = 0;
  std::string name;
  /// Relative share of arrivals assigned to this tenant (weighted draw).
  double qps_share = 1.0;
  /// Scheduling metadata stamped onto replayed queries (FsdOptions).
  int32_t priority = 0;
  double slo_deadline_s = 0.0;
  /// Model family the tenant queries (empty keeps the base request's).
  /// Distinct families never share worker trees or partition caches.
  std::string model_family;
  /// Admission quota for this tenant; 0 = unlimited. ReplayTrace turns
  /// these into ServingOptions::tenant_quotas via TraceTenantQuotas.
  double quota_qps = 0.0;
  double quota_burst = 0.0;  ///< 0 = max(1, quota_qps)
};

struct TraceConfig {
  double duration_s = 60.0;
  double base_rate_qps = 10.0;
  /// Diurnal sinusoid: amplitude in [0, 1) of the rate swing, period of
  /// one cycle, phase offset in radians. Amplitude 0 = flat rate.
  double diurnal_amplitude = 0.0;
  double diurnal_period_s = 86400.0;
  double diurnal_phase = 0.0;
  std::vector<FlashCrowd> flash_crowds;
  /// Tenant mix; empty = every arrival belongs to the default tenant 0.
  std::vector<TenantSpec> tenants;
  uint64_t seed = 1;
  /// Hard cap on generated queries (0 = unlimited). Generation stops at
  /// whichever of duration_s / max_queries is hit first.
  uint64_t max_queries = 0;
};

/// One arrival of the trace.
struct TraceQuery {
  double arrival_s = 0.0;
  int32_t tenant = 0;
};

struct WorkloadTrace {
  TraceConfig config;
  std::vector<TraceQuery> queries;  ///< sorted by arrival_s
};

/// The instantaneous rate function rate(t) of the generative model
/// (diurnal sinusoid x flash-crowd multipliers), in queries/second.
double TraceRateAt(const TraceConfig& config, double t);

/// Generates the trace by Poisson thinning. Deterministic per config
/// (same seed => identical trace). Fails on invalid configs (negative
/// rates/durations, amplitude outside [0, 1), duplicate tenant ids,
/// non-positive shares).
Result<WorkloadTrace> GenerateTrace(const TraceConfig& config);

/// Serializes to the line-based text format:
///   fsd-trace v1
///   config <key> <value>        (one line per scalar; %.17g doubles)
///   crowd <start> <duration> <multiplier>
///   tenant <id> <share> <priority> <slo> <quota_qps> <quota_burst>
///          <name> <family>      (names URL-free tokens, '-' when empty)
///   q <arrival_s> <tenant>
/// Doubles round-trip exactly, so Parse(Serialize(t)) == t.
std::string SerializeTrace(const WorkloadTrace& trace);
Result<WorkloadTrace> ParseTrace(std::string_view text);

Status SaveTrace(const WorkloadTrace& trace, const std::string& path);
Result<WorkloadTrace> LoadTrace(const std::string& path);

/// The ServingOptions::tenant_quotas implied by the trace's tenant specs
/// (one TenantQuota per tenant with quota_qps > 0).
std::vector<TenantQuota> TraceTenantQuotas(const TraceConfig& config);

/// Replays the trace into `runtime`: submits one clone of `base_request`
/// per trace query at its arrival time — with the tenant's scheduling
/// metadata (tenant_id, priority, slo_deadline_s, model_family) stamped
/// onto the clone's options — then drains to completion and returns the
/// report. The caller owns the runtime's options; pass
/// TraceTenantQuotas(trace.config) in ServingOptions::tenant_quotas to
/// enforce the trace's quotas during the replay.
Result<ServingReport> ReplayTrace(ServingRuntime& runtime,
                                  const WorkloadTrace& trace,
                                  const InferenceRequest& base_request);

}  // namespace fsd::core

#endif  // FSD_CORE_TRACE_H_
