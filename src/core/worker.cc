#include "core/worker.h"

#include <algorithm>

#include "codec/varint.h"
#include "common/logging.h"
#include "common/strings.h"
#include "core/collectives.h"
#include "core/launcher.h"
#include "core/partition_cache.h"
#include "core/share_distributor.h"

namespace fsd::core {
namespace {

WorkerEnv MakeEnv(cloud::FaasContext* ctx, RunState* state, int32_t worker_id,
                  WorkerMetrics* metrics) {
  WorkerEnv env;
  env.faas = ctx;
  env.cloud = state->cloud;
  env.options = &state->options;
  env.metrics = metrics;
  env.worker_id = worker_id;
  env.abort = &state->abort;
  return env;
}

/// Invokes this worker's children per the launch strategy; each invoke call
/// costs the caller one invoke-API round trip (this is what makes the
/// hierarchical tree faster than a centralized loop).
Status InvokeChildren(cloud::FaasContext* ctx, RunState* state,
                      int32_t worker_id, WorkerMetrics* metrics) {
  const double start = ctx->sim()->Now();
  const std::vector<int32_t> children =
      ChildrenToInvoke(state->options.launch, worker_id,
                       state->options.branching, state->options.num_workers);
  Rng rng(state->options.seed ^ (0x9E37ull * (worker_id + 1)));
  for (int32_t child : children) {
    const double api =
        state->cloud->latency().faas_invoke_api.Sample(&rng);
    FSD_RETURN_IF_ERROR(ctx->SleepFor(api));
    cloud::FaasService::InvokeOutcome outcome =
        state->cloud->faas().InvokeAsync(
            state->worker_function, EncodeWorkerPayload(state->run_id, child));
    FSD_RETURN_IF_ERROR(outcome.status);
    ++state->workers_launched;
  }
  metrics->launch_children_s = ctx->sim()->Now() - start;
  return Status::OK();
}

}  // namespace

/// The budget is fixed by whichever run first touches the instance;
/// concurrent runs on one shared function should agree on it (they do by
/// construction: the budget is part of the serving function-group key).
PartitionCache* InstancePartitionCache(cloud::FaasContext* ctx,
                                       const FsdOptions& options) {
  if (!options.partition_cache ||
      options.partition_cache_budget_bytes == 0) {
    return nullptr;
  }
  // Cached shares live inside the instance's memory alongside the working
  // set, so the configured budget is capped at half the instance's actual
  // memory — a 1000 MB function cannot keep 2 GiB of shares resident, and
  // the simulation must not report hit ratios a real fleet could never
  // reach. Queries sharing a function group agree on the budget by
  // construction (it is part of the serving group key) and on the memory
  // (ditto), so every run sees the same effective budget here.
  const uint64_t memory_cap =
      static_cast<uint64_t>(ctx->memory_mb()) * 1024 * 1024 / 2;
  const uint64_t budget =
      std::min(options.partition_cache_budget_bytes, memory_cap);
  if (budget == 0) return nullptr;
  auto cache = std::static_pointer_cast<PartitionCache>(ctx->instance_state());
  if (cache == nullptr) {
    cache = std::make_shared<PartitionCache>(budget);
    ctx->set_instance_state(cache);
  }
  return cache.get();
}

namespace {

/// Models reading this worker's weight + map share from object storage
/// (multipart GETs on the IPC lanes) plus deserialization CPU. The actual
/// weight data is accessed from the shared in-memory model: storage holds
/// the bytes only notionally (phantom objects), which keeps the simulation
/// faithful on latency/billing without duplicating gigabytes.
///
/// Read-through partition cache: a warm instance that deserialized this
/// (family, partition) share at this version for an earlier query still
/// holds it in memory, so the read (and its GET billing) is skipped
/// entirely. On a miss with a ShareDistributor attached, the share is
/// pulled from a warm PEER holding it (λScale fast scaling) before paying
/// the storage front door. Neither layer changes the share's contents —
/// outputs stay byte-identical with caching and peer transfer on or off.
Status LoadModelShare(cloud::FaasContext* ctx, RunState* state,
                      int32_t worker_id, WorkerMetrics* metrics) {
  const double start = ctx->sim()->Now();
  const uint64_t bytes =
      state->partition->WeightShareBytes(*state->dnn, worker_id);
  const uint64_t parts = ModelReadGetParts(bytes);

  PartitionCache* cache = state->cache_family.empty()
                              ? nullptr
                              : InstancePartitionCache(ctx, state->options);
  if (cache != nullptr) {
    bool prewarmed = false;
    const PartitionCache::Lookup found =
        cache->Find(state->cache_family, worker_id,
                    state->options.model_version, &prewarmed);
    if (found == PartitionCache::Lookup::kHit) {
      ++metrics->cache_hits;
      if (prewarmed) ++metrics->prewarmed_hits;
      metrics->model_gets_saved += static_cast<int64_t>(parts);
      metrics->model_bytes_saved += static_cast<int64_t>(bytes);
      metrics->model_load_s = ctx->sim()->Now() - start;
      return Status::OK();
    }
    ++metrics->cache_misses;
    if (found == PartitionCache::Lookup::kStale) {
      ++metrics->cache_invalidations;
    }
  }

  // λScale fast path: a warm peer may already hold this share in memory.
  // Acquire either delivers it peer-to-peer (resident + billed + counted;
  // no storage read and no re-deserialization, the share moved in
  // deserialized form) or registers this worker as the share's pending
  // storage reader — in which case the read below MUST be resolved with
  // Publish/Abandon so waiting peers stop waiting.
  ShareDistributor* distributor =
      cache != nullptr ? state->share_distributor : nullptr;
  bool pending_publish = false;
  if (distributor != nullptr) {
    const ShareDistributor::Source source =
        distributor->Acquire(ctx, state->options, state->cache_family,
                             worker_id, bytes, metrics);
    if (source == ShareDistributor::Source::kPeer) {
      metrics->model_load_s = ctx->sim()->Now() - start;
      return Status::OK();
    }
    pending_publish = true;
  }

  auto& ledger = state->cloud->billing();
  ledger.Record(cloud::BillingDimension::kObjectGet,
                static_cast<double>(parts));
  metrics->model_get_parts += static_cast<int64_t>(parts);
  metrics->model_bytes_read += static_cast<int64_t>(bytes);
  Rng rng(state->options.seed ^ (0xA11Dull * (worker_id + 1)));
  std::vector<double> latencies;
  uint64_t remaining = bytes;
  for (uint64_t p = 0; p < parts; ++p) {
    const uint64_t part = std::min<uint64_t>(kModelReadPartBytes, remaining);
    remaining -= part;
    latencies.push_back(
        state->cloud->latency().object_get.Sample(&rng, part));
  }
  const double get_makespan =
      sim::ParallelMakespan(latencies, state->options.io_lanes);
  const double deser_s = static_cast<double>(bytes) /
                         state->cloud->compute().deserialize_bytes_per_s;
  // An interrupted read (deadline mid-transfer) must not populate the
  // cache: only a fully deserialized share is resident and reusable.
  const Status slept = ctx->SleepFor(get_makespan + deser_s);
  if (!slept.ok()) {
    if (pending_publish) {
      distributor->Abandon(state->cache_family, worker_id,
                           state->options.model_version);
    }
    return slept;
  }
  ++metrics->share_loads_storage;
  if (cache != nullptr) {
    const PartitionCache::InsertOutcome inserted = cache->Insert(
        state->cache_family, worker_id, state->options.model_version, bytes);
    metrics->cache_evictions += inserted.evicted;
    // An oversize reject is a future guaranteed miss, not a silent
    // success: it must show up in the hit-ratio story, and the registry
    // must never learn of a share the instance could not keep.
    if (!inserted.inserted) ++metrics->cache_oversize_rejects;
  }
  if (pending_publish) {
    distributor->Publish(ctx, state->options, state->cache_family,
                         worker_id);
  }
  metrics->model_load_s = ctx->sim()->Now() - start;
  return Status::OK();
}

/// One batch of the FSI loop for one worker (the body of Algorithms 1/2).
Status RunBatch(cloud::FaasContext* ctx, RunState* state,
                CommChannel* channel, int32_t worker_id, int32_t batch_index,
                WorkerMetrics* metrics) {
  const model::SparseDnn& dnn = *state->dnn;
  const part::ModelPartition& partition = *state->partition;
  const FsdOptions& options = state->options;
  const linalg::ActivationMap& full_input = *state->batches[batch_index];
  const int32_t layers = dnn.layers();
  const int32_t phase0 = batch_index * state->PhasesPerBatch();
  const int32_t batch =
      full_input.empty() ? 0 : full_input.begin()->second.dim;
  if (batch <= 0) return Status::InvalidArgument("empty input batch");

  // Worker's share of x^0: the input rows it owns.
  linalg::ActivationMap x;
  for (int32_t row : partition.owned_rows[worker_id]) {
    auto it = full_input.find(row);
    if (it != full_input.end() && !it->second.empty()) {
      x.emplace(row, it->second);
    }
  }

  double prev_layer_macs = 0.0;
  for (int32_t k = 0; k < layers; ++k) {
    if (state->abort) return Status::Unavailable("run aborted by a peer");
    const double layer_start = ctx->sim()->Now();
    const int32_t phase = phase0 + k;
    LayerMetrics& lm = metrics->Layer(phase);
    const part::LayerComm& comm = partition.layers[k];

    // --- sends (non-blocking; overlap with the local multiply) ---
    int64_t send_rows = 0;
    if (channel != nullptr) {
      std::vector<SendSpec> sends;
      sends.reserve(comm.send[worker_id].size());
      for (const part::SendEntry& entry : comm.send[worker_id]) {
        sends.push_back({entry.peer, &entry.rows});
        send_rows += static_cast<int64_t>(entry.rows.size());
      }
      WorkerEnv env = MakeEnv(ctx, state, worker_id, metrics);
      FSD_RETURN_IF_ERROR(channel->SendPhase(&env, phase, x, sends));
    }
    (void)send_rows;

    // --- local multiply overlap: charge the expected local-only fraction
    // of this layer's compute before blocking on receives (z = W_m x_m in
    // the paper). The estimate uses the previous layer's measured MACs
    // scaled by the fraction of needed rows that are local; any remainder
    // is charged after the real kernel runs, keeping total compute time
    // exact while modelling the overlap.
    double local_rows = static_cast<double>(x.size());
    double recv_rows_expected = 0.0;
    if (channel != nullptr) {
      for (const part::SendEntry& entry : comm.recv[worker_id]) {
        recv_rows_expected += static_cast<double>(entry.rows.size());
      }
    }
    const double local_fraction =
        (local_rows + recv_rows_expected) > 0.0
            ? local_rows / (local_rows + recv_rows_expected)
            : 1.0;
    const double pre_macs = prev_layer_macs * local_fraction * 0.9;
    if (pre_macs > 0.0) {
      FSD_RETURN_IF_ERROR(ctx->Burn(2.0 * pre_macs));
    }

    // --- receive x rows from peers ---
    linalg::ActivationMap received;
    if (channel != nullptr && !comm.recv[worker_id].empty()) {
      std::vector<int32_t> sources;
      sources.reserve(comm.recv[worker_id].size());
      for (const part::SendEntry& entry : comm.recv[worker_id]) {
        sources.push_back(entry.peer);
      }
      WorkerEnv env = MakeEnv(ctx, state, worker_id, metrics);
      FSD_ASSIGN_OR_RETURN(received,
                           channel->ReceivePhase(&env, phase, sources));
    }

    // --- full multiply + activation over owned rows (bit-identical to the
    // serial reference: one pass in CSR order over local + received) ---
    const linalg::ActivationMap* local = &x;
    const linalg::ActivationMap* remote = &received;
    const linalg::RowProvider provider =
        [local, remote](int32_t row) -> const linalg::SparseVector* {
      auto it = local->find(row);
      if (it != local->end()) return &it->second;
      auto jt = remote->find(row);
      if (jt != remote->end()) return &jt->second;
      return nullptr;
    };
    // Price the multiply BEFORE running it (the MAC count is determined by
    // the inputs alone), then run the kernel itself under that virtual
    // window via the compute-offload primitive: with compute_threads > 0
    // the spmm executes on a real pool thread while peers' events
    // dispatch, at 0 it runs inline at the window's end — either way the
    // window is the same, so virtual behaviour is byte-identical.
    const double macs = linalg::CountLayerMacs(
        dnn.weights[k], partition.owned_rows[worker_id], provider);
    const double post_macs = std::max(0.0, macs - pre_macs);
    const double kernel_s = state->cloud->compute().FaasComputeSeconds(
        2.0 * post_macs, ctx->memory_mb());
    linalg::LayerForwardStats stats;
    linalg::ActivationMap next;
    FSD_RETURN_IF_ERROR(ctx->OffloadFor(kernel_s, [&]() {
      next = linalg::LayerForward(dnn.weights[k],
                                  partition.owned_rows[worker_id], provider,
                                  dnn.config.bias, dnn.config.relu_cap, batch,
                                  &stats);
    }));
    // Activation FLOPs depend on the measured output NNZ, so they are
    // charged after the join.
    FSD_RETURN_IF_ERROR(ctx->Burn(static_cast<double>(stats.output_nnz)));
    prev_layer_macs = stats.macs;

    lm.offload_calls += 1;
    lm.offload_virtual_s += kernel_s;
    lm.compute_macs += stats.macs;
    lm.compute_s += state->cloud->compute().FaasComputeSeconds(
        2.0 * stats.macs + static_cast<double>(stats.output_nnz),
        ctx->memory_mb());
    lm.out_rows += stats.rows_produced;
    lm.out_nnz += stats.output_nnz;
    lm.layer_wall_s += ctx->sim()->Now() - layer_start;
    x = std::move(next);
  }

  // --- barrier(P_all) then reduce(P_0, x^L_m), Algorithm lines 19-20, run
  // over the configured collective topology (through-root reproduces the
  // legacy through-root traffic byte-for-byte) ---
  if (channel != nullptr && options.num_workers > 1) {
    const CollectiveTopology topology = options.collective_topology;
    const PhaseAllocator phases(
        phase0, layers, CollectiveRounds(topology, options.num_workers));
    WorkerEnv env = MakeEnv(ctx, state, worker_id, metrics);
    FSD_RETURN_IF_ERROR(
        Barrier(channel, &env, topology,
                phases.Block(CollectiveOp::kBarrierArrive),
                phases.Block(CollectiveOp::kBarrierRelease),
                options.num_workers));
    FSD_ASSIGN_OR_RETURN(
        linalg::ActivationMap gathered,
        Reduce(channel, &env, topology, phases.Block(CollectiveOp::kReduce),
               options.num_workers, x));
    if (worker_id == 0) {
      state->outputs[batch_index] = std::move(gathered);
    }
  } else if (worker_id == 0) {
    state->outputs[batch_index] = std::move(x);
  }
  return Status::OK();
}

}  // namespace

Bytes EncodeWorkerPayload(uint64_t run_id, int32_t worker_id) {
  Bytes out;
  codec::PutVarint64(&out, run_id);
  codec::PutVarint64(&out, static_cast<uint64_t>(worker_id));
  return out;
}

Result<WorkerPayload> DecodeWorkerPayload(const Bytes& payload) {
  ByteReader reader(payload);
  WorkerPayload decoded;
  FSD_ASSIGN_OR_RETURN(decoded.run_id, codec::GetVarint64(&reader));
  FSD_ASSIGN_OR_RETURN(uint64_t id, codec::GetVarint64(&reader));
  decoded.worker_id = static_cast<int32_t>(id);
  return decoded;
}

void RunFsiWorker(cloud::FaasContext* ctx, RunState* state,
                  int32_t worker_id) {
  if (worker_id < 0 || worker_id >= state->options.num_workers) {
    ctx->set_result(Status::InvalidArgument(
        StrFormat("worker id %d outside [0, %d)", worker_id,
                  state->options.num_workers)));
    ++state->workers_completed;
    state->MaybeQuiesce();
    return;
  }
  WorkerMetrics& metrics = state->metrics.workers[worker_id];
  metrics.worker_id = worker_id;
  metrics.start_time = ctx->sim()->Now();
  metrics.cold_start = ctx->cold_start();
  state->launch_complete_s =
      std::max(state->launch_complete_s, metrics.start_time);

  std::unique_ptr<CommChannel> channel =
      MakeCommChannel(state->options.variant);

  Status status = InvokeChildren(ctx, state, worker_id, &metrics);
  if (status.ok()) status = LoadModelShare(ctx, state, worker_id, &metrics);
  for (size_t b = 0; status.ok() && b < state->batches.size(); ++b) {
    status = RunBatch(ctx, state, channel.get(), worker_id,
                      static_cast<int32_t>(b), &metrics);
  }

  metrics.end_time = ctx->sim()->Now();
  state->worker_status[worker_id] = status;
  ctx->set_result(status);
  if (!status.ok()) {
    state->abort = true;
    FSD_LOG(kWarn, "worker %d failed: %s", worker_id,
            status.ToString().c_str());
  }
  if (worker_id == 0) state->done->Fire();
  ++state->workers_completed;
  state->MaybeQuiesce();
}

}  // namespace fsd::core
