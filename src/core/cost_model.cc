#include "core/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <utility>

#include "cloud/kvstore.h"
#include "cloud/queue.h"
#include "common/strings.h"
#include "core/serialization.h"

namespace fsd::core {

std::string CostBreakdown::ToString() const {
  return StrFormat("Comp. %s, Comms. %s, Total %s",
                   HumanDollars(compute).c_str(),
                   HumanDollars(communication).c_str(),
                   HumanDollars(total).c_str());
}

double FaasCost(const cloud::PricingConfig& pricing, int32_t num_workers,
                double mean_runtime_s, int32_t memory_mb) {
  return num_workers * pricing.faas_per_invocation +
         num_workers * mean_runtime_s * memory_mb * pricing.faas_per_mb_second;
}

CostBreakdown QueueCost(const cloud::PricingConfig& pricing,
                        int32_t num_workers, double mean_runtime_s,
                        int32_t memory_mb, double publish_chunks,
                        double delivery_bytes, double queue_api_calls) {
  CostBreakdown out;
  out.compute = FaasCost(pricing, num_workers, mean_runtime_s, memory_mb);
  out.communication = publish_chunks * pricing.pubsub_per_publish_chunk +
                      delivery_bytes * pricing.pubsub_per_byte +
                      queue_api_calls * pricing.queue_per_api_call;
  out.total = out.compute + out.communication;
  return out;
}

CostBreakdown ObjectCost(const cloud::PricingConfig& pricing,
                         int32_t num_workers, double mean_runtime_s,
                         int32_t memory_mb, double puts, double gets,
                         double lists) {
  CostBreakdown out;
  out.compute = FaasCost(pricing, num_workers, mean_runtime_s, memory_mb);
  out.communication = puts * pricing.object_per_put +
                      gets * pricing.object_per_get +
                      lists * pricing.object_per_list;
  out.total = out.compute + out.communication;
  return out;
}

CostBreakdown KvCost(const cloud::PricingConfig& pricing, int32_t num_workers,
                     double mean_runtime_s, int32_t memory_mb,
                     double requests, double processed_bytes,
                     double node_seconds) {
  CostBreakdown out;
  out.compute = FaasCost(pricing, num_workers, mean_runtime_s, memory_mb);
  out.communication = requests * pricing.kv_per_request +
                      processed_bytes * pricing.kv_per_processed_byte +
                      node_seconds * pricing.kv_node_hourly / 3600.0;
  out.total = out.compute + out.communication;
  return out;
}

CostBreakdown DirectCost(const cloud::PricingConfig& pricing,
                         int32_t num_workers, double mean_runtime_s,
                         int32_t memory_mb, double connections,
                         double direct_bytes, double relay_requests,
                         double relay_processed_bytes) {
  CostBreakdown out;
  out.compute = FaasCost(pricing, num_workers, mean_runtime_s, memory_mb);
  out.communication = connections * pricing.p2p_per_connection +
                      direct_bytes * pricing.p2p_per_byte +
                      relay_requests * pricing.kv_per_request +
                      relay_processed_bytes * pricing.kv_per_processed_byte;
  out.total = out.compute + out.communication;
  return out;
}

CostBreakdown SerialCost(const cloud::PricingConfig& pricing,
                         double runtime_s, int32_t memory_mb) {
  CostBreakdown out;
  out.compute = FaasCost(pricing, 1, runtime_s, memory_mb);
  out.total = out.compute;
  return out;
}

double ShareTransferCost(const cloud::PricingConfig& pricing,
                         int64_t peer_connects, int64_t peer_bytes,
                         int64_t relay_requests, int64_t relay_bytes) {
  return static_cast<double>(peer_connects) * pricing.p2p_per_connection +
         static_cast<double>(peer_bytes) * pricing.p2p_per_byte +
         static_cast<double>(relay_requests) * pricing.kv_per_request +
         static_cast<double>(relay_bytes) * pricing.kv_per_processed_byte;
}

ShareTransferEstimate EstimateShareTransfer(
    const cloud::PricingConfig& pricing, const cloud::LatencyConfig& latency,
    const cloud::ComputeModelConfig& compute, uint64_t share_bytes,
    uint64_t relay_chunk_bytes) {
  ShareTransferEstimate est;
  const double bytes = static_cast<double>(share_bytes);

  // Storage path: multipart GETs priced per request, then the read is
  // deserialized into the in-memory representation.
  const double parts =
      static_cast<double>(ModelReadGetParts(share_bytes));
  est.storage_cost = parts * pricing.object_per_get;
  est.storage_load_s = latency.object_get.median_s +
                       bytes / latency.object_get.bytes_per_s +
                       bytes / compute.deserialize_bytes_per_s;

  // Peer path: an expected blend of the punched fabric (one connection +
  // bytes, memory-to-memory so no re-deserialization) and the KV relay
  // (value-capped chunks billed per request and per processed byte, both
  // directions) at the environment's punch-failure rate.
  const double f = latency.p2p_punch_failure_rate;
  const double punched_cost =
      pricing.p2p_per_connection + bytes * pricing.p2p_per_byte;
  const double chunk =
      static_cast<double>(relay_chunk_bytes > 0 ? relay_chunk_bytes : 1);
  const double chunks = std::max(1.0, std::ceil(bytes / chunk));
  const double pops = std::ceil(chunks / cloud::kMaxValuesPerPop);
  const double relay_cost = (chunks + pops) * pricing.kv_per_request +
                            2.0 * bytes * pricing.kv_per_processed_byte;
  est.peer_cost = (1.0 - f) * punched_cost + f * relay_cost;

  const double punched_s = latency.p2p_setup.median_s +
                           latency.p2p_send.median_s +
                           bytes / latency.p2p_bandwidth_bytes_per_s;
  const double relay_s = latency.kv_push.median_s + latency.kv_pop.median_s +
                         bytes / latency.kv_push.bytes_per_s +
                         bytes / latency.kv_pop.bytes_per_s;
  est.peer_load_s = (1.0 - f) * punched_s + f * relay_s;
  est.peer_cheaper = est.peer_cost < est.storage_cost;
  return est;
}

namespace {

/// Adds the model-share load terms to a variant's IPC breakdown: the share
/// GETs actually issued (cache hits issued none) at C_S3(Get), plus the
/// peer-transfer charges when misses resolved from warm peers instead
/// (ShareTransferCost over the run's share-transfer mirrors). Kept for
/// every variant — queue/KV runs read their shares from object storage
/// (or peers) too, which is why the ledger shows those dimensions moving
/// for them.
CostBreakdown AddModelReads(CostBreakdown cost,
                            const cloud::PricingConfig& pricing,
                            const RunMetrics& metrics) {
  const double model_read_cost =
      static_cast<double>(metrics.model_get_parts) * pricing.object_per_get;
  const double transfer_cost = ShareTransferCost(
      pricing, metrics.share_peer_connects, metrics.share_peer_bytes,
      metrics.share_relay_requests, metrics.share_relay_bytes);
  cost.communication += model_read_cost + transfer_cost;
  cost.total += model_read_cost + transfer_cost;
  return cost;
}

/// Per-query attribution under cross-query batching: a member of a shared
/// worker tree is billed its batch share of the P invocations, not all P
/// (FaasCost's per-invocation term assumed one tree per query). Worker
/// durations in a member's sliced metrics are already share-scaled, so the
/// runtime term needs no correction; member predictions then sum exactly to
/// the whole tree's prediction and workload-level predictions keep
/// reconciling with the ledger.
CostBreakdown ApplyTreeShare(CostBreakdown cost,
                             const cloud::PricingConfig& pricing,
                             const FsdOptions& options,
                             const RunMetrics& metrics) {
  if (metrics.tree_share >= 1.0) return cost;
  const double credit = (1.0 - metrics.tree_share) * options.num_workers *
                        pricing.faas_per_invocation;
  cost.compute -= credit;
  cost.total -= credit;
  return cost;
}

}  // namespace

CostBreakdown PredictFromMetrics(const cloud::PricingConfig& pricing,
                                 const FsdOptions& options,
                                 const RunMetrics& metrics,
                                 int32_t memory_mb) {
  const LayerMetrics& t = metrics.totals;
  switch (options.variant) {
    case Variant::kSerial:
      return ApplyTreeShare(
          AddModelReads(SerialCost(pricing, metrics.mean_worker_s, memory_mb),
                        pricing, metrics),
          pricing, options, metrics);
    case Variant::kQueue: {
      // Z: bytes delivered from pub-sub to queues. Measured runs carry the
      // exact billed bytes (payload + per-message attribute envelope) in
      // send_billed_bytes; hand-built metrics (unit tests, estimates) fall
      // back to the mean-envelope approximation over the wire bytes — or,
      // when only raw bytes were recorded, over the measured send-path
      // compression ratio instead of the a-priori guess.
      const double wire_bytes =
          t.send_wire_bytes > 0
              ? static_cast<double>(t.send_wire_bytes)
              : static_cast<double>(t.send_raw_bytes) *
                    MeasuredCompressRatio(t, options);
      const double delivery_bytes =
          t.send_billed_bytes > 0
              ? static_cast<double>(t.send_billed_bytes)
              : wire_bytes + static_cast<double>(t.send_chunks) * 96.0;
      const double api_calls = static_cast<double>(t.polls + t.deletes);
      return ApplyTreeShare(
          AddModelReads(
              QueueCost(pricing, options.num_workers, metrics.mean_worker_s,
                        memory_mb, static_cast<double>(t.publish_chunks),
                        delivery_bytes, api_calls),
              pricing, metrics),
          pricing, options, metrics);
    }
    case Variant::kObject:
      return ApplyTreeShare(
          AddModelReads(
              ObjectCost(pricing, options.num_workers, metrics.mean_worker_s,
                         memory_mb,
                         static_cast<double>(t.puts_dat + t.puts_nul),
                         static_cast<double>(t.gets),
                         static_cast<double>(t.lists)),
              pricing, metrics),
          pricing, options, metrics);
    case Variant::kKv: {
      // B: processed bytes, both directions. Measured runs carry the exact
      // billed bytes (values incl. chunk headers, as pushed and as popped)
      // in send/recv_billed_bytes; hand-built metrics fall back to wire
      // bytes plus the ~3-byte (source, seq, total) header per chunk per
      // direction. Node seconds are billed at namespace teardown, outside
      // the per-run metrics, so they are not predicted here.
      const double fallback_wire =
          t.send_wire_bytes + t.recv_wire_bytes > 0
              ? static_cast<double>(t.send_wire_bytes + t.recv_wire_bytes)
              : 2.0 * static_cast<double>(t.send_raw_bytes) *
                    MeasuredCompressRatio(t, options);
      const double processed =
          t.send_billed_bytes + t.recv_billed_bytes > 0
              ? static_cast<double>(t.send_billed_bytes +
                                    t.recv_billed_bytes)
              : fallback_wire + static_cast<double>(t.send_chunks) * 6.0;
      return ApplyTreeShare(
          AddModelReads(
              KvCost(pricing, options.num_workers, metrics.mean_worker_s,
                     memory_mb, static_cast<double>(t.kv_pushes + t.kv_pops),
                     processed, /*node_seconds=*/0.0),
              pricing, metrics),
          pricing, options, metrics);
    }
    case Variant::kDirect: {
      // Every term mirrors what the run actually recorded: the fabric
      // bills one connection per successful punch (direct_connects) and
      // per byte shipped over links (direct_billed_bytes); pairs that
      // failed to punch relayed through the KV cache, whose traffic lives
      // in the same kv_pushes/kv_pops + send/recv_billed_bytes counters a
      // KV run uses — so the relay terms reconcile with the ledger the
      // same way FSD-Inf-KV's do.
      const double relay_requests =
          static_cast<double>(t.kv_pushes + t.kv_pops);
      const double relay_processed =
          static_cast<double>(t.send_billed_bytes + t.recv_billed_bytes);
      return ApplyTreeShare(
          AddModelReads(
              DirectCost(pricing, options.num_workers, metrics.mean_worker_s,
                         memory_mb, static_cast<double>(t.direct_connects),
                         static_cast<double>(t.direct_billed_bytes),
                         relay_requests, relay_processed),
              pricing, metrics),
          pricing, options, metrics);
    }
  }
  return {};
}

ModelReadEstimate EstimateModelReads(const cloud::PricingConfig& pricing,
                                     const model::SparseDnn& dnn,
                                     const part::ModelPartition& partition,
                                     double hit_ratio) {
  ModelReadEstimate est;
  const double h = std::min(1.0, std::max(0.0, hit_ratio));
  double total_parts = 0.0;
  for (int32_t m = 0; m < partition.num_parts; ++m) {
    total_parts += static_cast<double>(
        ModelReadGetParts(partition.WeightShareBytes(dnn, m)));
  }
  est.gets_saved = total_parts * h;
  est.get_parts = total_parts - est.gets_saved;
  est.cost = est.get_parts * pricing.object_per_get;
  est.savings = est.gets_saved * pricing.object_per_get;
  return est;
}

double EstimateWireRatio(const FsdOptions& options) {
  const double lossless = options.compress ? kAprioriCompressRatio : 1.0;
  if (options.quant_bits == 0) return lossless;
  // Per nonzero: ~2 structure bytes stay lossless-coded; the 4 value bytes
  // become quant_bits/8 packed bytes.
  const double structure = 2.0 * lossless;
  const double values = static_cast<double>(options.quant_bits) / 8.0;
  return (structure + values) / 6.0;
}

double MeasuredCompressRatio(const LayerMetrics& totals,
                             const FsdOptions& options) {
  if (totals.send_raw_bytes > 0 && totals.send_wire_bytes > 0) {
    return static_cast<double>(totals.send_wire_bytes) /
           static_cast<double>(totals.send_raw_bytes);
  }
  return EstimateWireRatio(options);
}

QuantBreakEvenEstimate EstimateQuantBreakEven(
    const cloud::PricingConfig& pricing,
    const cloud::ComputeModelConfig& compute, const FsdOptions& options,
    Variant variant, int32_t memory_mb, double raw_bytes_per_query,
    int32_t quant_bits) {
  QuantBreakEvenEstimate est;
  FsdOptions lossless = options;
  lossless.quant_bits = 0;
  FsdOptions quantized = options;
  quantized.quant_bits = quant_bits;
  est.lossless_wire_bytes = raw_bytes_per_query * EstimateWireRatio(lossless);
  est.quant_wire_bytes = raw_bytes_per_query * EstimateWireRatio(quantized);
  est.bytes_saved = est.lossless_wire_bytes - est.quant_wire_bytes;

  // What one wire byte costs on this variant's metered dimension: pub-sub
  // delivery bytes (queue), processed bytes in both directions (KV), link
  // bytes (direct). Object storage and serial bill per request only.
  double per_byte = 0.0;
  switch (variant) {
    case Variant::kQueue:
      per_byte = pricing.pubsub_per_byte;
      break;
    case Variant::kKv:
      per_byte = 2.0 * pricing.kv_per_processed_byte;
      break;
    case Variant::kDirect:
      per_byte = pricing.p2p_per_byte;
      break;
    case Variant::kObject:
    case Variant::kSerial:
      break;
  }
  est.byte_dollars_saved = est.bytes_saved * per_byte;

  // The quantize pass re-scans the raw payload on the send side, billed as
  // FaaS MB-seconds (ChargeSerializeCpu's surcharge).
  const double cpu_s = raw_bytes_per_query / compute.quant_bytes_per_s;
  est.cpu_dollars_added = cpu_s * memory_mb * pricing.faas_per_mb_second;
  est.net_saving = est.byte_dollars_saved - est.cpu_dollars_added;
  est.worthwhile = est.net_saving > 0.0;
  return est;
}

WorkloadEstimate EstimateWorkload(const model::SparseDnn& dnn,
                                  const part::ModelPartition& partition,
                                  const FsdOptions& options,
                                  double activation_density, int32_t batch) {
  WorkloadEstimate est;
  const double per_row_bytes =
      static_cast<double>(EstimateRowBytes(static_cast<int64_t>(
          std::max(1.0, activation_density * batch))));
  const double compress_ratio = EstimateWireRatio(options);

  int64_t pairs = 0;  // (source, target) pairs across layers
  // Punching is mutual (one physical link per unordered pair), so the
  // connection estimate collapses both directions onto one key — matching
  // the fabric, which bills one kP2pConnection per pair.
  std::set<std::pair<int32_t, int32_t>> distinct_pairs;
  auto link_key = [](int32_t a, int32_t b) {
    return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
  };
  int32_t source = 0;
  for (const part::LayerComm& layer : partition.layers) {
    source = 0;
    for (const auto& sends : layer.send) {
      pairs += static_cast<int64_t>(sends.size());
      for (const part::SendEntry& entry : sends) {
        distinct_pairs.insert(link_key(source, entry.peer));
        const double rows_active =
            static_cast<double>(entry.rows.size()) * activation_density;
        const double bytes = rows_active * per_row_bytes * compress_ratio;
        est.est_bytes_per_batch += bytes;
        // Queue: chunks of max_message_bytes, billed per 64 KiB.
        const double chunks = std::max(
            1.0, std::ceil(bytes / static_cast<double>(
                                       options.max_message_bytes)));
        est.publish_chunks +=
            std::max(chunks, std::ceil(bytes / (64.0 * 1024.0)));
        est.delivery_bytes += bytes;
        // Object: one PUT per pair; one GET per non-empty pair.
        est.puts += 1.0;
        est.gets += (rows_active >= 0.5) ? 1.0 : 0.0;
        // KV: value-capped pushes plus the processed bytes (both
        // directions pass through the cache).
        est.kv_requests += std::max(
            1.0, std::ceil(bytes / static_cast<double>(
                                       options.kv_max_value_bytes)));
        est.kv_processed_bytes += 2.0 * bytes;
        // Direct: same value-capped chunking as KV (relayed chunks must
        // fit the cache); bytes counted once — links bill at send only.
        est.direct_messages += std::max(
            1.0, std::ceil(bytes / static_cast<double>(
                                       options.kv_max_value_bytes)));
        est.direct_bytes += bytes;
      }
      ++source;
    }
  }
  // The barrier + reduce tail also exercises every {m, root} pair.
  for (int32_t m = 1; m < partition.num_parts; ++m) {
    distinct_pairs.insert(link_key(m, 0));
  }
  est.direct_connections = static_cast<double>(distinct_pairs.size());
  // Publishes can batch ~min(10, targets) messages; polls retrieve up to 10
  // messages when saturated; both scale with pair count.
  est.queue_api_calls = 2.2 * static_cast<double>(pairs) /
                        static_cast<double>(cloud::kMaxMessagesPerReceive) *
                        10.0 / 4.0;
  // KV pops drain many values per call; ~one pop per pair covers waits.
  est.kv_requests += 1.2 * static_cast<double>(pairs);
  // LISTs: a few scans per worker-layer until peers publish.
  est.lists = 1.8 * static_cast<double>(dnn.layers()) * partition.num_parts;
  (void)pairs;
  return est;
}

double EstimateQueryLatency(const model::SparseDnn& dnn,
                            const FsdOptions& options,
                            const cloud::LatencyConfig& latency,
                            const cloud::ComputeModelConfig& compute,
                            double activation_density, int32_t batch,
                            Variant variant, int32_t workers) {
  const int32_t memory_mb = DefaultWorkerMemoryMb(dnn.neurons(), variant);

  const double flops = 2.0 * static_cast<double>(dnn.TotalNnz()) * batch *
                       activation_density;
  const double model_bytes = static_cast<double>(dnn.WeightBytes());

  // Launch: tree depth levels of (invoke + cold start).
  double launch = latency.faas_cold_start.median_s;
  if (workers > 1) {
    const double depth = std::ceil(
        std::log(static_cast<double>(workers)) /
        std::log(static_cast<double>(std::max(2, options.branching))));
    launch += depth * (latency.faas_cold_start.median_s +
                       options.branching * latency.faas_invoke_api.median_s);
  }

  // Model share load (parallel multipart GETs) + deserialization.
  const double share_bytes = model_bytes / workers;
  const double load =
      latency.object_get.median_s +
      share_bytes / latency.object_get.bytes_per_s / options.io_lanes +
      share_bytes / compute.deserialize_bytes_per_s;

  // Compute: evenly partitioned (hypergraph balancing) across workers.
  const double compute_s =
      compute.FaasComputeSeconds(flops / workers, memory_mb);
  if (variant == Variant::kSerial || workers == 1) {
    return launch + load + compute_s;
  }

  // Communication: volume scales with the cross-worker activation rows.
  // With the structured models ~min(1, P/8) of rows cross boundaries.
  const double cross_fraction = std::min(1.0, workers / 8.0) * 0.35;
  const double bytes_per_layer = static_cast<double>(dnn.neurons()) *
                                 cross_fraction * activation_density * batch *
                                 6.0 * EstimateWireRatio(options);
  const double per_worker_layer_bytes = bytes_per_layer / workers;
  double per_layer_comm;
  if (variant == Variant::kDirect) {
    // Established links carry sub-millisecond sends with no managed-service
    // hop; the punch-failed fraction of pairs relays through the KV cache
    // at its op latency. The one-time hole-punch setup overlaps the model
    // share load, so it only shows when loads are faster than punches.
    const double relay = std::min(
        1.0, std::max(0.0, latency.p2p_punch_failure_rate));
    const double chunks = std::max(
        1.0, per_worker_layer_bytes / static_cast<double>(
                                          options.kv_max_value_bytes));
    const double sends = chunks * (1.0 - relay) * latency.p2p_send.median_s /
                         std::max(1, options.io_lanes);
    const double relay_ops =
        chunks * relay * latency.kv_push.median_s /
            std::max(1, options.io_lanes) +
        (relay > 0.0 ? latency.kv_pop.median_s : 0.0);
    per_layer_comm =
        sends + latency.p2p_send.median_s + relay_ops +
        per_worker_layer_bytes * (1.0 - relay) /
            latency.p2p_bandwidth_bytes_per_s +
        per_worker_layer_bytes * relay / latency.kv_pop.bytes_per_s;
    const double setup = latency.p2p_setup.median_s;
    const double per_layer_compute_d = compute_s / dnn.layers();
    const double per_layer_d = std::max(per_layer_compute_d,
                                        per_layer_comm * 0.5) +
                               per_layer_comm * 0.5;
    return launch + std::max(load, setup) + per_layer_d * dnn.layers();
  }
  if (variant == Variant::kKv) {
    // Sub-millisecond push/pop round trips; pops drain many values, so the
    // receive side pays ~one op plus the transfer tail.
    const double chunks = std::max(
        1.0, per_worker_layer_bytes / static_cast<double>(
                                          options.kv_max_value_bytes));
    const double pushes = chunks * latency.kv_push.median_s /
                          std::max(1, options.io_lanes);
    const double pops = std::max(1.0, chunks / cloud::kMaxValuesPerPop) *
                        latency.kv_pop.median_s;
    per_layer_comm = pushes + latency.kv_pop.median_s + pops +
                     per_worker_layer_bytes / latency.kv_pop.bytes_per_s;
  } else if (variant == Variant::kQueue) {
    const double chunks = std::max(
        1.0, per_worker_layer_bytes / static_cast<double>(
                                          options.max_message_bytes));
    const double publish = chunks / 10.0 * latency.pubsub_publish.median_s /
                           std::max(1, options.io_lanes);
    const double polls =
        std::max(1.0, chunks / 10.0) * latency.queue_receive.median_s;
    per_layer_comm = publish + latency.pubsub_fanout.median_s + polls +
                     per_worker_layer_bytes / latency.pubsub_fanout.bytes_per_s;
  } else {
    const double gets = std::max(1.0, std::min<double>(workers - 1, 8));
    per_layer_comm = latency.object_put.median_s +
                     latency.object_list.median_s * 1.5 +
                     gets * latency.object_get.median_s /
                         std::max(1, options.io_lanes) +
                     per_worker_layer_bytes / latency.object_get.bytes_per_s;
  }
  // Compute overlaps the sends; the receive tail adds to each layer.
  const double per_layer_compute = compute_s / dnn.layers();
  const double per_layer =
      std::max(per_layer_compute, per_layer_comm * 0.5) + per_layer_comm * 0.5;
  return launch + load + per_layer * dnn.layers();
}

ThroughputEstimate EstimateSustainableThroughput(
    const model::SparseDnn& dnn, const FsdOptions& options,
    const cloud::LatencyConfig& latency,
    const cloud::ComputeModelConfig& compute, double activation_density,
    int32_t batch, int32_t max_concurrent_runs, double expected_occupancy) {
  ThroughputEstimate est;
  est.queries_per_run = std::max(1.0, expected_occupancy);
  const int32_t workers = std::max(1, options.num_workers);
  est.est_run_s = EstimateQueryLatency(
      dnn, options, latency, compute,
      std::max(0.0, std::min(1.0, activation_density)), std::max(1, batch),
      options.variant, workers);
  if (max_concurrent_runs <= 0) {
    est.sustainable_qps = std::numeric_limits<double>::infinity();
  } else if (est.est_run_s > 0.0) {
    est.sustainable_qps = static_cast<double>(max_concurrent_runs) *
                          est.queries_per_run / est.est_run_s;
  }
  return est;
}

Variant RecommendVariant(const model::SparseDnn& dnn, int32_t num_workers,
                         const WorkloadEstimate& estimate) {
  // §IV-C: single-instance execution when the model fits comfortably into
  // the largest FaaS instance (10240 MB, with working-memory headroom).
  const double model_gb =
      static_cast<double>(dnn.WeightBytes()) / (1024.0 * 1024.0 * 1024.0);
  if (num_workers <= 1 || model_gb < 4.0) return Variant::kSerial;
  // Queue until data volumes consistently need multiple publishes per
  // target (payload saturation); object storage beyond.
  const double pairs = std::max(1.0, estimate.puts);
  const double avg_bytes_per_pair = estimate.est_bytes_per_batch / pairs;
  if (avg_bytes_per_pair < 2.0 * 256.0 * 1024.0) return Variant::kQueue;
  return Variant::kObject;
}

}  // namespace fsd::core
