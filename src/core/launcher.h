// Hierarchical function-launch mechanism (paper §II-B objective 2, §III).
//
// Workers form an invocation tree: each internal node invokes its subtree
// before starting its own compute role, so the fully-populated tree of P
// instances starts in O(log_b P) sequential invoke hops instead of the O(P)
// of a centralized launch loop. worker_invoke_children() derives a worker's
// children from its own id, the branching factor and P — no central state.
#ifndef FSD_CORE_LAUNCHER_H_
#define FSD_CORE_LAUNCHER_H_

#include <cstdint>
#include <vector>

#include "core/fsd_config.h"

namespace fsd::core {

/// Children of `worker_id` in a complete b-ary tree over ids [0, P).
std::vector<int32_t> TreeChildren(int32_t worker_id, int32_t branching,
                                  int32_t num_workers);

/// Parent of `worker_id` in the same tree (-1 for the root).
int32_t TreeParent(int32_t worker_id, int32_t branching);

/// Which workers `worker_id` must invoke under `strategy`:
///  - hierarchical: its b-ary tree children
///  - two-level:    root invokes ~sqrt(P-1) managers, each manager invokes
///                  its contiguous slice of leaves (Lambada-style)
///  - centralized:  nobody (the coordinator invokes all workers directly)
std::vector<int32_t> ChildrenToInvoke(LaunchStrategy strategy,
                                      int32_t worker_id, int32_t branching,
                                      int32_t num_workers);

/// Workers the COORDINATOR invokes directly under `strategy` (the root for
/// tree strategies; everyone for centralized).
std::vector<int32_t> CoordinatorInvokes(LaunchStrategy strategy,
                                        int32_t num_workers);

}  // namespace fsd::core

#endif  // FSD_CORE_LAUNCHER_H_
