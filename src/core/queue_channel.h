// QueueChannel — FSD-Inf-Queue (paper §III-A, Algorithm 1, Figure 2).
//
// Send path: activation rows are packed into size-capped byte strings with
// the NNZ heuristic, grouped into <=10-message / <=256 KiB publish batches
// (reducing API calls and cost), and published to topic-{m % num_topics}.
// Service-side filter policies fan each message out to the dedicated queue
// of its target worker, so consumers never parse unwanted messages.
// Publishing is modelled on the worker's IPC thread pool: the worker pays
// serialization CPU, while the publish API calls run on parallel lanes that
// overlap the subsequent local compute.
//
// Receive path: the worker long-polls its own queue (up to 10 messages per
// receive), stashes messages belonging to other phases (a fast upstream
// worker may already be sending layer k+1), deduplicates redeliveries, and
// deletes consumed messages. Per-source chunk counts ride in message
// attributes so the worker knows when a source is complete.
#ifndef FSD_CORE_QUEUE_CHANNEL_H_
#define FSD_CORE_QUEUE_CHANNEL_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/channel.h"
#include "core/serialization.h"

namespace fsd::core {

class QueueChannel : public CommChannel {
 public:
  /// Binds the channel to one worker's execution (stash state is per
  /// worker). Resources must have been provisioned beforehand.
  QueueChannel() = default;

  /// Pre-creates topics, per-worker queues and filter-policy subscriptions
  /// (offline step; no inference-time cost, matching the paper).
  static Status Provision(cloud::CloudEnv* cloud, const FsdOptions& options);

  static std::string TopicName(int32_t source, const FsdOptions& options);
  static std::string QueueName(int32_t worker, const FsdOptions& options);

  std::string_view name() const override { return "queue"; }

  Status SendPhase(WorkerEnv* env, int32_t phase,
                   const linalg::ActivationMap& source,
                   const std::vector<SendSpec>& sends) override;

  Result<linalg::ActivationMap> ReceivePhase(
      WorkerEnv* env, int32_t phase,
      const std::vector<int32_t>& sources) override;

 private:
  struct ParsedMessage {
    int32_t source = 0;
    int32_t seq = 0;
    int32_t total = 0;
    Bytes body;
  };

  /// Messages that arrived while receiving a different phase.
  std::map<int32_t, std::vector<ParsedMessage>> stash_;
  /// (phase, source, seq) already consumed — redelivery dedup.
  std::set<std::tuple<int32_t, int32_t, int32_t>> seen_;
};

}  // namespace fsd::core

#endif  // FSD_CORE_QUEUE_CHANNEL_H_
