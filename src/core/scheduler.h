// Serving scheduler policies: the pluggable stages of the ServingRuntime
// pipeline (Admission -> QueuePolicy -> Batcher -> Dispatcher).
//
// FSD-Inference targets sporadic, bursty workloads; when the arrival rate
// exceeds the deployment's sustainable throughput, an unconditional serving
// loop lets the queue — and every accepted query's latency — grow without
// bound. These policies make the overload behaviour explicit and
// composable: admission decides WHETHER a query enters the queue (typed
// rejection instead of silent degradation), the queue policy decides the
// ORDER queued work launches in (and who is shed first), and the batch
// policy decides WHEN a coalescing batch stops waiting for peers
// (deadline-slack-driven instead of a fixed window). Every policy is pure
// decision logic over plain structs — no simulation, no worker trees — so
// each is unit-testable in isolation (tests/scheduler_test.cc) and
// swappable through ServingOptions without touching the runtime.
//
// The fourth stage, the Dispatcher, is the slot-bounded launch gate; its
// pure bookkeeping half (DispatchGate) lives here too, while the actual
// process scheduling stays in the serving runtime.
#ifndef FSD_CORE_SCHEDULER_H_
#define FSD_CORE_SCHEDULER_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace fsd::core {

/// Absolute deadline value meaning "this query carries no SLO deadline".
inline constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

/// Margin the deadline batcher applies to the predicted execution time
/// when computing flush slack: flushing at deadline - est_exec would
/// finish exactly on the deadline if the prediction were perfect, so any
/// underestimate becomes a miss. 1.5x absorbs the typical error of the
/// coarse a-priori estimate until the EWMA takes over.
inline constexpr double kSlackSafetyFactor = 1.5;

/// What happens to the newest arrival when the admitted-but-unlaunched
/// queue is at its depth bound.
enum class ShedPolicy : int {
  /// The arriving query is rejected; queued queries are never disturbed.
  kRejectNew = 0,
  /// The lowest-priority queued query is shed to make room when the
  /// arrival outranks it; otherwise the arrival is rejected.
  kShedLowestPriority = 1,
};

/// Launch order of admitted-but-unlaunched work.
enum class QueueDiscipline : int {
  kFifo = 0,  ///< arrival order (the pre-scheduler behaviour)
  kEdf = 1,   ///< earliest absolute deadline first; ties by arrival
};

std::string_view ShedPolicyName(ShedPolicy policy);
std::string_view QueueDisciplineName(QueueDiscipline discipline);

struct SchedQuery;

/// The canonical shed-victim rule, shared by QueuePolicy::ShedVictim and
/// the built-in admission policy (one definition so the tested rule and
/// the live shedding path can never drift): lowest priority first, then
/// latest deadline, then latest arrival — the queued query whose loss
/// costs the SLO least. `queue` must be non-empty.
size_t ShedVictimIndex(const std::vector<SchedQuery>& queue);

/// The scheduler's view of one query: everything a policy may decide on,
/// nothing it may not (no model pointers, no outputs).
struct SchedQuery {
  uint64_t query_id = 0;
  double arrival_s = 0.0;           ///< virtual submission time
  double deadline_s = kNoDeadline;  ///< absolute SLO deadline
  int32_t priority = 0;             ///< higher = more important
  int32_t tenant = 0;               ///< tenant id (0 = default tenant)
  int32_t cols = 0;                 ///< sample columns (size proxy)
};

/// Live load snapshot the admission policy decides on: queue state plus
/// the sustainable-throughput estimate (cost-model a-priori, refined by the
/// EWMA of observed run times once runs complete).
struct LoadSnapshot {
  double now_s = 0.0;
  int32_t queued = 0;            ///< admitted, not yet launched
  int32_t in_flight_runs = 0;    ///< worker trees currently executing
  int32_t max_concurrent_runs = 0;  ///< dispatcher slot bound (0 = none)
  double est_run_s = 0.0;        ///< per-tree execution-time estimate
  double ewma_service_rate_qps = 0.0;  ///< observed completions per second
  /// Queries/s the deployment can sustain (kUnbounded slots => +inf).
  double sustainable_qps = std::numeric_limits<double>::infinity();
};

/// Typed admission verdict. kShedVictim admits the arrival at the cost of
/// evicting `victim_query_id` from the queue (the runtime marks the victim
/// QueryDisposition::kShed with `reason`).
struct AdmissionDecision {
  enum class Action : int { kAdmit = 0, kReject = 1, kShedVictim = 2 };
  Action action = Action::kAdmit;
  std::string reason;            ///< set for kReject / kShedVictim
  uint64_t victim_query_id = 0;  ///< set for kShedVictim
};

/// Stage 1: decides whether an arriving query may enter the queue.
class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;
  virtual std::string_view name() const = 0;
  /// `queue` is the current admitted-but-unlaunched set (victim pool for
  /// shedding); decisions must be a pure function of the arguments so
  /// identical traces produce identical outcomes.
  virtual AdmissionDecision Decide(const SchedQuery& arrival,
                                   const LoadSnapshot& load,
                                   const std::vector<SchedQuery>& queue) = 0;
};

/// Stage 2: launch ordering and shed-victim selection over queued work.
class QueuePolicy {
 public:
  virtual ~QueuePolicy() = default;
  virtual std::string_view name() const = 0;
  /// Strict-weak order: should `a` launch before `b`?
  virtual bool Before(const SchedQuery& a, const SchedQuery& b) const = 0;
  /// Stable-sorts `queue` into launch order.
  void Order(std::vector<SchedQuery>* queue) const;
  /// Index of the queued query to shed first under overload: lowest
  /// priority, then latest deadline, then latest arrival (the member whose
  /// loss costs the SLO least). `queue` must be non-empty.
  virtual size_t ShedVictim(const std::vector<SchedQuery>& queue) const;
};

/// Stage 3: how much longer a coalescing batch may keep waiting for peers
/// before it must launch.
class BatchPolicy {
 public:
  virtual ~BatchPolicy() = default;
  virtual std::string_view name() const = 0;
  /// Seconds the batch may still wait from `now_s` (<= 0 means flush
  /// immediately). `members` is the batch so far (first member joined
  /// first), `window_s` the configured coalescing window, `est_exec_s` the
  /// predicted execution time of the batch's worker tree.
  virtual double FlushIn(const std::vector<SchedQuery>& members, double now_s,
                         double window_s, double est_exec_s) const = 0;
};

/// What the pre-warm policy sees at one arrival of a model family: the
/// family's live demand estimate (EWMA arrival rate x per-tree service
/// time, in instances via Little's law), the warm supply already standing,
/// and the dollars the policy may still commit. Pure inputs — the serving
/// runtime assembles them from its EWMAs, the FaaS warm pool and the cost
/// model's share-transfer break-even estimate.
struct PrewarmSnapshot {
  double now_s = 0.0;
  double arrival_rate_qps = 0.0;  ///< family EWMA of observed arrivals
  double est_run_s = 0.0;         ///< per-tree execution-time estimate
  int32_t workers_per_run = 0;    ///< P — instances one tree occupies
  int32_t warm_instances = 0;     ///< idle warm pool of the worker function
  int32_t in_flight_runs = 0;     ///< trees currently executing
  int32_t pending_prewarms = 0;   ///< pre-warm invocations not yet landed
  /// Predicted dollars to pre-warm one instance (invocation + share load
  /// down the cheaper of the storage / peer paths).
  double est_cost_per_instance = 0.0;
  /// Budget dollars not yet committed (committed = invocations fired x
  /// their estimate); a policy must never plan past it.
  double budget_remaining = 0.0;
};

/// How many instances to pre-warm right now (0 = none) and why.
struct PrewarmDecision {
  int32_t instances = 0;
  std::string reason;
};

/// Stage 0 (ahead of admission): provisions capacity BEFORE the queue
/// forms. Decisions must be a pure function of the snapshot so identical
/// traces pre-warm identically.
class PreWarmPolicy {
 public:
  virtual ~PreWarmPolicy() = default;
  virtual std::string_view name() const = 0;
  virtual PrewarmDecision Decide(const PrewarmSnapshot& snapshot) = 0;
};

/// Stage 4 (pure bookkeeping half): counts worker trees into execution
/// slots. TryAcquire() succeeds while slots are free; a finished run either
/// hands its slot to parked work or Release()s it. The serving runtime owns
/// the process parking/waking; this gate only owns the arithmetic, so the
/// slot invariant is testable without a simulation.
class DispatchGate {
 public:
  /// `max_concurrent_runs` <= 0 means unbounded (every TryAcquire succeeds).
  explicit DispatchGate(int32_t max_concurrent_runs)
      : max_concurrent_runs_(max_concurrent_runs) {}

  bool TryAcquire() {
    if (max_concurrent_runs_ > 0 && in_flight_ >= max_concurrent_runs_) {
      return false;
    }
    ++in_flight_;
    return true;
  }
  void Release() {
    if (in_flight_ > 0) --in_flight_;
  }
  int32_t in_flight() const { return in_flight_; }
  bool bounded() const { return max_concurrent_runs_ > 0; }

 private:
  int32_t max_concurrent_runs_ = 0;
  int32_t in_flight_ = 0;
};

/// Built-in policies. The serving runtime materializes these from
/// ServingOptions when no custom policy is injected.

/// Admits everything (the pre-scheduler behaviour; the admission-off
/// ablation).
std::shared_ptr<AdmissionPolicy> MakeAdmitAll();

/// Depth/wait-bounded admission: rejects (or sheds, per `shed`) when the
/// queue holds `max_queue_depth` queries (0 = no depth bound), and rejects
/// when the predicted queue wait `queued / sustainable_qps` exceeds
/// `max_queue_wait_s` (< 0 = no wait bound).
std::shared_ptr<AdmissionPolicy> MakeDepthBoundAdmission(
    int32_t max_queue_depth, double max_queue_wait_s, ShedPolicy shed);

std::shared_ptr<QueuePolicy> MakeQueuePolicy(QueueDiscipline discipline);

/// Per-tenant admission quota: a token bucket refilled at `rate_qps`
/// (sustained admitted-query rate) with depth `burst` (<= 0 defaults to
/// max(1, rate_qps) — one second of rate), plus an optional fair-share cap
/// on the admitted-but-unlaunched queue (`max_queue_share` in (0, 1]; 0
/// disables it): an arrival whose tenant already holds more than its share
/// of the queue is rejected even with tokens left, so one bursty tenant
/// cannot monopolize the backlog ahead of the others.
struct TenantQuota {
  int32_t tenant = 0;
  double rate_qps = 0.0;      ///< <= 0 = no rate limit for this tenant
  double burst = 0.0;         ///< bucket depth in queries
  double max_queue_share = 0.0;
};

/// Tenant-quota admission stage: enforces each listed tenant's quota, then
/// delegates to `inner` (null = admit-all) so quotas compose with the
/// depth/wait bounds. Unlisted tenants skip straight to `inner`. The stage
/// is stateful (bucket levels advance with load.now_s) but strictly
/// deterministic: identical arrival traces refill and drain the buckets
/// identically.
std::shared_ptr<AdmissionPolicy> MakeTenantQuotaAdmission(
    std::vector<TenantQuota> quotas, std::shared_ptr<AdmissionPolicy> inner);

/// Deadline-slack batcher: waits out the window, but flushes early when the
/// oldest member's slack — deadline minus predicted execution time — would
/// otherwise run out. With no deadlines this is exactly the fixed window.
std::shared_ptr<BatchPolicy> MakeDeadlineBatchPolicy();

/// Little's-law rate pre-warmer: demand is ceil(arrival_rate x est_run_s)
/// concurrent trees x P instances each; supply is the warm pool plus the
/// instances in-flight trees and pending pre-warms already occupy. The
/// deficit is pre-warmed, capped by what the remaining budget affords at
/// the per-instance cost estimate. Degenerate snapshots (unseeded rate or
/// run-time estimate, zero-size trees) decide 0 — the policy can only ever
/// spend budget on a measured signal.
std::shared_ptr<PreWarmPolicy> MakeRatePreWarmPolicy();

}  // namespace fsd::core

#endif  // FSD_CORE_SCHEDULER_H_
