#include "core/serving.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/logging.h"
#include "common/strings.h"
#include "core/channel.h"
#include "core/cost_model.h"
#include "core/partition_cache.h"
#include "core/share_distributor.h"

namespace fsd::core {
namespace {

std::atomic<uint64_t> g_instance_counter{0};

/// Coalescing identity: two queries may share one worker tree only when a
/// single RunState could serve both — same model and partition objects and
/// the same execution-relevant options (everything in FsdOptions except the
/// per-run channel scope the runtime assigns itself). This is strictly
/// finer than the warm-pool function-group key and subsumes the
/// partition-cache family (which is derived from the model config, the
/// partition layout and the cache options fingerprinted here).
///
/// KEEP IN SYNC WITH FsdOptions: every field added there must be added to
/// this key (or queries differing in the new knob will silently coalesce
/// into a RunState that cannot honour both settings) — fsd_config.h points
/// back here. Exception: pure SCHEDULING metadata (slo_deadline_s,
/// priority, tenant_id) is deliberately excluded — it never reaches the
/// RunState, so queries in different SLO classes or of different tenants
/// still coalesce and keep the batching
/// amortization; the batcher tracks per-member deadlines (earliest wins,
/// late joiners tighten the flush) and shedding removes individual
/// members, so mixed-class batches stay correct.
///
/// The key must be injective over the covered fields: doubles are encoded
/// by bit pattern (no %g rounding that could merge nearby timeouts) and
/// strings are length-prefixed (a model_family containing a delimiter can
/// never alias the adjacent fields).
std::string BatchFamilyKey(const InferenceRequest& request) {
  const FsdOptions& o = request.options;
  auto bits = [](double d) {
    uint64_t b = 0;
    std::memcpy(&b, &d, sizeof(b));
    return static_cast<unsigned long long>(b);
  };
  return StrFormat(
      "%p|%p|v%d|w%d|b%d|l%d|t%d.%d|io%d|pw%016llx|os%016llx|mm%llu|"
      "gp%d|c%d|lz%d.%zu|q%d.%016llx|nm%d|kv%llu.%016llx.%d|pc%d.%llu|"
      "mf%zu:%s@%llu|m%d|wt%016llx|cm%d|s%llu|sc%zu:[%s]|ct%d|dp%016llx",
      static_cast<const void*>(request.dnn),
      static_cast<const void*>(request.partition), static_cast<int>(o.variant),
      o.num_workers, o.branching, static_cast<int>(o.launch), o.num_topics,
      o.num_buckets, o.io_lanes, bits(o.poll_wait_s),
      bits(o.object_scan_interval_s),
      static_cast<unsigned long long>(o.max_message_bytes),
      o.greedy_packing ? 1 : 0, o.compress ? 1 : 0, o.codec.max_chain_probes,
      o.codec.min_compress_size, o.quant_bits, bits(o.quant_max_rel_error),
      o.nul_markers ? 1 : 0,
      static_cast<unsigned long long>(o.kv_max_value_bytes),
      bits(o.kv_poll_wait_s), o.kv_shards, o.partition_cache ? 1 : 0,
      static_cast<unsigned long long>(o.partition_cache_budget_bytes),
      o.model_family.size(), o.model_family.c_str(),
      static_cast<unsigned long long>(o.model_version), o.worker_memory_mb,
      bits(o.worker_timeout_s), o.coordinator_memory_mb,
      static_cast<unsigned long long>(o.seed), o.channel_scope.size(),
      o.channel_scope.c_str(), static_cast<int>(o.collective_topology),
      bits(o.direct_poll_wait_s));
}

}  // namespace

ServingRuntime::ServingRuntime(cloud::CloudEnv* cloud, ServingOptions options)
    : cloud_(cloud),
      options_(std::move(options)),
      instance_id_(g_instance_counter.fetch_add(1)),
      gate_(options_.max_concurrent_runs) {
  // Materialize the pipeline stages: injected policies win, otherwise the
  // knobs select a built-in. With admission off the admission stage is a
  // pass-through, and the deadline batcher degenerates to the fixed window
  // when no query carries a deadline — the accept-everything behaviour.
  admission_ = options_.admission_policy
                   ? options_.admission_policy
               : options_.admission_control
                   ? MakeDepthBoundAdmission(options_.max_queue_depth,
                                             options_.max_queue_wait_s,
                                             options_.shed_policy)
                   : MakeAdmitAll();
  if (!options_.tenant_quotas.empty()) {
    // Quotas decorate whichever inner stage was materialized above: the
    // token buckets decide first, surviving arrivals fall through.
    admission_ = MakeTenantQuotaAdmission(options_.tenant_quotas, admission_);
  }
  queue_policy_ = options_.queue_policy
                      ? options_.queue_policy
                      : MakeQueuePolicy(options_.queue_discipline);
  batcher_ =
      options_.batch_policy ? options_.batch_policy : MakeDeadlineBatchPolicy();
  prewarm_ = options_.prewarm_policy ? options_.prewarm_policy
                                     : MakeRatePreWarmPolicy();
}

ServingRuntime::~ServingRuntime() = default;

ShareDistributor* ServingRuntime::EnsureShareDistributor() {
  if (share_distributor_ == nullptr) {
    ShareDistributor::Options options;
    options.scope =
        StrFormat("srv%llu", static_cast<unsigned long long>(instance_id_));
    options.topology = options_.share_multicast_topology;
    share_distributor_ = std::make_unique<ShareDistributor>(cloud_, options);
  }
  return share_distributor_.get();
}

Result<std::string> ServingRuntime::EnsureWorkerFunction(
    const FsdOptions& options) {
  // %g keeps the timeout exact in the key: queries whose timeouts merely
  // round to the same integer must NOT share a function (the registered
  // config's timeout is what the FaaS service enforces). The partition-
  // cache budget is part of the key too: an instance's cache is created
  // with the budget of whichever run touches it first, so queries with
  // different budgets (a budget-ablation workload) must not share warm
  // instances or their cache accounting would describe the wrong budget.
  const std::string group =
      options_.share_functions
          ? StrFormat("w-m%d-t%g-b%llu", options.worker_memory_mb,
                      options.worker_timeout_s,
                      static_cast<unsigned long long>(
                          options.partition_cache
                              ? options.partition_cache_budget_bytes
                              : 0))
          : StrFormat("w-q%llu", static_cast<unsigned long long>(
                                     AllocateRunId()));
  auto it = function_groups_.find(group);
  if (it != function_groups_.end()) return it->second;

  cloud::FaasFunctionConfig config;
  config.name = StrFormat("fsd-srv%llu-%s",
                          static_cast<unsigned long long>(instance_id_),
                          group.c_str());
  config.memory_mb = options.worker_memory_mb;
  config.timeout_s = options.worker_timeout_s;
  // One registered function serves every run in the group: the payload
  // names the run, so a warm instance released by one run picks up the
  // next run's invocation.
  config.handler = [this](cloud::FaasContext* ctx) {
    Result<WorkerPayload> payload = DecodeWorkerPayload(ctx->payload());
    if (!payload.ok()) {
      ctx->set_result(payload.status());
      return;
    }
    auto run = runs_.find(payload->run_id);
    if (run == runs_.end()) {
      // Not a run: the id may name a pre-warm task riding the same
      // function (its instances must land in the SAME warm pool the
      // family's runs draw from, or warming would miss them).
      if (prewarm_tasks_.count(payload->run_id) != 0) {
        RunPrewarmTask(ctx, payload->run_id);
        return;
      }
      ctx->set_result(
          Status::NotFound("worker invoked for an unknown run"));
      return;
    }
    RunFsiWorker(ctx, run->second->state.get(), payload->worker_id);
  };
  FSD_RETURN_IF_ERROR(cloud_->faas().RegisterFunction(config));
  function_groups_.emplace(group, config.name);
  return config.name;
}

Result<std::string> ServingRuntime::EnsureCoordinatorFunction(
    const FsdOptions& options) {
  const std::string group =
      options_.share_functions
          ? StrFormat("c-m%d", options.coordinator_memory_mb)
          : StrFormat("c-q%llu", static_cast<unsigned long long>(
                                     AllocateRunId()));
  auto it = function_groups_.find(group);
  if (it != function_groups_.end()) return it->second;

  cloud::FaasFunctionConfig config;
  config.name = StrFormat("fsd-srv%llu-%s",
                          static_cast<unsigned long long>(instance_id_),
                          group.c_str());
  config.memory_mb = options.coordinator_memory_mb;
  config.timeout_s = 900.0;
  config.handler = [this](cloud::FaasContext* ctx) {
    Result<WorkerPayload> payload = DecodeWorkerPayload(ctx->payload());
    if (!payload.ok()) {
      ctx->set_result(payload.status());
      return;
    }
    auto run = runs_.find(payload->run_id);
    if (run == runs_.end()) {
      ctx->set_result(
          Status::NotFound("coordinator invoked for an unknown run"));
      return;
    }
    RunCoordinator(ctx, run->second->state.get());
  };
  FSD_RETURN_IF_ERROR(cloud_->faas().RegisterFunction(config));
  function_groups_.emplace(group, config.name);
  return config.name;
}

Result<ServingRuntime::Run*> ServingRuntime::BuildRun(
    uint64_t run_id, const std::vector<uint64_t>& member_ids) {
  // The merged request: the lead member's model/partition/options with the
  // concatenation of every member's batch list. Members may only reach one
  // run through a shared BatchFamilyKey, so the non-batch fields agree.
  const InferenceRequest& proto = queries_.at(member_ids[0])->request;
  InferenceRequest merged;
  merged.dnn = proto.dnn;
  merged.partition = proto.partition;
  merged.options = proto.options;
  std::vector<RunState::Member> members;
  members.reserve(member_ids.size());
  for (uint64_t id : member_ids) {
    const InferenceRequest& request = queries_.at(id)->request;
    RunState::Member member;
    member.query_id = id;
    member.batch_begin = static_cast<int32_t>(merged.batches.size());
    member.batch_count = static_cast<int32_t>(request.batches.size());
    member.cols = RequestSampleCols(request);
    members.push_back(member);
    merged.batches.insert(merged.batches.end(), request.batches.begin(),
                          request.batches.end());
  }

  // Per-run channel scope: concurrent runs must never share topics, queues
  // or buckets (phase ids restart at 0 for every run).
  merged.options.channel_scope =
      StrFormat("%sq%llu-", proto.options.channel_scope.c_str(),
                static_cast<unsigned long long>(run_id));

  FSD_ASSIGN_OR_RETURN(std::unique_ptr<RunState> state,
                       PrepareRunState(cloud_, merged, run_id));
  if (options_.peer_share_transfer && !state->cache_family.empty()) {
    state->share_distributor = EnsureShareDistributor();
  }
  // From here the run owns provisioned channel resources; release them if
  // registration fails and the run never becomes schedulable.
  Result<std::string> worker_fn = EnsureWorkerFunction(state->options);
  Result<std::string> coordinator = EnsureCoordinatorFunction(state->options);
  if (!worker_fn.ok() || !coordinator.ok()) {
    TeardownChannelResources(cloud_, state->options).ok();
    return worker_fn.ok() ? coordinator.status() : worker_fn.status();
  }
  state->worker_function = std::move(*worker_fn);
  state->members = std::move(members);

  auto run = std::make_unique<Run>();
  run->state = std::move(state);
  run->member_ids = member_ids;
  run->coordinator_function = std::move(*coordinator);
  for (uint64_t id : member_ids) {
    Query* query = queries_.at(id).get();
    query->state = run->state.get();
    query->outcome.run_id = run_id;
    query->outcome.batch_peers = static_cast<int32_t>(member_ids.size());
    if (query->aborted) run->state->abort = true;
  }
  Run* raw = run.get();
  runs_.emplace(run_id, std::move(run));
  return raw;
}

void ServingRuntime::ExecuteRun(Run* run) {
  RunState* state = run->state.get();
  const double launch_s = cloud_->sim()->Now();
  for (uint64_t id : run->member_ids) {
    Query* query = queries_.at(id).get();
    Dequeue(query);
    query->outcome.queue_wait_s = launch_s - query->outcome.arrival_s;
  }
  cloud::FaasService::InvokeOutcome invoke = cloud_->faas().InvokeAsync(
      run->coordinator_function, EncodeWorkerPayload(state->run_id, 0));
  if (invoke.status.ok()) {
    cloud_->sim()->WaitSignal(state->done.get());
    const double finish_s = cloud_->sim()->Now();
    // Collecting moves a member's slice of the outputs, so wait until
    // every launched worker (stragglers included) has exited too.
    cloud_->sim()->WaitSignal(state->quiesced.get());
    run->worker_invocations =
        static_cast<int64_t>(state->metrics.workers.size());
    for (const WorkerMetrics& w : state->metrics.workers) {
      if (w.cold_start) ++run->cold_starts;
    }
    run->ok = true;
    for (size_t i = 0; i < run->member_ids.size(); ++i) {
      Query* query = queries_.at(run->member_ids[i]).get();
      query->outcome.finish_s = finish_s;
      query->outcome.report = CollectMemberReport(
          state, i, query->outcome.arrival_s, finish_s);
      const bool member_ok = query->outcome.report.status.ok();
      query->outcome.disposition =
          member_ok ? QueryDisposition::kCompleted
          : query->aborted ? QueryDisposition::kAborted
                           : QueryDisposition::kFailed;
      query->outcome.deadline_met =
          !std::isfinite(query->outcome.deadline_s) ||
          finish_s <= query->outcome.deadline_s;
      run->ok &= member_ok;
    }
    if (run->ok) UpdateLiveStats(*run, launch_s, finish_s);
  } else {
    const double finish_s = cloud_->sim()->Now();
    for (uint64_t id : run->member_ids) {
      Query* query = queries_.at(id).get();
      query->outcome.finish_s = finish_s;
      query->outcome.report.status = invoke.status;
      query->outcome.disposition = query->aborted
                                       ? QueryDisposition::kAborted
                                       : QueryDisposition::kFailed;
    }
  }
  // Release the run's channel resources (bills the KV namespace's node
  // time) whether the run succeeded or not. Failure must not fail the run.
  const Status teardown = TeardownChannelResources(cloud_, state->options);
  if (!teardown.ok()) {
    FSD_LOG(kWarn, "channel teardown for run %llu failed: %s",
            static_cast<unsigned long long>(state->run_id),
            teardown.ToString().c_str());
  }
  for (uint64_t id : run->member_ids) queries_.at(id)->finished = true;
  run->finished = true;
  if (!run->ok && options_.stop_on_failure) AbortAll();
}

void ServingRuntime::JoinBatch(uint64_t query_id) {
  Query* query = queries_.at(query_id).get();
  const std::string family = BatchFamilyKey(query->request);
  const int32_t cols = RequestSampleCols(query->request);

  PendingBatch* batch = nullptr;
  uint64_t batch_id = 0;
  auto open = open_batch_by_family_.find(family);
  if (open != open_batch_by_family_.end()) {
    PendingBatch& candidate = pending_batches_.at(open->second);
    const bool fits =
        static_cast<int32_t>(candidate.member_ids.size()) <
            options_.max_batch_queries &&
        candidate.total_cols + cols <=
            static_cast<int64_t>(options_.max_batch_cols);
    if (fits) {
      batch = &candidate;
      batch_id = open->second;
    } else {
      // The incoming query would overflow the open batch: flush it now
      // (its window process wakes at this same virtual time) and start a
      // fresh batch for this query.
      open_batch_by_family_.erase(open);
      candidate.flush_due = true;
      candidate.flush_now->Fire();
    }
  }
  const bool fresh_batch = batch == nullptr;
  if (fresh_batch) {
    batch_id = next_batch_id_++;
    PendingBatch fresh;
    fresh.family = family;
    fresh.flush_now = cloud_->sim()->MakeSignal();
    batch = &pending_batches_.emplace(batch_id, std::move(fresh))
                 .first->second;
    open_batch_by_family_[family] = batch_id;
    // The batch's window process: launches the shared tree at flush_at
    // (the window, shortened to the tightest member's deadline slack —
    // re-read after every wake, since late joiners may tighten it), or
    // immediately when the batch fills (flush_due).
    cloud_->sim()->Spawn(
        StrFormat("serve-batch-%llu",
                  static_cast<unsigned long long>(batch_id)),
        [this, batch_id]() {
          while (true) {
            auto it = pending_batches_.find(batch_id);
            if (it == pending_batches_.end()) return;
            if (it->second.flush_due) break;
            const double wait = it->second.flush_at - cloud_->sim()->Now();
            if (wait <= 0.0) break;
            // Hold the signal by value: a tightening join swaps the
            // batch's slot for a fresh one before firing this one.
            std::shared_ptr<sim::SimSignal> wake = it->second.flush_now;
            cloud_->sim()->WaitSignal(wake.get(), wait);
          }
          FlushBatch(batch_id);
        });
  }

  batch->member_ids.push_back(query_id);
  batch->total_cols += cols;
  const bool full =
      static_cast<int32_t>(batch->member_ids.size()) >=
          options_.max_batch_queries ||
      batch->total_cols >= static_cast<int64_t>(options_.max_batch_cols);
  if (full) {
    open_batch_by_family_.erase(batch->family);
    batch->flush_due = true;
    batch->flush_now->Fire();
    return;
  }
  // Batcher stage: when must this batch launch? The first member arms the
  // window; a joiner with a tighter deadline slack pulls flush_at forward
  // and wakes the window process so it re-arms against the new time.
  const double due = cloud_->sim()->Now() + FlushTimeout(*batch);
  if (fresh_batch) {
    batch->flush_at = due;
  } else if (due < batch->flush_at) {
    batch->flush_at = due;
    std::shared_ptr<sim::SimSignal> stale = batch->flush_now;
    batch->flush_now = cloud_->sim()->MakeSignal();
    stale->Fire();
  }
}

void ServingRuntime::FlushBatch(uint64_t batch_id) {
  auto it = pending_batches_.find(batch_id);
  if (it == pending_batches_.end()) return;
  std::vector<uint64_t> member_ids = std::move(it->second.member_ids);
  auto open = open_batch_by_family_.find(it->second.family);
  if (open != open_batch_by_family_.end() && open->second == batch_id) {
    open_batch_by_family_.erase(open);
  }
  pending_batches_.erase(it);

  // Queries aborted while they waited in the window never launch: nothing
  // was provisioned for them yet, so they simply report the abort (the
  // same status a pre-start coordinator abort stamps).
  std::vector<uint64_t> live;
  std::vector<uint64_t> aborted;
  for (uint64_t id : member_ids) {
    (queries_.at(id)->aborted ? aborted : live).push_back(id);
  }
  if (!aborted.empty()) {
    FailQueries(aborted, Status::Unavailable("run aborted before start"),
                QueryDisposition::kAborted);
  }
  if (live.empty()) return;
  DispatchRun(std::move(live));
}

void ServingRuntime::DispatchRun(std::vector<uint64_t> member_ids) {
  if (!gate_.TryAcquire()) {
    // All slots busy: park until a finishing run hands its slot over (or
    // shedding empties the batch). Queued members stay shed-eligible.
    const uint64_t seq = next_park_seq_++;
    ParkedRun parked;
    parked.member_ids = std::move(member_ids);
    parked.wake = cloud_->sim()->MakeSignal();
    ParkedRun* entry = &parked_.emplace(seq, std::move(parked)).first->second;
    cloud_->sim()->WaitSignal(entry->wake.get());
    auto it = parked_.find(seq);
    if (it == parked_.end()) return;
    const bool granted = it->second.granted;
    member_ids = std::move(it->second.member_ids);
    parked_.erase(it);
    if (!granted) return;  // every member was shed; no slot held
    if (member_ids.empty()) {
      // Cannot happen (a grant implies live members), but never leak the
      // slot if it somehow does.
      ReleaseSlot();
      return;
    }
  }
  LaunchRun(member_ids);
  ReleaseSlot();
}

void ServingRuntime::LaunchRun(const std::vector<uint64_t>& member_ids) {
  // Members may have been aborted while parked on a dispatch slot (or
  // between arrival and dispatch): they report the abort WITHOUT
  // provisioning, exactly like the flush-path filter.
  std::vector<uint64_t> live;
  std::vector<uint64_t> aborted;
  for (uint64_t id : member_ids) {
    (queries_.at(id)->aborted ? aborted : live).push_back(id);
  }
  if (!aborted.empty()) {
    FailQueries(aborted, Status::Unavailable("run aborted before start"),
                QueryDisposition::kAborted);
  }
  if (live.empty()) return;
  Result<Run*> run = BuildRun(AllocateRunId(), live);
  if (!run.ok()) {
    FailQueries(live, run.status(), QueryDisposition::kFailed);
    return;
  }
  ExecuteRun(*run);
}

void ServingRuntime::ReleaseSlot() {
  // Hand the slot to the parked run that should launch first: the queue
  // policy compares each parked run's lead member (its first-launching
  // one); map order (park sequence) breaks ties FIFO.
  uint64_t best_seq = 0;
  const Query* best_lead = nullptr;
  for (const auto& [seq, parked] : parked_) {
    if (parked.woken || parked.member_ids.empty()) continue;
    const Query* lead = nullptr;
    for (uint64_t id : parked.member_ids) {
      const Query* member = queries_.at(id).get();
      if (lead == nullptr ||
          queue_policy_->Before(SchedView(*member), SchedView(*lead))) {
        lead = member;
      }
    }
    if (best_lead == nullptr ||
        queue_policy_->Before(SchedView(*lead), SchedView(*best_lead))) {
      best_lead = lead;
      best_seq = seq;
    }
  }
  if (best_lead == nullptr) {
    gate_.Release();
    return;
  }
  ParkedRun& next = parked_.at(best_seq);
  next.granted = true;
  next.woken = true;
  next.wake->Fire();  // the slot transfers to the woken flush process
}

void ServingRuntime::ShedQuery(uint64_t victim_id, const std::string& reason) {
  auto it = queries_.find(victim_id);
  if (it == queries_.end()) return;
  Query* victim = it->second.get();
  if (!victim->queued || victim->finished) return;
  const int32_t cols = RequestSampleCols(victim->request);
  // Remove the victim from wherever it queues: an open coalescing batch...
  for (auto& [batch_id, batch] : pending_batches_) {
    auto member =
        std::find(batch.member_ids.begin(), batch.member_ids.end(), victim_id);
    if (member == batch.member_ids.end()) continue;
    batch.member_ids.erase(member);
    batch.total_cols -= cols;
    break;
  }
  // ...or a parked run (unwinding the flush process when it empties).
  for (auto& [seq, parked] : parked_) {
    auto member = std::find(parked.member_ids.begin(), parked.member_ids.end(),
                            victim_id);
    if (member == parked.member_ids.end()) continue;
    parked.member_ids.erase(member);
    if (parked.member_ids.empty() && !parked.woken) {
      parked.woken = true;
      parked.wake->Fire();  // granted stays false: unwind without a slot
    }
    break;
  }
  Dequeue(victim);
  victim->outcome.disposition = QueryDisposition::kShed;
  victim->outcome.reject_reason = reason;
  victim->outcome.finish_s = cloud_->sim()->Now();
  victim->outcome.report.status = Status::Unavailable(
      StrFormat("query shed under overload: %s", reason.c_str()));
  victim->finished = true;
}

void ServingRuntime::RejectQuery(Query* query, const std::string& reason) {
  query->outcome.disposition = QueryDisposition::kRejected;
  query->outcome.reject_reason = reason;
  query->outcome.finish_s = cloud_->sim()->Now();
  query->outcome.report.status = Status::ResourceExhausted(
      StrFormat("admission rejected the query: %s", reason.c_str()));
  query->finished = true;
}

void ServingRuntime::Dequeue(Query* query) {
  if (!query->queued) return;
  query->queued = false;
  queued_ids_.erase(query->outcome.query_id);
}

void ServingRuntime::FailQueries(const std::vector<uint64_t>& ids,
                                 const Status& status,
                                 QueryDisposition disposition) {
  for (uint64_t id : ids) {
    Query* query = queries_.at(id).get();
    Dequeue(query);
    query->outcome.finish_s = cloud_->sim()->Now();
    query->outcome.report.status = status;
    query->outcome.disposition = disposition;
    query->finished = true;
  }
  if (options_.stop_on_failure) AbortAll();
}

SchedQuery ServingRuntime::SchedView(const Query& query) const {
  SchedQuery view;
  view.query_id = query.outcome.query_id;
  view.arrival_s = query.outcome.arrival_s;
  view.deadline_s = query.outcome.deadline_s;
  view.priority = query.outcome.priority;
  view.tenant = query.outcome.tenant;
  view.cols = RequestSampleCols(query.request);
  return view;
}

bool ServingRuntime::AdmissionEnabled() const {
  return options_.admission_control || options_.admission_policy != nullptr ||
         !options_.tenant_quotas.empty();
}

std::vector<SchedQuery> ServingRuntime::QueuedSnapshot() const {
  std::vector<SchedQuery> queue;
  queue.reserve(queued_ids_.size());
  for (uint64_t id : queued_ids_) {
    const Query& query = *queries_.at(id);
    if (query.queued && !query.finished) queue.push_back(SchedView(query));
  }
  return queue;
}

double ServingRuntime::EstRunSeconds(const Query& query) {
  if (ewma_run_seeded_) return ewma_run_s_;
  // No run completed yet: the cost model's a-priori estimate, memoized per
  // family (the estimate only depends on family-keyed fields).
  const std::string family = BatchFamilyKey(query.request);
  auto it = apriori_run_s_by_family_.find(family);
  if (it != apriori_run_s_by_family_.end()) return it->second;
  const ThroughputEstimate estimate = EstimateSustainableThroughput(
      *query.request.dnn, query.request.options, cloud_->latency(),
      cloud_->compute(), /*activation_density=*/0.3,
      RequestSampleCols(query.request), options_.max_concurrent_runs,
      /*expected_occupancy=*/1.0);
  apriori_run_s_by_family_[family] = estimate.est_run_s;
  return estimate.est_run_s;
}

LoadSnapshot ServingRuntime::BuildLoadSnapshot(const Query& query) {
  LoadSnapshot load;
  load.now_s = cloud_->sim()->Now();
  load.queued = static_cast<int32_t>(queued_ids_.size());
  load.in_flight_runs = gate_.in_flight();
  load.max_concurrent_runs = options_.max_concurrent_runs;
  load.est_run_s = EstRunSeconds(query);
  load.ewma_service_rate_qps = ewma_service_rate_qps_;
  if (options_.max_concurrent_runs <= 0) {
    load.sustainable_qps = std::numeric_limits<double>::infinity();
  } else if (ewma_service_rate_qps_ > 0.0) {
    // Prefer what the fleet demonstrably sustains over the model.
    load.sustainable_qps = ewma_service_rate_qps_;
  } else if (load.est_run_s > 0.0) {
    load.sustainable_qps = static_cast<double>(options_.max_concurrent_runs) *
                           ewma_occupancy_ / load.est_run_s;
  }
  return load;
}

double ServingRuntime::FlushTimeout(const PendingBatch& batch) {
  std::vector<SchedQuery> members;
  members.reserve(batch.member_ids.size());
  bool any_deadline = false;
  for (uint64_t id : batch.member_ids) {
    members.push_back(SchedView(*queries_.at(id)));
    any_deadline |= std::isfinite(members.back().deadline_s);
  }
  // The execution estimate only matters for deadline slack; skip the cost
  // model entirely on deadline-free batches (the common case).
  const double est_exec_s =
      any_deadline ? EstRunSeconds(*queries_.at(batch.member_ids[0])) : 0.0;
  const double flush_in = batcher_->FlushIn(
      members, cloud_->sim()->Now(), options_.batch_window_s, est_exec_s);
  return flush_in < 0.0 ? 0.0 : flush_in;
}

void ServingRuntime::UpdateLiveStats(const Run& run, double launch_s,
                                     double finish_s) {
  constexpr double kAlpha = 0.3;  // favors recent runs; bursty workloads
  const double duration_s = finish_s - launch_s;
  const double members = static_cast<double>(run.member_ids.size());
  if (!ewma_run_seeded_) {
    ewma_run_s_ = duration_s;
    ewma_occupancy_ = members;
    ewma_run_seeded_ = true;
  } else {
    ewma_run_s_ += kAlpha * (duration_s - ewma_run_s_);
    ewma_occupancy_ += kAlpha * (members - ewma_occupancy_);
  }
  if (last_run_finish_s_ >= 0.0 && finish_s > last_run_finish_s_) {
    const double rate = members / (finish_s - last_run_finish_s_);
    ewma_service_rate_qps_ =
        ewma_service_rate_qps_ > 0.0
            ? ewma_service_rate_qps_ + kAlpha * (rate - ewma_service_rate_qps_)
            : rate;
  }
  last_run_finish_s_ = finish_s;
}

void ServingRuntime::ObserveArrival(uint64_t query_id) {
  if (!options_.predictive_prewarm || options_.prewarm_budget_dollars <= 0.0) {
    return;
  }
  Query* query = queries_.at(query_id).get();
  FamilyRate& rate = family_rates_[BatchFamilyKey(query->request)];
  const double now = cloud_->sim()->Now();
  constexpr double kAlpha = 0.3;  // matches the run-time EWMAs
  if (rate.last_arrival_s < 0.0) {
    rate.last_arrival_s = now;
    rate.coincident = 1;
  } else if (now <= rate.last_arrival_s) {
    // A burst peer at the same instant: no gap to turn into a rate yet;
    // the whole burst enters the next gap's sample.
    ++rate.coincident;
  } else {
    const double sample =
        static_cast<double>(rate.coincident) / (now - rate.last_arrival_s);
    rate.ewma_qps = rate.ewma_qps > 0.0
                        ? rate.ewma_qps + kAlpha * (sample - rate.ewma_qps)
                        : sample;
    rate.last_arrival_s = now;
    rate.coincident = 1;
  }
  MaybePrewarm(*query, &rate);
}

void ServingRuntime::MaybePrewarm(const Query& query, FamilyRate* rate) {
  const InferenceRequest& request = query.request;
  const std::string cache_family = DeriveCacheFamily(request);
  // Without an instance cache a pre-warmed load could not outlive its
  // invocation — there is nothing to warm.
  if (cache_family.empty() || request.options.num_workers <= 0) return;

  // Pre-warm invocations must ride the SAME function group the family's
  // runs use (the whole point is seeding THEIR warm pool), so apply the
  // same option defaulting PrepareRunState does before keying the group.
  FsdOptions options = request.options;
  if (options.worker_memory_mb <= 0) {
    options.worker_memory_mb =
        DefaultWorkerMemoryMb(request.dnn->neurons(), options.variant);
  }
  Result<std::string> worker_fn = EnsureWorkerFunction(options);
  if (!worker_fn.ok()) return;  // best-effort: never fails the query

  const cloud::PricingConfig& pricing = cloud_->billing().pricing();
  const uint64_t relay_chunk_bytes = ShareDistributor::Options().relay_chunk_bytes;
  auto instance_cost = [&](int32_t partition_id) {
    const uint64_t share_bytes =
        request.partition->WeightShareBytes(*request.dnn, partition_id);
    const ShareTransferEstimate xfer =
        EstimateShareTransfer(pricing, cloud_->latency(), cloud_->compute(),
                              share_bytes, relay_chunk_bytes);
    const bool peer = options_.peer_share_transfer && xfer.peer_cheaper;
    const double load_s = peer ? xfer.peer_load_s : xfer.storage_load_s;
    const double load_cost = peer ? xfer.peer_cost : xfer.storage_cost;
    return FaasCost(pricing, 1, load_s, options.worker_memory_mb) + load_cost;
  };

  PrewarmSnapshot snapshot;
  snapshot.now_s = cloud_->sim()->Now();
  snapshot.arrival_rate_qps = rate->ewma_qps;
  snapshot.est_run_s = EstRunSeconds(query);
  snapshot.workers_per_run = options.num_workers;
  snapshot.warm_instances = cloud_->faas().WarmCount(*worker_fn);
  snapshot.in_flight_runs = gate_.in_flight();
  snapshot.pending_prewarms = rate->pending_prewarms;
  snapshot.est_cost_per_instance = instance_cost(static_cast<int32_t>(
      rate->next_partition % static_cast<uint64_t>(options.num_workers)));
  snapshot.budget_remaining =
      options_.prewarm_budget_dollars - prewarm_budget_spent_;
  const PrewarmDecision decision = prewarm_->Decide(snapshot);

  for (int32_t i = 0; i < decision.instances; ++i) {
    const int32_t partition_id = static_cast<int32_t>(
        rate->next_partition % static_cast<uint64_t>(options.num_workers));
    // The budget is a HARD cap on committed estimates, re-checked per
    // instance (shares vary in size across partitions).
    const double est_cost = instance_cost(partition_id);
    if (prewarm_budget_spent_ + est_cost > options_.prewarm_budget_dollars) {
      break;
    }
    PrewarmTask task;
    task.options = options;
    task.rate_key = BatchFamilyKey(request);
    task.cache_family = cache_family;
    task.dnn = request.dnn;
    task.partition = request.partition;
    task.partition_id = partition_id;
    task.share_bytes =
        request.partition->WeightShareBytes(*request.dnn, partition_id);
    const uint64_t task_id = AllocateRunId();
    prewarm_tasks_.emplace(task_id, std::move(task));
    const cloud::FaasService::InvokeOutcome outcome = cloud_->faas().InvokeAsync(
        *worker_fn, EncodeWorkerPayload(task_id, partition_id));
    if (!outcome.status.ok()) {
      prewarm_tasks_.erase(task_id);
      break;
    }
    ++rate->next_partition;
    ++rate->pending_prewarms;
    ++prewarm_invocations_;
    prewarm_budget_spent_ += est_cost;
  }
}

void ServingRuntime::RunPrewarmTask(cloud::FaasContext* ctx,
                                    uint64_t task_id) {
  auto it = prewarm_tasks_.find(task_id);
  if (it == prewarm_tasks_.end()) {
    ctx->set_result(Status::NotFound("pre-warm task already consumed"));
    return;
  }
  const PrewarmTask task = std::move(it->second);
  prewarm_tasks_.erase(it);
  auto rate = family_rates_.find(task.rate_key);
  if (rate != family_rates_.end() && rate->second.pending_prewarms > 0) {
    --rate->second.pending_prewarms;
  }

  PartitionCache* cache = InstancePartitionCache(ctx, task.options);
  if (cache == nullptr ||
      cache->Contains(task.cache_family, task.partition_id,
                      task.options.model_version)) {
    // Landed on an instance that already holds the share (LIFO warm pool):
    // the invocation still warmed an instance; nothing to load.
    ctx->set_result(Status::OK());
    return;
  }

  WorkerMetrics scratch;
  ShareDistributor* distributor =
      options_.peer_share_transfer ? EnsureShareDistributor() : nullptr;
  bool pending_publish = false;
  bool resident = false;
  if (distributor != nullptr) {
    const ShareDistributor::Source source = distributor->Acquire(
        ctx, task.options, task.cache_family, task.partition_id,
        task.share_bytes, &scratch, /*mark_prewarmed=*/true);
    if (source == ShareDistributor::Source::kPeer) {
      resident = true;
    } else {
      pending_publish = true;
    }
  }
  Status status = Status::OK();
  if (!resident) {
    // Same storage-read modeling as LoadModelShare: multipart GETs across
    // the IO lanes plus deserialization CPU, billed at GET pricing.
    const uint64_t parts = ModelReadGetParts(task.share_bytes);
    cloud_->billing().Record(cloud::BillingDimension::kObjectGet,
                             static_cast<double>(parts));
    prewarm_storage_parts_ += static_cast<int64_t>(parts);
    prewarm_storage_bytes_ += static_cast<int64_t>(task.share_bytes);
    Rng rng(task.options.seed ^ 0x50524557ull ^
            (0xA11Dull * (static_cast<uint64_t>(task.partition_id) + 1)));
    std::vector<double> latencies;
    uint64_t remaining = task.share_bytes;
    for (uint64_t p = 0; p < parts; ++p) {
      const uint64_t part = std::min<uint64_t>(kModelReadPartBytes, remaining);
      remaining -= part;
      latencies.push_back(cloud_->latency().object_get.Sample(&rng, part));
    }
    const double get_makespan =
        sim::ParallelMakespan(latencies, task.options.io_lanes);
    const double deser_s = static_cast<double>(task.share_bytes) /
                           cloud_->compute().deserialize_bytes_per_s;
    status = ctx->SleepFor(get_makespan + deser_s);
    if (status.ok()) {
      cache->Insert(task.cache_family, task.partition_id,
                    task.options.model_version, task.share_bytes,
                    /*prewarmed=*/true);
      if (pending_publish) {
        distributor->Publish(ctx, task.options, task.cache_family,
                             task.partition_id);
      }
    } else if (pending_publish) {
      distributor->Abandon(task.cache_family, task.partition_id,
                           task.options.model_version);
    }
  }
  prewarm_peer_connects_ += scratch.share_peer_connects;
  prewarm_peer_bytes_ += scratch.share_peer_bytes;
  prewarm_relay_requests_ += scratch.share_relay_requests;
  prewarm_relay_bytes_ += scratch.share_relay_bytes;
  ctx->set_result(status);
}

void ServingRuntime::ArriveQuery(uint64_t query_id) {
  Query* query = queries_.at(query_id).get();
  query->outcome.arrival_s = cloud_->sim()->Now();
  if (query->request.options.slo_deadline_s > 0.0) {
    query->outcome.deadline_s =
        query->outcome.arrival_s + query->request.options.slo_deadline_s;
  }
  ObserveArrival(query_id);
  if (AdmissionEnabled()) {
    const LoadSnapshot load = BuildLoadSnapshot(*query);
    AdmissionDecision decision =
        admission_->Decide(SchedView(*query), load, QueuedSnapshot());
    if (decision.action == AdmissionDecision::Action::kReject) {
      RejectQuery(query, decision.reason);
      return;
    }
    if (decision.action == AdmissionDecision::Action::kShedVictim) {
      ShedQuery(decision.victim_query_id, decision.reason);
    }
  }
  query->queued = true;
  queued_ids_.insert(query_id);
  const bool batching = options_.batch_window_s > 0.0 &&
                        query->request.options.cross_query_batching;
  if (batching) {
    JoinBatch(query_id);
    return;
  }
  // (Queries aborted before arrival fail inside LaunchRun's filter,
  // without provisioning — same path as aborted batch members.)
  DispatchRun({query_id});
}

Result<uint64_t> ServingRuntime::Submit(const InferenceRequest& request,
                                        double arrival_s) {
  if (arrival_s < 0.0) {
    return Status::InvalidArgument("arrival time must be >= 0");
  }
  const bool batching = options_.batch_window_s > 0.0 &&
                        request.options.cross_query_batching;
  // The pipeline path defers provisioning to the query's arrival: batched
  // queries provision at flush, and under admission control or a dispatch
  // bound a query may be rejected/parked, so nothing may be provisioned at
  // Submit. Without any of those, the pre-scheduler fast path below
  // provisions immediately (synchronous errors, byte-identical behaviour).
  const bool pipelined =
      batching || AdmissionEnabled() || options_.max_concurrent_runs > 0;
  // Validate up front on BOTH paths: a malformed request fails at Submit
  // (not mid-window), and run construction may then read batch shapes
  // (RequestSampleCols) before PrepareRunState re-validates.
  FSD_RETURN_IF_ERROR(ValidateInferenceRequest(request));
  const uint64_t query_id = AllocateRunId();

  auto query = std::make_unique<Query>();
  query->request = request;
  query->outcome.query_id = query_id;
  query->outcome.arrival_s = cloud_->sim()->Now() + arrival_s;
  query->outcome.priority = request.options.priority;
  query->outcome.tenant = request.options.tenant_id;
  query->outcome.deadline_s =
      request.options.slo_deadline_s > 0.0
          ? query->outcome.arrival_s + request.options.slo_deadline_s
          : kNoDeadline;
  Query* raw = query.get();
  queries_.emplace(query_id, std::move(query));

  if (pipelined) {
    submission_order_.push_back(query_id);
    cloud_->sim()->AddProcess(
        StrFormat("serve-arrive-%llu",
                  static_cast<unsigned long long>(query_id)),
        [this, query_id]() { ArriveQuery(query_id); }, arrival_s);
    return query_id;
  }

  // Unbatched, unscheduled: provision immediately (synchronous errors) and
  // launch the run at its arrival time; the query IS the run.
  Result<Run*> run = BuildRun(query_id, {query_id});
  if (!run.ok()) {
    queries_.erase(query_id);
    return run.status();
  }
  submission_order_.push_back(query_id);
  Run* raw_run = *run;
  cloud_->sim()->AddProcess(
      StrFormat("serve-client-%llu",
                static_cast<unsigned long long>(query_id)),
      [this, raw, raw_run, query_id]() {
        raw->outcome.arrival_s = cloud_->sim()->Now();
        if (raw->request.options.slo_deadline_s > 0.0) {
          raw->outcome.deadline_s =
              raw->outcome.arrival_s + raw->request.options.slo_deadline_s;
        }
        ObserveArrival(query_id);
        ExecuteRun(raw_run);
      },
      arrival_s);
  return query_id;
}

void ServingRuntime::AbortAll() {
  for (auto& [id, query] : queries_) {
    if (query->finished) continue;
    query->aborted = true;
    if (query->state != nullptr) query->state->abort = true;
  }
}

Result<ServingReport> ServingRuntime::Drain() {
  return Drain(options_.run_until);
}

Result<ServingReport> ServingRuntime::Drain(double run_until) {
  const std::vector<cloud::BillingLine> before =
      SnapshotLedger(cloud_->billing());
  cloud_->sim()->Run(run_until);

  ServingReport report;
  report.billing = DiffLedger(before, cloud_->billing());
  accumulated_cost_ += report.billing.total_cost;
  for (uint64_t id : submission_order_) {
    Query* query = queries_.at(id).get();
    if (!query->finished) {
      // Stopped by run_until (or a deadlock upstream): report the query as
      // incomplete but leave it live — a later Drain() may finish it.
      query->outcome.finish_s = cloud_->sim()->Now();
      query->outcome.report.status = Status::DeadlineExceeded(
          "query still in flight when Drain() stopped");
      query->outcome.disposition = QueryDisposition::kInFlight;
    }
    report.queries.push_back(query->outcome);
    FleetStats::QuerySample sample;
    sample.arrival_s = query->outcome.arrival_s;
    sample.finish_s = query->outcome.finish_s;
    sample.latency_s = query->outcome.report.latency_s;
    sample.queue_wait_s = query->outcome.queue_wait_s;
    sample.disposition = query->outcome.disposition;
    sample.priority = query->outcome.priority;
    sample.tenant = query->outcome.tenant;
    sample.deadline_s = query->outcome.deadline_s;
    report.fleet.AddQuery(sample, query->outcome.report.metrics);
  }
  for (const auto& [id, run] : runs_) {
    if (!run->finished) continue;
    report.fleet.AddRun(static_cast<int32_t>(run->member_ids.size()),
                        run->worker_invocations, run->cold_starts, run->ok);
  }
  // FleetStats spans every query submitted so far, so its dollar figures
  // must span every Drain call too (this call's ledger delta alone would
  // understate cost_per_query after a resumed drain).
  report.fleet.total_cost = accumulated_cost_;
  report.fleet.ewma_service_rate_qps = ewma_service_rate_qps_;
  report.fleet.prewarm_invocations = prewarm_invocations_;
  report.fleet.prewarm_storage_parts = prewarm_storage_parts_;
  report.fleet.prewarm_storage_bytes = prewarm_storage_bytes_;
  report.fleet.prewarm_peer_connects = prewarm_peer_connects_;
  report.fleet.prewarm_peer_bytes = prewarm_peer_bytes_;
  report.fleet.prewarm_relay_requests = prewarm_relay_requests_;
  report.fleet.prewarm_relay_bytes = prewarm_relay_bytes_;
  report.fleet.prewarm_budget_spent = prewarm_budget_spent_;
  report.fleet.Finalize();
  return report;
}

std::vector<double> PoissonArrivals(double rate_qps, int32_t count,
                                    uint64_t seed) {
  FSD_CHECK_GT(rate_qps, 0.0);
  std::vector<double> arrivals;
  arrivals.reserve(static_cast<size_t>(count > 0 ? count : 0));
  Rng rng(seed ^ 0xA221C0DEull);
  double t = 0.0;
  for (int32_t i = 0; i < count; ++i) {
    t += rng.NextExponential(1.0 / rate_qps);
    arrivals.push_back(t);
  }
  return arrivals;
}

std::vector<double> BurstArrivals(int32_t bursts, int32_t per_burst,
                                  double gap_s, double start_s) {
  std::vector<double> arrivals;
  arrivals.reserve(static_cast<size_t>(bursts) *
                   static_cast<size_t>(per_burst));
  for (int32_t b = 0; b < bursts; ++b) {
    for (int32_t q = 0; q < per_burst; ++q) {
      arrivals.push_back(start_s + gap_s * static_cast<double>(b));
    }
  }
  return arrivals;
}

}  // namespace fsd::core
