#include "core/serving.h"

#include <atomic>

#include "common/logging.h"
#include "common/strings.h"
#include "core/channel.h"

namespace fsd::core {
namespace {

std::atomic<uint64_t> g_instance_counter{0};

}  // namespace

ServingRuntime::ServingRuntime(cloud::CloudEnv* cloud, ServingOptions options)
    : cloud_(cloud),
      options_(options),
      instance_id_(g_instance_counter.fetch_add(1)) {}

Result<std::string> ServingRuntime::EnsureWorkerFunction(
    const FsdOptions& options) {
  // %g keeps the timeout exact in the key: queries whose timeouts merely
  // round to the same integer must NOT share a function (the registered
  // config's timeout is what the FaaS service enforces). The partition-
  // cache budget is part of the key too: an instance's cache is created
  // with the budget of whichever run touches it first, so queries with
  // different budgets (a budget-ablation workload) must not share warm
  // instances or their cache accounting would describe the wrong budget.
  const std::string group =
      options_.share_functions
          ? StrFormat("w-m%d-t%g-b%llu", options.worker_memory_mb,
                      options.worker_timeout_s,
                      static_cast<unsigned long long>(
                          options.partition_cache
                              ? options.partition_cache_budget_bytes
                              : 0))
          : StrFormat("w-q%llu", static_cast<unsigned long long>(
                                     AllocateRunId()));
  auto it = function_groups_.find(group);
  if (it != function_groups_.end()) return it->second;

  cloud::FaasFunctionConfig config;
  config.name = StrFormat("fsd-srv%llu-%s",
                          static_cast<unsigned long long>(instance_id_),
                          group.c_str());
  config.memory_mb = options.worker_memory_mb;
  config.timeout_s = options.worker_timeout_s;
  // One registered function serves every query in the group: the payload
  // names the run, so a warm instance released by one query picks up the
  // next query's invocation.
  config.handler = [this](cloud::FaasContext* ctx) {
    Result<WorkerPayload> payload = DecodeWorkerPayload(ctx->payload());
    if (!payload.ok()) {
      ctx->set_result(payload.status());
      return;
    }
    auto query = queries_.find(payload->run_id);
    if (query == queries_.end()) {
      ctx->set_result(
          Status::NotFound("worker invoked for an unknown run"));
      return;
    }
    RunFsiWorker(ctx, query->second->state.get(), payload->worker_id);
  };
  FSD_RETURN_IF_ERROR(cloud_->faas().RegisterFunction(config));
  function_groups_.emplace(group, config.name);
  return config.name;
}

Result<std::string> ServingRuntime::EnsureCoordinatorFunction(
    const FsdOptions& options) {
  const std::string group =
      options_.share_functions
          ? StrFormat("c-m%d", options.coordinator_memory_mb)
          : StrFormat("c-q%llu", static_cast<unsigned long long>(
                                     AllocateRunId()));
  auto it = function_groups_.find(group);
  if (it != function_groups_.end()) return it->second;

  cloud::FaasFunctionConfig config;
  config.name = StrFormat("fsd-srv%llu-%s",
                          static_cast<unsigned long long>(instance_id_),
                          group.c_str());
  config.memory_mb = options.coordinator_memory_mb;
  config.timeout_s = 900.0;
  config.handler = [this](cloud::FaasContext* ctx) {
    Result<WorkerPayload> payload = DecodeWorkerPayload(ctx->payload());
    if (!payload.ok()) {
      ctx->set_result(payload.status());
      return;
    }
    auto query = queries_.find(payload->run_id);
    if (query == queries_.end()) {
      ctx->set_result(
          Status::NotFound("coordinator invoked for an unknown run"));
      return;
    }
    RunCoordinator(ctx, query->second->state.get());
  };
  FSD_RETURN_IF_ERROR(cloud_->faas().RegisterFunction(config));
  function_groups_.emplace(group, config.name);
  return config.name;
}

Result<uint64_t> ServingRuntime::Submit(const InferenceRequest& request,
                                        double arrival_s) {
  if (arrival_s < 0.0) {
    return Status::InvalidArgument("arrival time must be >= 0");
  }
  const uint64_t run_id = AllocateRunId();

  // Per-query channel scope: concurrent queries must never share topics,
  // queues or buckets (phase ids restart at 0 for every query).
  InferenceRequest scoped = request;
  scoped.options.channel_scope =
      StrFormat("%sq%llu-", request.options.channel_scope.c_str(),
                static_cast<unsigned long long>(run_id));

  FSD_ASSIGN_OR_RETURN(std::unique_ptr<RunState> state,
                       PrepareRunState(cloud_, scoped, run_id));
  // From here the query owns provisioned channel resources; release them
  // if registration fails and the query never becomes schedulable.
  Result<std::string> worker_fn = EnsureWorkerFunction(state->options);
  Result<std::string> coordinator = EnsureCoordinatorFunction(state->options);
  if (!worker_fn.ok() || !coordinator.ok()) {
    TeardownChannelResources(cloud_, state->options).ok();
    return worker_fn.ok() ? coordinator.status() : worker_fn.status();
  }
  state->worker_function = std::move(*worker_fn);
  const std::string coordinator_fn = std::move(*coordinator);

  auto query = std::make_unique<Query>();
  query->state = std::move(state);
  query->outcome.query_id = run_id;
  query->outcome.arrival_s = cloud_->sim()->Now() + arrival_s;
  Query* raw = query.get();
  queries_.emplace(run_id, std::move(query));
  submission_order_.push_back(run_id);

  cloud_->sim()->AddProcess(
      StrFormat("serve-client-%llu", static_cast<unsigned long long>(run_id)),
      [this, raw, coordinator_fn]() {
        RunState* state = raw->state.get();
        raw->outcome.arrival_s = cloud_->sim()->Now();
        cloud::FaasService::InvokeOutcome invoke = cloud_->faas().InvokeAsync(
            coordinator_fn, EncodeWorkerPayload(state->run_id, 0));
        if (invoke.status.ok()) {
          cloud_->sim()->WaitSignal(state->done.get());
          raw->outcome.finish_s = cloud_->sim()->Now();
          // Collecting moves the state's outputs/metrics, so wait until
          // every launched worker (stragglers included) has exited too.
          cloud_->sim()->WaitSignal(state->quiesced.get());
          raw->outcome.report =
              CollectReport(state, raw->outcome.arrival_s,
                            raw->outcome.finish_s);
        } else {
          raw->outcome.finish_s = cloud_->sim()->Now();
          raw->outcome.report.status = invoke.status;
        }
        // Release the query's channel resources (bills the KV namespace's
        // node time) whether the query succeeded or not. Failure must not
        // fail the query.
        const Status teardown =
            TeardownChannelResources(cloud_, state->options);
        if (!teardown.ok()) {
          FSD_LOG(kWarn, "channel teardown for run %llu failed: %s",
                  static_cast<unsigned long long>(state->run_id),
                  teardown.ToString().c_str());
        }
        raw->finished = true;
        if (!raw->outcome.report.status.ok() && options_.stop_on_failure) {
          AbortAll();
        }
      },
      arrival_s);
  return run_id;
}

void ServingRuntime::AbortAll() {
  for (auto& [id, query] : queries_) {
    if (!query->finished) query->state->abort = true;
  }
}

Result<ServingReport> ServingRuntime::Drain() {
  return Drain(options_.run_until);
}

Result<ServingReport> ServingRuntime::Drain(double run_until) {
  const std::vector<cloud::BillingLine> before =
      SnapshotLedger(cloud_->billing());
  cloud_->sim()->Run(run_until);

  ServingReport report;
  report.billing = DiffLedger(before, cloud_->billing());
  accumulated_cost_ += report.billing.total_cost;
  for (uint64_t id : submission_order_) {
    Query* query = queries_.at(id).get();
    if (!query->finished) {
      // Stopped by run_until (or a deadlock upstream): report the query as
      // incomplete but leave it live — a later Drain() may finish it.
      query->outcome.finish_s = cloud_->sim()->Now();
      query->outcome.report.status = Status::DeadlineExceeded(
          "query still in flight when Drain() stopped");
    }
    report.queries.push_back(query->outcome);
    report.fleet.AddQuery(query->outcome.arrival_s, query->outcome.finish_s,
                          query->outcome.report.latency_s,
                          query->outcome.report.status.ok(),
                          query->outcome.report.metrics);
  }
  // FleetStats spans every query submitted so far, so its dollar figures
  // must span every Drain call too (this call's ledger delta alone would
  // understate cost_per_query after a resumed drain).
  report.fleet.total_cost = accumulated_cost_;
  report.fleet.Finalize();
  return report;
}

std::vector<double> PoissonArrivals(double rate_qps, int32_t count,
                                    uint64_t seed) {
  FSD_CHECK_GT(rate_qps, 0.0);
  std::vector<double> arrivals;
  arrivals.reserve(static_cast<size_t>(count > 0 ? count : 0));
  Rng rng(seed ^ 0xA221C0DEull);
  double t = 0.0;
  for (int32_t i = 0; i < count; ++i) {
    t += rng.NextExponential(1.0 / rate_qps);
    arrivals.push_back(t);
  }
  return arrivals;
}

std::vector<double> BurstArrivals(int32_t bursts, int32_t per_burst,
                                  double gap_s, double start_s) {
  std::vector<double> arrivals;
  arrivals.reserve(static_cast<size_t>(bursts) *
                   static_cast<size_t>(per_burst));
  for (int32_t b = 0; b < bursts; ++b) {
    for (int32_t q = 0; q < per_burst; ++q) {
      arrivals.push_back(start_s + gap_s * static_cast<double>(b));
    }
  }
  return arrivals;
}

}  // namespace fsd::core
