// The FSI (Fully Serverless Inference) worker — Algorithms 1 & 2 of the
// paper, parameterized by the communication channel.
#ifndef FSD_CORE_WORKER_H_
#define FSD_CORE_WORKER_H_

#include <memory>
#include <vector>

#include "cloud/cloud.h"
#include "core/channel.h"
#include "core/fsd_config.h"
#include "core/metrics.h"
#include "linalg/spmm.h"
#include "model/sparse_dnn.h"
#include "part/model_partition.h"

namespace fsd::core {

class PartitionCache;
class ShareDistributor;

/// Shared state of one inference run (owned by the runtime; read-mostly from
/// workers; the root writes outputs and fires `done`).
struct RunState {
  /// Uniques this run within the cloud: channel scopes and worker payloads
  /// carry it so shared (warm-pool-reusing) functions can dispatch among
  /// concurrently executing runs.
  uint64_t run_id = 0;
  const model::SparseDnn* dnn = nullptr;
  const part::ModelPartition* partition = nullptr;
  /// One activation map per inference batch (successive batches reuse the
  /// worker tree, as in the paper). Under cross-query batching this is the
  /// concatenation of several queries' batch lists; `members` records which
  /// contiguous slice belongs to which query.
  std::vector<const linalg::ActivationMap*> batches;

  /// One query served by this run. A plain run has exactly one member
  /// spanning every batch; a batched serving run has one member per
  /// coalesced query, each owning the contiguous slice
  /// [batch_begin, batch_begin + batch_count) of `batches`/`outputs`.
  /// Workers never look at members — the FSI loop is per batch — only
  /// report collection does, to slice outputs and attribute metrics.
  struct Member {
    uint64_t query_id = 0;
    int32_t batch_begin = 0;
    int32_t batch_count = 0;
    int32_t cols = 0;  ///< sample columns across the member's batches
  };
  std::vector<Member> members;

  /// Sum of members' cols (the attribution denominator).
  int64_t TotalCols() const {
    int64_t total = 0;
    for (const Member& m : members) total += m.cols;
    return total;
  }
  FsdOptions options;
  cloud::CloudEnv* cloud = nullptr;

  /// Name of the registered worker function (unique per run).
  std::string worker_function;

  /// Effective partition-cache family for this run: options.model_family
  /// (or an identity derived from the generator config) qualified with a
  /// fingerprint of the partition's row-ownership layout, so shares under
  /// a different partitioning — another P, or another scheme at the same
  /// P — can never alias. Set by PrepareRunState; empty disables caching
  /// for the run.
  std::string cache_family;

  /// Serving-runtime-owned peer share distributor (λScale-style fast
  /// scaling). When set and the instance cache misses, LoadModelShare asks
  /// it for the share before paying the object-storage read; null (plain
  /// RunInference, feature off) keeps the storage-only cold path.
  ShareDistributor* share_distributor = nullptr;

  /// --- outputs ---
  std::vector<linalg::ActivationMap> outputs;  // per batch, written by root
  std::shared_ptr<sim::SimSignal> done;        // fired by root
  RunMetrics metrics;                          // slot per worker
  std::vector<Status> worker_status;
  double launch_complete_s = 0.0;  ///< latest worker start time (virtual)
  bool abort = false;              ///< any worker failed; drain quickly

  /// --- quiescence tracking ---
  /// `done` fires when the ROOT finishes, but siblings (or workers still in
  /// their start delay), and even the coordinator mid-launch-loop, may
  /// outlive the root. Concurrent serving must not collect (and move out
  /// of) this state until nothing can touch it anymore; `quiesced` fires at
  /// that point. Mutated only inside the simulation (single-threaded by
  /// construction).
  int32_t workers_launched = 0;    ///< successful worker InvokeAsync calls
  int32_t workers_completed = 0;   ///< worker handlers that returned
  int32_t coordinators_active = 0; ///< coordinator handlers in flight
  std::shared_ptr<sim::SimSignal> quiesced;

  /// Fires `quiesced` once the run is finished, no launched worker is
  /// still in flight, and no coordinator could launch more. Called after
  /// every worker and coordinator exit.
  void MaybeQuiesce() {
    if (done->fired() && coordinators_active == 0 &&
        workers_completed == workers_launched) {
      quiesced->Fire();
    }
  }

  /// Phases per batch: L layer phases plus one PhaseBlock per collective
  /// op, each CollectiveRounds(topology, P) wide (through-root keeps the
  /// legacy L + 4 layout). Must match the PhaseAllocator built in RunBatch.
  int32_t PhasesPerBatch() const {
    return PhaseAllocator(0, dnn->layers(),
                          CollectiveRounds(options.collective_topology,
                                           options.num_workers))
        .phases_per_batch();
  }
};

/// Worker invocation payload: which run this invocation belongs to and the
/// invoked worker's id. The run id lets one registered FaaS function (and
/// therefore one warm-instance pool) serve many concurrent runs.
struct WorkerPayload {
  uint64_t run_id = 0;
  int32_t worker_id = 0;
};

Bytes EncodeWorkerPayload(uint64_t run_id, int32_t worker_id);
Result<WorkerPayload> DecodeWorkerPayload(const Bytes& payload);

/// Returns this FaaS instance's partition cache, creating it on first use
/// (a cold instance starts empty). The cache rides the instance-local
/// state, so it survives exactly as long as the warm instance does; the
/// byte budget is capped at half the instance's memory. Returns nullptr
/// when caching is disabled. Shared by the worker load path, the
/// ShareDistributor's peer inserts and the serving runtime's pre-warm
/// tasks — all three must agree on one cache per instance.
PartitionCache* InstancePartitionCache(cloud::FaasContext* ctx,
                                       const FsdOptions& options);

/// The FaaS handler body for a worker invocation (payload already decoded
/// and routed to its run). Invokes its children (hierarchical launch), loads
/// its model share, then runs the FSI loop for every batch and participates
/// in barrier + reduce.
void RunFsiWorker(cloud::FaasContext* ctx, RunState* state, int32_t worker_id);

}  // namespace fsd::core

#endif  // FSD_CORE_WORKER_H_
