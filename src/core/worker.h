// The FSI (Fully Serverless Inference) worker — Algorithms 1 & 2 of the
// paper, parameterized by the communication channel.
#ifndef FSD_CORE_WORKER_H_
#define FSD_CORE_WORKER_H_

#include <memory>
#include <vector>

#include "cloud/cloud.h"
#include "core/channel.h"
#include "core/fsd_config.h"
#include "core/metrics.h"
#include "linalg/spmm.h"
#include "model/sparse_dnn.h"
#include "part/model_partition.h"

namespace fsd::core {

/// Shared state of one inference run (owned by the runtime; read-mostly from
/// workers; the root writes outputs and fires `done`).
struct RunState {
  const model::SparseDnn* dnn = nullptr;
  const part::ModelPartition* partition = nullptr;
  /// One activation map per inference batch (successive batches reuse the
  /// worker tree, as in the paper).
  std::vector<const linalg::ActivationMap*> batches;
  FsdOptions options;
  cloud::CloudEnv* cloud = nullptr;

  /// Name of the registered worker function (unique per run).
  std::string worker_function;

  /// --- outputs ---
  std::vector<linalg::ActivationMap> outputs;  // per batch, written by root
  std::shared_ptr<sim::SimSignal> done;        // fired by root
  RunMetrics metrics;                          // slot per worker
  std::vector<Status> worker_status;
  double launch_complete_s = 0.0;  ///< latest worker start time (virtual)
  bool abort = false;              ///< any worker failed; drain quickly

  /// Phases per batch: L layers + barrier arrive/release + reduce + spare.
  int32_t PhasesPerBatch() const { return dnn->layers() + 4; }
};

/// Encodes/decodes the worker invocation payload (the child's worker id).
Bytes EncodeWorkerPayload(int32_t worker_id);
Result<int32_t> DecodeWorkerPayload(const Bytes& payload);

/// The FaaS handler body for a worker invocation. Invokes its children
/// (hierarchical launch), loads its model share, then runs the FSI loop for
/// every batch and participates in barrier + reduce.
void RunFsiWorker(cloud::FaasContext* ctx, RunState* state);

}  // namespace fsd::core

#endif  // FSD_CORE_WORKER_H_
