#include "core/object_channel.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "sim/simulation.h"

namespace fsd::core {

std::string ObjectChannel::BucketName(int32_t target,
                                      const FsdOptions& options) {
  return StrFormat("%sbucket-%d", options.channel_scope.c_str(),
                   target % options.num_buckets);
}

std::string ObjectChannel::ObjectKey(int32_t phase, int32_t source,
                                     int32_t target, bool empty_marker) {
  return StrFormat("%d/%d/%d_%d.%s", phase, target, source, target,
                   empty_marker ? "nul" : "dat");
}

Status ObjectChannel::Provision(cloud::CloudEnv* cloud,
                                const FsdOptions& options) {
  for (int32_t b = 0; b < options.num_buckets; ++b) {
    const std::string bucket =
        StrFormat("%sbucket-%d", options.channel_scope.c_str(), b);
    if (!cloud->objects().BucketExists(bucket)) {
      FSD_RETURN_IF_ERROR(cloud->objects().CreateBucket(bucket));
    }
  }
  return Status::OK();
}

Status ObjectChannel::SendPhase(WorkerEnv* env, int32_t phase,
                                const linalg::ActivationMap& source,
                                const std::vector<SendSpec>& sends) {
  if (sends.empty()) return Status::OK();
  const FsdOptions& options = *env->options;
  LayerMetrics& metrics = env->metrics->Layer(phase);
  metrics.send_targets += static_cast<int64_t>(sends.size());

  struct Outgoing {
    std::string bucket;
    std::string key;
    Bytes body;
    bool is_nul;
  };
  std::vector<Outgoing> outgoing;
  uint64_t serialize_bytes = 0;
  for (const SendSpec& send : sends) {
    metrics.send_rows_mapped += static_cast<int64_t>(send.rows->size());
    // One unbounded chunk per target (object payloads are size-free).
    EncodeResult encoded = EncodeRows(source, *send.rows,
                                      /*max_chunk_bytes=*/0,
                                      WireCodecFromOptions(options));
    FSD_CHECK_EQ(encoded.chunks.size(), 1u);
    metrics.send_rows_active += encoded.active_rows;
    RowChunk& chunk = encoded.chunks[0];
    const bool is_empty = encoded.active_rows == 0;
    if (is_empty && options.nul_markers) {
      // 0-byte marker: the target learns there is nothing to read.
      outgoing.push_back(
          {BucketName(send.target, options),
           ObjectKey(phase, env->worker_id, send.target, /*empty=*/true),
           Bytes{},
           /*is_nul=*/true});
      ++metrics.puts_nul;
      continue;
    }
    serialize_bytes += AccountSendChunk(&metrics, chunk);
    ++metrics.puts_dat;
    outgoing.push_back(
        {BucketName(send.target, options),
         ObjectKey(phase, env->worker_id, send.target, /*empty=*/false),
         std::move(chunk.wire),
         /*is_nul=*/false});
  }

  // Serialization CPU (parallel over IPC lanes).
  FSD_RETURN_IF_ERROR(
      ChargeSerializeCpu(env, &metrics, serialize_bytes, outgoing.size()));

  // Non-blocking multi-threaded PUTs: lane-scheduled dispatch callbacks.
  DispatchLanes lanes(options.io_lanes,
                      env->cloud->latency().object_put.median_s);
  for (Outgoing& out : outgoing) {
    const double offset = lanes.NextOffset();
    cloud::CloudEnv* cloud = env->cloud;
    env->cloud->sim()->ScheduleCallback(
        offset, [cloud, bucket = std::move(out.bucket),
                 key = std::move(out.key), body = std::move(out.body)]() {
          cloud->objects().Put(bucket, key, body);
        });
  }
  FSD_RETURN_IF_ERROR(ChargeDispatchOverhead(env, outgoing.size()));
  return Status::OK();
}

Result<linalg::ActivationMap> ObjectChannel::ReceivePhase(
    WorkerEnv* env, int32_t phase, const std::vector<int32_t>& sources) {
  linalg::ActivationMap received;
  if (sources.empty()) return received;
  const FsdOptions& options = *env->options;
  LayerMetrics& metrics = env->metrics->Layer(phase);
  const double start = env->cloud->sim()->Now();
  const auto& compute = env->cloud->compute();

  std::set<int32_t> pending(sources.begin(), sources.end());
  const std::string bucket = BucketName(env->worker_id, options);
  const std::string prefix =
      StrFormat("%d/%d/", phase, env->worker_id);

  while (!pending.empty()) {
    FSD_RETURN_IF_ERROR(env->CheckAbort());
    FSD_RETURN_IF_ERROR(env->faas->CheckDeadline());
    FSD_ASSIGN_OR_RETURN(std::vector<cloud::ObjectMeta> handles,
                         env->cloud->objects().List(bucket, prefix));
    ++metrics.lists;

    // Decide which handles to fetch this round.
    std::vector<std::pair<int32_t, std::string>> to_get;
    for (const cloud::ObjectMeta& meta : handles) {
      // Key tail: "{source}_{target}.ext"
      const size_t slash = meta.key.rfind('/');
      const std::string tail = meta.key.substr(slash + 1);
      const int32_t source = std::atoi(tail.c_str());
      const bool is_nul = tail.size() > 4 &&
                          tail.compare(tail.size() - 4, 4, ".nul") == 0;
      if (!pending.contains(source)) {
        if (!is_nul) ++metrics.redundant_skipped;  // already received
        continue;
      }
      if (is_nul) {
        // Source had nothing to transmit; no GET needed.
        pending.erase(source);
        ++metrics.nul_skipped;
        continue;
      }
      to_get.push_back({source, meta.key});
    }

    // Parallel GETs on the IPC lanes.
    if (!to_get.empty()) {
      std::vector<double> latencies;
      uint64_t got_bytes = 0;
      for (auto& [source, key] : to_get) {
        cloud::ObjectStore::GetOutcome got =
            env->cloud->objects().Get(bucket, key);
        ++metrics.gets;
        if (!got.status.ok()) return got.status;
        latencies.push_back(got.latency);
        got_bytes += got.body.size();
        metrics.recv_wire_bytes += static_cast<int64_t>(got.body.size());
        const size_t before = received.size();
        FSD_RETURN_IF_ERROR(
            DecodeRows(got.body, &received));
        metrics.recv_rows += static_cast<int64_t>(received.size() - before);
        pending.erase(source);
      }
      const double get_makespan =
          sim::ParallelMakespan(latencies, options.io_lanes);
      const double deser_s =
          static_cast<double>(got_bytes) / compute.deserialize_bytes_per_s;
      metrics.deserialize_s += deser_s;
      FSD_RETURN_IF_ERROR(env->faas->SleepFor(get_makespan + deser_s));
    } else if (!pending.empty()) {
      // Nothing new this scan; brief back-off before re-listing keeps the
      // LIST count (and cost) down, as in the paper's optimization.
      FSD_RETURN_IF_ERROR(env->faas->SleepFor(options.object_scan_interval_s));
    }
  }

  metrics.recv_wait_s += env->cloud->sim()->Now() - start;
  return received;
}

}  // namespace fsd::core
