#include "core/object_channel.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "sim/simulation.h"

namespace fsd::core {

std::string ObjectChannel::BucketName(int32_t target,
                                      const FsdOptions& options) {
  return StrFormat("%sbucket-%d", options.channel_scope.c_str(),
                   target % options.num_buckets);
}

std::string ObjectChannel::ObjectKey(int32_t phase, int32_t source,
                                     int32_t target, bool empty_marker) {
  return StrFormat("%d/%d/%d_%d.%s", phase, target, source, target,
                   empty_marker ? "nul" : "dat");
}

Status ObjectChannel::Provision(cloud::CloudEnv* cloud,
                                const FsdOptions& options) {
  for (int32_t b = 0; b < options.num_buckets; ++b) {
    const std::string bucket =
        StrFormat("%sbucket-%d", options.channel_scope.c_str(), b);
    if (!cloud->objects().BucketExists(bucket)) {
      FSD_RETURN_IF_ERROR(cloud->objects().CreateBucket(bucket));
    }
  }
  return Status::OK();
}

Status ObjectChannel::SendPhase(WorkerEnv* env, int32_t phase,
                                const linalg::ActivationMap& source,
                                const std::vector<SendSpec>& sends) {
  if (sends.empty()) return Status::OK();
  const FsdOptions& options = *env->options;
  LayerMetrics& metrics = env->metrics->Layer(phase);
  metrics.send_targets += static_cast<int64_t>(sends.size());

  // Plan first: per-target raw bytes are input-determined, so the CPU
  // charge is computable before encoding. Targets taking the .nul-marker
  // path never encode at all.
  uint64_t serialize_bytes = 0;
  std::vector<EncodePlan> plans(sends.size());
  for (size_t s = 0; s < sends.size(); ++s) {
    metrics.send_rows_mapped += static_cast<int64_t>(sends[s].rows->size());
    plans[s] = PlanRows(source, *sends[s].rows, /*max_chunk_bytes=*/0);
    metrics.send_rows_active += plans[s].active_rows;
    if (plans[s].active_rows == 0 && options.nul_markers) continue;
    serialize_bytes += plans[s].raw_bytes;
  }

  // Serialization CPU (parallel over IPC lanes), with the encode itself
  // run under the charged window; accounting and PUT dispatch follow the
  // join. Every send yields exactly one outgoing object (.dat or .nul).
  std::vector<EncodeResult> encoded(sends.size());
  FSD_RETURN_IF_ERROR(OffloadSerializeCpu(
      env, &metrics, serialize_bytes, sends.size(), [&]() {
        for (size_t s = 0; s < sends.size(); ++s) {
          if (plans[s].active_rows == 0 && options.nul_markers) continue;
          // One unbounded chunk per target (object payloads are size-free).
          encoded[s] = EncodeRows(source, *sends[s].rows,
                                  /*max_chunk_bytes=*/0,
                                  WireCodecFromOptions(options));
        }
      }));

  struct Outgoing {
    std::string bucket;
    std::string key;
    Bytes body;
    bool is_nul;
  };
  std::vector<Outgoing> outgoing;
  outgoing.reserve(sends.size());
  for (size_t s = 0; s < sends.size(); ++s) {
    const SendSpec& send = sends[s];
    if (plans[s].active_rows == 0 && options.nul_markers) {
      // 0-byte marker: the target learns there is nothing to read.
      outgoing.push_back(
          {BucketName(send.target, options),
           ObjectKey(phase, env->worker_id, send.target, /*empty=*/true),
           Bytes{},
           /*is_nul=*/true});
      ++metrics.puts_nul;
      continue;
    }
    FSD_CHECK_EQ(encoded[s].chunks.size(), 1u);
    RowChunk& chunk = encoded[s].chunks[0];
    AccountSendChunk(&metrics, chunk);
    ++metrics.puts_dat;
    outgoing.push_back(
        {BucketName(send.target, options),
         ObjectKey(phase, env->worker_id, send.target, /*empty=*/false),
         std::move(chunk.wire),
         /*is_nul=*/false});
  }

  // Non-blocking multi-threaded PUTs: lane-scheduled dispatch callbacks.
  DispatchLanes lanes(options.io_lanes,
                      env->cloud->latency().object_put.median_s);
  for (Outgoing& out : outgoing) {
    const double offset = lanes.NextOffset();
    cloud::CloudEnv* cloud = env->cloud;
    env->cloud->sim()->ScheduleCallback(
        offset, [cloud, bucket = std::move(out.bucket),
                 key = std::move(out.key), body = std::move(out.body)]() {
          cloud->objects().Put(bucket, key, body);
        });
  }
  FSD_RETURN_IF_ERROR(ChargeDispatchOverhead(env, outgoing.size()));
  return Status::OK();
}

Result<linalg::ActivationMap> ObjectChannel::ReceivePhase(
    WorkerEnv* env, int32_t phase, const std::vector<int32_t>& sources) {
  linalg::ActivationMap received;
  if (sources.empty()) return received;
  const FsdOptions& options = *env->options;
  LayerMetrics& metrics = env->metrics->Layer(phase);
  const double start = env->cloud->sim()->Now();
  const auto& compute = env->cloud->compute();

  std::set<int32_t> pending(sources.begin(), sources.end());
  const std::string bucket = BucketName(env->worker_id, options);
  const std::string prefix =
      StrFormat("%d/%d/", phase, env->worker_id);

  while (!pending.empty()) {
    FSD_RETURN_IF_ERROR(env->CheckAbort());
    FSD_RETURN_IF_ERROR(env->faas->CheckDeadline());
    FSD_ASSIGN_OR_RETURN(std::vector<cloud::ObjectMeta> handles,
                         env->cloud->objects().List(bucket, prefix));
    ++metrics.lists;

    // Decide which handles to fetch this round.
    std::vector<std::pair<int32_t, std::string>> to_get;
    for (const cloud::ObjectMeta& meta : handles) {
      // Key tail: "{source}_{target}.ext"
      const size_t slash = meta.key.rfind('/');
      const std::string tail = meta.key.substr(slash + 1);
      const int32_t source = std::atoi(tail.c_str());
      const bool is_nul = tail.size() > 4 &&
                          tail.compare(tail.size() - 4, 4, ".nul") == 0;
      if (!pending.contains(source)) {
        if (!is_nul) ++metrics.redundant_skipped;  // already received
        continue;
      }
      if (is_nul) {
        // Source had nothing to transmit; no GET needed.
        pending.erase(source);
        ++metrics.nul_skipped;
        continue;
      }
      to_get.push_back({source, meta.key});
    }

    // Parallel GETs on the IPC lanes. Fetch and bookkeeping stay inline
    // (they drive the poll loop); the row decode for the whole round is
    // batched and runs under the round's GET+deserialize window.
    if (!to_get.empty()) {
      std::vector<double> latencies;
      std::vector<Bytes> bodies;
      bodies.reserve(to_get.size());
      uint64_t got_bytes = 0;
      for (auto& [source, key] : to_get) {
        cloud::ObjectStore::GetOutcome got =
            env->cloud->objects().Get(bucket, key);
        ++metrics.gets;
        if (!got.status.ok()) return got.status;
        latencies.push_back(got.latency);
        got_bytes += got.body.size();
        metrics.recv_wire_bytes += static_cast<int64_t>(got.body.size());
        bodies.push_back(std::move(got.body));
        pending.erase(source);
      }
      const double get_makespan =
          sim::ParallelMakespan(latencies, options.io_lanes);
      const double deser_s =
          static_cast<double>(got_bytes) / compute.deserialize_bytes_per_s;
      metrics.deserialize_s += deser_s;
      metrics.offload_calls += 1;
      metrics.offload_virtual_s += get_makespan + deser_s;
      const size_t before = received.size();
      Status decoded;
      FSD_RETURN_IF_ERROR(
          env->faas->OffloadFor(get_makespan + deser_s, [&]() {
            for (const Bytes& body : bodies) {
              decoded = DecodeRows(body, &received);
              if (!decoded.ok()) return;
            }
          }));
      FSD_RETURN_IF_ERROR(decoded);
      metrics.recv_rows += static_cast<int64_t>(received.size() - before);
    } else if (!pending.empty()) {
      // Nothing new this scan; brief back-off before re-listing keeps the
      // LIST count (and cost) down, as in the paper's optimization.
      FSD_RETURN_IF_ERROR(env->faas->SleepFor(options.object_scan_interval_s));
    }
  }

  metrics.recv_wait_s += env->cloud->sim()->Now() - start;
  return received;
}

}  // namespace fsd::core
