// FsdRuntime: the public entry point of the FSD-Inference library.
//
// Owns the interaction with the simulated cloud: provisions communication
// resources (offline), registers the coordinator and worker functions,
// submits an inference request, and collects latency / metrics / billing
// into an InferenceReport.
#ifndef FSD_CORE_RUNTIME_H_
#define FSD_CORE_RUNTIME_H_

#include <memory>
#include <vector>

#include "cloud/cloud.h"
#include "core/cost_model.h"
#include "core/fsd_config.h"
#include "core/metrics.h"
#include "core/worker.h"
#include "model/sparse_dnn.h"
#include "part/model_partition.h"

namespace fsd::core {

struct InferenceRequest {
  const model::SparseDnn* dnn = nullptr;
  const part::ModelPartition* partition = nullptr;
  /// One or more pre-buffered batches (the paper assumes batching upstream).
  std::vector<const linalg::ActivationMap*> batches;
  FsdOptions options;
};

/// Per-dimension billing delta attributable to one run.
struct BillingDelta {
  double faas_cost = 0.0;
  double comm_cost = 0.0;
  double total_cost = 0.0;
  double quantities[static_cast<int>(
      cloud::BillingDimension::kDimensionCount)] = {0};

  double quantity(cloud::BillingDimension dim) const {
    return quantities[static_cast<int>(dim)];
  }
};

struct InferenceReport {
  Status status;
  /// End-to-end query latency: request submission -> root returns x^L.
  double latency_s = 0.0;
  /// When the last worker of the tree had started (launch ablation metric).
  double launch_complete_s = 0.0;
  int32_t total_samples = 0;
  double per_sample_ms = 0.0;
  std::vector<linalg::ActivationMap> outputs;  ///< one per batch
  RunMetrics metrics;
  BillingDelta billing;            ///< "actual" charges for this run
  CostBreakdown predicted;         ///< cost-model prediction from metrics
  int32_t worker_memory_mb = 0;
};

/// Runs one inference request against `cloud`. Reentrant across runs on the
/// same CloudEnv (function names are uniqued; warm pools persist between
/// runs, matching repeated queries against a deployed stack).
Result<InferenceReport> RunInference(cloud::CloudEnv* cloud,
                                     const InferenceRequest& request);

}  // namespace fsd::core

#endif  // FSD_CORE_RUNTIME_H_
