// FsdRuntime: the public entry point of the FSD-Inference library.
//
// Owns the interaction with the simulated cloud: provisions communication
// resources (offline), registers the coordinator and worker functions,
// submits an inference request, and collects latency / metrics / billing
// into an InferenceReport.
#ifndef FSD_CORE_RUNTIME_H_
#define FSD_CORE_RUNTIME_H_

#include <memory>
#include <string>
#include <vector>

#include "cloud/cloud.h"
#include "core/cost_model.h"
#include "core/fsd_config.h"
#include "core/metrics.h"
#include "core/worker.h"
#include "model/sparse_dnn.h"
#include "part/model_partition.h"

namespace fsd::core {

struct InferenceRequest {
  const model::SparseDnn* dnn = nullptr;
  const part::ModelPartition* partition = nullptr;
  /// One or more pre-buffered batches (the paper assumes batching upstream).
  std::vector<const linalg::ActivationMap*> batches;
  FsdOptions options;
};

/// Per-dimension billing delta attributable to one run.
struct BillingDelta {
  double faas_cost = 0.0;
  double comm_cost = 0.0;
  double total_cost = 0.0;
  double quantities[static_cast<int>(
      cloud::BillingDimension::kDimensionCount)] = {0};

  double quantity(cloud::BillingDimension dim) const {
    return quantities[static_cast<int>(dim)];
  }
};

struct InferenceReport {
  Status status;
  /// End-to-end query latency: request submission -> root returns x^L.
  double latency_s = 0.0;
  /// When the last worker of the tree had started (launch ablation metric).
  double launch_complete_s = 0.0;
  int32_t total_samples = 0;
  double per_sample_ms = 0.0;
  std::vector<linalg::ActivationMap> outputs;  ///< one per batch
  RunMetrics metrics;
  BillingDelta billing;            ///< "actual" charges for this run
  CostBreakdown predicted;         ///< cost-model prediction from metrics
  int32_t worker_memory_mb = 0;
};

/// Runs one inference request against `cloud`. Reentrant across runs on the
/// same CloudEnv (function names are uniqued; warm pools persist between
/// runs, matching repeated queries against a deployed stack).
Result<InferenceReport> RunInference(cloud::CloudEnv* cloud,
                                     const InferenceRequest& request);

/// ---- building blocks shared by RunInference and ServingRuntime ----
/// (serving.h runs many requests as overlapping processes in one
/// Simulation; these pieces keep the two paths byte-identical.)

/// Allocates a process-unique run id. Both entry points draw from the same
/// counter so resource names never collide on a shared CloudEnv.
uint64_t AllocateRunId();

/// The effective partition-cache family PrepareRunState stamps into
/// RunState::cache_family: the request's model_family (or a fingerprint of
/// the generator config) qualified with the partition-layout fingerprint.
/// Empty when the request's options disable caching. Exposed because the
/// serving runtime's pre-warm path must name the family BEFORE any run of
/// it exists.
std::string DeriveCacheFamily(const InferenceRequest& request);

/// Request validation alone (model/partition/batch shape checks), without
/// provisioning anything. The serving runtime's batch aggregator validates
/// at Submit() but defers PrepareRunState until the batch flushes, so
/// callers still get synchronous errors for malformed requests.
Status ValidateInferenceRequest(const InferenceRequest& request);

/// Sample columns across a validated request's batches (a batch's width is
/// its first row's SparseVector dim). The batching size-cap currency and
/// the per-member cost-attribution denominator — one definition so the two
/// can never diverge.
int32_t RequestSampleCols(const InferenceRequest& request);

/// Validates `request`, applies option defaults (worker memory), provisions
/// the channel resources named by `options.channel_scope`, and builds the
/// per-run shared state. Does NOT register FaaS functions: RunInference
/// registers per-run functions while ServingRuntime registers shared
/// dispatchers (one warm pool across queries); callers must set
/// `RunState::worker_function` before the coordinator executes.
Result<std::unique_ptr<RunState>> PrepareRunState(
    cloud::CloudEnv* cloud, const InferenceRequest& request, uint64_t run_id);

/// Coordinator handler body (paper §VI-A1): parses the request and invokes
/// the first level of the worker tree. Fires the run's done-signal on
/// failure or when the run was aborted before it started.
void RunCoordinator(cloud::FaasContext* ctx, RunState* state);

/// Assembles one member query's report (latency, outputs, metrics,
/// cost-model prediction) once the run's done-signal has fired; `t0`/`t1`
/// are the member's submission and the run's completion virtual times.
/// Moves the member's slice of the outputs out of the state; metrics are
/// sliced by attribution, not consumed:
///  - per-layer counters (communication, compute) are attributed exactly —
///    each batch's phases belong to exactly one member;
///  - tree-level costs every member shares (worker durations, model-share
///    reads, cache counters, launch time) are split by batch share
///    (member cols / total cols), with integer counters apportioned by
///    cumulative rounding so member slices always sum exactly to the run's
///    totals (workload-level predictions must reconcile with the ledger);
///  - cold starts are attributed to the first member (they happened once).
/// The sliced RunMetrics carries the member's share in `tree_share` so
/// PredictFromMetrics bills the member its fraction of the P worker
/// invocations. Billing is the caller's concern: under concurrent runs
/// only workload-level ledger diffs are meaningful.
InferenceReport CollectMemberReport(RunState* state, size_t member_index,
                                    double t0, double t1);

/// Single-member convenience (RunInference's whole-run collection): the
/// run's one member spans every batch, so this is CollectMemberReport of
/// member 0 — byte-identical to pre-batching collection.
InferenceReport CollectReport(RunState* state, double t0, double t1);

/// Ledger snapshot/diff used to attribute "actual" charges to an interval.
std::vector<cloud::BillingLine> SnapshotLedger(
    const cloud::BillingLedger& ledger);
BillingDelta DiffLedger(const std::vector<cloud::BillingLine>& before,
                        const cloud::BillingLedger& after);

}  // namespace fsd::core

#endif  // FSD_CORE_RUNTIME_H_
