// FsdRuntime: the public entry point of the FSD-Inference library.
//
// Owns the interaction with the simulated cloud: provisions communication
// resources (offline), registers the coordinator and worker functions,
// submits an inference request, and collects latency / metrics / billing
// into an InferenceReport.
#ifndef FSD_CORE_RUNTIME_H_
#define FSD_CORE_RUNTIME_H_

#include <memory>
#include <vector>

#include "cloud/cloud.h"
#include "core/cost_model.h"
#include "core/fsd_config.h"
#include "core/metrics.h"
#include "core/worker.h"
#include "model/sparse_dnn.h"
#include "part/model_partition.h"

namespace fsd::core {

struct InferenceRequest {
  const model::SparseDnn* dnn = nullptr;
  const part::ModelPartition* partition = nullptr;
  /// One or more pre-buffered batches (the paper assumes batching upstream).
  std::vector<const linalg::ActivationMap*> batches;
  FsdOptions options;
};

/// Per-dimension billing delta attributable to one run.
struct BillingDelta {
  double faas_cost = 0.0;
  double comm_cost = 0.0;
  double total_cost = 0.0;
  double quantities[static_cast<int>(
      cloud::BillingDimension::kDimensionCount)] = {0};

  double quantity(cloud::BillingDimension dim) const {
    return quantities[static_cast<int>(dim)];
  }
};

struct InferenceReport {
  Status status;
  /// End-to-end query latency: request submission -> root returns x^L.
  double latency_s = 0.0;
  /// When the last worker of the tree had started (launch ablation metric).
  double launch_complete_s = 0.0;
  int32_t total_samples = 0;
  double per_sample_ms = 0.0;
  std::vector<linalg::ActivationMap> outputs;  ///< one per batch
  RunMetrics metrics;
  BillingDelta billing;            ///< "actual" charges for this run
  CostBreakdown predicted;         ///< cost-model prediction from metrics
  int32_t worker_memory_mb = 0;
};

/// Runs one inference request against `cloud`. Reentrant across runs on the
/// same CloudEnv (function names are uniqued; warm pools persist between
/// runs, matching repeated queries against a deployed stack).
Result<InferenceReport> RunInference(cloud::CloudEnv* cloud,
                                     const InferenceRequest& request);

/// ---- building blocks shared by RunInference and ServingRuntime ----
/// (serving.h runs many requests as overlapping processes in one
/// Simulation; these pieces keep the two paths byte-identical.)

/// Allocates a process-unique run id. Both entry points draw from the same
/// counter so resource names never collide on a shared CloudEnv.
uint64_t AllocateRunId();

/// Validates `request`, applies option defaults (worker memory), provisions
/// the channel resources named by `options.channel_scope`, and builds the
/// per-run shared state. Does NOT register FaaS functions: RunInference
/// registers per-run functions while ServingRuntime registers shared
/// dispatchers (one warm pool across queries); callers must set
/// `RunState::worker_function` before the coordinator executes.
Result<std::unique_ptr<RunState>> PrepareRunState(
    cloud::CloudEnv* cloud, const InferenceRequest& request, uint64_t run_id);

/// Coordinator handler body (paper §VI-A1): parses the request and invokes
/// the first level of the worker tree. Fires the run's done-signal on
/// failure or when the run was aborted before it started.
void RunCoordinator(cloud::FaasContext* ctx, RunState* state);

/// Assembles the per-query report (latency, outputs, metrics, cost-model
/// prediction) once the run's done-signal has fired; `t0`/`t1` are the
/// submission and completion virtual times. Consumes the state's outputs
/// and metrics. Billing is the caller's concern: under concurrent runs only
/// workload-level ledger diffs are meaningful.
InferenceReport CollectReport(RunState* state, double t0, double t1);

/// Ledger snapshot/diff used to attribute "actual" charges to an interval.
std::vector<cloud::BillingLine> SnapshotLedger(
    const cloud::BillingLedger& ledger);
BillingDelta DiffLedger(const std::vector<cloud::BillingLine>& before,
                        const cloud::BillingLedger& after);

}  // namespace fsd::core

#endif  // FSD_CORE_RUNTIME_H_
