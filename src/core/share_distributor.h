// ShareDistributor: λScale-style peer-to-peer model-share distribution
// (arXiv:2502.09922 §4 "fast model scaling").
//
// A flash crowd turns one model family's cold start into P concurrent
// object-storage reads of the SAME bytes: every cold worker instance pulls
// its share through the storage front door at GET pricing and storage
// latency. λScale's observation is that after the FIRST read the bytes are
// already inside the fleet — in a warm instance's memory — and moving them
// instance-to-instance over the NAT-punched fabric is both faster and
// cheaper than another storage round trip.
//
// The distributor sits between LoadModelShare (worker.cc) and the
// per-instance PartitionCache:
//
//  - a REGISTRY maps (family, partition_id, version) to the warm instances
//    whose caches hold that share ("holders"). Holders are validated lazily
//    against the live cache (weak reference + Contains), so instances
//    reclaimed at keep-alive expiry fall out of the registry on the next
//    lookup instead of serving ghosts.
//  - a cold requester whose cache missed calls Acquire. With a warm holder
//    available the share streams over the P2P fabric in chunks (billed per
//    connection + byte); pairs whose hole punch failed fall back to a KV
//    relay namespace (billed per request + processed byte). The delivered
//    chunks are byte-identical across both transports.
//  - MULTICAST: concurrent requesters of one share form a distribution
//    tree. The first requester (no holder, nothing in flight) is sent to
//    storage; everyone else waits and is released against the growing
//    holder set according to the configured CollectiveTopology —
//    through-root streams every requester from the first holder (star),
//    binomial admits as many concurrent transfers as there are holders
//    (each completed transfer doubles the serving capacity: ceil(log2 P)
//    generations), ring admits one at a time chained off the most recent
//    holder. P cold instances therefore cost ~1 storage read plus P-1
//    peer transfers.
//  - every failure path (holder died, punch + relay both failed, waiters
//    timed out) degrades to the storage read the caller was going to do
//    anyway; the distributor can delay a load, never lose one.
//
// Determinism: transfers carry deterministically generated chunk payloads
// (a keyed byte pattern of the share's real size — the actual weights live
// in the shared in-memory model, as with the phantom storage objects), so
// byte-identity of relay vs. punched delivery is checkable and replays are
// stable. Outputs never depend on the distributor: it changes WHERE bytes
// come from, never what workers compute.
//
// Billing mirrors: every dollar the transfer path bills
// (kP2pConnection/kP2pByte, kv requests/processed bytes) is counted in the
// requester's WorkerMetrics share_* mirrors, so PredictFromMetrics
// reconciles with the ledger exactly (see ShareTransferCost).
//
// Lifetime: one distributor per serving runtime; Teardown (or destruction)
// deletes the fabric session and the lazily created relay namespace. The
// relay namespace's node-seconds bill lands at teardown, after the serving
// report is drained (see docs/COST_MODEL.md).
#ifndef FSD_CORE_SHARE_DISTRIBUTOR_H_
#define FSD_CORE_SHARE_DISTRIBUTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/cloud.h"
#include "core/fsd_config.h"
#include "core/metrics.h"
#include "core/partition_cache.h"

namespace fsd::core {

class ShareDistributor {
 public:
  struct Options {
    /// Namespaces the fabric session + relay namespace (one serving
    /// runtime's distributor must never cross-deliver into another's).
    std::string scope = "shares";
    /// Multicast shape for concurrent requesters of one share (see file
    /// comment). Binomial is the λScale default.
    CollectiveTopology topology = CollectiveTopology::kBinomialTree;
    /// Chunk size on the punched fabric (TCP stream; large chunks amortize
    /// the per-send dispatch latency).
    uint64_t peer_chunk_bytes = 4ull * 1024 * 1024;
    /// Chunk size on the KV relay (value-capped like the KV channel).
    uint64_t relay_chunk_bytes = 128ull * 1024;
    /// One blocking-pop slice while draining a transfer's chunks.
    double pop_wait_s = 0.5;
    /// Cap on waiting for an in-flight load to produce a holder (and on
    /// draining a single transfer) before falling back to storage.
    double max_wait_s = 30.0;
  };

  /// Creates the punch-brokering fabric session eagerly (control-plane,
  /// free); the relay namespace is created lazily on first punch failure.
  ShareDistributor(cloud::CloudEnv* cloud, Options options);
  ~ShareDistributor();

  ShareDistributor(const ShareDistributor&) = delete;
  ShareDistributor& operator=(const ShareDistributor&) = delete;

  /// Where Acquire says the share must come from.
  enum class Source {
    /// Delivered peer-to-peer: the share is resident in the caller's
    /// instance cache (inserted, registry updated) and the transfer's
    /// billing is mirrored into `metrics`. The caller skips its storage
    /// read AND the deserialization charge — the share moved
    /// memory-to-memory in deserialized form.
    kPeer,
    /// No (surviving) holder: the caller must read from storage. Acquire
    /// registered the caller as the share's pending storage reader —
    /// concurrent requesters are now waiting on it — so the caller MUST
    /// follow up with Publish (read succeeded) or Abandon (read failed).
    kStorage,
  };

  /// Resolves one cold share load. Blocks (virtual time) while a transfer
  /// streams or while waiting out an in-flight load; every internal
  /// failure degrades to kStorage. `metrics` receives the share_* counter
  /// mirrors (and share_loads_peer on success). `mark_prewarmed` tags a
  /// peer-delivered cache entry as planted-by-pre-warm so the first real
  /// hit is attributed to the pre-warm loop, not plain warm reuse.
  Source Acquire(cloud::FaasContext* ctx, const FsdOptions& options,
                 const std::string& family, int32_t partition_id,
                 uint64_t share_bytes, WorkerMetrics* metrics,
                 bool mark_prewarmed = false);

  /// Registers the calling instance as a holder after a successful storage
  /// read + cache insert, and releases waiters. A caller whose insert was
  /// rejected (oversize) must still call this: it resolves the pending
  /// read, and the registry simply gains no holder (the instance cannot
  /// serve what it could not cache).
  void Publish(cloud::FaasContext* ctx, const FsdOptions& options,
               const std::string& family, int32_t partition_id);

  /// Resolves a pending storage read that failed (deadline, abort) without
  /// registering a holder, so waiters stop waiting for it.
  void Abandon(const std::string& family, int32_t partition_id,
               uint64_t version);

  /// Deletes the fabric session and relay namespace (billing the relay's
  /// node-seconds). Idempotent; called by the destructor.
  void Teardown();

  /// Surviving holders for a share after pruning dead instances (tests).
  int64_t HolderCount(const std::string& family, int32_t partition_id,
                      uint64_t version);

  /// The deterministic wire encoding of transfer chunk `seq` of `total`
  /// for a share: a header (seq, total, payload size) plus a keyed byte
  /// pattern of `payload_bytes` bytes. Identical on fabric and relay —
  /// the receiver verifies every chunk against this encoding, and tests
  /// assert byte-identity of relayed deliveries with it.
  static Bytes EncodeShareChunk(const std::string& family,
                                int32_t partition_id, uint64_t version,
                                uint64_t seq, uint64_t total,
                                uint64_t payload_bytes);

  /// Chunk count for a share of `share_bytes` at `chunk_bytes` granularity
  /// (>= 1; the sizing shared by the transfer loop and the cost docs).
  static uint64_t ChunkCount(uint64_t share_bytes, uint64_t chunk_bytes);

  const Options& options() const { return options_; }
  const std::string& session() const { return session_; }
  const std::string& relay_namespace() const { return relay_ns_; }

 private:
  struct ShareKey {
    std::string family;
    int32_t partition_id = 0;
    uint64_t version = 0;
    bool operator<(const ShareKey& o) const {
      if (family != o.family) return family < o.family;
      if (partition_id != o.partition_id) return partition_id < o.partition_id;
      return version < o.version;
    }
  };
  struct Holder {
    uint64_t instance_id = 0;
    int32_t node = 0;  ///< fabric endpoint id
    std::weak_ptr<PartitionCache> cache;
  };
  struct Entry {
    std::vector<Holder> holders;
    int32_t transfers_in_progress = 0;
    int32_t storage_readers = 0;
    uint64_t next_pick = 0;  ///< round-robin cursor (binomial)
    /// Fired (and re-armed) on every state change; waiters re-evaluate.
    std::shared_ptr<sim::SimSignal> change;
  };

  /// Stable fabric endpoint id for a FaaS execution environment.
  int32_t NodeFor(uint64_t instance_id);
  /// Drops holders whose instance died or whose cache no longer holds the
  /// share (evicted, version bumped).
  void Prune(const ShareKey& key, Entry* entry);
  /// Wakes every waiter of `entry` and re-arms the signal.
  void FireChange(Entry* entry);
  /// Whether the topology admits one more concurrent transfer.
  bool AdmitsTransfer(const Entry& entry) const;
  /// The holder the topology streams the next transfer from. Skips
  /// `self_instance`; nullptr when no other holder survives.
  const Holder* PickSource(Entry* entry, uint64_t self_instance);

  /// Streams the share from `src_node` to the calling instance; true on a
  /// verified, byte-identical delivery. Mirrors billing into `metrics`.
  bool Transfer(cloud::FaasContext* ctx, const ShareKey& key,
                uint64_t share_bytes, int32_t src_node,
                WorkerMetrics* metrics);
  bool TransferPunched(cloud::FaasContext* ctx, const ShareKey& key,
                       uint64_t share_bytes, int32_t src_node,
                       int32_t dst_node, const std::string& inbox,
                       WorkerMetrics* metrics);
  bool TransferRelay(cloud::FaasContext* ctx, const ShareKey& key,
                     uint64_t share_bytes, const std::string& inbox,
                     WorkerMetrics* metrics);

  cloud::CloudEnv* cloud_;
  Options options_;
  std::string session_;
  std::string relay_ns_;
  bool relay_created_ = false;
  bool torn_down_ = false;
  int32_t next_node_ = 0;
  uint64_t next_transfer_ = 0;
  std::map<uint64_t, int32_t> nodes_;  ///< instance id -> fabric endpoint
  std::map<ShareKey, Entry> entries_;
};

}  // namespace fsd::core

#endif  // FSD_CORE_SHARE_DISTRIBUTOR_H_
