#include "core/scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/strings.h"

namespace fsd::core {

std::string_view ShedPolicyName(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kRejectNew:
      return "reject-new";
    case ShedPolicy::kShedLowestPriority:
      return "shed-lowest-priority";
  }
  return "unknown";
}

std::string_view QueueDisciplineName(QueueDiscipline discipline) {
  switch (discipline) {
    case QueueDiscipline::kFifo:
      return "fifo";
    case QueueDiscipline::kEdf:
      return "edf";
  }
  return "unknown";
}

size_t ShedVictimIndex(const std::vector<SchedQuery>& queue) {
  size_t victim = 0;
  for (size_t i = 1; i < queue.size(); ++i) {
    const SchedQuery& q = queue[i];
    const SchedQuery& v = queue[victim];
    if (q.priority != v.priority) {
      if (q.priority < v.priority) victim = i;
      continue;
    }
    if (q.deadline_s != v.deadline_s) {
      if (q.deadline_s > v.deadline_s) victim = i;
      continue;
    }
    if (q.arrival_s > v.arrival_s) victim = i;
  }
  return victim;
}

void QueuePolicy::Order(std::vector<SchedQuery>* queue) const {
  std::stable_sort(queue->begin(), queue->end(),
                   [this](const SchedQuery& a, const SchedQuery& b) {
                     return Before(a, b);
                   });
}

size_t QueuePolicy::ShedVictim(const std::vector<SchedQuery>& queue) const {
  return ShedVictimIndex(queue);
}

namespace {

class AdmitAllPolicy final : public AdmissionPolicy {
 public:
  std::string_view name() const override { return "admit-all"; }
  AdmissionDecision Decide(const SchedQuery&, const LoadSnapshot&,
                           const std::vector<SchedQuery>&) override {
    return {};
  }
};

class DepthBoundAdmission final : public AdmissionPolicy {
 public:
  DepthBoundAdmission(int32_t max_queue_depth, double max_queue_wait_s,
                      ShedPolicy shed)
      : max_queue_depth_(max_queue_depth),
        max_queue_wait_s_(max_queue_wait_s),
        shed_(shed) {}

  std::string_view name() const override { return "depth-bound"; }

  AdmissionDecision Decide(const SchedQuery& arrival, const LoadSnapshot& load,
                           const std::vector<SchedQuery>& queue) override {
    AdmissionDecision decision;
    // Wait bound: the arrival's predicted queue wait — the queries already
    // ahead of it served at the sustainable rate. Applies even below the
    // depth bound: a deep-enough backlog relative to throughput is
    // overload whatever the configured depth. An empty queue predicts no
    // wait, so the bound can never starve an idle fleet.
    if (max_queue_wait_s_ >= 0.0 && load.queued > 0 &&
        load.sustainable_qps > 0.0 && std::isfinite(load.sustainable_qps)) {
      const double predicted_wait_s =
          static_cast<double>(load.queued) / load.sustainable_qps;
      if (predicted_wait_s > max_queue_wait_s_) {
        decision.action = AdmissionDecision::Action::kReject;
        decision.reason = StrFormat(
            "predicted queue wait %.3fs exceeds bound %.3fs "
            "(%d queued at %.3f sustainable qps)",
            predicted_wait_s, max_queue_wait_s_, load.queued,
            load.sustainable_qps);
        return decision;
      }
    }
    if (max_queue_depth_ > 0 && load.queued >= max_queue_depth_) {
      if (shed_ == ShedPolicy::kShedLowestPriority && !queue.empty()) {
        const size_t victim = ShedVictimIndex(queue);
        if (queue[victim].priority < arrival.priority) {
          decision.action = AdmissionDecision::Action::kShedVictim;
          decision.victim_query_id = queue[victim].query_id;
          decision.reason = StrFormat(
              "shed for priority-%d arrival (queue at depth bound %d)",
              arrival.priority, max_queue_depth_);
          return decision;
        }
      }
      decision.action = AdmissionDecision::Action::kReject;
      decision.reason =
          StrFormat("queue depth %d at bound %d (%s)", load.queued,
                    max_queue_depth_,
                    std::string(ShedPolicyName(shed_)).c_str());
      return decision;
    }
    return decision;
  }

 private:
  int32_t max_queue_depth_ = 0;
  double max_queue_wait_s_ = -1.0;
  ShedPolicy shed_ = ShedPolicy::kRejectNew;
};

class TenantQuotaAdmission final : public AdmissionPolicy {
 public:
  TenantQuotaAdmission(std::vector<TenantQuota> quotas,
                       std::shared_ptr<AdmissionPolicy> inner)
      : inner_(std::move(inner)) {
    for (const TenantQuota& q : quotas) {
      Bucket bucket;
      bucket.rate_qps = q.rate_qps;
      bucket.burst = q.burst > 0.0 ? q.burst : std::max(1.0, q.rate_qps);
      bucket.tokens = bucket.burst;  // a fresh tenant may burst immediately
      bucket.max_queue_share = q.max_queue_share;
      buckets_[q.tenant] = bucket;
    }
  }

  std::string_view name() const override { return "tenant-quota"; }

  AdmissionDecision Decide(const SchedQuery& arrival, const LoadSnapshot& load,
                           const std::vector<SchedQuery>& queue) override {
    auto it = buckets_.find(arrival.tenant);
    if (it == buckets_.end()) return inner_->Decide(arrival, load, queue);
    Bucket& bucket = it->second;
    // Fair share of the backlog: with the arrival included, the tenant may
    // hold at most ceil(share x (queued + 1)) queue entries. Checked
    // before the rate bucket so a monopolizing tenant is named as such
    // (and keeps its tokens for when the queue thins out).
    if (bucket.max_queue_share > 0.0) {
      int32_t held = 0;
      for (const SchedQuery& q : queue) {
        if (q.tenant == arrival.tenant) ++held;
      }
      const double allowed = std::ceil(
          bucket.max_queue_share * static_cast<double>(queue.size() + 1));
      if (static_cast<double>(held + 1) > allowed) {
        AdmissionDecision decision;
        decision.action = AdmissionDecision::Action::kReject;
        decision.reason = StrFormat(
            "tenant %d over queue share %.2f (%d of %zu queued)",
            arrival.tenant, bucket.max_queue_share, held, queue.size());
        return decision;
      }
    }
    if (bucket.rate_qps > 0.0) {
      // Deterministic token refill driven by virtual time; load.now_s is
      // non-decreasing across arrivals of one trace.
      if (bucket.last_refill_s >= 0.0) {
        bucket.tokens = std::min(
            bucket.burst,
            bucket.tokens +
                (load.now_s - bucket.last_refill_s) * bucket.rate_qps);
      }
      bucket.last_refill_s = load.now_s;
      if (bucket.tokens < 1.0) {
        AdmissionDecision decision;
        decision.action = AdmissionDecision::Action::kReject;
        decision.reason = StrFormat(
            "tenant %d quota exceeded (%.3f qps, %.2f tokens)",
            arrival.tenant, bucket.rate_qps, bucket.tokens);
        return decision;
      }
      AdmissionDecision decision = inner_->Decide(arrival, load, queue);
      // Only an actually-admitted query consumes a token: a depth-bound
      // rejection downstream must not burn the tenant's budget.
      if (decision.action != AdmissionDecision::Action::kReject) {
        bucket.tokens -= 1.0;
      }
      return decision;
    }
    return inner_->Decide(arrival, load, queue);
  }

 private:
  struct Bucket {
    double rate_qps = 0.0;
    double burst = 0.0;
    double tokens = 0.0;
    double last_refill_s = -1.0;
    double max_queue_share = 0.0;
  };
  std::map<int32_t, Bucket> buckets_;
  std::shared_ptr<AdmissionPolicy> inner_;
};

class FifoQueuePolicy final : public QueuePolicy {
 public:
  std::string_view name() const override { return "fifo"; }
  bool Before(const SchedQuery& a, const SchedQuery& b) const override {
    if (a.arrival_s != b.arrival_s) return a.arrival_s < b.arrival_s;
    return a.query_id < b.query_id;
  }
};

class EdfQueuePolicy final : public QueuePolicy {
 public:
  std::string_view name() const override { return "edf"; }
  bool Before(const SchedQuery& a, const SchedQuery& b) const override {
    // Higher priority classes launch first; within a class, earliest
    // absolute deadline, then arrival order (deadline-free queries sort
    // after every deadline-carrying one: kNoDeadline is +inf).
    if (a.priority != b.priority) return a.priority > b.priority;
    if (a.deadline_s != b.deadline_s) return a.deadline_s < b.deadline_s;
    if (a.arrival_s != b.arrival_s) return a.arrival_s < b.arrival_s;
    return a.query_id < b.query_id;
  }
};

class RatePreWarmPolicy final : public PreWarmPolicy {
 public:
  std::string_view name() const override { return "rate"; }

  PrewarmDecision Decide(const PrewarmSnapshot& s) override {
    PrewarmDecision decision;
    // No measured signal, no spend: an unseeded rate or run-time estimate
    // (or a degenerate tree size) would turn the demand formula into
    // noise, so the policy stays idle until both EWMAs carry data.
    if (s.arrival_rate_qps <= 0.0 || !std::isfinite(s.arrival_rate_qps) ||
        s.est_run_s <= 0.0 || !std::isfinite(s.est_run_s) ||
        s.workers_per_run <= 0) {
      decision.reason = "no demand signal";
      return decision;
    }
    // Little's law: trees concurrently in service at this arrival rate.
    const double concurrent_trees = s.arrival_rate_qps * s.est_run_s;
    const int64_t demand = static_cast<int64_t>(std::ceil(concurrent_trees)) *
                           static_cast<int64_t>(s.workers_per_run);
    const int64_t supply =
        static_cast<int64_t>(s.warm_instances) +
        static_cast<int64_t>(s.in_flight_runs) *
            static_cast<int64_t>(s.workers_per_run) +
        static_cast<int64_t>(s.pending_prewarms);
    int64_t deficit = demand - supply;
    if (deficit <= 0) {
      decision.reason = "supply covers demand";
      return decision;
    }
    if (s.est_cost_per_instance > 0.0) {
      const int64_t affordable = static_cast<int64_t>(
          s.budget_remaining / s.est_cost_per_instance);
      if (affordable <= 0) {
        decision.reason = "budget exhausted";
        return decision;
      }
      deficit = std::min(deficit, affordable);
    }
    decision.instances = static_cast<int32_t>(
        std::min<int64_t>(deficit, std::numeric_limits<int32_t>::max()));
    decision.reason = StrFormat(
        "demand %lld instances (%.3f qps x %.3fs x %d), supply %lld",
        static_cast<long long>(demand), s.arrival_rate_qps, s.est_run_s,
        s.workers_per_run, static_cast<long long>(supply));
    return decision;
  }
};

class DeadlineBatchPolicy final : public BatchPolicy {
 public:
  std::string_view name() const override { return "deadline-slack"; }
  double FlushIn(const std::vector<SchedQuery>& members, double now_s,
                 double window_s, double est_exec_s) const override {
    double earliest = kNoDeadline;
    for (const SchedQuery& m : members) {
      if (m.deadline_s < earliest) earliest = m.deadline_s;
    }
    if (!std::isfinite(earliest)) return window_s;  // no SLO: fixed window
    // Flush when the oldest member's slack runs out: any later launch and
    // the predicted execution time (with its safety margin) would miss the
    // deadline.
    const double slack_s =
        (earliest - now_s) - kSlackSafetyFactor * est_exec_s;
    if (slack_s <= 0.0) return 0.0;
    return std::min(window_s, slack_s);
  }
};

}  // namespace

std::shared_ptr<AdmissionPolicy> MakeAdmitAll() {
  return std::make_shared<AdmitAllPolicy>();
}

std::shared_ptr<AdmissionPolicy> MakeDepthBoundAdmission(
    int32_t max_queue_depth, double max_queue_wait_s, ShedPolicy shed) {
  return std::make_shared<DepthBoundAdmission>(max_queue_depth,
                                               max_queue_wait_s, shed);
}

std::shared_ptr<AdmissionPolicy> MakeTenantQuotaAdmission(
    std::vector<TenantQuota> quotas, std::shared_ptr<AdmissionPolicy> inner) {
  if (!inner) inner = MakeAdmitAll();
  return std::make_shared<TenantQuotaAdmission>(std::move(quotas),
                                                std::move(inner));
}

std::shared_ptr<QueuePolicy> MakeQueuePolicy(QueueDiscipline discipline) {
  if (discipline == QueueDiscipline::kEdf) {
    return std::make_shared<EdfQueuePolicy>();
  }
  return std::make_shared<FifoQueuePolicy>();
}

std::shared_ptr<BatchPolicy> MakeDeadlineBatchPolicy() {
  return std::make_shared<DeadlineBatchPolicy>();
}

std::shared_ptr<PreWarmPolicy> MakeRatePreWarmPolicy() {
  return std::make_shared<RatePreWarmPolicy>();
}

}  // namespace fsd::core
