#include "core/channel.h"

#include "core/kv_channel.h"
#include "core/object_channel.h"
#include "core/queue_channel.h"

namespace fsd::core {

std::unique_ptr<CommChannel> MakeCommChannel(Variant variant) {
  switch (variant) {
    case Variant::kQueue:
      return std::make_unique<QueueChannel>();
    case Variant::kObject:
      return std::make_unique<ObjectChannel>();
    case Variant::kKv:
      return std::make_unique<KvChannel>();
    case Variant::kSerial:
      return nullptr;
  }
  return nullptr;
}

Status ProvisionChannelResources(cloud::CloudEnv* cloud,
                                 const FsdOptions& options) {
  switch (options.variant) {
    case Variant::kQueue:
      return QueueChannel::Provision(cloud, options);
    case Variant::kObject:
      return ObjectChannel::Provision(cloud, options);
    case Variant::kKv:
      return KvChannel::Provision(cloud, options);
    case Variant::kSerial:
      return Status::OK();
  }
  return Status::OK();
}

Status TeardownChannelResources(cloud::CloudEnv* cloud,
                                const FsdOptions& options) {
  if (options.variant == Variant::kKv) {
    return KvChannel::Teardown(cloud, options);
  }
  return Status::OK();
}

}  // namespace fsd::core
