#include "core/channel.h"

#include <algorithm>

#include "core/direct_channel.h"
#include "core/kv_channel.h"
#include "core/object_channel.h"
#include "core/queue_channel.h"
#include "sim/simulation.h"

namespace fsd::core {

int32_t CollectiveRounds(CollectiveTopology topology, int32_t num_workers) {
  switch (topology) {
    case CollectiveTopology::kThroughRoot:
      return 1;
    case CollectiveTopology::kBinomialTree: {
      // ceil(log2 P): the round count of a binomial gather/scatter.
      int32_t rounds = 0;
      while ((1 << rounds) < num_workers) ++rounds;
      return rounds > 0 ? rounds : 1;
    }
    case CollectiveTopology::kRing:
      return num_workers > 1 ? num_workers - 1 : 1;
  }
  return 1;
}

Status OffloadSerializeCpu(WorkerEnv* env, LayerMetrics* metrics,
                           uint64_t serialize_bytes, size_t items,
                           std::function<void()> encode) {
  double per_byte_s = 1.0 / env->cloud->compute().serialize_bytes_per_s;
  if (env->options->quant_bits != 0) {
    // Quantized wire mode: one extra pass over the raw payload to scan the
    // scale and pack symbols — the CPU side of the break-even trade.
    per_byte_s += 1.0 / env->cloud->compute().quant_bytes_per_s;
  }
  const double serialize_s = static_cast<double>(serialize_bytes) * per_byte_s;
  std::vector<double> lane_costs;  // rough per-item split for makespan
  if (items > 0) {
    lane_costs.assign(items, serialize_s / static_cast<double>(items));
  }
  const double serialize_makespan =
      sim::ParallelMakespan(lane_costs, env->options->io_lanes);
  metrics->serialize_s += serialize_makespan;
  if (encode != nullptr) {
    metrics->offload_calls += 1;
    metrics->offload_virtual_s += serialize_makespan;
  }
  return env->faas->OffloadFor(serialize_makespan, std::move(encode));
}

Status ChargeSerializeCpu(WorkerEnv* env, LayerMetrics* metrics,
                          uint64_t serialize_bytes, size_t items) {
  // A null closure makes OffloadFor a plain deadline-checked sleep, so the
  // charged makespan is computed in exactly one place.
  return OffloadSerializeCpu(env, metrics, serialize_bytes, items, nullptr);
}

double DispatchLanes::NextOffset() {
  auto lane = std::min_element(lane_free_.begin(), lane_free_.end());
  const double offset = *lane;
  *lane += estimate_;
  return offset;
}

Status ChargeDispatchOverhead(WorkerEnv* env, size_t calls) {
  return env->faas->SleepFor(0.0002 * static_cast<double>(calls));
}

std::unique_ptr<CommChannel> MakeCommChannel(Variant variant) {
  switch (variant) {
    case Variant::kQueue:
      return std::make_unique<QueueChannel>();
    case Variant::kObject:
      return std::make_unique<ObjectChannel>();
    case Variant::kKv:
      return std::make_unique<KvChannel>();
    case Variant::kDirect:
      return std::make_unique<DirectChannel>();
    case Variant::kSerial:
      return nullptr;
  }
  return nullptr;
}

Status ProvisionChannelResources(cloud::CloudEnv* cloud,
                                 const FsdOptions& options) {
  switch (options.variant) {
    case Variant::kQueue:
      return QueueChannel::Provision(cloud, options);
    case Variant::kObject:
      return ObjectChannel::Provision(cloud, options);
    case Variant::kKv:
      return KvChannel::Provision(cloud, options);
    case Variant::kDirect:
      return DirectChannel::Provision(cloud, options);
    case Variant::kSerial:
      return Status::OK();
  }
  return Status::OK();
}

Status TeardownChannelResources(cloud::CloudEnv* cloud,
                                const FsdOptions& options) {
  if (options.variant == Variant::kKv) {
    return KvChannel::Teardown(cloud, options);
  }
  if (options.variant == Variant::kDirect) {
    return DirectChannel::Teardown(cloud, options);
  }
  return Status::OK();
}

}  // namespace fsd::core
