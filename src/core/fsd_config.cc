#include "core/fsd_config.h"

namespace fsd::core {

std::string_view VariantName(Variant variant) {
  switch (variant) {
    case Variant::kSerial:
      return "FSD-Inf-Serial";
    case Variant::kQueue:
      return "FSD-Inf-Queue";
    case Variant::kObject:
      return "FSD-Inf-Object";
    case Variant::kKv:
      return "FSD-Inf-KV";
    case Variant::kDirect:
      return "FSD-Inf-Direct";
  }
  return "unknown";
}

std::string_view CollectiveTopologyName(CollectiveTopology topology) {
  switch (topology) {
    case CollectiveTopology::kThroughRoot:
      return "through-root";
    case CollectiveTopology::kBinomialTree:
      return "binomial";
    case CollectiveTopology::kRing:
      return "ring";
  }
  return "unknown";
}

std::string_view LaunchStrategyName(LaunchStrategy strategy) {
  switch (strategy) {
    case LaunchStrategy::kHierarchical:
      return "hierarchical";
    case LaunchStrategy::kTwoLevel:
      return "two-level";
    case LaunchStrategy::kCentralized:
      return "centralized";
  }
  return "unknown";
}

int32_t DefaultWorkerMemoryMb(int32_t neurons, Variant variant) {
  if (variant == Variant::kSerial) return 10240;
  if (neurons <= 1024) return 1000;
  if (neurons <= 4096) return 1500;
  if (neurons <= 16384) return 2000;
  return 4000;
}

}  // namespace fsd::core
