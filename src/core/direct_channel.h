// DirectChannel — FSD-Inf-Direct: NAT-punched worker-to-worker links.
//
// Rationale (FMI, Copik et al.): serverless functions cannot accept inbound
// connections, but a coordinator-brokered NAT hole punch gives each worker
// pair a direct TCP link — removing the managed-service hop every other
// backend pays per message. Established links carry sub-millisecond sends
// with no per-request charge and no service-side rate cap; the costs are a
// per-connection setup charge (quadratic in P) and per-byte transfer
// pricing, which is what makes "direct" a latency play for chatty phases at
// large P rather than a universal win (see cost_model.h).
//
// Punching is not guaranteed: a deterministic per-pair fraction of links
// (symmetric / carrier-grade NATs) fails to punch, and those pairs fall
// back to a KV relay — the same namespace machinery as FSD-Inf-KV, with
// byte-identical values, so relayed traffic meters exactly like KV traffic.
//
// Send path: rows are packed into value-capped chunks (the KV value cap),
// headed with (source, seq, total), then shipped over the punched link —
// or RPUSHed onto the relay inbox when the pair never punched. Dispatch
// rides the worker's IPC lanes and overlaps compute, like every backend.
//
// Receive path: the worker blocking-pops its fabric inbox; when any
// expected source's link to it failed to punch, it alternates fabric and
// relay pops so neither path can starve the other.
#ifndef FSD_CORE_DIRECT_CHANNEL_H_
#define FSD_CORE_DIRECT_CHANNEL_H_

#include <string>
#include <vector>

#include "core/channel.h"
#include "core/serialization.h"

namespace fsd::core {

class DirectChannel : public CommChannel {
 public:
  DirectChannel() = default;

  /// Creates the run's punch-brokering session and its KV relay namespace
  /// (offline step; an unused relay namespace bills nothing).
  static Status Provision(cloud::CloudEnv* cloud, const FsdOptions& options);

  /// Tears down the session (links close free) and deletes the relay
  /// namespace, billing its node time if any pair actually relayed.
  static Status Teardown(cloud::CloudEnv* cloud, const FsdOptions& options);

  static std::string SessionName(const FsdOptions& options);
  static std::string RelayNamespaceName(const FsdOptions& options);
  /// Inbox key "p{phase}/w{target}" (same shape on fabric and relay).
  static std::string InboxKey(int32_t phase, int32_t target);

  std::string_view name() const override { return "direct"; }

  Status SendPhase(WorkerEnv* env, int32_t phase,
                   const linalg::ActivationMap& source,
                   const std::vector<SendSpec>& sends) override;

  Result<linalg::ActivationMap> ReceivePhase(
      WorkerEnv* env, int32_t phase,
      const std::vector<int32_t>& sources) override;
};

}  // namespace fsd::core

#endif  // FSD_CORE_DIRECT_CHANNEL_H_
