// Feature matrix of candidate inter-worker communication channels
// (paper Table I). Encoded as data so the design discussion in §II-D is
// reproducible from the library itself (bench_table1_features prints it).
#ifndef FSD_CORE_CHANNEL_TRAITS_H_
#define FSD_CORE_CHANNEL_TRAITS_H_

#include <array>
#include <string_view>

namespace fsd::core {

enum class TraitSupport : int { kNo = 0, kPartial = 1, kYes = 2 };

struct ChannelTraits {
  std::string_view category;
  TraitSupport serverless;
  TraitSupport low_latency_high_throughput;
  TraitSupport cost_effective;
  TraitSupport flexible_payloads;
  TraitSupport many_producers_consumers;
  TraitSupport service_side_filtering;
  TraitSupport direct_consumer_access;
  /// Why the category was (not) selected (paper §II-D discussion).
  std::string_view verdict;
};

/// The seven service categories of Table I in paper order, plus the
/// in-memory KV row backing the FSD-Inf-KV extension and the NAT-punched
/// direct-link row backing FSD-Inf-Direct.
const std::array<ChannelTraits, 9>& ChannelTraitMatrix();

std::string_view TraitSupportSymbol(TraitSupport support);

}  // namespace fsd::core

#endif  // FSD_CORE_CHANNEL_TRAITS_H_
