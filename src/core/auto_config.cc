#include "core/auto_config.h"

#include <algorithm>
#include <cmath>

#include "codec/quant.h"
#include "common/strings.h"
#include "core/launcher.h"
#include "core/serialization.h"

namespace fsd::core {
namespace {

/// One op round trip on the backend's data path (medians; relative use).
double OpRoundTripSeconds(const cloud::LatencyConfig& latency,
                          Variant variant, double relay_fraction) {
  switch (variant) {
    case Variant::kSerial:
      return 0.0;
    case Variant::kQueue:
      return latency.pubsub_publish.median_s + latency.pubsub_fanout.median_s +
             latency.queue_receive.median_s;
    case Variant::kObject:
      return latency.object_put.median_s + latency.object_list.median_s +
             latency.object_get.median_s;
    case Variant::kKv:
      return latency.kv_push.median_s + latency.kv_pop.median_s;
    case Variant::kDirect:
      return 2.0 * latency.p2p_send.median_s * (1.0 - relay_fraction) +
             (latency.kv_push.median_s + latency.kv_pop.median_s) *
                 relay_fraction;
  }
  return 0.0;
}

/// Messages the backend's receive side drains per op at the root: queue
/// polls batch 10, KV/fabric pops batch 64, object storage needs one GET
/// per message (spread over the IO lanes).
double RootDrainPerOp(const FsdOptions& options, Variant variant) {
  switch (variant) {
    case Variant::kSerial:
      return 1.0;
    case Variant::kQueue:
      return 10.0;
    case Variant::kObject:
      return static_cast<double>(std::max(1, options.io_lanes));
    case Variant::kKv:
    case Variant::kDirect:
      return 64.0;
  }
  return 1.0;
}

}  // namespace

CollectiveTopology RecommendTopology(const cloud::LatencyConfig& latency,
                                     const FsdOptions& options,
                                     Variant variant, int32_t workers) {
  if (workers <= 2 || variant == Variant::kSerial) {
    return CollectiveTopology::kThroughRoot;
  }
  const double relay =
      variant == Variant::kDirect
          ? std::min(1.0, std::max(0.0, latency.p2p_punch_failure_rate))
          : 0.0;
  const double rt = OpRoundTripSeconds(latency, variant, relay);
  const double drain = RootDrainPerOp(options, variant);
  // Widest round per topology: through-root's single round serializes the
  // root's P-1-message fan-in on its drain batching; tree and ring rounds
  // each move at most one message per worker.
  const double through_root_round =
      rt * (1.0 + static_cast<double>(workers - 1) / drain);
  const double tree_round = 2.0 * rt;  // one recv + one fwd per round
  if (through_root_round <= tree_round) {
    return CollectiveTopology::kThroughRoot;
  }
  // Tree and ring tie on round width; the tree's O(log P) rounds beat the
  // ring's P-1 whenever P > 2.
  return CollectiveTopology::kBinomialTree;
}

Result<AutoSelectResult> AutoSelectConfiguration(
    const cloud::CloudEnv& cloud, const AutoSelectRequest& request) {
  if (request.dnn == nullptr) {
    return Status::InvalidArgument("request needs a model");
  }
  if (request.latency_weight < 0.0 || request.latency_weight > 1.0) {
    return Status::InvalidArgument("latency_weight outside [0, 1]");
  }
  if (request.candidate_workers.empty()) {
    return Status::InvalidArgument("no candidate worker counts");
  }
  const model::SparseDnn& dnn = *request.dnn;
  const cloud::PricingConfig& pricing = cloud.billing().pricing();

  // Serial feasibility: model + working set within the largest instance.
  const double serial_need_mb =
      (dnn.WeightBytes() * 1.6 +
       static_cast<double>(dnn.neurons()) * request.batch * 8.0 * 2.0) /
      (1024.0 * 1024.0);

  std::vector<ConfigCandidate> candidates;
  for (int32_t workers : request.candidate_workers) {
    std::vector<Variant> variants;
    if (workers <= 1) {
      variants = {Variant::kSerial};
    } else {
      variants = {Variant::kQueue, Variant::kObject, Variant::kKv,
                  Variant::kDirect};
    }
    for (Variant variant : variants) {
      ConfigCandidate candidate;
      candidate.variant = variant;
      candidate.workers = workers;
      candidate.topology = RecommendTopology(cloud.latency(),
                                             request.base_options, variant,
                                             workers);
      if (variant == Variant::kSerial && serial_need_mb > 10240.0) {
        candidate.feasible = false;
        candidate.infeasible_reason = StrFormat(
            "needs ~%.0f MB; FaaS cap is 10240 MB", serial_need_mb);
        candidates.push_back(std::move(candidate));
        continue;
      }
      const int32_t memory_mb =
          DefaultWorkerMemoryMb(dnn.neurons(), variant);
      // Cost side: the same cross-boundary volume model as the latency
      // estimate, fed into Eqs. 1-7. Kept in raw (pre-codec) bytes so the
      // wire volume follows whichever codec an evaluation runs.
      const double cross_fraction =
          std::min(1.0, workers / 8.0) * 0.35;
      const double raw_bytes =
          static_cast<double>(dnn.neurons()) * cross_fraction *
          request.activation_density * request.batch * 6.0 * dnn.layers();
      const double pairs =
          static_cast<double>(dnn.layers()) * workers *
          std::min<double>(workers - 1, 10);
      // Latency + cost of this (variant, workers) pair under one concrete
      // option set — run once for the base options and again per quantized
      // width the flip below considers.
      auto evaluate = [&](const FsdOptions& opts, ConfigCandidate* c) {
        c->predicted_latency_s = EstimateQueryLatency(
            dnn, opts, cloud.latency(), cloud.config().compute,
            request.activation_density, request.batch, variant, workers);
        const double total_bytes = raw_bytes * EstimateWireRatio(opts);
        switch (variant) {
          case Variant::kSerial:
            c->predicted_cost =
                SerialCost(pricing, c->predicted_latency_s, memory_mb);
            break;
          case Variant::kQueue: {
            const double chunks = std::max(
                pairs, total_bytes / (64.0 * 1024.0));
            const double api = pairs * 2.0 / 4.0;
            c->predicted_cost =
                QueueCost(pricing, workers, c->predicted_latency_s,
                          memory_mb, chunks, total_bytes, api);
            break;
          }
          case Variant::kObject: {
            const double puts = pairs;
            const double gets = pairs;
            const double lists = 1.8 * dnn.layers() * workers;
            c->predicted_cost =
                ObjectCost(pricing, workers, c->predicted_latency_s,
                           memory_mb, puts, gets, lists);
            break;
          }
          case Variant::kKv: {
            const double chunks = std::max(
                pairs, total_bytes /
                           static_cast<double>(opts.kv_max_value_bytes));
            const double requests = chunks + 1.2 * pairs;
            // The run's namespace stays provisioned for the query duration.
            c->predicted_cost = KvCost(
                pricing, workers, c->predicted_latency_s, memory_mb,
                requests, 2.0 * total_bytes, c->predicted_latency_s);
            break;
          }
          case Variant::kDirect: {
            // Each communicating ordered pair punches one link; the
            // environment's punch-failure fraction of traffic relays
            // through the KV cache (requests + processed bytes + the relay
            // namespace's standing node time for the run).
            const double relay = std::min(
                1.0,
                std::max(0.0, cloud.latency().p2p_punch_failure_rate));
            const double connections =
                static_cast<double>(workers) *
                std::min<double>(workers - 1, 10) * (1.0 - relay);
            const double chunks = std::max(
                pairs, total_bytes /
                           static_cast<double>(opts.kv_max_value_bytes));
            const double relay_requests = (chunks + 1.2 * pairs) * relay;
            c->predicted_cost = DirectCost(
                pricing, workers, c->predicted_latency_s, memory_mb,
                connections, total_bytes * (1.0 - relay), relay_requests,
                2.0 * total_bytes * relay);
            const double relay_node_cost =
                c->predicted_latency_s * pricing.kv_node_hourly / 3600.0;
            c->predicted_cost.communication += relay_node_cost;
            c->predicted_cost.total += relay_node_cost;
            break;
          }
        }
      };
      candidate.quant_bits = request.base_options.quant_bits;
      evaluate(request.base_options, &candidate);
      // Quantization flip: within the request's rel-error budget, take the
      // narrowest admissible width — wider widths save strictly fewer
      // bytes for the same quantize CPU — and adopt it when the break-even
      // term nets positive.
      if (request.base_options.quant_bits == 0 &&
          request.base_options.quant_max_rel_error > 0.0) {
        for (int32_t b : {4, 8, 16}) {
          if (codec::QuantRelErrorBound(b) >
              request.base_options.quant_max_rel_error) {
            continue;
          }
          const QuantBreakEvenEstimate be = EstimateQuantBreakEven(
              pricing, cloud.config().compute, request.base_options,
              variant, memory_mb, raw_bytes, b);
          if (be.worthwhile) {
            FsdOptions qopts = request.base_options;
            qopts.quant_bits = b;
            ConfigCandidate quantized = candidate;
            evaluate(qopts, &quantized);
            quantized.predicted_cost.compute += be.cpu_dollars_added;
            quantized.predicted_cost.total += be.cpu_dollars_added;
            if (quantized.predicted_cost.total <
                candidate.predicted_cost.total) {
              quantized.quant_bits = b;
              candidate = quantized;
            }
          }
          break;
        }
      }
      candidates.push_back(std::move(candidate));
    }
  }

  // Normalize and blend.
  double min_latency = -1.0, min_cost = -1.0;
  for (const ConfigCandidate& c : candidates) {
    if (!c.feasible) continue;
    if (min_latency < 0 || c.predicted_latency_s < min_latency) {
      min_latency = c.predicted_latency_s;
    }
    if (min_cost < 0 || c.predicted_cost.total < min_cost) {
      min_cost = c.predicted_cost.total;
    }
  }
  if (min_latency < 0) {
    return Status::FailedPrecondition("no feasible configuration");
  }
  for (ConfigCandidate& c : candidates) {
    if (!c.feasible) {
      c.score = 1e30;
      continue;
    }
    c.score = request.latency_weight *
                  (c.predicted_latency_s / min_latency) +
              (1.0 - request.latency_weight) *
                  (c.predicted_cost.total / std::max(1e-12, min_cost));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const ConfigCandidate& a, const ConfigCandidate& b) {
              return a.score < b.score;
            });
  AutoSelectResult result;
  result.best = candidates.front();
  result.ranking = std::move(candidates);
  return result;
}

}  // namespace fsd::core
