#include "core/auto_config.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "core/launcher.h"
#include "core/serialization.h"

namespace fsd::core {
namespace {

/// Analytic latency estimate for one candidate. Deliberately coarse — the
/// selector needs relative ordering, not absolute accuracy — but built from
/// the same mechanisms the simulator models: launch tree depth, model-share
/// load, per-layer compute/communication overlap.
double EstimateLatency(const cloud::CloudEnv& cloud,
                       const AutoSelectRequest& request, Variant variant,
                       int32_t workers) {
  const model::SparseDnn& dnn = *request.dnn;
  const auto& latency = cloud.latency();
  const auto& compute = cloud.config().compute;
  const FsdOptions& base = request.base_options;
  const int32_t memory_mb =
      DefaultWorkerMemoryMb(dnn.neurons(), variant);

  const double flops = 2.0 * static_cast<double>(dnn.TotalNnz()) *
                       request.batch * request.activation_density;
  const double model_bytes = static_cast<double>(dnn.WeightBytes());

  // Launch: tree depth levels of (invoke + cold start).
  double launch = latency.faas_cold_start.median_s;
  if (workers > 1) {
    const double depth = std::ceil(
        std::log(static_cast<double>(workers)) /
        std::log(static_cast<double>(std::max(2, base.branching))));
    launch += depth * (latency.faas_cold_start.median_s +
                       base.branching * latency.faas_invoke_api.median_s);
  }

  // Model share load (parallel multipart GETs) + deserialization.
  const double share_bytes = model_bytes / workers;
  const double load =
      latency.object_get.median_s +
      share_bytes / latency.object_get.bytes_per_s / base.io_lanes +
      share_bytes / compute.deserialize_bytes_per_s;

  // Compute: evenly partitioned (hypergraph balancing) across workers.
  const double compute_s =
      compute.FaasComputeSeconds(flops / workers, memory_mb);
  if (variant == Variant::kSerial || workers == 1) {
    return launch + load + compute_s;
  }

  // Communication: volume scales with the cross-worker activation rows.
  // With the structured models ~min(1, P/8) of rows cross boundaries.
  const double cross_fraction = std::min(1.0, workers / 8.0) * 0.35;
  const double bytes_per_layer = static_cast<double>(dnn.neurons()) *
                                 cross_fraction * request.activation_density *
                                 request.batch * 6.0 *
                                 (base.compress ? 0.6 : 1.0);
  const double per_worker_layer_bytes = bytes_per_layer / workers;
  double per_layer_comm;
  if (variant == Variant::kKv) {
    // Sub-millisecond push/pop round trips; pops drain many values, so the
    // receive side pays ~one op plus the transfer tail.
    const double chunks = std::max(
        1.0, per_worker_layer_bytes / static_cast<double>(
                                          base.kv_max_value_bytes));
    const double pushes = chunks * latency.kv_push.median_s /
                          std::max(1, base.io_lanes);
    const double pops = std::max(1.0, chunks / cloud::kMaxValuesPerPop) *
                        latency.kv_pop.median_s;
    per_layer_comm = pushes + latency.kv_pop.median_s + pops +
                     per_worker_layer_bytes / latency.kv_pop.bytes_per_s;
  } else if (variant == Variant::kQueue) {
    const double chunks = std::max(
        1.0, per_worker_layer_bytes / static_cast<double>(
                                          base.max_message_bytes));
    const double publish = chunks / 10.0 * latency.pubsub_publish.median_s /
                           std::max(1, base.io_lanes);
    const double polls =
        std::max(1.0, chunks / 10.0) * latency.queue_receive.median_s;
    per_layer_comm = publish + latency.pubsub_fanout.median_s + polls +
                     per_worker_layer_bytes / latency.pubsub_fanout.bytes_per_s;
  } else {
    const double gets = std::max(1.0, std::min<double>(workers - 1, 8));
    per_layer_comm = latency.object_put.median_s +
                     latency.object_list.median_s * 1.5 +
                     gets * latency.object_get.median_s /
                         std::max(1, base.io_lanes) +
                     per_worker_layer_bytes / latency.object_get.bytes_per_s;
  }
  // Compute overlaps the sends; the receive tail adds to each layer.
  const double per_layer_compute = compute_s / dnn.layers();
  const double per_layer =
      std::max(per_layer_compute, per_layer_comm * 0.5) + per_layer_comm * 0.5;
  return launch + load + per_layer * dnn.layers();
}

}  // namespace

Result<AutoSelectResult> AutoSelectConfiguration(
    const cloud::CloudEnv& cloud, const AutoSelectRequest& request) {
  if (request.dnn == nullptr) {
    return Status::InvalidArgument("request needs a model");
  }
  if (request.latency_weight < 0.0 || request.latency_weight > 1.0) {
    return Status::InvalidArgument("latency_weight outside [0, 1]");
  }
  if (request.candidate_workers.empty()) {
    return Status::InvalidArgument("no candidate worker counts");
  }
  const model::SparseDnn& dnn = *request.dnn;
  const cloud::PricingConfig& pricing = cloud.billing().pricing();

  // Serial feasibility: model + working set within the largest instance.
  const double serial_need_mb =
      (dnn.WeightBytes() * 1.6 +
       static_cast<double>(dnn.neurons()) * request.batch * 8.0 * 2.0) /
      (1024.0 * 1024.0);

  std::vector<ConfigCandidate> candidates;
  for (int32_t workers : request.candidate_workers) {
    std::vector<Variant> variants;
    if (workers <= 1) {
      variants = {Variant::kSerial};
    } else {
      variants = {Variant::kQueue, Variant::kObject, Variant::kKv};
    }
    for (Variant variant : variants) {
      ConfigCandidate candidate;
      candidate.variant = variant;
      candidate.workers = workers;
      if (variant == Variant::kSerial && serial_need_mb > 10240.0) {
        candidate.feasible = false;
        candidate.infeasible_reason = StrFormat(
            "needs ~%.0f MB; FaaS cap is 10240 MB", serial_need_mb);
        candidates.push_back(std::move(candidate));
        continue;
      }
      candidate.predicted_latency_s =
          EstimateLatency(cloud, request, variant, workers);
      const int32_t memory_mb =
          DefaultWorkerMemoryMb(dnn.neurons(), variant);
      // Cost side: the same cross-boundary volume model as the latency
      // estimate, fed into Eqs. 1-7.
      const double cross_fraction =
          std::min(1.0, workers / 8.0) * 0.35;
      const double total_bytes =
          static_cast<double>(dnn.neurons()) * cross_fraction *
          request.activation_density * request.batch * 6.0 *
          (request.base_options.compress ? 0.6 : 1.0) * dnn.layers();
      const double pairs =
          static_cast<double>(dnn.layers()) * workers *
          std::min<double>(workers - 1, 10);
      switch (variant) {
        case Variant::kSerial:
          candidate.predicted_cost = SerialCost(
              pricing, candidate.predicted_latency_s, memory_mb);
          break;
        case Variant::kQueue: {
          const double chunks = std::max(
              pairs, total_bytes / (64.0 * 1024.0));
          const double api = pairs * 2.0 / 4.0;
          candidate.predicted_cost =
              QueueCost(pricing, workers, candidate.predicted_latency_s,
                        memory_mb, chunks, total_bytes, api);
          break;
        }
        case Variant::kObject: {
          const double puts = pairs;
          const double gets = pairs;
          const double lists = 1.8 * dnn.layers() * workers;
          candidate.predicted_cost =
              ObjectCost(pricing, workers, candidate.predicted_latency_s,
                         memory_mb, puts, gets, lists);
          break;
        }
        case Variant::kKv: {
          const double chunks = std::max(
              pairs, total_bytes /
                         static_cast<double>(
                             request.base_options.kv_max_value_bytes));
          const double requests = chunks + 1.2 * pairs;
          // The run's namespace stays provisioned for the query duration.
          candidate.predicted_cost = KvCost(
              pricing, workers, candidate.predicted_latency_s, memory_mb,
              requests, 2.0 * total_bytes, candidate.predicted_latency_s);
          break;
        }
      }
      candidates.push_back(std::move(candidate));
    }
  }

  // Normalize and blend.
  double min_latency = -1.0, min_cost = -1.0;
  for (const ConfigCandidate& c : candidates) {
    if (!c.feasible) continue;
    if (min_latency < 0 || c.predicted_latency_s < min_latency) {
      min_latency = c.predicted_latency_s;
    }
    if (min_cost < 0 || c.predicted_cost.total < min_cost) {
      min_cost = c.predicted_cost.total;
    }
  }
  if (min_latency < 0) {
    return Status::FailedPrecondition("no feasible configuration");
  }
  for (ConfigCandidate& c : candidates) {
    if (!c.feasible) {
      c.score = 1e30;
      continue;
    }
    c.score = request.latency_weight *
                  (c.predicted_latency_s / min_latency) +
              (1.0 - request.latency_weight) *
                  (c.predicted_cost.total / std::max(1e-12, min_cost));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const ConfigCandidate& a, const ConfigCandidate& b) {
              return a.score < b.score;
            });
  AutoSelectResult result;
  result.best = candidates.front();
  result.ranking = std::move(candidates);
  return result;
}

}  // namespace fsd::core
