#include "core/share_distributor.h"

#include <algorithm>
#include <functional>

#include "common/strings.h"
#include "core/worker.h"

namespace fsd::core {
namespace {

/// splitmix64 step: drives the deterministic chunk payload pattern.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t ChunkSeed(const std::string& family, int32_t partition_id,
                   uint64_t version, uint64_t seq) {
  uint64_t h = std::hash<std::string>{}(family);
  h = Mix64(h ^ (static_cast<uint64_t>(static_cast<uint32_t>(partition_id)) |
                 (version << 32)));
  return Mix64(h ^ seq);
}

/// Payload bytes of chunk `seq` when a share of `share_bytes` is cut into
/// `chunk_bytes` pieces (the last chunk carries the remainder).
uint64_t PayloadFor(uint64_t share_bytes, uint64_t chunk_bytes,
                    uint64_t seq) {
  const uint64_t begin = seq * chunk_bytes;
  if (begin >= share_bytes) return 0;
  return std::min(chunk_bytes, share_bytes - begin);
}

}  // namespace

uint64_t ShareDistributor::ChunkCount(uint64_t share_bytes,
                                      uint64_t chunk_bytes) {
  if (chunk_bytes == 0) return 1;
  const uint64_t chunks = (share_bytes + chunk_bytes - 1) / chunk_bytes;
  return chunks > 0 ? chunks : 1;
}

Bytes ShareDistributor::EncodeShareChunk(const std::string& family,
                                         int32_t partition_id,
                                         uint64_t version, uint64_t seq,
                                         uint64_t total,
                                         uint64_t payload_bytes) {
  Bytes out;
  out.reserve(3 * sizeof(uint64_t) + payload_bytes);
  AppendRaw(&out, seq);
  AppendRaw(&out, total);
  AppendRaw(&out, payload_bytes);
  uint64_t state = ChunkSeed(family, partition_id, version, seq);
  uint64_t word = 0;
  for (uint64_t i = 0; i < payload_bytes; ++i) {
    if (i % 8 == 0) word = state = Mix64(state);
    out.push_back(static_cast<uint8_t>(word >> ((i % 8) * 8)));
  }
  return out;
}

ShareDistributor::ShareDistributor(cloud::CloudEnv* cloud, Options options)
    : cloud_(cloud),
      options_(std::move(options)),
      session_(options_.scope + "/shares"),
      relay_ns_(options_.scope + "/share-relay") {
  // Control-plane, free; AlreadyExists only if scopes collide, in which
  // case sharing the session is harmless (inbox keys are globally unique).
  (void)cloud_->p2p().CreateSession(session_);
}

ShareDistributor::~ShareDistributor() { Teardown(); }

void ShareDistributor::Teardown() {
  if (torn_down_) return;
  torn_down_ = true;
  (void)cloud_->p2p().DeleteSession(session_);
  if (relay_created_) {
    // Bills the relay namespace's node-seconds for its active window.
    (void)cloud_->kv().DeleteNamespace(relay_ns_);
  }
  for (auto& [key, entry] : entries_) FireChange(&entry);
}

int32_t ShareDistributor::NodeFor(uint64_t instance_id) {
  auto [it, fresh] = nodes_.try_emplace(instance_id, next_node_);
  if (fresh) ++next_node_;
  return it->second;
}

void ShareDistributor::Prune(const ShareKey& key, Entry* entry) {
  std::erase_if(entry->holders, [&key](const Holder& holder) {
    const std::shared_ptr<PartitionCache> cache = holder.cache.lock();
    return cache == nullptr ||
           !cache->Contains(key.family, key.partition_id, key.version);
  });
}

void ShareDistributor::FireChange(Entry* entry) {
  if (entry->change != nullptr) entry->change->Fire();
  entry->change = nullptr;  // re-armed lazily by the next waiter
}

bool ShareDistributor::AdmitsTransfer(const Entry& entry) const {
  switch (options_.topology) {
    case CollectiveTopology::kThroughRoot:
      return true;  // the root streams every requester concurrently (star)
    case CollectiveTopology::kBinomialTree:
      // One concurrent transfer per holder: each completion doubles the
      // serving set, so P requesters drain in ~ceil(log2 P) generations.
      return entry.transfers_in_progress <
             static_cast<int32_t>(entry.holders.size());
    case CollectiveTopology::kRing:
      return entry.transfers_in_progress == 0;  // chain, one link at a time
  }
  return true;
}

const ShareDistributor::Holder* ShareDistributor::PickSource(
    Entry* entry, uint64_t self_instance) {
  const size_t n = entry->holders.size();
  if (n == 0) return nullptr;
  size_t start = 0;
  switch (options_.topology) {
    case CollectiveTopology::kThroughRoot:
      start = 0;  // always the first surviving holder (the root)
      break;
    case CollectiveTopology::kBinomialTree:
      start = static_cast<size_t>(entry->next_pick++ % n);
      break;
    case CollectiveTopology::kRing:
      start = n - 1;  // the most recent completer extends the chain
      break;
  }
  for (size_t i = 0; i < n; ++i) {
    const Holder& holder = entry->holders[(start + i) % n];
    if (holder.instance_id != self_instance) return &holder;
  }
  return nullptr;
}

ShareDistributor::Source ShareDistributor::Acquire(
    cloud::FaasContext* ctx, const FsdOptions& options,
    const std::string& family, int32_t partition_id, uint64_t share_bytes,
    WorkerMetrics* metrics, bool mark_prewarmed) {
  if (torn_down_) return Source::kStorage;
  const uint64_t version = options.model_version;
  const ShareKey key{family, partition_id, version};
  sim::Simulation* sim = cloud_->sim();
  const double give_up_at = sim->Now() + options_.max_wait_s;

  while (true) {
    Entry& entry = entries_[key];
    Prune(key, &entry);

    if (!entry.holders.empty() && AdmitsTransfer(entry)) {
      const Holder* source = PickSource(&entry, ctx->instance_id());
      if (source != nullptr) {
        // Pin the holder's cache for the stream's duration so the share
        // cannot be reclaimed from under an in-flight transfer.
        const std::shared_ptr<PartitionCache> pinned = source->cache.lock();
        const int32_t src_node = source->node;
        ++entry.transfers_in_progress;
        const bool delivered =
            Transfer(ctx, key, share_bytes, src_node, metrics);
        --entry.transfers_in_progress;
        if (delivered) {
          PartitionCache* cache = InstancePartitionCache(ctx, options);
          if (cache != nullptr) {
            const PartitionCache::InsertOutcome inserted = cache->Insert(
                family, partition_id, version, share_bytes, mark_prewarmed);
            metrics->cache_evictions += inserted.evicted;
            if (!inserted.inserted) {
              ++metrics->cache_oversize_rejects;
            } else {
              bool known = false;
              for (const Holder& holder : entry.holders) {
                known |= holder.instance_id == ctx->instance_id();
              }
              if (!known) {
                entry.holders.push_back(
                    Holder{ctx->instance_id(), NodeFor(ctx->instance_id()),
                           std::static_pointer_cast<PartitionCache>(
                               ctx->instance_state())});
              }
            }
          }
          ++metrics->share_loads_peer;
          FireChange(&entry);
          return Source::kPeer;
        }
        // Holder or transport failed mid-stream: release the topology
        // slot, wake peers and retry against whatever registry survives.
        FireChange(&entry);
        if (sim->Now() >= give_up_at || !ctx->CheckDeadline().ok()) {
          ++entry.storage_readers;
          return Source::kStorage;
        }
        continue;
      }
    }

    if (entry.holders.empty() && entry.storage_readers == 0 &&
        entry.transfers_in_progress == 0) {
      // Nobody has the share and nobody is fetching it: this requester is
      // the multicast root. It reads from storage; everyone arriving
      // behind it waits for its Publish.
      ++entry.storage_readers;
      return Source::kStorage;
    }

    // A storage read or transfer is in flight (or the topology gate is
    // closed): wait for the registry to change, bounded by our patience
    // and the function deadline, then re-evaluate.
    const double remaining =
        std::min(give_up_at, ctx->deadline()) - sim->Now();
    if (remaining <= 0.0) {
      ++entry.storage_readers;
      return Source::kStorage;
    }
    if (entry.change == nullptr) entry.change = sim->MakeSignal();
    const std::shared_ptr<sim::SimSignal> change = entry.change;
    sim->WaitSignal(change.get(), remaining);
    if (torn_down_ || !ctx->CheckDeadline().ok()) {
      ++entries_[key].storage_readers;
      return Source::kStorage;
    }
  }
}

void ShareDistributor::Publish(cloud::FaasContext* ctx,
                               const FsdOptions& options,
                               const std::string& family,
                               int32_t partition_id) {
  const ShareKey key{family, partition_id, options.model_version};
  Entry& entry = entries_[key];
  if (entry.storage_readers > 0) --entry.storage_readers;
  if (!torn_down_) {
    const auto cache =
        std::static_pointer_cast<PartitionCache>(ctx->instance_state());
    if (cache != nullptr &&
        cache->Contains(family, partition_id, key.version)) {
      bool known = false;
      for (const Holder& holder : entry.holders) {
        known |= holder.instance_id == ctx->instance_id();
      }
      if (!known) {
        entry.holders.push_back(
            Holder{ctx->instance_id(), NodeFor(ctx->instance_id()), cache});
      }
    }
  }
  FireChange(&entry);
}

void ShareDistributor::Abandon(const std::string& family,
                               int32_t partition_id, uint64_t version) {
  const ShareKey key{family, partition_id, version};
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  if (it->second.storage_readers > 0) --it->second.storage_readers;
  FireChange(&it->second);
}

int64_t ShareDistributor::HolderCount(const std::string& family,
                                      int32_t partition_id,
                                      uint64_t version) {
  const ShareKey key{family, partition_id, version};
  auto it = entries_.find(key);
  if (it == entries_.end()) return 0;
  Prune(key, &it->second);
  return static_cast<int64_t>(it->second.holders.size());
}

bool ShareDistributor::Transfer(cloud::FaasContext* ctx, const ShareKey& key,
                                uint64_t share_bytes, int32_t src_node,
                                WorkerMetrics* metrics) {
  const int32_t dst_node = NodeFor(ctx->instance_id());
  const std::string inbox = StrFormat(
      "xfer-%llu", static_cast<unsigned long long>(++next_transfer_));
  const cloud::P2pFabric::ConnectOutcome conn =
      cloud_->p2p().Connect(session_, src_node, dst_node);
  if (!conn.status.ok()) return false;
  if (conn.punched) {
    // Mirror of the fabric's billing: only a FRESH successful punch
    // charged kP2pConnection.
    if (conn.fresh) ++metrics->share_peer_connects;
    return TransferPunched(ctx, key, share_bytes, src_node, dst_node, inbox,
                           metrics);
  }
  // Punch failed (symmetric NAT pair): relay the chunks through the KV
  // namespace at managed-service pricing.
  return TransferRelay(ctx, key, share_bytes, inbox, metrics);
}

bool ShareDistributor::TransferPunched(cloud::FaasContext* ctx,
                                       const ShareKey& key,
                                       uint64_t share_bytes, int32_t src_node,
                                       int32_t dst_node,
                                       const std::string& inbox,
                                       WorkerMetrics* metrics) {
  cloud::P2pFabric& fabric = cloud_->p2p();
  const uint64_t chunk_bytes = options_.peer_chunk_bytes;
  const uint64_t total = ChunkCount(share_bytes, chunk_bytes);
  // Encode/transmit pipeline: the first chunk encodes inline; each later
  // chunk encodes under the PREVIOUS chunk's wire-time wait (OffloadFor),
  // so a compute pool overlaps the encode with the transfer. Virtual time
  // is unchanged — the wait was already charged.
  Bytes chunk = EncodeShareChunk(key.family, key.partition_id, key.version,
                                 /*seq=*/0, total,
                                 PayloadFor(share_bytes, chunk_bytes, 0));
  for (uint64_t seq = 0; seq < total; ++seq) {
    metrics->share_peer_bytes += static_cast<int64_t>(chunk.size());
    ++metrics->share_peer_chunks;
    const cloud::P2pFabric::SendOutcome sent =
        fabric.Send(session_, src_node, dst_node, inbox, std::move(chunk));
    if (!sent.status.ok()) return false;
    // The pair shares ONE kernel-TCP stream: successive chunks serialize
    // on the link, so the driver waits out each chunk's wire time before
    // dispatching the next (the relay below fans out over a sharded
    // service instead and needs no such serialization).
    Bytes next;
    std::function<void()> encode_next;
    if (seq + 1 < total) {
      encode_next = [&, next_seq = seq + 1]() {
        next = EncodeShareChunk(
            key.family, key.partition_id, key.version, next_seq, total,
            PayloadFor(share_bytes, chunk_bytes, next_seq));
      };
    }
    if (!ctx->OffloadFor(sent.latency, std::move(encode_next)).ok()) {
      return false;
    }
    chunk = std::move(next);
  }
  uint64_t received = 0;
  const double give_up_at = cloud_->sim()->Now() + options_.max_wait_s;
  while (received < total) {
    if (cloud_->sim()->Now() >= give_up_at) return false;
    auto popped = fabric.BlockingPopAll(
        session_, inbox, cloud::kMaxValuesPerInboxPop, options_.pop_wait_s);
    if (!popped.ok() || !ctx->CheckDeadline().ok()) return false;
    for (const Bytes& chunk : *popped) {
      const Bytes expected = EncodeShareChunk(
          key.family, key.partition_id, key.version, received, total,
          PayloadFor(share_bytes, chunk_bytes, received));
      if (chunk != expected) return false;  // corrupted / foreign delivery
      ++received;
    }
  }
  return true;
}

bool ShareDistributor::TransferRelay(cloud::FaasContext* ctx,
                                     const ShareKey& key,
                                     uint64_t share_bytes,
                                     const std::string& inbox,
                                     WorkerMetrics* metrics) {
  cloud::KvStore& kv = cloud_->kv();
  if (!relay_created_) {
    const Status created = kv.CreateNamespace(relay_ns_);
    if (!created.ok() && !cloud_->kv().NamespaceExists(relay_ns_)) {
      return false;
    }
    relay_created_ = true;
  }
  const uint64_t chunk_bytes = options_.relay_chunk_bytes;
  const uint64_t total = ChunkCount(share_bytes, chunk_bytes);
  for (uint64_t seq = 0; seq < total; ++seq) {
    Bytes chunk = EncodeShareChunk(key.family, key.partition_id, key.version,
                                   seq, total,
                                   PayloadFor(share_bytes, chunk_bytes, seq));
    // Mirror of the store's billing: one request + processed bytes per
    // push. Pushes dispatch without blocking (the sharded service absorbs
    // them concurrently); the pop loop below pays the delivery wait.
    ++metrics->share_relay_requests;
    metrics->share_relay_bytes += static_cast<int64_t>(chunk.size());
    ++metrics->share_relay_chunks;
    const cloud::KvStore::PushOutcome pushed =
        kv.Push(relay_ns_, inbox, std::move(chunk));
    if (!pushed.status.ok()) return false;
  }
  uint64_t received = 0;
  const double give_up_at = cloud_->sim()->Now() + options_.max_wait_s;
  while (received < total) {
    if (cloud_->sim()->Now() >= give_up_at) return false;
    // Every pop call bills one request plus the bytes it drained — even an
    // empty long-poll bills its request, so the mirror counts the CALL.
    ++metrics->share_relay_requests;
    auto popped = kv.BlockingPopAll(relay_ns_, inbox, cloud::kMaxValuesPerPop,
                                    options_.pop_wait_s);
    if (!popped.ok() || !ctx->CheckDeadline().ok()) return false;
    for (const Bytes& chunk : *popped) {
      metrics->share_relay_bytes += static_cast<int64_t>(chunk.size());
      const Bytes expected = EncodeShareChunk(
          key.family, key.partition_id, key.version, received, total,
          PayloadFor(share_bytes, chunk_bytes, received));
      if (chunk != expected) return false;
      ++received;
    }
  }
  return true;
}

}  // namespace fsd::core
