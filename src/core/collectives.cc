#include "core/collectives.h"

#include <algorithm>

namespace fsd::core {
namespace {

/// Row-id list covering every row present in `rows`.
std::vector<int32_t> AllIds(const linalg::ActivationMap& rows) {
  std::vector<int32_t> ids;
  ids.reserve(rows.size());
  for (const auto& [id, vec] : rows) ids.push_back(id);
  return ids;
}

std::vector<int32_t> Everyone(int32_t num_workers, int32_t except) {
  std::vector<int32_t> ids;
  for (int32_t i = 0; i < num_workers; ++i) {
    if (i != except) ids.push_back(i);
  }
  return ids;
}

/// Times one collective round this worker participates in, attributing
/// rounds + duration to the round's phase slot (the per-round comm
/// accounting the topology comparison is measured on). Workers idle in a
/// round do not book it.
class RoundScope {
 public:
  RoundScope(WorkerEnv* env, int32_t phase) : env_(env), phase_(phase) {
    start_ = env_->cloud->sim()->Now();
  }
  ~RoundScope() {
    LayerMetrics& metrics = env_->metrics->Layer(phase_);
    metrics.collective_rounds += 1;
    metrics.collective_round_s += env_->cloud->sim()->Now() - start_;
  }

 private:
  WorkerEnv* env_;
  int32_t phase_;
  double start_;
};

/// Ranks relative to the root: collectives are written for root 0 and map
/// back through these helpers, so any root works with any topology.
int32_t RelRank(int32_t id, int32_t root, int32_t num_workers) {
  return (id - root + num_workers) % num_workers;
}
int32_t AbsRank(int32_t rel, int32_t root, int32_t num_workers) {
  return (rel + root) % num_workers;
}

/// Binomial round count: ceil(log2 P).
int32_t TreeRounds(int32_t num_workers) {
  int32_t rounds = 0;
  while ((1 << rounds) < num_workers) ++rounds;
  return rounds;
}

}  // namespace

Status Send(CommChannel* channel, WorkerEnv* env, int32_t phase,
            int32_t target, const linalg::ActivationMap& rows) {
  const std::vector<int32_t> ids = AllIds(rows);
  std::vector<SendSpec> sends{{target, &ids}};
  return channel->SendPhase(env, phase, rows, sends);
}

Result<linalg::ActivationMap> Recv(CommChannel* channel, WorkerEnv* env,
                                   int32_t phase, int32_t source) {
  return channel->ReceivePhase(env, phase, {source});
}

Result<linalg::ActivationMap> Reduce(CommChannel* channel, WorkerEnv* env,
                                     CollectiveTopology topology,
                                     PhaseBlock block, int32_t num_workers,
                                     const linalg::ActivationMap& mine,
                                     int32_t root) {
  if (num_workers <= 1) return mine;
  const int32_t rel = RelRank(env->worker_id, root, num_workers);

  switch (topology) {
    case CollectiveTopology::kThroughRoot: {
      const int32_t phase = block.Round(0);
      RoundScope scope(env, phase);
      if (rel == 0) {
        FSD_ASSIGN_OR_RETURN(
            linalg::ActivationMap gathered,
            channel->ReceivePhase(env, phase, Everyone(num_workers, root)));
        for (const auto& [id, vec] : mine) gathered[id] = vec;
        return gathered;
      }
      FSD_RETURN_IF_ERROR(Send(channel, env, phase, root, mine));
      return linalg::ActivationMap{};
    }

    case CollectiveTopology::kBinomialTree: {
      // Mask-doubling gather: in round r (mask = 2^r) every worker whose
      // lowest set bit is `mask` ships its accumulated rows to rel - mask
      // and drops out; the survivor merges from rel + mask if it exists.
      linalg::ActivationMap acc = mine;
      int32_t round = 0;
      for (int32_t mask = 1; mask < num_workers; mask <<= 1, ++round) {
        const int32_t phase = block.Round(round);
        if (rel & mask) {
          const int32_t parent = AbsRank(rel - mask, root, num_workers);
          RoundScope scope(env, phase);
          FSD_RETURN_IF_ERROR(Send(channel, env, phase, parent, acc));
          return linalg::ActivationMap{};
        }
        if (rel + mask < num_workers) {
          const int32_t child = AbsRank(rel + mask, root, num_workers);
          RoundScope scope(env, phase);
          FSD_ASSIGN_OR_RETURN(linalg::ActivationMap got,
                               Recv(channel, env, phase, child));
          for (auto& [id, vec] : got) acc[id] = std::move(vec);
        }
      }
      return acc;  // only rel 0 reaches here with every round survived
    }

    case CollectiveTopology::kRing: {
      // Chain pipeline toward the root: round r moves the accumulated
      // rows from rel P-1-r to P-2-r, so rel k receives at round P-2-k
      // and forwards at round P-1-k.
      linalg::ActivationMap acc = mine;
      if (rel != num_workers - 1) {
        const int32_t round = num_workers - 2 - rel;
        const int32_t phase = block.Round(round);
        const int32_t next = AbsRank(rel + 1, root, num_workers);
        RoundScope scope(env, phase);
        FSD_ASSIGN_OR_RETURN(linalg::ActivationMap got,
                             Recv(channel, env, phase, next));
        for (auto& [id, vec] : got) acc[id] = std::move(vec);
      }
      if (rel != 0) {
        const int32_t round = num_workers - 1 - rel;
        const int32_t phase = block.Round(round);
        const int32_t prev = AbsRank(rel - 1, root, num_workers);
        RoundScope scope(env, phase);
        FSD_RETURN_IF_ERROR(Send(channel, env, phase, prev, acc));
        return linalg::ActivationMap{};
      }
      return acc;
    }
  }
  return Status::InvalidArgument("unknown collective topology");
}

Result<linalg::ActivationMap> Reduce(CommChannel* channel, WorkerEnv* env,
                                     int32_t phase, int32_t num_workers,
                                     const linalg::ActivationMap& mine,
                                     int32_t root) {
  return Reduce(channel, env, CollectiveTopology::kThroughRoot,
                PhaseBlock{phase, 1}, num_workers, mine, root);
}

Result<linalg::ActivationMap> Broadcast(CommChannel* channel, WorkerEnv* env,
                                        CollectiveTopology topology,
                                        PhaseBlock block, int32_t num_workers,
                                        const linalg::ActivationMap& rows,
                                        int32_t root) {
  if (num_workers <= 1) return rows;
  const int32_t rel = RelRank(env->worker_id, root, num_workers);

  switch (topology) {
    case CollectiveTopology::kThroughRoot: {
      const int32_t phase = block.Round(0);
      RoundScope scope(env, phase);
      if (rel == 0) {
        const std::vector<int32_t> ids = AllIds(rows);
        std::vector<SendSpec> sends;
        for (int32_t n : Everyone(num_workers, root)) {
          sends.push_back({n, &ids});
        }
        FSD_RETURN_IF_ERROR(channel->SendPhase(env, phase, rows, sends));
        return rows;
      }
      return channel->ReceivePhase(env, phase, {root});
    }

    case CollectiveTopology::kBinomialTree: {
      // The gather in reverse: execution round i uses mask = 2^(R-1-i);
      // every worker already holding the data forwards to rel + mask, and
      // a worker whose lowest set bit is `mask` receives in that round.
      const int32_t rounds = TreeRounds(num_workers);
      linalg::ActivationMap data = rel == 0 ? rows : linalg::ActivationMap{};
      bool have = rel == 0;
      for (int32_t i = 0; i < rounds; ++i) {
        const int32_t mask = 1 << (rounds - 1 - i);
        const int32_t phase = block.Round(i);
        if (!have) {
          if ((rel & mask) != 0 && (rel & (mask - 1)) == 0) {
            const int32_t parent = AbsRank(rel - mask, root, num_workers);
            RoundScope scope(env, phase);
            FSD_ASSIGN_OR_RETURN(data, Recv(channel, env, phase, parent));
            have = true;
          }
        } else if ((rel & mask) == 0 && rel + mask < num_workers) {
          const int32_t child = AbsRank(rel + mask, root, num_workers);
          RoundScope scope(env, phase);
          FSD_RETURN_IF_ERROR(Send(channel, env, phase, child, data));
        }
      }
      return data;
    }

    case CollectiveTopology::kRing: {
      // Chain pipeline away from the root: round r moves the data from
      // rel r to rel r+1.
      linalg::ActivationMap data = rel == 0 ? rows : linalg::ActivationMap{};
      if (rel > 0) {
        const int32_t phase = block.Round(rel - 1);
        const int32_t prev = AbsRank(rel - 1, root, num_workers);
        RoundScope scope(env, phase);
        FSD_ASSIGN_OR_RETURN(data, Recv(channel, env, phase, prev));
      }
      if (rel + 1 < num_workers) {
        const int32_t phase = block.Round(rel);
        const int32_t next = AbsRank(rel + 1, root, num_workers);
        RoundScope scope(env, phase);
        FSD_RETURN_IF_ERROR(Send(channel, env, phase, next, data));
      }
      return data;
    }
  }
  return Status::InvalidArgument("unknown collective topology");
}

Result<linalg::ActivationMap> Broadcast(CommChannel* channel, WorkerEnv* env,
                                        int32_t phase, int32_t num_workers,
                                        const linalg::ActivationMap& rows,
                                        int32_t root) {
  return Broadcast(channel, env, CollectiveTopology::kThroughRoot,
                   PhaseBlock{phase, 1}, num_workers, rows, root);
}

Status Barrier(CommChannel* channel, WorkerEnv* env,
               CollectiveTopology topology, PhaseBlock arrive,
               PhaseBlock release, int32_t num_workers, int32_t root) {
  if (num_workers <= 1) return Status::OK();
  // Gather-up with empty payloads (markers only), then release-down: both
  // legs reuse the data collectives, so the barrier inherits whatever
  // topology the caller selected — and through-root reproduces the legacy
  // arrive-at-root / release-from-root traffic exactly.
  static const linalg::ActivationMap kEmpty;
  FSD_RETURN_IF_ERROR(
      Reduce(channel, env, topology, arrive, num_workers, kEmpty, root)
          .status());
  return Broadcast(channel, env, topology, release, num_workers, kEmpty,
                   root)
      .status();
}

Status Barrier(CommChannel* channel, WorkerEnv* env, int32_t phase,
               int32_t num_workers, int32_t root) {
  return Barrier(channel, env, CollectiveTopology::kThroughRoot,
                 PhaseBlock{phase, 1}, PhaseBlock{phase + 1, 1}, num_workers,
                 root);
}

}  // namespace fsd::core
