#include "core/collectives.h"

#include <algorithm>

namespace fsd::core {
namespace {

/// Row-id list covering every row present in `rows`.
std::vector<int32_t> AllIds(const linalg::ActivationMap& rows) {
  std::vector<int32_t> ids;
  ids.reserve(rows.size());
  for (const auto& [id, vec] : rows) ids.push_back(id);
  return ids;
}

std::vector<int32_t> Everyone(int32_t num_workers, int32_t except) {
  std::vector<int32_t> ids;
  for (int32_t i = 0; i < num_workers; ++i) {
    if (i != except) ids.push_back(i);
  }
  return ids;
}

}  // namespace

Status Send(CommChannel* channel, WorkerEnv* env, int32_t phase,
            int32_t target, const linalg::ActivationMap& rows) {
  const std::vector<int32_t> ids = AllIds(rows);
  std::vector<SendSpec> sends{{target, &ids}};
  return channel->SendPhase(env, phase, rows, sends);
}

Result<linalg::ActivationMap> Recv(CommChannel* channel, WorkerEnv* env,
                                   int32_t phase, int32_t source) {
  return channel->ReceivePhase(env, phase, {source});
}

Status Barrier(CommChannel* channel, WorkerEnv* env, int32_t phase,
               int32_t num_workers, int32_t root) {
  if (num_workers <= 1) return Status::OK();
  static const std::vector<int32_t> kNoRows;
  const int32_t arrive = phase;
  const int32_t release = phase + 1;
  if (env->worker_id == root) {
    FSD_RETURN_IF_ERROR(
        channel->ReceivePhase(env, arrive, Everyone(num_workers, root))
            .status());
    std::vector<SendSpec> releases;
    for (int32_t n : Everyone(num_workers, root)) {
      releases.push_back({n, &kNoRows});
    }
    return channel->SendPhase(env, release, /*source=*/{}, releases);
  }
  std::vector<SendSpec> arrive_send{{root, &kNoRows}};
  FSD_RETURN_IF_ERROR(
      channel->SendPhase(env, arrive, /*source=*/{}, arrive_send));
  return channel->ReceivePhase(env, release, {root}).status();
}

Result<linalg::ActivationMap> Reduce(CommChannel* channel, WorkerEnv* env,
                                     int32_t phase, int32_t num_workers,
                                     const linalg::ActivationMap& mine,
                                     int32_t root) {
  if (num_workers <= 1) return mine;
  if (env->worker_id == root) {
    FSD_ASSIGN_OR_RETURN(
        linalg::ActivationMap gathered,
        channel->ReceivePhase(env, phase, Everyone(num_workers, root)));
    for (const auto& [id, vec] : mine) gathered[id] = vec;
    return gathered;
  }
  FSD_RETURN_IF_ERROR(Send(channel, env, phase, root, mine));
  return linalg::ActivationMap{};
}

Result<linalg::ActivationMap> Broadcast(CommChannel* channel, WorkerEnv* env,
                                        int32_t phase, int32_t num_workers,
                                        const linalg::ActivationMap& rows,
                                        int32_t root) {
  if (num_workers <= 1) return rows;
  if (env->worker_id == root) {
    const std::vector<int32_t> ids = AllIds(rows);
    std::vector<SendSpec> sends;
    for (int32_t n : Everyone(num_workers, root)) sends.push_back({n, &ids});
    FSD_RETURN_IF_ERROR(channel->SendPhase(env, phase, rows, sends));
    return rows;
  }
  return channel->ReceivePhase(env, phase, {root});
}

}  // namespace fsd::core
