#include "core/trace.h"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "common/rng.h"
#include "common/strings.h"
#include "core/runtime.h"
#include "core/serving.h"

namespace fsd::core {

namespace {

constexpr std::string_view kTraceHeader = "fsd-trace v1";

Status ValidateConfig(const TraceConfig& config) {
  if (!(config.duration_s > 0.0)) {
    return Status::InvalidArgument("trace duration must be > 0");
  }
  if (!(config.base_rate_qps > 0.0)) {
    return Status::InvalidArgument("trace base rate must be > 0");
  }
  if (config.diurnal_amplitude < 0.0 || config.diurnal_amplitude >= 1.0) {
    return Status::InvalidArgument(
        "diurnal amplitude must be in [0, 1) (the rate may never go "
        "negative)");
  }
  if (config.diurnal_amplitude > 0.0 && !(config.diurnal_period_s > 0.0)) {
    return Status::InvalidArgument("diurnal period must be > 0");
  }
  for (const FlashCrowd& crowd : config.flash_crowds) {
    if (crowd.duration_s < 0.0 || crowd.rate_multiplier < 0.0) {
      return Status::InvalidArgument(
          "flash crowd duration and multiplier must be >= 0");
    }
  }
  std::map<int32_t, bool> seen;
  for (const TenantSpec& tenant : config.tenants) {
    if (tenant.tenant <= 0) {
      return Status::InvalidArgument(
          "tenant ids must be > 0 (0 is the default tenant)");
    }
    if (!seen.emplace(tenant.tenant, true).second) {
      return Status::InvalidArgument(
          StrFormat("duplicate tenant id %d", tenant.tenant));
    }
    if (!(tenant.qps_share > 0.0)) {
      return Status::InvalidArgument(
          StrFormat("tenant %d qps share must be > 0", tenant.tenant));
    }
  }
  return Status::OK();
}

/// Upper bound on rate(t) over the whole trace, for the thinning
/// envelope. Compounds every crowd's above-1 multiplier (pessimistic when
/// crowds do not actually overlap — thinning stays exact, only the
/// candidate count grows).
double RateEnvelope(const TraceConfig& config) {
  double envelope = config.base_rate_qps * (1.0 + config.diurnal_amplitude);
  for (const FlashCrowd& crowd : config.flash_crowds) {
    if (crowd.rate_multiplier > 1.0) envelope *= crowd.rate_multiplier;
  }
  return envelope;
}

std::string_view TokenOrDash(const std::string& s) {
  return s.empty() ? std::string_view("-") : std::string_view(s);
}

std::string DashToEmpty(const std::string& s) { return s == "-" ? "" : s; }

}  // namespace

double TraceRateAt(const TraceConfig& config, double t) {
  double rate = config.base_rate_qps;
  if (config.diurnal_amplitude > 0.0) {
    rate *= 1.0 + config.diurnal_amplitude *
                      std::sin(2.0 * M_PI * t / config.diurnal_period_s +
                               config.diurnal_phase);
  }
  for (const FlashCrowd& crowd : config.flash_crowds) {
    if (t >= crowd.start_s && t < crowd.start_s + crowd.duration_s) {
      rate *= crowd.rate_multiplier;
    }
  }
  return rate;
}

Result<WorkloadTrace> GenerateTrace(const TraceConfig& config) {
  FSD_RETURN_IF_ERROR(ValidateConfig(config));
  WorkloadTrace trace;
  trace.config = config;

  double share_total = 0.0;
  for (const TenantSpec& tenant : config.tenants) {
    share_total += tenant.qps_share;
  }

  const double max_rate = RateEnvelope(config);
  Rng rng(config.seed);
  double t = 0.0;
  // Fixed draw order per candidate: gap, thinning accept, tenant (only on
  // accept). Adding a tenant to the mix therefore perturbs only tenant
  // assignments, never the arrival-time skeleton.
  while (true) {
    t += rng.NextExponential(1.0 / max_rate);
    if (t >= config.duration_s) break;
    if (config.max_queries > 0 && trace.queries.size() >= config.max_queries) {
      break;
    }
    const double accept = rng.NextDouble();
    if (accept * max_rate >= TraceRateAt(config, t)) continue;
    TraceQuery query;
    query.arrival_s = t;
    if (!config.tenants.empty()) {
      double draw = rng.NextDouble() * share_total;
      query.tenant = config.tenants.back().tenant;
      for (const TenantSpec& tenant : config.tenants) {
        draw -= tenant.qps_share;
        if (draw < 0.0) {
          query.tenant = tenant.tenant;
          break;
        }
      }
    }
    trace.queries.push_back(query);
  }
  return trace;
}

std::string SerializeTrace(const WorkloadTrace& trace) {
  const TraceConfig& c = trace.config;
  std::string out;
  out.reserve(64 + trace.queries.size() * 32);
  out += kTraceHeader;
  out += '\n';
  out += StrFormat("config duration_s %.17g\n", c.duration_s);
  out += StrFormat("config base_rate_qps %.17g\n", c.base_rate_qps);
  out += StrFormat("config diurnal_amplitude %.17g\n", c.diurnal_amplitude);
  out += StrFormat("config diurnal_period_s %.17g\n", c.diurnal_period_s);
  out += StrFormat("config diurnal_phase %.17g\n", c.diurnal_phase);
  out += StrFormat("config seed %llu\n",
                   static_cast<unsigned long long>(c.seed));
  out += StrFormat("config max_queries %llu\n",
                   static_cast<unsigned long long>(c.max_queries));
  for (const FlashCrowd& crowd : c.flash_crowds) {
    out += StrFormat("crowd %.17g %.17g %.17g\n", crowd.start_s,
                     crowd.duration_s, crowd.rate_multiplier);
  }
  for (const TenantSpec& tenant : c.tenants) {
    out += StrFormat("tenant %d %.17g %d %.17g %.17g %.17g %s %s\n",
                     tenant.tenant, tenant.qps_share, tenant.priority,
                     tenant.slo_deadline_s, tenant.quota_qps,
                     tenant.quota_burst,
                     std::string(TokenOrDash(tenant.name)).c_str(),
                     std::string(TokenOrDash(tenant.model_family)).c_str());
  }
  for (const TraceQuery& query : trace.queries) {
    out += StrFormat("q %.17g %d\n", query.arrival_s, query.tenant);
  }
  return out;
}

Result<WorkloadTrace> ParseTrace(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || line != kTraceHeader) {
    return Status::InvalidArgument("not an fsd-trace v1 file");
  }
  WorkloadTrace trace;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    bool ok = true;
    if (kind == "config") {
      std::string key;
      fields >> key;
      TraceConfig& c = trace.config;
      if (key == "duration_s") {
        ok = static_cast<bool>(fields >> c.duration_s);
      } else if (key == "base_rate_qps") {
        ok = static_cast<bool>(fields >> c.base_rate_qps);
      } else if (key == "diurnal_amplitude") {
        ok = static_cast<bool>(fields >> c.diurnal_amplitude);
      } else if (key == "diurnal_period_s") {
        ok = static_cast<bool>(fields >> c.diurnal_period_s);
      } else if (key == "diurnal_phase") {
        ok = static_cast<bool>(fields >> c.diurnal_phase);
      } else if (key == "seed") {
        ok = static_cast<bool>(fields >> c.seed);
      } else if (key == "max_queries") {
        ok = static_cast<bool>(fields >> c.max_queries);
      } else {
        return Status::InvalidArgument(
            StrFormat("line %zu: unknown config key '%s'", line_no,
                      key.c_str()));
      }
    } else if (kind == "crowd") {
      FlashCrowd crowd;
      ok = static_cast<bool>(fields >> crowd.start_s >> crowd.duration_s >>
                             crowd.rate_multiplier);
      trace.config.flash_crowds.push_back(crowd);
    } else if (kind == "tenant") {
      TenantSpec tenant;
      std::string name;
      std::string family;
      ok = static_cast<bool>(fields >> tenant.tenant >> tenant.qps_share >>
                             tenant.priority >> tenant.slo_deadline_s >>
                             tenant.quota_qps >> tenant.quota_burst >> name >>
                             family);
      tenant.name = DashToEmpty(name);
      tenant.model_family = DashToEmpty(family);
      trace.config.tenants.push_back(std::move(tenant));
    } else if (kind == "q") {
      TraceQuery query;
      ok = static_cast<bool>(fields >> query.arrival_s >> query.tenant);
      trace.queries.push_back(query);
    } else {
      return Status::InvalidArgument(
          StrFormat("line %zu: unknown record '%s'", line_no, kind.c_str()));
    }
    if (!ok) {
      return Status::InvalidArgument(
          StrFormat("line %zu: malformed %s record", line_no, kind.c_str()));
    }
  }
  return trace;
}

Status SaveTrace(const WorkloadTrace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::Internal(StrFormat("cannot open %s", path.c_str()));
  }
  const std::string text = SerializeTrace(trace);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.flush();
  if (!out) {
    return Status::Internal(StrFormat("write to %s failed", path.c_str()));
  }
  return Status::OK();
}

Result<WorkloadTrace> LoadTrace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(StrFormat("cannot open %s", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseTrace(buffer.str());
}

std::vector<TenantQuota> TraceTenantQuotas(const TraceConfig& config) {
  std::vector<TenantQuota> quotas;
  for (const TenantSpec& tenant : config.tenants) {
    if (tenant.quota_qps <= 0.0) continue;
    TenantQuota quota;
    quota.tenant = tenant.tenant;
    quota.rate_qps = tenant.quota_qps;
    quota.burst = tenant.quota_burst;
    quotas.push_back(quota);
  }
  return quotas;
}

Result<ServingReport> ReplayTrace(ServingRuntime& runtime,
                                  const WorkloadTrace& trace,
                                  const InferenceRequest& base_request) {
  std::map<int32_t, const TenantSpec*> specs;
  for (const TenantSpec& tenant : trace.config.tenants) {
    specs[tenant.tenant] = &tenant;
  }
  for (const TraceQuery& query : trace.queries) {
    InferenceRequest request = base_request;
    request.options.tenant_id = query.tenant;
    auto it = specs.find(query.tenant);
    if (it != specs.end()) {
      const TenantSpec& spec = *it->second;
      request.options.priority = spec.priority;
      request.options.slo_deadline_s = spec.slo_deadline_s;
      if (!spec.model_family.empty()) {
        request.options.model_family = spec.model_family;
      }
    }
    FSD_RETURN_IF_ERROR(runtime.Submit(request, query.arrival_s).status());
  }
  return runtime.Drain();
}

}  // namespace fsd::core
