// PartitionCache: per-FaaS-instance cache of deserialized model shares,
// enabling λScale-style warm-state reuse across queries (arXiv:2502.09922).
//
// Every FSI worker must hold its partition's weight share in memory before
// the layer loop starts. Reading that share from object storage dominates
// warm-query latency once the serving runtime dispatches repeated queries
// of one model family to the same warm instances — the share those
// instances deserialized for the previous query is still sitting in their
// memory. The cache tracks exactly that residue: entries are keyed by
// (model_family, partition_id) and carry the model version they were
// loaded at, so a warm worker can skip the multipart GETs + deserialization
// when it serves another query of the same family at the same version.
//
// The cache stores *sizes*, not weights: model bytes live in the shared
// in-memory SparseDnn (the storage objects are phantom, see worker.cc), so
// a hit simply skips the simulated read. Accounting is therefore the whole
// point — hits, misses, evictions under the byte budget, and stale-version
// invalidations all feed the run metrics, FleetStats and the cost model's
// GET-savings term.
//
// Lifetime: one cache per FaaS instance, held as instance-local state
// (cloud::FaasContext::instance_state), so it lives exactly as long as the
// warm instance does and is reclaimed with it. The simulation is
// single-threaded by construction; no locking.
#ifndef FSD_CORE_PARTITION_CACHE_H_
#define FSD_CORE_PARTITION_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <utility>

namespace fsd::core {

class PartitionCache {
 public:
  /// `budget_bytes` caps the sum of cached share sizes; inserting past the
  /// budget evicts least-recently-used entries. A zero budget caches
  /// nothing (every lookup misses).
  explicit PartitionCache(uint64_t budget_bytes)
      : budget_bytes_(budget_bytes) {}

  enum class Lookup {
    kHit,    ///< share resident at the wanted version; skip the read
    kMiss,   ///< share absent; read and Insert()
    kStale,  ///< share resident at another version: invalidated, re-read
  };

  /// Checks whether worker `partition_id`'s share of `family` is resident
  /// at `version`. A hit refreshes recency; a resident entry at any other
  /// version is dropped immediately (a version change means the weights
  /// changed — the stale share can never be served again).
  /// `prewarmed_first_hit` (optional) reports whether this hit is the
  /// FIRST use of an entry a pre-warm task planted (cold-start source
  /// attribution); the flag is consumed by the hit either way.
  Lookup Find(const std::string& family, int32_t partition_id,
              uint64_t version, bool* prewarmed_first_hit = nullptr);

  /// Non-mutating residency peek: true when the share is resident at
  /// exactly `version`. Touches neither recency nor the hit/miss counters
  /// — the ShareDistributor's holder registry validates peers with this
  /// without distorting their caches' accounting.
  bool Contains(const std::string& family, int32_t partition_id,
                uint64_t version) const;

  /// One Insert()'s outcome. `inserted == false` is the oversize reject —
  /// the share can never fit the budget and was NOT cached (historically
  /// conflated with a clean no-evict insert: both returned 0). Callers
  /// must treat a reject as a future guaranteed miss, not a silent
  /// success — it feeds the cache_oversize_rejects metric, and a peer
  /// registry must never advertise a rejected share as resident.
  struct InsertOutcome {
    bool inserted = false;
    int64_t evicted = 0;  ///< LRU entries this insert pushed out
  };

  /// Records a completed share read of `bytes` bytes, evicting LRU entries
  /// until the budget holds. Shares larger than the whole budget are not
  /// cached (counted in oversize_rejects()). `prewarmed` marks the entry
  /// as planted by a pre-warm task; the first Find() hit reports it.
  InsertOutcome Insert(const std::string& family, int32_t partition_id,
                       uint64_t version, uint64_t bytes,
                       bool prewarmed = false);

  // --- accounting ---
  uint64_t budget_bytes() const { return budget_bytes_; }
  uint64_t bytes_cached() const { return bytes_cached_; }
  int64_t entries() const { return static_cast<int64_t>(index_.size()); }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t evictions() const { return evictions_; }
  int64_t invalidations() const { return invalidations_; }
  int64_t oversize_rejects() const { return oversize_rejects_; }

 private:
  using Key = std::pair<std::string, int32_t>;  // (family, partition_id)
  struct Entry {
    Key key;
    uint64_t version = 0;
    uint64_t bytes = 0;
    bool prewarmed = false;  ///< planted by a pre-warm task, not hit yet
  };

  void Erase(std::map<Key, std::list<Entry>::iterator>::iterator it);

  uint64_t budget_bytes_;
  uint64_t bytes_cached_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  int64_t invalidations_ = 0;
  int64_t oversize_rejects_ = 0;
  std::list<Entry> lru_;  ///< most recently used first
  std::map<Key, std::list<Entry>::iterator> index_;
};

}  // namespace fsd::core

#endif  // FSD_CORE_PARTITION_CACHE_H_
