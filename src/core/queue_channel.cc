#include "core/queue_channel.h"

#include <algorithm>

#include "common/strings.h"
#include "sim/simulation.h"

namespace fsd::core {
namespace {

constexpr char kAttrTarget[] = "target";
constexpr char kAttrSource[] = "src";
constexpr char kAttrPhase[] = "phase";
constexpr char kAttrSeq[] = "seq";
constexpr char kAttrTotal[] = "total";

}  // namespace

std::string QueueChannel::TopicName(int32_t source,
                                    const FsdOptions& options) {
  return StrFormat("%stopic-%d", options.channel_scope.c_str(),
                   source % options.num_topics);
}

std::string QueueChannel::QueueName(int32_t worker,
                                    const FsdOptions& options) {
  return StrFormat("%squeue-%d", options.channel_scope.c_str(), worker);
}

Status QueueChannel::Provision(cloud::CloudEnv* cloud,
                               const FsdOptions& options) {
  const std::string& scope = options.channel_scope;
  for (int32_t t = 0; t < options.num_topics; ++t) {
    const std::string topic = StrFormat("%stopic-%d", scope.c_str(), t);
    if (!cloud->pubsub().TopicExists(topic)) {
      FSD_RETURN_IF_ERROR(cloud->pubsub().CreateTopic(topic));
    }
  }
  for (int32_t n = 0; n < options.num_workers; ++n) {
    const std::string queue = QueueName(n, options);
    if (!cloud->queues().QueueExists(queue)) {
      FSD_RETURN_IF_ERROR(cloud->queues().CreateQueue(queue));
    }
    // Any worker may publish on any topic shard; the filter policy routes
    // messages whose "target" attribute names this worker.
    cloud::FilterPolicy policy;
    policy.equals[kAttrTarget] = {StrFormat("%d", n)};
    for (int32_t t = 0; t < options.num_topics; ++t) {
      FSD_RETURN_IF_ERROR(cloud->pubsub().Subscribe(
          StrFormat("%stopic-%d", scope.c_str(), t), queue, policy));
    }
  }
  return Status::OK();
}

Status QueueChannel::SendPhase(WorkerEnv* env, int32_t phase,
                               const linalg::ActivationMap& source,
                               const std::vector<SendSpec>& sends) {
  if (sends.empty()) return Status::OK();
  const FsdOptions& options = *env->options;
  LayerMetrics& metrics = env->metrics->Layer(phase);
  metrics.send_targets += static_cast<int64_t>(sends.size());

  // 1) Plan the encode: the chunk count and exact raw byte total are
  // determined by the inputs alone (PlanRows replays the NNZ chunking
  // heuristic and the wire layout arithmetic), so the serialization
  // charge is computable before a single byte is encoded.
  uint64_t serialize_bytes = 0;
  size_t total_chunks = 0;
  for (const SendSpec& send : sends) {
    metrics.send_rows_mapped += static_cast<int64_t>(send.rows->size());
    const EncodePlan plan =
        PlanRows(source, *send.rows, options.max_message_bytes);
    metrics.send_rows_active += plan.active_rows;
    serialize_bytes += plan.raw_bytes;
    total_chunks += plan.num_chunks;
  }

  // 2) Charge the serialization/compression CPU and run the encode itself
  // (varint packing + LZ/quant passes) under the charged window — on a
  // pool thread when the sim has compute_threads > 0, inline at the
  // window's end otherwise. All post-encode work (chunk accounting,
  // message building, publish batching, dispatch) moves after the join;
  // observationally identical, since the charge already preceded the
  // publishes before this change.
  std::vector<EncodeResult> encoded(sends.size());
  FSD_RETURN_IF_ERROR(OffloadSerializeCpu(
      env, &metrics, serialize_bytes, total_chunks, [&]() {
        for (size_t s = 0; s < sends.size(); ++s) {
          encoded[s] =
              EncodeRows(source, *sends[s].rows, options.max_message_bytes,
                         WireCodecFromOptions(options));
        }
      }));

  // 3) Build per-target messages (the send buffer Xsend_list).
  struct Outgoing {
    int32_t target;
    cloud::QueueMessage message;
  };
  std::vector<Outgoing> outgoing;
  outgoing.reserve(total_chunks);
  for (size_t s = 0; s < sends.size(); ++s) {
    const int32_t total = static_cast<int32_t>(encoded[s].chunks.size());
    for (int32_t seq = 0; seq < total; ++seq) {
      RowChunk& chunk = encoded[s].chunks[seq];
      AccountSendChunk(&metrics, chunk);
      cloud::QueueMessage msg;
      msg.body = std::move(chunk.wire);
      msg.attributes[kAttrTarget] = StrFormat("%d", sends[s].target);
      msg.attributes[kAttrSource] = StrFormat("%d", env->worker_id);
      msg.attributes[kAttrPhase] = StrFormat("%d", phase);
      msg.attributes[kAttrSeq] = StrFormat("%d", seq);
      msg.attributes[kAttrTotal] = StrFormat("%d", total);
      outgoing.push_back({sends[s].target, std::move(msg)});
    }
  }

  // 4) Pop publish batches: group <=10 messages and <=256 KiB per publish
  // (pop_batches in Algorithm 1). Messages for different targets may share
  // one publish — the filter policy splits them downstream.
  struct Batch {
    std::string topic;
    std::vector<cloud::QueueMessage> messages;
    uint64_t bytes = 0;
  };
  std::vector<Batch> batches;
  const std::string my_topic = TopicName(env->worker_id, options);
  Batch current{my_topic, {}, 0};
  auto flush = [&]() {
    if (!current.messages.empty()) {
      batches.push_back(std::move(current));
      current = Batch{my_topic, {}, 0};
    }
  };
  for (Outgoing& out : outgoing) {
    const uint64_t size = out.message.SizeBytes();
    const bool overflow =
        current.bytes + size > cloud::kMaxPublishBytes ||
        current.messages.size() >=
            static_cast<size_t>(cloud::kMaxMessagesPerPublish);
    if (!options.greedy_packing || overflow) flush();
    current.messages.push_back(std::move(out.message));
    current.bytes += size;
    if (!options.greedy_packing) flush();
  }
  flush();

  // 5) Dispatch publishes on parallel IPC lanes: each lane issues its next
  // publish when the previous completes. Lane offsets use the median API
  // latency as the estimate; the true latency is sampled at publish time.
  DispatchLanes lanes(options.io_lanes,
                      env->cloud->latency().pubsub_publish.median_s);
  metrics.publishes += static_cast<int64_t>(batches.size());
  const uint64_t increment =
      env->cloud->billing().pricing().pubsub_billing_increment_bytes;
  for (Batch& batch : batches) {
    // Mirror the service's batch-level 64 KiB-increment billing in the
    // worker metrics (the paper's per-layer S counter).
    uint64_t batch_bytes = 0;
    for (const cloud::QueueMessage& msg : batch.messages) {
      batch_bytes += msg.SizeBytes();
    }
    metrics.publish_chunks += BilledIncrementChunks(batch_bytes, increment);
    // Every message fans out to exactly one queue (its target's filter),
    // so the service bills delivery bytes = message sizes incl. attribute
    // envelopes — mirrored here so the cost model's Z term is exact.
    metrics.send_billed_bytes += static_cast<int64_t>(batch_bytes);
    const double offset = lanes.NextOffset();
    cloud::CloudEnv* cloud = env->cloud;
    std::string topic = batch.topic;
    env->cloud->sim()->ScheduleCallback(
        offset, [cloud, topic, messages = std::move(batch.messages)]() mutable {
          cloud->pubsub().PublishBatch(topic, std::move(messages));
        });
  }
  // The worker itself only pays a small per-call dispatch overhead (handing
  // work to the pool); the API round trips ride on the lanes above.
  FSD_RETURN_IF_ERROR(ChargeDispatchOverhead(env, batches.size()));
  return Status::OK();
}

Result<linalg::ActivationMap> QueueChannel::ReceivePhase(
    WorkerEnv* env, int32_t phase, const std::vector<int32_t>& sources) {
  linalg::ActivationMap received;
  if (sources.empty()) return received;
  const FsdOptions& options = *env->options;
  LayerMetrics& metrics = env->metrics->Layer(phase);
  const double start = env->cloud->sim()->Now();
  const auto& compute = env->cloud->compute();

  // Per-source progress: how many chunks expected (unknown until the first
  // message from that source arrives) and how many consumed.
  struct Progress {
    int32_t expected = -1;
    int32_t got = 0;
  };
  std::map<int32_t, Progress> pending;
  for (int32_t s : sources) pending.emplace(s, Progress{});

  auto consume = [&](int32_t source, int32_t seq, int32_t total,
                     const Bytes& body) -> Status {
    auto it = pending.find(source);
    if (it == pending.end()) {
      ++metrics.redundant_skipped;
      return Status::OK();
    }
    if (!seen_.insert({phase, source, seq}).second) {
      ++metrics.redundant_skipped;  // visibility-timeout redelivery
      return Status::OK();
    }
    it->second.expected = total;
    ++it->second.got;
    metrics.recv_wire_bytes += static_cast<int64_t>(body.size());
    // The deserialization charge depends only on the wire size, so the
    // decode itself runs under the charged window (pool thread when the
    // sim has compute_threads > 0). A decode error surfaces after the
    // window — uniformly for every pool size.
    const double deser_s =
        static_cast<double>(body.size()) / compute.deserialize_bytes_per_s;
    metrics.deserialize_s += deser_s;
    metrics.offload_calls += 1;
    metrics.offload_virtual_s += deser_s;
    const size_t before = received.size();
    Status decoded;
    FSD_RETURN_IF_ERROR(env->faas->OffloadFor(
        deser_s, [&]() { decoded = DecodeRows(body, &received); }));
    FSD_RETURN_IF_ERROR(decoded);
    metrics.recv_rows += static_cast<int64_t>(received.size() - before);
    if (it->second.got == it->second.expected) pending.erase(it);
    return Status::OK();
  };

  // Drain the stash first: chunks for this phase may have arrived while we
  // were receiving an earlier phase.
  if (auto it = stash_.find(phase); it != stash_.end()) {
    for (ParsedMessage& msg : it->second) {
      FSD_RETURN_IF_ERROR(consume(msg.source, msg.seq, msg.total, msg.body));
    }
    stash_.erase(it);
  }

  const std::string my_queue = QueueName(env->worker_id, options);
  while (!pending.empty()) {
    FSD_RETURN_IF_ERROR(env->CheckAbort());
    FSD_RETURN_IF_ERROR(env->faas->CheckDeadline());
    FSD_ASSIGN_OR_RETURN(
        std::vector<cloud::QueueMessage> messages,
        env->cloud->queues().Receive(my_queue, cloud::kMaxMessagesPerReceive,
                                     options.poll_wait_s));
    ++metrics.polls;
    if (messages.empty()) {
      ++metrics.empty_polls;
      continue;
    }
    metrics.msgs_received += static_cast<int64_t>(messages.size());
    std::vector<uint64_t> to_delete;
    for (cloud::QueueMessage& msg : messages) {
      to_delete.push_back(msg.id);
      ParsedMessage parsed;
      parsed.source = std::atoi(msg.attributes[kAttrSource].c_str());
      parsed.seq = std::atoi(msg.attributes[kAttrSeq].c_str());
      parsed.total = std::atoi(msg.attributes[kAttrTotal].c_str());
      const int32_t msg_phase = std::atoi(msg.attributes[kAttrPhase].c_str());
      parsed.body = std::move(msg.body);
      if (msg_phase != phase) {
        stash_[msg_phase].push_back(std::move(parsed));
        continue;
      }
      FSD_RETURN_IF_ERROR(
          consume(parsed.source, parsed.seq, parsed.total, parsed.body));
    }
    FSD_RETURN_IF_ERROR(
        env->cloud->queues().DeleteMessages(my_queue, to_delete));
    ++metrics.deletes;
  }

  metrics.recv_wait_s += env->cloud->sim()->Now() - start;
  return received;
}

}  // namespace fsd::core
