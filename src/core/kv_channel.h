// KvChannel — FSD-Inf-KV: the in-memory key-value channel extension.
//
// Rationale (FMI, Copik et al.; lambda-scale warm-state serving): a
// Redis/ElastiCache-style cache reaches sub-millisecond operation latency —
// one to two orders of magnitude below pub-sub/queue and object-storage
// APIs — which dominates end-to-end latency for the small activation
// payloads sparse inference exchanges. The trade-off is a standing
// node-hour cost and per-byte processing charges, so request-priced object
// storage still wins on dollars at large volumes (see cost_model.h).
//
// Send path: activation rows are packed into value-capped chunks (same NNZ
// heuristic as the queue channel), prefixed with a (source, seq, total)
// varint header, and RPUSHed onto the target's per-phase inbox list
// "p{phase}/w{target}" in the run's namespace. Pushes are dispatched on the
// worker's IPC lanes and overlap the subsequent compute.
//
// Receive path: the worker blocking-pops its own inbox list. Pops are
// destructive, so there is no delete call and no redelivery dedup; phases
// have dedicated lists, so there is no cross-phase stash either. Per-source
// chunk counts ride in the value headers.
#ifndef FSD_CORE_KV_CHANNEL_H_
#define FSD_CORE_KV_CHANNEL_H_

#include <string>
#include <vector>

#include "core/channel.h"
#include "core/serialization.h"

namespace fsd::core {

/// Inbox value layout: varint(source), varint(seq), varint(total), chunk
/// wire. Shared with the direct channel, whose KV relay fallback must stay
/// byte-identical to a KvChannel send so relay costs meter the same way.
Bytes EncodeInboxValue(int32_t source, int32_t seq, int32_t total,
                       Bytes wire);

struct DecodedInboxValue {
  int32_t source = 0;
  int32_t seq = 0;
  int32_t total = 0;
  Bytes body;
};

Result<DecodedInboxValue> DecodeInboxValue(const Bytes& value);

class KvChannel : public CommChannel {
 public:
  KvChannel() = default;

  /// Creates the run's namespace (offline step; node billing starts).
  static Status Provision(cloud::CloudEnv* cloud, const FsdOptions& options);

  /// Deletes the run's namespace, billing node time for its lifetime.
  static Status Teardown(cloud::CloudEnv* cloud, const FsdOptions& options);

  static std::string NamespaceName(const FsdOptions& options);
  /// Inbox list key "p{phase}/w{target}".
  static std::string InboxKey(int32_t phase, int32_t target);

  std::string_view name() const override { return "kv"; }

  Status SendPhase(WorkerEnv* env, int32_t phase,
                   const linalg::ActivationMap& source,
                   const std::vector<SendSpec>& sends) override;

  Result<linalg::ActivationMap> ReceivePhase(
      WorkerEnv* env, int32_t phase,
      const std::vector<int32_t>& sources) override;
};

}  // namespace fsd::core

#endif  // FSD_CORE_KV_CHANNEL_H_
